package anonmutex

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// handle is the shared surface of RWProcess and RMWProcess the lifecycle
// tests exercise.
type handle interface {
	Lock() error
	Unlock() error
	Close() error
}

// lifecycleLock abstracts the two lock types for the shared test bodies.
type lifecycleLock interface {
	newHandle() (handle, error)
	observeValues() []string
}

type rwLifecycle struct{ l *RWLock }

func (w rwLifecycle) newHandle() (handle, error) { return w.l.NewProcess() }
func (w rwLifecycle) observeValues() []string    { return observedStrings(w.l.mem.ObserveValues()) }

type rmwLifecycle struct{ l *RMWLock }

func (w rmwLifecycle) newHandle() (handle, error) { return w.l.NewProcess() }
func (w rmwLifecycle) observeValues() []string    { return observedStrings(w.l.mem.ObserveValues()) }

func observedStrings[T fmt.Stringer](vals []T) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

func lifecycleLocks(t *testing.T, n int) map[string]lifecycleLock {
	t.Helper()
	rw, err := NewRWLock(n)
	if err != nil {
		t.Fatal(err)
	}
	rmw, err := NewRMWLock(n)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]lifecycleLock{"rw": rwLifecycle{rw}, "rmw": rmwLifecycle{rmw}}
}

// TestCloseReLease proves the satellite claim directly: a released slot
// can be re-leased, and the recycled handle still excludes correctly.
func TestCloseReLease(t *testing.T) {
	for name, l := range lifecycleLocks(t, 2) {
		t.Run(name, func(t *testing.T) {
			a, err := l.newHandle()
			if err != nil {
				t.Fatal(err)
			}
			b, err := l.newHandle()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l.newHandle(); err == nil {
				t.Fatal("NewProcess beyond n succeeded with no released handles")
			}
			// Use both handles, then close one and re-lease the slot.
			for _, h := range []handle{a, b} {
				if err := h.Lock(); err != nil {
					t.Fatal(err)
				}
				if err := h.Unlock(); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Close(); err != nil {
				t.Fatalf("Close of idle handle: %v", err)
			}
			c, err := l.newHandle()
			if err != nil {
				t.Fatalf("NewProcess after Close: %v", err)
			}
			// The recycled handle must exclude against the surviving one.
			var inCS atomic.Int32
			var wg sync.WaitGroup
			var violations atomic.Int32
			for _, h := range []handle{b, c} {
				wg.Add(1)
				go func(h handle) {
					defer wg.Done()
					for s := 0; s < 50; s++ {
						if err := h.Lock(); err != nil {
							t.Error(err)
							return
						}
						if inCS.Add(1) != 1 {
							violations.Add(1)
						}
						inCS.Add(-1)
						if err := h.Unlock(); err != nil {
							t.Error(err)
							return
						}
					}
				}(h)
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d mutual-exclusion violations with a recycled handle", v)
			}
		})
	}
}

// TestCloseLeavesNoResidue checks the invariant Close relies on: an idle
// process owns no registers, so after all handles close, the anonymous
// memory holds only ⊥.
func TestCloseLeavesNoResidue(t *testing.T) {
	for name, l := range lifecycleLocks(t, 3) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				h, err := l.newHandle()
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Lock(); err != nil {
					t.Fatal(err)
				}
				if err := h.Unlock(); err != nil {
					t.Fatal(err)
				}
				if err := h.Close(); err != nil {
					t.Fatal(err)
				}
			}
			for x, v := range l.observeValues() {
				if v != "⊥" {
					t.Errorf("register %d holds %s after every handle closed, want ⊥", x, v)
				}
			}
		})
	}
}

// TestCloseMisuse pins the lifecycle error paths.
func TestCloseMisuse(t *testing.T) {
	for name, l := range lifecycleLocks(t, 2) {
		t.Run(name, func(t *testing.T) {
			h, err := l.newHandle()
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Lock(); err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err == nil {
				t.Error("Close of a lock-holding handle succeeded")
			}
			if err := h.Unlock(); err != nil {
				t.Fatal(err)
			}
			if err := h.Close(); err != nil {
				t.Fatalf("Close of idle handle: %v", err)
			}
			if err := h.Close(); err == nil {
				t.Error("double Close succeeded")
			}
			if err := h.Lock(); err == nil {
				t.Error("Lock on a closed handle succeeded")
			}
			if err := h.Unlock(); err == nil {
				t.Error("Unlock on a closed handle succeeded")
			}
		})
	}
}

// TestCloseChurn leases, uses, and closes handles from many goroutines —
// more clients than slots — verifying the recycling path under the race
// detector and that exclusion holds across lease generations.
func TestCloseChurn(t *testing.T) {
	for name, l := range lifecycleLocks(t, 2) {
		t.Run(name, func(t *testing.T) {
			const clients = 6
			const cyclesPerClient = 30
			var inCS atomic.Int32
			var violations atomic.Int32
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for s := 0; s < cyclesPerClient; s++ {
						var h handle
						for {
							var err error
							if h, err = l.newHandle(); err == nil {
								break
							}
						}
						if err := h.Lock(); err != nil {
							t.Error(err)
							return
						}
						if inCS.Add(1) != 1 {
							violations.Add(1)
						}
						inCS.Add(-1)
						if err := h.Unlock(); err != nil {
							t.Error(err)
							return
						}
						if err := h.Close(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d mutual-exclusion violations under handle churn", v)
			}
		})
	}
}
