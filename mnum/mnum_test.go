package mnum

import "testing"

// The heavy testing lives in internal/mset; these tests pin the public
// API's behavior and its consistency with the internal package.

func TestPublicSurface(t *testing.T) {
	if GCD(12, 18) != 6 {
		t.Error("GCD")
	}
	if !InM(2, 3) || InM(2, 4) {
		t.Error("InM")
	}
	if l, ok := Witness(4, 6); !ok || l != 2 {
		t.Errorf("Witness(4, 6) = (%d, %v)", l, ok)
	}
	if _, ok := Witness(2, 3); ok {
		t.Error("Witness found for a member")
	}
	if MinRW(6) != 7 {
		t.Error("MinRW")
	}
	if MinRMW(6) != 1 {
		t.Error("MinRMW")
	}
	if MinRMWAbove(6) != 7 {
		t.Error("MinRMWAbove")
	}
	if got := Members(2, 1, 9); len(got) != 5 { // 1,3,5,7,9
		t.Errorf("Members(2,1,9) = %v", got)
	}
	if got := NonMembers(2, 1, 9); len(got) != 4 { // 2,4,6,8
		t.Errorf("NonMembers(2,1,9) = %v", got)
	}
	if ValidateRW(2, 3) != nil || ValidateRW(2, 4) == nil {
		t.Error("ValidateRW")
	}
	if ValidateRMW(2, 1) != nil || ValidateRMW(2, 2) == nil {
		t.Error("ValidateRMW")
	}
}

func TestWitnessDividesM(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for m := 1; m <= 60; m++ {
			if l, ok := Witness(n, m); ok && m%l != 0 {
				t.Errorf("Witness(%d, %d) = %d does not divide m", n, m, l)
			}
		}
	}
}
