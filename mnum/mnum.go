// Package mnum exposes the number theory behind the paper's space
// characterization: the set
//
//	M(n) = { m : ∀ ℓ, 1 < ℓ ≤ n : gcd(ℓ, m) = 1 }
//
// of anonymous-memory sizes for which symmetric deadlock-free mutual
// exclusion is solvable (m ∈ M(n) \ {1} for read/write registers,
// m ∈ M(n) for read/modify/write registers).
//
// Useful facts surfaced by this package: for m > 1, membership is
// equivalent to "the smallest prime factor of m exceeds n"; consequently
// every member other than 1 is greater than n, the smallest such member is
// the smallest prime above n, and M(n) is infinite.
package mnum

import "anonmutex/internal/mset"

// GCD returns the greatest common divisor of a and b.
func GCD(a, b int) int { return mset.GCD(a, b) }

// InM reports whether m ∈ M(n).
func InM(n, m int) bool { return mset.InM(n, m) }

// Witness returns the smallest ℓ with 1 < ℓ ≤ n and gcd(ℓ, m) > 1 — a
// certificate that m ∉ M(n) — with ok = true, or ok = false when m ∈ M(n).
// A returned witness is always prime and divides m; it is exactly the ℓ
// the Theorem 5 ring construction uses.
func Witness(n, m int) (l int, ok bool) { return mset.Witness(n, m) }

// MinRW returns the smallest legal memory size for the paper's RW-model
// algorithm with n ≥ 2 processes: the smallest m ∈ M(n) with m ≥ n,
// equal to the smallest prime above n. It panics if n < 2.
func MinRW(n int) int { return mset.MinRW(n) }

// MinRMW returns the smallest legal memory size for the RMW-model
// algorithm: always 1 (the degenerate single-register memory is a member
// of every M(n)). It panics if n < 2.
func MinRMW(n int) int { return mset.MinRMW(n) }

// MinRMWAbove returns the smallest non-degenerate (m > 1) legal RMW
// memory size, equal to MinRW(n).
func MinRMWAbove(n int) int { return mset.MinRMWAbove(n) }

// Members returns all m in [lo, hi] with m ∈ M(n), ascending.
func Members(n, lo, hi int) []int { return mset.Members(n, lo, hi) }

// NonMembers returns all m in [lo, hi] with m ∉ M(n), ascending.
func NonMembers(n, lo, hi int) []int { return mset.NonMembers(n, lo, hi) }

// ValidateRW checks the RW-model precondition (n ≥ 2, m ∈ M(n), m ≥ n),
// returning a descriptive error naming the failing clause.
func ValidateRW(n, m int) error { return mset.ValidateRW(n, m) }

// ValidateRMW checks the RMW-model precondition (n ≥ 2, m ∈ M(n)).
func ValidateRMW(n, m int) error { return mset.ValidateRMW(n, m) }
