// Benchmark harness: one benchmark family per paper artifact (DESIGN.md
// §3). Run with:
//
//	go test -bench=. -benchmem
//
// Families:
//
//	BenchmarkTableI_*    — permutation-translated register access (Table I)
//	BenchmarkFigure1_*   — Algorithm 1 acquisitions, solo and contended
//	BenchmarkFigure2_*   — Algorithm 2 acquisitions, solo and contended
//	BenchmarkTableII_*   — exhaustive model-check throughput per cell
//	BenchmarkTheorem5_*  — lock-step ring construction rounds
//	BenchmarkEntryCost_* — shared-memory steps to enter (reported metric)
//	BenchmarkThroughput_*— anonymous locks vs non-anonymous baselines (E5)
//	BenchmarkSnapshot_*  — double-scan snapshot under writers (E6)
//
// Absolute numbers are machine-dependent; the shapes the paper implies
// (RW ≫ RMW; anonymous ≥ non-anonymous; all-m vs majority entry) are
// asserted in EXPERIMENTS.md from recorded runs.
package anonmutex_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"anonmutex"
	"anonmutex/internal/amem"
	"anonmutex/internal/baseline"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/xrand"
	"anonmutex/sim"
)

// ---------------------------------------------------------------------------
// Table I: the cost of anonymity at the memory level — reads and writes
// routed through a permutation vs. direct.

func BenchmarkTableI_PermutedAccess(b *testing.B) {
	const m = 7
	mem := amem.New(m)
	g := id.NewGenerator()
	for _, mode := range []string{"identity", "random"} {
		b.Run(mode, func(b *testing.B) {
			var p perm.Perm
			if mode == "identity" {
				p = perm.Identity(m)
			} else {
				p = perm.Random(m, xrand.New(1))
			}
			v, err := mem.NewView(g.MustNew(), p)
			if err != nil {
				b.Fatal(err)
			}
			me := v.Me()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Write(i%m, me)
				_ = v.Read((i + 3) % m)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figures 1 and 2: real-lock acquisition cost.

// benchLockSolo measures uncontended sessions. newProcs must create a
// FRESH lock with its handles on every call: the benchmark framework
// re-invokes the body while calibrating b.N, and handle capacity is per
// lock.
func benchLockSolo(b *testing.B, newProcs func(n int) ([]benchProc, error)) {
	procs, err := newProcs(1)
	if err != nil {
		b.Fatal(err)
	}
	p := procs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Lock(); err != nil {
			b.Fatal(err)
		}
		if err := p.Unlock(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchProc interface {
	Lock() error
	Unlock() error
}

func benchLockContended(b *testing.B, n int, newProcs func(n int) ([]benchProc, error)) {
	procs, err := newProcs(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	for _, p := range procs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				if err := p.Lock(); err != nil {
					b.Error(err)
					return
				}
				if err := p.Unlock(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// newRWProcs creates a fresh RWLock for count processes and allocates all
// its handles.
func newRWProcs(n int, opts ...anonmutex.Option) func(count int) ([]benchProc, error) {
	return func(count int) ([]benchProc, error) {
		l, err := anonmutex.NewRWLock(n, opts...)
		if err != nil {
			return nil, err
		}
		procs := make([]benchProc, count)
		for i := range procs {
			if procs[i], err = l.NewProcess(); err != nil {
				return nil, err
			}
		}
		return procs, nil
	}
}

func newRMWProcs(n int, opts ...anonmutex.Option) func(count int) ([]benchProc, error) {
	return func(count int) ([]benchProc, error) {
		l, err := anonmutex.NewRMWLock(n, opts...)
		if err != nil {
			return nil, err
		}
		procs := make([]benchProc, count)
		for i := range procs {
			if procs[i], err = l.NewProcess(); err != nil {
				return nil, err
			}
		}
		return procs, nil
	}
}

func BenchmarkFigure1_RWLock(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("solo/n=%d/m=%d", n, anonmutex.MinRegistersRW(n)), func(b *testing.B) {
			benchLockSolo(b, newRWProcs(n))
		})
	}
	for _, n := range []int{2, 3} {
		b.Run(fmt.Sprintf("contended/n=%d/m=%d", n, anonmutex.MinRegistersRW(n)), func(b *testing.B) {
			benchLockContended(b, n, newRWProcs(n))
		})
	}
}

func BenchmarkFigure2_RMWLock(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("solo/n=%d/m=%d", n, anonmutex.MinRegistersRMW(n)), func(b *testing.B) {
			benchLockSolo(b, newRMWProcs(n))
		})
	}
	b.Run("solo/n=2/m=1", func(b *testing.B) {
		benchLockSolo(b, newRMWProcs(2, anonmutex.WithRegisters(1)))
	})
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("contended/n=%d/m=%d", n, anonmutex.MinRegistersRMW(n)), func(b *testing.B) {
			benchLockContended(b, n, newRMWProcs(n))
		})
	}
}

// ---------------------------------------------------------------------------
// Table II: throughput of the exhaustive verification backing each cell.

func BenchmarkTableII_ModelCheck(b *testing.B) {
	cells := []struct {
		name string
		cfg  sim.Config
	}{
		{"rw-sufficient-m3", sim.Config{Algorithm: sim.RW, N: 2, M: 3}},
		{"rw-necessary-m4", sim.Config{Algorithm: sim.RW, N: 2, M: 4, Unchecked: true}},
		{"rmw-sufficient-m3", sim.Config{Algorithm: sim.RMW, N: 2, M: 3}},
		{"rmw-necessary-m2", sim.Config{Algorithm: sim.RMW, N: 2, M: 2, Unchecked: true}},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				res, err := sim.Check(c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// ---------------------------------------------------------------------------
// Theorem 5: full ring constructions to their verdicts.

func BenchmarkTheorem5_LockStep(b *testing.B) {
	cases := []struct {
		name string
		alg  sim.Algorithm
		l, m int
	}{
		{"alg2-livelock-l2-m4", sim.RMW, 2, 4},
		{"alg2-livelock-l3-m9", sim.RMW, 3, 9},
		{"alg1-livelock-l2-m4", sim.RW, 2, 4},
		{"greedy-me-break-l3-m6", sim.Greedy, 3, 6},
		{"alg2-progress-l3-m7", sim.RMW, 3, 7},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				v, err := sim.LowerBound(c.alg, c.l, c.m, 0)
				if err != nil {
					b.Fatal(err)
				}
				rounds = v.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds-to-verdict")
		})
	}
}

// ---------------------------------------------------------------------------
// §I-C entry cost: shared-memory steps per acquisition, solo, reported as
// a metric so the all-m vs majority comparison is visible in bench output.

func BenchmarkEntryCost_StepsToEnter(b *testing.B) {
	for _, alg := range []sim.Algorithm{sim.RW, sim.RMW} {
		for _, n := range []int{2, 4, 6} {
			b.Run(fmt.Sprintf("%v/n=%d", alg, n), func(b *testing.B) {
				var steps float64
				for i := 0; i < b.N; i++ {
					m := anonmutex.MinRegistersRW(n)
					res, err := sim.Run(sim.Config{
						Algorithm: alg, N: 1, M: m, Unchecked: true, Sessions: 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					steps = float64(res.PerProc[0].LockSteps)
				}
				b.ReportMetric(steps, "steps-to-enter")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E5: throughput against the non-anonymous baselines.

func BenchmarkThroughput_Locks(b *testing.B) {
	const n = 2
	mkBaseline := func(newLock func() (baseline.Lock, error)) func(count int) ([]benchProc, error) {
		return func(count int) ([]benchProc, error) {
			l, err := newLock()
			if err != nil {
				return nil, err
			}
			procs := make([]benchProc, count)
			for i := range procs {
				h, err := l.NewHandle()
				if err != nil {
					return nil, err
				}
				procs[i] = errlessAdapter{h}
			}
			return procs, nil
		}
	}
	cases := []struct {
		name string
		mk   func(count int) ([]benchProc, error)
	}{
		{"anonymous-rw-m3", newRWProcs(n)},
		{"anonymous-rmw-m3", newRMWProcs(n)},
		{"anonymous-rmw-m1", newRMWProcs(n, anonmutex.WithRegisters(1))},
		{"bakery", mkBaseline(func() (baseline.Lock, error) { return baseline.NewBakery(n) })},
		{"peterson-tree", mkBaseline(func() (baseline.Lock, error) { return baseline.NewPeterson(n) })},
		{"ticket", mkBaseline(func() (baseline.Lock, error) { return baseline.NewTicket(), nil })},
		{"ttas", mkBaseline(func() (baseline.Lock, error) { return baseline.NewTTAS(), nil })},
		{"sync.Mutex", mkBaseline(func() (baseline.Lock, error) { return baseline.NewGo(), nil })},
	}
	for _, c := range cases {
		b.Run("contended/"+c.name, func(b *testing.B) {
			benchLockContended(b, n, c.mk)
		})
	}
}

type errlessAdapter struct{ h baseline.Handle }

func (a errlessAdapter) Lock() error   { a.h.Lock(); return nil }
func (a errlessAdapter) Unlock() error { a.h.Unlock(); return nil }

// ---------------------------------------------------------------------------
// E6: the double-scan snapshot under concurrent writers (the RW model's
// dominant cost).

func BenchmarkSnapshot_DoubleScan(b *testing.B) {
	for _, writers := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			const m = 5
			mem := amem.New(m)
			g := id.NewGenerator()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				v, err := mem.NewView(g.MustNew(), perm.Identity(m))
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
							v.Write(i%m, v.Me())
							i++
						}
					}
				}()
			}
			reader, err := mem.NewView(g.MustNew(), perm.Identity(m))
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]id.ID, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reader.Snapshot(buf)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			calls, collects := reader.SnapshotStats()
			b.ReportMetric(float64(collects)/float64(calls), "collects/snapshot")
		})
	}
}
