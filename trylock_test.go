package anonmutex_test

// TryLock must be hard-bounded: a handful of shared-memory operations,
// never a wait for the holder's critical section to end. The lockd
// acquire fast path and lockmgr.TryAcquire/AcquireFast are built on
// this guarantee — before it existed, a competitor winning the register
// race could make a "non-blocking" probe wait out an arbitrarily long
// critical section.

import (
	"testing"
	"time"

	"anonmutex"
)

type tryLocker interface {
	Lock() error
	TryLock() (bool, error)
	Unlock() error
}

func checkTryLockBounded(t *testing.T, a, b tryLocker) {
	t.Helper()
	if err := a.Lock(); err != nil {
		t.Fatal(err)
	}
	// The holder parks inside the critical section indefinitely; the
	// probe must come back on its own op budget, not on the holder's
	// schedule.
	done := make(chan struct{})
	go func() {
		defer close(done)
		ok, err := b.TryLock()
		if err != nil {
			t.Error(err)
			return
		}
		if ok {
			t.Error("TryLock acquired a held lock")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TryLock blocked on a held lock")
	}
	if err := a.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Free lock: the bounded attempt must succeed.
	ok, err := b.TryLock()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("TryLock failed on a free lock")
	}
	if err := b.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestTryLockBoundedRMW(t *testing.T) {
	lock, err := anonmutex.NewRMWLock(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	checkTryLockBounded(t, a, b)
}

func TestTryLockBoundedRMWNoFastPath(t *testing.T) {
	lock, err := anonmutex.NewRMWLock(2, anonmutex.WithoutSoloFastPath())
	if err != nil {
		t.Fatal(err)
	}
	a, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	checkTryLockBounded(t, a, b)
}

func TestTryLockBoundedRW(t *testing.T) {
	lock, err := anonmutex.NewRWLock(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	checkTryLockBounded(t, a, b)
}

// TestTryLockLeavesNoResidue: after a failed TryLock the prober must be
// invisible (its withdraw erased its identity), so the holder's release
// and a fresh acquisition proceed normally.
func TestTryLockLeavesNoResidue(t *testing.T) {
	lock, err := anonmutex.NewRMWLock(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := a.Lock(); err != nil {
			t.Fatal(err)
		}
		if ok, err := b.TryLock(); err != nil || ok {
			t.Fatalf("iter %d: TryLock on held lock = %v, %v", i, ok, err)
		}
		if err := a.Unlock(); err != nil {
			t.Fatal(err)
		}
		// b must now be able to win normally.
		if err := b.Lock(); err != nil {
			t.Fatal(err)
		}
		if err := b.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Aborts() == 0 {
		t.Error("failed TryLocks were not counted as withdrawn attempts")
	}
}
