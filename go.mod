module anonmutex

go 1.24
