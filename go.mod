module anonmutex

go 1.23
