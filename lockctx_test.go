package anonmutex

// LockCtx / TryLockFor tests on the hardware substrate: deadline-bounded
// acquisition under real concurrency. The -race runs of these tests are
// the amem half of the cancellation acceptance check (the vmem half is
// internal/engine's boundary-exhaustive test).

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ctxLocker is the surface these tests need from both process types.
type ctxLocker interface {
	Lock() error
	LockCtx(ctx context.Context) error
	TryLockFor(d time.Duration) (bool, error)
	Unlock() error
	Aborts() uint64
}

// newHandles builds n handles of the requested lock kind.
func newHandles(t *testing.T, kind string, n int) []ctxLocker {
	t.Helper()
	hs := make([]ctxLocker, n)
	switch kind {
	case "rw":
		l, err := NewRWLock(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hs {
			p, err := l.NewProcess()
			if err != nil {
				t.Fatal(err)
			}
			hs[i] = p
		}
	case "rmw":
		l, err := NewRMWLock(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range hs {
			p, err := l.NewProcess()
			if err != nil {
				t.Fatal(err)
			}
			hs[i] = p
		}
	default:
		t.Fatalf("unknown lock kind %q", kind)
	}
	return hs
}

// TestTryLockForExpiresWhileHeld pins the deterministic abort: with the
// lock held, a bounded attempt must come back (false, nil) within its
// deadline's order of magnitude, withdraw cleanly, and succeed once the
// holder leaves.
func TestTryLockForExpiresWhileHeld(t *testing.T) {
	for _, kind := range []string{"rw", "rmw"} {
		t.Run(kind, func(t *testing.T) {
			hs := newHandles(t, kind, 2)
			if err := hs[0].Lock(); err != nil {
				t.Fatal(err)
			}
			ok, err := hs[1].TryLockFor(2 * time.Millisecond)
			if err != nil {
				t.Fatalf("TryLockFor: %v", err)
			}
			if ok {
				t.Fatal("TryLockFor acquired a held lock")
			}
			if hs[1].Aborts() != 1 {
				t.Fatalf("aborts = %d, want 1", hs[1].Aborts())
			}
			if err := hs[0].Unlock(); err != nil {
				t.Fatal(err)
			}
			ok, err = hs[1].TryLockFor(5 * time.Second)
			if err != nil || !ok {
				t.Fatalf("TryLockFor after release = (%v, %v), want (true, nil)", ok, err)
			}
			if err := hs[1].Unlock(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLockCtxCancelledBeforeStart must not touch the machine at all.
func TestLockCtxCancelledBeforeStart(t *testing.T) {
	hs := newHandles(t, "rmw", 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := hs[0].LockCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("LockCtx = %v, want context.Canceled", err)
	}
	// The handle must remain fully usable.
	if err := hs[0].Lock(); err != nil {
		t.Fatal(err)
	}
	if err := hs[0].Unlock(); err != nil {
		t.Fatal(err)
	}
}

// TestLockCtxRace mixes deadline-bounded and blocking acquirers under
// real goroutine concurrency. The shared counter is deliberately
// unsynchronized except by the lock: the race detector turns any mutual
// exclusion corruption after a withdraw into a test failure, and the
// holder cross-check (held must step 0→1→0) catches double entries even
// without -race.
func TestLockCtxRace(t *testing.T) {
	const (
		n      = 4
		cycles = 60
	)
	for _, kind := range []string{"rw", "rmw"} {
		t.Run(kind, func(t *testing.T) {
			hs := newHandles(t, kind, n)
			var (
				counter  int64 // lock-protected; not atomic on purpose
				held     atomic.Int32
				entries  atomic.Int64
				aborted  atomic.Int64
				failures atomic.Int64
				wg       sync.WaitGroup
			)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(me int) {
					defer wg.Done()
					h := hs[me]
					for c := 0; c < cycles; c++ {
						acquired := false
						if me%2 == 0 {
							// Deadline-bounded: a mix of expirable and
							// generous budgets.
							d := time.Duration(50*(c%5)) * time.Microsecond
							if c%5 == 4 {
								d = time.Second
							}
							ok, err := h.TryLockFor(d)
							if err != nil {
								failures.Add(1)
								return
							}
							if !ok {
								aborted.Add(1)
								continue
							}
							acquired = true
						} else {
							if err := h.Lock(); err != nil {
								failures.Add(1)
								return
							}
							acquired = true
						}
						if acquired {
							if held.Add(1) != 1 {
								failures.Add(1)
							}
							counter++
							entries.Add(1)
							held.Add(-1)
							if err := h.Unlock(); err != nil {
								failures.Add(1)
								return
							}
						}
					}
				}(i)
			}
			wg.Wait()
			if failures.Load() != 0 {
				t.Fatalf("%d lifecycle failures or double entries", failures.Load())
			}
			if counter != entries.Load() {
				t.Fatalf("counter %d != entries %d: critical section corrupted", counter, entries.Load())
			}
			t.Logf("%s: %d entries, %d deadline aborts", kind, entries.Load(), aborted.Load())
		})
	}
}
