package journal

// The crash-point harness: the test binary re-executes itself as a
// child that runs a grant workload against a journal with one crash
// point armed (via ANONMUTEX_JOURNAL_CRASHPOINT), dies there with
// os.Exit — no flush, no deferred cleanup — and the parent then
// recovers the directory and checks the invariants that recovery
// promises at EVERY point in the commit and compaction paths:
//
//   1. Open never panics and never errors (torn tails truncate).
//   2. Every lease the child's Commit acknowledged is recovered.
//   3. Every recovered token is at or below the recovered TokenHigh
//      (the band argument: no post-restart token can collide).
//   4. Recovery is idempotent: a second open recovers the same state
//      and finds nothing left to truncate.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

const (
	crashChildEnv    = "ANONMUTEX_JOURNAL_CRASH_CHILD"
	crashChildDirEnv = "ANONMUTEX_JOURNAL_CRASH_DIR"
	crashChildAckEnv = "ANONMUTEX_JOURNAL_CRASH_ACK"
)

// TestCrashChild is the child body; it only runs when re-executed by
// TestCrashPoints with the child env set.
func TestCrashChild(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-harness child only")
	}
	dir := os.Getenv(crashChildDirEnv)
	ackPath := os.Getenv(crashChildAckEnv)
	w, _, err := Open(dir, Options{Sync: SyncAlways, CompactBytes: 700, BandSize: 1 << 10})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(3)
	}
	high, err := w.ReserveTokens(0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child reserve: %v\n", err)
		os.Exit(3)
	}
	// Grant key-i under token i+1 and Commit each; after every ack,
	// record it in the ack file (O_SYNC so the parent trusts it even
	// though the child dies without cleanup). The armed crash point
	// fires somewhere inside this loop — possibly inside a compaction
	// triggered by an Append.
	ack, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_SYNC, 0o644)
	if err != nil {
		os.Exit(3)
	}
	dl := time.Now().Add(time.Hour).UnixNano()
	for i := 0; i < 64; i++ {
		tok := uint64(i + 1)
		if tok > high {
			if high, err = w.ReserveTokens(tok); err != nil {
				os.Exit(3)
			}
		}
		lsn := w.Append(Record{Op: OpGrant, Name: fmt.Sprintf("key-%02d", i), Token: tok, Deadline: dl})
		if i%3 == 2 {
			// Churn so compaction actually triggers mid-run.
			w.Append(Record{Op: OpRelease, Name: fmt.Sprintf("key-%02d", i), Token: tok})
		}
		if err := w.Commit(lsn); err != nil {
			os.Exit(3)
		}
		if i%3 != 2 {
			fmt.Fprintf(ack, "key-%02d %d\n", i, tok)
		}
	}
	// Crash point never fired (mis-armed): exit distinctly.
	os.Exit(7)
}

func TestCrashPoints(t *testing.T) {
	if os.Getenv(crashChildEnv) == "1" {
		t.Skip("child process")
	}
	if testing.Short() {
		t.Skip("re-exec harness")
	}
	points := []string{
		crashBeforeSync + ":20",
		crashAfterSync + ":20",
		crashCompactBeforeRename,
		crashCompactAfterRename,
		crashCompactAfterTruncate,
		crashCompactBeforeRename + ":1",
		crashCompactAfterTruncate + ":1",
		crashAppendTorn + ":30",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			ackPath := filepath.Join(dir, "acks.txt")
			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$")
			cmd.Env = append(os.Environ(),
				crashChildEnv+"=1",
				crashChildDirEnv+"="+filepath.Join(dir, "journal"),
				crashChildAckEnv+"="+ackPath,
				CrashEnvVar+"="+point,
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != crashExitCode {
				t.Fatalf("child did not die at crash point %s: err=%v out=%s", point, err, out)
			}

			// The acked set: every (key, token) whose Commit returned.
			acked := map[string]uint64{}
			if raw, err := os.ReadFile(ackPath); err == nil {
				var name string
				var tok uint64
				for _, line := range splitLines(raw) {
					if _, err := fmt.Sscanf(line, "%s %d", &name, &tok); err == nil {
						acked[name] = tok
					}
				}
			}

			w, st, err := Open(filepath.Join(dir, "journal"), Options{})
			if err != nil {
				t.Fatalf("recovery after %s: %v", point, err)
			}
			m := map[string]uint64{}
			for _, l := range st.Leases {
				m[l.Name] = l.Token
				if l.Token > st.TokenHigh {
					t.Errorf("recovered token %d for %s above TokenHigh %d", l.Token, l.Name, st.TokenHigh)
				}
			}
			var missing []string
			for name, tok := range acked {
				if m[name] != tok {
					missing = append(missing, fmt.Sprintf("%s=%d(got %d)", name, tok, m[name]))
				}
			}
			sort.Strings(missing)
			if len(missing) > 0 {
				t.Fatalf("acked grants lost after %s: %v (recovered %d, acked %d)", point, missing, len(m), len(acked))
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Idempotent reopen: identical state, clean tail.
			w2, st2, err := Open(filepath.Join(dir, "journal"), Options{})
			if err != nil {
				t.Fatalf("second recovery after %s: %v", point, err)
			}
			defer w2.Close()
			if st2.Truncated != 0 {
				t.Errorf("second open after %s still truncated %d bytes", point, st2.Truncated)
			}
			if st2.TokenHigh != st.TokenHigh {
				t.Errorf("TokenHigh changed across reopen: %d then %d", st.TokenHigh, st2.TokenHigh)
			}
			m2 := map[string]uint64{}
			for _, l := range st2.Leases {
				m2[l.Name] = l.Token
			}
			if len(m2) != len(m) {
				t.Errorf("reopen recovered %d leases, first open %d", len(m2), len(m))
			}
			for k, v := range m {
				if m2[k] != v {
					t.Errorf("reopen lease %s token %d, first open %d", k, m2[k], v)
				}
			}
		})
	}
}

func splitLines(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == '\n' {
			if i > start {
				out = append(out, string(b[start:i]))
			}
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, string(b[start:]))
	}
	return out
}
