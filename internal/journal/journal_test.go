package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) (*Log, State) {
	t.Helper()
	w, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, st
}

func leaseMap(st State) map[string]LeaseState {
	m := make(map[string]LeaseState, len(st.Leases))
	for _, l := range st.Leases {
		m[l.Name] = l
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, st := openT(t, dir, Options{})
	if len(st.Leases) != 0 || st.TokenHigh != 0 {
		t.Fatalf("fresh journal recovered state: %+v", st)
	}
	dl := time.Now().Add(time.Second).UnixNano()
	lsn := w.Append(Record{Op: OpGrant, Name: "a", Token: 1, Deadline: dl})
	if err := w.Commit(lsn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	w.Append(Record{Op: OpGrant, Name: "b", Token: 2, Deadline: dl})
	w.Append(Record{Op: OpExtend, Name: "a", Token: 1, Deadline: dl + int64(time.Second)})
	w.Append(Record{Op: OpRelease, Name: "b", Token: 2})
	w.Append(Record{Op: OpGrant, Name: "c", Token: 3, Deadline: dl})
	w.Append(Record{Op: OpExpire, Name: "c", Token: 3})
	w.Append(Record{Op: OpGrant, Name: "c", Token: 4, Deadline: dl})
	if _, err := w.ReserveTokens(10); err != nil {
		t.Fatalf("ReserveTokens: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, st2 := openT(t, dir, Options{})
	defer w2.Close()
	m := leaseMap(st2)
	if len(m) != 2 {
		t.Fatalf("recovered %d leases, want 2: %+v", len(m), st2.Leases)
	}
	if a := m["a"]; a.Token != 1 || a.Deadline != dl+int64(time.Second) {
		t.Fatalf("lease a: %+v", a)
	}
	if c := m["c"]; c.Token != 4 {
		t.Fatalf("lease c: %+v", c)
	}
	if st2.TokenHigh < 10 {
		t.Fatalf("TokenHigh = %d, want >= reservation min 10", st2.TokenHigh)
	}
	if st2.Truncated != 0 {
		t.Fatalf("clean shutdown recovered with Truncated = %d", st2.Truncated)
	}
}

// TestStaleDeactivationIgnored: a release/revoke/expire carrying an old
// token must not kill the key's newer lease — neither live in the
// mirror nor during replay.
func TestStaleDeactivationIgnored(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{})
	dl := time.Now().Add(time.Second).UnixNano()
	w.Append(Record{Op: OpGrant, Name: "k", Token: 7, Deadline: dl})
	w.Append(Record{Op: OpRevoke, Name: "k", Token: 3})              // stale revoke
	w.Append(Record{Op: OpExtend, Name: "k", Token: 5, Deadline: 1}) // stale extend
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, st := openT(t, dir, Options{})
	defer w2.Close()
	m := leaseMap(st)
	if k, ok := m["k"]; !ok || k.Token != 7 || k.Deadline != dl {
		t.Fatalf("lease k after stale ops: %+v (ok=%v)", k, ok)
	}
}

// TestTornTailEveryPrefix replays every possible torn tail: the log is
// cut after each byte length and must always recover without panic,
// yielding the state implied by the whole frames that survived the cut.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{})
	dl := int64(1e18)
	recs := []Record{
		{Op: OpGrant, Name: "alpha", Token: 1, Deadline: dl},
		{Op: OpGrant, Name: "beta", Token: 2, Deadline: dl},
		{Op: OpReserve, Token: 1 << 20},
		{Op: OpRelease, Name: "alpha", Token: 1},
		{Op: OpGrant, Name: "gamma", Token: 3, Deadline: dl},
	}
	for _, r := range recs {
		w.Append(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}

	// Expected state after each whole-frame prefix, computed by walking
	// the intact file.
	type snap struct {
		bytes  int
		leases map[string]uint64
		high   uint64
	}
	snaps := []snap{{0, map[string]uint64{}, 0}}
	rest := full
	cur := map[string]uint64{}
	high := uint64(0)
	for len(rest) > 0 {
		_, rec, r2, err := decodeRecord(rest)
		if err != nil {
			t.Fatalf("intact log failed to decode: %v", err)
		}
		switch rec.Op {
		case OpGrant:
			cur[rec.Name] = rec.Token
		case OpRelease:
			if cur[rec.Name] == rec.Token {
				delete(cur, rec.Name)
			}
		case OpReserve:
			if rec.Token > high {
				high = rec.Token
			}
		}
		m := make(map[string]uint64, len(cur))
		for k, v := range cur {
			m[k] = v
		}
		snaps = append(snaps, snap{len(full) - len(r2), m, high})
		rest = r2
	}

	for cut := 0; cut <= len(full); cut++ {
		// The largest whole-frame prefix within this cut.
		want := snaps[0]
		for _, s := range snaps {
			if s.bytes <= cut {
				want = s
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, st := openT(t, cdir, Options{})
		m := leaseMap(st)
		if len(m) != len(want.leases) {
			t.Fatalf("cut %d: recovered %d leases, want %d", cut, len(m), len(want.leases))
		}
		for k, tok := range want.leases {
			if m[k].Token != tok {
				t.Fatalf("cut %d: lease %s token %d, want %d", cut, k, m[k].Token, tok)
			}
		}
		if st.TokenHigh != want.high {
			t.Fatalf("cut %d: TokenHigh %d, want %d", cut, st.TokenHigh, want.high)
		}
		if wantTrunc := cut - want.bytes; st.Truncated != wantTrunc {
			t.Fatalf("cut %d: Truncated %d, want %d", cut, st.Truncated, wantTrunc)
		}
		// The truncation must be repair, not just tolerance: a second
		// open sees a clean log.
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		w3, st3 := openT(t, cdir, Options{})
		if st3.Truncated != 0 {
			t.Fatalf("cut %d: reopen after repair still truncated %d bytes", cut, st3.Truncated)
		}
		w3.Close()
	}
}

// TestCorruptByte flips each byte of a record mid-log and asserts
// recovery truncates at or before the damage — no panic, no record
// after the flip surviving.
func TestCorruptByte(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{})
	w.Append(Record{Op: OpGrant, Name: "first", Token: 1, Deadline: 99})
	w.Append(Record{Op: OpGrant, Name: "second", Token: 2, Deadline: 99})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Byte length of the first frame.
	_, _, rest, err := decodeRecord(full)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(full) - len(rest)

	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x80
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, st := openT(t, cdir, Options{})
		m := leaseMap(st)
		if i < firstLen {
			// Damage in frame 1: nothing after it may survive either.
			if len(m) != 0 {
				t.Fatalf("flip at %d (frame 1): recovered %d leases, want 0", i, len(m))
			}
		} else {
			if _, ok := m["second"]; ok {
				t.Fatalf("flip at %d (frame 2): corrupt record survived", i)
			}
			if lease, ok := m["first"]; !ok || lease.Token != 1 {
				t.Fatalf("flip at %d: intact frame 1 lost: %+v", i, m)
			}
		}
		w2.Close()
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{CompactBytes: 512})
	dl := int64(5e18)
	// Churn far past CompactBytes; end with a known survivor set.
	for i := 0; i < 200; i++ {
		w.Append(Record{Op: OpGrant, Name: "churn", Token: uint64(i + 1), Deadline: dl})
		w.Append(Record{Op: OpRelease, Name: "churn", Token: uint64(i + 1)})
	}
	w.Append(Record{Op: OpGrant, Name: "keep", Token: 999, Deadline: dl})
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after %d bytes of churn: %v", w.SizeOnDisk(), err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sz := (&Log{dir: dir}).SizeOnDisk(); sz > 2048 {
		t.Fatalf("compaction left %d bytes on disk", sz)
	}
	w2, st := openT(t, dir, Options{CompactBytes: 512})
	defer w2.Close()
	m := leaseMap(st)
	if len(m) != 1 || m["keep"].Token != 999 {
		t.Fatalf("recovered %+v, want only keep/999", st.Leases)
	}
}

// TestCompactionPreservesReservation: the token high-water mark must
// survive being folded into a snapshot.
func TestCompactionPreservesReservation(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{CompactBytes: 256, BandSize: 1000})
	high, err := w.ReserveTokens(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w.Append(Record{Op: OpGrant, Name: "x", Token: uint64(i + 1), Deadline: 1})
		w.Append(Record{Op: OpRelease, Name: "x", Token: uint64(i + 1)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, st := openT(t, dir, Options{})
	defer w2.Close()
	if st.TokenHigh != high {
		t.Fatalf("TokenHigh %d after compaction, want %d", st.TokenHigh, high)
	}
}

// TestReserveTokensMonotonic: successive reservations never go
// backward, and honor a floor jump (the epoch<<32 composition).
func TestReserveTokensMonotonic(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{BandSize: 100})
	h1, err := w.ReserveTokens(0)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != 100 {
		t.Fatalf("first band = %d, want 100", h1)
	}
	h2, _ := w.ReserveTokens(0)
	if h2 != 200 {
		t.Fatalf("second band = %d, want 200", h2)
	}
	// A floor far above the band (epoch bump): band restarts above it.
	floor := uint64(1) << 32
	h3, _ := w.ReserveTokens(floor)
	if h3 != floor+100 {
		t.Fatalf("post-floor band = %d, want %d", h3, floor+100)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, st := openT(t, dir, Options{BandSize: 100})
	defer w2.Close()
	if st.TokenHigh != h3 {
		t.Fatalf("recovered TokenHigh %d, want %d", st.TokenHigh, h3)
	}
}

// TestAbandonLosesBufferedOnly: Abandon models a crash — buffered
// frames die, but everything a SyncAlways Commit acknowledged
// survives.
func TestAbandonLosesBufferedOnly(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Sync: SyncAlways, SyncEvery: time.Hour})
	lsn := w.Append(Record{Op: OpGrant, Name: "durable", Token: 1, Deadline: 9})
	if err := w.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Op: OpGrant, Name: "lost", Token: 2, Deadline: 9})
	w.Abandon()
	w2, st := openT(t, dir, Options{})
	defer w2.Close()
	m := leaseMap(st)
	if _, ok := m["durable"]; !ok {
		t.Fatalf("committed record lost across Abandon: %+v", st.Leases)
	}
	if _, ok := m["lost"]; ok {
		t.Fatalf("uncommitted buffered record survived Abandon")
	}
}

// TestSyncIntervalDurability: under the interval policy, records become
// durable within ~SyncEvery without any Commit blocking.
func TestSyncIntervalDurability(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{Sync: SyncInterval, SyncEvery: time.Millisecond})
	lsn := w.Append(Record{Op: OpGrant, Name: "k", Token: 1, Deadline: 9})
	if err := w.Commit(lsn); err != nil { // must not block
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.syncMu.Lock()
		synced := w.syncedLSN >= lsn
		w.syncMu.Unlock()
		if synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval sync never covered the record")
		}
		time.Sleep(time.Millisecond)
	}
	w.Abandon()
	w2, st := openT(t, dir, Options{})
	defer w2.Close()
	if _, ok := leaseMap(st)["k"]; !ok {
		t.Fatal("interval-synced record lost across Abandon")
	}
}

func TestParseSync(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"", SyncAlways, true},
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"off", SyncOff, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSync(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSync(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		if rt, err := ParseSync(p.String()); err != nil || rt != p {
			t.Errorf("String/Parse round-trip broke for %v", p)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	w, _ := openT(t, dir, Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if lsn := w.Append(Record{Op: OpRelease, Name: "late", Token: 1}); lsn != 0 {
		t.Fatalf("Append after Close returned lsn %d, want 0", lsn)
	}
	if _, err := w.ReserveTokens(0); err != ErrClosed {
		t.Fatalf("ReserveTokens after Close: %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
