package journal

import (
	"testing"
	"time"
)

// BenchmarkAppend is the fsync-off hot path a grant pays when
// durability is disabled or deferred: frame encode + buffer append +
// mirror update under one mutex.
func BenchmarkAppend(b *testing.B) {
	w, _, err := Open(b.TempDir(), Options{Sync: SyncOff, CompactBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	dl := time.Now().Add(time.Hour).UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := uint64(i + 1)
		w.Append(Record{Op: OpGrant, Name: "bench-key", Token: tok, Deadline: dl})
		w.Append(Record{Op: OpRelease, Name: "bench-key", Token: tok})
	}
}

// BenchmarkCommitInterval is a grant's journal cost under the interval
// policy: Append plus a Commit that only checks the sticky error.
func BenchmarkCommitInterval(b *testing.B) {
	w, _, err := Open(b.TempDir(), Options{Sync: SyncInterval, CompactBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	dl := time.Now().Add(time.Hour).UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn := w.Append(Record{Op: OpGrant, Name: "bench-key", Token: uint64(i + 1), Deadline: dl})
		if err := w.Commit(lsn); err != nil {
			b.Fatal(err)
		}
		w.Append(Record{Op: OpRelease, Name: "bench-key", Token: uint64(i + 1)})
	}
}

// BenchmarkCommitAlways pays a real fsync per sequential commit — the
// worst case the group-commit path amortizes away under concurrency.
func BenchmarkCommitAlways(b *testing.B) {
	w, _, err := Open(b.TempDir(), Options{Sync: SyncAlways, CompactBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	dl := time.Now().Add(time.Hour).UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsn := w.Append(Record{Op: OpGrant, Name: "bench-key", Token: uint64(i + 1), Deadline: dl})
		if err := w.Commit(lsn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitAlwaysParallel measures group commit: concurrent
// committers share fsyncs, so per-op cost should sit well below one
// fsync once parallelism exceeds one.
func BenchmarkCommitAlwaysParallel(b *testing.B) {
	w, _, err := Open(b.TempDir(), Options{Sync: SyncAlways, CompactBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	dl := time.Now().Add(time.Hour).UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lsn := w.Append(Record{Op: OpGrant, Name: "bench-key", Token: 1, Deadline: dl})
			if err := w.Commit(lsn); err != nil {
				b.Fatal(err)
			}
		}
	})
}
