package journal

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Crash-point injection for the re-exec crash harness: when the
// environment names a point, reaching it kills the process with
// os.Exit — no deferred cleanup, no flush, exactly what kill -9 leaves
// behind. The env var is read once at init so the hot path pays one
// string compare against a package variable, nothing more.

// CrashEnvVar names the crash point to die at — "point" or "point:N"
// to survive the first N hits and die on hit N+1. Empty disables all
// points. Exported so the harness (a _test child process) and the
// package agree on the spelling.
const CrashEnvVar = "ANONMUTEX_JOURNAL_CRASHPOINT"

const (
	crashBeforeSync           = "commit-before-sync"
	crashAfterSync            = "commit-after-sync"
	crashCompactBeforeRename  = "compact-before-rename"
	crashCompactAfterRename   = "compact-after-rename"
	crashCompactAfterTruncate = "compact-after-truncate"
	crashAppendTorn           = "append-torn"
)

// crashExitCode distinguishes an intentional crash-point death from a
// test failure in the child process.
const crashExitCode = 42

var (
	crashEnv   string
	crashSkips atomic.Int64
)

func init() {
	crashEnv = os.Getenv(CrashEnvVar)
	if point, n, ok := strings.Cut(crashEnv, ":"); ok {
		if skips, err := strconv.Atoi(n); err == nil {
			crashEnv = point
			crashSkips.Store(int64(skips))
		}
	}
}

// crashArmed reports whether the named point should fire now,
// consuming one skip if any remain.
func crashArmed(point string) bool {
	if crashEnv != point {
		return false
	}
	return crashSkips.Add(-1) < 0
}

// crash dies if the named point is armed.
func crash(point string) {
	if crashArmed(point) {
		os.Exit(crashExitCode)
	}
}
