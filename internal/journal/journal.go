// Package journal is the durable write-ahead log behind lease state:
// an append-only file of lease transitions (grant, release,
// heartbeat-extend, revoke, expire, token-band reserve) that a
// restarted lockd replays to resume serving its grants instead of
// rejoining blank. The log is the restart half of the fencing-token
// story: tokens only order operations if they are never reissued, and
// without persistence a restart would wind the counter back to zero.
//
// On-disk format. Every record is one self-checking frame:
//
//	| len u32 LE | crc32c u32 LE | payload |
//	payload = lsn uvarint | op u8 | token uvarint | deadline uvarint | name bytes
//
// len counts the payload only; the CRC (Castagnoli, the polynomial
// with hardware support on both amd64 and arm64) covers the payload.
// The LSN is a log-wide sequence number, which is what makes snapshot
// + log coexistence safe: a snapshot records the LSN of the last
// transition it reflects, and replay skips every log record at or
// below it — so a crash between "snapshot renamed" and "log truncated"
// replays the stale records as no-ops instead of resurrecting released
// leases.
//
// Recovery is torn-tail-tolerant by construction: the log is replayed
// record by record, and the first frame that fails its length or CRC
// check ends the replay — the file is truncated there, never repaired
// in place and never a panic. A torn write can only damage the tail
// (the file is append-only), so everything before the damage is intact
// and everything after it was never acknowledged under the `always`
// fsync policy.
//
// Durability is a policy, not a constant:
//
//   - always: Commit blocks until the record is on stable storage,
//     with group commit — concurrent committers share one fsync, so
//     the cost per grant under load is a fraction of an fsync.
//   - interval: a background goroutine fsyncs every SyncEvery; Commit
//     returns immediately. A crash loses at most one interval.
//   - off: records are flushed to the OS but never explicitly synced;
//     a clean process exit (or Close) loses nothing, a machine crash
//     may lose anything since the OS last wrote back.
//
// Token bands make the fencing counter restart-monotonic without an
// fsync per token: ReserveTokens persists a high-water mark BandSize
// tokens ahead of the counter (synced immediately under always and
// interval), and recovery restarts the counter at the last reserved
// mark — tokens the crashed process issued are necessarily at or below
// it, so no token is ever issued twice across a restart, at the cost
// of one sync and a skipped band per 2^20 grants. The reserved mark
// composes with the cluster's epoch floors (epoch<<32): both are
// max-merges on the same counter, and a floor raise past the band
// simply triggers the next reservation.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Op is one lease-transition record type.
type Op uint8

const (
	// OpGrant records a lease attach: name now held under token until
	// deadline.
	OpGrant Op = 1 + iota
	// OpRelease records a voluntary release of (name, token).
	OpRelease
	// OpExtend records a heartbeat renewal: (name, token)'s deadline
	// moved.
	OpExtend
	// OpRevoke records a forcible administrative/handoff revocation.
	OpRevoke
	// OpExpire records a TTL expiry executed by the lease manager.
	OpExpire
	// OpReserve records a token-band reservation: Token is the new
	// high-water mark below which no token may be issued after a
	// restart... above which, rather: recovery restarts the counter AT
	// this mark, so every post-restart token exceeds it.
	OpReserve
	// opSnapMeta is the snapshot file's header record: Token carries
	// the reserved token high-water mark, Deadline carries (as an
	// integer) the LSN of the last transition the snapshot reflects.
	// It never appears in the log itself.
	opSnapMeta
)

// Record is one lease transition. Deadline (unix nanoseconds) is
// meaningful for OpGrant and OpExtend; Token is the reservation mark
// for OpReserve and the lease's fencing token otherwise.
type Record struct {
	Op       Op
	Token    uint64
	Deadline int64
	Name     string
}

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Commit returns (group-committed).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer; Commit does not block.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS writes back on its own
	// schedule. Clean shutdown (Close) still syncs.
	SyncOff
)

// ParseSync maps the CLI spelling of a policy ("always", "interval",
// "off"; "" defaults to always) to its SyncPolicy.
func ParseSync(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval, or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options parameterizes Open. The zero value is usable: SyncAlways,
// and defaults for everything else.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 5ms). Under
	// SyncAlways and SyncOff it paces the background flush that pushes
	// records with no Commit caller (releases, expiries) to the OS.
	SyncEvery time.Duration
	// CompactBytes is how large the log may grow before a snapshot is
	// written and the log truncated (default 1 MiB).
	CompactBytes int64
	// BandSize is how many tokens one ReserveTokens call reserves
	// (default 1<<20).
	BandSize uint64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		if o.Sync == SyncInterval {
			o.SyncEvery = 5 * time.Millisecond
		} else {
			o.SyncEvery = 100 * time.Millisecond
		}
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 1 << 20
	}
	if o.BandSize == 0 {
		o.BandSize = 1 << 20
	}
	return o
}

// LeaseState is one active lease as recovery reconstructed it.
type LeaseState struct {
	Name     string
	Token    uint64
	Deadline int64 // unix nanoseconds
}

// State is what Open recovered: the leases that were active when the
// previous process stopped, the reserved token high-water mark the
// fencing counter must restart at, and the recovery accounting.
type State struct {
	Leases    []LeaseState
	TokenHigh uint64
	// Replayed counts log records applied (snapshot-covered records
	// skipped by LSN are not counted).
	Replayed int
	// Truncated is how many torn-tail bytes recovery cut off the log
	// (0 on a clean shutdown).
	Truncated int
}

const (
	frameHeader    = 8 // len u32 + crc u32
	maxRecordBytes = 1 << 20

	walName      = "wal.log"
	snapName     = "snapshot"
	snapTempName = "snapshot.tmp"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt ends a replay: the next frame fails its structural or CRC
// check. Recovery converts it into truncation, never an error.
var errCorrupt = errors.New("journal: corrupt record")

// errShort ends a replay at a frame that ran out of bytes — the torn
// tail itself.
var errShort = errors.New("journal: truncated record")

// ErrClosed fails appends and commits after Close or Abandon.
var ErrClosed = errors.New("journal: closed")

// appendFrame encodes one framed record.
func appendFrame(dst []byte, lsn uint64, rec Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.AppendUvarint(dst, lsn)
	dst = append(dst, byte(rec.Op))
	dst = binary.AppendUvarint(dst, rec.Token)
	dst = binary.AppendUvarint(dst, uint64(rec.Deadline))
	dst = append(dst, rec.Name...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeRecord decodes the first frame in buf, returning the remaining
// bytes. errShort means buf ends inside the frame (a torn tail);
// errCorrupt means the frame is structurally bad or fails its CRC.
// Either way the caller must stop: nothing after a bad frame can be
// trusted, because frame boundaries are only known by walking.
func decodeRecord(buf []byte) (lsn uint64, rec Record, rest []byte, err error) {
	if len(buf) < frameHeader {
		return 0, Record{}, buf, errShort
	}
	n := binary.LittleEndian.Uint32(buf)
	if n == 0 || n > maxRecordBytes {
		return 0, Record{}, buf, errCorrupt
	}
	if len(buf) < frameHeader+int(n) {
		return 0, Record{}, buf, errShort
	}
	payload := buf[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:]) {
		return 0, Record{}, buf, errCorrupt
	}
	lsn, k := binary.Uvarint(payload)
	if k <= 0 || k >= len(payload) {
		return 0, Record{}, buf, errCorrupt
	}
	rec.Op = Op(payload[k])
	k++
	if rec.Op < OpGrant || rec.Op > opSnapMeta {
		return 0, Record{}, buf, errCorrupt
	}
	tok, tn := binary.Uvarint(payload[k:])
	if tn <= 0 {
		return 0, Record{}, buf, errCorrupt
	}
	k += tn
	dl, dn := binary.Uvarint(payload[k:])
	if dn <= 0 {
		return 0, Record{}, buf, errCorrupt
	}
	k += dn
	rec.Token = tok
	rec.Deadline = int64(dl)
	rec.Name = string(payload[k:])
	return lsn, rec, buf[frameHeader+int(n):], nil
}

// activeLease is the mirror's view of one held lease.
type activeLease struct {
	token    uint64
	deadline int64
}

// Log is an open journal: the append path, the durability machinery,
// and an in-memory mirror of the replayed state that snapshots are
// written from. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu guards the append path: the file writer, the LSN counter, the
	// state mirror, and compaction (which rewrites both files).
	mu        sync.Mutex
	f         *os.File
	wbuf      []byte // unflushed frames (the journal's own write buffer)
	frame     []byte // per-append scratch, reused
	nextLSN   uint64
	walBytes  int64
	active    map[string]activeLease
	tokenHigh uint64
	appendErr error // sticky: first write/compaction failure
	closed    bool

	// Group commit for SyncAlways: one committer becomes the leader,
	// flushes and fsyncs everything appended so far, and wakes the
	// followers whose LSNs that covered.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedLSN uint64
	syncing   bool
	syncErr   error

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the journal in dir and recovers its
// state: the snapshot is loaded, the log replayed on top of it —
// truncating at the first corrupt or torn record — and the log left
// ready for appends.
func Open(dir string, opts Options) (*Log, State, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, State{}, fmt.Errorf("journal: %w", err)
	}
	w := &Log{
		dir:    dir,
		opts:   opts,
		active: make(map[string]activeLease),
		stop:   make(chan struct{}),
	}
	w.syncCond = sync.NewCond(&w.syncMu)

	snapLSN, err := w.loadSnapshot()
	if err != nil {
		return nil, State{}, err
	}
	st, lastLSN, err := w.replayWAL(snapLSN)
	if err != nil {
		return nil, State{}, err
	}
	if lastLSN < snapLSN {
		lastLSN = snapLSN
	}
	w.nextLSN = lastLSN + 1
	w.syncedLSN = lastLSN
	st.TokenHigh = w.tokenHigh
	for name, a := range w.active {
		st.Leases = append(st.Leases, LeaseState{Name: name, Token: a.token, Deadline: a.deadline})
	}

	w.wg.Add(1)
	go w.run()
	return w, st, nil
}

// loadSnapshot reads the snapshot file into the mirror, returning the
// LSN it covers (0 when there is no snapshot). The snapshot is written
// atomically (tmp, fsync, rename), so unlike the log it is not
// truncation-repaired: damage here is disk corruption and surfaces as
// an error.
func (w *Log) loadSnapshot() (uint64, error) {
	buf, err := os.ReadFile(filepath.Join(w.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	var snapLSN uint64
	first := true
	for len(buf) > 0 {
		lsn, rec, rest, err := decodeRecord(buf)
		if err != nil {
			return 0, fmt.Errorf("journal: snapshot %s is corrupt: %w", snapName, err)
		}
		buf = rest
		if first {
			if rec.Op != opSnapMeta {
				return 0, fmt.Errorf("journal: snapshot %s does not start with its meta record", snapName)
			}
			w.tokenHigh = rec.Token
			snapLSN = uint64(rec.Deadline)
			first = false
			continue
		}
		if rec.Op != OpGrant {
			return 0, fmt.Errorf("journal: snapshot %s holds op %d, want only grants", snapName, rec.Op)
		}
		w.active[rec.Name] = activeLease{token: rec.Token, deadline: rec.Deadline}
		_ = lsn
	}
	if first && len(buf) == 0 {
		// A zero-length snapshot file: treat as absent (a crash exactly
		// at creation before any write was renamed in — not produced by
		// this code, but cheap to tolerate).
		return 0, nil
	}
	return snapLSN, nil
}

// replayWAL reads the log, applies every record newer than snapLSN to
// the mirror, truncates the file at the first corrupt or torn frame,
// and opens it for appending.
func (w *Log) replayWAL(snapLSN uint64) (State, uint64, error) {
	path := filepath.Join(w.dir, walName)
	buf, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return State{}, 0, fmt.Errorf("journal: %w", err)
	}
	var st State
	good := 0
	lastLSN := uint64(0)
	rest := buf
	for len(rest) > 0 {
		lsn, rec, r2, err := decodeRecord(rest)
		if err != nil {
			// The torn tail: truncate here. Everything before this frame
			// passed its CRC; nothing after it has a trustworthy boundary.
			break
		}
		good = len(buf) - len(r2)
		rest = r2
		if lsn > lastLSN {
			lastLSN = lsn
		}
		if lsn <= snapLSN {
			continue // already reflected in the snapshot
		}
		w.apply(rec)
		st.Replayed++
	}
	st.Truncated = len(buf) - good

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return State{}, 0, fmt.Errorf("journal: %w", err)
	}
	if st.Truncated > 0 {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return State{}, 0, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return State{}, 0, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return State{}, 0, fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.walBytes = int64(good)
	return st, lastLSN, nil
}

// apply folds one record into the state mirror. Deactivations check
// the token so a stale record (a replayed duplicate, an op that lost
// its arbitration) cannot kill a newer lease on the same key.
func (w *Log) apply(rec Record) {
	switch rec.Op {
	case OpGrant:
		w.active[rec.Name] = activeLease{token: rec.Token, deadline: rec.Deadline}
	case OpExtend:
		if a, ok := w.active[rec.Name]; ok && a.token == rec.Token {
			a.deadline = rec.Deadline
			w.active[rec.Name] = a
		}
	case OpRelease, OpRevoke, OpExpire:
		if a, ok := w.active[rec.Name]; ok && a.token == rec.Token {
			delete(w.active, rec.Name)
		}
	case OpReserve:
		if rec.Token > w.tokenHigh {
			w.tokenHigh = rec.Token
		}
	}
}

// Append adds one record to the log and returns its LSN for Commit.
// It never blocks on I/O: the frame goes to the journal's write
// buffer, ordered by the append lock; durability is Commit's job.
// Append after Close is a harmless no-op (LSN 0): late records from
// lease teardown lose nothing that matters — the process is exiting.
func (w *Log) Append(rec Record) uint64 {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.frame = appendFrame(w.frame[:0], lsn, rec)
	if crashArmed(crashAppendTorn) {
		// Crash-point: write half a frame straight to disk, then die —
		// the torn tail recovery must truncate.
		w.f.Write(w.wbuf)
		w.f.Write(w.frame[:len(w.frame)/2])
		w.f.Sync()
		os.Exit(crashExitCode)
	}
	w.wbuf = append(w.wbuf, w.frame...)
	w.walBytes += int64(len(w.frame))
	w.apply(rec)
	if w.walBytes >= w.opts.CompactBytes && w.appendErr == nil {
		w.compactLocked()
	}
	w.mu.Unlock()
	return lsn
}

// flushLocked writes the buffered frames to the file. Caller holds mu.
func (w *Log) flushLocked() error {
	if w.appendErr != nil {
		return w.appendErr
	}
	if len(w.wbuf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.wbuf); err != nil {
		w.appendErr = err
		return err
	}
	w.wbuf = w.wbuf[:0]
	return nil
}

// flush pushes buffered frames to the OS and reports the highest LSN
// now (at least) file-resident.
func (w *Log) flush() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	target := w.nextLSN - 1
	if w.closed {
		return target, ErrClosed
	}
	return target, w.flushLocked()
}

// Commit makes the record behind lsn durable per the sync policy.
// Under SyncAlways it blocks until an fsync covers lsn, sharing the
// fsync with every concurrent committer (group commit); under the
// other policies it only surfaces a sticky write error, if any.
func (w *Log) Commit(lsn uint64) error {
	if w.opts.Sync != SyncAlways {
		w.mu.Lock()
		err := w.appendErr
		w.mu.Unlock()
		return err
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	for w.syncedLSN < lsn {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()
		target, err := w.flush()
		if err == nil {
			crash(crashBeforeSync)
			err = w.f.Sync()
			crash(crashAfterSync)
		}
		w.syncMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
		} else if target > w.syncedLSN {
			w.syncedLSN = target
		}
		w.syncCond.Broadcast()
	}
	return w.syncErr
}

// forceSync flushes and fsyncs right now, regardless of policy.
func (w *Log) forceSync() error {
	target, err := w.flush()
	if err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncMu.Lock()
	if target > w.syncedLSN {
		w.syncedLSN = target
	}
	w.syncMu.Unlock()
	return nil
}

// ReserveTokens reserves a fresh token band: it appends a reservation
// record for a high-water mark BandSize above max(current mark, min)
// and makes it durable before returning, so tokens up to the returned
// mark may be issued with no further journal traffic — none of them
// can ever be reissued after a restart. Under SyncOff the record is
// flushed but not synced: that policy's contract already gives up
// machine-crash guarantees.
func (w *Log) ReserveTokens(min uint64) (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	high := w.tokenHigh
	if min > high {
		high = min
	}
	high += w.opts.BandSize
	w.mu.Unlock()
	// The append records the mark via the usual path (mirror update
	// included); the band is usable only once durable.
	w.Append(Record{Op: OpReserve, Token: high})
	var err error
	if w.opts.Sync == SyncOff {
		_, err = w.flush()
	} else {
		err = w.forceSync()
	}
	if err != nil {
		return 0, err
	}
	return high, nil
}

// compactLocked writes a snapshot of the mirror and truncates the log.
// Caller holds mu. Crash ordering: the snapshot is complete and synced
// before the rename makes it current, and replay skips log records the
// snapshot covers (by LSN), so a crash anywhere in this sequence
// recovers exactly the pre- or post-compaction state, never a mix.
func (w *Log) compactLocked() {
	lastLSN := w.nextLSN - 1
	buf := appendFrame(nil, lastLSN, Record{Op: opSnapMeta, Token: w.tokenHigh, Deadline: int64(lastLSN)})
	for name, a := range w.active {
		buf = appendFrame(buf, 0, Record{Op: OpGrant, Token: a.token, Deadline: a.deadline, Name: name})
	}
	tmp := filepath.Join(w.dir, snapTempName)
	if err := writeFileSync(tmp, buf); err != nil {
		w.appendErr = fmt.Errorf("journal: snapshot: %w", err)
		return
	}
	crash(crashCompactBeforeRename)
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName)); err != nil {
		w.appendErr = fmt.Errorf("journal: snapshot rename: %w", err)
		return
	}
	syncDir(w.dir)
	crash(crashCompactAfterRename)
	// Everything in the log — including frames still in the write
	// buffer — is at or below lastLSN and therefore covered by the
	// snapshot; drop it all.
	w.wbuf = w.wbuf[:0]
	if err := w.f.Truncate(0); err != nil {
		w.appendErr = fmt.Errorf("journal: wal truncate: %w", err)
		return
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		w.appendErr = fmt.Errorf("journal: %w", err)
		return
	}
	w.walBytes = 0
	crash(crashCompactAfterTruncate)
	// The snapshot made every outstanding record durable; release any
	// SyncAlways committers still waiting on those LSNs.
	w.syncMu.Lock()
	if lastLSN > w.syncedLSN {
		w.syncedLSN = lastLSN
	}
	w.syncMu.Unlock()
	w.syncCond.Broadcast()
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file's entry is
// durable. Best-effort: not every platform or filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// run is the background flusher: under SyncInterval it syncs every
// SyncEvery; under SyncAlways and SyncOff it only flushes, catching
// the records nobody Commits (releases, expiries) so they reach the
// OS promptly.
func (w *Log) run() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		if w.opts.Sync == SyncInterval {
			w.forceSync()
		} else {
			w.flush()
		}
	}
}

// SizeOnDisk reports the current log length plus snapshot length —
// an observability probe for tests and stats.
func (w *Log) SizeOnDisk() int64 {
	var n int64
	if fi, err := os.Stat(filepath.Join(w.dir, walName)); err == nil {
		n += fi.Size()
	}
	if fi, err := os.Stat(filepath.Join(w.dir, snapName)); err == nil {
		n += fi.Size()
	}
	return n
}

// Sync flushes and fsyncs everything appended so far, regardless of
// policy — the graceful-drain hook: a clean shutdown that syncs never
// needs torn-tail recovery.
func (w *Log) Sync() error {
	w.syncMu.Lock()
	closedErr := w.syncErr
	w.syncMu.Unlock()
	if closedErr != nil {
		return closedErr
	}
	return w.forceSync()
}

// Close syncs and closes the journal. Idempotent.
func (w *Log) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
	err := w.forceSync()
	w.mu.Lock()
	w.closed = true
	cerr := w.f.Close()
	w.mu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the journal as a crash would: the background flusher
// stops, buffered frames are dropped on the floor, and the file is
// closed with no flush and no sync. It exists for crash-simulation
// tests — a process that really dies gets exactly this behavior (or
// worse: a torn frame, which Append's crash-point covers).
func (w *Log) Abandon() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.wbuf = w.wbuf[:0]
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
}
