package journal

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// seedFrames are the committed corpus under
// testdata/fuzz/FuzzJournalDecode (regenerate with
// ANONMUTEX_GEN_CORPUS=1 go test -run TestGenerateCorpus). They are
// also f.Add'ed so the fuzz engine has them even if testdata moves.
func seedFrames() [][]byte {
	multi := appendFrame(nil, 1, Record{Op: OpGrant, Name: "a", Token: 1, Deadline: 99})
	multi = appendFrame(multi, 2, Record{Op: OpExtend, Name: "a", Token: 1, Deadline: 150})
	multi = appendFrame(multi, 3, Record{Op: OpReserve, Token: 1 << 20})
	multi = appendFrame(multi, 4, Record{Op: OpRelease, Name: "a", Token: 1})
	return [][]byte{
		appendFrame(nil, 1, Record{Op: OpGrant, Name: "key", Token: 7, Deadline: 1 << 40}),
		multi,
		multi[:len(multi)-3], // torn tail
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
	}
}

func TestGenerateCorpus(t *testing.T) {
	if os.Getenv("ANONMUTEX_GEN_CORPUS") == "" {
		t.Skip("set ANONMUTEX_GEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seedFrames() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")"
		if err := os.WriteFile(filepath.Join(dir, "seed-0"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzJournalDecode feeds arbitrary bytes through both consumers of
// the frame format: the raw decode loop (must make progress, never
// panic, and round-trip every record it accepts through the encoder)
// and full recovery (Open on the bytes as a WAL must always succeed by
// truncation, never panic — the torn-tail contract).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	for _, s := range seedFrames() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			lsn, rec, r2, err := decodeRecord(rest)
			if err != nil {
				break
			}
			if len(r2) >= len(rest) {
				t.Fatalf("decode made no progress at %d bytes", len(rest))
			}
			enc := appendFrame(nil, lsn, rec)
			lsn2, rec2, rem, err2 := decodeRecord(enc)
			if err2 != nil || len(rem) != 0 || lsn2 != lsn || rec2 != rec {
				t.Fatalf("re-encode round-trip broke: %d/%+v -> %v, %d/%+v (%d left)",
					lsn, rec, err2, lsn2, rec2, len(rem))
			}
			rest = r2
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery must truncate, not error: %v", err)
		}
		if st.Truncated > len(data) {
			t.Fatalf("truncated %d bytes of a %d-byte log", st.Truncated, len(data))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
