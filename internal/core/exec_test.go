package core

// Test scaffolding: a deterministic single-threaded executor over a plain
// shared value array, with per-process permutations. It lets tests script
// exact interleavings of machine steps, playing the role of both the
// memory and the scheduler.

import (
	"testing"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
)

// fakeMem is the external observer's array of algorithmic values.
type fakeMem []id.ID

// fakeExec executes one process's ops against a shared fakeMem through a
// permutation.
type fakeExec struct {
	mem fakeMem
	p   perm.Perm
}

func newFakeExec(mem fakeMem, p perm.Perm) *fakeExec {
	if p == nil {
		p = perm.Identity(len(mem))
	}
	return &fakeExec{mem: mem, p: p}
}

func (f *fakeExec) exec(op Op) OpResult {
	switch op.Kind {
	case OpRead:
		return OpResult{Val: f.mem[f.p[op.X]]}
	case OpWrite:
		f.mem[f.p[op.X]] = op.Val
		return OpResult{}
	case OpCAS:
		phys := f.p[op.X]
		if f.mem[phys].Equal(op.Old) {
			f.mem[phys] = op.New
			return OpResult{Swapped: true}
		}
		return OpResult{Swapped: false}
	case OpSnapshot:
		snap := make([]id.ID, len(f.mem))
		for x := range snap {
			snap[x] = f.mem[f.p[x]]
		}
		return OpResult{Snap: snap}
	default:
		panic("fakeExec: unknown op kind")
	}
}

// step executes the machine's pending op and feeds the result back.
func step(m Machine, e *fakeExec) Status {
	return m.Advance(e.exec(m.PendingOp()))
}

// stepUntil drives the machine until it reaches want or the budget is
// exhausted; it reports the steps used and whether want was reached.
func stepUntil(t *testing.T, m Machine, e *fakeExec, want Status, budget int) (int, bool) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if m.Status() == want {
			return i, true
		}
		step(m, e)
	}
	return budget, m.Status() == want
}

// mustLock drives a full lock() to the critical section.
func mustLock(t *testing.T, m Machine, e *fakeExec, budget int) int {
	t.Helper()
	if err := m.StartLock(); err != nil {
		t.Fatalf("StartLock: %v", err)
	}
	steps, ok := stepUntil(t, m, e, StatusInCS, budget)
	if !ok {
		t.Fatalf("lock() did not reach the CS within %d steps (status %v, line %d)", budget, m.Status(), m.Line())
	}
	return steps
}

// mustUnlock drives a full unlock() back to idle.
func mustUnlock(t *testing.T, m Machine, e *fakeExec, budget int) {
	t.Helper()
	if err := m.StartUnlock(); err != nil {
		t.Fatalf("StartUnlock: %v", err)
	}
	if _, ok := stepUntil(t, m, e, StatusIdle, budget); !ok {
		t.Fatalf("unlock() did not finish within %d steps", budget)
	}
}

func newIDs(t *testing.T, n int) []id.ID {
	t.Helper()
	g := id.NewGenerator()
	ids, err := g.NewN(n)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func memAll(mem fakeMem, v id.ID) bool {
	for _, x := range mem {
		if !x.Equal(v) {
			return false
		}
	}
	return true
}

func memCount(mem fakeMem, v id.ID) int {
	c := 0
	for _, x := range mem {
		if x.Equal(v) {
			c++
		}
	}
	return c
}
