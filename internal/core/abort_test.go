package core

// Withdraw (StartAbort) tests: aborting a lock() at every op boundary
// must erase the aborter's identity from the shared memory, complete in a
// bounded number of ops, and leave the memory in a state from which the
// remaining processes still acquire the lock.

import (
	"testing"

	"anonmutex/internal/id"
)

// abortMachines builds one machine of each abortable kind for tests that
// sweep both algorithms.
func abortMachines(t *testing.T, me id.ID, m int) map[string]func() Machine {
	t.Helper()
	return map[string]func() Machine{
		"alg1": func() Machine {
			a, err := NewAlg1Unchecked(me, m, Alg1Config{Choice: ChooseFirstBottom})
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"alg2": func() Machine {
			a, err := NewAlg2Unchecked(me, m, Alg2Config{})
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
	}
}

// TestAbortErasesIdentityAtEveryBoundary aborts a solo lock() after every
// possible number of executed ops and checks the withdraw leaves no
// residue. With no competition the machine's trajectory is deterministic,
// so "after k ops" enumerates every reachable op boundary.
func TestAbortErasesIdentityAtEveryBoundary(t *testing.T) {
	const m = 5
	ids := newIDs(t, 1)
	for name, mk := range abortMachines(t, ids[0], m) {
		t.Run(name, func(t *testing.T) {
			// First find how many ops a solo lock() needs, to bound the sweep.
			probe := mk()
			mem := make(fakeMem, m)
			e := newFakeExec(mem, nil)
			total := mustLock(t, probe, e, 10_000)
			for k := 0; k <= total; k++ {
				mem := make(fakeMem, m)
				e := newFakeExec(mem, nil)
				a := mk()
				if err := a.StartLock(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < k && a.Status() == StatusRunning; i++ {
					step(a, e)
				}
				if a.Status() != StatusRunning {
					// k == total: the machine entered the CS; abort no longer
					// applies (and must refuse).
					if err := a.StartAbort(); err == nil {
						t.Fatalf("abort after %d ops: StartAbort accepted in status %v", k, a.Status())
					}
					continue
				}
				if err := a.StartAbort(); err != nil {
					t.Fatalf("abort after %d ops: %v", k, err)
				}
				steps, ok := stepUntil(t, a, e, StatusIdle, 2*m+1)
				if !ok {
					t.Fatalf("abort after %d ops: withdraw not Idle within %d ops (status %v)",
						k, 2*m+1, a.Status())
				}
				if steps > 2*m {
					t.Fatalf("abort after %d ops: withdraw took %d ops, want <= %d", k, steps, 2*m)
				}
				if c := memCount(mem, ids[0]); c != 0 {
					t.Fatalf("abort after %d ops: %d registers still hold the aborter (mem %v)", k, c, mem)
				}
			}
		})
	}
}

// TestAbortInvisibleToLaterAcquisition interleaves an aborter with a
// competitor: the aborter runs k ops of lock(), withdraws completely, and
// then the competitor must acquire with the aborter nowhere in sight —
// and must still see a memory containing only its own identity or ⊥.
func TestAbortInvisibleToLaterAcquisition(t *testing.T) {
	const m = 5
	ids := newIDs(t, 2)
	for name, mk := range abortMachines(t, ids[0], m) {
		t.Run(name, func(t *testing.T) {
			for k := 0; k <= 3*m; k++ {
				mem := make(fakeMem, m)
				e := newFakeExec(mem, nil)
				aborter := mk()
				if err := aborter.StartLock(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < k && aborter.Status() == StatusRunning; i++ {
					step(aborter, e)
				}
				if aborter.Status() != StatusRunning {
					continue
				}
				if err := aborter.StartAbort(); err != nil {
					t.Fatal(err)
				}
				if _, ok := stepUntil(t, aborter, e, StatusIdle, 2*m+1); !ok {
					t.Fatalf("abort after %d ops: withdraw did not finish", k)
				}

				var comp Machine
				if name == "alg1" {
					c, err := NewAlg1Unchecked(ids[1], m, Alg1Config{Choice: ChooseFirstBottom})
					if err != nil {
						t.Fatal(err)
					}
					comp = c
				} else {
					c, err := NewAlg2Unchecked(ids[1], m, Alg2Config{})
					if err != nil {
						t.Fatal(err)
					}
					comp = c
				}
				ce := newFakeExec(mem, nil)
				mustLock(t, comp, ce, 10_000)
				if c := memCount(mem, ids[0]); c != 0 {
					t.Fatalf("abort after %d ops: aborter resurfaced during competitor's lock (mem %v)", k, mem)
				}
				mustUnlock(t, comp, ce, 10_000)
				if !memAll(mem, id.None) {
					t.Fatalf("abort after %d ops: memory not clean after competitor's cycle (mem %v)", k, mem)
				}
			}
		})
	}
}

// TestAbortLifecycleErrors pins the StartAbort preconditions: only a
// Running lock() can withdraw.
func TestAbortLifecycleErrors(t *testing.T) {
	const m = 5
	ids := newIDs(t, 1)
	for name, mk := range abortMachines(t, ids[0], m) {
		t.Run(name, func(t *testing.T) {
			mem := make(fakeMem, m)
			e := newFakeExec(mem, nil)
			a := mk()
			if err := a.StartAbort(); err == nil {
				t.Fatal("StartAbort accepted on an idle machine")
			}
			mustLock(t, a, e, 10_000)
			if err := a.StartAbort(); err == nil {
				t.Fatal("StartAbort accepted in the critical section")
			}
			if err := a.StartUnlock(); err != nil {
				t.Fatal(err)
			}
			if a.Status() == StatusRunning {
				if err := a.StartAbort(); err == nil {
					t.Fatal("StartAbort accepted during unlock()")
				}
				if _, ok := stepUntil(t, a, e, StatusIdle, 10_000); !ok {
					t.Fatal("unlock() did not finish")
				}
			}
			// A withdrawn machine must be able to lock again.
			if err := a.StartLock(); err != nil {
				t.Fatal(err)
			}
			step(a, e)
			if err := a.StartAbort(); err != nil {
				t.Fatal(err)
			}
			if _, ok := stepUntil(t, a, e, StatusIdle, 2*m+1); !ok {
				t.Fatal("withdraw did not finish")
			}
			mustLock(t, a, e, 10_000)
			mustUnlock(t, a, e, 10_000)
			if !memAll(mem, id.None) {
				t.Fatalf("memory not clean after abort→relock cycle (mem %v)", mem)
			}
		})
	}
}
