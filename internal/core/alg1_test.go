package core

import (
	"bytes"
	"testing"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/xrand"
)

func TestAlg1Preconditions(t *testing.T) {
	ids := newIDs(t, 1)
	cases := []struct {
		name   string
		n, m   int
		wantOK bool
	}{
		{"n2 m3", 2, 3, true},
		{"n2 m5", 2, 5, true},
		{"n2 m4 even", 2, 4, false},
		{"n2 m2 equal", 2, 2, false},
		{"n3 m5", 3, 5, true},
		{"n3 m7", 3, 7, true},
		{"n3 m9 divisible", 3, 9, false},
		{"n4 m25 composite member", 4, 25, true},
		{"n1 too few", 1, 3, false},
		{"m less than n", 5, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewAlg1(ids[0], tc.n, tc.m, Alg1Config{})
			if (err == nil) != tc.wantOK {
				t.Errorf("NewAlg1(n=%d, m=%d) error = %v, want ok=%v", tc.n, tc.m, err, tc.wantOK)
			}
		})
	}
	if _, err := NewAlg1(id.None, 2, 3, Alg1Config{}); err == nil {
		t.Error("NewAlg1 accepted ⊥ identity")
	}
	if _, err := NewAlg1(ids[0], 2, 3, Alg1Config{Choice: ChooseRandomBottom}); err == nil {
		t.Error("NewAlg1 accepted random policy without PRNG")
	}
	if _, err := NewAlg1Unchecked(ids[0], 4, Alg1Config{}); err != nil {
		t.Errorf("NewAlg1Unchecked rejected m=4: %v", err)
	}
	if _, err := NewAlg1Unchecked(ids[0], 0, Alg1Config{}); err == nil {
		t.Error("NewAlg1Unchecked accepted m=0")
	}
}

func TestAlg1SoloLockStepByStep(t *testing.T) {
	// A solo process on m=3: the exact op sequence is
	// snapshot, write 0, snapshot, write 1, snapshot, write 2, snapshot→CS.
	ids := newIDs(t, 1)
	me := ids[0]
	m, err := NewAlg1(me, 2, 3, Alg1Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := newFakeExec(make(fakeMem, 3), nil)
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	wantOps := []struct {
		kind OpKind
		x    int
	}{
		{OpSnapshot, 0},
		{OpWrite, 0},
		{OpSnapshot, 0},
		{OpWrite, 1},
		{OpSnapshot, 0},
		{OpWrite, 2},
		{OpSnapshot, 0},
	}
	for i, want := range wantOps {
		op := m.PendingOp()
		if op.Kind != want.kind || (want.kind == OpWrite && op.X != want.x) {
			t.Fatalf("step %d: op = %+v, want kind=%v x=%d", i, op, want.kind, want.x)
		}
		if op.Kind == OpWrite && !op.Val.Equal(me) {
			t.Fatalf("step %d: claim write has value %v, want own id", i, op.Val)
		}
		step(m, e)
	}
	if m.Status() != StatusInCS {
		t.Fatalf("status after solo lock = %v, want in-cs", m.Status())
	}
	if got := m.OwnedAtEntry(); got != 3 {
		t.Errorf("OwnedAtEntry = %d, want all m=3 (the RW model's entry cost)", got)
	}
	if got := m.LockSteps(); got != len(wantOps) {
		t.Errorf("LockSteps = %d, want %d", got, len(wantOps))
	}
	if !memAll(e.mem, me) {
		t.Errorf("memory after entry = %v, want all own id", e.mem)
	}
}

func TestAlg1SoloUnlockErasesEverything(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg1(ids[0], 2, 5, Alg1Config{})
	e := newFakeExec(make(fakeMem, 5), nil)
	mustLock(t, m, e, 100)
	mustUnlock(t, m, e, 100)
	for x, v := range e.mem {
		if !v.IsNone() {
			t.Errorf("register %d = %v after unlock, want ⊥", x, v)
		}
	}
	if m.Line() != 0 {
		t.Errorf("Line after unlock = %d, want 0", m.Line())
	}
}

func TestAlg1UnlockIsShrinkOverFullView(t *testing.T) {
	// Unlock of a proper lock performs exactly m reads and m writes
	// (shrink reads each owned register, sees its own id, erases it).
	ids := newIDs(t, 1)
	const mm = 3
	m, _ := NewAlg1(ids[0], 2, mm, Alg1Config{})
	e := newFakeExec(make(fakeMem, mm), nil)
	mustLock(t, m, e, 100)
	if err := m.StartUnlock(); err != nil {
		t.Fatal(err)
	}
	ops := 0
	reads, writes := 0, 0
	for m.Status() == StatusRunning {
		op := m.PendingOp()
		switch op.Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
			if !op.Val.IsNone() {
				t.Fatalf("unlock wrote %v, want ⊥", op.Val)
			}
		default:
			t.Fatalf("unlock issued %v", op.Kind)
		}
		step(m, e)
		if ops++; ops > 100 {
			t.Fatal("unlock did not terminate")
		}
	}
	if reads != mm || writes != mm {
		t.Errorf("unlock performed %d reads and %d writes, want %d and %d", reads, writes, mm, mm)
	}
}

func TestAlg1ShrinkSkipsOverwrittenRegisters(t *testing.T) {
	// Claim 2 of the paper: shrink writes ⊥ only into registers that still
	// hold the process's identity. We simulate an interferer overwriting
	// one of the winner's registers between the read and the decision —
	// the shrink read sees the foreign value and must not erase it.
	ids := newIDs(t, 2)
	me, other := ids[0], ids[1]
	m, _ := NewAlg1(me, 2, 3, Alg1Config{})
	e := newFakeExec(make(fakeMem, 3), nil)
	mustLock(t, m, e, 100)
	if err := m.StartUnlock(); err != nil {
		t.Fatal(err)
	}
	// Adversary overwrites register 1 before the shrink cursor reaches it.
	// (Cannot happen in a legal Algorithm 1 run while the winner is in the
	// CS, but shrink's read-check is what makes that claim locally true.)
	e.mem[1] = other
	if _, ok := stepUntil(t, m, e, StatusIdle, 100); !ok {
		t.Fatal("unlock did not finish")
	}
	if !e.mem[0].IsNone() || !e.mem[2].IsNone() {
		t.Error("unlock failed to erase still-owned registers")
	}
	if !e.mem[1].Equal(other) {
		t.Errorf("unlock erased a register owned by another process: %v", e.mem[1])
	}
}

func TestAlg1WaitsWhileOthersPresent(t *testing.T) {
	// Line 4 inner loop: a process that owns nothing and sees a non-empty
	// memory must keep snapshotting — never writing.
	ids := newIDs(t, 2)
	me, other := ids[0], ids[1]
	m, _ := NewAlg1(me, 2, 3, Alg1Config{})
	mem := fakeMem{other, id.None, id.None}
	e := newFakeExec(mem, nil)
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		op := m.PendingOp()
		if op.Kind != OpSnapshot {
			t.Fatalf("iteration %d: op %v, want only snapshots while blocked", i, op.Kind)
		}
		if m.Line() != 4 {
			t.Fatalf("iteration %d: line %d, want 4", i, m.Line())
		}
		step(m, e)
	}
	// Once the other process disappears, the machine claims the memory.
	for x := range e.mem {
		e.mem[x] = id.None
	}
	if _, ok := stepUntil(t, m, e, StatusInCS, 100); !ok {
		t.Fatal("machine did not proceed after memory emptied")
	}
}

func TestAlg1TwoProcessCompetitionScripted(t *testing.T) {
	// n=2, m=3. Script: both see an empty memory and race for register 0;
	// q writes first and p overwrites it (legal — p's snapshot showed ⊥).
	// q then owns nothing while the memory is non-empty, so q parks in the
	// line 4 inner loop; p claims the rest and enters. After p unlocks, q
	// claims the whole memory.
	ids := newIDs(t, 2)
	pm, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
	qm, _ := NewAlg1(ids[1], 2, 3, Alg1Config{})
	mem := make(fakeMem, 3)
	pe := newFakeExec(mem, nil)
	qe := newFakeExec(mem, nil)
	if err := pm.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	step(qm, qe) // q snapshot: empty → will claim register 0
	step(pm, pe) // p snapshot: empty → will claim register 0 too
	step(qm, qe) // q writes 0
	step(pm, pe) // p writes 0 — overwrites q! (legal: p saw ⊥ there)
	step(pm, pe) // p snapshot: owns 0; holes at 1,2 → claim 1
	step(pm, pe) // p writes 1
	step(qm, qe) // q snapshot: sees p at 0,1, hole at 2; q owns nothing...
	// q's view has no q entries and is not empty → q loops at line 4.
	if got := qm.PendingOp().Kind; got != OpSnapshot {
		t.Fatalf("q should be waiting at line 4, pending %v", got)
	}
	step(pm, pe) // p snapshot: owns 0,1, hole at 2 → claim 2
	step(pm, pe) // p writes 2
	step(pm, pe) // p snapshot: all mine → CS
	if pm.Status() != StatusInCS {
		t.Fatalf("p status %v, want in-cs", pm.Status())
	}
	// q keeps waiting while p is in the CS.
	for i := 0; i < 10; i++ {
		if got := qm.PendingOp().Kind; got != OpSnapshot {
			t.Fatalf("q escaped the wait loop with op %v while p is in CS", got)
		}
		step(qm, qe)
		if qm.Status() == StatusInCS {
			t.Fatal("mutual exclusion violated in scripted run")
		}
	}
	// p unlocks; q then claims the whole memory and enters.
	mustUnlock(t, pm, pe, 100)
	if _, ok := stepUntil(t, qm, qe, StatusInCS, 100); !ok {
		t.Fatal("q did not enter after p unlocked")
	}
}

func TestAlg1WithdrawBelowAverage(t *testing.T) {
	// Craft q's view directly: memory full with p owning 2 and q owning 1
	// (n=2, m=3). q must withdraw (shrink) and erase exactly its own
	// register.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	qm, _ := NewAlg1(q, 2, 3, Alg1Config{})
	mem := fakeMem{p, p, q}
	qe := newFakeExec(mem, nil)
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	step(qm, qe) // snapshot: full, q owns 1 < 3/2 → withdrawal shrink
	if qm.Line() != 9 {
		t.Fatalf("q at line %d after below-average full view, want 9 (shrink)", qm.Line())
	}
	step(qm, qe) // shrink read register 2 → still q
	step(qm, qe) // shrink write ⊥
	if !mem[2].IsNone() {
		t.Fatal("withdrawal did not erase q's register")
	}
	if !mem[0].Equal(p) || !mem[1].Equal(p) {
		t.Fatal("withdrawal touched p's registers")
	}
	// After shrink, q is back at line 4 and (owning nothing, memory
	// non-empty) keeps snapshotting.
	if qm.PendingOp().Kind != OpSnapshot || qm.Line() != 4 {
		t.Fatalf("q not back at line 4 after withdrawal (line %d)", qm.Line())
	}
}

func TestAlg1StaysAboveAverage(t *testing.T) {
	// p owns 2 of 3 with cnt=2: 2·2 = 4 ≥ 3, so p must NOT withdraw; with
	// a full, not-all-mine view it loops back to line 4.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	pmach, _ := NewAlg1(p, 2, 3, Alg1Config{})
	mem := fakeMem{p, p, q}
	pe := newFakeExec(mem, nil)
	if err := pmach.StartLock(); err != nil {
		t.Fatal(err)
	}
	step(pmach, pe)
	if pmach.Line() != 4 || pmach.PendingOp().Kind != OpSnapshot {
		t.Fatalf("p should loop to line 4, at line %d", pmach.Line())
	}
	if memCount(mem, p) != 2 {
		t.Fatal("p's registers changed although it must not withdraw")
	}
}

func TestAlg1ExactAverageWithholds(t *testing.T) {
	// The withdrawal condition is *strictly* below average. Construct
	// owned == m/cnt exactly: m=4 (unchecked; 4 ∉ M(2)), two processes
	// owning 2 each. Neither withdraws — the Theorem 5 wedge in miniature.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	pmach, _ := NewAlg1Unchecked(p, 4, Alg1Config{})
	qmach, _ := NewAlg1Unchecked(q, 4, Alg1Config{})
	mem := fakeMem{p, q, p, q}
	pe := newFakeExec(mem, nil)
	qe := newFakeExec(mem, nil)
	if err := pmach.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := qmach.StartLock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		step(pmach, pe)
		step(qmach, qe)
	}
	if memCount(mem, p) != 2 || memCount(mem, q) != 2 {
		t.Fatalf("memory changed under exact-average wedge: %v", mem)
	}
	if pmach.Status() == StatusInCS || qmach.Status() == StatusInCS {
		t.Fatal("a process entered the CS from a 2-2 split")
	}
}

func TestAlg1ChoicePolicies(t *testing.T) {
	ids := newIDs(t, 1)
	me := ids[0]
	mem := fakeMem{id.None, me, id.None} // holes at 0 and 2; owns 1
	cases := []struct {
		cfg    Alg1Config
		wantXs map[int]bool
	}{
		{Alg1Config{Choice: ChooseFirstBottom}, map[int]bool{0: true}},
		{Alg1Config{Choice: ChooseLastBottom}, map[int]bool{2: true}},
		{Alg1Config{Choice: ChooseRandomBottom, Rand: xrand.New(1)}, map[int]bool{0: true, 2: true}},
	}
	for _, tc := range cases {
		t.Run(tc.cfg.Choice.String(), func(t *testing.T) {
			m, err := NewAlg1Unchecked(me, 3, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			e := newFakeExec(append(fakeMem{}, mem...), nil)
			if err := m.StartLock(); err != nil {
				t.Fatal(err)
			}
			step(m, e) // snapshot
			op := m.PendingOp()
			if op.Kind != OpWrite || !tc.wantXs[op.X] {
				t.Errorf("claim op = %+v, want write into one of %v", op, tc.wantXs)
			}
		})
	}
}

func TestAlg1RandomChoiceCoversAllHoles(t *testing.T) {
	ids := newIDs(t, 1)
	me := ids[0]
	rng := xrand.New(3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		m, _ := NewAlg1Unchecked(me, 5, Alg1Config{Choice: ChooseRandomBottom, Rand: rng})
		e := newFakeExec(fakeMem{id.None, me, id.None, id.None, me}, nil)
		if err := m.StartLock(); err != nil {
			t.Fatal(err)
		}
		step(m, e)
		seen[m.PendingOp().X] = true
	}
	for _, x := range []int{0, 2, 3} {
		if !seen[x] {
			t.Errorf("random choice never picked hole %d", x)
		}
	}
	if seen[1] || seen[4] {
		t.Error("random choice picked an owned register")
	}
}

func TestAlg1TieBreakNever(t *testing.T) {
	// Ablation: a below-average process with TieBreakNever must not shrink.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	qm, _ := NewAlg1Unchecked(q, 3, Alg1Config{Tie: TieBreakNever})
	mem := fakeMem{p, p, q}
	qe := newFakeExec(mem, nil)
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		step(qm, qe)
		if qm.PendingOp().Kind != OpSnapshot {
			t.Fatalf("never-withdraw machine issued %v", qm.PendingOp().Kind)
		}
	}
	if memCount(mem, q) != 1 {
		t.Fatal("never-withdraw machine erased itself")
	}
}

func TestAlg1LifecycleErrors(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
	if err := m.StartUnlock(); err == nil {
		t.Error("StartUnlock from idle succeeded")
	}
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := m.StartLock(); err == nil {
		t.Error("StartLock while running succeeded")
	}
	if err := m.StartUnlock(); err == nil {
		t.Error("StartUnlock while running succeeded")
	}
	e := newFakeExec(make(fakeMem, 3), nil)
	if _, ok := stepUntil(t, m, e, StatusInCS, 100); !ok {
		t.Fatal("lock did not complete")
	}
	if err := m.StartLock(); err == nil {
		t.Error("StartLock while in CS succeeded")
	}
}

func TestAlg1PendingOpPanicsWhenIdle(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
	defer func() {
		if recover() == nil {
			t.Error("PendingOp on idle machine did not panic")
		}
	}()
	m.PendingOp()
}

func TestAlg1AdvancePanicsWhenIdle(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
	defer func() {
		if recover() == nil {
			t.Error("Advance on idle machine did not panic")
		}
	}()
	m.Advance(OpResult{})
}

func TestAlg1ReusableAcrossSessions(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
	e := newFakeExec(make(fakeMem, 3), nil)
	for session := 0; session < 5; session++ {
		mustLock(t, m, e, 100)
		mustUnlock(t, m, e, 100)
		if !memAll(e.mem, id.None) {
			t.Fatalf("session %d left residue: %v", session, e.mem)
		}
	}
}

func TestAlg1WorksUnderPermutations(t *testing.T) {
	// The same scripted two-process run as above, but each process views
	// the memory through a different random permutation. Outcomes (who
	// enters, memory content at quiescence) must be unaffected.
	r := xrand.New(1234)
	for trial := 0; trial < 25; trial++ {
		ids := newIDs(t, 2)
		mem := make(fakeMem, 5)
		pe := newFakeExec(mem, perm.Random(5, r))
		qe := newFakeExec(mem, perm.Random(5, r))
		pm, _ := NewAlg1(ids[0], 2, 5, Alg1Config{})
		qm, _ := NewAlg1(ids[1], 2, 5, Alg1Config{})
		if err := pm.StartLock(); err != nil {
			t.Fatal(err)
		}
		// p acquires alone.
		if _, ok := stepUntil(t, pm, pe, StatusInCS, 1000); !ok {
			t.Fatal("p failed to acquire")
		}
		// q competes while p is in the CS: q must never enter.
		if err := qm.StartLock(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			step(qm, qe)
			if qm.Status() == StatusInCS {
				t.Fatalf("trial %d: mutual exclusion violated under permutations", trial)
			}
		}
		mustUnlock(t, pm, pe, 100)
		if _, ok := stepUntil(t, qm, qe, StatusInCS, 2000); !ok {
			t.Fatalf("trial %d: q failed to acquire after unlock", trial)
		}
		mustUnlock(t, qm, qe, 100)
		if !memAll(mem, id.None) {
			t.Fatalf("trial %d: residue after both unlocked: %v", trial, mem)
		}
	}
}

func TestAlg1StateEncodingDistinguishesSteps(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
	e := newFakeExec(make(fakeMem, 3), nil)
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	prev := m.AppendState(nil)
	// The same state encodes identically.
	if !bytes.Equal(prev, m.AppendState(nil)) {
		t.Fatal("AppendState not deterministic")
	}
	for i := 0; i < 6; i++ {
		step(m, e)
		cur := m.AppendState(nil)
		if bytes.Equal(prev, cur) && m.PendingOp().Kind != OpSnapshot {
			// Consecutive snapshot phases with an unchanged view can
			// legitimately encode identically; any other transition must
			// change the encoding.
			t.Fatalf("step %d did not change the state encoding", i)
		}
		prev = cur
	}
}

func TestAlg1SymmetryEquivariance(t *testing.T) {
	// The operational meaning of "symmetric algorithm": relabel the
	// identities by any bijection, replay the same schedule, and the
	// machine must make exactly the same moves (op kinds and register
	// indices). Run a nontrivial scripted two-process competition and
	// compare traces.
	run := func(ids []id.ID) []Op {
		pm, _ := NewAlg1(ids[0], 2, 3, Alg1Config{})
		qm, _ := NewAlg1(ids[1], 2, 3, Alg1Config{})
		mem := make(fakeMem, 3)
		pe := newFakeExec(mem, nil)
		qe := newFakeExec(mem, nil)
		var trace []Op
		mustStart := func(m Machine) {
			if err := m.StartLock(); err != nil {
				panic(err)
			}
		}
		mustStart(pm)
		mustStart(qm)
		// Fixed alternating schedule for 60 steps.
		machines := []Machine{pm, qm}
		execs := []*fakeExec{pe, qe}
		for i := 0; i < 60; i++ {
			k := i % 2
			m, e := machines[k], execs[k]
			switch m.Status() {
			case StatusRunning:
				op := m.PendingOp()
				trace = append(trace, op)
				m.Advance(e.exec(op))
			case StatusInCS:
				if err := m.StartUnlock(); err != nil {
					panic(err)
				}
			case StatusIdle:
				// done; skip
			}
		}
		return trace
	}

	gA := id.NewGenerator()
	idsA, _ := gA.NewN(2)
	gB := id.NewShuffledGenerator(99)
	idsB, _ := gB.NewN(2)

	ta, tb := run(idsA), run(idsB)
	if len(ta) != len(tb) {
		t.Fatalf("traces differ in length: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i].Kind != tb[i].Kind || ta[i].X != tb[i].X {
			t.Fatalf("step %d: trace A %+v, trace B %+v — behavior depends on identity values", i, ta[i], tb[i])
		}
		// Written values must correspond under the relabeling idsA[k] ↦ idsB[k].
		mapVal := func(v id.ID) id.ID {
			for k := range idsA {
				if v.Equal(idsA[k]) {
					return idsB[k]
				}
			}
			return v
		}
		if !mapVal(ta[i].Val).Equal(tb[i].Val) {
			t.Fatalf("step %d: written values do not correspond under relabeling", i)
		}
	}
}
