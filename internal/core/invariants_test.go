package core

// Randomized-schedule invariant tests: drive several machines under
// thousands of seeded random interleavings and check the paper's
// structural invariants after every single shared-memory step — a much
// finer net than end-state assertions.
//
// Checked invariants:
//
//  1. Mutual exclusion: at most one machine is in the critical section.
//  2. Claim 3 (Algorithm 1): a register owner is never in the remainder
//     section — every non-⊥ register value is the identity of a process
//     with an active lock()/unlock() or in the CS.
//  3. Algorithm 1 in-CS saturation: while a process is in the CS (before
//     its unlock starts), every register holds its identity.
//  4. Algorithm 2 in-CS majority: while a process is in the CS, it owns a
//     strict majority of the registers (others cannot erase it).
//  5. Sessions eventually complete (deadlock-freedom under fair random
//     schedules, bounded).

import (
	"testing"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/xrand"
)

// invariantHarness drives k machines over one shared memory with a
// seeded random schedule, verifying invariants after every step.
type invariantHarness struct {
	t        *testing.T
	mem      fakeMem
	machines []Machine
	execs    []*fakeExec
	sessions []int
	r        *xrand.Rand
	isAlg1   bool
	m        int
}

func newInvariantHarness(t *testing.T, seed uint64, alg1 bool, n, m, sessions int, adversary perm.Adversary) *invariantHarness {
	t.Helper()
	h := &invariantHarness{t: t, mem: make(fakeMem, m), r: xrand.New(seed), isAlg1: alg1, m: m}
	g := id.NewGenerator()
	for i := 0; i < n; i++ {
		me := g.MustNew()
		var mach Machine
		var err error
		if alg1 {
			mach, err = NewAlg1Unchecked(me, m, Alg1Config{})
		} else {
			mach, err = NewAlg2Unchecked(me, m, Alg2Config{})
		}
		if err != nil {
			t.Fatal(err)
		}
		h.machines = append(h.machines, mach)
		h.execs = append(h.execs, newFakeExec(h.mem, adversary.Assign(i, m)))
		h.sessions = append(h.sessions, sessions)
	}
	return h
}

// tick advances one random enabled process by one step and re-checks all
// invariants. It reports whether any process is still enabled.
func (h *invariantHarness) tick() bool {
	enabled := enabled[:0]
	for i, m := range h.machines {
		if m.Status() != StatusIdle || h.sessions[i] > 0 {
			enabled = append(enabled, i)
		}
	}
	if len(enabled) == 0 {
		return false
	}
	i := enabled[h.r.Intn(len(enabled))]
	m := h.machines[i]
	switch m.Status() {
	case StatusIdle:
		if err := m.StartLock(); err != nil {
			h.t.Fatal(err)
		}
		step(m, h.execs[i])
	case StatusInCS:
		if err := m.StartUnlock(); err != nil {
			h.t.Fatal(err)
		}
		// A single-register unlock can complete in this very step.
		if step(m, h.execs[i]) == StatusIdle {
			h.sessions[i]--
		}
	default:
		if step(m, h.execs[i]) == StatusIdle {
			h.sessions[i]--
		}
	}
	h.checkInvariants()
	return true
}

// enabled is a package-level scratch buffer (tests are sequential).
var enabled []int

func (h *invariantHarness) checkInvariants() {
	t := h.t
	// (1) mutual exclusion.
	csHolder := -1
	for i, m := range h.machines {
		if m.Status() == StatusInCS {
			if csHolder >= 0 {
				t.Fatalf("machines %d and %d simultaneously in the CS", csHolder, i)
			}
			csHolder = i
		}
	}
	// (2) register owners are active (Claim 3).
	for x, v := range h.mem {
		if v.IsNone() {
			continue
		}
		owner := -1
		for i, m := range h.machines {
			if m.Me().Equal(v) {
				owner = i
				break
			}
		}
		if owner < 0 {
			t.Fatalf("register %d holds an unknown identity %v", x, v)
		}
		if h.machines[owner].Status() == StatusIdle {
			t.Fatalf("register %d held by process %d which is in the remainder section", x, owner)
		}
	}
	if csHolder < 0 {
		return
	}
	holder := h.machines[csHolder]
	owned := memCount(h.mem, holder.Me())
	if h.isAlg1 {
		// (3) Algorithm 1 saturation.
		if owned != h.m {
			t.Fatalf("alg1 CS holder owns %d of %d registers", owned, h.m)
		}
	} else {
		// (4) Algorithm 2 strict majority.
		if 2*owned <= h.m {
			t.Fatalf("alg2 CS holder owns %d of %d registers — not a majority", owned, h.m)
		}
	}
}

func runInvariantBattery(t *testing.T, alg1 bool, n, m int, seeds int, adversary perm.Adversary) {
	t.Helper()
	budget := 400_000
	for seed := 1; seed <= seeds; seed++ {
		h := newInvariantHarness(t, uint64(seed), alg1, n, m, 2, adversary)
		steps := 0
		for h.tick() {
			if steps++; steps > budget {
				t.Fatalf("seed %d: schedule did not complete within %d steps", seed, budget)
			}
		}
	}
}

func TestAlg1InvariantsRandomSchedules(t *testing.T) {
	runInvariantBattery(t, true, 2, 3, 30, perm.IdentityAdversary{})
	runInvariantBattery(t, true, 3, 5, 20, perm.RandomAdversary{Seed: 5})
	if !testing.Short() {
		runInvariantBattery(t, true, 4, 5, 10, perm.RandomAdversary{Seed: 6})
	}
}

func TestAlg2InvariantsRandomSchedules(t *testing.T) {
	runInvariantBattery(t, false, 2, 3, 30, perm.IdentityAdversary{})
	runInvariantBattery(t, false, 3, 5, 20, perm.RandomAdversary{Seed: 7})
	runInvariantBattery(t, false, 4, 1, 20, perm.IdentityAdversary{})
	if !testing.Short() {
		runInvariantBattery(t, false, 5, 7, 10, perm.RandomAdversary{Seed: 8})
	}
}

func TestAlg1InvariantsRotationAdversary(t *testing.T) {
	// Rotation permutations (the lower-bound adversary) with random — not
	// lock-step — scheduling: symmetry breaks, progress happens, and all
	// structural invariants hold throughout.
	runInvariantBattery(t, true, 2, 3, 20, perm.RotationAdversary{Step: 1})
	runInvariantBattery(t, false, 3, 5, 20, perm.RotationAdversary{Step: 1})
}

// TestAlg1NoWriteWithoutHole asserts a finer protocol property: a process
// only ever writes its identity over a register it observed as ⊥ in its
// last snapshot (line 5-6), i.e. claim writes never target registers it
// knows to be owned.
func TestAlg1NoWriteWithoutHole(t *testing.T) {
	g := id.NewGenerator()
	me := g.MustNew()
	m, err := NewAlg1Unchecked(me, 5, Alg1Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := newFakeExec(make(fakeMem, 5), nil)
	r := xrand.New(3)
	other := g.MustNew()
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	for steps := 0; steps < 10_000 && m.Status() == StatusRunning; steps++ {
		op := m.PendingOp()
		if op.Kind == OpWrite && !op.Val.IsNone() {
			// The machine's view must show ⊥ at the target.
			if v := m.View()[op.X]; !v.IsNone() {
				t.Fatalf("claim write into register %d which the view shows as %v", op.X, v)
			}
		}
		step(m, e)
		// Interference: another process occasionally grabs or releases a
		// random register.
		if r.Intn(3) == 0 {
			x := r.Intn(5)
			if e.mem[x].IsNone() {
				e.mem[x] = other
			} else if e.mem[x].Equal(other) {
				e.mem[x] = id.None
			}
		}
	}
}
