package core

import (
	"fmt"

	"anonmutex/internal/id"
	"anonmutex/internal/mset"
)

// alg2Phase is the program counter of an Algorithm 2 machine, named after
// the lines of Figure 2.
type alg2Phase uint8

const (
	a2Idle        alg2Phase = iota + 1 // remainder section
	a2CAS                              // line 2: R.compare&swap(x, ⊥, idᵢ) sweep
	a2Collect                          // line 3: viewᵢ[x] ← R.read(x) sweep
	a2ResignWrite                      // line 7: R.write(x, ⊥) for owned entries
	a2WaitRead                         // lines 8–10: read sweep until all ⊥
	a2InCS                             // line 12 satisfied: critical section
	a2UnlockCAS                        // line 13: R.compare&swap(x, idᵢ, ⊥) sweep
	a2AbortCAS                         // withdraw: R.compare&swap(x, idᵢ, ⊥) sweep
)

// Alg2Machine is the per-process state machine of the paper's Algorithm 2:
// symmetric deadlock-free mutual exclusion over m anonymous
// read/modify/write registers, for any m ∈ M(n) (m = 1 included).
//
// Protocol summary (Figure 2): a process sweeps the memory trying to
// compare&swap its identity into every ⊥ register (line 2), then reads
// everything (line 3). If it owns at least as many registers as the most
// present competitor it keeps competing, entering the critical section as
// soon as it owns a strict majority (line 12). Otherwise it resigns: it
// erases itself (line 7) and waits until the memory is completely empty
// (lines 8–10) before competing again. m ∈ M(n) guarantees that when the
// memory is saturated, not every competitor can own the same number of
// registers, so somebody resigns and the leaders can absorb the freed
// registers.
type Alg2Machine struct {
	me  id.ID
	m   int
	cfg Alg2Config

	status Status
	phase  alg2Phase

	view   []id.ID
	cursor int

	// owned and most are the paper's ownedᵢ and most_presentᵢ locals
	// (lines 4–5), retained because the line 12 until-condition consults
	// ownedᵢ after the optional resign branch.
	owned int
	most  int
	// casWins counts successful compare&swaps in the current line 2
	// sweep, for the SoloFastPath entry decision.
	casWins int

	lockSteps    int
	ownedAtEntry int
}

var _ Machine = (*Alg2Machine)(nil)

// NewAlg2 creates an Algorithm 2 machine for process me over an anonymous
// RMW memory of m registers shared by n processes, validating m ∈ M(n).
func NewAlg2(me id.ID, n, m int, cfg Alg2Config) (*Alg2Machine, error) {
	if err := mset.ValidateRMW(n, m); err != nil {
		return nil, fmt.Errorf("core: algorithm 2 precondition: %w", err)
	}
	return NewAlg2Unchecked(me, m, cfg)
}

// NewAlg2Unchecked creates an Algorithm 2 machine without validating the
// m ∈ M(n) precondition, for the Theorem 5 lower-bound experiments.
func NewAlg2Unchecked(me id.ID, m int, cfg Alg2Config) (*Alg2Machine, error) {
	if me.IsNone() {
		return nil, fmt.Errorf("core: algorithm 2 requires a process identity")
	}
	if m < 1 {
		return nil, fmt.Errorf("core: algorithm 2 requires m >= 1, got %d", m)
	}
	return &Alg2Machine{
		me:     me,
		m:      m,
		cfg:    cfg,
		status: StatusIdle,
		phase:  a2Idle,
		view:   make([]id.ID, m),
	}, nil
}

// Me implements Machine.
func (a *Alg2Machine) Me() id.ID { return a.me }

// Status implements Machine.
func (a *Alg2Machine) Status() Status { return a.status }

// View returns the machine's current viewᵢ (the machine's own storage;
// callers must not modify it). For monitors and tests.
func (a *Alg2Machine) View() []id.ID { return a.view }

// StartLock implements Machine: begin lock() (lines 1–12).
func (a *Alg2Machine) StartLock() error {
	if a.status != StatusIdle {
		return fmt.Errorf("core: StartLock in status %v", a.status)
	}
	a.status = StatusRunning
	a.startCASSweep()
	a.lockSteps = 0
	return nil
}

// startCASSweep (re-)enters the line 2 compare&swap sweep.
func (a *Alg2Machine) startCASSweep() {
	a.phase = a2CAS
	a.cursor = 0
	a.casWins = 0
}

// StartUnlock implements Machine: begin unlock() (line 13).
func (a *Alg2Machine) StartUnlock() error {
	if a.status != StatusInCS {
		return fmt.Errorf("core: StartUnlock in status %v", a.status)
	}
	a.status = StatusRunning
	a.phase = a2UnlockCAS
	a.cursor = 0
	return nil
}

// StartAbort implements Machine: withdraw from an in-progress lock().
//
// The withdraw is the line 13 erase sweep run early: compare&swap(idᵢ, ⊥)
// over all m registers. CAS makes each erase atomic, registers hold idᵢ
// only because this process swapped it in, and the withdrawing process
// writes nothing further — so after the sweep no register holds idᵢ and
// the process is invisible to every later competitor. Unlike the resign
// branch (lines 7–10) the withdraw does not wait for an empty memory: the
// process is leaving the competition, not re-entering it.
func (a *Alg2Machine) StartAbort() error {
	if a.status != StatusRunning || a.phase == a2UnlockCAS {
		return fmt.Errorf("core: StartAbort in status %v (withdraw applies only inside lock())", a.status)
	}
	a.cursor = 0
	a.phase = a2AbortCAS
	return nil
}

// PendingOp implements Machine.
func (a *Alg2Machine) PendingOp() Op {
	switch a.phase {
	case a2CAS:
		return Op{Kind: OpCAS, X: a.cursor, Old: id.None, New: a.me}
	case a2Collect, a2WaitRead:
		return Op{Kind: OpRead, X: a.cursor}
	case a2ResignWrite:
		return Op{Kind: OpWrite, X: a.cursor, Val: id.None}
	case a2UnlockCAS, a2AbortCAS:
		return Op{Kind: OpCAS, X: a.cursor, Old: a.me, New: id.None}
	default:
		panic(fmt.Sprintf("core: PendingOp on algorithm 2 machine in phase %d status %v", a.phase, a.status))
	}
}

// Advance implements Machine.
func (a *Alg2Machine) Advance(res OpResult) Status {
	if a.status != StatusRunning {
		panic(fmt.Sprintf("core: Advance on algorithm 2 machine in status %v", a.status))
	}
	if a.phase != a2UnlockCAS {
		a.lockSteps++
	}
	switch a.phase {
	case a2CAS:
		// Line 2: the sweep ignores individual CAS outcomes — except under
		// SoloFastPath, which counts them to detect the uncontended case.
		if res.Swapped {
			a.casWins++
		}
		a.cursor++
		if a.cursor == a.m {
			if a.cfg.SoloFastPath && a.casWins == a.m {
				// Every CAS won: all m registers hold idᵢ, and nothing can
				// dislodge a foreign identity, so pᵢ owns a strict majority
				// without reading anything back. Enter directly.
				for x := range a.view {
					a.view[x] = a.me
				}
				a.owned = a.m
				a.most = a.m
				a.ownedAtEntry = a.m
				a.status = StatusInCS
				a.phase = a2InCS
				return a.status
			}
			a.cursor = 0
			a.phase = a2Collect
		}
	case a2Collect:
		// Line 3: collect the memory into viewᵢ.
		a.view[a.cursor] = res.Val
		a.cursor++
		if a.cursor == a.m {
			a.afterCollect()
		}
	case a2ResignWrite:
		a.advanceResignCursor()
	case a2WaitRead:
		// Lines 8–10: read sweep; at the end of a pass, exit only on an
		// all-⊥ view.
		a.view[a.cursor] = res.Val
		a.cursor++
		if a.cursor == a.m {
			if allBottom(a.view) {
				// Line 12: ownedᵢ (from line 5) was below most_presentᵢ,
				// hence at most m/2: loop back to line 2.
				a.startCASSweep()
			} else {
				a.cursor = 0 // restart the pass (line 8 repeat)
			}
		}
	case a2UnlockCAS, a2AbortCAS:
		// Line 13 sweep (run early, from any lock() point, when aborting).
		a.cursor++
		if a.cursor == a.m {
			a.status = StatusIdle
			a.phase = a2Idle
		}
	default:
		panic(fmt.Sprintf("core: Advance on algorithm 2 machine in phase %d", a.phase))
	}
	return a.status
}

// afterCollect runs lines 4–6 and 11–12 after a complete line 3 sweep.
func (a *Alg2Machine) afterCollect() {
	a.most = mostPresent(a.view)       // line 4
	a.owned = countOwned(a.view, a.me) // line 5

	if a.owned < a.most { // line 6
		// Resign: erase own entries (line 7), then wait for an empty
		// memory (lines 8–10) unless the ablation skips the wait.
		if a.startResign() {
			return
		}
		// Nothing to erase: go directly to the wait loop (or retry).
		a.enterWaitOrRetry()
		return
	}

	// Line 12: strict majority wins.
	if 2*a.owned > a.m {
		a.ownedAtEntry = a.owned
		a.status = StatusInCS
		a.phase = a2InCS
		return
	}
	// Keep competing: back to line 2.
	a.startCASSweep()
}

// startResign positions the cursor at the first owned view entry for the
// line 7 erase sweep. It reports whether any entry is owned.
func (a *Alg2Machine) startResign() bool {
	for x := 0; x < a.m; x++ {
		if a.view[x].Equal(a.me) {
			a.cursor = x
			a.phase = a2ResignWrite
			return true
		}
	}
	return false
}

func (a *Alg2Machine) advanceResignCursor() {
	for x := a.cursor + 1; x < a.m; x++ {
		if a.view[x].Equal(a.me) {
			a.cursor = x
			a.phase = a2ResignWrite
			return
		}
	}
	a.enterWaitOrRetry()
}

func (a *Alg2Machine) enterWaitOrRetry() {
	if a.cfg.SkipWaitForEmpty {
		// Ablation: straight back to line 2 (ownedᵢ < most ⟹ ownedᵢ ≤ m/2,
		// so the line 12 until-condition is false).
		a.startCASSweep()
		return
	}
	a.cursor = 0
	a.phase = a2WaitRead
}

// Line implements Machine (diagnostic paper-line mapping).
func (a *Alg2Machine) Line() int {
	switch a.phase {
	case a2Idle:
		return 0
	case a2CAS:
		return 2
	case a2Collect:
		return 3
	case a2ResignWrite:
		return 7
	case a2WaitRead:
		return 9
	case a2InCS:
		return 12
	case a2UnlockCAS, a2AbortCAS:
		return 13
	default:
		return -1
	}
}

// LockSteps implements Machine.
func (a *Alg2Machine) LockSteps() int { return a.lockSteps }

// OwnedAtEntry implements Machine.
func (a *Alg2Machine) OwnedAtEntry() int { return a.ownedAtEntry }

// Clone implements Machine.
func (a *Alg2Machine) Clone() Machine {
	c := *a
	c.view = make([]id.ID, len(a.view))
	copy(c.view, a.view)
	return &c
}

// AppendState implements Machine. As with Algorithm 1, diagnostic counters
// are excluded; owned and most are included because the line 12 decision
// depends on them after the resign branch.
func (a *Alg2Machine) AppendState(dst []byte) []byte {
	dst = append(dst, byte(a.status), byte(a.phase))
	dst = appendUint16(dst, id.Handle(a.me))
	dst = appendInt(dst, a.cursor)
	dst = appendInt(dst, a.owned)
	dst = appendInt(dst, a.most)
	// casWins feeds the SoloFastPath entry decision mid-sweep, so it is
	// protocol state exactly when that path is enabled; leaving it out
	// otherwise keeps the paper algorithm's canonical state space (and the
	// TestStateCountsStable anchors) unchanged.
	if a.cfg.SoloFastPath {
		dst = appendInt(dst, a.casWins)
	}
	return appendView(dst, a.view)
}
