package core

// Unit tests for the uncontended fast path (Algorithm 2's SoloFastPath)
// and the SoloClaimUnsafe ablation: exact solo op counts, the contended
// fall-back, and withdraw-from-fast-path behavior. The exhaustive
// interleaving coverage lives in internal/explore
// (TestAlg2SoloFastPathExhaustive, TestAlg1SoloClaimUnsafe).

import (
	"testing"

	"anonmutex/internal/id"
)

// driveVM runs one machine invocation against vals (a plain value array
// standing in for the memory, identity-permuted), returning the op count.
func driveVM(t *testing.T, m Machine, vals []id.ID) int {
	t.Helper()
	steps := 0
	for m.Status() == StatusRunning {
		op := m.PendingOp()
		var res OpResult
		switch op.Kind {
		case OpRead:
			res.Val = vals[op.X]
		case OpWrite:
			vals[op.X] = op.Val
		case OpCAS:
			if vals[op.X].Equal(op.Old) {
				vals[op.X] = op.New
				res.Swapped = true
			}
		case OpSnapshot:
			snap := make([]id.ID, len(vals))
			copy(snap, vals)
			res.Snap = snap
		}
		m.Advance(res)
		steps++
		if steps > 10000 {
			t.Fatal("runaway invocation")
		}
	}
	return steps
}

func TestAlg2SoloFastPathStepCount(t *testing.T) {
	g := id.NewGenerator()
	for _, m := range []int{1, 3, 5} {
		mach, err := NewAlg2Unchecked(g.MustNew(), m, Alg2Config{SoloFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]id.ID, m)
		if err := mach.StartLock(); err != nil {
			t.Fatal(err)
		}
		steps := driveVM(t, mach, vals)
		if mach.Status() != StatusInCS {
			t.Fatalf("m=%d: status %v after solo lock", m, mach.Status())
		}
		if steps != m {
			t.Errorf("m=%d: solo fast-path lock took %d ops, want m = %d", m, steps, m)
		}
		if mach.OwnedAtEntry() != m {
			t.Errorf("m=%d: OwnedAtEntry = %d, want %d", m, mach.OwnedAtEntry(), m)
		}
		for x, v := range vals {
			if !v.Equal(mach.Me()) {
				t.Errorf("m=%d: register %d = %v after solo entry", m, x, v)
			}
		}
		if err := mach.StartUnlock(); err != nil {
			t.Fatal(err)
		}
		driveVM(t, mach, vals)
		for x, v := range vals {
			if !v.IsNone() {
				t.Errorf("m=%d: register %d = %v after unlock", m, x, v)
			}
		}
	}
}

// TestAlg2SoloFastPathLostCAS: a single lost CAS must send the machine
// down the ordinary collect path, not into the critical section.
func TestAlg2SoloFastPathLostCAS(t *testing.T) {
	g := id.NewGenerator()
	mach, err := NewAlg2Unchecked(g.MustNew(), 3, Alg2Config{SoloFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	rival := g.MustNew()
	vals := []id.ID{id.None, rival, id.None} // one register already claimed
	if err := mach.StartLock(); err != nil {
		t.Fatal(err)
	}
	// Drive the CAS sweep only: 3 ops.
	for i := 0; i < 3; i++ {
		op := mach.PendingOp()
		if op.Kind != OpCAS {
			t.Fatalf("op %d: kind %v, want cas", i, op.Kind)
		}
		var res OpResult
		if vals[op.X].Equal(op.Old) {
			vals[op.X] = op.New
			res.Swapped = true
		}
		mach.Advance(res)
	}
	if mach.Status() != StatusRunning {
		t.Fatalf("status %v after contested sweep, want running (collect)", mach.Status())
	}
	if mach.PendingOp().Kind != OpRead {
		t.Fatalf("post-sweep op %v, want the line 3 collect read", mach.PendingOp().Kind)
	}
}

// TestAlg2SoloFastPathAbortMidSweep: StartAbort during the fast-path CAS
// sweep must erase every claimed register.
func TestAlg2SoloFastPathAbortMidSweep(t *testing.T) {
	g := id.NewGenerator()
	mach, err := NewAlg2Unchecked(g.MustNew(), 3, Alg2Config{SoloFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]id.ID, 3)
	if err := mach.StartLock(); err != nil {
		t.Fatal(err)
	}
	// Execute 2 of the 3 CASes, then withdraw.
	for i := 0; i < 2; i++ {
		op := mach.PendingOp()
		vals[op.X] = op.New
		mach.Advance(OpResult{Swapped: true})
	}
	if err := mach.StartAbort(); err != nil {
		t.Fatal(err)
	}
	driveVM(t, mach, vals)
	if mach.Status() != StatusIdle {
		t.Fatalf("status %v after withdraw", mach.Status())
	}
	for x, v := range vals {
		if !v.IsNone() {
			t.Errorf("register %d = %v after withdraw, want ⊥", x, v)
		}
	}
}

// TestAlg1SoloClaimStepCount covers the SoloClaimUnsafe ablation's solo
// mechanics (it is only ever run in simulation; see
// explore.TestAlg1SoloClaimUnsafe for why it must not ship).
func TestAlg1SoloClaimStepCount(t *testing.T) {
	g := id.NewGenerator()
	for _, m := range []int{3, 5} {
		mach, err := NewAlg1Unchecked(g.MustNew(), m, Alg1Config{SoloClaimUnsafe: true})
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]id.ID, m)
		if err := mach.StartLock(); err != nil {
			t.Fatal(err)
		}
		steps := driveVM(t, mach, vals)
		if mach.Status() != StatusInCS {
			t.Fatalf("m=%d: status %v after solo lock", m, mach.Status())
		}
		// One all-⊥ snapshot, m claim writes, one all-mine snapshot.
		if want := m + 2; steps != want {
			t.Errorf("m=%d: solo fast-path lock took %d ops, want m+2 = %d", m, steps, want)
		}
		if mach.OwnedAtEntry() != m {
			t.Errorf("m=%d: OwnedAtEntry = %d, want %d", m, mach.OwnedAtEntry(), m)
		}
		if err := mach.StartUnlock(); err != nil {
			t.Fatal(err)
		}
		driveVM(t, mach, vals)
		for x, v := range vals {
			if !v.IsNone() {
				t.Errorf("m=%d: register %d = %v after unlock", m, x, v)
			}
		}
	}
}

// TestAlg1SoloClaimContested: if a rival claims a register between the
// all-⊥ snapshot and the end of the claim sweep, the machine must fall
// back to the ordinary protocol and not enter on a non-all-mine view.
func TestAlg1SoloClaimContested(t *testing.T) {
	g := id.NewGenerator()
	mach, err := NewAlg1Unchecked(g.MustNew(), 3, Alg1Config{SoloClaimUnsafe: true})
	if err != nil {
		t.Fatal(err)
	}
	rival := g.MustNew()
	vals := make([]id.ID, 3)
	if err := mach.StartLock(); err != nil {
		t.Fatal(err)
	}
	// All-⊥ snapshot → solo claim begins.
	op := mach.PendingOp()
	if op.Kind != OpSnapshot {
		t.Fatalf("first op %v, want snapshot", op.Kind)
	}
	mach.Advance(OpResult{Snap: []id.ID{id.None, id.None, id.None}})
	// Rival overwrites register 2 mid-sweep (last writer wins on RW
	// registers).
	for i := 0; i < 3; i++ {
		op := mach.PendingOp()
		if op.Kind != OpWrite {
			t.Fatalf("claim op %d: kind %v, want write", i, op.Kind)
		}
		vals[op.X] = op.Val
		mach.Advance(OpResult{})
	}
	vals[2] = rival
	// Next snapshot is not all-mine: the machine must keep running.
	op = mach.PendingOp()
	if op.Kind != OpSnapshot {
		t.Fatalf("post-claim op %v, want snapshot", op.Kind)
	}
	snap := make([]id.ID, 3)
	copy(snap, vals)
	mach.Advance(OpResult{Snap: snap})
	if mach.Status() != StatusRunning {
		t.Fatalf("status %v on a contested view, want running", mach.Status())
	}
}
