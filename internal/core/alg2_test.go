package core

import (
	"testing"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/xrand"
)

func TestAlg2Preconditions(t *testing.T) {
	ids := newIDs(t, 1)
	cases := []struct {
		name   string
		n, m   int
		wantOK bool
	}{
		{"n2 m1 degenerate", 2, 1, true},
		{"n2 m3", 2, 3, true},
		{"n2 m2", 2, 2, false},
		{"n3 m7", 3, 7, true},
		{"n3 m6", 3, 6, false},
		{"n4 m25", 4, 25, true},
		{"n5 m25", 5, 25, false},
		{"n1", 1, 3, false},
		{"m0", 3, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewAlg2(ids[0], tc.n, tc.m, Alg2Config{})
			if (err == nil) != tc.wantOK {
				t.Errorf("NewAlg2(n=%d, m=%d) error = %v, want ok=%v", tc.n, tc.m, err, tc.wantOK)
			}
		})
	}
	if _, err := NewAlg2(id.None, 2, 3, Alg2Config{}); err == nil {
		t.Error("NewAlg2 accepted ⊥ identity")
	}
	if _, err := NewAlg2Unchecked(ids[0], 6, Alg2Config{}); err != nil {
		t.Errorf("NewAlg2Unchecked rejected m=6: %v", err)
	}
}

func TestAlg2SoloLockStepByStep(t *testing.T) {
	// Solo on m=3: exactly 3 CAS (line 2) + 3 reads (line 3), then entry
	// with owned = 3 > 3/2.
	ids := newIDs(t, 1)
	me := ids[0]
	m, err := NewAlg2(me, 2, 3, Alg2Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := newFakeExec(make(fakeMem, 3), nil)
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 3; x++ {
		op := m.PendingOp()
		if op.Kind != OpCAS || op.X != x || !op.Old.IsNone() || !op.New.Equal(me) {
			t.Fatalf("line 2 op %d = %+v, want cas(%d, ⊥, me)", x, op, x)
		}
		step(m, e)
	}
	for x := 0; x < 3; x++ {
		op := m.PendingOp()
		if op.Kind != OpRead || op.X != x {
			t.Fatalf("line 3 op %d = %+v, want read(%d)", x, op, x)
		}
		step(m, e)
	}
	if m.Status() != StatusInCS {
		t.Fatalf("status = %v, want in-cs", m.Status())
	}
	if got := m.OwnedAtEntry(); got != 3 {
		t.Errorf("OwnedAtEntry = %d, want 3", got)
	}
	if got := m.LockSteps(); got != 6 {
		t.Errorf("LockSteps = %d, want 6 (2m)", got)
	}
}

func TestAlg2MajorityEntryNotAll(t *testing.T) {
	// Unlike Algorithm 1, Algorithm 2 enters with a strict majority, not
	// full ownership: m=5 with 3 own registers and 2 foreign ones suffices
	// when owned ≥ most_present... 3 vs 2 → enter with owned=3.
	ids := newIDs(t, 2)
	me, other := ids[0], ids[1]
	m, _ := NewAlg2(me, 2, 5, Alg2Config{})
	mem := fakeMem{other, other, id.None, id.None, id.None}
	e := newFakeExec(mem, nil)
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	// CAS sweep claims the three ⊥ registers; read sweep: owned=3, most=3.
	if _, ok := stepUntil(t, m, e, StatusInCS, 20); !ok {
		t.Fatalf("did not enter with a majority (status %v, line %d)", m.Status(), m.Line())
	}
	if got := m.OwnedAtEntry(); got != 3 {
		t.Errorf("OwnedAtEntry = %d, want 3 (majority of 5, not all)", got)
	}
	if !mem[0].Equal(other) || !mem[1].Equal(other) {
		t.Error("CAS sweep overwrote foreign registers")
	}
}

func TestAlg2ResignsWhenBehind(t *testing.T) {
	// q holds 1 register, p holds 2 of m=3: after its collect, q sees
	// owned=1 < most=2 → erases itself (line 7) and parks in the wait loop
	// (lines 8-10) until the memory is all ⊥.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	qm, _ := NewAlg2(q, 2, 3, Alg2Config{})
	mem := fakeMem{p, p, q}
	qe := newFakeExec(mem, nil)
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	// Line 2 sweep: all CAS fail (no ⊥).
	step(qm, qe)
	step(qm, qe)
	step(qm, qe)
	// Line 3 collect.
	step(qm, qe)
	step(qm, qe)
	step(qm, qe)
	// Now the resign write: exactly one, at local index 2.
	op := qm.PendingOp()
	if op.Kind != OpWrite || op.X != 2 || !op.Val.IsNone() {
		t.Fatalf("resign op = %+v, want write(2, ⊥)", op)
	}
	if qm.Line() != 7 {
		t.Fatalf("line = %d, want 7", qm.Line())
	}
	step(qm, qe)
	if !mem[2].IsNone() {
		t.Fatal("resign did not erase q's register")
	}
	// Wait loop: q reads forever while p's registers remain.
	for i := 0; i < 12; i++ {
		if got := qm.PendingOp().Kind; got != OpRead {
			t.Fatalf("wait loop issued %v", got)
		}
		if qm.Line() != 9 {
			t.Fatalf("wait loop at line %d, want 9", qm.Line())
		}
		step(qm, qe)
		if qm.Status() != StatusRunning {
			t.Fatalf("q left the wait loop while p present (status %v)", qm.Status())
		}
	}
	// p's registers empty out; q completes a pass, sees all ⊥, re-enters
	// the competition and wins.
	mem[0], mem[1] = id.None, id.None
	if _, ok := stepUntil(t, qm, qe, StatusInCS, 50); !ok {
		t.Fatalf("q did not acquire after memory emptied (line %d)", qm.Line())
	}
}

func TestAlg2DegenerateSingleRegister(t *testing.T) {
	// m=1 ∈ M(n): Algorithm 2 degenerates to a CAS lock. p wins; q parks;
	// p unlocks; q wins.
	ids := newIDs(t, 2)
	pm, _ := NewAlg2(ids[0], 2, 1, Alg2Config{})
	qm, _ := NewAlg2(ids[1], 2, 1, Alg2Config{})
	mem := make(fakeMem, 1)
	pe := newFakeExec(mem, nil)
	qe := newFakeExec(mem, nil)
	if err := pm.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	if _, ok := stepUntil(t, pm, pe, StatusInCS, 10); !ok {
		t.Fatal("p did not acquire the single register")
	}
	for i := 0; i < 20; i++ {
		step(qm, qe)
		if qm.Status() == StatusInCS {
			t.Fatal("mutual exclusion violated on m=1")
		}
	}
	mustUnlock(t, pm, pe, 10)
	if _, ok := stepUntil(t, qm, qe, StatusInCS, 20); !ok {
		t.Fatal("q did not acquire after unlock")
	}
	mustUnlock(t, qm, qe, 10)
	if !mem[0].IsNone() {
		t.Fatal("register not released")
	}
}

func TestAlg2UnlockReleasesOnlyOwn(t *testing.T) {
	ids := newIDs(t, 2)
	me, other := ids[0], ids[1]
	m, _ := NewAlg2(me, 2, 5, Alg2Config{})
	mem := fakeMem{other, other, id.None, id.None, id.None}
	e := newFakeExec(mem, nil)
	mustLock(t, m, e, 20)
	// While in the CS, the other process somehow still holds 0 and 1;
	// unlock's CAS(x, me, ⊥) sweep must not touch them.
	mustUnlock(t, m, e, 20)
	if !mem[0].Equal(other) || !mem[1].Equal(other) {
		t.Error("unlock modified foreign registers")
	}
	for x := 2; x < 5; x++ {
		if !mem[x].IsNone() {
			t.Errorf("register %d = %v after unlock, want ⊥", x, mem[x])
		}
	}
}

func TestAlg2UnlockOpSequence(t *testing.T) {
	ids := newIDs(t, 1)
	me := ids[0]
	m, _ := NewAlg2(me, 2, 3, Alg2Config{})
	e := newFakeExec(make(fakeMem, 3), nil)
	mustLock(t, m, e, 20)
	if err := m.StartUnlock(); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 3; x++ {
		op := m.PendingOp()
		if op.Kind != OpCAS || op.X != x || !op.Old.Equal(me) || !op.New.IsNone() {
			t.Fatalf("unlock op %d = %+v, want cas(%d, me, ⊥)", x, op, x)
		}
		if m.Line() != 13 {
			t.Fatalf("unlock at line %d, want 13", m.Line())
		}
		step(m, e)
	}
	if m.Status() != StatusIdle {
		t.Fatalf("status after unlock = %v", m.Status())
	}
}

func TestAlg2EqualSharesKeepCompeting(t *testing.T) {
	// owned == most_present but not a majority: the process neither
	// resigns nor enters; it loops to line 2. Construct 1-1 split on m=3
	// with one hole: p owns 1, q owns 1. p re-CASes the hole.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	pm, _ := NewAlg2(p, 2, 3, Alg2Config{})
	mem := fakeMem{p, q, id.None}
	pe := newFakeExec(mem, nil)
	if err := pm.StartLock(); err != nil {
		t.Fatal(err)
	}
	// p's CAS sweep: claims register 2 (the hole) → p owns 2 of 3.
	step(pm, pe)
	step(pm, pe)
	step(pm, pe)
	// Collect: owned=2, most=2 → majority → CS.
	if _, ok := stepUntil(t, pm, pe, StatusInCS, 10); !ok {
		t.Fatal("p did not enter with majority")
	}
	if got := pm.OwnedAtEntry(); got != 2 {
		t.Errorf("OwnedAtEntry = %d, want 2", got)
	}
}

func TestAlg2ExactHalfDoesNotEnter(t *testing.T) {
	// Theorem 5 wedge in miniature: m=2 (∉ M(2)), both processes own one
	// register each. owned = most = 1, owned·2 = 2 ≯ 2: neither resigns
	// nor enters — they loop forever.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	pm, _ := NewAlg2Unchecked(p, 2, Alg2Config{})
	qm, _ := NewAlg2Unchecked(q, 2, Alg2Config{})
	mem := fakeMem{p, q}
	pe := newFakeExec(mem, nil)
	qe := newFakeExec(mem, nil)
	if err := pm.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		step(pm, pe)
		step(qm, qe)
		if pm.Status() == StatusInCS || qm.Status() == StatusInCS {
			t.Fatal("a process entered from a 1-1 split on m=2")
		}
	}
	if !mem[0].Equal(p) || !mem[1].Equal(q) {
		t.Fatalf("memory changed in the wedge: %v", mem)
	}
}

func TestAlg2SkipWaitAblation(t *testing.T) {
	// With SkipWaitForEmpty, a resigned process goes straight back to the
	// CAS sweep instead of the lines 8-10 read loop.
	ids := newIDs(t, 2)
	p, q := ids[0], ids[1]
	qm, _ := NewAlg2Unchecked(q, 3, Alg2Config{SkipWaitForEmpty: true})
	mem := fakeMem{p, p, q}
	qe := newFakeExec(mem, nil)
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // CAS sweep + collect
		step(qm, qe)
	}
	step(qm, qe) // resign write
	if got := qm.PendingOp(); got.Kind != OpCAS || qm.Line() != 2 {
		t.Fatalf("after skip-wait resign, op=%+v line=%d, want CAS at line 2", got, qm.Line())
	}
}

func TestAlg2LifecycleErrors(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg2(ids[0], 2, 3, Alg2Config{})
	if err := m.StartUnlock(); err == nil {
		t.Error("StartUnlock from idle succeeded")
	}
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := m.StartLock(); err == nil {
		t.Error("StartLock while running succeeded")
	}
	e := newFakeExec(make(fakeMem, 3), nil)
	if _, ok := stepUntil(t, m, e, StatusInCS, 20); !ok {
		t.Fatal("lock did not complete")
	}
	if err := m.StartLock(); err == nil {
		t.Error("StartLock in CS succeeded")
	}
}

func TestAlg2ReusableAcrossSessions(t *testing.T) {
	ids := newIDs(t, 1)
	m, _ := NewAlg2(ids[0], 2, 3, Alg2Config{})
	e := newFakeExec(make(fakeMem, 3), nil)
	for session := 0; session < 5; session++ {
		mustLock(t, m, e, 20)
		mustUnlock(t, m, e, 20)
		if !memAll(e.mem, id.None) {
			t.Fatalf("session %d left residue: %v", session, e.mem)
		}
	}
}

func TestAlg2WorksUnderPermutations(t *testing.T) {
	r := xrand.New(777)
	for trial := 0; trial < 25; trial++ {
		ids := newIDs(t, 2)
		mem := make(fakeMem, 5)
		pe := newFakeExec(mem, perm.Random(5, r))
		qe := newFakeExec(mem, perm.Random(5, r))
		pm, _ := NewAlg2(ids[0], 2, 5, Alg2Config{})
		qm, _ := NewAlg2(ids[1], 2, 5, Alg2Config{})
		if err := pm.StartLock(); err != nil {
			t.Fatal(err)
		}
		if _, ok := stepUntil(t, pm, pe, StatusInCS, 100); !ok {
			t.Fatal("p failed to acquire")
		}
		if err := qm.StartLock(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			step(qm, qe)
			if qm.Status() == StatusInCS {
				t.Fatalf("trial %d: mutual exclusion violated", trial)
			}
		}
		mustUnlock(t, pm, pe, 20)
		if _, ok := stepUntil(t, qm, qe, StatusInCS, 500); !ok {
			t.Fatalf("trial %d: q failed to acquire after unlock (line %d)", trial, qm.Line())
		}
		mustUnlock(t, qm, qe, 20)
		if !memAll(mem, id.None) {
			t.Fatalf("trial %d: residue: %v", trial, mem)
		}
	}
}

func TestAlg2SymmetryEquivariance(t *testing.T) {
	run := func(ids []id.ID) []Op {
		pm, _ := NewAlg2(ids[0], 2, 3, Alg2Config{})
		qm, _ := NewAlg2(ids[1], 2, 3, Alg2Config{})
		mem := make(fakeMem, 3)
		pe := newFakeExec(mem, nil)
		qe := newFakeExec(mem, nil)
		var trace []Op
		if err := pm.StartLock(); err != nil {
			panic(err)
		}
		if err := qm.StartLock(); err != nil {
			panic(err)
		}
		machines := []Machine{pm, qm}
		execs := []*fakeExec{pe, qe}
		for i := 0; i < 80; i++ {
			k := i % 2
			m, e := machines[k], execs[k]
			switch m.Status() {
			case StatusRunning:
				op := m.PendingOp()
				trace = append(trace, op)
				m.Advance(e.exec(op))
			case StatusInCS:
				if err := m.StartUnlock(); err != nil {
					panic(err)
				}
			}
		}
		return trace
	}
	idsA, _ := id.NewGenerator().NewN(2)
	idsB, _ := id.NewShuffledGenerator(4242).NewN(2)
	ta, tb := run(idsA), run(idsB)
	if len(ta) != len(tb) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i].Kind != tb[i].Kind || ta[i].X != tb[i].X {
			t.Fatalf("step %d: %+v vs %+v — behavior depends on identity values", i, ta[i], tb[i])
		}
	}
}

func TestHelpersOwnedMostDistinct(t *testing.T) {
	ids := newIDs(t, 3)
	a, b, c := ids[0], ids[1], ids[2]
	n := id.None
	cases := []struct {
		view    []id.ID
		me      id.ID
		owned   int
		most    int
		cnt     int
		bottom  bool
		allMine bool
	}{
		{[]id.ID{n, n, n}, a, 0, 0, 0, true, false},
		{[]id.ID{a, a, a}, a, 3, 3, 1, false, true},
		{[]id.ID{a, b, a}, a, 2, 2, 2, false, false},
		{[]id.ID{a, b, c}, b, 1, 1, 3, false, false},
		{[]id.ID{a, b, n}, c, 0, 1, 2, false, false},
		{[]id.ID{b, b, c, c, c}, b, 2, 3, 2, false, false},
		{[]id.ID{}, a, 0, 0, 0, true, true},
	}
	for i, tc := range cases {
		if got := countOwned(tc.view, tc.me); got != tc.owned {
			t.Errorf("case %d: countOwned = %d, want %d", i, got, tc.owned)
		}
		if got := mostPresent(tc.view); got != tc.most {
			t.Errorf("case %d: mostPresent = %d, want %d", i, got, tc.most)
		}
		if got := distinctOwners(tc.view); got != tc.cnt {
			t.Errorf("case %d: distinctOwners = %d, want %d", i, got, tc.cnt)
		}
		if got := allBottom(tc.view); got != tc.bottom {
			t.Errorf("case %d: allBottom = %v, want %v", i, got, tc.bottom)
		}
		if got := allMine(tc.view, tc.me); got != tc.allMine {
			t.Errorf("case %d: allMine = %v, want %v", i, got, tc.allMine)
		}
	}
}

func TestOpKindStatusStrings(t *testing.T) {
	for _, k := range []OpKind{OpRead, OpWrite, OpCAS, OpSnapshot, OpKind(99)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
	for _, s := range []Status{StatusIdle, StatusRunning, StatusInCS, Status(99)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", s)
		}
	}
}
