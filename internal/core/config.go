package core

import (
	"fmt"

	"anonmutex/internal/xrand"
)

// ChoicePolicy selects which ⊥ register Algorithm 1 writes into at line 6.
// The paper allows "any not owned register"; the policy does not affect
// correctness (the proofs never rely on the choice) but does affect
// collision rates under contention — an ablation experiment (E8) measures
// the difference.
type ChoicePolicy uint8

const (
	// ChooseFirstBottom writes into the lowest ⊥ local index. Fully
	// deterministic; required for state-space exploration.
	ChooseFirstBottom ChoicePolicy = iota + 1
	// ChooseLastBottom writes into the highest ⊥ local index.
	ChooseLastBottom
	// ChooseRandomBottom writes into a uniformly random ⊥ local index,
	// drawn from the machine's PRNG. Reduces write collisions between
	// concurrent claimants in real runs.
	ChooseRandomBottom
)

// String returns the policy name.
func (c ChoicePolicy) String() string {
	switch c {
	case ChooseFirstBottom:
		return "first-bottom"
	case ChooseLastBottom:
		return "last-bottom"
	case ChooseRandomBottom:
		return "random-bottom"
	default:
		return fmt.Sprintf("ChoicePolicy(%d)", uint8(c))
	}
}

// TieBreak selects Algorithm 1's withdrawal rule at line 9. Only
// TieBreakAverage is the paper's algorithm; the others are ablations that
// demonstrate why the rule (and the m ∈ M(n) condition it leans on)
// matters.
type TieBreak uint8

const (
	// TieBreakAverage is the paper's rule: withdraw when this process owns
	// fewer than m/cnt registers (strictly below the average), evaluated
	// exactly as owned*cnt < m.
	TieBreakAverage TieBreak = iota + 1
	// TieBreakNever is an ablation: never withdraw. Under contention the
	// competition can wedge permanently (deadlock-freedom is lost).
	TieBreakNever
	// TieBreakRandom is an ablation: when the view is full and the process
	// does not own everything, withdraw with probability 1/2. Randomized
	// backoff breaks ties only probabilistically.
	TieBreakRandom
)

// String returns the rule name.
func (tb TieBreak) String() string {
	switch tb {
	case TieBreakAverage:
		return "average"
	case TieBreakNever:
		return "never"
	case TieBreakRandom:
		return "random"
	default:
		return fmt.Sprintf("TieBreak(%d)", uint8(tb))
	}
}

// Alg1Config configures an Algorithm 1 machine. The zero value selects the
// paper's algorithm (first-bottom choice, average tie-break).
type Alg1Config struct {
	// Choice picks the ⊥ register for line 6. Zero value:
	// ChooseFirstBottom.
	Choice ChoicePolicy
	// Tie picks the withdrawal rule for line 9. Zero value:
	// TieBreakAverage (the paper's rule).
	Tie TieBreak
	// Rand supplies randomness for the randomized policies. Required when
	// Choice is ChooseRandomBottom or Tie is TieBreakRandom.
	Rand *xrand.Rand
	// SoloClaimUnsafe is an ablation, NOT a fast path: a process whose
	// snapshot shows an entirely-⊥ memory claims all m registers in one
	// write sweep instead of one register per snapshot iteration. It
	// looks like the RW-model analog of Algorithm 2's solo fast path —
	// and the model checker proves it is wrong: plain writes issued from
	// a stale all-⊥ snapshot can overwrite a rival that already entered
	// on a legitimate all-mine snapshot, and the sweeper's own final
	// snapshot then shows all-mine too (TestAlg1SoloClaimUnsafe exhibits
	// the two-in-CS state exhaustively). Algorithm 1's mutual exclusion
	// genuinely relies on the one-claim-per-snapshot discipline; only the
	// CAS-armed RMW model can detect a lost race without re-reading.
	// Production locks never set this.
	SoloClaimUnsafe bool
}

func (c *Alg1Config) normalize() error {
	if c.Choice == 0 {
		c.Choice = ChooseFirstBottom
	}
	if c.Tie == 0 {
		c.Tie = TieBreakAverage
	}
	needsRand := c.Choice == ChooseRandomBottom || c.Tie == TieBreakRandom
	if needsRand && c.Rand == nil {
		return fmt.Errorf("core: randomized policy (%v/%v) requires a PRNG", c.Choice, c.Tie)
	}
	return nil
}

// Deterministic reports whether the configuration's behavior is a pure
// function of observed memory values, as required by state-space
// exploration.
func (c Alg1Config) Deterministic() bool {
	choice := c.Choice
	if choice == 0 {
		choice = ChooseFirstBottom
	}
	tie := c.Tie
	if tie == 0 {
		tie = TieBreakAverage
	}
	return choice != ChooseRandomBottom && tie != TieBreakRandom
}

// Alg2Config configures an Algorithm 2 machine. The zero value is the
// paper's algorithm.
type Alg2Config struct {
	// SkipWaitForEmpty is an ablation: when a process resigns (line 7), it
	// skips the lines 8–10 wait loop and immediately re-enters the
	// competition. The paper's deadlock-freedom argument (Theorem 4)
	// relies on resigned processes standing aside; this ablation measures
	// what that buys.
	SkipWaitForEmpty bool
	// SoloFastPath enables the uncontended fast path: a process whose
	// line 2 sweep wins every one of its m compare&swaps enters the
	// critical section immediately, skipping the line 3 collect sweep —
	// m operations instead of 2m. This is safe without reading anything
	// back: a register can come to hold idᵢ only through pᵢ's own CAS,
	// and no other process ever overwrites a register holding a foreign
	// identity (line 2 CASes expect ⊥, lines 7/13 erase only the caller's
	// own identity), so m successful CASes mean pᵢ owns all m registers —
	// a strict majority — until it erases itself
	// (TestAlg2SoloFastPathExhaustive checks exhaustively).
	SoloFastPath bool
}
