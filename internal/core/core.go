// Package core implements the paper's two algorithms — the symmetric
// deadlock-free mutual exclusion protocols for anonymous read/write memory
// (Algorithm 1, Figure 1) and anonymous read/modify/write memory
// (Algorithm 2, Figure 2) — as explicit state machines.
//
// # Why state machines
//
// Every protocol step that touches shared memory is reified as an Op that
// the machine *requests* and an OpResult that is *fed back* via Advance.
// One implementation of each algorithm therefore runs unchanged on two
// different substrates, both reached through the unified op executor
// (internal/engine):
//
//   - the real locks (package anonmutex at the repository root) use the
//     engine's blocking Driver against hardware-atomic anonymous memory
//     (internal/amem), giving a production lock;
//   - the virtual scheduler (internal/sched) dispatches ops one at a time
//     through the same engine against simulated memory (internal/vmem),
//     giving deterministic replayable executions, adversarial schedules
//     (including the Theorem 5 lock-step executions), and exhaustive
//     state-space exploration (internal/explore).
//
// The machines are line-faithful: program phases correspond to the
// numbered lines of Figures 1 and 2, and Line() reports the current line
// for traces. All arithmetic from the paper is integer-exact:
// "owned < m/cnt" is evaluated as owned*cnt < m, and "owned > m/2" as
// 2*owned > m.
//
// # Symmetry discipline
//
// Machines manipulate identities exclusively through id.Equal/IsNone.
// Equivariance tests verify behavior is invariant under identity
// relabeling, which is the operational meaning of the paper's "symmetric
// algorithm" (§II-C).
package core

import (
	"fmt"

	"anonmutex/internal/id"
)

// OpKind enumerates the shared-memory operations a machine can request.
type OpKind uint8

// Operation kinds. OpSnapshot is only requested by Algorithm 1; OpCAS only
// by Algorithm 2 (the models differ exactly in these operations).
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpCAS
	OpSnapshot
)

// String returns the operation kind name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one pending shared-memory operation, expressed in the requesting
// process's local register names (anonymity is applied by the executor).
type Op struct {
	Kind OpKind
	X    int   // local register index (Read, Write, CAS)
	Val  id.ID // value to write (Write)
	Old  id.ID // CAS comparand
	New  id.ID // CAS replacement
}

// OpResult carries the outcome of an executed Op back into the machine.
type OpResult struct {
	Val     id.ID   // Read: the value read
	Snap    []id.ID // Snapshot: all m values in local order; the machine copies it
	Swapped bool    // CAS: whether the swap took effect
}

// Status describes where a machine is in the lock/unlock life cycle.
type Status uint8

// Machine statuses. The cycle is:
// Idle →(StartLock)→ Running →(Advance…)→ InCS →(StartUnlock)→ Running
// →(Advance…)→ Idle. A Running lock() can instead be withdrawn:
// Running →(StartAbort)→ Running →(Advance…)→ Idle, never passing
// through InCS.
const (
	StatusIdle    Status = iota + 1 // in the remainder section
	StatusRunning                   // executing lock() or unlock(); feed ops
	StatusInCS                      // inside the critical section
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRunning:
		return "running"
	case StatusInCS:
		return "in-cs"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Machine is a mutual-exclusion protocol instance for one process. A
// Machine is not safe for concurrent use: it belongs to its process.
type Machine interface {
	// Me returns the identity of the process running this machine.
	Me() id.ID
	// Status reports the life-cycle position.
	Status() Status
	// StartLock begins a lock() invocation. It returns an error unless the
	// machine is Idle.
	StartLock() error
	// StartUnlock begins an unlock() invocation. It returns an error
	// unless the machine is InCS.
	StartUnlock() error
	// StartAbort begins a withdraw: it turns an in-progress lock()
	// invocation into a bounded back-out that erases every register
	// holding this process's identity and returns the machine to Idle.
	// The withdraw is itself an invocation — keep feeding ops through
	// Advance until Status leaves Running. It returns an error unless the
	// machine is Running inside lock(); a machine that already entered
	// the critical section (InCS) cannot abort, and unlock() never needs
	// to (it is bounded already).
	StartAbort() error
	// PendingOp returns the shared-memory operation the machine needs
	// executed next. It panics unless Status is Running.
	PendingOp() Op
	// Advance feeds the result of the pending op and returns the new
	// status. It panics unless Status is Running.
	Advance(OpResult) Status
	// Line reports the paper line number the machine is about to execute,
	// for traces and experiments (0 when idle).
	Line() int
	// LockSteps reports how many shared-memory operations the current (or
	// most recent) lock() invocation has performed. A snapshot counts as
	// one operation here; executors may expand it into many reads.
	LockSteps() int
	// OwnedAtEntry reports how many registers held this process's identity
	// in the view that let the most recent lock() complete (Algorithm 1:
	// always m; Algorithm 2: the majority count). 0 if never entered.
	OwnedAtEntry() int
	// AppendState appends a canonical encoding of the machine's complete
	// local state to dst, for state-space exploration and fingerprints.
	AppendState(dst []byte) []byte
	// Clone returns an independent copy of the machine's protocol state,
	// for state-space exploration. Configuration (including any PRNG) is
	// shared, so exploration requires deterministic configurations.
	Clone() Machine
}

// appendUint16 and appendInt are tiny canonical-encoding helpers shared by
// the machines' AppendState implementations.
func appendUint16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendInt(dst []byte, v int) []byte {
	u := uint64(int64(v))
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func appendView(dst []byte, view []id.ID) []byte {
	for _, v := range view {
		dst = appendUint16(dst, id.Handle(v))
	}
	return dst
}

// countOwned returns |{x : view[x] = me}| — the paper's owned() operation.
func countOwned(view []id.ID, me id.ID) int {
	owned := 0
	for _, v := range view {
		if v.Equal(me) {
			owned++
		}
	}
	return owned
}

// allBottom reports whether every entry of view is ⊥.
func allBottom(view []id.ID) bool {
	for _, v := range view {
		if !v.IsNone() {
			return false
		}
	}
	return true
}

// allMine reports whether every entry of view equals me.
func allMine(view []id.ID, me id.ID) bool {
	for _, v := range view {
		if !v.Equal(me) {
			return false
		}
	}
	return true
}

// distinctOwners returns the number of distinct non-⊥ identities in view —
// the paper's cnti ← |{view[1], …, view[m]}| over a full view (line 8 of
// Algorithm 1 counts competitors).
//
// The quadratic scan keeps the computation free of maps (no allocation,
// canonical behavior for state encoding); m is small.
func distinctOwners(view []id.ID) int {
	cnt := 0
	for i, v := range view {
		if v.IsNone() {
			continue
		}
		first := true
		for j := 0; j < i; j++ {
			if view[j].Equal(v) {
				first = false
				break
			}
		}
		if first {
			cnt++
		}
	}
	return cnt
}

// mostPresent returns the maximum number of times any single non-⊥ value
// appears in view — line 4 of Algorithm 2.
func mostPresent(view []id.ID) int {
	best := 0
	for i, v := range view {
		if v.IsNone() {
			continue
		}
		// Count only at the first occurrence of v.
		dup := false
		for j := 0; j < i; j++ {
			if view[j].Equal(v) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c := 0
		for j := i; j < len(view); j++ {
			if view[j].Equal(v) {
				c++
			}
		}
		if c > best {
			best = c
		}
	}
	return best
}
