package core

import (
	"fmt"

	"anonmutex/internal/id"
	"anonmutex/internal/mset"
)

// alg1Phase is the program counter of an Algorithm 1 machine. The phases
// name the paper lines (Figure 1) at which the machine is about to perform
// a shared-memory operation; all pure-local computation (lines 1, 5, 8, 9
// condition, 11 condition) happens inside Advance between two phases.
type alg1Phase uint8

const (
	a1Idle        alg1Phase = iota + 1 // remainder section
	a1Snapshot                         // line 4: viewᵢ ← R.snapshot()
	a1WriteClaim                       // line 6: R.write(x, idᵢ) into a ⊥ slot
	a1SoloClaim                        // SoloClaimUnsafe ablation: claim every register of an all-⊥ view
	a1ShrinkRead                       // shrink() line 2: R.read(x)
	a1ShrinkWrite                      // shrink() line 2: R.write(x, ⊥)
	a1InCS                             // line 11 satisfied: critical section
	a1AbortRead                        // withdraw: R.read(x) over every register
	a1AbortWrite                       // withdraw: R.write(x, ⊥) where x held idᵢ
)

// Alg1Machine is the per-process state machine of the paper's Algorithm 1:
// symmetric deadlock-free mutual exclusion over m anonymous read/write
// registers, for any m ∈ M(n) with m ≥ n.
//
// Protocol summary (Figure 1): a process repeatedly snapshots the memory.
// If it sees only ⊥ or its own identity somewhere, it competes: it claims
// a ⊥ register by writing its identity (line 6). Once the memory is full,
// the competitors that own fewer than the average m/cnt registers withdraw
// by erasing themselves (shrink, line 9) — and m ∈ M(n) guarantees the
// average is never achievable by all, so somebody always withdraws. The
// process that observes a snapshot with all m registers equal to its own
// identity has won and enters the critical section (line 11). unlock() is
// shrink() (line 12).
type Alg1Machine struct {
	me  id.ID
	m   int
	cfg Alg1Config

	status Status
	phase  alg1Phase

	// view is the paper's viewᵢ[1..m]: the result of the last snapshot.
	// It has global scope in the paper (it survives across operations;
	// unlock's shrink consults it).
	view []id.ID

	// cursor is the local register index currently being shrunk
	// (a1ShrinkRead / a1ShrinkWrite).
	cursor int
	// holes is a reusable scratch buffer for chooseBottom's random policy,
	// so steady-state driving allocates nothing per operation.
	holes []int
	// unlockShrink distinguishes the shrink of unlock() (line 12, leads to
	// Idle) from the withdrawal shrink of lock() line 9 (leads back to the
	// snapshot loop).
	unlockShrink bool

	lockSteps    int
	ownedAtEntry int
}

var _ Machine = (*Alg1Machine)(nil)

// NewAlg1 creates an Algorithm 1 machine for process me over an anonymous
// memory of m registers shared by n processes. It validates the paper's
// precondition m ∈ M(n), m ≥ n; AllowUnsafe sizes are deliberately not
// supported here — the experiments that need an illegal m (Theorem 5
// demonstrations) use NewAlg1Unchecked.
func NewAlg1(me id.ID, n, m int, cfg Alg1Config) (*Alg1Machine, error) {
	if err := mset.ValidateRW(n, m); err != nil {
		return nil, fmt.Errorf("core: algorithm 1 precondition: %w", err)
	}
	return NewAlg1Unchecked(me, m, cfg)
}

// NewAlg1Unchecked creates an Algorithm 1 machine without validating the
// m ∈ M(n) precondition. The lower-bound experiments use it to run the
// algorithm on memory sizes where the paper proves no algorithm can work
// (the machine remains safe; it just may livelock).
func NewAlg1Unchecked(me id.ID, m int, cfg Alg1Config) (*Alg1Machine, error) {
	if me.IsNone() {
		return nil, fmt.Errorf("core: algorithm 1 requires a process identity")
	}
	if m < 1 {
		return nil, fmt.Errorf("core: algorithm 1 requires m >= 1, got %d", m)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Alg1Machine{
		me:     me,
		m:      m,
		cfg:    cfg,
		status: StatusIdle,
		phase:  a1Idle,
		view:   make([]id.ID, m),
	}, nil
}

// Me implements Machine.
func (a *Alg1Machine) Me() id.ID { return a.me }

// Status implements Machine.
func (a *Alg1Machine) Status() Status { return a.status }

// View returns the machine's current viewᵢ. The returned slice is the
// machine's own storage; callers must not modify it. For monitors and
// tests.
func (a *Alg1Machine) View() []id.ID { return a.view }

// StartLock implements Machine: begin lock() (lines 3–11).
func (a *Alg1Machine) StartLock() error {
	if a.status != StatusIdle {
		return fmt.Errorf("core: StartLock in status %v", a.status)
	}
	a.status = StatusRunning
	a.phase = a1Snapshot
	a.lockSteps = 0
	return nil
}

// StartUnlock implements Machine: begin unlock() (line 12), which is a
// shrink() over the final all-mine view.
func (a *Alg1Machine) StartUnlock() error {
	if a.status != StatusInCS {
		return fmt.Errorf("core: StartUnlock in status %v", a.status)
	}
	a.status = StatusRunning
	a.unlockShrink = true
	if !a.startShrink() {
		// Unreachable after a proper lock (the final view is all-mine),
		// but keep the machine total: nothing to erase means unlock is
		// complete.
		a.finishUnlock()
	}
	return nil
}

// StartAbort implements Machine: withdraw from an in-progress lock().
//
// The withdraw cannot trust viewᵢ — a claim written after the last
// snapshot (line 6) is not reflected in it — so instead of shrinking the
// view it sweeps all m registers with shrink's own discipline: read x,
// and write ⊥ only if x still holds idᵢ. Registers never hold idᵢ unless
// this process wrote it, and the withdrawing process writes nothing else,
// so after the sweep no register holds idᵢ: the process is invisible to
// every later snapshot, exactly as if it had never competed.
func (a *Alg1Machine) StartAbort() error {
	if a.status != StatusRunning || a.unlockShrink {
		return fmt.Errorf("core: StartAbort in status %v (withdraw applies only inside lock())", a.status)
	}
	a.cursor = 0
	a.phase = a1AbortRead
	return nil
}

// startShrink positions the cursor at the first view entry owned by me and
// enters the shrink read phase. It reports whether any entry is owned.
func (a *Alg1Machine) startShrink() bool {
	for x := 0; x < a.m; x++ {
		if a.view[x].Equal(a.me) {
			a.cursor = x
			a.phase = a1ShrinkRead
			return true
		}
	}
	return false
}

// advanceShrinkCursor moves the cursor to the next owned view entry after
// the current one, or ends the shrink.
func (a *Alg1Machine) advanceShrinkCursor() {
	for x := a.cursor + 1; x < a.m; x++ {
		if a.view[x].Equal(a.me) {
			a.cursor = x
			a.phase = a1ShrinkRead
			return
		}
	}
	// Shrink complete.
	if a.unlockShrink {
		a.finishUnlock()
		return
	}
	// Withdrawal shrink inside lock(): the line 11 until-condition is
	// false (the view is not all-mine), so re-enter the loop at line 4.
	a.phase = a1Snapshot
}

// advanceAbortCursor moves the withdraw sweep to the next register, or
// completes the abort: the machine returns to Idle with no register
// holding its identity.
func (a *Alg1Machine) advanceAbortCursor() {
	a.cursor++
	if a.cursor < a.m {
		a.phase = a1AbortRead
		return
	}
	a.status = StatusIdle
	a.phase = a1Idle
}

func (a *Alg1Machine) finishUnlock() {
	a.unlockShrink = false
	a.status = StatusIdle
	a.phase = a1Idle
}

// PendingOp implements Machine.
func (a *Alg1Machine) PendingOp() Op {
	switch a.phase {
	case a1Snapshot:
		return Op{Kind: OpSnapshot}
	case a1WriteClaim, a1SoloClaim:
		return Op{Kind: OpWrite, X: a.cursor, Val: a.me}
	case a1ShrinkRead:
		return Op{Kind: OpRead, X: a.cursor}
	case a1ShrinkWrite:
		return Op{Kind: OpWrite, X: a.cursor, Val: id.None}
	case a1AbortRead:
		return Op{Kind: OpRead, X: a.cursor}
	case a1AbortWrite:
		return Op{Kind: OpWrite, X: a.cursor, Val: id.None}
	default:
		panic(fmt.Sprintf("core: PendingOp on algorithm 1 machine in phase %d status %v", a.phase, a.status))
	}
}

// Advance implements Machine.
func (a *Alg1Machine) Advance(res OpResult) Status {
	if a.status != StatusRunning {
		panic(fmt.Sprintf("core: Advance on algorithm 1 machine in status %v", a.status))
	}
	if !a.unlockShrink {
		a.lockSteps++
	}
	switch a.phase {
	case a1Snapshot:
		a.onSnapshot(res.Snap)
	case a1WriteClaim:
		// Line 6 write done. The line 11 until-condition is evaluated on
		// viewᵢ from this iteration's snapshot, which contained a ⊥ (that
		// is why we wrote), so it is false: loop back to line 4.
		a.phase = a1Snapshot
	case a1SoloClaim:
		// Ablation claim sweep over an all-⊥ view: write every register,
		// then snapshot. (Unsafe; see Alg1Config.SoloClaimUnsafe.)
		a.cursor++
		if a.cursor == a.m {
			a.phase = a1Snapshot
		}
	case a1ShrinkRead:
		// shrink() line 2: write ⊥ only if the register still holds idᵢ.
		if res.Val.Equal(a.me) {
			a.phase = a1ShrinkWrite
		} else {
			a.advanceShrinkCursor()
		}
	case a1ShrinkWrite:
		a.advanceShrinkCursor()
	case a1AbortRead:
		if res.Val.Equal(a.me) {
			a.phase = a1AbortWrite
		} else {
			a.advanceAbortCursor()
		}
	case a1AbortWrite:
		a.advanceAbortCursor()
	default:
		panic(fmt.Sprintf("core: Advance on algorithm 1 machine in phase %d", a.phase))
	}
	return a.status
}

// onSnapshot runs the pure-local part of one iteration of the lines 3–11
// loop, starting from the snapshot result: the line 4 until-condition, the
// line 5 full-view test, competitor counting and the withdrawal decision
// (lines 8–9), and the line 11 exit condition.
func (a *Alg1Machine) onSnapshot(snap []id.ID) {
	copy(a.view, snap)
	owned := countOwned(a.view, a.me)

	// Line 4 (inner until): keep snapshotting unless pᵢ is present or the
	// memory is empty.
	if owned == 0 {
		if !allBottom(a.view) {
			a.phase = a1Snapshot
			return
		}
		if a.cfg.SoloClaimUnsafe {
			// Ablation: claim every register of the all-⊥ view in one write
			// sweep. Unsafe — see Alg1Config.SoloClaimUnsafe; the entry
			// condition (an all-mine snapshot) is NOT enough to restore
			// mutual exclusion once multiple stale writes are in flight.
			a.cursor = 0
			a.phase = a1SoloClaim
			return
		}
	}

	// Line 5: is there a hole to claim?
	if x, ok := a.chooseBottom(); ok {
		a.cursor = x
		a.phase = a1WriteClaim
		return
	}

	// Lines 7–9: the view is full; withdraw if below the average.
	cnt := distinctOwners(a.view) // line 8: number of current competitors
	if a.shouldWithdraw(owned, cnt) {
		if !a.startShrink() {
			// owned > 0 is guaranteed by the line 4 condition on a full
			// view, so there is always something to shrink.
			panic("core: withdrawal with no owned registers")
		}
		return
	}

	// Line 11: enter the critical section iff the snapshot is all-mine.
	if allMine(a.view, a.me) {
		a.ownedAtEntry = owned
		a.status = StatusInCS
		a.phase = a1InCS
		return
	}
	a.phase = a1Snapshot
}

// chooseBottom picks a ⊥ entry of the view per the configured policy.
func (a *Alg1Machine) chooseBottom() (int, bool) {
	switch a.cfg.Choice {
	case ChooseFirstBottom:
		for x := 0; x < a.m; x++ {
			if a.view[x].IsNone() {
				return x, true
			}
		}
	case ChooseLastBottom:
		for x := a.m - 1; x >= 0; x-- {
			if a.view[x].IsNone() {
				return x, true
			}
		}
	case ChooseRandomBottom:
		if a.holes == nil {
			a.holes = make([]int, 0, a.m)
		}
		holes := a.holes[:0]
		for x := 0; x < a.m; x++ {
			if a.view[x].IsNone() {
				holes = append(holes, x)
			}
		}
		if len(holes) > 0 {
			return holes[a.cfg.Rand.Intn(len(holes))], true
		}
	}
	return 0, false
}

// shouldWithdraw evaluates line 9 under the configured tie-break rule. The
// paper's rule is owned < m/cnt, computed exactly as owned·cnt < m.
func (a *Alg1Machine) shouldWithdraw(owned, cnt int) bool {
	switch a.cfg.Tie {
	case TieBreakAverage:
		return owned*cnt < a.m
	case TieBreakNever:
		return false
	case TieBreakRandom:
		return owned < a.m && a.cfg.Rand.Bool()
	default:
		panic(fmt.Sprintf("core: unknown tie-break %v", a.cfg.Tie))
	}
}

// Line implements Machine (diagnostic paper-line mapping).
func (a *Alg1Machine) Line() int {
	switch a.phase {
	case a1Idle:
		return 0
	case a1Snapshot:
		return 4
	case a1WriteClaim, a1SoloClaim:
		return 6
	case a1ShrinkRead, a1ShrinkWrite:
		if a.unlockShrink {
			return 12
		}
		return 9
	case a1AbortRead, a1AbortWrite:
		return 9 // the withdraw reuses shrink's read-then-erase discipline
	case a1InCS:
		return 11
	default:
		return -1
	}
}

// LockSteps implements Machine.
func (a *Alg1Machine) LockSteps() int { return a.lockSteps }

// OwnedAtEntry implements Machine.
func (a *Alg1Machine) OwnedAtEntry() int { return a.ownedAtEntry }

// Clone implements Machine.
func (a *Alg1Machine) Clone() Machine {
	c := *a
	c.view = make([]id.ID, len(a.view))
	copy(c.view, a.view)
	c.holes = nil // scratch; lazily reallocated, never shared
	return &c
}

// AppendState implements Machine. Diagnostic counters (LockSteps,
// OwnedAtEntry) are deliberately excluded: they do not influence
// transitions, and including them would make every state unique, defeating
// cycle detection.
func (a *Alg1Machine) AppendState(dst []byte) []byte {
	dst = append(dst, byte(a.status), byte(a.phase))
	dst = appendUint16(dst, id.Handle(a.me))
	dst = appendInt(dst, a.cursor)
	if a.unlockShrink {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return appendView(dst, a.view)
}
