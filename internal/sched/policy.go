package sched

import (
	"fmt"

	"anonmutex/internal/xrand"
)

// Policy selects which enabled process takes the next step. The enabled
// slice is non-empty and sorted ascending; implementations must return one
// of its elements.
//
// Policies model the paper's asynchrony adversary: any enabled process may
// be scheduled next, and the policy decides. A policy that eventually
// schedules every forever-enabled process yields a fair execution (§II-E).
type Policy interface {
	Next(enabled []int) int
}

// StatefulPolicy is implemented by policies whose future choices depend on
// internal state. The scheduler includes this state in global-state
// fingerprints so that cycle detection remains sound.
type StatefulPolicy interface {
	Policy
	AppendState(dst []byte) []byte
}

// RoundRobin cycles through processes in index order, skipping disabled
// ones. It produces fair executions. The zero value is ready to use.
type RoundRobin struct {
	last int // index of the last scheduled process + 1
}

// Next implements Policy.
func (p *RoundRobin) Next(enabled []int) int {
	// Pick the smallest enabled index >= last, wrapping around.
	for _, e := range enabled {
		if e >= p.last {
			p.last = e + 1
			return e
		}
	}
	p.last = enabled[0] + 1
	return enabled[0]
}

// AppendState implements StatefulPolicy.
func (p *RoundRobin) AppendState(dst []byte) []byte {
	return append(dst, byte(p.last>>8), byte(p.last))
}

// LockStep schedules processes in the strict cyclic order p0, p1, …,
// p(n-1), p0, … — the executions of the paper's Theorem 5 lower-bound
// argument ("an execution in which the ℓ processes are running in lock
// steps"). If the expected process is disabled it advances to the next
// enabled one in cyclic order.
type LockStep struct {
	n    int
	next int
}

// NewLockStep creates a lock-step policy over n processes.
func NewLockStep(n int) *LockStep {
	if n < 1 {
		panic(fmt.Sprintf("sched: lock-step policy needs n >= 1, got %d", n))
	}
	return &LockStep{n: n}
}

// Next implements Policy.
func (p *LockStep) Next(enabled []int) int {
	isEnabled := func(i int) bool {
		for _, e := range enabled {
			if e == i {
				return true
			}
		}
		return false
	}
	for k := 0; k < p.n; k++ {
		cand := (p.next + k) % p.n
		if isEnabled(cand) {
			p.next = (cand + 1) % p.n
			return cand
		}
	}
	// enabled is non-empty by contract, so this is unreachable.
	panic("sched: lock-step policy found no enabled process")
}

// AppendState implements StatefulPolicy.
func (p *LockStep) AppendState(dst []byte) []byte {
	return append(dst, byte(p.next>>8), byte(p.next))
}

// Random schedules a uniformly random enabled process, deterministically
// from a seed. Uniform scheduling is fair with probability 1.
type Random struct {
	r *xrand.Rand
}

// NewRandom creates a seeded random policy.
func NewRandom(seed uint64) *Random {
	return &Random{r: xrand.New(seed)}
}

// Next implements Policy.
func (p *Random) Next(enabled []int) int {
	return enabled[p.r.Intn(len(enabled))]
}

// Stall wraps a policy and hides one process for a window of scheduler
// steps, modeling the paper's asynchrony ("each process proceeds at its
// own speed"): the stalled process simply takes no steps for a while. The
// window is finite, so fairness is preserved.
type Stall struct {
	// Inner makes the actual choice among the non-stalled processes.
	Inner Policy
	// Proc is the process to stall.
	Proc int
	// From and For delimit the stall window in scheduler steps.
	From, For int

	step int
}

// Next implements Policy.
func (p *Stall) Next(enabled []int) int {
	step := p.step
	p.step++
	if step >= p.From && step < p.From+p.For {
		filtered := make([]int, 0, len(enabled))
		for _, e := range enabled {
			if e != p.Proc {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) > 0 {
			return p.Inner.Next(filtered)
		}
		// Only the stalled process is enabled; it must run or the system
		// would deadlock artificially.
	}
	return p.Inner.Next(enabled)
}

// Verify interface compliance.
var (
	_ StatefulPolicy = (*RoundRobin)(nil)
	_ StatefulPolicy = (*LockStep)(nil)
	_ Policy         = (*Random)(nil)
	_ Policy         = (*Stall)(nil)
)
