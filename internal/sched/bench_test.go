package sched

import (
	"fmt"
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/perm"
)

// BenchmarkSimulatedSteps measures raw scheduler throughput: simulated
// shared-memory operations per second, the figure that bounds how large a
// schedule space the harness can sweep.
func BenchmarkSimulatedSteps(b *testing.B) {
	cases := []struct {
		name    string
		factory MachineFactory
		n, m    int
		honest  bool
	}{
		{"alg1/n=3/m=5", Alg1Factory(3, 5, core.Alg1Config{}), 3, 5, false},
		{"alg1/n=3/m=5/honest-snapshots", Alg1Factory(3, 5, core.Alg1Config{}), 3, 5, true},
		{"alg2/n=3/m=5", Alg2Factory(3, 5, core.Alg2Config{}), 3, 5, false},
		{"alg2/n=6/m=7", Alg2Factory(6, 7, core.Alg2Config{}), 6, 7, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			totalSteps := 0
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					N: c.n, M: c.m,
					NewMachine:      c.factory,
					Policy:          NewRandom(uint64(i + 1)),
					Adversary:       perm.RandomAdversary{Seed: uint64(i)},
					Sessions:        2,
					HonestSnapshots: c.honest,
					MaxSteps:        10_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatalf("run %d incomplete", i)
				}
				totalSteps += res.Steps
			}
			b.ReportMetric(float64(totalSteps)/float64(b.N), "sim-steps/run")
		})
	}
}

// BenchmarkLockStepRound measures one lock-step wedge detection cycle.
func BenchmarkLockStepRound(b *testing.B) {
	for _, m := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					N: 2, M: m,
					NewMachine:   Alg1UncheckedFactory(m, core.Alg1Config{}),
					Adversary:    perm.RotationAdversary{Step: m / 2},
					Policy:       NewLockStep(2),
					DetectCycles: true,
					MaxSteps:     1_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.CycleDetected {
					b.Fatal("wedge not detected")
				}
			}
		})
	}
}
