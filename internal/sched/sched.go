// Package sched drives protocol state machines over simulated anonymous
// memory, one shared-memory operation per step, under a pluggable
// scheduling policy.
//
// This is the execution model the paper's proofs reason about: an
// asynchronous adversary picks, at every step, which process performs its
// next shared-memory operation. Round-robin and seeded-random policies
// produce fair executions for correctness testing; the lock-step policy
// with a rotation adversary reproduces the Theorem 5 lower-bound
// executions; stall wrappers inject arbitrary (finite) delays.
//
// The runner can fingerprint the complete global state after every step.
// In a fully deterministic configuration (deterministic machines, stateful
// policy, atomic snapshots, unstamped memory), a repeated fingerprint
// proves the execution has entered a cycle it can never leave — the
// operational definition of livelock, and the verdict the Theorem 5
// experiments rely on.
package sched

import (
	"fmt"

	"anonmutex/internal/core"
	"anonmutex/internal/engine"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/trace"
	"anonmutex/internal/vmem"
)

// MachineFactory builds the protocol machine for the i-th process with
// identity me. The index i is the external observer's numbering (used by
// adversaries and reports); the machine itself must use only me.
type MachineFactory func(i int, me id.ID) (core.Machine, error)

// Config describes a simulated execution.
type Config struct {
	// N is the number of processes.
	N int
	// M is the number of anonymous registers.
	M int
	// NewMachine builds each process's protocol machine.
	NewMachine MachineFactory
	// Adversary assigns address permutations (nil: identity — a
	// non-anonymous memory).
	Adversary perm.Adversary
	// Policy picks the next process to step (nil: round-robin).
	Policy Policy
	// Sessions is how many lock→CS→unlock cycles each process performs
	// (default 1).
	Sessions int
	// CSTicks is how many scheduler steps a process spends inside the
	// critical section before starting unlock (default 0: it unlocks on
	// its next scheduled step).
	CSTicks int
	// CSTicksFor, when non-nil, overrides CSTicks per entry: it is
	// called at each CS entry with the process index and its 0-based
	// session number and must be deterministic (the unified workload
	// model's session plans are; cycle detection fingerprints the
	// remaining ticks, not the function).
	CSTicksFor func(proc, session int) int
	// MaxSteps bounds the run (default 1_000_000).
	MaxSteps int
	// HonestSnapshots expands each snapshot into individually scheduled
	// register reads (double scan). Otherwise snapshots are single atomic
	// steps, which is how the paper's proofs treat them.
	HonestSnapshots bool
	// DetectCycles fingerprints global states and stops with a livelock
	// verdict when a state repeats. Requires a deterministic
	// configuration: a StatefulPolicy, atomic snapshots, and machines
	// whose moves depend only on observed values.
	DetectCycles bool
	// TraceCap limits retained trace events (0: no trace retention).
	TraceCap int
	// IDSeed, when nonzero, draws process identities in a seeded shuffled
	// order instead of generator order, exercising the symmetry
	// discipline.
	IDSeed uint64
}

func (c *Config) normalize() error {
	if c.N < 1 {
		return fmt.Errorf("sched: need at least one process, got %d", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("sched: need at least one register, got %d", c.M)
	}
	if c.NewMachine == nil {
		return fmt.Errorf("sched: NewMachine factory is required")
	}
	if c.Adversary == nil {
		c.Adversary = perm.IdentityAdversary{}
	}
	if c.Policy == nil {
		c.Policy = &RoundRobin{}
	}
	if c.Sessions == 0 {
		c.Sessions = 1
	}
	if c.Sessions < 0 {
		return fmt.Errorf("sched: Sessions must be positive, got %d", c.Sessions)
	}
	if c.CSTicks < 0 {
		return fmt.Errorf("sched: CSTicks must be non-negative, got %d", c.CSTicks)
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1_000_000
	}
	if c.DetectCycles {
		if c.HonestSnapshots {
			return fmt.Errorf("sched: cycle detection requires atomic snapshots (stepper state is not fingerprinted)")
		}
		if _, ok := c.Policy.(StatefulPolicy); !ok {
			return fmt.Errorf("sched: cycle detection requires a StatefulPolicy, got %T", c.Policy)
		}
	}
	return nil
}

// Result reports a completed (or aborted) simulated execution.
type Result struct {
	// Steps is the number of scheduler steps executed.
	Steps int
	// Completed reports whether every process finished all its sessions.
	Completed bool
	// CycleDetected reports that the global state repeated under a
	// deterministic configuration: the execution is in a livelock and no
	// lock()/unlock() will ever complete. CycleStep/CycleStart locate it.
	CycleDetected bool
	CycleStart    int
	CycleStep     int
	// Violations are mutual-exclusion violations observed (must be empty
	// for correct algorithms, on any schedule).
	Violations []trace.Violation
	// Entries is the total number of critical-section entries.
	Entries int
	// PerProc are per-process statistics.
	PerProc []ProcStats
	// Trace holds retained events (nil without TraceCap).
	Trace *trace.Trace
	// MemWrites counts effective writes to the shared memory.
	MemWrites uint64
	// FinalValues is the memory's algorithmic content at the end.
	FinalValues []id.ID
}

// ProcStats summarizes one process's execution.
type ProcStats struct {
	ID           id.ID
	Sessions     int // completed sessions
	Entries      int
	MaxWaitSteps int
	MeanWait     float64
	Bypasses     int
	OwnedAtEntry int // registers owned at the last CS entry
	LockSteps    int // shared-memory ops in the last completed lock()
}

// proc is the runner's per-process bookkeeping.
type proc struct {
	machine  core.Machine
	view     *vmem.View
	exec     engine.Executor // the view, behind the unified op executor
	stepper  *vmem.SnapshotStepper
	sessions int // remaining sessions
	csLeft   int
	snapBuf  []id.ID
}

// Runner executes one configured simulation. Create with New, run with
// Run; a Runner is single-use.
type Runner struct {
	cfg Config
	mem *vmem.Memory
	ps  []*proc
	mon *trace.Monitor
	tr  *trace.Trace
}

// New validates cfg and builds a runner.
func New(cfg Config) (*Runner, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// Stamping is needed only for honest double scans; leaving it off
	// keeps states canonical for cycle detection.
	mem := vmem.New(cfg.M, cfg.HonestSnapshots)
	var gen *id.Generator
	if cfg.IDSeed != 0 {
		gen = id.NewShuffledGenerator(cfg.IDSeed)
	} else {
		gen = id.NewGenerator()
	}
	ps := make([]*proc, cfg.N)
	for i := range ps {
		me, err := gen.New()
		if err != nil {
			return nil, fmt.Errorf("sched: issuing identity %d: %w", i, err)
		}
		machine, err := cfg.NewMachine(i, me)
		if err != nil {
			return nil, fmt.Errorf("sched: building machine %d: %w", i, err)
		}
		if !machine.Me().Equal(me) {
			return nil, fmt.Errorf("sched: machine %d does not carry its assigned identity", i)
		}
		view, err := mem.NewView(me, cfg.Adversary.Assign(i, cfg.M))
		if err != nil {
			return nil, fmt.Errorf("sched: view %d: %w", i, err)
		}
		ps[i] = &proc{
			machine:  machine,
			view:     view,
			exec:     engine.Simulated(view),
			sessions: cfg.Sessions,
			snapBuf:  make([]id.ID, cfg.M),
		}
	}
	var tr *trace.Trace
	if cfg.TraceCap > 0 {
		tr = trace.NewTrace(cfg.TraceCap)
	}
	return &Runner{cfg: cfg, mem: mem, ps: ps, mon: trace.NewMonitor(cfg.N), tr: tr}, nil
}

// Run executes the simulation to completion, cycle detection, or the step
// bound.
func (r *Runner) Run() (*Result, error) {
	res := &Result{Trace: r.tr}
	var seen map[string]int
	if r.cfg.DetectCycles {
		seen = make(map[string]int, 4096)
	}
	enabled := make([]int, 0, len(r.ps))

	for step := 0; step < r.cfg.MaxSteps; step++ {
		enabled = enabled[:0]
		for i, p := range r.ps {
			if p.machine.Status() != core.StatusIdle || p.sessions > 0 {
				enabled = append(enabled, i)
			}
		}
		if len(enabled) == 0 {
			res.Completed = true
			res.Steps = step
			return r.finish(res), nil
		}
		i := r.cfg.Policy.Next(enabled)
		if err := r.tick(i, step); err != nil {
			return nil, err
		}
		res.Steps = step + 1

		if seen != nil {
			key := string(r.fingerprint(nil))
			if first, dup := seen[key]; dup {
				res.CycleDetected = true
				res.CycleStart = first
				res.CycleStep = step
				return r.finish(res), nil
			}
			seen[key] = step
		}
	}
	return r.finish(res), nil
}

// tick performs one scheduler step for process i at the given step count.
func (r *Runner) tick(i, step int) error {
	p := r.ps[i]
	m := p.machine
	switch m.Status() {
	case core.StatusIdle:
		if p.sessions == 0 {
			return fmt.Errorf("sched: scheduled a finished process %d", i)
		}
		if err := m.StartLock(); err != nil {
			return fmt.Errorf("sched: process %d: %w", i, err)
		}
		r.mon.OnLockStart(i, step)
		r.tr.Add(trace.Event{Step: step, Proc: i, Kind: trace.EvLockStart})
		return r.execOp(i, step)
	case core.StatusRunning:
		return r.execOp(i, step)
	case core.StatusInCS:
		if p.csLeft > 0 {
			p.csLeft--
			return nil
		}
		if err := m.StartUnlock(); err != nil {
			return fmt.Errorf("sched: process %d: %w", i, err)
		}
		r.mon.OnExit(i, step)
		r.tr.Add(trace.Event{Step: step, Proc: i, Kind: trace.EvUnlockStart})
		return r.execOp(i, step)
	default:
		return fmt.Errorf("sched: process %d in unknown status", i)
	}
}

// execOp executes exactly one shared-memory operation for process i.
func (r *Runner) execOp(i, step int) error {
	p := r.ps[i]
	m := p.machine

	// An honest snapshot in flight: advance it by one read.
	if p.stepper != nil {
		r.tr.Add(trace.Event{Step: step, Proc: i, Kind: trace.EvOp, Op: core.Op{Kind: core.OpRead}, Line: m.Line()})
		if p.stepper.Step() {
			p.snapBuf = p.stepper.Result(p.snapBuf)
			p.stepper = nil
			r.afterAdvance(i, step, m.Advance(core.OpResult{Snap: p.snapBuf}))
		}
		return nil
	}

	op := m.PendingOp()
	r.tr.Add(trace.Event{Step: step, Proc: i, Kind: trace.EvOp, Op: op, Line: m.Line()})
	if op.Kind == core.OpSnapshot && r.cfg.HonestSnapshots {
		p.stepper = vmem.NewSnapshotStepper(p.view)
		// This step performed the stepper's first read.
		if p.stepper.Step() {
			p.snapBuf = p.stepper.Result(p.snapBuf)
			p.stepper = nil
			r.afterAdvance(i, step, m.Advance(core.OpResult{Snap: p.snapBuf}))
		}
		return nil
	}
	res, buf, err := engine.Exec(p.exec, op, p.snapBuf)
	if err != nil {
		return fmt.Errorf("sched: process %d: %w", i, err)
	}
	p.snapBuf = buf
	r.afterAdvance(i, step, m.Advance(res))
	return nil
}

// afterAdvance handles life-cycle transitions reported by Advance.
func (r *Runner) afterAdvance(i, step int, st core.Status) {
	p := r.ps[i]
	switch st {
	case core.StatusInCS:
		r.mon.OnEnter(i, step)
		r.tr.Add(trace.Event{Step: step, Proc: i, Kind: trace.EvEnterCS})
		if r.cfg.CSTicksFor != nil {
			// p.sessions is not yet decremented, so completed sessions
			// = Sessions - p.sessions indexes the one entered now.
			p.csLeft = r.cfg.CSTicksFor(i, r.cfg.Sessions-p.sessions)
		} else {
			p.csLeft = r.cfg.CSTicks
		}
		if p.csLeft < 0 {
			p.csLeft = 0
		}
	case core.StatusIdle:
		p.sessions--
		r.tr.Add(trace.Event{Step: step, Proc: i, Kind: trace.EvUnlockDone})
	}
}

// fingerprint encodes the complete global state: memory values, every
// machine's local state, per-process session/CS counters, and the policy
// state.
func (r *Runner) fingerprint(dst []byte) []byte {
	dst = r.mem.AppendState(dst)
	for _, p := range r.ps {
		dst = p.machine.AppendState(dst)
		dst = append(dst, byte(p.sessions>>8), byte(p.sessions), byte(p.csLeft>>8), byte(p.csLeft))
	}
	if sp, ok := r.cfg.Policy.(StatefulPolicy); ok {
		dst = sp.AppendState(dst)
	}
	return dst
}

// finish assembles the result.
func (r *Runner) finish(res *Result) *Result {
	res.Violations = r.mon.Violations()
	res.Entries = r.mon.TotalEntries()
	res.MemWrites = r.mem.Writes()
	res.FinalValues = r.mem.Values()
	entries := r.mon.Entries()
	maxW := r.mon.MaxWait()
	meanW := r.mon.MeanWait()
	byp := r.mon.Bypasses()
	res.PerProc = make([]ProcStats, len(r.ps))
	for i, p := range r.ps {
		res.PerProc[i] = ProcStats{
			ID:           p.machine.Me(),
			Sessions:     r.cfg.Sessions - p.sessions,
			Entries:      entries[i],
			MaxWaitSteps: maxW[i],
			MeanWait:     meanW[i],
			Bypasses:     byp[i],
			OwnedAtEntry: p.machine.OwnedAtEntry(),
			LockSteps:    p.machine.LockSteps(),
		}
	}
	return res
}

// Run is a convenience wrapper: build and run in one call.
func Run(cfg Config) (*Result, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Alg1Factory returns a MachineFactory building paper-configured
// Algorithm 1 machines for n processes over m registers (validated).
func Alg1Factory(n, m int, cfg core.Alg1Config) MachineFactory {
	return func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg1(me, n, m, cfg)
	}
}

// Alg1UncheckedFactory builds Algorithm 1 machines without the m ∈ M(n)
// validation, for lower-bound experiments.
func Alg1UncheckedFactory(m int, cfg core.Alg1Config) MachineFactory {
	return func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg1Unchecked(me, m, cfg)
	}
}

// Alg2Factory returns a MachineFactory building paper-configured
// Algorithm 2 machines (validated).
func Alg2Factory(n, m int, cfg core.Alg2Config) MachineFactory {
	return func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg2(me, n, m, cfg)
	}
}

// Alg2UncheckedFactory builds Algorithm 2 machines without validation.
func Alg2UncheckedFactory(m int, cfg core.Alg2Config) MachineFactory {
	return func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg2Unchecked(me, m, cfg)
	}
}
