package sched

import (
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	p := &RoundRobin{}
	enabled := []int{0, 1, 2}
	var got []int
	for i := 0; i < 7; i++ {
		got = append(got, p.Next(enabled))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsDisabled(t *testing.T) {
	p := &RoundRobin{}
	if got := p.Next([]int{0, 2}); got != 0 {
		t.Fatalf("first = %d", got)
	}
	if got := p.Next([]int{0, 2}); got != 2 {
		t.Fatalf("second = %d, want 2 (1 disabled)", got)
	}
	if got := p.Next([]int{0, 2}); got != 0 {
		t.Fatalf("third = %d, want wraparound to 0", got)
	}
	// A process disappears mid-cycle.
	if got := p.Next([]int{1}); got != 1 {
		t.Fatalf("only-enabled = %d, want 1", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	p := &RoundRobin{}
	enabled := []int{0, 1, 2, 3}
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[p.Next(enabled)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("process %d scheduled %d times, want 100", i, c)
		}
	}
}

func TestLockStepStrictOrder(t *testing.T) {
	p := NewLockStep(3)
	enabled := []int{0, 1, 2}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Next(enabled); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
}

func TestLockStepSkipsDisabled(t *testing.T) {
	p := NewLockStep(3)
	if got := p.Next([]int{1, 2}); got != 1 {
		t.Fatalf("got %d, want 1 (0 disabled)", got)
	}
	if got := p.Next([]int{1, 2}); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if got := p.Next([]int{1, 2}); got != 1 {
		t.Fatalf("got %d, want 1 (wrap, 0 still disabled)", got)
	}
}

func TestLockStepPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLockStep(0) did not panic")
		}
	}()
	NewLockStep(0)
}

func TestRandomPolicyDeterministicAndCovering(t *testing.T) {
	a, b := NewRandom(5), NewRandom(5)
	enabled := []int{0, 1, 2, 3, 4}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		x, y := a.Next(enabled), b.Next(enabled)
		if x != y {
			t.Fatal("same-seed random policies diverged")
		}
		seen[x] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random policy covered %d of 5 processes", len(seen))
	}
}

func TestStallHidesProcess(t *testing.T) {
	p := &Stall{Inner: &RoundRobin{}, Proc: 1, From: 0, For: 10}
	enabled := []int{0, 1, 2}
	for i := 0; i < 10; i++ {
		if got := p.Next(enabled); got == 1 {
			t.Fatalf("stalled process scheduled at step %d", i)
		}
	}
	// After the window, process 1 can run again.
	seen1 := false
	for i := 0; i < 10; i++ {
		if p.Next(enabled) == 1 {
			seen1 = true
		}
	}
	if !seen1 {
		t.Error("process 1 never scheduled after the stall window")
	}
}

func TestStallYieldsWhenOnlyStalledEnabled(t *testing.T) {
	p := &Stall{Inner: &RoundRobin{}, Proc: 0, From: 0, For: 1000}
	if got := p.Next([]int{0}); got != 0 {
		t.Fatalf("got %d; the only enabled process must run even while stalled", got)
	}
}

func TestPolicyStateEncodings(t *testing.T) {
	rr := &RoundRobin{}
	s0 := rr.AppendState(nil)
	rr.Next([]int{0, 1})
	s1 := rr.AppendState(nil)
	if string(s0) == string(s1) {
		t.Error("round-robin state encoding did not change after Next")
	}
	ls := NewLockStep(2)
	l0 := ls.AppendState(nil)
	ls.Next([]int{0, 1})
	l1 := ls.AppendState(nil)
	if string(l0) == string(l1) {
		t.Error("lock-step state encoding did not change after Next")
	}
}
