package sched

import (
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/perm"
)

func TestConfigValidation(t *testing.T) {
	ok := Config{N: 2, M: 3, NewMachine: Alg1Factory(2, 3, core.Alg1Config{})}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no processes", func(c *Config) { c.N = 0 }},
		{"no registers", func(c *Config) { c.M = 0 }},
		{"no factory", func(c *Config) { c.NewMachine = nil }},
		{"negative sessions", func(c *Config) { c.Sessions = -1 }},
		{"negative cs ticks", func(c *Config) { c.CSTicks = -1 }},
		{"cycles with honest snapshots", func(c *Config) { c.DetectCycles = true; c.HonestSnapshots = true }},
		{"cycles with random policy", func(c *Config) { c.DetectCycles = true; c.Policy = NewRandom(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected config error")
			}
		})
	}
	if _, err := New(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// assertCorrectRun runs cfg and asserts completion without ME violations.
func assertCorrectRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("mutual exclusion violated: %v", res.Violations[0])
	}
	if !res.Completed {
		t.Fatalf("run did not complete within %d steps (entries so far: %d)", res.Steps, res.Entries)
	}
	sessions := cfg.Sessions
	if sessions == 0 {
		sessions = 1
	}
	if want := cfg.N * sessions; res.Entries != want {
		t.Fatalf("entries = %d, want %d", res.Entries, want)
	}
	for i, ps := range res.PerProc {
		if ps.Sessions != sessions {
			t.Errorf("process %d completed %d sessions, want %d", i, ps.Sessions, sessions)
		}
	}
	for x, v := range res.FinalValues {
		if !v.IsNone() {
			t.Errorf("register %d = %v after completion, want ⊥", x, v)
		}
	}
	return res
}

func TestAlg1RoundRobinCompletes(t *testing.T) {
	res := assertCorrectRun(t, Config{
		N: 2, M: 3,
		NewMachine: Alg1Factory(2, 3, core.Alg1Config{}),
		Sessions:   3,
	})
	// Algorithm 1's entry requires owning all m registers.
	for i, ps := range res.PerProc {
		if ps.OwnedAtEntry != 3 {
			t.Errorf("process %d entered owning %d registers, want all 3", i, ps.OwnedAtEntry)
		}
	}
}

func TestAlg1ManyConfigurations(t *testing.T) {
	cases := []struct{ n, m int }{
		{2, 3}, {2, 5}, {3, 5}, {4, 5}, {3, 7}, {4, 7}, {6, 7}, {4, 25},
	}
	for _, tc := range cases {
		res, err := Run(Config{
			N: tc.n, M: tc.m,
			NewMachine: Alg1Factory(tc.n, tc.m, core.Alg1Config{}),
			Sessions:   2,
			Policy:     NewRandom(uint64(tc.n*100 + tc.m)),
			MaxSteps:   5_000_000,
		})
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("n=%d m=%d: ME violated: %v", tc.n, tc.m, res.Violations[0])
		}
		if !res.Completed {
			t.Fatalf("n=%d m=%d: did not complete (%d steps, %d entries)", tc.n, tc.m, res.Steps, res.Entries)
		}
	}
}

func TestAlg1RandomSchedulesManySeeds(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		res, err := Run(Config{
			N: 3, M: 5,
			NewMachine: Alg1Factory(3, 5, core.Alg1Config{}),
			Sessions:   2,
			Policy:     NewRandom(seed),
			CSTicks:    int(seed % 4),
			MaxSteps:   2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: ME violated: %v", seed, res.Violations[0])
		}
		if !res.Completed {
			t.Fatalf("seed %d: incomplete after %d steps", seed, res.Steps)
		}
	}
}

func TestAlg1HonestSnapshots(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		res, err := Run(Config{
			N: 2, M: 3,
			NewMachine:      Alg1Factory(2, 3, core.Alg1Config{}),
			Sessions:        2,
			Policy:          NewRandom(seed),
			HonestSnapshots: true,
			MaxSteps:        2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: ME violated with honest double-scan snapshots", seed)
		}
		if !res.Completed {
			t.Fatalf("seed %d: incomplete with honest snapshots (%d steps)", seed, res.Steps)
		}
	}
}

func TestAlg1UnderRandomPermutations(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		res, err := Run(Config{
			N: 3, M: 5,
			NewMachine: Alg1Factory(3, 5, core.Alg1Config{}),
			Adversary:  perm.RandomAdversary{Seed: seed},
			Policy:     NewRandom(seed * 7),
			Sessions:   2,
			MaxSteps:   2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 || !res.Completed {
			t.Fatalf("seed %d: violations=%d completed=%v", seed, len(res.Violations), res.Completed)
		}
	}
}

func TestAlg2RoundRobinCompletes(t *testing.T) {
	res := assertCorrectRun(t, Config{
		N: 2, M: 3,
		NewMachine: Alg2Factory(2, 3, core.Alg2Config{}),
		Sessions:   3,
	})
	for i, ps := range res.PerProc {
		if 2*ps.OwnedAtEntry <= 3 {
			t.Errorf("process %d entered owning %d of 3 registers — not a majority", i, ps.OwnedAtEntry)
		}
	}
}

func TestAlg2SingleRegister(t *testing.T) {
	assertCorrectRun(t, Config{
		N: 4, M: 1,
		NewMachine: Alg2Factory(4, 1, core.Alg2Config{}),
		Sessions:   3,
		Policy:     NewRandom(11),
	})
}

func TestAlg2ManyConfigurations(t *testing.T) {
	cases := []struct{ n, m int }{
		{2, 1}, {2, 3}, {2, 5}, {3, 5}, {4, 5}, {3, 7}, {6, 7}, {4, 25},
	}
	for _, tc := range cases {
		res, err := Run(Config{
			N: tc.n, M: tc.m,
			NewMachine: Alg2Factory(tc.n, tc.m, core.Alg2Config{}),
			Sessions:   2,
			Policy:     NewRandom(uint64(tc.n*1000 + tc.m)),
			MaxSteps:   5_000_000,
		})
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", tc.n, tc.m, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("n=%d m=%d: ME violated", tc.n, tc.m)
		}
		if !res.Completed {
			t.Fatalf("n=%d m=%d: incomplete (%d steps)", tc.n, tc.m, res.Steps)
		}
	}
}

func TestAlg2RandomPermutationsAndStalls(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		res, err := Run(Config{
			N: 3, M: 5,
			NewMachine: Alg2Factory(3, 5, core.Alg2Config{}),
			Adversary:  perm.RandomAdversary{Seed: seed},
			Policy:     &Stall{Inner: NewRandom(seed), Proc: int(seed % 3), From: 20, For: 200},
			Sessions:   2,
			MaxSteps:   2_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 || !res.Completed {
			t.Fatalf("seed %d: violations=%d completed=%v steps=%d", seed, len(res.Violations), res.Completed, res.Steps)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		N: 3, M: 5,
		NewMachine: Alg1Factory(3, 5, core.Alg1Config{}),
		Policy:     NewRandom(99),
		Sessions:   2,
		IDSeed:     7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = NewRandom(99) // fresh policy, same seed
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Entries != b.Entries || a.MemWrites != b.MemWrites {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Steps, a.Entries, a.MemWrites, b.Steps, b.Entries, b.MemWrites)
	}
}

func TestShuffledIdentities(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		assertCorrectRun(t, Config{
			N: 3, M: 5,
			NewMachine: Alg1Factory(3, 5, core.Alg1Config{}),
			Sessions:   2,
			IDSeed:     seed,
		})
	}
}

func TestCSTicksHoldTheLock(t *testing.T) {
	res := assertCorrectRun(t, Config{
		N: 2, M: 3,
		NewMachine: Alg2Factory(2, 3, core.Alg2Config{}),
		Sessions:   2,
		CSTicks:    10,
		Policy:     NewRandom(3),
	})
	if res.Steps < 2*2*10 {
		t.Errorf("run of %d steps too short to have held the CS for the configured ticks", res.Steps)
	}
}

func TestTraceRecording(t *testing.T) {
	res, err := Run(Config{
		N: 2, M: 3,
		NewMachine: Alg1Factory(2, 3, core.Alg1Config{}),
		Sessions:   1,
		TraceCap:   10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 {
		t.Fatal("no events recorded")
	}
	// The trace must contain exactly N lock-start, N enter, N unlock-done.
	counts := map[string]int{}
	for _, e := range res.Trace.Events {
		counts[e.Kind.String()]++
	}
	for _, kind := range []string{"lock-start", "enter-cs", "unlock-done"} {
		if counts[kind] != 2 {
			t.Errorf("%s events = %d, want 2 (trace: %v)", kind, counts[kind], counts)
		}
	}
}

// TestAlg1LockStepWedge is the Theorem 5 construction applied to
// Algorithm 1 on an illegal memory size: n=2 processes on m=4 registers
// (gcd(2,4)=2) with rotation-by-2 permutations, running in lock step. The
// execution reaches a 2-2 ownership split from which no process can ever
// withdraw (each owns exactly the average), so the deterministic system
// cycles — a proven livelock.
func TestAlg1LockStepWedge(t *testing.T) {
	res, err := Run(Config{
		N: 2, M: 4,
		NewMachine:   Alg1UncheckedFactory(4, core.Alg1Config{}),
		Adversary:    perm.RotationAdversary{Step: 2},
		Policy:       NewLockStep(2),
		DetectCycles: true,
		MaxSteps:     100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleDetected {
		t.Fatalf("no livelock cycle detected (completed=%v entries=%d steps=%d)", res.Completed, res.Entries, res.Steps)
	}
	if res.Entries != 0 {
		t.Fatalf("processes entered the CS %d times in the wedge", res.Entries)
	}
}

// TestAlg2LockStepWedge: same construction for Algorithm 2 on m=2.
func TestAlg2LockStepWedge(t *testing.T) {
	res, err := Run(Config{
		N: 2, M: 2,
		NewMachine:   Alg2UncheckedFactory(2, core.Alg2Config{}),
		Adversary:    perm.RotationAdversary{Step: 1},
		Policy:       NewLockStep(2),
		DetectCycles: true,
		MaxSteps:     100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleDetected {
		t.Fatalf("no livelock cycle detected (completed=%v entries=%d)", res.Completed, res.Entries)
	}
	if res.Entries != 0 {
		t.Fatal("processes entered the CS in the wedge")
	}
}

// TestAlg2LockStepLegalSizeProgresses: with m ∈ M(n) the same lock-step
// adversary cannot wedge the system — ownership cannot split evenly, so
// somebody resigns and somebody wins.
func TestAlg2LockStepLegalSizeProgresses(t *testing.T) {
	res, err := Run(Config{
		N: 2, M: 3,
		NewMachine:   Alg2Factory(2, 3, core.Alg2Config{}),
		Adversary:    perm.RotationAdversary{Step: 1},
		Policy:       NewLockStep(2),
		DetectCycles: true,
		MaxSteps:     1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CycleDetected && res.Entries == 0 {
		t.Fatalf("legal size wedged under lock step at step %d", res.CycleStep)
	}
	if res.Entries == 0 {
		t.Fatal("no CS entries under lock step with a legal size")
	}
}

func TestAlg1CycleDetectionPassesOnLegalSize(t *testing.T) {
	// Sanity: cycle detection on a correct configuration must not fire
	// before completion.
	res, err := Run(Config{
		N: 2, M: 3,
		NewMachine:   Alg1Factory(2, 3, core.Alg1Config{}),
		Policy:       &RoundRobin{},
		Sessions:     2,
		DetectCycles: true,
		MaxSteps:     1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CycleDetected {
		t.Fatalf("spurious livelock verdict on a correct configuration at step %d", res.CycleStep)
	}
	if !res.Completed {
		t.Fatal("run incomplete")
	}
}

func TestAblationTieBreakNeverWedges(t *testing.T) {
	// Without the average rule, two lock-step processes with rotated
	// permutations on a LEGAL size (m=3 ∈ M(2)) reach a 2-1 split: the
	// below-average process never withdraws, the leader can never absorb
	// its registers — livelock even though m ∈ M(n). The withdrawal rule,
	// not just the memory size, carries deadlock-freedom.
	res, err := Run(Config{
		N: 2, M: 3,
		NewMachine:   Alg1UncheckedFactory(3, core.Alg1Config{Tie: TieBreakNeverForTest()}),
		Adversary:    perm.RotationAdversary{Step: 1},
		Policy:       NewLockStep(2),
		DetectCycles: true,
		MaxSteps:     100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleDetected || res.Entries != 0 {
		t.Fatalf("expected wedge without tie-break rule: cycle=%v entries=%d", res.CycleDetected, res.Entries)
	}
}

// TieBreakNeverForTest exposes the ablation constant without importing
// core's internals in test tables.
func TieBreakNeverForTest() core.TieBreak { return core.TieBreakNever }

// TestCSTicksFor: the per-session hook must be called once per CS entry
// with in-order 0-based session indexes, and its values must actually
// pace the critical sections (more ticks, more steps).
func TestCSTicksFor(t *testing.T) {
	calls := make(map[int][]int)
	cfg := Config{
		N: 2, M: 3,
		NewMachine: Alg1Factory(2, 3, core.Alg1Config{}),
		Sessions:   3,
		CSTicksFor: func(proc, session int) int {
			calls[proc] = append(calls[proc], session)
			return 2 * session // sessions get longer as they go
		},
	}
	res := assertCorrectRun(t, cfg)
	for proc, sessions := range calls {
		if len(sessions) != 3 {
			t.Errorf("process %d: hook called %d times, want 3", proc, len(sessions))
		}
		for i, s := range sessions {
			if s != i {
				t.Errorf("process %d: call %d carried session %d", proc, i, s)
			}
		}
	}
	flat := assertCorrectRun(t, Config{
		N: 2, M: 3,
		NewMachine: Alg1Factory(2, 3, core.Alg1Config{}),
		Sessions:   3,
	})
	if res.Steps <= flat.Steps {
		t.Errorf("per-session ticks (%d steps) should exceed zero-tick runs (%d steps)", res.Steps, flat.Steps)
	}
}
