package loadgen

import (
	"strings"
	"testing"

	"anonmutex/internal/workload"
)

// TestAliasDeprecationWarnsOnce pins the retirement path for the
// pre-unified-model Config fields: using any of them still works but
// warns exactly once per process, and mixing them with the replacement
// Workload spec is rejected outright.
func TestAliasDeprecationWarnsOnce(t *testing.T) {
	var warnings []string
	orig := aliasWarn
	aliasWarn = func(msg string) { warnings = append(warnings, msg) }
	prior := aliasWarned.Swap(false)
	t.Cleanup(func() {
		aliasWarn = orig
		aliasWarned.Store(prior)
	})

	locker := func(int) (Locker, error) { return nil, nil }
	base := Config{Cycles: 1, NewLocker: locker}

	// A spec-described config is the blessed path: never a warning.
	clean := base
	clean.Workload = &workload.Spec{}
	if _, _, err := clean.withDefaults(); err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("spec-only config warned: %q", warnings)
	}

	// Each deprecated alias trips the warning — but only the first one.
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Dist = "skewed" },
		func(c *Config) { c.CSWork = 10 },
		func(c *Config) { c.ThinkWork = 10 },
		func(c *Config) { c.OpTimeout = 1 },
	} {
		aliased := base
		mutate(&aliased)
		if _, _, err := aliased.withDefaults(); err != nil {
			t.Fatalf("alias %d: %v", i, err)
		}
	}
	if len(warnings) != 1 {
		t.Fatalf("alias warning fired %d times, want once: %q", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "deprecated") || !strings.Contains(warnings[0], "Workload") {
		t.Errorf("warning %q does not name the deprecation or the replacement", warnings[0])
	}

	// Old and new vocabulary in one config is ambiguous, not mergeable.
	conflicted := clean
	conflicted.Dist = "uniform"
	if _, _, err := conflicted.withDefaults(); err == nil ||
		!strings.Contains(err.Error(), "deprecated") {
		t.Fatalf("Workload+Dist conflict = %v, want a rejection naming the deprecated fields", err)
	}
}
