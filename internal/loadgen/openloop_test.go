package loadgen

// Open-loop mode tests: arrival accounting must be exact, and overload
// must surface as aborts/shed — never as mutual-exclusion violations.

import (
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/internal/workload"
)

func TestOpenLoopArrivalAccounting(t *testing.T) {
	// A generous rate and a generous SLA: every arrival must be served.
	spec := workload.Spec{
		Seed:    3,
		Arrival: workload.ArrivalSpec{Process: workload.ArrivalPoisson, RatePerSec: 50_000, MaxBacklog: 1024},
	}
	cfg, mgr := managerConfig(t,
		lockmgr.Config{Shards: 2, HandlesPerLock: 4},
		Config{Clients: 4, Keys: 4, Cycles: 300, Workload: &spec})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if res.Arrivals != 300 {
		t.Errorf("arrivals = %d, want 300", res.Arrivals)
	}
	// Conservation: every arrival was served, aborted, missed, or shed.
	if got := res.Cycles + res.Aborts + res.TryMisses + res.Shed; got != res.Arrivals {
		t.Errorf("cycles+aborts+misses+shed = %d, want %d arrivals", got, res.Arrivals)
	}
	if res.Shed != 0 || res.Aborts != 0 {
		t.Errorf("generous run shed %d, aborted %d", res.Shed, res.Aborts)
	}
	if res.Violations != 0 || mgr.Violations() != 0 {
		t.Errorf("violations = %d/%d", res.Violations, mgr.Violations())
	}
	if res.OfferedPerSec <= 0 || res.Throughput <= 0 {
		t.Errorf("offered=%v achieved=%v", res.OfferedPerSec, res.Throughput)
	}
}

func TestOpenLoopOverloadAbortsNotViolations(t *testing.T) {
	// Offered load far beyond capacity (huge rate, slow critical
	// sections, tight SLA): aborts and/or shed arrivals are the expected
	// safety valve; violations never are.
	spec := workload.Spec{
		Seed:    5,
		BaseCS:  20_000, // slow CS: capacity is tiny
		Arrival: workload.ArrivalSpec{Process: workload.ArrivalBursty, RatePerSec: 500_000, BurstSize: 16, MaxBacklog: 32},
		Ops:     workload.OpMix{Timed: 1, TimeoutMS: 0.5},
	}
	cfg, mgr := managerConfig(t,
		lockmgr.Config{Shards: 2, HandlesPerLock: 2},
		Config{Clients: 4, Keys: 2, Cycles: 2000, Workload: &spec})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if res.Violations != 0 || mgr.Violations() != 0 {
		t.Fatalf("violations = %d/%d under overload", res.Violations, mgr.Violations())
	}
	if res.Aborts+res.Shed == 0 {
		t.Errorf("overload produced no aborts or shed arrivals: %+v", res)
	}
	if res.OfferedPerSec <= res.Throughput {
		t.Errorf("offered (%v/s) should exceed achieved (%v/s) under overload",
			res.OfferedPerSec, res.Throughput)
	}
	if got := res.Cycles + res.Aborts + res.TryMisses + res.Shed; got != res.Arrivals {
		t.Errorf("cycles+aborts+misses+shed = %d, want %d arrivals", got, res.Arrivals)
	}
}

func TestOpenLoopDurationBound(t *testing.T) {
	spec := workload.Spec{
		Seed:    11,
		Arrival: workload.ArrivalSpec{Process: workload.ArrivalPoisson, RatePerSec: 20_000},
	}
	cfg, mgr := managerConfig(t,
		lockmgr.Config{HandlesPerLock: 2},
		Config{Clients: 2, Keys: 2, Duration: 50 * time.Millisecond, Workload: &spec})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if res.Cycles == 0 {
		t.Error("no cycles completed in a 50ms open-loop run")
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}
