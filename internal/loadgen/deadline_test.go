package loadgen

// Per-op deadline tests. The two extremes are deterministic: a deadline
// that is already over when the acquire starts aborts every attempt, and
// a generous one aborts none.

import (
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
)

func TestOpTimeoutAbortsEveryAttempt(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	const attempts = 40
	res, err := Run(Config{
		Clients: 4, Keys: 2, Cycles: attempts,
		OpTimeout: time.Nanosecond, // over before any acquire can start
		NewLocker: func(int) (Locker, error) { return NewManagerLocker(mgr), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("cycles = %d, want 0", res.Cycles)
	}
	if res.Aborts != attempts {
		t.Errorf("aborts = %d, want %d", res.Aborts, attempts)
	}
	if res.AbortRate != 1 {
		t.Errorf("abort rate = %v, want 1", res.AbortRate)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestOpTimeoutGenerousAbortsNothing(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	res, err := Run(Config{
		Clients: 4, Keys: 2, Cycles: 40,
		OpTimeout: time.Minute,
		NewLocker: func(int) (Locker, error) { return NewManagerLocker(mgr), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Errorf("aborts = %d, want 0", res.Aborts)
	}
	if res.Cycles != 40 {
		t.Errorf("cycles = %d, want 40", res.Cycles)
	}
	if res.Violations != 0 || mgr.Violations() != 0 {
		t.Errorf("violations = %d/%d", res.Violations, mgr.Violations())
	}
}

// TestOpTimeoutNeedsDeadlineBackend: OpTimeout over a backend without
// AcquireFor must fail loudly, not silently fall back to unbounded.
func TestOpTimeoutNeedsDeadlineBackend(t *testing.T) {
	_, err := Run(Config{
		Clients: 1, Keys: 1, Cycles: 1,
		OpTimeout: time.Millisecond,
		NewLocker: func(int) (Locker, error) { return plainLocker{}, nil },
	})
	if err == nil {
		t.Fatal("OpTimeout over a deadline-less backend succeeded")
	}
}

// plainLocker is a Locker with no AcquireFor.
type plainLocker struct{}

func (plainLocker) Acquire(string) error { return nil }
func (plainLocker) Release(string) error { return nil }
func (plainLocker) Close() error         { return nil }
