// Package loadgen drives named-lock backends under configurable load: a
// population of client goroutines acquires and releases keys drawn from
// the repository's unified traffic model (internal/workload), measures
// per-acquire latency and end-to-end throughput, and verifies mutual
// exclusion with a per-key owner token checked inside every critical
// section.
//
// One workload.Spec describes the whole run: the key-popularity
// distribution (uniform, zipf, hotset, shifting-hotset), the arrival
// process, the op mix (blocking lock, bounded trylock, deadline-bounded
// acquire — expired attempts withdraw cleanly and are reported as an
// abort count and rate), and the session-length profile. Closed-loop
// specs behave like a classic benchmark: each client thinks between its
// own cycles, so the load adapts to the backend's speed. Open-loop specs
// (Poisson or bursty arrivals at an offered rate) decouple demand from
// capacity — the generator reports offered versus achieved throughput,
// shed arrivals, and the abort rate, which is what an abortable lock
// service's SLA behavior under overload actually looks like.
//
// The backend is anything that can acquire and release named locks — the
// in-process lockmgr.Manager (via ManagerLocker) or a lockd server over
// TCP (via the lockd/client package); cmd/anonload exposes both, and the
// S2–S4 experiments sweep them.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/internal/lease"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	lockclient "anonmutex/lockd/client"
)

// Locker is one client's session on a named-lock backend. A Locker
// belongs to one client goroutine.
type Locker interface {
	Acquire(name string) error
	Release(name string) error
	Close() error
}

// HoldsChecker is the optional owner-check surface: a Locker that can
// report, from the backend's own bookkeeping, whether this session holds
// a name. When available, the generator issues the check inside every
// critical section and counts failures as violations.
type HoldsChecker interface {
	Holds(name string) (bool, error)
}

// DeadlineLocker is the optional deadline surface: a Locker whose
// acquires can be bounded. AcquireFor reports whether the lock is now
// held; giving up at the deadline is not an error — the waiter withdraws
// cleanly and the generator counts an abort. A spec with timed ops
// requires the backend to offer this interface.
type DeadlineLocker interface {
	AcquireFor(name string, d time.Duration) (bool, error)
}

// TryLocker is the optional trylock surface: a bounded probe that never
// waits out a holder's critical section. A miss reports (false, nil) and
// the generator counts it. A spec with try ops requires this interface.
type TryLocker interface {
	TryAcquire(name string) (bool, error)
}

// Crasher is the optional crash surface: acquire name on a session of
// its own and then go dark holding it — no release, no heartbeat — so
// the key stays stuck until the backend's lease TTL recovers it. A
// spec with crash ops requires this interface. The generator never
// touches the owner token for a crashed hold: the dead holder can't
// clear it, and the token protocol is exactly what the successor's
// fencing is judged against.
type Crasher interface {
	// Crash reports false when the acquire could not be granted in
	// time — the victim "died" while still waiting, which the generator
	// counts as an abort, not a run failure: on a crash-heavy hot key
	// the queue drains at one expiry per TTL, so bounded-patience
	// crashers are expected to give up sometimes.
	Crash(name string) (bool, error)
}

// Config parameterizes a run.
type Config struct {
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// Keys is the size of the lock-name space (default 16).
	Keys int
	// Cycles bounds the total attempts across all clients (completed
	// cycles plus aborts and try misses; in open-loop specs, arrivals);
	// 0 means run until Duration elapses (at least one must be set).
	Cycles int
	// Duration bounds the run's wall clock; 0 means run until Cycles.
	Duration time.Duration
	// Workload is the unified traffic model driving key choice, arrival
	// pacing, op kinds, and session lengths. Nil: a spec is built from
	// the deprecated alias fields below.
	Workload *workload.Spec
	// Dist is the deprecated pre-unified-model alias: "uniform",
	// "bursty" (the bursty session profile), or "skewed" (a 1-key
	// hotset taking 80% of the traffic). It cannot be combined with
	// Workload.
	Dist string
	// Seed drives the traffic model when the spec's own seed is unset.
	Seed uint64
	// CSWork and ThinkWork are deprecated aliases for the spec's BaseCS
	// and BaseRemainder spin units. They cannot be combined with
	// Workload.
	CSWork, ThinkWork int
	// OpTimeout is the deprecated alias for a pure deadline-bounded op
	// mix: every acquire carries this deadline, and expired attempts
	// abort cleanly. It cannot be combined with Workload.
	OpTimeout time.Duration
	// ConnsPerSocket, when nonzero, overrides the spec's
	// conns_per_socket knob — the CLI's -mux flag. The generator itself
	// only records it; NewLocker decides what it means.
	ConnsPerSocket int
	// TolerateGrantLoss makes grant loss a counted outcome instead of a
	// run failure: ops rejected because the grant was fenced away or its
	// node became unreachable count as Lost (acquire-side losses count
	// as aborts), and the client-side owner-token CAS check — which is
	// unsound across an ownership handoff, where the old holder cannot
	// clear its token — is skipped. Use for cluster failover runs, where
	// mutual exclusion is judged by the servers' own violation counters
	// and fencing-token monotonicity instead.
	TolerateGrantLoss bool
	// NewLocker opens client i's session.
	NewLocker func(client int) (Locker, error)
}

// aliasWarn receives the one-time deprecation warning for the
// pre-unified-model alias fields; a test hook, os.Stderr by default.
var aliasWarn = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

// aliasWarned makes the deprecation warning fire once per process
// (resettable in tests).
var aliasWarned atomic.Bool

// withDefaults validates the config and resolves the effective workload
// spec.
func (c Config) withDefaults() (Config, workload.Spec, error) {
	var zero workload.Spec
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Clients < 1 {
		return c, zero, fmt.Errorf("loadgen: need Clients >= 1, got %d", c.Clients)
	}
	if c.Keys == 0 {
		c.Keys = 16
	}
	if c.Keys < 1 {
		return c, zero, fmt.Errorf("loadgen: need Keys >= 1, got %d", c.Keys)
	}
	if c.Cycles < 0 || c.Duration < 0 {
		return c, zero, fmt.Errorf("loadgen: negative bounds")
	}
	if c.Cycles == 0 && c.Duration == 0 {
		return c, zero, fmt.Errorf("loadgen: need Cycles or Duration")
	}
	if c.OpTimeout < 0 {
		return c, zero, fmt.Errorf("loadgen: negative OpTimeout")
	}
	if c.NewLocker == nil {
		return c, zero, fmt.Errorf("loadgen: NewLocker is required")
	}

	var spec workload.Spec
	aliased := c.Dist != "" || c.CSWork != 0 || c.ThinkWork != 0 || c.OpTimeout != 0
	if c.Workload != nil {
		if aliased {
			return c, zero, fmt.Errorf("loadgen: Workload cannot be combined with the deprecated Dist/CSWork/ThinkWork/OpTimeout fields")
		}
		spec = *c.Workload
	} else {
		if aliased && aliasWarned.CompareAndSwap(false, true) {
			aliasWarn("loadgen: the Dist/CSWork/ThinkWork/OpTimeout fields are deprecated aliases; describe the traffic with a workload.Spec (Config.Workload) instead")
		}
		spec = workload.Spec{BaseCS: c.CSWork, BaseRemainder: c.ThinkWork}
		switch c.Dist {
		case "", "uniform":
		case "bursty":
			spec.Profile = "bursty"
		case "skewed":
			spec.Keys = workload.KeySpec{Dist: workload.KeyHotset, HotKeys: 1, HotFrac: 0.8}
		default:
			return c, zero, fmt.Errorf("loadgen: unknown distribution %q (want uniform, bursty, or skewed)", c.Dist)
		}
		if c.OpTimeout > 0 {
			spec.Ops = workload.OpMix{Timed: 1, TimeoutMS: float64(c.OpTimeout) / float64(time.Millisecond)}
		}
	}
	if spec.Seed == 0 {
		spec.Seed = c.Seed
	}
	if c.ConnsPerSocket != 0 {
		spec.ConnsPerSocket = c.ConnsPerSocket
	}
	spec, err := spec.Normalize()
	if err != nil {
		return c, zero, fmt.Errorf("loadgen: %w", err)
	}
	return c, spec, nil
}

// Result is one run's outcome. Latencies are microseconds.
type Result struct {
	Backend string `json:"backend"`
	Clients int    `json:"clients"`
	Keys    int    `json:"keys"`
	// ConnsPerSocket echoes the spec's socket-multiplexing knob so a
	// recorded result states which transport shape produced it (0: one
	// socket per client).
	ConnsPerSocket int `json:"conns_per_socket,omitempty"`
	// Profile, KeyDist, and Arrival summarize the traffic model.
	Profile string  `json:"profile"`
	KeyDist string  `json:"key_dist"`
	Arrival string  `json:"arrival"`
	Cycles  int64   `json:"cycles"`
	Seconds float64 `json:"seconds"`
	// Throughput is the achieved rate of completed cycles.
	Throughput float64 `json:"cycles_per_second"`
	// Open-loop accounting: Arrivals is every arrival the pacer emitted
	// (OfferedPerSec is that over the wall clock); Shed counts arrivals
	// dropped because the bounded backlog was full or the run ended
	// before they were served.
	Arrivals      int64   `json:"arrivals,omitempty"`
	OfferedPerSec float64 `json:"offered_per_second,omitempty"`
	Shed          int64   `json:"shed,omitempty"`
	// Violations counts owner-check failures observed inside critical
	// sections (client token mismatches and failed backend holds checks).
	// It must be 0.
	Violations int64 `json:"violations"`
	// Aborts counts deadline-bounded acquires abandoned at their per-op
	// deadline (including open-loop arrivals whose SLA expired while
	// queued); AbortRate is aborts over attempts (cycles + aborts).
	// TryMisses counts trylock probes that found the lock busy. Latency
	// percentiles cover successful acquires only.
	Aborts    int64   `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`
	TryMisses int64   `json:"try_misses,omitempty"`
	// Crashes counts holders that deliberately died inside the critical
	// section (the spec's crash ops); their keys stay held until the
	// backend's lease TTL reclaims them.
	Crashes int64 `json:"crashes,omitempty"`
	// Lost counts grants the run lost mid-critical-section to fencing or
	// node failure (TolerateGrantLoss runs only): the op on the grant was
	// rejected, the cycle completed no release, and no violation is
	// implied — the backend fenced the holder out, which is the designed
	// failover outcome.
	Lost        int64   `json:"lost,omitempty"`
	OpTimeoutMS float64 `json:"op_timeout_ms,omitempty"`
	LatencyP50  float64 `json:"acquire_p50_us"`
	LatencyP90  float64 `json:"acquire_p90_us"`
	LatencyP99  float64 `json:"acquire_p99_us"`
	LatencyMax  float64 `json:"acquire_max_us"`
}

// Table renders the result in the harness's table format, suitable for
// BENCH_*.json via the stats.Table JSON codec.
func (r *Result) Table() *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("anonload — backend=%s", r.Backend),
		Header: []string{"clients", "keys", "profile", "key dist", "arrival",
			"cycles", "seconds", "cycles/s", "offered/s", "shed",
			"violations", "aborts", "abort rate", "try misses",
			"acq p50 µs", "acq p90 µs", "acq p99 µs", "acq max µs"},
	}
	t.AddRow(r.Clients, r.Keys, r.Profile, r.KeyDist, r.Arrival,
		r.Cycles, r.Seconds, r.Throughput, r.OfferedPerSec, r.Shed,
		r.Violations, r.Aborts, r.AbortRate, r.TryMisses,
		r.LatencyP50, r.LatencyP90, r.LatencyP99, r.LatencyMax)
	t.Notes = append(t.Notes,
		"every critical section runs an owner check: a per-key token (CAS in, CAS out) plus the backend's holds op when offered")
	if r.OpTimeoutMS > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("per-op deadline %.3gms: aborted acquires withdraw cleanly and do not enter the latency percentiles", r.OpTimeoutMS))
	}
	if r.Arrival != workload.ArrivalClosed {
		t.Notes = append(t.Notes,
			"open loop: arrivals are paced at the offered rate regardless of service capacity; latency is measured from the arrival stamp (queue wait included)")
	}
	if r.Crashes > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("%d holders crashed inside their critical sections (spec crash ops); their keys were recovered by lease TTL expiry", r.Crashes))
	}
	if r.Lost > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("%d grants were lost mid-cycle to fencing or node failure (tolerated: failover run; exclusion is judged by server counters)", r.Lost))
	}
	return t
}

// runState is the bookkeeping shared by every goroutine of one run.
type runState struct {
	cfg      Config
	spec     workload.Spec
	keys     []string
	owners   []atomic.Int64
	deadline time.Time // zero when Duration is unset

	next       atomic.Int64 // closed-loop global attempt allocator
	arrivals   atomic.Int64 // open-loop arrivals emitted (incl. shed)
	shed       atomic.Int64
	violations atomic.Int64
	aborts     atomic.Int64
	tryMisses  atomic.Int64
	crashes    atomic.Int64
	lost       atomic.Int64
	stop       atomic.Bool

	mu       sync.Mutex
	firstErr error

	// Per-client latency buffers keep the measured hot loop free of
	// shared state; they merge into one histogram after the run.
	latencies [][]float64
}

func (st *runState) fail(err error) {
	st.stop.Store(true)
	st.mu.Lock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.mu.Unlock()
}

// client is one goroutine's session plus its traffic stream.
type client struct {
	st      *runState
	me      int
	lk      Locker
	checker HoldsChecker
	bounded DeadlineLocker
	trier   TryLocker
	crasher Crasher
	src     *workload.Source
	token   int64
}

// newClient opens session me and checks that the backend offers every
// surface the op mix needs.
func (st *runState) newClient(me int) (*client, error) {
	lk, err := st.cfg.NewLocker(me)
	if err != nil {
		return nil, fmt.Errorf("loadgen: client %d: %w", me, err)
	}
	c := &client{
		st: st, me: me, lk: lk,
		src:   workload.NewSource(st.spec, uint64(me)),
		token: int64(me + 1),
	}
	c.checker, _ = lk.(HoldsChecker)
	if st.spec.Ops.Timed > 0 {
		var ok bool
		if c.bounded, ok = lk.(DeadlineLocker); !ok {
			lk.Close()
			return nil, fmt.Errorf("loadgen: client %d: the op mix has timed acquires but the backend session (%T) offers no AcquireFor", me, lk)
		}
	}
	if st.spec.Ops.Try > 0 {
		var ok bool
		if c.trier, ok = lk.(TryLocker); !ok {
			lk.Close()
			return nil, fmt.Errorf("loadgen: client %d: the op mix has try acquires but the backend session (%T) offers no TryAcquire", me, lk)
		}
	}
	if st.spec.Ops.Crash > 0 {
		var ok bool
		if c.crasher, ok = lk.(Crasher); !ok {
			lk.Close()
			return nil, fmt.Errorf("loadgen: client %d: the op mix has crash ops but the backend session (%T) offers no Crash", me, lk)
		}
	}
	return c, nil
}

// Cycle outcomes.
const (
	cycleDone = iota
	cycleAbort
	cycleMiss
	cycleCrash
	cycleLost
	cycleFailed
)

// grantLost reports whether err is a lost-grant rejection: the holder
// was fenced out (lease expiry, ownership handoff) or the node behind
// the grant stopped answering. Only these classes are tolerated in
// TolerateGrantLoss runs; any other error still fails the run.
func grantLost(err error) bool {
	var redir *lockclient.RedirectError
	return errors.Is(err, lockclient.ErrFenced) ||
		errors.Is(err, lockclient.ErrUnavailable) ||
		errors.Is(err, lease.ErrFenced) ||
		errors.As(err, &redir)
}

// runCycle executes one acquire→CS→release cycle on keys[k]. latFrom is
// where the latency clock started (the arrival stamp in open loop, the
// acquire start in closed loop); timeout bounds timed acquires. On
// cycleFailed the run error has already been recorded.
func (c *client) runCycle(k int, kind workload.OpKind, sess workload.Session, latFrom time.Time, timeout time.Duration) int {
	st := c.st
	name := st.keys[k]
	switch kind {
	case workload.OpCrash:
		// Die holding the key: no latency sample, no owner-token traffic
		// (a dead holder can't clear the token, and a false violation is
		// worse than no check), no release. Recovery is the lease
		// subsystem's job.
		crashed, err := c.crasher.Crash(name)
		if err != nil {
			st.fail(fmt.Errorf("loadgen: client %d crashing on %s: %w", c.me, name, err))
			return cycleFailed
		}
		if !crashed {
			return cycleAbort // died waiting, never held the key
		}
		return cycleCrash
	case workload.OpTry:
		ok, err := c.trier.TryAcquire(name)
		if err != nil {
			if st.cfg.TolerateGrantLoss && grantLost(err) {
				return cycleAbort // the key's owner was mid-failover
			}
			st.fail(fmt.Errorf("loadgen: client %d try-acquiring %s: %w", c.me, name, err))
			return cycleFailed
		}
		if !ok {
			return cycleMiss
		}
	case workload.OpTimed:
		ok, err := c.bounded.AcquireFor(name, timeout)
		if err != nil {
			if st.cfg.TolerateGrantLoss && grantLost(err) {
				return cycleAbort
			}
			st.fail(fmt.Errorf("loadgen: client %d acquiring %s: %w", c.me, name, err))
			return cycleFailed
		}
		if !ok {
			return cycleAbort
		}
	default:
		if err := c.lk.Acquire(name); err != nil {
			if st.cfg.TolerateGrantLoss && grantLost(err) {
				return cycleAbort
			}
			st.fail(fmt.Errorf("loadgen: client %d acquiring %s: %w", c.me, name, err))
			return cycleFailed
		}
	}
	lat := float64(time.Since(latFrom).Microseconds())
	// Critical section: owner checks, then the payload work. In a
	// TolerateGrantLoss run the client-side token CAS is skipped — a
	// holder fenced out by an ownership handoff cannot clear its token,
	// so the CAS would report false violations; the servers' own
	// counters carry the exclusion verdict there.
	tokenCheck := !st.cfg.TolerateGrantLoss
	if tokenCheck && !st.owners[k].CompareAndSwap(0, c.token) {
		st.violations.Add(1)
	}
	if c.checker != nil {
		held, err := c.checker.Holds(name)
		if err != nil {
			if st.cfg.TolerateGrantLoss && grantLost(err) {
				return cycleLost
			}
			// A transport/backend failure is a run error, not evidence
			// the lock misbehaved.
			st.fail(fmt.Errorf("loadgen: client %d holds check on %s: %w", c.me, name, err))
			return cycleFailed
		}
		if !held {
			if st.cfg.TolerateGrantLoss {
				return cycleLost // fenced away between grant and check
			}
			st.violations.Add(1)
		}
	}
	workload.Spin(sess.CSWork)
	if tokenCheck && !st.owners[k].CompareAndSwap(c.token, 0) {
		st.violations.Add(1)
	}
	if err := c.lk.Release(name); err != nil {
		if st.cfg.TolerateGrantLoss && grantLost(err) {
			return cycleLost
		}
		st.fail(fmt.Errorf("loadgen: client %d releasing %s: %w", c.me, name, err))
		return cycleFailed
	}
	st.latencies[c.me] = append(st.latencies[c.me], lat)
	return cycleDone
}

// closedLoop is one client's classic benchmark loop: draw, acquire, run
// the critical section, release, think.
func (st *runState) closedLoop(me int) {
	c, err := st.newClient(me)
	if err != nil {
		st.fail(err)
		return
	}
	defer c.lk.Close()
	timeout := st.spec.Ops.Timeout()
	for !st.stop.Load() {
		if st.cfg.Cycles > 0 && st.next.Add(1) > int64(st.cfg.Cycles) {
			return
		}
		if st.cfg.Duration > 0 && !time.Now().Before(st.deadline) {
			return
		}
		k := c.src.PickKey(st.cfg.Keys)
		kind := c.src.NextOp()
		sess := c.src.NextSession()
		switch c.runCycle(k, kind, sess, time.Now(), timeout) {
		case cycleFailed:
			return
		case cycleAbort:
			st.aborts.Add(1)
		case cycleMiss:
			st.tryMisses.Add(1)
		case cycleCrash:
			st.crashes.Add(1)
		case cycleLost:
			st.lost.Add(1)
		}
		workload.Spin(sess.RemainderWork)
	}
}

// Run executes the load.
func Run(cfg Config) (*Result, error) {
	cfg, spec, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	st := &runState{
		cfg:       cfg,
		spec:      spec,
		keys:      make([]string, cfg.Keys),
		owners:    make([]atomic.Int64, cfg.Keys),
		latencies: make([][]float64, cfg.Clients),
	}
	for i := range st.keys {
		st.keys[i] = fmt.Sprintf("key-%04d", i)
	}
	if cfg.Duration > 0 {
		st.deadline = time.Now().Add(cfg.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	if spec.Open() {
		backlog := spec.Arrival.MaxBacklog
		if backlog == 0 {
			backlog = 4 * cfg.Clients
		}
		arrivals := make(chan time.Time, backlog)
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.pace(arrivals)
		}()
		for i := 0; i < cfg.Clients; i++ {
			wg.Add(1)
			go func(me int) {
				defer wg.Done()
				st.openLoop(me, arrivals)
			}(i)
		}
	} else {
		for i := 0; i < cfg.Clients; i++ {
			wg.Add(1)
			go func(me int) {
				defer wg.Done()
				st.closedLoop(me)
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if st.firstErr != nil {
		return nil, st.firstErr
	}

	var merged stats.Histogram
	for _, buf := range st.latencies {
		for _, lat := range buf {
			merged.Add(lat)
		}
	}
	cycles := int64(merged.N())
	res := &Result{
		Clients:        cfg.Clients,
		Keys:           cfg.Keys,
		ConnsPerSocket: spec.ConnsPerSocket,
		Profile:        spec.Profile,
		KeyDist:        spec.Keys.Dist,
		Arrival:        spec.Arrival.Process,
		Cycles:         cycles,
		Seconds:        elapsed,
		Arrivals:       st.arrivals.Load(),
		Shed:           st.shed.Load(),
		Violations:     st.violations.Load(),
		Aborts:         st.aborts.Load(),
		TryMisses:      st.tryMisses.Load(),
		Crashes:        st.crashes.Load(),
		Lost:           st.lost.Load(),
		OpTimeoutMS:    spec.Ops.TimeoutMS,
	}
	if spec.Ops.Timed == 0 {
		res.OpTimeoutMS = 0
	}
	res.LatencyP50 = merged.Percentile(50)
	res.LatencyP90 = merged.Percentile(90)
	res.LatencyP99 = merged.Percentile(99)
	res.LatencyMax = merged.Percentile(100)
	if attempts := cycles + res.Aborts; attempts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(attempts)
	}
	if elapsed > 0 {
		res.Throughput = float64(cycles) / elapsed
		if spec.Open() {
			res.OfferedPerSec = float64(res.Arrivals) / elapsed
		}
	}
	return res, nil
}

// ManagerLocker adapts one client's view of an in-process
// lockmgr.Manager to the Locker interface, with session bookkeeping so
// Holds serves as the backend owner check. It drives the manager's
// allocation-free Lease API, so the measured hot loop stays off the
// heap. One ManagerLocker per client goroutine.
type ManagerLocker struct {
	mgr    *lockmgr.Manager
	leases map[string]lockmgr.Lease
}

// NewManagerLocker opens a session on mgr.
func NewManagerLocker(mgr *lockmgr.Manager) *ManagerLocker {
	return &ManagerLocker{mgr: mgr, leases: make(map[string]lockmgr.Lease)}
}

// Acquire blocks until this session holds name.
func (l *ManagerLocker) Acquire(name string) error {
	if _, held := l.leases[name]; held {
		return fmt.Errorf("loadgen: session already holds %q", name)
	}
	lease, err := l.mgr.AcquireLeaseCtx(context.Background(), name)
	if err != nil {
		return err
	}
	l.leases[name] = lease
	return nil
}

// AcquireFor implements DeadlineLocker over the manager's deadline-
// bounded acquire: an attempt that cannot complete within d withdraws
// cleanly and reports (false, nil).
func (l *ManagerLocker) AcquireFor(name string, d time.Duration) (bool, error) {
	if _, held := l.leases[name]; held {
		return false, fmt.Errorf("loadgen: session already holds %q", name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	lease, err := l.mgr.AcquireLeaseCtx(ctx, name)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return false, nil
		}
		return false, err
	}
	l.leases[name] = lease
	return true, nil
}

// TryAcquire implements TryLocker over the manager's bounded probe: a
// lost race reports (false, nil) without waiting out the holder.
func (l *ManagerLocker) TryAcquire(name string) (bool, error) {
	if _, held := l.leases[name]; held {
		return false, fmt.Errorf("loadgen: session already holds %q", name)
	}
	lease, ok, err := l.mgr.TryAcquireLease(name)
	if err != nil || !ok {
		return false, err
	}
	l.leases[name] = lease
	return true, nil
}

// Release gives a held name back.
func (l *ManagerLocker) Release(name string) error {
	lease, held := l.leases[name]
	if !held {
		return fmt.Errorf("loadgen: session does not hold %q", name)
	}
	delete(l.leases, name)
	return l.mgr.Release(lease)
}

// Holds implements HoldsChecker from the session's bookkeeping.
func (l *ManagerLocker) Holds(name string) (bool, error) {
	_, held := l.leases[name]
	return held, nil
}

// Close releases anything the session still holds.
func (l *ManagerLocker) Close() error {
	for name, lease := range l.leases {
		delete(l.leases, name)
		if err := l.mgr.Release(lease); err != nil {
			return err
		}
	}
	return nil
}
