// Package loadgen drives named-lock backends under configurable load: a
// population of client goroutines acquires and releases keys drawn from
// one of the scenario workload distributions (uniform, bursty, skewed),
// measures per-acquire latency and end-to-end throughput, and verifies
// mutual exclusion with a per-key owner token checked inside every
// critical section. With Config.OpTimeout set, every acquire carries a
// deadline: attempts that expire withdraw cleanly and are reported as an
// abort count and rate — the SLA-style workload the abortable lock stack
// exists for.
//
// The backend is anything that can acquire and release named locks — the
// in-process lockmgr.Manager (via ManagerLocker) or a lockd server over
// TCP (via the lockd/client package); cmd/anonload exposes both, and the
// S2 experiment sweeps the in-process backend.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/internal/scenario"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	"anonmutex/internal/xrand"
)

// Locker is one client's session on a named-lock backend. A Locker
// belongs to one client goroutine.
type Locker interface {
	Acquire(name string) error
	Release(name string) error
	Close() error
}

// HoldsChecker is the optional owner-check surface: a Locker that can
// report, from the backend's own bookkeeping, whether this session holds
// a name. When available, the generator issues the check inside every
// critical section and counts failures as violations.
type HoldsChecker interface {
	Holds(name string) (bool, error)
}

// DeadlineLocker is the optional deadline surface: a Locker whose
// acquires can be bounded. AcquireFor reports whether the lock is now
// held; giving up at the deadline is not an error — the waiter withdraws
// cleanly and the generator counts an abort. Config.OpTimeout requires
// the backend to offer this interface.
type DeadlineLocker interface {
	AcquireFor(name string, d time.Duration) (bool, error)
}

// Config parameterizes a run.
type Config struct {
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// Keys is the size of the lock-name space (default 16).
	Keys int
	// Cycles is the total acquire/release cycles across all clients; 0
	// means run until Duration elapses (at least one must be set).
	Cycles int
	// Duration bounds the run's wall clock; 0 means run until Cycles.
	Duration time.Duration
	// Dist is the key distribution: scenario.WorkloadUniform (every key
	// equally hot), WorkloadSkewed (80% of traffic on one hot key), or
	// WorkloadBursty (clusters of rapid cycles between long pauses).
	// Default uniform.
	Dist string
	// Seed drives key choice and think-time jitter.
	Seed uint64
	// CSWork and ThinkWork are spin units (workload.Spin) inside the
	// critical section and between cycles.
	CSWork, ThinkWork int
	// OpTimeout, when nonzero, bounds every acquire: an attempt that
	// cannot complete within it is abandoned (the waiter withdraws
	// cleanly) and counted as an abort instead of a cycle. Requires a
	// backend whose sessions implement DeadlineLocker. With Cycles set,
	// the bound counts attempts — completed cycles plus aborts.
	OpTimeout time.Duration
	// NewLocker opens client i's session.
	NewLocker func(client int) (Locker, error)
}

func (c Config) withDefaults() (Config, error) {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Clients < 1 {
		return c, fmt.Errorf("loadgen: need Clients >= 1, got %d", c.Clients)
	}
	if c.Keys == 0 {
		c.Keys = 16
	}
	if c.Keys < 1 {
		return c, fmt.Errorf("loadgen: need Keys >= 1, got %d", c.Keys)
	}
	if c.Cycles < 0 || c.Duration < 0 {
		return c, fmt.Errorf("loadgen: negative bounds")
	}
	if c.Cycles == 0 && c.Duration == 0 {
		return c, fmt.Errorf("loadgen: need Cycles or Duration")
	}
	if c.OpTimeout < 0 {
		return c, fmt.Errorf("loadgen: negative OpTimeout")
	}
	if c.Dist == "" {
		c.Dist = scenario.WorkloadUniform
	}
	switch c.Dist {
	case scenario.WorkloadUniform, scenario.WorkloadBursty, scenario.WorkloadSkewed:
	default:
		return c, fmt.Errorf("loadgen: unknown distribution %q (want %s, %s, or %s)",
			c.Dist, scenario.WorkloadUniform, scenario.WorkloadBursty, scenario.WorkloadSkewed)
	}
	if c.NewLocker == nil {
		return c, fmt.Errorf("loadgen: NewLocker is required")
	}
	return c, nil
}

// Result is one run's outcome. Latencies are microseconds.
type Result struct {
	Backend    string  `json:"backend"`
	Clients    int     `json:"clients"`
	Keys       int     `json:"keys"`
	Dist       string  `json:"dist"`
	Cycles     int64   `json:"cycles"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"cycles_per_second"`
	// Violations counts owner-check failures observed inside critical
	// sections (client token mismatches and failed backend holds checks).
	// It must be 0.
	Violations int64 `json:"violations"`
	// Aborts counts acquires abandoned at the per-op deadline
	// (Config.OpTimeout); AbortRate is aborts over attempts. Latency
	// percentiles cover successful acquires only.
	Aborts      int64   `json:"aborts"`
	AbortRate   float64 `json:"abort_rate"`
	OpTimeoutMS float64 `json:"op_timeout_ms,omitempty"`
	LatencyP50  float64 `json:"acquire_p50_us"`
	LatencyP90  float64 `json:"acquire_p90_us"`
	LatencyP99  float64 `json:"acquire_p99_us"`
	LatencyMax  float64 `json:"acquire_max_us"`
}

// Table renders the result in the harness's table format, suitable for
// BENCH_*.json via the stats.Table JSON codec.
func (r *Result) Table() *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("anonload — backend=%s", r.Backend),
		Header: []string{"clients", "keys", "dist", "cycles", "seconds", "cycles/s",
			"violations", "aborts", "abort rate", "acq p50 µs", "acq p90 µs", "acq p99 µs", "acq max µs"},
	}
	t.AddRow(r.Clients, r.Keys, r.Dist, r.Cycles, r.Seconds, r.Throughput,
		r.Violations, r.Aborts, r.AbortRate, r.LatencyP50, r.LatencyP90, r.LatencyP99, r.LatencyMax)
	t.Notes = append(t.Notes,
		"every critical section runs an owner check: a per-key token (CAS in, CAS out) plus the backend's holds op when offered")
	if r.OpTimeoutMS > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("per-op deadline %.3gms: aborted acquires withdraw cleanly and do not enter the latency percentiles", r.OpTimeoutMS))
	}
	return t
}

// Run executes the load.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	owners := make([]atomic.Int64, cfg.Keys)

	var (
		next       atomic.Int64 // global cycle allocator
		violations atomic.Int64
		aborts     atomic.Int64
		stop       atomic.Bool
		wg         sync.WaitGroup
		mu         sync.Mutex
		firstErr   error
	)
	// Per-client latency buffers keep the measured hot loop free of
	// shared state; they merge into one histogram after the run.
	latencies := make([][]float64, cfg.Clients)
	fail := func(err error) {
		stop.Store(true)
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			lk, err := cfg.NewLocker(me)
			if err != nil {
				fail(fmt.Errorf("loadgen: client %d: %w", me, err))
				return
			}
			defer lk.Close()
			checker, _ := lk.(HoldsChecker)
			var bounded DeadlineLocker
			if cfg.OpTimeout > 0 {
				var ok bool
				if bounded, ok = lk.(DeadlineLocker); !ok {
					fail(fmt.Errorf("loadgen: client %d: OpTimeout set but the backend session (%T) offers no AcquireFor", me, lk))
					return
				}
			}
			r := xrand.New(xrand.Mix64(cfg.Seed ^ uint64(me)*0x9e3779b97f4a7c15))
			token := int64(me + 1)
			var burst int
			for !stop.Load() {
				if cfg.Cycles > 0 && next.Add(1) > int64(cfg.Cycles) {
					return
				}
				if cfg.Duration > 0 && !time.Now().Before(deadline) {
					return
				}
				k := pickKey(cfg.Dist, r, cfg.Keys)
				acqStart := time.Now()
				if bounded != nil {
					ok, err := bounded.AcquireFor(keys[k], cfg.OpTimeout)
					if err != nil {
						fail(fmt.Errorf("loadgen: client %d acquiring %s: %w", me, keys[k], err))
						return
					}
					if !ok {
						aborts.Add(1)
						think(cfg, r, &burst)
						continue
					}
				} else if err := lk.Acquire(keys[k]); err != nil {
					fail(fmt.Errorf("loadgen: client %d acquiring %s: %w", me, keys[k], err))
					return
				}
				lat := float64(time.Since(acqStart).Microseconds())
				// Critical section: owner checks, then the payload work.
				if !owners[k].CompareAndSwap(0, token) {
					violations.Add(1)
				}
				if checker != nil {
					held, err := checker.Holds(keys[k])
					if err != nil {
						// A transport/backend failure is a run error, not
						// evidence the lock misbehaved.
						fail(fmt.Errorf("loadgen: client %d holds check on %s: %w", me, keys[k], err))
						return
					}
					if !held {
						violations.Add(1)
					}
				}
				workload.Spin(cfg.CSWork)
				if !owners[k].CompareAndSwap(token, 0) {
					violations.Add(1)
				}
				if err := lk.Release(keys[k]); err != nil {
					fail(fmt.Errorf("loadgen: client %d releasing %s: %w", me, keys[k], err))
					return
				}
				latencies[me] = append(latencies[me], lat)
				think(cfg, r, &burst)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	var merged stats.Histogram
	for _, buf := range latencies {
		for _, lat := range buf {
			merged.Add(lat)
		}
	}
	cycles := int64(merged.N())
	res := &Result{
		Clients:     cfg.Clients,
		Keys:        cfg.Keys,
		Dist:        cfg.Dist,
		Cycles:      cycles,
		Seconds:     elapsed,
		Violations:  violations.Load(),
		Aborts:      aborts.Load(),
		OpTimeoutMS: float64(cfg.OpTimeout) / float64(time.Millisecond),
		LatencyP50:  merged.Percentile(50),
		LatencyP90:  merged.Percentile(90),
		LatencyP99:  merged.Percentile(99),
		LatencyMax:  merged.Percentile(100),
	}
	if attempts := cycles + res.Aborts; attempts > 0 {
		res.AbortRate = float64(res.Aborts) / float64(attempts)
	}
	if elapsed > 0 {
		res.Throughput = float64(cycles) / elapsed
	}
	return res, nil
}

// pickKey draws a lock name index from the configured distribution.
func pickKey(dist string, r *xrand.Rand, keys int) int {
	switch dist {
	case scenario.WorkloadSkewed:
		// One hot key takes 80% of the traffic — the service-side analog
		// of the skewed workload profile's hammering process.
		if r.Intn(5) != 0 {
			return 0
		}
		return r.Intn(keys)
	default: // uniform and bursty spread keys evenly
		return r.Intn(keys)
	}
}

// think burns the between-cycle time. Bursty clients alternate clusters
// of back-to-back cycles with long pauses, mirroring workload.Bursty.
func think(cfg Config, r *xrand.Rand, burst *int) {
	switch cfg.Dist {
	case scenario.WorkloadBursty:
		if *burst > 0 {
			*burst--
			workload.Spin(1)
			return
		}
		*burst = 2 + r.Intn(6)
		workload.Spin(10 * (cfg.ThinkWork + 1))
	default:
		workload.Spin(cfg.ThinkWork)
	}
}

// ManagerLocker adapts one client's view of an in-process
// lockmgr.Manager to the Locker interface, with session bookkeeping so
// Holds serves as the backend owner check. It drives the manager's
// allocation-free Lease API, so the measured hot loop stays off the
// heap. One ManagerLocker per client goroutine.
type ManagerLocker struct {
	mgr    *lockmgr.Manager
	leases map[string]lockmgr.Lease
}

// NewManagerLocker opens a session on mgr.
func NewManagerLocker(mgr *lockmgr.Manager) *ManagerLocker {
	return &ManagerLocker{mgr: mgr, leases: make(map[string]lockmgr.Lease)}
}

// Acquire blocks until this session holds name.
func (l *ManagerLocker) Acquire(name string) error {
	if _, held := l.leases[name]; held {
		return fmt.Errorf("loadgen: session already holds %q", name)
	}
	lease, err := l.mgr.AcquireLeaseCtx(context.Background(), name)
	if err != nil {
		return err
	}
	l.leases[name] = lease
	return nil
}

// AcquireFor implements DeadlineLocker over the manager's deadline-
// bounded acquire: an attempt that cannot complete within d withdraws
// cleanly and reports (false, nil).
func (l *ManagerLocker) AcquireFor(name string, d time.Duration) (bool, error) {
	if _, held := l.leases[name]; held {
		return false, fmt.Errorf("loadgen: session already holds %q", name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	lease, err := l.mgr.AcquireLeaseCtx(ctx, name)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return false, nil
		}
		return false, err
	}
	l.leases[name] = lease
	return true, nil
}

// Release gives a held name back.
func (l *ManagerLocker) Release(name string) error {
	lease, held := l.leases[name]
	if !held {
		return fmt.Errorf("loadgen: session does not hold %q", name)
	}
	delete(l.leases, name)
	return l.mgr.Release(lease)
}

// Holds implements HoldsChecker from the session's bookkeeping.
func (l *ManagerLocker) Holds(name string) (bool, error) {
	_, held := l.leases[name]
	return held, nil
}

// Close releases anything the session still holds.
func (l *ManagerLocker) Close() error {
	for name, lease := range l.leases {
		delete(l.leases, name)
		if err := l.mgr.Release(lease); err != nil {
			return err
		}
	}
	return nil
}
