package loadgen

// Replay determinism across consumers: a loadgen client and a
// scenario/sim process with the same workload Spec, seed, and stream id
// must observe identical traffic. The unified model guarantees it by
// deriving an independent RNG stream per generator — these tests pin
// the end-to-end property against live consumers.

import (
	"fmt"
	"testing"

	"anonmutex/internal/workload"
)

// recordingLocker records the acquire order of one client.
type recordingLocker struct {
	names []string
}

func (r *recordingLocker) Acquire(name string) error {
	r.names = append(r.names, name)
	return nil
}
func (r *recordingLocker) Release(string) error { return nil }
func (r *recordingLocker) Close() error         { return nil }

func TestReplayLoadgenMatchesTrace(t *testing.T) {
	spec := workload.Spec{
		Profile: "bursty", BaseCS: 0, BaseRemainder: 0, Seed: 77,
		Keys: workload.KeySpec{Dist: workload.KeyZipf, ZipfS: 1.3},
	}
	const clients, keys, cycles = 3, 8, 150
	recorders := make([]*recordingLocker, clients)
	cfg := Config{
		Clients: clients, Keys: keys, Cycles: cycles,
		Workload: &spec,
		NewLocker: func(me int) (Locker, error) {
			recorders[me] = &recordingLocker{}
			return recorders[me], nil
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for me, rec := range recorders {
		trace, err := workload.TraceOps(spec, uint64(me), keys, len(rec.names))
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range rec.names {
			want := fmt.Sprintf("key-%04d", trace[i].Key)
			if name != want {
				t.Fatalf("client %d acquire %d: got %s, want %s (trace diverged)", me, i, name, want)
			}
		}
	}
}

func TestReplaySimPlanMatchesLoadgenStreams(t *testing.T) {
	// The scenario runners (real and simulated substrates) consume
	// workload.SpecPlan; loadgen clients consume interleaved Source
	// draws. Stream i's session subsequence must be identical in both —
	// the cross-consumer replay guarantee.
	spec := workload.Spec{Profile: "skewed", BaseCS: 4, BaseRemainder: 6, Seed: 123}
	const n, sessions = 4, 60
	plan, err := workload.SpecPlan(spec, n, sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		trace, err := workload.TraceOps(spec, uint64(i), 16, sessions)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < sessions; s++ {
			if plan[i][s] != trace[s].Session {
				t.Fatalf("stream %d session %d: plan %+v, interleaved trace %+v",
					i, s, plan[i][s], trace[s].Session)
			}
		}
	}
	// And the whole thing replays: a second materialization is
	// bit-identical.
	again, err := workload.SpecPlan(spec, n, sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan {
		for s := range plan[i] {
			if plan[i][s] != again[i][s] {
				t.Fatalf("plan not replayable at [%d][%d]", i, s)
			}
		}
	}
}
