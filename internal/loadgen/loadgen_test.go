package loadgen

import (
	"strings"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/internal/scenario"
)

func managerConfig(t *testing.T, mcfg lockmgr.Config, cfg Config) (Config, *lockmgr.Manager) {
	t.Helper()
	mgr, err := lockmgr.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NewLocker = func(int) (Locker, error) { return NewManagerLocker(mgr), nil }
	return cfg, mgr
}

func TestRunCycles(t *testing.T) {
	for _, dist := range []string{
		scenario.WorkloadUniform, scenario.WorkloadBursty, scenario.WorkloadSkewed,
	} {
		t.Run(dist, func(t *testing.T) {
			cfg, mgr := managerConfig(t,
				lockmgr.Config{Shards: 2, HandlesPerLock: 2},
				Config{Clients: 4, Keys: 4, Cycles: 120, Dist: dist, Seed: 7})
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != 120 {
				t.Errorf("cycles = %d, want 120", res.Cycles)
			}
			if res.Violations != 0 {
				t.Errorf("violations = %d", res.Violations)
			}
			if mgr.Violations() != 0 {
				t.Errorf("manager violations = %d", mgr.Violations())
			}
			if res.Throughput <= 0 {
				t.Errorf("throughput = %v", res.Throughput)
			}
			if res.LatencyP50 > res.LatencyP99 || res.LatencyP99 > res.LatencyMax {
				t.Errorf("latency percentiles out of order: %+v", res)
			}
			if err := mgr.Close(); err != nil {
				t.Errorf("manager close: %v", err)
			}
		})
	}
}

func TestRunDuration(t *testing.T) {
	cfg, _ := managerConfig(t,
		lockmgr.Config{HandlesPerLock: 2},
		Config{Clients: 2, Keys: 2, Duration: 50 * time.Millisecond})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("no cycles completed in a 50ms run")
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestResultTable(t *testing.T) {
	res := &Result{Backend: "inproc", Clients: 2, Keys: 2, Dist: "uniform", Cycles: 10}
	tbl := res.Table()
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "owner check") {
		t.Error("table missing the owner-check note")
	}
}

func TestConfigErrors(t *testing.T) {
	lockerless := func(c Config) Config { return c }
	withLocker := func(c Config) Config {
		c.NewLocker = func(int) (Locker, error) { return NewManagerLocker(nil), nil }
		return c
	}
	cases := []Config{
		lockerless(Config{Cycles: 1}), // missing NewLocker
		withLocker(Config{}),          // neither Cycles nor Duration
		withLocker(Config{Cycles: 1, Clients: -1}),
		withLocker(Config{Cycles: 1, Keys: -1}),
		withLocker(Config{Cycles: -1}),
		withLocker(Config{Cycles: 1, Dist: "pareto"}),
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(case %d) succeeded", i)
		}
	}
}

func TestManagerLockerSessionErrors(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	lk := NewManagerLocker(mgr)
	if err := lk.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := lk.Acquire("k"); err == nil {
		t.Error("re-acquire in one session succeeded")
	}
	if held, _ := lk.Holds("k"); !held {
		t.Error("Holds = false for a held name")
	}
	if err := lk.Release("nope"); err == nil {
		t.Error("release of unheld name succeeded")
	}
	// Close releases the leftover grant, so the manager can shut down.
	if err := lk.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
}
