package loadgen

import (
	"strings"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/internal/workload"
)

func managerConfig(t *testing.T, mcfg lockmgr.Config, cfg Config) (Config, *lockmgr.Manager) {
	t.Helper()
	mgr, err := lockmgr.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NewLocker = func(int) (Locker, error) { return NewManagerLocker(mgr), nil }
	return cfg, mgr
}

func TestRunCyclesLegacyDistAliases(t *testing.T) {
	for _, dist := range []string{"uniform", "bursty", "skewed"} {
		t.Run(dist, func(t *testing.T) {
			cfg, mgr := managerConfig(t,
				lockmgr.Config{Shards: 2, HandlesPerLock: 2},
				Config{Clients: 4, Keys: 4, Cycles: 120, Dist: dist, Seed: 7})
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != 120 {
				t.Errorf("cycles = %d, want 120", res.Cycles)
			}
			if res.Violations != 0 {
				t.Errorf("violations = %d", res.Violations)
			}
			if mgr.Violations() != 0 {
				t.Errorf("manager violations = %d", mgr.Violations())
			}
			if res.Throughput <= 0 {
				t.Errorf("throughput = %v", res.Throughput)
			}
			if res.LatencyP50 > res.LatencyP99 || res.LatencyP99 > res.LatencyMax {
				t.Errorf("latency percentiles out of order: %+v", res)
			}
			if res.Arrival != workload.ArrivalClosed {
				t.Errorf("legacy dist %q resolved to arrival %q", dist, res.Arrival)
			}
			if err := mgr.Close(); err != nil {
				t.Errorf("manager close: %v", err)
			}
		})
	}
}

// TestLegacyDistMapping pins what the deprecated -dist vocabulary means
// in the unified model.
func TestLegacyDistMapping(t *testing.T) {
	run := func(dist string) *Result {
		cfg, mgr := managerConfig(t,
			lockmgr.Config{Shards: 2, HandlesPerLock: 2},
			Config{Clients: 2, Keys: 4, Cycles: 20, Dist: dist})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		return res
	}
	if res := run("skewed"); res.KeyDist != workload.KeyHotset || res.Profile != "uniform" {
		t.Errorf("skewed mapped to profile=%s keys=%s", res.Profile, res.KeyDist)
	}
	if res := run("bursty"); res.Profile != "bursty" || res.KeyDist != workload.KeyUniform {
		t.Errorf("bursty mapped to profile=%s keys=%s", res.Profile, res.KeyDist)
	}
}

func TestRunWorkloadSpec(t *testing.T) {
	// A full spec: zipf keys, a mixed op set, closed loop.
	spec := workload.Spec{
		Seed: 9,
		Keys: workload.KeySpec{Dist: workload.KeyZipf, ZipfS: 1.2},
		Ops:  workload.OpMix{Lock: 0.6, Try: 0.2, Timed: 0.2, TimeoutMS: 50},
	}
	cfg, mgr := managerConfig(t,
		lockmgr.Config{Shards: 2, HandlesPerLock: 2},
		Config{Clients: 4, Keys: 8, Cycles: 200, Workload: &spec})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if res.Violations != 0 || mgr.Violations() != 0 {
		t.Errorf("violations = %d/%d", res.Violations, mgr.Violations())
	}
	if res.KeyDist != workload.KeyZipf {
		t.Errorf("key dist = %q", res.KeyDist)
	}
	// Attempts are conserved: every allocated attempt completed, aborted,
	// or missed.
	if got := res.Cycles + res.Aborts + res.TryMisses; got != 200 {
		t.Errorf("cycles+aborts+misses = %d, want 200", got)
	}
}

func TestRunDuration(t *testing.T) {
	cfg, _ := managerConfig(t,
		lockmgr.Config{HandlesPerLock: 2},
		Config{Clients: 2, Keys: 2, Duration: 50 * time.Millisecond})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("no cycles completed in a 50ms run")
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestResultTable(t *testing.T) {
	res := &Result{Backend: "inproc", Clients: 2, Keys: 2,
		Profile: "uniform", KeyDist: "uniform", Arrival: "closed", Cycles: 10}
	tbl := res.Table()
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "owner check") {
		t.Error("table missing the owner-check note")
	}
}

func TestConfigErrors(t *testing.T) {
	lockerless := func(c Config) Config { return c }
	withLocker := func(c Config) Config {
		c.NewLocker = func(int) (Locker, error) { return NewManagerLocker(nil), nil }
		return c
	}
	cases := []Config{
		lockerless(Config{Cycles: 1}), // missing NewLocker
		withLocker(Config{}),          // neither Cycles nor Duration
		withLocker(Config{Cycles: 1, Clients: -1}),
		withLocker(Config{Cycles: 1, Keys: -1}),
		withLocker(Config{Cycles: -1}),
		withLocker(Config{Cycles: 1, Dist: "pareto"}),
		// Unified spec and deprecated aliases cannot be mixed.
		withLocker(Config{Cycles: 1, Dist: "uniform", Workload: &workload.Spec{}}),
		withLocker(Config{Cycles: 1, OpTimeout: time.Second, Workload: &workload.Spec{}}),
		// An invalid spec fails loudly.
		withLocker(Config{Cycles: 1, Workload: &workload.Spec{Profile: "pareto"}}),
		withLocker(Config{Cycles: 1, Workload: &workload.Spec{Keys: workload.KeySpec{Dist: "pareto"}}}),
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(case %d) succeeded", i)
		}
	}
}

// TestOpMixNeedsCapableBackend: a spec with try ops over a backend
// without TryAcquire must fail loudly.
func TestOpMixNeedsCapableBackend(t *testing.T) {
	_, err := Run(Config{
		Clients: 1, Keys: 1, Cycles: 1,
		Workload:  &workload.Spec{Ops: workload.OpMix{Try: 1}},
		NewLocker: func(int) (Locker, error) { return plainLocker{}, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "TryAcquire") {
		t.Fatalf("try mix over a try-less backend: err = %v", err)
	}
}

func TestManagerLockerSessionErrors(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	lk := NewManagerLocker(mgr)
	if err := lk.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := lk.Acquire("k"); err == nil {
		t.Error("re-acquire in one session succeeded")
	}
	if held, _ := lk.Holds("k"); !held {
		t.Error("Holds = false for a held name")
	}
	if _, err := lk.TryAcquire("k"); err == nil {
		t.Error("try re-acquire in one session succeeded")
	}
	if err := lk.Release("nope"); err == nil {
		t.Error("release of unheld name succeeded")
	}
	// A try probe on a busy lock misses without error.
	other := NewManagerLocker(mgr)
	if ok, err := other.TryAcquire("k"); err != nil || ok {
		t.Errorf("TryAcquire on a held lock = (%v, %v), want (false, nil)", ok, err)
	}
	// Close releases the leftover grant, so the manager can shut down.
	if err := lk.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
}
