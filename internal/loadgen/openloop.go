package loadgen

// Open-loop load generation: a pacer emits arrivals on the spec's
// schedule (Poisson or bursty) at the offered rate, independent of how
// fast the backend serves them; clients pull arrivals from a bounded
// backlog. In-flight work is bounded by the client count and the
// backlog bound, so overload shows up as queue wait, SLA aborts, and
// shed arrivals instead of unbounded goroutine growth — exactly the
// offered-load-versus-achieved-throughput picture abortable-mutex
// evaluations report.

import (
	"math"
	"time"

	"anonmutex/internal/workload"
)

// pacerStream is the arrival schedule's workload stream id; it cannot
// collide with a client index.
const pacerStream = math.MaxUint64

// pace emits arrival stamps on the spec's schedule until the run's
// bound (Cycles or Duration) or an error stops it, then closes the
// channel. A full backlog sheds the arrival: the pacer never blocks,
// which is what makes the loop open.
func (st *runState) pace(arrivals chan<- time.Time) {
	defer close(arrivals)
	src := workload.NewSource(st.spec, pacerStream)
	emitted := int64(0)
	next := time.Now()
	for !st.stop.Load() {
		if st.cfg.Cycles > 0 && emitted >= int64(st.cfg.Cycles) {
			return
		}
		if st.cfg.Duration > 0 && !next.Before(st.deadline) {
			return
		}
		// Sleep until the scheduled arrival; if the schedule is already
		// in the past (rates beyond timer resolution), emit immediately
		// — the schedule, not the emitter, defines the offered load.
		// Sleep in short slices so a failing run is not held hostage to
		// a long inter-arrival gap.
		for wait := time.Until(next); wait > 0; wait = time.Until(next) {
			if st.stop.Load() {
				return
			}
			if wait > 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			time.Sleep(wait)
		}
		select {
		case arrivals <- next:
		default:
			st.shed.Add(1)
		}
		emitted++
		st.arrivals.Add(1)
		next = next.Add(src.NextArrivalDelay())
	}
}

// openLoop is one client's open-loop service loop: pull an arrival,
// draw its key/op/session from this client's stream, and serve it. The
// latency clock starts at the arrival stamp, so queue wait counts.
// Timed ops budget their deadline from the arrival too: an op whose SLA
// expired while queued aborts without touching the backend.
func (st *runState) openLoop(me int, arrivals <-chan time.Time) {
	c, err := st.newClient(me)
	if err != nil {
		st.fail(err)
		return
	}
	defer c.lk.Close()
	timeout := st.spec.Ops.Timeout()
	for stamp := range arrivals {
		// A stopped run and a run past its wall-clock bound both stop
		// serving; draining the backlog as shed keeps the arrival
		// accounting conserved and Duration a real bound even for
		// blocking op mixes.
		if st.stop.Load() || (st.cfg.Duration > 0 && !time.Now().Before(st.deadline)) {
			st.shed.Add(1)
			continue
		}
		k := c.src.PickKey(st.cfg.Keys)
		kind := c.src.NextOp()
		sess := c.src.NextSession()
		opTimeout := timeout
		if kind == workload.OpTimed {
			opTimeout = timeout - time.Since(stamp)
			if opTimeout <= 0 {
				st.aborts.Add(1)
				continue
			}
		}
		switch c.runCycle(k, kind, sess, stamp, opTimeout) {
		case cycleFailed:
			return
		case cycleAbort:
			st.aborts.Add(1)
		case cycleMiss:
			st.tryMisses.Add(1)
		case cycleCrash:
			st.crashes.Add(1)
		case cycleLost:
			st.lost.Add(1)
		}
		// No remainder think time: in an open loop the arrival process,
		// not the client, owns the pacing.
	}
}
