package loadgen

// LeaseLocker is the in-process lease-aware backend: one client's
// session on a lease.Manager wrapping a lockmgr.Manager. Every grant
// carries a fencing token, an optional background ticker heartbeats
// the session's grants, and Crash implements the crash op by acquiring
// a key and orphaning the grant — never heartbeated, never released —
// so only the manager's TTL expiry frees it. It is the loopback
// harness the lease sweeps and chaos scenarios drive when they want
// the lease machinery without a network in the way.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anonmutex/internal/lease"
)

// LeaseLocker is one client session over a lease.Manager. Create with
// NewLeaseLocker; one per client goroutine (the mutex exists only for
// the heartbeat ticker, which shares the grant table).
type LeaseLocker struct {
	lm *lease.Manager

	mu     sync.Mutex
	grants map[string]uint64 // name -> fencing token
	hbStop chan struct{}
	hbDone chan struct{}
}

// NewLeaseLocker opens a session on lm. A positive heartbeat starts a
// background ticker renewing every grant the session holds at that
// interval — set it under half the manager's TTL; zero means the
// session never heartbeats (its grants expire one TTL after acquire,
// which is what a deliberately negligent holder looks like).
func NewLeaseLocker(lm *lease.Manager, heartbeat time.Duration) *LeaseLocker {
	l := &LeaseLocker{lm: lm, grants: make(map[string]uint64)}
	if heartbeat > 0 {
		l.hbStop = make(chan struct{})
		l.hbDone = make(chan struct{})
		go l.beat(heartbeat)
	}
	return l
}

// beat renews every held grant each interval, dropping grants already
// fenced (their leases expired; the session no longer holds them).
func (l *LeaseLocker) beat(every time.Duration) {
	defer close(l.hbDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.hbStop:
			return
		case <-t.C:
			l.mu.Lock()
			for name, tok := range l.grants {
				if _, err := l.lm.Heartbeat(name, tok); err != nil {
					delete(l.grants, name)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Acquire blocks until this session holds name.
func (l *LeaseLocker) Acquire(name string) error {
	l.mu.Lock()
	_, held := l.grants[name]
	l.mu.Unlock()
	if held {
		return fmt.Errorf("loadgen: session already holds %q", name)
	}
	g, err := l.lm.AcquireCtx(context.Background(), name)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.grants[name] = g.Token
	l.mu.Unlock()
	return nil
}

// AcquireFor implements DeadlineLocker: an attempt that cannot complete
// within d withdraws cleanly and reports (false, nil).
func (l *LeaseLocker) AcquireFor(name string, d time.Duration) (bool, error) {
	l.mu.Lock()
	_, held := l.grants[name]
	l.mu.Unlock()
	if held {
		return false, fmt.Errorf("loadgen: session already holds %q", name)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	g, err := l.lm.AcquireCtx(ctx, name)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return false, nil
		}
		return false, err
	}
	l.mu.Lock()
	l.grants[name] = g.Token
	l.mu.Unlock()
	return true, nil
}

// TryAcquire implements TryLocker: a lost race reports (false, nil).
func (l *LeaseLocker) TryAcquire(name string) (bool, error) {
	l.mu.Lock()
	_, held := l.grants[name]
	l.mu.Unlock()
	if held {
		return false, fmt.Errorf("loadgen: session already holds %q", name)
	}
	g, ok, err := l.lm.TryAcquire(name)
	if err != nil || !ok {
		return false, err
	}
	l.mu.Lock()
	l.grants[name] = g.Token
	l.mu.Unlock()
	return true, nil
}

// Release gives a held name back through the token arbitration. A
// fenced release means the lease expired while the client thought it
// was inside its critical section — surfaced as an error so the run
// flags the misconfiguration (heartbeat interval too close to TTL).
func (l *LeaseLocker) Release(name string) error {
	l.mu.Lock()
	tok, held := l.grants[name]
	delete(l.grants, name)
	l.mu.Unlock()
	if !held {
		return fmt.Errorf("loadgen: session does not hold %q", name)
	}
	return l.lm.Release(name, tok)
}

// Holds implements HoldsChecker against the lease manager's own view:
// held means the session's token is still the key's live token.
func (l *LeaseLocker) Holds(name string) (bool, error) {
	l.mu.Lock()
	tok, held := l.grants[name]
	l.mu.Unlock()
	if !held {
		return false, nil
	}
	_, live := l.lm.Remaining(name, tok)
	return live, nil
}

// Crash implements Crasher: acquire name and orphan the grant. The
// token is deliberately forgotten — nothing will ever heartbeat or
// release it, so the key stays stuck until the manager's TTL expiry
// revokes the orphan. Patience is bounded at two TTLs plus slack: a
// crash-heavy hot key drains at one expiry per TTL, and a crasher
// stuck behind that queue reports false (died waiting) rather than
// stalling its client.
func (l *LeaseLocker) Crash(name string) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*l.lm.TTL()+250*time.Millisecond)
	defer cancel()
	_, err := l.lm.AcquireCtx(ctx, name)
	if errors.Is(err, context.DeadlineExceeded) {
		return false, nil
	}
	return err == nil, err
}

// Close stops the heartbeat ticker and releases anything the session
// still holds (ignoring grants that expired first — the manager
// already reclaimed them).
func (l *LeaseLocker) Close() error {
	if l.hbStop != nil {
		close(l.hbStop)
		<-l.hbDone
		l.hbStop = nil
	}
	l.mu.Lock()
	grants := l.grants
	l.grants = make(map[string]uint64)
	l.mu.Unlock()
	for name, tok := range grants {
		if err := l.lm.Release(name, tok); err != nil && !errors.Is(err, lease.ErrFenced) {
			return err
		}
	}
	return nil
}
