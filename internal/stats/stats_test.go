package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("zero-value summary not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev()-2.1380899) > 1e-6 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		sum := 0.0
		for _, r := range raw {
			x := float64(r)
			s.Add(x)
			sum += x
		}
		naive := sum / float64(len(raw))
		return math.Abs(s.Mean()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {90, 90}, {99, 99}, {100, 100},
	}
	for _, tc := range cases {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.N() != 0 {
		t.Fatal("empty histogram returns nonzero")
	}
}

func TestHistogramUnsortedInput(t *testing.T) {
	var h Histogram
	for _, x := range []float64{9, 1, 5, 3, 7} {
		h.Add(x)
	}
	if got := h.Percentile(50); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	h.Add(0) // interleave adds and queries
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("min = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"name", "value"}}
	tb.AddRow("alpha", 1)
	tb.AddRow("β", 2.5)
	tb.Notes = append(tb.Notes, "a note")
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "β", "2.50", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows + note.
	if len(lines) != 6 {
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("long-cell", "x")
	tb.AddRow("s", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// The second column must start at the same offset in both data rows.
	r1, r2 := lines[2], lines[3]
	if strings.Index(r1, "x") != strings.Index(r2, "y") {
		t.Errorf("columns misaligned:\n%s", tb.String())
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := Table{
		Title:  "t",
		Header: []string{"a", "b"},
		Notes:  []string{"note"},
	}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", "y")
	data, err := json.Marshal(&tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != tb.Title || len(back.Rows) != 2 || back.Rows[0][1] != "2.50" ||
		len(back.Notes) != 1 || len(back.Header) != 2 {
		t.Errorf("round trip changed the table: %+v", back)
	}
}

func TestTableJSONNeverNull(t *testing.T) {
	data, err := json.Marshal(&Table{})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, "null") {
		t.Errorf("empty table encodes null collections: %s", s)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"title", "header", "rows", "notes"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("key %q missing from %s", key, s)
		}
	}
}

func TestTableJSONDoesNotMutate(t *testing.T) {
	tb := Table{Rows: [][]string{nil, {"x"}}}
	if _, err := json.Marshal(&tb); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0] != nil {
		t.Error("MarshalJSON replaced a nil row in the receiver")
	}
}
