// Package stats provides the small statistics toolkit used by the
// benchmark harness: streaming summaries (count/mean/stddev/min/max),
// fixed-bucket histograms with percentile estimation, and the Table type
// the experiments print — renderable as aligned text or as canonical JSON
// for machine-readable result trajectories.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of observations. The zero value is ready to
// use.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// StdDev returns the sample standard deviation (0 with < 2 samples).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// String renders the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f max=%.2f", s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Histogram collects exact samples for percentile queries. Appropriate for
// the harness's modest sample counts; it trades memory for exactness.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.samples = append(h.samples, x)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method. It returns 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range h.samples {
		sum += x
	}
	return sum / float64(len(h.samples))
}

// Table is a simple aligned text table used by the experiment harness to
// print paper-style artifacts.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if w := displayWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(cell)
			if i < cols-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)+2))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// MarshalJSON encodes the table canonically: title, header, rows, and
// notes, with empty collections encoded as [] (never null) so consumers
// can index unconditionally.
func (t *Table) MarshalJSON() ([]byte, error) {
	enc := struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}{
		Title:  t.Title,
		Header: t.Header,
		Rows:   t.Rows,
		Notes:  t.Notes,
	}
	if enc.Header == nil {
		enc.Header = []string{}
	}
	if enc.Rows == nil {
		enc.Rows = [][]string{}
	}
	for i, r := range enc.Rows {
		if r == nil {
			// Patch a copy: marshaling must not mutate the table.
			rows := make([][]string, len(enc.Rows))
			copy(rows, enc.Rows)
			enc.Rows = rows
			for j := i; j < len(enc.Rows); j++ {
				if enc.Rows[j] == nil {
					enc.Rows[j] = []string{}
				}
			}
			break
		}
	}
	if enc.Notes == nil {
		enc.Notes = []string{}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes a table produced by MarshalJSON, so stored
// BENCH_*.json trajectories can be reloaded and diffed.
func (t *Table) UnmarshalJSON(data []byte) error {
	var dec struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	t.Title, t.Header, t.Rows, t.Notes = dec.Title, dec.Header, dec.Rows, dec.Notes
	return nil
}

// displayWidth approximates the printed width of s (rune count; the
// harness emits no wide glyphs beyond ⊥ which is single-width).
func displayWidth(s string) int {
	w := 0
	for range s {
		w++
	}
	return w
}
