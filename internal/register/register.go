// Package register implements the single shared-memory cell used by both
// communication models of the paper.
//
// The paper's registers hold either ⊥ or a process identity. For the RW
// model, the double-scan snapshot construction additionally requires every
// write to be "unambiguously identified": process pi writing value v
// actually stores the triple (v, idi, sni) where sni is a per-process
// sequence number (§II-B, footnote 3 notes the triple can be encoded as a
// single value — which is exactly what we do). For the RMW model the stamp
// is unused but harmless.
//
// A cell is packed into one uint64 so that a register is a single hardware
// word and every operation is one atomic instruction (plus a retry loop for
// value-compared CAS):
//
//	bits 63..48: value handle   (the identity stored, 0 = ⊥)
//	bits 47..32: writer handle  (who performed the write, 0 = initial)
//	bits 31..0:  sequence       (writer's per-process write counter)
//
// The 32-bit sequence could in principle wrap, re-creating an ABA triple;
// that would require a single process to perform exactly 2^32 writes to the
// same register within one double-scan read pair (a sub-microsecond
// window), which is physically unrealizable. The simulated memory
// (internal/vmem) uses unpacked cells and has no such bound.
package register

import (
	"sync/atomic"

	"anonmutex/internal/id"
)

// Stamped is the unpacked content of a register: the algorithmic value
// (an identity or ⊥) plus the write stamp that makes the double-scan
// snapshot sound. The zero value is the initial register content: ⊥ with
// the null stamp.
type Stamped struct {
	Val    id.ID  // the register's algorithmic value (id.None = ⊥)
	Writer id.ID  // identity of the writing process (id.None initially)
	Seq    uint32 // writer's sequence number for this write
}

// Packed is the single-word encoding of a Stamped cell.
type Packed uint64

// Pack encodes s into one word.
func Pack(s Stamped) Packed {
	return Packed(uint64(id.Handle(s.Val))<<48 |
		uint64(id.Handle(s.Writer))<<32 |
		uint64(s.Seq))
}

// Unpack decodes p.
func Unpack(p Packed) Stamped {
	return Stamped{
		Val:    id.FromHandle(uint16(p >> 48)),
		Writer: id.FromHandle(uint16(p >> 32)),
		Seq:    uint32(p),
	}
}

// ValueHandle extracts just the algorithmic value's handle without a full
// unpack; used on hot read paths.
func (p Packed) ValueHandle() uint16 { return uint16(p >> 48) }

// Atomic is one atomic shared register. The zero value is a register
// holding ⊥ with the null stamp — the paper's required common initial
// value (§II-D). Atomic must not be copied after first use.
type Atomic struct {
	cell atomic.Uint64
}

// Load atomically reads the register.
func (a *Atomic) Load() Stamped {
	return Unpack(Packed(a.cell.Load()))
}

// LoadPacked atomically reads the register without unpacking.
func (a *Atomic) LoadPacked() Packed {
	return Packed(a.cell.Load())
}

// Store atomically writes the register.
func (a *Atomic) Store(s Stamped) {
	a.cell.Store(uint64(Pack(s)))
}

// CompareAndSwapValue implements the paper's R.compare&swap(x, old, new):
// atomically, if the register's algorithmic value equals old, replace the
// whole cell with (new, writer, seq) and report true; otherwise report
// false. Only the algorithmic value participates in the comparison — the
// stamp is metadata.
//
// The operation is lock-free: a retry is needed only when another process
// modified the cell between our load and CAS, and such interference
// linearizes the failure or eventual success correctly (the loaded cell is
// the linearization witness for a false return).
func (a *Atomic) CompareAndSwapValue(old, newVal, writer id.ID, seq uint32) bool {
	want := id.Handle(old)
	replacement := uint64(Pack(Stamped{Val: newVal, Writer: writer, Seq: seq}))
	for {
		cur := a.cell.Load()
		if Packed(cur).ValueHandle() != want {
			return false
		}
		if a.cell.CompareAndSwap(cur, replacement) {
			return true
		}
	}
}
