package register

import (
	"sync"
	"testing"
	"testing/quick"

	"anonmutex/internal/id"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(valH, wrH uint16, seq uint32) bool {
		s := Stamped{Val: id.FromHandle(valH), Writer: id.FromHandle(wrH), Seq: seq}
		return Unpack(Pack(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPackInjective(t *testing.T) {
	seen := make(map[Packed]Stamped)
	g := id.NewGenerator()
	ids := []id.ID{id.None}
	for i := 0; i < 8; i++ {
		ids = append(ids, g.MustNew())
	}
	for _, v := range ids {
		for _, w := range ids {
			for _, seq := range []uint32{0, 1, 2, 1 << 31, ^uint32(0)} {
				s := Stamped{Val: v, Writer: w, Seq: seq}
				p := Pack(s)
				if prev, dup := seen[p]; dup && prev != s {
					t.Fatalf("Pack collision: %+v and %+v both pack to %x", prev, s, p)
				}
				seen[p] = s
			}
		}
	}
}

func TestValueHandleMatchesUnpack(t *testing.T) {
	f := func(valH, wrH uint16, seq uint32) bool {
		p := Pack(Stamped{Val: id.FromHandle(valH), Writer: id.FromHandle(wrH), Seq: seq})
		return p.ValueHandle() == valH
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValueIsBottom(t *testing.T) {
	var r Atomic
	s := r.Load()
	if !s.Val.IsNone() || !s.Writer.IsNone() || s.Seq != 0 {
		t.Fatalf("zero register = %+v, want all-zero ⊥ cell", s)
	}
}

func TestStoreLoad(t *testing.T) {
	var r Atomic
	g := id.NewGenerator()
	me := g.MustNew()
	s := Stamped{Val: me, Writer: me, Seq: 7}
	r.Store(s)
	if got := r.Load(); got != s {
		t.Fatalf("Load = %+v, want %+v", got, s)
	}
	// Overwrite with ⊥ keeps the stamp.
	s2 := Stamped{Val: id.None, Writer: me, Seq: 8}
	r.Store(s2)
	if got := r.Load(); got != s2 {
		t.Fatalf("Load = %+v, want %+v", got, s2)
	}
}

func TestCASValueSemantics(t *testing.T) {
	var r Atomic
	g := id.NewGenerator()
	p, q := g.MustNew(), g.MustNew()

	// ⊥ → p succeeds.
	if !r.CompareAndSwapValue(id.None, p, p, 1) {
		t.Fatal("CAS ⊥→p failed on fresh register")
	}
	if got := r.Load().Val; !got.Equal(p) {
		t.Fatalf("register value = %v, want %v", got, p)
	}
	// ⊥ → q fails now.
	if r.CompareAndSwapValue(id.None, q, q, 1) {
		t.Fatal("CAS ⊥→q succeeded on register holding p")
	}
	// q → anything fails.
	if r.CompareAndSwapValue(q, id.None, q, 2) {
		t.Fatal("CAS q→⊥ succeeded on register holding p")
	}
	// p → ⊥ succeeds (unlock path of Algorithm 2, line 13).
	if !r.CompareAndSwapValue(p, id.None, p, 2) {
		t.Fatal("CAS p→⊥ failed on register holding p")
	}
	if got := r.Load().Val; !got.IsNone() {
		t.Fatalf("register value = %v, want ⊥", got)
	}
}

func TestCASComparesValueNotStamp(t *testing.T) {
	var r Atomic
	g := id.NewGenerator()
	p, q := g.MustNew(), g.MustNew()
	// p writes ⊥ with a nonzero stamp; q's CAS on ⊥ must still succeed,
	// because only the algorithmic value participates in the comparison.
	r.Store(Stamped{Val: id.None, Writer: p, Seq: 99})
	if !r.CompareAndSwapValue(id.None, q, q, 1) {
		t.Fatal("CAS ⊥→q failed although algorithmic value is ⊥")
	}
}

func TestCASAtomicityUnderContention(t *testing.T) {
	// Exactly one of k concurrent CAS(⊥→idi) attempts on a fresh register
	// may succeed — the heart of Algorithm 2's mutual exclusion.
	const rounds = 300
	const workers = 8
	g := id.NewGenerator()
	ids := make([]id.ID, workers)
	for i := range ids {
		ids[i] = g.MustNew()
	}
	for round := 0; round < rounds; round++ {
		var r Atomic
		var wins atomic32
		var start, done sync.WaitGroup
		start.Add(1)
		for w := 0; w < workers; w++ {
			done.Add(1)
			go func(me id.ID) {
				defer done.Done()
				start.Wait()
				if r.CompareAndSwapValue(id.None, me, me, 1) {
					wins.inc()
				}
			}(ids[w])
		}
		start.Done()
		done.Wait()
		if wins.load() != 1 {
			t.Fatalf("round %d: %d CAS winners, want exactly 1", round, wins.load())
		}
		winner := r.Load().Val
		if winner.IsNone() {
			t.Fatalf("round %d: register still ⊥ after a successful CAS", round)
		}
	}
}

func TestConcurrentStoreLoadNoTearing(t *testing.T) {
	// Writers store self-consistent cells (Val == Writer); readers must
	// never observe a torn cell where Val != Writer.
	var r Atomic
	g := id.NewGenerator()
	const writers = 4
	ids := make([]id.ID, writers)
	for i := range ids {
		ids[i] = g.MustNew()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(me id.ID) {
			defer wg.Done()
			seq := uint32(0)
			for {
				select {
				case <-stop:
					return
				default:
					seq++
					r.Store(Stamped{Val: me, Writer: me, Seq: seq})
				}
			}
		}(ids[w])
	}
	for i := 0; i < 200_000; i++ {
		s := r.Load()
		if s.Val.IsNone() {
			continue // initial value
		}
		if !s.Val.Equal(s.Writer) {
			t.Errorf("torn read: Val=%v Writer=%v", s.Val, s.Writer)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// atomic32 is a tiny test helper counter.
type atomic32 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic32) inc() {
	a.mu.Lock()
	a.v++
	a.mu.Unlock()
}

func (a *atomic32) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func BenchmarkLoad(b *testing.B) {
	var r Atomic
	for i := 0; i < b.N; i++ {
		_ = r.Load()
	}
}

func BenchmarkStore(b *testing.B) {
	var r Atomic
	g := id.NewGenerator()
	me := g.MustNew()
	for i := 0; i < b.N; i++ {
		r.Store(Stamped{Val: me, Writer: me, Seq: uint32(i)})
	}
}

func BenchmarkCASUncontended(b *testing.B) {
	var r Atomic
	g := id.NewGenerator()
	me := g.MustNew()
	for i := 0; i < b.N; i++ {
		r.CompareAndSwapValue(id.None, me, me, uint32(i))
		r.CompareAndSwapValue(me, id.None, me, uint32(i))
	}
}
