package perm

import (
	"reflect"
	"testing"
	"testing/quick"

	"anonmutex/internal/xrand"
)

func TestIdentity(t *testing.T) {
	for _, m := range []int{0, 1, 2, 5, 17} {
		p := Identity(m)
		if !p.Valid() {
			t.Fatalf("Identity(%d) invalid", m)
		}
		for x := 0; x < m; x++ {
			if p.Apply(x) != x {
				t.Fatalf("Identity(%d)[%d] = %d", m, x, p.Apply(x))
			}
		}
	}
}

func TestRotation(t *testing.T) {
	p := Rotation(5, 2)
	want := Perm{2, 3, 4, 0, 1}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("Rotation(5,2) = %v, want %v", p, want)
	}
	if !reflect.DeepEqual(Rotation(5, 0), Identity(5)) {
		t.Error("Rotation(5,0) != Identity")
	}
	if !reflect.DeepEqual(Rotation(5, 7), Rotation(5, 2)) {
		t.Error("Rotation not reduced mod m")
	}
	if !reflect.DeepEqual(Rotation(5, -3), Rotation(5, 2)) {
		t.Error("negative rotation not normalized")
	}
	if len(Rotation(0, 3)) != 0 {
		t.Error("Rotation(0, k) should be empty")
	}
}

func TestRotationValidAndCyclic(t *testing.T) {
	for m := 1; m <= 12; m++ {
		for k := 0; k < m; k++ {
			p := Rotation(m, k)
			if !p.Valid() {
				t.Fatalf("Rotation(%d,%d) invalid", m, k)
			}
			// Composing m rotations by k returns to identity iff m | m*k (always).
			acc := Identity(m)
			for i := 0; i < m; i++ {
				acc = p.Compose(acc)
			}
			if !reflect.DeepEqual(acc, Identity(m)) {
				t.Fatalf("Rotation(%d,%d)^%d != identity", m, k, m)
			}
		}
	}
}

func TestRandomIsValid(t *testing.T) {
	r := xrand.New(42)
	for i := 0; i < 100; i++ {
		p := Random(9, r)
		if !p.Valid() {
			t.Fatalf("Random produced invalid permutation %v", p)
		}
	}
}

func TestValidRejects(t *testing.T) {
	bad := []Perm{
		{0, 0},
		{1, 2},
		{0, 2},
		{-1, 0},
		{3, 1, 0},
	}
	for _, p := range bad {
		if p.Valid() {
			t.Errorf("Valid(%v) = true, want false", p)
		}
	}
	if !(Perm{}).Valid() {
		t.Error("empty permutation should be valid")
	}
}

func TestInverse(t *testing.T) {
	r := xrand.New(7)
	for i := 0; i < 50; i++ {
		p := Random(8, r)
		inv := p.Inverse()
		if !reflect.DeepEqual(p.Compose(inv), Identity(8)) {
			t.Fatalf("p∘p⁻¹ != id for %v", p)
		}
		if !reflect.DeepEqual(inv.Compose(p), Identity(8)) {
			t.Fatalf("p⁻¹∘p != id for %v", p)
		}
	}
}

func TestComposeAssociative(t *testing.T) {
	r := xrand.New(3)
	for i := 0; i < 30; i++ {
		p, q, s := Random(6, r), Random(6, r), Random(6, r)
		left := p.Compose(q).Compose(s)
		right := p.Compose(q.Compose(s))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("composition not associative: %v vs %v", left, right)
		}
	}
}

func TestComposePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose with mismatched sizes did not panic")
		}
	}()
	Identity(3).Compose(Identity(4))
}

func TestFromOneBasedPaperTableI(t *testing.T) {
	// Table I prints, under each process, the local name that process uses
	// for each external (physical) register — i.e. the physical→local
	// direction. The fi of §II-B (local→physical, our Apply direction) is
	// the inverse of the printed row.
	pPrinted, err := FromOneBased([]int{2, 3, 1}) // p's column in Table I
	if err != nil {
		t.Fatal(err)
	}
	qPrinted, err := FromOneBased([]int{3, 1, 2}) // q's column in Table I
	if err != nil {
		t.Fatal(err)
	}
	p, q := pPrinted.Inverse(), qPrinted.Inverse()
	// "the register known as R[2] by p and the register known as R[3] by q
	// are the very same register, which actually is R[1]" (all 1-based).
	if got := p.Apply(2 - 1); got != 1-1 {
		t.Errorf("p's R[2] is physical R[%d], want R[1]", got+1)
	}
	if got := q.Apply(3 - 1); got != 1-1 {
		t.Errorf("q's R[3] is physical R[%d], want R[1]", got+1)
	}
	// Every physical register must be named by both processes (bijection),
	// and the printed rows round-trip through OneBased.
	if !reflect.DeepEqual(pPrinted.OneBased(), []int{2, 3, 1}) {
		t.Errorf("OneBased round trip = %v", pPrinted.OneBased())
	}
	// Second text example: "the names B=R[2]... may (or may not) correspond"
	// — check the full correspondence table row by row.
	for phys := 0; phys < 3; phys++ {
		pName := p.Inverse().Apply(phys)
		qName := q.Inverse().Apply(phys)
		wantP := []int{2, 3, 1}[phys] - 1
		wantQ := []int{3, 1, 2}[phys] - 1
		if pName != wantP || qName != wantQ {
			t.Errorf("row %d: got p=R[%d] q=R[%d], want p=R[%d] q=R[%d]",
				phys+1, pName+1, qName+1, wantP+1, wantQ+1)
		}
	}
}

func TestFromOneBasedRejects(t *testing.T) {
	bad := [][]int{
		{0, 1, 2}, // 0 is not 1-based
		{1, 1, 2}, // duplicate
		{1, 2, 4}, // out of range
		{2},       // out of range for size 1
	}
	for _, v := range bad {
		if _, err := FromOneBased(v); err == nil {
			t.Errorf("FromOneBased(%v) succeeded, want error", v)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Perm{1, 0, 2}
	c := p.Clone()
	c[0] = 2
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestIdentityAdversary(t *testing.T) {
	var a IdentityAdversary
	for i := 0; i < 4; i++ {
		if !reflect.DeepEqual(a.Assign(i, 5), Identity(5)) {
			t.Fatalf("identity adversary assigned non-identity to process %d", i)
		}
	}
}

func TestRotationAdversaryRing(t *testing.T) {
	// Theorem 5 placement: m = 6, ℓ = 3, step = 2. Process i's initial
	// register (local index 0) must be physical register 2i, and
	// consecutive processes' initial registers are exactly step apart.
	a := RotationAdversary{Step: 2}
	m, l := 6, 3
	for i := 0; i < l; i++ {
		p := a.Assign(i, m)
		if !p.Valid() {
			t.Fatalf("rotation adversary produced invalid perm for %d", i)
		}
		if got, want := p.Apply(0), (i*2)%m; got != want {
			t.Errorf("process %d initial register = %d, want %d", i, got, want)
		}
		// Scan order is the clockwise walk from the initial register.
		for k := 0; k < m; k++ {
			if got, want := p.Apply(k), (i*2+k)%m; got != want {
				t.Errorf("process %d order(%d) = %d, want %d", i, k, got, want)
			}
		}
	}
}

func TestRandomAdversaryDeterministicPerProcess(t *testing.T) {
	a := RandomAdversary{Seed: 99}
	b := RandomAdversary{Seed: 99}
	for i := 0; i < 6; i++ {
		if !reflect.DeepEqual(a.Assign(i, 7), b.Assign(i, 7)) {
			t.Fatalf("same-seed adversaries disagree for process %d", i)
		}
		if !a.Assign(i, 7).Valid() {
			t.Fatalf("invalid random assignment for process %d", i)
		}
	}
	c := RandomAdversary{Seed: 100}
	distinct := false
	for i := 0; i < 6; i++ {
		if !reflect.DeepEqual(a.Assign(i, 7), c.Assign(i, 7)) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("different seeds produced identical assignments for all processes")
	}
}

func TestRandomAdversaryOrderIndependent(t *testing.T) {
	a := RandomAdversary{Seed: 5}
	// Assigning process 3 first then process 0 must equal the reverse order.
	p3 := a.Assign(3, 6)
	p0 := a.Assign(0, 6)
	if !reflect.DeepEqual(a.Assign(3, 6), p3) || !reflect.DeepEqual(a.Assign(0, 6), p0) {
		t.Error("assignments are not order-independent")
	}
}

func TestFixedAdversary(t *testing.T) {
	p, _ := FromOneBased([]int{2, 3, 1})
	q, _ := FromOneBased([]int{3, 1, 2})
	a := FixedAdversary{Perms: []Perm{p, q}}
	if !reflect.DeepEqual(a.Assign(0, 3), p) {
		t.Error("process 0 did not get first fixed perm")
	}
	if !reflect.DeepEqual(a.Assign(1, 3), q) {
		t.Error("process 1 did not get second fixed perm")
	}
	if !reflect.DeepEqual(a.Assign(2, 3), p) {
		t.Error("fixed adversary does not wrap around")
	}
	// Returned permutations must be private copies.
	got := a.Assign(0, 3)
	got[0] = 0
	if reflect.DeepEqual(a.Assign(0, 3), got) {
		t.Error("FixedAdversary leaks internal storage")
	}
}

func TestFixedAdversaryEmptyFallsBack(t *testing.T) {
	a := FixedAdversary{}
	if !reflect.DeepEqual(a.Assign(0, 4), Identity(4)) {
		t.Error("empty fixed adversary should assign identity")
	}
}

func TestQuickRandomPermsAreValid(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw)%20 + 1
		p := Random(m, xrand.New(seed))
		return p.Valid() && p.Inverse().Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickInverseInvolution(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		m := int(mRaw)%15 + 1
		p := Random(m, xrand.New(seed))
		return reflect.DeepEqual(p.Inverse().Inverse(), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
