// Package perm models the memory-anonymity adversary.
//
// In the paper's model (§II-B), each process pi is assigned a permutation
// fi over the register indices {1, …, m} before the execution starts; when
// pi uses the local name R[x] it actually accesses R[fi(x)]. The adversary
// is static — permutations never change during an execution — and unknown
// to the processes.
//
// This package represents permutations 0-based (local index → physical
// index) and provides the adversaries used across the repository:
//
//   - Identity: the non-anonymous special case (used to "de-anonymize"
//     the algorithms for baseline comparisons);
//   - Random: a seeded uniform adversary (the default for real locks);
//   - Rotation: process i gets the rotation by i·step — exactly the
//     Theorem 5 ring adversary when step = m/ℓ.
package perm

import (
	"fmt"

	"anonmutex/internal/xrand"
)

// Perm is a permutation of register indices: Perm[local] = physical, both
// 0-based. A process holding Perm p and using local register name x
// physically accesses register p[x].
type Perm []int

// Identity returns the identity permutation on m elements.
func Identity(m int) Perm {
	p := make(Perm, m)
	for i := range p {
		p[i] = i
	}
	return p
}

// Rotation returns the permutation mapping local index x to physical index
// (x + k) mod m. Rotation(m, 0) is the identity.
func Rotation(m, k int) Perm {
	if m <= 0 {
		return Perm{}
	}
	k %= m
	if k < 0 {
		k += m
	}
	p := make(Perm, m)
	for x := range p {
		p[x] = (x + k) % m
	}
	return p
}

// Random returns a uniformly random permutation on m elements drawn from r.
func Random(m int, r *xrand.Rand) Perm {
	return Perm(r.Perm(m))
}

// FromOneBased converts a paper-style 1-based permutation (such as Table
// I's "2, 3, 1") into a 0-based Perm. It returns an error if the input is
// not a permutation of 1..len(v).
func FromOneBased(v []int) (Perm, error) {
	p := make(Perm, len(v))
	for i, x := range v {
		p[i] = x - 1
	}
	if !p.Valid() {
		return nil, fmt.Errorf("perm: %v is not a permutation of 1..%d", v, len(v))
	}
	return p, nil
}

// OneBased renders p in the paper's 1-based convention.
func (p Perm) OneBased() []int {
	out := make([]int, len(p))
	for i, x := range p {
		out[i] = x + 1
	}
	return out
}

// Valid reports whether p is a bijection on {0, …, len(p)-1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, x := range p {
		if x < 0 || x >= len(p) || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// Apply returns the physical index for local index x.
func (p Perm) Apply(x int) int { return p[x] }

// Inverse returns the inverse permutation: physical index → local index.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for local, phys := range p {
		inv[phys] = local
	}
	return inv
}

// Compose returns the permutation r with r(x) = p(q(x)): first apply q,
// then p. It panics if the lengths differ.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: composing permutations of different sizes %d and %d", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for x := range r {
		r[x] = p[q[x]]
	}
	return r
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	c := make(Perm, len(p))
	copy(c, p)
	return c
}

// Adversary assigns, before an execution starts, a permutation over m
// registers to the process with creation index i (0 ≤ i < n). The index
// identifies processes only from the adversary's external point of view;
// processes themselves never see it.
type Adversary interface {
	// Assign returns the permutation for the i-th process over a memory of
	// m registers. Implementations must return a valid permutation and be
	// deterministic given their construction parameters.
	Assign(i, m int) Perm
}

// IdentityAdversary assigns every process the identity permutation,
// modeling a non-anonymous memory.
type IdentityAdversary struct{}

// Assign implements Adversary.
func (IdentityAdversary) Assign(_, m int) Perm { return Identity(m) }

// RotationAdversary assigns process i the rotation by i·Step. With
// Step = m/ℓ for a divisor ℓ of m, this is exactly the Theorem 5 ring
// placement: consecutive processes' initial registers are m/ℓ apart on the
// ring.
type RotationAdversary struct {
	Step int
}

// Assign implements Adversary.
func (a RotationAdversary) Assign(i, m int) Perm { return Rotation(m, i*a.Step) }

// RandomAdversary assigns independent uniformly random permutations,
// deterministically derived from Seed and the process index.
type RandomAdversary struct {
	Seed uint64
}

// Assign implements Adversary.
func (a RandomAdversary) Assign(i, m int) Perm {
	// Derive a per-process stream so assignments are order-independent.
	r := xrand.New(xrand.Mix64(a.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15))
	return Random(m, r)
}

// FixedAdversary assigns explicitly provided permutations; process i gets
// Perms[i mod len(Perms)]. Useful for replaying specific scenarios such as
// the paper's Table I.
type FixedAdversary struct {
	Perms []Perm
}

// Assign implements Adversary.
func (a FixedAdversary) Assign(i, m int) Perm {
	if len(a.Perms) == 0 {
		return Identity(m)
	}
	p := a.Perms[i%len(a.Perms)]
	if len(p) != m {
		panic(fmt.Sprintf("perm: fixed adversary has permutation of size %d, memory has %d", len(p), m))
	}
	return p.Clone()
}

// Verify interface compliance.
var (
	_ Adversary = IdentityAdversary{}
	_ Adversary = RotationAdversary{}
	_ Adversary = RandomAdversary{}
	_ Adversary = FixedAdversary{}
)
