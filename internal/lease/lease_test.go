package lease

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/internal/xrand"
)

func newManagers(t *testing.T, cfg Config) (*lockmgr.Manager, *Manager) {
	t.Helper()
	lm, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m.Close()
		if err := lm.Close(); err != nil {
			t.Errorf("lockmgr close after lease close: %v", err)
		}
	})
	return lm, m
}

func TestConfigValidation(t *testing.T) {
	lm, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	if _, err := New(lm, Config{}); err == nil {
		t.Fatal("zero TTL accepted")
	}
	if _, err := New(lm, Config{TTL: time.Second, Grace: -1}); err == nil {
		t.Fatal("negative grace accepted")
	}
	if _, err := New(lm, Config{TTL: time.Second, Shards: -1}); err == nil {
		t.Fatal("negative shards accepted")
	}
}

// TestTokenMonotonicityPerKey is the fencing property test: across a
// randomized interleaving of voluntary releases, explicit revocations,
// and TTL expiries — the three ways a lease ends, all of which recycle
// the underlying lease-pool slot — each key's observed token sequence
// must be strictly increasing. One global issue counter makes this
// hold across keys too, but per-key is the property fencing needs.
func TestTokenMonotonicityPerKey(t *testing.T) {
	_, m := newManagers(t, Config{TTL: 20 * time.Millisecond, Grace: 5 * time.Millisecond, Shards: 2})
	const keys = 5
	last := make(map[string]uint64, keys)
	r := xrand.New(7)
	for i := 0; i < 120; i++ {
		name := fmt.Sprintf("k%d", r.Intn(keys))
		g, err := m.AcquireCtx(t.Context(), name)
		if err != nil {
			t.Fatalf("acquire %s: %v", name, err)
		}
		if g.Token <= last[name] {
			t.Fatalf("key %s: token %d not greater than previous %d", name, g.Token, last[name])
		}
		last[name] = g.Token
		switch r.Intn(3) {
		case 0:
			if err := m.Release(name, g.Token); err != nil {
				t.Fatalf("release %s: %v", name, err)
			}
		case 1:
			if err := m.Revoke(name, g.Token); err != nil {
				t.Fatalf("revoke %s: %v", name, err)
			}
		default:
			// Let the TTL expire it: the next acquire on this key blocks
			// until the expiry goroutine revokes the orphan.
		}
	}
}

// TestExpiryRecoversOrphan pins the headline recovery bound: a holder
// that goes dark orphans its key for at most one TTL plus the revoke
// cost, after which a waiting acquirer gets the lock.
func TestExpiryRecoversOrphan(t *testing.T) {
	const ttl = 30 * time.Millisecond
	_, m := newManagers(t, Config{TTL: ttl})
	if _, err := m.AcquireCtx(t.Context(), "orphaned"); err != nil {
		t.Fatal(err)
	}
	// Never heartbeat, never release: the successor's blocking acquire
	// must complete within 2×TTL.
	start := time.Now()
	g, err := m.AcquireCtx(t.Context(), "orphaned")
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 2*ttl {
		t.Errorf("orphan recovery took %v, want <= %v", took, 2*ttl)
	}
	c := m.Counters()
	if c.Expired != 1 {
		t.Errorf("expired = %d, want 1", c.Expired)
	}
	if err := m.Release("orphaned", g.Token); err != nil {
		t.Fatal(err)
	}
}

// TestHeartbeatKeepsLeaseAlive: a heartbeating holder survives many
// TTLs; once it stops, the lease expires and its token is fenced.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	const ttl = 40 * time.Millisecond
	_, m := newManagers(t, Config{TTL: ttl})
	g, err := m.AcquireCtx(t.Context(), "beating")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(4 * ttl)
	for time.Now().Before(deadline) {
		if _, err := m.Heartbeat("beating", g.Token); err != nil {
			t.Fatalf("heartbeat while alive: %v", err)
		}
		time.Sleep(ttl / 4)
	}
	if rem, ok := m.Remaining("beating", g.Token); !ok || rem <= 0 {
		t.Fatalf("lease not live after heartbeating: rem=%v ok=%v", rem, ok)
	}
	// Stop heartbeating; wait out the TTL (plus slack for the expiry
	// goroutine), then every lifecycle op on the stale token must fence.
	time.Sleep(2 * ttl)
	if _, err := m.Heartbeat("beating", g.Token); !errors.Is(err, ErrFenced) {
		t.Fatalf("heartbeat after expiry: %v, want ErrFenced", err)
	}
	if err := m.Release("beating", g.Token); !errors.Is(err, ErrFenced) {
		t.Fatalf("release after expiry: %v, want ErrFenced", err)
	}
	c := m.Counters()
	if c.Expired != 1 {
		t.Errorf("expired = %d, want 1", c.Expired)
	}
	if c.FencedRejects < 2 {
		t.Errorf("fenced rejects = %d, want >= 2", c.FencedRejects)
	}
}

// TestReleaseRaceExpiry is the single-arbitration test: with TTLs so
// short that expiry constantly races voluntary release, exactly one
// side may win each token — the run must end with zero active leases,
// a conserved grant count, and a still-working key. Run under -race.
func TestReleaseRaceExpiry(t *testing.T) {
	const ttl = time.Millisecond
	lm, m := newManagers(t, Config{TTL: ttl, Shards: 1})
	const iters = 200
	var wg sync.WaitGroup
	var releaseWins, fencedLosses int
	for i := 0; i < iters; i++ {
		g, err := m.AcquireCtx(t.Context(), "contested")
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		// Sleep right up to the deadline so release and expiry collide.
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(ttl)
			if err := m.Release("contested", g.Token); err == nil {
				releaseWins++
			} else if errors.Is(err, ErrFenced) {
				fencedLosses++
			} else {
				t.Errorf("release: %v", err)
			}
		}()
		wg.Wait()
	}
	if releaseWins+fencedLosses != iters {
		t.Fatalf("wins %d + losses %d != %d iterations", releaseWins, fencedLosses, iters)
	}
	c := m.Counters()
	if c.Active != 0 {
		t.Errorf("active = %d after all races resolved, want 0", c.Active)
	}
	if got := c.Expired + uint64(releaseWins); got != iters {
		t.Errorf("expiries (%d) + release wins (%d) = %d, want %d", c.Expired, releaseWins, c.Expired+uint64(releaseWins), iters)
	}
	if v := lm.Violations(); v != 0 {
		t.Errorf("lock manager violations = %d, want 0", v)
	}
}

// TestQuarantineThenForget: after a release, the key's state answers
// the stale token with ErrFenced through the grace window, and the
// token stays fenced after GC too (the state is simply gone).
func TestQuarantineThenForget(t *testing.T) {
	const ttl = 20 * time.Millisecond
	_, m := newManagers(t, Config{TTL: ttl, Grace: ttl})
	g, err := m.AcquireCtx(t.Context(), "quarantined")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release("quarantined", g.Token); err != nil {
		t.Fatal(err)
	}
	// In quarantine: specific fencing rejection.
	if err := m.Release("quarantined", g.Token); !errors.Is(err, ErrFenced) {
		t.Fatalf("release in quarantine: %v, want ErrFenced", err)
	}
	// After the grace window the state is garbage-collected; the stale
	// token is still fenced (now as an unknown key).
	time.Sleep(3 * ttl)
	if err := m.Release("quarantined", g.Token); !errors.Is(err, ErrFenced) {
		t.Fatalf("release after GC: %v, want ErrFenced", err)
	}
}

// TestRevokeFreesTheLock: an explicit revocation releases the lock on
// the orphan's behalf — the next TryAcquire succeeds immediately.
func TestRevokeFreesTheLock(t *testing.T) {
	lm, m := newManagers(t, Config{TTL: time.Minute})
	g, err := m.AcquireCtx(t.Context(), "seized")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke("seized", g.Token); err != nil {
		t.Fatal(err)
	}
	g2, ok, err := m.TryAcquire("seized")
	if err != nil || !ok {
		t.Fatalf("try after revoke: ok=%v err=%v", ok, err)
	}
	if g2.Token <= g.Token {
		t.Errorf("successor token %d not greater than revoked %d", g2.Token, g.Token)
	}
	if err := m.Release("seized", g2.Token); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.Revoked != 1 {
		t.Errorf("revoked = %d, want 1", c.Revoked)
	}
	if lc := lm.Counters(); lc.Revokes != 1 {
		t.Errorf("lock manager revokes = %d, want 1", lc.Revokes)
	}
}

// TestCloseRevokesOrphans: Close reclaims still-active leases so the
// underlying lock manager closes cleanly (asserted by the shared
// cleanup, which fails the test if lm.Close errors).
func TestCloseRevokesOrphans(t *testing.T) {
	_, m := newManagers(t, Config{TTL: time.Minute})
	for i := 0; i < 4; i++ {
		if _, err := m.AcquireCtx(t.Context(), fmt.Sprintf("orphan-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	if c := m.Counters(); c.Revoked != 4 || c.Active != 0 {
		t.Errorf("after close: revoked=%d active=%d, want 4, 0", c.Revoked, c.Active)
	}
}

// BenchmarkLeaseCycle is the lease-path analogue of the lock manager's
// acquire/release benchmarks: one uncontended acquire+attach+release
// cycle through the token arbitration.
func BenchmarkLeaseCycle(b *testing.B) {
	lm, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(lm, Config{TTL: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		m.Close()
		lm.Close()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, ok, err := m.TryAcquire("bench-key")
		if err != nil || !ok {
			b.Fatalf("try: ok=%v err=%v", ok, err)
		}
		if err := m.Release("bench-key", g.Token); err != nil {
			b.Fatal(err)
		}
	}
}
