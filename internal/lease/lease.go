// Package lease layers a crash-recovery lifecycle over the lock
// manager's grants: every grant is stamped with a monotonic fencing
// token, kept alive by holder heartbeats, and forcibly revoked when its
// TTL expires — so a client that dies holding a lock (kill -9 mid-CS, a
// dropped network partition, a stuck process) orphans the name for at
// most one TTL plus the cost of one revocation, instead of forever.
//
// The pieces:
//
//   - Fencing tokens. Tokens are issued from one manager-wide counter,
//     so they are strictly increasing across every key — per-key
//     monotonicity survives LRU eviction and lease-pool slot recycling
//     for free, with no per-key persistent state. A holder that
//     resurfaces after expiry presents a stale token and is rejected
//     (ErrFenced) by every lifecycle operation.
//   - Heartbeats with TTL expiry. Each shard keeps a min-heap of lease
//     deadlines drained by one expiry goroutine — no per-lease timers,
//     no per-lease goroutines. A heartbeat pushes the lease's deadline
//     out by one TTL; a lease whose deadline passes is expired.
//   - Revocation as release-by-proxy. Expiry drives the lock manager's
//     Revoke on the orphaned lease: the revoker goroutine executes the
//     holder's register-safe critical-section exit on the orphan's own
//     process handle (identity and permutation attach to the handle,
//     not the goroutine — the same machinery the abortable withdraw
//     uses), then the handle returns to the lease pool for reuse.
//     Waiters that die are not this package's problem: a dead waiter's
//     context cancellation already withdraws it from the competition.
//   - Quarantine. A revoked or released key's state (with its last
//     token) is retained for a grace window, so a stale holder's late
//     ops in that window are rejected with a specific fencing error and
//     counted, before the state is garbage-collected.
//
// Exactly one lifecycle operation wins a given token: Release, Revoke,
// and expiry all arbitrate under the shard mutex on (active, token), so
// a connection teardown racing TTL expiry resolves to one release of
// the underlying lock — the loser observes ErrFenced and touches
// nothing.
package lease

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/internal/lockmgr"
)

// ErrFenced reports a lifecycle operation carrying a token whose lease
// is no longer active: it expired, was revoked, or was already
// released. Test with errors.Is.
var ErrFenced = errors.New("fenced: stale lease token")

// Config parameterizes a Manager. TTL is required; the zero value of
// every other field means "default".
type Config struct {
	// TTL is how long a grant lives without a heartbeat before it is
	// forcibly revoked. Required (> 0).
	TTL time.Duration
	// Grace is the quarantine window after a lease ends during which its
	// key state (and last token) is retained so a stale holder's late
	// ops get a specific fencing rejection. Default: TTL.
	Grace time.Duration
	// Shards is the number of independent expiry shards, each with its
	// own deadline heap and expiry goroutine (default 8).
	Shards int
}

// Grant is one leased hold on a named lock, as returned by the
// convenience acquire wrappers: the name plus the fencing token that
// every later lifecycle op must present.
type Grant struct {
	Name  string
	Token uint64
}

// Counters is the manager's lifecycle bookkeeping.
type Counters struct {
	// Granted counts tokens issued.
	Granted uint64
	// Expired counts leases forcibly revoked at TTL (the holder stopped
	// heartbeating); Revoked counts forcible revocations by explicit
	// Revoke calls and by Close.
	Expired, Revoked uint64
	// FencedRejects counts lifecycle ops rejected for a stale token.
	FencedRejects uint64
	// Active is the number of currently live leases.
	Active int
}

// keyState is one key's lease bookkeeping: resident from the first
// grant until a grace window after the last lease ends.
type keyState struct {
	name     string
	token    uint64        // latest issued token for this key
	active   bool          // the lease behind token currently holds the lock
	l        lockmgr.Lease // the held lock; valid only while active
	deadline time.Time     // active: expiry time; inactive: quarantine GC time
	idx      int           // position in the shard's deadline heap (-1: not queued)
}

// shard is one partition of the key space: a state table plus the
// deadline min-heap its expiry goroutine drains.
type shard struct {
	mu   sync.Mutex
	keys map[string]*keyState
	heap []*keyState
	wake chan struct{} // signaled when a new earliest deadline appears
}

// Manager runs the lease lifecycle over a lock manager. Safe for
// concurrent use. The caller keeps ownership of the lock manager;
// Close revokes every still-active lease so the lock manager can be
// closed cleanly afterwards.
type Manager struct {
	lm     *lockmgr.Manager
	ttl    time.Duration
	grace  time.Duration
	shards []*shard

	// tokens is the manager-wide issue counter: strictly increasing
	// across every key, which is what makes per-key token sequences
	// monotonic across expiry, release, eviction, and slot recycling.
	tokens atomic.Uint64

	granted, expired, revoked, fenced atomic.Uint64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New starts a lease manager over lm.
func New(lm *lockmgr.Manager, cfg Config) (*Manager, error) {
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("lease: need TTL > 0, got %v", cfg.TTL)
	}
	if cfg.Grace < 0 {
		return nil, fmt.Errorf("lease: need Grace >= 0, got %v", cfg.Grace)
	}
	if cfg.Grace == 0 {
		cfg.Grace = cfg.TTL
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("lease: need Shards >= 1, got %d", cfg.Shards)
	}
	m := &Manager{
		lm:     lm,
		ttl:    cfg.TTL,
		grace:  cfg.Grace,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shard{keys: make(map[string]*keyState), wake: make(chan struct{}, 1)}
		m.wg.Add(1)
		go m.runShard(m.shards[i])
	}
	return m, nil
}

// TTL returns the configured lease TTL.
func (m *Manager) TTL() time.Duration { return m.ttl }

// shard maps a key to its partition (FNV-1a, as the lock manager
// shards names).
func (m *Manager) shard(name string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return m.shards[h%uint64(len(m.shards))]
}

// Attach stamps an already-acquired lock-manager lease with a fresh
// fencing token and starts its TTL clock, returning the token. This is
// the zero-extra-roundtrip surface the lock service uses: the server
// acquires through the manager's fast path, then attaches.
func (m *Manager) Attach(l lockmgr.Lease) uint64 {
	name := l.Name()
	tok := m.tokens.Add(1)
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil {
		st = &keyState{name: name, idx: -1}
		sh.keys[name] = st
	}
	// Mutual exclusion is the invariant that makes this a plain store:
	// a new grant on this name can only exist after the previous lease
	// was released or revoked, so st is never active here.
	st.token = tok
	st.active = true
	st.l = l
	st.deadline = time.Now().Add(m.ttl)
	if st.idx < 0 {
		sh.heapPush(st)
	} else {
		sh.heapFix(st.idx)
	}
	earliest := sh.heap[0] == st
	sh.mu.Unlock()
	m.granted.Add(1)
	if earliest {
		// The expiry loop may be parked on a later (or absent) deadline.
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
	return tok
}

// AcquireCtx acquires the named lock (blocking, context-bounded) and
// leases it: the returned Grant carries the fencing token.
func (m *Manager) AcquireCtx(ctx context.Context, name string) (Grant, error) {
	l, err := m.lm.AcquireLeaseCtx(ctx, name)
	if err != nil {
		return Grant{}, err
	}
	return Grant{Name: name, Token: m.Attach(l)}, nil
}

// TryAcquire acquires the named lock only if immediately available,
// leasing it on success.
func (m *Manager) TryAcquire(name string) (Grant, bool, error) {
	l, ok, err := m.lm.TryAcquireLease(name)
	if !ok || err != nil {
		return Grant{}, false, err
	}
	return Grant{Name: name, Token: m.Attach(l)}, true, nil
}

// Heartbeat renews the lease behind token, pushing its expiry out by
// one TTL, and returns the new remaining TTL. A stale token — the
// lease expired, was revoked, or was already released — is rejected
// with ErrFenced.
func (m *Manager) Heartbeat(name string, token uint64) (time.Duration, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil || !st.active || st.token != token {
		sh.mu.Unlock()
		m.fenced.Add(1)
		return 0, fmt.Errorf("lease: heartbeat on %q token %d: %w", name, token, ErrFenced)
	}
	st.deadline = time.Now().Add(m.ttl)
	sh.heapFix(st.idx)
	sh.mu.Unlock()
	return m.ttl, nil
}

// Remaining reports the lease's time to expiry, or ok=false when token
// no longer names an active lease. It is an observability probe: a
// stale token here is not counted as a fenced reject.
func (m *Manager) Remaining(name string, token uint64) (time.Duration, bool) {
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil || !st.active || st.token != token {
		sh.mu.Unlock()
		return 0, false
	}
	d := time.Until(st.deadline)
	sh.mu.Unlock()
	if d < 0 {
		d = 0
	}
	return d, true
}

// Release gives the lease behind token back voluntarily. A stale token
// is rejected with ErrFenced and releases nothing — this is the single
// arbitration point that lets connection teardown race TTL expiry
// without ever double-releasing a recycled slot.
func (m *Manager) Release(name string, token uint64) error {
	l, err := m.detach(name, token)
	if err != nil {
		return err
	}
	return m.lm.Release(l)
}

// Revoke forcibly ends the lease behind token, driving the lock
// manager's revocation path on the orphaned handle. Expiry uses the
// same detach arbitration internally; Revoke is the explicit
// (administrative or test) entry point.
func (m *Manager) Revoke(name string, token uint64) error {
	l, err := m.detach(name, token)
	if err != nil {
		return err
	}
	m.revoked.Add(1)
	return m.lm.Revoke(l)
}

// detach atomically claims the active lease behind (name, token),
// marking the state inactive and quarantined. Exactly one caller wins
// a given token; every other gets ErrFenced.
func (m *Manager) detach(name string, token uint64) (lockmgr.Lease, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil || !st.active || st.token != token {
		sh.mu.Unlock()
		m.fenced.Add(1)
		return lockmgr.Lease{}, fmt.Errorf("lease: release of %q token %d: %w", name, token, ErrFenced)
	}
	l := st.l
	st.active = false
	st.l = lockmgr.Lease{}
	st.deadline = time.Now().Add(m.grace)
	sh.heapFix(st.idx)
	sh.mu.Unlock()
	return l, nil
}

// EnsureTokenFloor raises the token issue counter to at least floor,
// so every token granted from now on exceeds it. It never lowers the
// counter. The cluster layer calls it with the membership epoch's
// token floor on every view change: grants issued by a key's new
// owner under epoch E+1 then compare strictly greater than anything
// its previous owner issued under epoch E, which is what keeps fencing
// sound across failover (a fenced holder's token can never outrank a
// successor's).
func (m *Manager) EnsureTokenFloor(floor uint64) {
	for {
		cur := m.tokens.Load()
		if cur >= floor || m.tokens.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// RevokeIf forcibly revokes every active lease whose name satisfies
// pred, through the same detach arbitration every other revocation
// uses, and reports how many it revoked. The cluster layer calls it on
// membership change with "no longer owned here" as the predicate: the
// keys that moved to another node have their local grants fenced out
// before the new owner starts granting them.
func (m *Manager) RevokeIf(pred func(name string) bool) int {
	type target struct {
		name  string
		token uint64
	}
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		var targets []target
		for name, st := range sh.keys {
			if st.active && pred(name) {
				targets = append(targets, target{name: name, token: st.token})
			}
		}
		sh.mu.Unlock()
		// Revoke outside the shard mutex: a target that loses the detach
		// arbitration to a concurrent expiry, release, or teardown was
		// ended by that path instead — either way it is gone.
		for _, tg := range targets {
			if err := m.Revoke(tg.name, tg.token); err == nil {
				n++
			}
		}
	}
	return n
}

// runShard is one shard's expiry goroutine: it sleeps until the
// earliest deadline (or a wake for a newly earliest one), expires due
// leases, and garbage-collects quarantined states whose grace window
// has passed. Revocations run outside the shard mutex: the key cannot
// be re-granted until the underlying lock is actually released, so
// nothing can race the state while the lock is still held.
func (m *Manager) runShard(sh *shard) {
	defer m.wg.Done()
	const idle = time.Hour
	timer := time.NewTimer(idle)
	defer timer.Stop()
	var due []lockmgr.Lease
	for {
		sh.mu.Lock()
		now := time.Now()
		due = due[:0]
		for len(sh.heap) > 0 && !sh.heap[0].deadline.After(now) {
			st := sh.heap[0]
			if st.active {
				// TTL expiry: claim the lease exactly as detach would.
				st.active = false
				due = append(due, st.l)
				st.l = lockmgr.Lease{}
				st.deadline = now.Add(m.grace)
				sh.heapFix(0)
			} else {
				// Quarantine over: forget the key.
				sh.heapPop()
				delete(sh.keys, st.name)
			}
		}
		wait := idle
		if len(sh.heap) > 0 {
			if wait = time.Until(sh.heap[0].deadline); wait < 0 {
				wait = 0
			}
		}
		sh.mu.Unlock()
		for _, l := range due {
			m.expired.Add(1)
			m.lm.Revoke(l)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-m.stop:
			return
		case <-sh.wake:
		case <-timer.C:
		}
	}
}

// Counters snapshots the lifecycle bookkeeping.
func (m *Manager) Counters() Counters {
	c := Counters{
		Granted:       m.granted.Load(),
		Expired:       m.expired.Load(),
		Revoked:       m.revoked.Load(),
		FencedRejects: m.fenced.Load(),
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, st := range sh.keys {
			if st.active {
				c.Active++
			}
		}
		sh.mu.Unlock()
	}
	return c
}

// Close stops the expiry goroutines and revokes every still-active
// lease (the crash orphans a draining server never heard a release
// for), so the underlying lock manager can be closed with no
// outstanding leases. Idempotent.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	close(m.stop)
	m.wg.Wait()
	for _, sh := range m.shards {
		sh.mu.Lock()
		var orphans []lockmgr.Lease
		for _, st := range sh.keys {
			if st.active {
				orphans = append(orphans, st.l)
				st.active = false
				st.l = lockmgr.Lease{}
			}
		}
		sh.mu.Unlock()
		for _, l := range orphans {
			m.revoked.Add(1)
			m.lm.Revoke(l)
		}
	}
}

// Min-heap of keyStates by deadline, with index maintenance so
// heartbeats can fix an entry in place.

func (sh *shard) heapPush(st *keyState) {
	st.idx = len(sh.heap)
	sh.heap = append(sh.heap, st)
	sh.heapUp(st.idx)
}

// heapPop removes and returns the earliest entry.
func (sh *shard) heapPop() *keyState {
	st := sh.heap[0]
	last := len(sh.heap) - 1
	sh.heap[0] = sh.heap[last]
	sh.heap[0].idx = 0
	sh.heap[last] = nil
	sh.heap = sh.heap[:last]
	if last > 0 {
		sh.heapDown(0)
	}
	st.idx = -1
	return st
}

// heapFix restores heap order for the entry at i after its deadline
// changed in either direction.
func (sh *shard) heapFix(i int) {
	sh.heapUp(i)
	sh.heapDown(i)
}

func (sh *shard) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !sh.heap[i].deadline.Before(sh.heap[p].deadline) {
			return
		}
		sh.heapSwap(i, p)
		i = p
	}
}

func (sh *shard) heapDown(i int) {
	n := len(sh.heap)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && sh.heap[r].deadline.Before(sh.heap[c].deadline) {
			c = r
		}
		if !sh.heap[c].deadline.Before(sh.heap[i].deadline) {
			return
		}
		sh.heapSwap(i, c)
		i = c
	}
}

func (sh *shard) heapSwap(i, j int) {
	sh.heap[i], sh.heap[j] = sh.heap[j], sh.heap[i]
	sh.heap[i].idx = i
	sh.heap[j].idx = j
}
