// Package lease layers a crash-recovery lifecycle over the lock
// manager's grants: every grant is stamped with a monotonic fencing
// token, kept alive by holder heartbeats, and forcibly revoked when its
// TTL expires — so a client that dies holding a lock (kill -9 mid-CS, a
// dropped network partition, a stuck process) orphans the name for at
// most one TTL plus the cost of one revocation, instead of forever.
//
// The pieces:
//
//   - Fencing tokens. Tokens are issued from one manager-wide counter,
//     so they are strictly increasing across every key — per-key
//     monotonicity survives LRU eviction and lease-pool slot recycling
//     for free, with no per-key persistent state. A holder that
//     resurfaces after expiry presents a stale token and is rejected
//     (ErrFenced) by every lifecycle operation.
//   - Heartbeats with TTL expiry. Each shard keeps a min-heap of lease
//     deadlines drained by one expiry goroutine — no per-lease timers,
//     no per-lease goroutines. A heartbeat pushes the lease's deadline
//     out by one TTL; a lease whose deadline passes is expired.
//   - Revocation as release-by-proxy. Expiry drives the lock manager's
//     Revoke on the orphaned lease: the revoker goroutine executes the
//     holder's register-safe critical-section exit on the orphan's own
//     process handle (identity and permutation attach to the handle,
//     not the goroutine — the same machinery the abortable withdraw
//     uses), then the handle returns to the lease pool for reuse.
//     Waiters that die are not this package's problem: a dead waiter's
//     context cancellation already withdraws it from the competition.
//   - Quarantine. A revoked or released key's state (with its last
//     token) is retained for a grace window, so a stale holder's late
//     ops in that window are rejected with a specific fencing error and
//     counted, before the state is garbage-collected.
//
// Exactly one lifecycle operation wins a given token: Release, Revoke,
// and expiry all arbitrate under the shard mutex on (active, token), so
// a connection teardown racing TTL expiry resolves to one release of
// the underlying lock — the loser observes ErrFenced and touches
// nothing.
package lease

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/internal/journal"
	"anonmutex/internal/lockmgr"
)

// ErrFenced reports a lifecycle operation carrying a token whose lease
// is no longer active: it expired, was revoked, or was already
// released. Test with errors.Is.
var ErrFenced = errors.New("fenced: stale lease token")

// Config parameterizes a Manager. TTL is required; the zero value of
// every other field means "default".
type Config struct {
	// TTL is how long a grant lives without a heartbeat before it is
	// forcibly revoked. Required (> 0).
	TTL time.Duration
	// Grace is the quarantine window after a lease ends during which its
	// key state (and last token) is retained so a stale holder's late
	// ops get a specific fencing rejection. Default: TTL.
	Grace time.Duration
	// Shards is the number of independent expiry shards, each with its
	// own deadline heap and expiry goroutine (default 8).
	Shards int
	// Journal, when non-nil, records every lease transition in the
	// write-ahead log: grants and heartbeat renewals are committed per
	// the journal's sync policy before they are acknowledged, and the
	// fencing counter draws from durably reserved token bands so no
	// token is ever reissued across a restart. Nil keeps the manager
	// purely in-memory (the pre-durability behavior, byte for byte).
	Journal *journal.Log
	// Recovered, when non-nil alongside Journal, is the state the
	// journal recovered: New re-acquires each recovered lease from the
	// lock manager and reattaches it under its original token and
	// absolute deadline (remaining-time semantics — a restart does not
	// refresh TTLs), and seeds the token counter at the recovered
	// high-water mark.
	Recovered *journal.State
}

// Grant is one leased hold on a named lock, as returned by the
// convenience acquire wrappers: the name plus the fencing token that
// every later lifecycle op must present.
type Grant struct {
	Name  string
	Token uint64
}

// Counters is the manager's lifecycle bookkeeping.
type Counters struct {
	// Granted counts tokens issued.
	Granted uint64
	// Expired counts leases forcibly revoked at TTL (the holder stopped
	// heartbeating); Revoked counts forcible revocations by explicit
	// Revoke calls and by Close.
	Expired, Revoked uint64
	// FencedRejects counts lifecycle ops rejected for a stale token.
	FencedRejects uint64
	// Recovered counts leases reattached from the journal at startup.
	Recovered uint64
	// Active is the number of currently live leases.
	Active int
}

// keyState is one key's lease bookkeeping: resident from the first
// grant until a grace window after the last lease ends.
type keyState struct {
	name     string
	token    uint64        // latest issued token for this key
	active   bool          // the lease behind token currently holds the lock
	l        lockmgr.Lease // the held lock; valid only while active
	deadline time.Time     // active: expiry time; inactive: quarantine GC time
	idx      int           // position in the shard's deadline heap (-1: not queued)
}

// shard is one partition of the key space: a state table plus the
// deadline min-heap its expiry goroutine drains.
type shard struct {
	mu   sync.Mutex
	keys map[string]*keyState
	heap []*keyState
	wake chan struct{} // signaled when a new earliest deadline appears
}

// Manager runs the lease lifecycle over a lock manager. Safe for
// concurrent use. The caller keeps ownership of the lock manager;
// Close revokes every still-active lease so the lock manager can be
// closed cleanly afterwards.
type Manager struct {
	lm     *lockmgr.Manager
	ttl    time.Duration
	grace  time.Duration
	shards []*shard

	// tokens is the manager-wide issue counter: strictly increasing
	// across every key, which is what makes per-key token sequences
	// monotonic across expiry, release, eviction, and slot recycling.
	tokens atomic.Uint64

	// jn, when non-nil, journals every transition. band is the durably
	// reserved token high-water mark: tokens at or below it may be
	// issued without touching the journal; the first draw above it
	// reserves the next band under bandMu (serialized so one fsync
	// renews the band for everyone).
	jn     *journal.Log
	band   atomic.Uint64
	bandMu sync.Mutex

	granted, expired, revoked, fenced, recovered atomic.Uint64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New starts a lease manager over lm.
func New(lm *lockmgr.Manager, cfg Config) (*Manager, error) {
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("lease: need TTL > 0, got %v", cfg.TTL)
	}
	if cfg.Grace < 0 {
		return nil, fmt.Errorf("lease: need Grace >= 0, got %v", cfg.Grace)
	}
	if cfg.Grace == 0 {
		cfg.Grace = cfg.TTL
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("lease: need Shards >= 1, got %d", cfg.Shards)
	}
	m := &Manager{
		lm:     lm,
		ttl:    cfg.TTL,
		grace:  cfg.Grace,
		shards: make([]*shard, cfg.Shards),
		jn:     cfg.Journal,
		stop:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shard{keys: make(map[string]*keyState), wake: make(chan struct{}, 1)}
	}
	if cfg.Recovered != nil {
		m.recover(cfg.Recovered)
	}
	for i := range m.shards {
		m.wg.Add(1)
		go m.runShard(m.shards[i])
	}
	return m, nil
}

// recover reattaches the journal's recovered leases before the expiry
// goroutines start: each lease is re-acquired from the (necessarily
// fresh and uncontended) lock manager and reinstalled under its
// original token and absolute deadline — a restart does not refresh
// TTLs, so a holder that died with the server still expires on the
// schedule it last heartbeat for, and one whose deadline already
// passed is expired by the first expiry sweep. The token counter
// restarts at the recovered band high-water mark (never below any
// recovered token), which is the restart-monotonicity argument: every
// token this incarnation issues exceeds every token the previous one
// could have issued.
func (m *Manager) recover(st *journal.State) {
	high := st.TokenHigh
	for _, ls := range st.Leases {
		if ls.Token > high {
			high = ls.Token
		}
	}
	m.tokens.Store(high)
	m.band.Store(high)
	for _, ls := range st.Leases {
		l, ok, err := m.lm.TryAcquireLease(ls.Name)
		if err != nil || !ok {
			// The lock manager is fresh at recovery time, so this only
			// happens if the caller raced its own acquires in first;
			// their grant wins, the recovered one is dropped.
			continue
		}
		sh := m.shard(ls.Name)
		sh.mu.Lock()
		ks := &keyState{
			name:     ls.Name,
			token:    ls.Token,
			active:   true,
			l:        l,
			deadline: time.Unix(0, ls.Deadline),
			idx:      -1,
		}
		sh.keys[ls.Name] = ks
		sh.heapPush(ks)
		sh.mu.Unlock()
		m.recovered.Add(1)
	}
}

// Recovered reports how many leases were reattached from the journal
// at startup.
func (m *Manager) Recovered() uint64 { return m.recovered.Load() }

// TTL returns the configured lease TTL.
func (m *Manager) TTL() time.Duration { return m.ttl }

// shard maps a key to its partition (FNV-1a, as the lock manager
// shards names).
func (m *Manager) shard(name string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return m.shards[h%uint64(len(m.shards))]
}

// issueToken draws the next fencing token. Without a journal this is
// one atomic add. With one, the draw must stay inside a durably
// reserved band: the first draw past the band's high-water mark
// reserves the next band (one journal sync covering the next BandSize
// tokens), serialized under bandMu so concurrent overflowing draws
// share that sync. EnsureTokenFloor can jump the counter arbitrarily
// far (epoch<<32); the next draw then reserves from the new position,
// which is how bands compose with cluster epoch floors.
func (m *Manager) issueToken() (uint64, error) {
	tok := m.tokens.Add(1)
	if m.jn == nil {
		return tok, nil
	}
	for tok > m.band.Load() {
		m.bandMu.Lock()
		if tok <= m.band.Load() {
			m.bandMu.Unlock()
			break
		}
		high, err := m.jn.ReserveTokens(tok)
		if err != nil {
			m.bandMu.Unlock()
			return 0, fmt.Errorf("lease: token band reservation: %w", err)
		}
		m.band.Store(high)
		m.bandMu.Unlock()
	}
	return tok, nil
}

// Attach stamps an already-acquired lock-manager lease with a fresh
// fencing token and starts its TTL clock, returning the token. This is
// the zero-extra-roundtrip surface the lock service uses: the server
// acquires through the manager's fast path, then attaches. With a
// journal configured, the grant is recorded and committed per the sync
// policy before Attach returns — under `always`, a grant the caller
// acknowledges is guaranteed to be re-served after a crash. On error
// the underlying lock has been released: the caller holds nothing.
func (m *Manager) Attach(l lockmgr.Lease) (uint64, error) {
	name := l.Name()
	tok, err := m.issueToken()
	if err != nil {
		m.lm.Release(l)
		return 0, err
	}
	deadline := time.Now().Add(m.ttl)
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil {
		st = &keyState{name: name, idx: -1}
		sh.keys[name] = st
	}
	// Mutual exclusion is the invariant that makes this a plain store:
	// a new grant on this name can only exist after the previous lease
	// was released or revoked, so st is never active here.
	st.token = tok
	st.active = true
	st.l = l
	st.deadline = deadline
	if st.idx < 0 {
		sh.heapPush(st)
	} else {
		sh.heapFix(st.idx)
	}
	earliest := sh.heap[0] == st
	var lsn uint64
	if m.jn != nil {
		// Appended under the shard mutex so the journal's record order
		// agrees with the state transition order for this key.
		lsn = m.jn.Append(journal.Record{Op: journal.OpGrant, Name: name, Token: tok, Deadline: deadline.UnixNano()})
	}
	sh.mu.Unlock()
	if m.jn != nil {
		if err := m.jn.Commit(lsn); err != nil {
			// The grant cannot be made durable, so it must not be
			// acknowledged: take the lease back through the usual
			// arbitration (expiry may already have raced it).
			if dl, derr := m.detach(name, tok); derr == nil {
				m.lm.Release(dl)
			}
			return 0, fmt.Errorf("lease: journal commit: %w", err)
		}
	}
	m.granted.Add(1)
	if earliest {
		// The expiry loop may be parked on a later (or absent) deadline.
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
	return tok, nil
}

// AcquireCtx acquires the named lock (blocking, context-bounded) and
// leases it: the returned Grant carries the fencing token.
func (m *Manager) AcquireCtx(ctx context.Context, name string) (Grant, error) {
	l, err := m.lm.AcquireLeaseCtx(ctx, name)
	if err != nil {
		return Grant{}, err
	}
	tok, err := m.Attach(l)
	if err != nil {
		return Grant{}, err
	}
	return Grant{Name: name, Token: tok}, nil
}

// TryAcquire acquires the named lock only if immediately available,
// leasing it on success.
func (m *Manager) TryAcquire(name string) (Grant, bool, error) {
	l, ok, err := m.lm.TryAcquireLease(name)
	if !ok || err != nil {
		return Grant{}, false, err
	}
	tok, err := m.Attach(l)
	if err != nil {
		return Grant{}, false, err
	}
	return Grant{Name: name, Token: tok}, true, nil
}

// Heartbeat renews the lease behind token, pushing its expiry out by
// one TTL, and returns the new remaining TTL. A stale token — the
// lease expired, was revoked, or was already released — is rejected
// with ErrFenced.
func (m *Manager) Heartbeat(name string, token uint64) (time.Duration, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil || !st.active || st.token != token {
		sh.mu.Unlock()
		m.fenced.Add(1)
		return 0, fmt.Errorf("lease: heartbeat on %q token %d: %w", name, token, ErrFenced)
	}
	deadline := time.Now().Add(m.ttl)
	st.deadline = deadline
	sh.heapFix(st.idx)
	var lsn uint64
	if m.jn != nil {
		lsn = m.jn.Append(journal.Record{Op: journal.OpExtend, Name: name, Token: token, Deadline: deadline.UnixNano()})
	}
	sh.mu.Unlock()
	if m.jn != nil {
		// A renewal must be durable before it is acknowledged for the
		// same reason a grant must: a holder whose ack'd extension is
		// lost would be expired while it believes itself renewed. The
		// error is deliberately not ErrFenced — the lease is still live.
		if err := m.jn.Commit(lsn); err != nil {
			return 0, fmt.Errorf("lease: journal commit: %w", err)
		}
	}
	return m.ttl, nil
}

// Remaining reports the lease's time to expiry, or ok=false when token
// no longer names an active lease. It is an observability probe: a
// stale token here is not counted as a fenced reject.
func (m *Manager) Remaining(name string, token uint64) (time.Duration, bool) {
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil || !st.active || st.token != token {
		sh.mu.Unlock()
		return 0, false
	}
	d := time.Until(st.deadline)
	sh.mu.Unlock()
	if d < 0 {
		d = 0
	}
	return d, true
}

// Release gives the lease behind token back voluntarily. A stale token
// is rejected with ErrFenced and releases nothing — this is the single
// arbitration point that lets connection teardown race TTL expiry
// without ever double-releasing a recycled slot.
func (m *Manager) Release(name string, token uint64) error {
	l, err := m.detach(name, token)
	if err != nil {
		return err
	}
	return m.lm.Release(l)
}

// Revoke forcibly ends the lease behind token, driving the lock
// manager's revocation path on the orphaned handle. Expiry uses the
// same detach arbitration internally; Revoke is the explicit
// (administrative or test) entry point.
func (m *Manager) Revoke(name string, token uint64) error {
	l, err := m.detachOp(name, token, journal.OpRevoke)
	if err != nil {
		return err
	}
	m.revoked.Add(1)
	return m.lm.Revoke(l)
}

// detach atomically claims the active lease behind (name, token),
// marking the state inactive and quarantined. Exactly one caller wins
// a given token; every other gets ErrFenced. The winner's ending op is
// journaled in transition order but never waited for: losing an ending
// record to a crash only means the key is recovered as held and
// expires by TTL — a liveness delay, never a safety violation — so
// release paths pay no sync.
func (m *Manager) detach(name string, token uint64) (lockmgr.Lease, error) {
	return m.detachOp(name, token, journal.OpRelease)
}

func (m *Manager) detachOp(name string, token uint64, op journal.Op) (lockmgr.Lease, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	st := sh.keys[name]
	if st == nil || !st.active || st.token != token {
		sh.mu.Unlock()
		m.fenced.Add(1)
		return lockmgr.Lease{}, fmt.Errorf("lease: release of %q token %d: %w", name, token, ErrFenced)
	}
	l := st.l
	st.active = false
	st.l = lockmgr.Lease{}
	st.deadline = time.Now().Add(m.grace)
	sh.heapFix(st.idx)
	if m.jn != nil {
		m.jn.Append(journal.Record{Op: op, Name: name, Token: token})
	}
	sh.mu.Unlock()
	return l, nil
}

// EnsureTokenFloor raises the token issue counter to at least floor,
// so every token granted from now on exceeds it. It never lowers the
// counter. The cluster layer calls it with the membership epoch's
// token floor on every view change: grants issued by a key's new
// owner under epoch E+1 then compare strictly greater than anything
// its previous owner issued under epoch E, which is what keeps fencing
// sound across failover (a fenced holder's token can never outrank a
// successor's).
func (m *Manager) EnsureTokenFloor(floor uint64) {
	for {
		cur := m.tokens.Load()
		if cur >= floor || m.tokens.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// RevokeIf forcibly revokes every active lease whose name satisfies
// pred, through the same detach arbitration every other revocation
// uses, and reports how many it revoked. The cluster layer calls it on
// membership change with "no longer owned here" as the predicate: the
// keys that moved to another node have their local grants fenced out
// before the new owner starts granting them.
func (m *Manager) RevokeIf(pred func(name string) bool) int {
	type target struct {
		name  string
		token uint64
	}
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		var targets []target
		for name, st := range sh.keys {
			if st.active && pred(name) {
				targets = append(targets, target{name: name, token: st.token})
			}
		}
		sh.mu.Unlock()
		// Revoke outside the shard mutex: a target that loses the detach
		// arbitration to a concurrent expiry, release, or teardown was
		// ended by that path instead — either way it is gone.
		for _, tg := range targets {
			if err := m.Revoke(tg.name, tg.token); err == nil {
				n++
			}
		}
	}
	return n
}

// runShard is one shard's expiry goroutine: it sleeps until the
// earliest deadline (or a wake for a newly earliest one), expires due
// leases, and garbage-collects quarantined states whose grace window
// has passed. Revocations run outside the shard mutex: the key cannot
// be re-granted until the underlying lock is actually released, so
// nothing can race the state while the lock is still held.
func (m *Manager) runShard(sh *shard) {
	defer m.wg.Done()
	const idle = time.Hour
	timer := time.NewTimer(idle)
	defer timer.Stop()
	var due []lockmgr.Lease
	for {
		sh.mu.Lock()
		now := time.Now()
		due = due[:0]
		for len(sh.heap) > 0 && !sh.heap[0].deadline.After(now) {
			st := sh.heap[0]
			if st.active {
				// TTL expiry: claim the lease exactly as detach would.
				st.active = false
				due = append(due, st.l)
				st.l = lockmgr.Lease{}
				st.deadline = now.Add(m.grace)
				sh.heapFix(0)
				if m.jn != nil {
					m.jn.Append(journal.Record{Op: journal.OpExpire, Name: st.name, Token: st.token})
				}
			} else {
				// Quarantine over: forget the key.
				sh.heapPop()
				delete(sh.keys, st.name)
			}
		}
		wait := idle
		if len(sh.heap) > 0 {
			if wait = time.Until(sh.heap[0].deadline); wait < 0 {
				wait = 0
			}
		}
		sh.mu.Unlock()
		for _, l := range due {
			m.expired.Add(1)
			m.lm.Revoke(l)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-m.stop:
			return
		case <-sh.wake:
		case <-timer.C:
		}
	}
}

// Counters snapshots the lifecycle bookkeeping.
func (m *Manager) Counters() Counters {
	c := Counters{
		Granted:       m.granted.Load(),
		Expired:       m.expired.Load(),
		Revoked:       m.revoked.Load(),
		FencedRejects: m.fenced.Load(),
		Recovered:     m.recovered.Load(),
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, st := range sh.keys {
			if st.active {
				c.Active++
			}
		}
		sh.mu.Unlock()
	}
	return c
}

// Abandon stops the manager as a crash would: expiry goroutines halt,
// nothing is revoked, and nothing further is journaled. It exists for
// crash-simulation tests (pair with the journal's Abandon) — a real
// kill -9 gets exactly this, minus the goroutine cleanup. Idempotent,
// mutually exclusive with Close.
func (m *Manager) Abandon() {
	if m.closed.Swap(true) {
		return
	}
	close(m.stop)
	m.wg.Wait()
}

// Close stops the expiry goroutines and revokes every still-active
// lease (the crash orphans a draining server never heard a release
// for), so the underlying lock manager can be closed with no
// outstanding leases. The revocations are deliberately NOT journaled:
// a graceful restart must recover the orphans' holds (their owners may
// merely be paused), so as far as the journal is concerned a drain
// ends with the leases still active — revoking them durably here would
// make restart strictly less safe than staying up. Idempotent.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	close(m.stop)
	m.wg.Wait()
	for _, sh := range m.shards {
		sh.mu.Lock()
		var orphans []lockmgr.Lease
		for _, st := range sh.keys {
			if st.active {
				orphans = append(orphans, st.l)
				st.active = false
				st.l = lockmgr.Lease{}
			}
		}
		sh.mu.Unlock()
		for _, l := range orphans {
			m.revoked.Add(1)
			m.lm.Revoke(l)
		}
	}
}

// Min-heap of keyStates by deadline, with index maintenance so
// heartbeats can fix an entry in place.

func (sh *shard) heapPush(st *keyState) {
	st.idx = len(sh.heap)
	sh.heap = append(sh.heap, st)
	sh.heapUp(st.idx)
}

// heapPop removes and returns the earliest entry.
func (sh *shard) heapPop() *keyState {
	st := sh.heap[0]
	last := len(sh.heap) - 1
	sh.heap[0] = sh.heap[last]
	sh.heap[0].idx = 0
	sh.heap[last] = nil
	sh.heap = sh.heap[:last]
	if last > 0 {
		sh.heapDown(0)
	}
	st.idx = -1
	return st
}

// heapFix restores heap order for the entry at i after its deadline
// changed in either direction.
func (sh *shard) heapFix(i int) {
	sh.heapUp(i)
	sh.heapDown(i)
}

func (sh *shard) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !sh.heap[i].deadline.Before(sh.heap[p].deadline) {
			return
		}
		sh.heapSwap(i, p)
		i = p
	}
}

func (sh *shard) heapDown(i int) {
	n := len(sh.heap)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && sh.heap[r].deadline.Before(sh.heap[c].deadline) {
			c = r
		}
		if !sh.heap[c].deadline.Before(sh.heap[i].deadline) {
			return
		}
		sh.heapSwap(i, c)
		i = c
	}
}

func (sh *shard) heapSwap(i, j int) {
	sh.heap[i], sh.heap[j] = sh.heap[j], sh.heap[i]
	sh.heap[i].idx = i
	sh.heap[j].idx = j
}
