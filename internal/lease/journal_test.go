package lease

// Durability wiring tests: the differential recovery-equivalence test
// (a journal-recovered manager must be indistinguishable from the live
// manager it replaces), restart token monotonicity, and band/floor
// composition. These live in-package so they can introspect shard
// state for exact comparison.

import (
	"fmt"
	"testing"
	"time"

	"anonmutex/internal/journal"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/xrand"
)

func newJournaled(t *testing.T, dir string, cfg Config, jopts journal.Options) (*lockmgr.Manager, *Manager, *journal.Log) {
	t.Helper()
	jn, st, err := journal.Open(dir, jopts)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	lm, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jn
	cfg.Recovered = &st
	m, err := New(lm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lm, m, jn
}

// liveState snapshots a manager's active leases (name -> token,
// deadline) straight out of its shards.
func liveState(m *Manager) map[string]LeaseState {
	out := map[string]LeaseState{}
	for _, sh := range m.shards {
		sh.mu.Lock()
		for name, st := range sh.keys {
			if st.active {
				out[name] = LeaseState{Name: name, Token: st.token, Deadline: st.deadline}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// LeaseState mirrors journal.LeaseState with a time.Time deadline for
// comparison.
type LeaseState struct {
	Name     string
	Token    uint64
	Deadline time.Time
}

// TestRecoveryEquivalence is the differential test: drive a randomized
// op sequence (grants, heartbeats, releases, revokes) against a
// journaled manager, crash it (Abandon — no revocations, no cleanup),
// recover a second manager from the journal, and require the
// recovered state to equal the live state exactly: same held keys,
// same tokens, same deadlines. Then require the recovered manager's
// next token to exceed everything the first ever issued. A stubbed-out
// recovery fails immediately: the recovered manager would hold
// nothing.
func TestRecoveryEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// SyncAlways + tiny CompactBytes so the sequence crosses
			// several compactions; long TTL so expiry never interferes
			// with the deterministic expected state.
			_, mA, jnA := newJournaled(t, dir,
				Config{TTL: time.Minute},
				journal.Options{Sync: journal.SyncAlways, CompactBytes: 2048, BandSize: 64})

			rng := xrand.New(seed)
			keys := make([]string, 24)
			for i := range keys {
				keys[i] = fmt.Sprintf("dkey-%02d", i)
			}
			held := map[string]Grant{}
			var maxToken uint64
			for i := 0; i < 600; i++ {
				name := keys[rng.Intn(len(keys))]
				g, isHeld := held[name]
				switch {
				case !isHeld:
					ng, ok, err := mA.TryAcquire(name)
					if err != nil || !ok {
						t.Fatalf("op %d: TryAcquire(%s) = %v, %v", i, name, ok, err)
					}
					held[name] = ng
					if ng.Token <= maxToken {
						t.Fatalf("op %d: token %d not increasing past %d", i, ng.Token, maxToken)
					}
					maxToken = ng.Token
				case rng.Intn(3) == 0:
					if _, err := mA.Heartbeat(name, g.Token); err != nil {
						t.Fatalf("op %d: Heartbeat(%s): %v", i, name, err)
					}
				case rng.Intn(2) == 0:
					if err := mA.Release(name, g.Token); err != nil {
						t.Fatalf("op %d: Release(%s): %v", i, name, err)
					}
					delete(held, name)
				default:
					if err := mA.Revoke(name, g.Token); err != nil {
						t.Fatalf("op %d: Revoke(%s): %v", i, name, err)
					}
					delete(held, name)
				}
			}
			want := liveState(mA)
			if len(want) == 0 {
				t.Fatal("sequence ended with nothing held; test is vacuous")
			}

			// Crash: no revocations reach the journal; buffered ending
			// records are flushed by Close so the recovered state is the
			// exact final state, not a stale prefix.
			mA.Abandon()
			if err := jnA.Close(); err != nil {
				t.Fatal(err)
			}

			_, mB, jnB := newJournaled(t, dir, Config{TTL: time.Minute}, journal.Options{})
			defer func() { mB.Close(); jnB.Close() }()
			got := liveState(mB)
			if len(got) != len(want) {
				t.Fatalf("recovered %d leases, live had %d", len(got), len(want))
			}
			for name, w := range want {
				r, ok := got[name]
				if !ok {
					t.Fatalf("live lease %s (token %d) not recovered", name, w.Token)
				}
				if r.Token != w.Token {
					t.Fatalf("lease %s recovered token %d, live %d", name, r.Token, w.Token)
				}
				if !r.Deadline.Equal(w.Deadline) {
					t.Fatalf("lease %s recovered deadline %v, live %v", name, r.Deadline, w.Deadline)
				}
			}
			if mB.Recovered() != uint64(len(want)) {
				t.Fatalf("Recovered() = %d, want %d", mB.Recovered(), len(want))
			}

			// Restart monotonicity: the next token exceeds every token
			// the first incarnation issued (band argument).
			ng, ok, err := mB.TryAcquire("fresh-after-restart")
			if err != nil || !ok {
				t.Fatalf("post-restart acquire: %v, %v", ok, err)
			}
			if ng.Token <= maxToken {
				t.Fatalf("post-restart token %d does not exceed pre-crash max %d", ng.Token, maxToken)
			}
		})
	}
}

// TestRecoveryRemainingTime: recovery keeps absolute deadlines — a
// lease granted with a short TTL before the crash expires on its
// original schedule after recovery, not TTL-from-restart.
func TestRecoveryRemainingTime(t *testing.T) {
	dir := t.TempDir()
	_, mA, jnA := newJournaled(t, dir,
		Config{TTL: 250 * time.Millisecond, Grace: 50 * time.Millisecond},
		journal.Options{Sync: journal.SyncAlways})
	g, ok, err := mA.TryAcquire("short")
	if err != nil || !ok {
		t.Fatal(err)
	}
	mA.Abandon()
	if err := jnA.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover with most of the TTL already burned.
	time.Sleep(150 * time.Millisecond)
	lmB, mB, jnB := newJournaled(t, dir,
		Config{TTL: 250 * time.Millisecond, Grace: 50 * time.Millisecond},
		journal.Options{})
	defer func() { mB.Close(); jnB.Close() }()
	if mB.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", mB.Recovered())
	}
	if _, ok, _ := lmB.TryAcquireLease("short"); ok {
		t.Fatal("recovered lease not actually holding the lock")
	}
	// The original deadline is ~100ms out; well before a full TTL from
	// restart, the lease must expire on its own (probed with Remaining,
	// which unlike Heartbeat does not renew).
	deadline := time.Now().Add(200 * time.Millisecond)
	for {
		if _, ok := mB.Remaining("short", g.Token); !ok {
			break // expired: the recovered lease died on schedule
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered lease still alive past its original deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c := mB.Counters()
	if c.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (recovered lease must expire via the normal path)", c.Expired)
	}
}

// TestRecoveryPastDeadline: a lease already past its deadline at
// recovery time is reattached and then promptly expired by the expiry
// loop — it does not linger, and it does not vanish without a
// revocation of the underlying lock.
func TestRecoveryPastDeadline(t *testing.T) {
	dir := t.TempDir()
	_, mA, jnA := newJournaled(t, dir, Config{TTL: 50 * time.Millisecond}, journal.Options{Sync: journal.SyncAlways})
	if _, ok, err := mA.TryAcquire("stale"); err != nil || !ok {
		t.Fatal(err)
	}
	mA.Abandon()
	if err := jnA.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // deadline passes while "down"

	lmB, mB, jnB := newJournaled(t, dir, Config{TTL: 50 * time.Millisecond}, journal.Options{})
	defer func() { mB.Close(); jnB.Close() }()
	if mB.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", mB.Recovered())
	}
	deadline := time.Now().Add(time.Second)
	for {
		if l, ok, _ := lmB.TryAcquireLease("stale"); ok {
			lmB.Release(l)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("past-deadline recovered lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c := mB.Counters(); c.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", c.Expired)
	}
}

// TestBandFloorComposition: EnsureTokenFloor jumps past the reserved
// band (a cluster epoch bump) and the next issue re-reserves above the
// floor; after a restart the counter sits above both.
func TestBandFloorComposition(t *testing.T) {
	dir := t.TempDir()
	_, m, jn := newJournaled(t, dir, Config{TTL: time.Minute}, journal.Options{Sync: journal.SyncAlways, BandSize: 100})
	g1, _, err := m.TryAcquire("a")
	if err != nil {
		t.Fatal(err)
	}
	floor := uint64(3) << 32
	m.EnsureTokenFloor(floor)
	g2, _, err := m.TryAcquire("b")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Token <= floor {
		t.Fatalf("post-floor token %d not above floor %d", g2.Token, floor)
	}
	m.Abandon()
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	_, m2, jn2 := newJournaled(t, dir, Config{TTL: time.Minute}, journal.Options{BandSize: 100})
	defer func() { m2.Close(); jn2.Close() }()
	g3, _, err := m2.TryAcquire("c")
	if err != nil {
		t.Fatal(err)
	}
	if g3.Token <= g2.Token || g3.Token <= g1.Token {
		t.Fatalf("restart token %d not above pre-crash tokens %d, %d", g3.Token, g1.Token, g2.Token)
	}
}

// BenchmarkLeaseCycleJournaled is BenchmarkLeaseCycle with the journal
// wired in under the fsync-off policy: the durability tax the hot path
// pays when persistence is on but syncing is deferred — two record
// appends (grant + release) per cycle, no I/O waits.
func BenchmarkLeaseCycleJournaled(b *testing.B) {
	jn, st, err := journal.Open(b.TempDir(), journal.Options{Sync: journal.SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	lm, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(lm, Config{TTL: time.Minute, Journal: jn, Recovered: &st})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		m.Close()
		jn.Close()
		lm.Close()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, ok, err := m.TryAcquire("bench-key")
		if err != nil || !ok {
			b.Fatalf("try: ok=%v err=%v", ok, err)
		}
		if err := m.Release("bench-key", g.Token); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCloseDoesNotJournalRevocations: a graceful Close revokes orphans
// in memory but must leave them active in the journal, so a restart
// recovers them (their holders may merely be paused).
func TestCloseDoesNotJournalRevocations(t *testing.T) {
	dir := t.TempDir()
	_, m, jn := newJournaled(t, dir, Config{TTL: time.Minute}, journal.Options{Sync: journal.SyncAlways})
	g, _, err := m.TryAcquire("orphan")
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	_, m2, jn2 := newJournaled(t, dir, Config{TTL: time.Minute}, journal.Options{})
	defer func() { m2.Close(); jn2.Close() }()
	if m2.Recovered() != 1 {
		t.Fatalf("Recovered() = %d after graceful close, want 1", m2.Recovered())
	}
	if st := liveState(m2)[("orphan")]; st.Token != g.Token {
		t.Fatalf("recovered orphan token %d, want %d", st.Token, g.Token)
	}
}
