package baseline

import (
	"fmt"
	"sync"
	"testing"
)

// allLocks builds one instance of every baseline for n processes.
func allLocks(t *testing.T, n int) []Lock {
	t.Helper()
	bak, err := NewBakery(n)
	if err != nil {
		t.Fatal(err)
	}
	pet, err := NewPeterson(n)
	if err != nil {
		t.Fatal(err)
	}
	return []Lock{NewTAS(), NewTTAS(), NewTicket(), bak, pet, NewGo()}
}

// TestMutualExclusionCounter is the standard torture test: n goroutines
// increment an unprotected counter inside the critical section; the total
// is exact iff the lock provides mutual exclusion.
func TestMutualExclusionCounter(t *testing.T) {
	const n, iters = 4, 2000
	for _, l := range allLocks(t, n) {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			t.Parallel()
			counter := 0
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				h, err := l.NewHandle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						h.Lock()
						counter++
						h.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != n*iters {
				t.Fatalf("%s: counter = %d, want %d — mutual exclusion violated", l.Name(), counter, n*iters)
			}
		})
	}
}

// TestCriticalSectionOccupancy tracks occupancy explicitly, catching
// overlaps even when increments happen to be atomic on the platform.
func TestCriticalSectionOccupancy(t *testing.T) {
	const n, iters = 3, 1000
	for _, l := range allLocks(t, n) {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			t.Parallel()
			inside := 0
			maxInside := 0
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				h, err := l.NewHandle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						h.Lock()
						inside++
						if inside > maxInside {
							maxInside = inside
						}
						inside--
						h.Unlock()
					}
				}()
			}
			wg.Wait()
			if maxInside > 1 {
				t.Fatalf("%s: %d processes inside the CS simultaneously", l.Name(), maxInside)
			}
		})
	}
}

func TestHandleLimits(t *testing.T) {
	bak, _ := NewBakery(2)
	pet, _ := NewPeterson(2)
	for _, l := range []Lock{bak, pet} {
		for i := 0; i < 2; i++ {
			if _, err := l.NewHandle(); err != nil {
				t.Fatalf("%s: handle %d rejected: %v", l.Name(), i, err)
			}
		}
		if _, err := l.NewHandle(); err == nil {
			t.Errorf("%s: handle beyond capacity accepted", l.Name())
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewBakery(0); err == nil {
		t.Error("NewBakery(0) accepted")
	}
	if _, err := NewPeterson(-1); err == nil {
		t.Error("NewPeterson(-1) accepted")
	}
}

func TestSoloAcquisition(t *testing.T) {
	for _, l := range allLocks(t, 1) {
		h, err := l.NewHandle()
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		for i := 0; i < 100; i++ {
			h.Lock()
			h.Unlock()
		}
	}
}

func TestPetersonOddN(t *testing.T) {
	// Non-power-of-two process counts must work (unused leaves idle).
	for _, n := range []int{3, 5, 6, 7} {
		l, err := NewPeterson(n)
		if err != nil {
			t.Fatal(err)
		}
		counter := 0
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			h, err := l.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					h.Lock()
					counter++
					h.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != n*500 {
			t.Fatalf("n=%d: counter = %d, want %d", n, counter, n*500)
		}
	}
}

func TestTicketIsFIFO(t *testing.T) {
	// With a single goroutine taking tickets alternately for two handles,
	// acquisition order must match ticket order. (Concurrent FIFO-ness is
	// probabilistic; this checks the mechanism.)
	l := NewTicket()
	a, _ := l.NewHandle()
	b, _ := l.NewHandle()
	order := make([]int, 0, 4)
	a.Lock()
	order = append(order, 0)
	a.Unlock()
	b.Lock()
	order = append(order, 1)
	b.Unlock()
	if fmt.Sprint(order) != "[0 1]" {
		t.Fatalf("order %v", order)
	}
}

func TestNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, l := range allLocks(t, 2) {
		if names[l.Name()] {
			t.Errorf("duplicate lock name %q", l.Name())
		}
		names[l.Name()] = true
	}
}
