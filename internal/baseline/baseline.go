// Package baseline implements classic *non-anonymous* mutual exclusion
// algorithms used as comparison points for the benchmark harness.
//
// The paper's algorithms pay for anonymity: no agreed register names, no
// process ordering, equality-only identities. These baselines get
// everything the anonymous model forbids — globally agreed register names
// and small integer process indices — and show what that information is
// worth:
//
//   - TAS / TTAS: test-and-set spin locks built from one RMW register
//     (the non-anonymous cousin of Algorithm 2 with m = 1).
//   - Ticket: FIFO spin lock from two fetch-and-increment counters.
//   - Bakery: Lamport's bakery — the classic n-process RW-register
//     algorithm (first-come first-served, no RMW operations), the natural
//     non-anonymous comparison for Algorithm 1.
//   - Peterson tournament tree: O(log n) RW-register lock.
//   - Go: sync.Mutex, the runtime's futex-based lock, as a floor.
//
// All spin loops yield to the Go scheduler (runtime.Gosched) so the
// baselines behave sensibly at any GOMAXPROCS.
package baseline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Handle is one process's handle on a lock. A Handle must be used by a
// single goroutine at a time.
type Handle interface {
	Lock()
	Unlock()
}

// Lock creates per-process handles. Implementations support up to their
// configured number of processes.
type Lock interface {
	// Name identifies the algorithm in benchmark output.
	Name() string
	// NewHandle allocates the next process slot.
	NewHandle() (Handle, error)
}

// ---------------------------------------------------------------------------
// TAS

// TAS is a test-and-set spin lock.
type TAS struct {
	flag atomic.Bool
}

// NewTAS creates a TAS lock.
func NewTAS() *TAS { return &TAS{} }

// Name implements Lock.
func (l *TAS) Name() string { return "tas" }

// NewHandle implements Lock.
func (l *TAS) NewHandle() (Handle, error) { return tasHandle{l}, nil }

type tasHandle struct{ l *TAS }

func (h tasHandle) Lock() {
	for h.l.flag.Swap(true) {
		runtime.Gosched()
	}
}

func (h tasHandle) Unlock() { h.l.flag.Store(false) }

// ---------------------------------------------------------------------------
// TTAS

// TTAS is a test-and-test-and-set spin lock: it spins on a plain read and
// attempts the swap only when the lock looks free, reducing coherence
// traffic.
type TTAS struct {
	flag atomic.Bool
}

// NewTTAS creates a TTAS lock.
func NewTTAS() *TTAS { return &TTAS{} }

// Name implements Lock.
func (l *TTAS) Name() string { return "ttas" }

// NewHandle implements Lock.
func (l *TTAS) NewHandle() (Handle, error) { return ttasHandle{l}, nil }

type ttasHandle struct{ l *TTAS }

func (h ttasHandle) Lock() {
	for {
		if !h.l.flag.Load() && !h.l.flag.Swap(true) {
			return
		}
		runtime.Gosched()
	}
}

func (h ttasHandle) Unlock() { h.l.flag.Store(false) }

// ---------------------------------------------------------------------------
// Ticket

// Ticket is a FIFO spin lock built from two counters.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// NewTicket creates a ticket lock.
func NewTicket() *Ticket { return &Ticket{} }

// Name implements Lock.
func (l *Ticket) Name() string { return "ticket" }

// NewHandle implements Lock.
func (l *Ticket) NewHandle() (Handle, error) { return ticketHandle{l}, nil }

type ticketHandle struct{ l *Ticket }

func (h ticketHandle) Lock() {
	t := h.l.next.Add(1) - 1
	for h.l.serving.Load() != t {
		runtime.Gosched()
	}
}

func (h ticketHandle) Unlock() { h.l.serving.Add(1) }

// ---------------------------------------------------------------------------
// Bakery

// Bakery is Lamport's bakery algorithm for n processes: first-come
// first-served mutual exclusion from read/write registers only. It is the
// natural non-anonymous baseline for Algorithm 1 (same register model,
// but with agreed names and ordered process indices).
type Bakery struct {
	n        int
	choosing []atomic.Bool
	number   []atomic.Uint64
	mu       sync.Mutex
	issued   int
}

// NewBakery creates a bakery lock for up to n processes.
func NewBakery(n int) (*Bakery, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: bakery needs n >= 1, got %d", n)
	}
	return &Bakery{
		n:        n,
		choosing: make([]atomic.Bool, n),
		number:   make([]atomic.Uint64, n),
	}, nil
}

// Name implements Lock.
func (l *Bakery) Name() string { return "bakery" }

// NewHandle implements Lock.
func (l *Bakery) NewHandle() (Handle, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.issued >= l.n {
		return nil, fmt.Errorf("baseline: bakery configured for %d processes", l.n)
	}
	h := &bakeryHandle{l: l, i: l.issued}
	l.issued++
	return h, nil
}

type bakeryHandle struct {
	l *Bakery
	i int
}

func (h *bakeryHandle) Lock() {
	l, i := h.l, h.i
	// Doorway: pick a number greater than everything visible.
	l.choosing[i].Store(true)
	max := uint64(0)
	for j := 0; j < l.n; j++ {
		if v := l.number[j].Load(); v > max {
			max = v
		}
	}
	l.number[i].Store(max + 1)
	l.choosing[i].Store(false)
	// Wait for everyone ahead of us (lexicographic on (number, index)).
	for j := 0; j < l.n; j++ {
		if j == i {
			continue
		}
		for l.choosing[j].Load() {
			runtime.Gosched()
		}
		for {
			nj := l.number[j].Load()
			if nj == 0 || nj > l.number[i].Load() || (nj == l.number[i].Load() && j > i) {
				break
			}
			runtime.Gosched()
		}
	}
}

func (h *bakeryHandle) Unlock() { h.l.number[h.i].Store(0) }

// ---------------------------------------------------------------------------
// Peterson tournament tree

// Peterson is a tournament tree of two-process Peterson locks supporting n
// processes with O(log n) RW-register operations per acquisition (the
// classic construction; see Herlihy & Shavit, The Art of Multiprocessor
// Programming, §2.5). Each internal tree node is a two-slot Peterson lock;
// a process climbs from its leaf to the root, playing the role given by
// the child side it arrives from. The lower levels guarantee at most one
// process occupies each role at each node.
type Peterson struct {
	n      int
	levels int
	nodes  []pnode // heap-indexed; nodes[1] is the root
	mu     sync.Mutex
	issued int
}

// pnode is one two-process Peterson lock.
type pnode struct {
	flag [2]atomic.Bool
	turn atomic.Int32
}

// NewPeterson creates a tournament lock for up to n processes.
func NewPeterson(n int) (*Peterson, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: peterson needs n >= 1, got %d", n)
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	if levels == 0 {
		levels = 1 // n == 1: one node, trivially uncontended
	}
	return &Peterson{n: n, levels: levels, nodes: make([]pnode, 1<<(levels+1))}, nil
}

// Name implements Lock.
func (l *Peterson) Name() string { return "peterson-tree" }

// NewHandle implements Lock.
func (l *Peterson) NewHandle() (Handle, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.issued >= l.n {
		return nil, fmt.Errorf("baseline: peterson configured for %d processes", l.n)
	}
	h := &petersonHandle{l: l, leaf: 1<<l.levels + l.issued}
	l.issued++
	return h, nil
}

type petersonHandle struct {
	l    *Peterson
	leaf int
	path []int // scratch: nodes visited, leaf first
}

func (h *petersonHandle) Lock() {
	h.path = h.path[:0]
	node := h.leaf
	for node > 1 {
		role := node & 1
		parent := node >> 1
		p := &h.l.nodes[parent]
		p.flag[role].Store(true)
		p.turn.Store(int32(role))
		for p.flag[1-role].Load() && p.turn.Load() == int32(role) {
			runtime.Gosched()
		}
		h.path = append(h.path, node)
		node = parent
	}
}

func (h *petersonHandle) Unlock() {
	// Release top-down: reverse of acquisition order.
	for i := len(h.path) - 1; i >= 0; i-- {
		node := h.path[i]
		h.l.nodes[node>>1].flag[node&1].Store(false)
	}
}

// ---------------------------------------------------------------------------
// Go sync.Mutex

// Go wraps sync.Mutex as the runtime-assisted floor for comparisons.
type Go struct {
	mu sync.Mutex
}

// NewGo creates a sync.Mutex-backed lock.
func NewGo() *Go { return &Go{} }

// Name implements Lock.
func (l *Go) Name() string { return "sync.Mutex" }

// NewHandle implements Lock.
func (l *Go) NewHandle() (Handle, error) { return goHandle{l}, nil }

type goHandle struct{ l *Go }

func (h goHandle) Lock()   { h.l.mu.Lock() }
func (h goHandle) Unlock() { h.l.mu.Unlock() }

// Verify interface compliance.
var (
	_ Lock = (*TAS)(nil)
	_ Lock = (*TTAS)(nil)
	_ Lock = (*Ticket)(nil)
	_ Lock = (*Bakery)(nil)
	_ Lock = (*Peterson)(nil)
	_ Lock = (*Go)(nil)
)
