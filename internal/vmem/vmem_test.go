package vmem

import (
	"bytes"
	"testing"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
)

func twoViews(t *testing.T, mem *Memory) (*View, *View) {
	t.Helper()
	g := id.NewGenerator()
	a, err := mem.NewView(g.MustNew(), perm.Identity(mem.Size()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mem.NewView(g.MustNew(), perm.Identity(mem.Size()))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, true)
}

func TestViewValidation(t *testing.T) {
	mem := New(3, true)
	g := id.NewGenerator()
	if _, err := mem.NewView(id.None, perm.Identity(3)); err == nil {
		t.Error("⊥ identity accepted")
	}
	if _, err := mem.NewView(g.MustNew(), perm.Identity(2)); err == nil {
		t.Error("size-mismatched permutation accepted")
	}
	if _, err := mem.NewView(g.MustNew(), perm.Perm{0, 0, 2}); err == nil {
		t.Error("invalid permutation accepted")
	}
}

func TestReadWriteCASThroughPerm(t *testing.T) {
	mem := New(4, true)
	g := id.NewGenerator()
	me := g.MustNew()
	v, err := mem.NewView(me, perm.Rotation(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	v.Write(0, me) // physical 1
	if got := mem.Observe(1).Val; !got.Equal(me) {
		t.Fatalf("physical 1 = %v", got)
	}
	if got := v.Read(0); !got.Equal(me) {
		t.Fatalf("local read = %v", got)
	}
	if v.CompareAndSwap(0, id.None, me) {
		t.Error("CAS ⊥→me succeeded on owned register")
	}
	if !v.CompareAndSwap(0, me, id.None) {
		t.Error("CAS me→⊥ failed")
	}
	if !mem.Observe(1).Val.IsNone() {
		t.Error("CAS did not clear register")
	}
	if mem.Writes() != 2 {
		t.Errorf("Writes = %d, want 2 (failed CAS does not count)", mem.Writes())
	}
}

func TestStampingControl(t *testing.T) {
	stamped := New(2, true)
	plain := New(2, false)
	g := id.NewGenerator()
	me := g.MustNew()
	vs, _ := stamped.NewView(me, perm.Identity(2))
	vp, _ := plain.NewView(me, perm.Identity(2))
	vs.Write(0, me)
	vp.Write(0, me)
	if s := stamped.Observe(0); !s.Writer.Equal(me) || s.Seq != 1 {
		t.Errorf("stamped write = %+v", s)
	}
	if s := plain.Observe(0); !s.Writer.IsNone() || s.Seq != 0 {
		t.Errorf("unstamped write carries metadata: %+v", s)
	}
}

func TestAppendStateExcludesStamps(t *testing.T) {
	a := New(3, true)
	b := New(3, true)
	g := id.NewGenerator()
	me := g.MustNew()
	va, _ := a.NewView(me, perm.Identity(3))
	vb, _ := b.NewView(me, perm.Identity(3))
	va.Write(0, me)
	vb.Write(0, me)
	vb.Write(0, me) // same value, different seq
	if !bytes.Equal(a.AppendState(nil), b.AppendState(nil)) {
		t.Error("state encoding depends on stamps")
	}
	vb.Write(1, me)
	if bytes.Equal(a.AppendState(nil), b.AppendState(nil)) {
		t.Error("state encoding ignores values")
	}
}

func TestSnapshotAtomic(t *testing.T) {
	mem := New(5, true)
	g := id.NewGenerator()
	me := g.MustNew()
	v, _ := mem.NewView(me, perm.Rotation(5, 2))
	v.Write(0, me)
	v.Write(4, me)
	snap := v.SnapshotAtomic(nil)
	for x, val := range snap {
		wantMine := x == 0 || x == 4
		if wantMine != val.Equal(me) {
			t.Errorf("snap[%d] = %v, wantMine %v", x, val, wantMine)
		}
	}
}

func TestStepperQuiescentTwoCollects(t *testing.T) {
	mem := New(4, true)
	va, _ := twoViews(t, mem)
	va.Write(2, va.Me())
	s := NewSnapshotStepper(va)
	steps := 0
	for !s.Step() {
		steps++
		if steps > 100 {
			t.Fatal("stepper did not finish on quiescent memory")
		}
	}
	if s.Collects() != 2 {
		t.Errorf("collects = %d, want 2", s.Collects())
	}
	if steps+1 != 8 {
		t.Errorf("total reads = %d, want 2m = 8", steps+1)
	}
	out := s.Result(nil)
	if !out[2].Equal(va.Me()) {
		t.Errorf("snapshot missed own write: %v", out)
	}
}

func TestStepperDetectsInterference(t *testing.T) {
	// A write between the two collects forces a third collect.
	mem := New(3, true)
	va, vb := twoViews(t, mem)
	s := NewSnapshotStepper(va)
	// First collect completes (3 reads).
	s.Step()
	s.Step()
	if s.Step() {
		t.Fatal("done after one collect")
	}
	// Interference.
	vb.Write(0, vb.Me())
	// Second collect differs → not done after 3 more steps.
	s.Step()
	s.Step()
	if s.Step() {
		t.Fatal("done although memory changed between collects")
	}
	// Quiescent now: third collect matches the second.
	s.Step()
	s.Step()
	if !s.Step() {
		t.Fatal("not done after two identical collects")
	}
	if got := s.Result(nil); !got[0].Equal(vb.Me()) {
		t.Errorf("snapshot does not reflect final memory: %v", got)
	}
}

func TestStepperSeesConsistentCut(t *testing.T) {
	// The stepper must never return a snapshot that mixes old and new
	// values of a happens-before pair (set A then B; clear B then A).
	mem := New(2, true)
	va, vb := twoViews(t, mem)
	other := vb.Me()
	// Interleave: reader reads A(old ⊥), writer sets A then B, reader
	// reads B(new) → collects differ → retry → consistent result.
	s := NewSnapshotStepper(va)
	s.Step()           // read A = ⊥
	vb.Write(0, other) // set A
	vb.Write(1, other) // set B
	s.Step()           // read B = other → first collect = [⊥, other] (torn!)
	// Second collect: [other, other] ≠ first → continue.
	s.Step()
	s.Step()
	// Third collect: [other, other] == second → done.
	s.Step()
	if !s.Step() {
		t.Fatal("stepper not done")
	}
	out := s.Result(nil)
	if !out[0].Equal(other) || !out[1].Equal(other) {
		t.Fatalf("returned torn snapshot %v", out)
	}
}

func TestStepperRequiresStamping(t *testing.T) {
	mem := New(2, false)
	g := id.NewGenerator()
	v, _ := mem.NewView(g.MustNew(), perm.Identity(2))
	defer func() {
		if recover() == nil {
			t.Error("stepper on unstamped memory did not panic")
		}
	}()
	NewSnapshotStepper(v)
}

func TestStepperPanicsAfterDone(t *testing.T) {
	mem := New(1, true)
	g := id.NewGenerator()
	v, _ := mem.NewView(g.MustNew(), perm.Identity(1))
	s := NewSnapshotStepper(v)
	for !s.Step() {
	}
	defer func() {
		if recover() == nil {
			t.Error("Step after done did not panic")
		}
	}()
	s.Step()
}

func TestResultPanicsBeforeDone(t *testing.T) {
	mem := New(2, true)
	g := id.NewGenerator()
	v, _ := mem.NewView(g.MustNew(), perm.Identity(2))
	s := NewSnapshotStepper(v)
	defer func() {
		if recover() == nil {
			t.Error("Result before done did not panic")
		}
	}()
	s.Result(nil)
}

func TestStepperStampSensitive(t *testing.T) {
	// Same value rewritten (⊥→me→⊥) between collects must still be
	// detected via the stamp — the ABA case a value-only comparison would
	// miss.
	mem := New(2, true)
	va, vb := twoViews(t, mem)
	s := NewSnapshotStepper(va)
	s.Step()
	if s.Step() {
		t.Fatal("done too early")
	}
	// ABA: register 0 goes ⊥ → other → ⊥.
	vb.Write(0, vb.Me())
	vb.Write(0, id.None)
	// Second collect: values identical to first, stamps differ → not done.
	s.Step()
	if s.Step() {
		t.Fatal("stepper missed an ABA interference (stamps ignored)")
	}
	// Now quiescent.
	s.Step()
	if !s.Step() {
		t.Fatal("stepper did not finish after quiescence")
	}
}
