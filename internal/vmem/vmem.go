// Package vmem implements the simulated anonymous shared memory used by
// the deterministic scheduler (internal/sched) and the model checker
// (internal/explore).
//
// Unlike internal/amem, nothing here is hardware-atomic: the scheduler
// executes exactly one operation at a time, so plain fields suffice and
// every interleaving is reproducible. The package supports two snapshot
// treatments:
//
//   - SnapshotAtomic: the whole m-register snapshot is a single scheduler
//     step. This matches how the paper's proofs reason (snapshots are
//     linearizable, so they may be treated as occurring atomically at
//     their linearization points) and keeps state spaces small for
//     exhaustive exploration.
//   - SnapshotStepper: an honest double-scan whose individual register
//     reads are separate scheduler steps, so adversarial schedules can
//     interleave writers with a snapshot in flight. Used by the
//     double-scan fidelity tests and by simulations configured with
//     honest snapshots.
//
// Stamping (the (writer, seq) metadata on every write) can be disabled;
// the model checker disables it so that global states are canonical (stamp
// counters grow monotonically and would otherwise make every state
// unique). The stepper requires stamping — without stamps a double scan
// cannot detect interference — and panics if used on an unstamped memory.
package vmem

import (
	"fmt"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/register"
)

// Memory is a simulated anonymous memory of m registers. Not safe for
// concurrent use: it belongs to one scheduler.
type Memory struct {
	cells    []register.Stamped
	stamping bool
	writes   uint64
}

// New creates a simulated memory of m registers, all ⊥. stamping controls
// whether writes record (writer, seq) metadata; disable only for
// state-space exploration with atomic snapshots.
func New(m int, stamping bool) *Memory {
	if m < 1 {
		panic(fmt.Sprintf("vmem: memory size must be >= 1, got %d", m))
	}
	return &Memory{cells: make([]register.Stamped, m), stamping: stamping}
}

// Size returns m.
func (mem *Memory) Size() int { return len(mem.cells) }

// Stamping reports whether writes carry stamps.
func (mem *Memory) Stamping() bool { return mem.stamping }

// Writes returns the total number of write/CAS-success operations applied.
func (mem *Memory) Writes() uint64 { return mem.writes }

// Observe returns the content of physical register x (external observer).
func (mem *Memory) Observe(x int) register.Stamped { return mem.cells[x] }

// Values returns a copy of all algorithmic values in physical order.
func (mem *Memory) Values() []id.ID {
	out := make([]id.ID, len(mem.cells))
	for x, c := range mem.cells {
		out[x] = c.Val
	}
	return out
}

// AppendState appends a canonical encoding of the memory's algorithmic
// content to dst. Stamps are excluded: they are metadata invisible to the
// algorithms' decisions and would defeat cycle detection.
func (mem *Memory) AppendState(dst []byte) []byte {
	for _, c := range mem.cells {
		h := id.Handle(c.Val)
		dst = append(dst, byte(h>>8), byte(h))
	}
	return dst
}

// write applies a stamped or unstamped write to physical register x.
func (mem *Memory) write(x int, val, writer id.ID, seq uint32) {
	mem.writes++
	if mem.stamping {
		mem.cells[x] = register.Stamped{Val: val, Writer: writer, Seq: seq}
		return
	}
	mem.cells[x] = register.Stamped{Val: val}
}

// View is one process's anonymous handle on the memory, mirroring
// amem.View but scheduler-driven.
type View struct {
	mem  *Memory
	perm perm.Perm
	me   id.ID
	seq  uint32
}

// NewView creates the view of this memory for process me under
// permutation p.
func (mem *Memory) NewView(me id.ID, p perm.Perm) (*View, error) {
	if me.IsNone() {
		return nil, fmt.Errorf("vmem: a view requires a process identity, got ⊥")
	}
	if len(p) != len(mem.cells) {
		return nil, fmt.Errorf("vmem: permutation size %d does not match memory size %d", len(p), len(mem.cells))
	}
	if !p.Valid() {
		return nil, fmt.Errorf("vmem: invalid permutation %v", p)
	}
	return &View{mem: mem, perm: p.Clone(), me: me}, nil
}

// Me returns the identity this view belongs to.
func (v *View) Me() id.ID { return v.me }

// Size returns m.
func (v *View) Size() int { return len(v.perm) }

// Read returns the algorithmic value of local register x.
func (v *View) Read(x int) id.ID { return v.mem.cells[v.perm[x]].Val }

// ReadStamped returns the full cell of local register x (used by the
// double-scan stepper).
func (v *View) ReadStamped(x int) register.Stamped { return v.mem.cells[v.perm[x]] }

// Write stores val into local register x with this process's stamp.
func (v *View) Write(x int, val id.ID) {
	v.seq++
	v.mem.write(v.perm[x], val, v.me, v.seq)
}

// CompareAndSwap atomically (in scheduler terms: within this single step)
// replaces local register x's value with newVal if it currently equals
// old.
func (v *View) CompareAndSwap(x int, old, newVal id.ID) bool {
	phys := v.perm[x]
	if !v.mem.cells[phys].Val.Equal(old) {
		return false
	}
	v.seq++
	v.mem.write(phys, newVal, v.me, v.seq)
	return true
}

// SnapshotAtomic returns all m algorithmic values in local order as one
// scheduler step.
func (v *View) SnapshotAtomic(dst []id.ID) []id.ID {
	if cap(dst) < len(v.perm) {
		dst = make([]id.ID, len(v.perm))
	}
	dst = dst[:len(v.perm)]
	for x, phys := range v.perm {
		dst[x] = v.mem.cells[phys].Val
	}
	return dst
}

// SnapshotStepper performs an honest double-scan snapshot one register
// read per Step call, so a scheduler can interleave other processes'
// operations between the reads. It mirrors amem.View.Snapshot exactly,
// with the scheduler supplying the interleaving instead of the hardware.
type SnapshotStepper struct {
	v         *View
	prev, cur []register.Stamped
	idx       int
	haveFirst bool // prev holds a complete collect
	done      bool
	collects  int
}

// NewSnapshotStepper starts a snapshot on v. It panics if v's memory does
// not stamp writes (the double scan would be unsound).
func NewSnapshotStepper(v *View) *SnapshotStepper {
	if !v.mem.stamping {
		panic("vmem: honest snapshot requires a stamping memory")
	}
	m := v.Size()
	return &SnapshotStepper{
		v:    v,
		prev: make([]register.Stamped, m),
		cur:  make([]register.Stamped, m),
	}
}

// Done reports whether the snapshot has completed.
func (s *SnapshotStepper) Done() bool { return s.done }

// Collects returns the number of complete collect passes performed.
func (s *SnapshotStepper) Collects() int { return s.collects }

// Step performs exactly one register read and reports whether the snapshot
// is now complete. It panics if called after completion.
func (s *SnapshotStepper) Step() bool {
	if s.done {
		panic("vmem: Step on a completed snapshot")
	}
	s.cur[s.idx] = s.v.ReadStamped(s.idx)
	s.idx++
	if s.idx < s.v.Size() {
		return false
	}
	// A collect just completed.
	s.idx = 0
	s.collects++
	if s.haveFirst && stampedEqual(s.prev, s.cur) {
		s.done = true
		return true
	}
	s.prev, s.cur = s.cur, s.prev
	s.haveFirst = true
	return false
}

// Result writes the snapshot's algorithmic values (local order) into dst,
// reusing it when capacity allows. It panics if the snapshot is not done.
func (s *SnapshotStepper) Result(dst []id.ID) []id.ID {
	if !s.done {
		panic("vmem: Result on an incomplete snapshot")
	}
	// After the final swap-free comparison, cur holds the last collect
	// and prev an identical one; use cur.
	if cap(dst) < len(s.cur) {
		dst = make([]id.ID, len(s.cur))
	}
	dst = dst[:len(s.cur)]
	for x, c := range s.cur {
		dst[x] = c.Val
	}
	return dst
}

func stampedEqual(a, b []register.Stamped) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
