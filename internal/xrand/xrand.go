// Package xrand provides a small, fast, deterministic pseudo-random number
// generator (SplitMix64) used throughout the repository wherever randomness
// is needed.
//
// Reproducibility is a first-class requirement for this project: simulated
// schedules, permutation adversaries, and workload generators must replay
// bit-identically from a seed. math/rand would work, but a local SplitMix64
// keeps the dependency surface minimal, is allocation-free, and makes the
// generator state trivially copyable (useful when forking per-process
// streams from a master seed).
//
// SplitMix64 is the mixing function from Steele, Lea, and Flood,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014). It is a
// bijection on 64-bit states, passes BigCrush when used as a stream, and is
// the standard seeder for xoshiro-family generators.
package xrand

// Rand is a deterministic SplitMix64 stream. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives a new, independent generator from r's current position.
// Forked streams do not overlap with the parent stream in practice because
// the child is seeded with a fully mixed output of the parent.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0,
// mirroring math/rand.Intn.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Uint64n returns a uniform pseudo-random uint64 in [0, n). It panics if
// n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	return r.boundedUint64(n)
}

// boundedUint64 returns a uniform value in [0, n) using rejection sampling
// to avoid modulo bias.
func (r *Rand) boundedUint64(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two: mask is exact
		return r.Uint64() & (n - 1)
	}
	// Reject values in the final partial copy of [0, n).
	max := ^uint64(0) - ^uint64(0)%n
	for {
		if v := r.Uint64(); v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits; the standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform pseudo-random boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform pseudo-random permutation of [0, n) as a slice,
// generated with the Fisher–Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, as in math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Mix64 applies the SplitMix64 finalizer to x. It is a fast, high-quality
// 64-bit hash used for state fingerprinting.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
