package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 1000", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	// Must not panic and must produce varying output.
	first := r.Uint64()
	second := r.Uint64()
	if first == second {
		t.Fatalf("zero-value generator produced constant output %d", first)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	r := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	r.Uint64n(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(99)
	const n = 8
	seen := make(map[int]bool, n)
	for i := 0; i < 10_000 && len(seen) < n; i++ {
		seen[r.Intn(n)] = true
	}
	if len(seen) != n {
		t.Fatalf("Intn(%d) covered only %d values after 10000 draws", n, len(seen))
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := New(12345)
	const n, draws = 10, 100_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for v, c := range counts {
		// Allow 10% deviation; binomial stddev here is ~300, so 1000 is >3σ.
		if c < want-want/10 || c > want+want/10 {
			t.Errorf("value %d drawn %d times, want about %d", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 16, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermVaries(t *testing.T) {
	r := New(13)
	distinct := make(map[string]bool)
	for i := 0; i < 50; i++ {
		p := r.Perm(6)
		key := ""
		for _, v := range p {
			key += string(rune('a' + v))
		}
		distinct[key] = true
	}
	if len(distinct) < 30 {
		t.Fatalf("50 draws of Perm(6) produced only %d distinct permutations", len(distinct))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(3)
	child := parent.Fork()
	// Parent and child must produce different streams.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork produced %d collisions with parent out of 100", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(9).Fork()
	b := New(9).Fork()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Mix64 must be injective; sample check over a structured input set.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100_000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestQuickBoundedUint64(t *testing.T) {
	r := New(77)
	f := func(n uint64, _ uint8) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(997)
	}
}
