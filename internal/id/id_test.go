package id

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNoneProperties(t *testing.T) {
	if !None.IsNone() {
		t.Error("None.IsNone() = false")
	}
	if !None.Equal(None) {
		t.Error("None not Equal to itself")
	}
	var zero ID
	if !zero.Equal(None) {
		t.Error("zero value ID is not None")
	}
	if None.String() != "⊥" {
		t.Errorf("None.String() = %q, want ⊥", None.String())
	}
}

func TestGeneratorUniqueness(t *testing.T) {
	g := NewGenerator()
	const n = 1000
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = g.MustNew()
	}
	for i := 0; i < n; i++ {
		if ids[i].IsNone() {
			t.Fatalf("generator issued None at %d", i)
		}
		for j := i + 1; j < n; j++ {
			if ids[i].Equal(ids[j]) {
				t.Fatalf("identities %d and %d are equal", i, j)
			}
		}
	}
}

func TestGeneratorExhaustion(t *testing.T) {
	g := NewGenerator()
	for i := 0; i < MaxIDs; i++ {
		if _, err := g.New(); err != nil {
			t.Fatalf("unexpected exhaustion at %d: %v", i, err)
		}
	}
	if _, err := g.New(); err == nil {
		t.Fatal("expected exhaustion error after MaxIDs identities")
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator()
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[uint16]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.MustNew())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				h := Handle(v)
				if seen[h] {
					t.Errorf("duplicate identity handle %d", h)
				}
				seen[h] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d distinct ids, want %d", len(seen), workers*per)
	}
}

func TestShuffledGeneratorUnique(t *testing.T) {
	g := NewShuffledGenerator(42)
	seen := make(map[uint16]bool)
	for i := 0; i < 5000; i++ {
		v := g.MustNew()
		h := Handle(v)
		if h == 0 {
			t.Fatal("shuffled generator issued None handle")
		}
		if seen[h] {
			t.Fatalf("duplicate handle %d at draw %d", h, i)
		}
		seen[h] = true
	}
}

func TestShuffledGeneratorDeterministic(t *testing.T) {
	a, b := NewShuffledGenerator(7), NewShuffledGenerator(7)
	for i := 0; i < 100; i++ {
		if !a.MustNew().Equal(b.MustNew()) {
			t.Fatal("same-seed shuffled generators diverged")
		}
	}
	c := NewShuffledGenerator(8)
	diff := false
	d := NewShuffledGenerator(7)
	for i := 0; i < 100; i++ {
		if !c.MustNew().Equal(d.MustNew()) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different-seed shuffled generators issued identical streams")
	}
}

func TestHandleRoundTrip(t *testing.T) {
	f := func(h uint16) bool {
		return Handle(FromHandle(h)) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromHandleZeroIsNone(t *testing.T) {
	if !FromHandle(0).IsNone() {
		t.Error("FromHandle(0) is not None")
	}
}

func TestNewN(t *testing.T) {
	g := NewGenerator()
	ids, err := g.NewN(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("NewN(5) returned %d ids", len(ids))
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[i].Equal(ids[j]) {
				t.Fatal("NewN returned duplicates")
			}
		}
	}
}

func TestStringDistinct(t *testing.T) {
	g := NewGenerator()
	a, b := g.MustNew(), g.MustNew()
	if a.String() == b.String() {
		t.Errorf("distinct ids render identically: %q", a.String())
	}
}

func TestRelabelingBijection(t *testing.T) {
	g := NewGenerator()
	from, _ := g.NewN(4)
	to, _ := g.NewN(4)
	r, err := NewRelabeling(from, to)
	if err != nil {
		t.Fatal(err)
	}
	for i := range from {
		if !r.Apply(from[i]).Equal(to[i]) {
			t.Errorf("Apply(from[%d]) != to[%d]", i, i)
		}
	}
	if !r.Apply(None).IsNone() {
		t.Error("relabeling moved None")
	}
	outside := g.MustNew()
	if !r.Apply(outside).Equal(outside) {
		t.Error("relabeling moved identity outside domain")
	}
}

func TestRelabelingErrors(t *testing.T) {
	g := NewGenerator()
	a, b, c := g.MustNew(), g.MustNew(), g.MustNew()
	cases := []struct {
		name     string
		from, to []ID
	}{
		{"length mismatch", []ID{a}, []ID{b, c}},
		{"dup source", []ID{a, a}, []ID{b, c}},
		{"dup target", []ID{a, b}, []ID{c, c}},
		{"none source", []ID{None}, []ID{b}},
		{"none target", []ID{a}, []ID{None}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRelabeling(tc.from, tc.to); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestEqualIsEquivalenceRelation(t *testing.T) {
	g := NewGenerator()
	ids := append([]ID{None}, mustN(t, g, 10)...)
	for _, a := range ids {
		if !a.Equal(a) {
			t.Errorf("Equal not reflexive for %v", a)
		}
		for _, b := range ids {
			if a.Equal(b) != b.Equal(a) {
				t.Errorf("Equal not symmetric for %v, %v", a, b)
			}
		}
	}
}

func mustN(t *testing.T, g *Generator, n int) []ID {
	t.Helper()
	ids, err := g.NewN(n)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}
