// Package id implements symmetric process identities.
//
// The paper's symmetry requirement (§II-C) says process identities form a
// data type that supports only comparison for equality: no order, no
// arithmetic, no conversion to integers. Go cannot express "equality-only"
// in the type system, so this package enforces the discipline structurally:
//
//   - ID is an opaque struct; its only exported predicates are Equal and
//     IsNone. Algorithm code (internal/core) must use nothing else.
//   - The None value plays the role of the paper's default value ⊥, which
//     every register initially holds. None is not a process identity;
//     processes can only distinguish "mine" / "someone else's" / "⊥".
//   - Handle and FromHandle expose the internal 16-bit representation, but
//     only for the substrate layers (register packing, tracing, state
//     fingerprints). They must never appear in protocol logic; the
//     equivariance tests in internal/core verify that algorithm behavior is
//     invariant under renaming of identities, which would fail if ordering
//     leaked into a protocol decision.
//   - Generators can issue handles in a seeded pseudo-random order
//     (NewShuffledGenerator) so that even accidental reliance on creation
//     order is exercised by tests.
//
// The 16-bit handle bounds a system at MaxIDs concurrent identities, which
// is far beyond the paper's n (register packing in internal/register uses
// the remaining bits for write stamps).
package id

import (
	"fmt"
	"sync"

	"anonmutex/internal/xrand"
)

// MaxIDs is the maximum number of distinct identities a Generator can
// issue: handle 0 is reserved for None.
const MaxIDs = 1<<16 - 1

// ID is an opaque, symmetric process identity. The zero value is None (the
// paper's ⊥). Two IDs may only be compared with Equal.
type ID struct {
	h uint16
}

// None is the default value ⊥ held by every register initially. It is not
// the identity of any process.
var None ID

// Equal reports whether a and b are the same identity (or both None). It is
// the only comparison the symmetric model permits.
func (a ID) Equal(b ID) bool { return a.h == b.h }

// IsNone reports whether a is the default value ⊥.
func (a ID) IsNone() bool { return a.h == 0 }

// String renders the identity for diagnostics and traces only. The label
// leaks the internal handle by necessity; protocol code must never inspect
// it. None renders as "⊥".
func (a ID) String() string {
	if a.h == 0 {
		return "⊥"
	}
	return fmt.Sprintf("P%d", a.h)
}

// Handle returns the internal 16-bit representation of a. Substrate use
// only (register packing, fingerprints, traces); never protocol logic.
func Handle(a ID) uint16 { return a.h }

// FromHandle reconstructs an ID from its internal representation. Substrate
// use only. FromHandle(0) is None.
func FromHandle(h uint16) ID { return ID{h: h} }

// Generator issues unique identities. It is safe for concurrent use. The
// zero value is a valid generator issuing handles in sequential order.
type Generator struct {
	mu     sync.Mutex
	issued int
	order  []uint16 // nil means sequential 1,2,3,...
}

// NewGenerator returns a generator that issues identities in an arbitrary
// (sequential) internal order.
func NewGenerator() *Generator { return &Generator{} }

// NewShuffledGenerator returns a generator that issues the same set of
// identities as NewGenerator but in a seeded pseudo-random order. Running
// test suites under shuffled generators catches any accidental dependence
// on identity creation order, which the symmetric model forbids.
func NewShuffledGenerator(seed uint64) *Generator {
	r := xrand.New(seed)
	order := make([]uint16, MaxIDs)
	for i := range order {
		order[i] = uint16(i + 1)
	}
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return &Generator{order: order}
}

// New issues a fresh identity, distinct from every identity issued so far
// by this generator. It returns an error once MaxIDs identities have been
// issued.
func (g *Generator) New() (ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.issued >= MaxIDs {
		return None, fmt.Errorf("id: generator exhausted after %d identities", MaxIDs)
	}
	g.issued++
	if g.order != nil {
		return ID{h: g.order[g.issued-1]}, nil
	}
	return ID{h: uint16(g.issued)}, nil
}

// MustNew is New for tests and examples where exhaustion is impossible; it
// panics on error.
func (g *Generator) MustNew() ID {
	v, err := g.New()
	if err != nil {
		panic(err)
	}
	return v
}

// NewN issues n fresh identities.
func (g *Generator) NewN(n int) ([]ID, error) {
	out := make([]ID, 0, n)
	for i := 0; i < n; i++ {
		v, err := g.New()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Relabeling is a bijection on identities, used by the symmetry
// (equivariance) tests: a symmetric algorithm's behavior must be invariant
// under any relabeling of the process identities.
type Relabeling struct {
	fwd map[uint16]uint16
}

// NewRelabeling builds a bijection mapping each identity in from to the
// corresponding identity in to. None always maps to None. It returns an
// error if the slices have different lengths or contain duplicates or None.
func NewRelabeling(from, to []ID) (*Relabeling, error) {
	if len(from) != len(to) {
		return nil, fmt.Errorf("id: relabeling length mismatch: %d vs %d", len(from), len(to))
	}
	fwd := make(map[uint16]uint16, len(from))
	seenTo := make(map[uint16]bool, len(to))
	for i := range from {
		if from[i].IsNone() || to[i].IsNone() {
			return nil, fmt.Errorf("id: relabeling must not involve None")
		}
		if _, dup := fwd[from[i].h]; dup {
			return nil, fmt.Errorf("id: duplicate source identity %v", from[i])
		}
		if seenTo[to[i].h] {
			return nil, fmt.Errorf("id: duplicate target identity %v", to[i])
		}
		fwd[from[i].h] = to[i].h
		seenTo[to[i].h] = true
	}
	return &Relabeling{fwd: fwd}, nil
}

// Apply maps a through the relabeling. Identities outside the bijection's
// domain (and None) map to themselves.
func (r *Relabeling) Apply(a ID) ID {
	if h, ok := r.fwd[a.h]; ok {
		return ID{h: h}
	}
	return a
}
