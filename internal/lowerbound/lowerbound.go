// Package lowerbound makes the paper's Theorem 5 executable.
//
// Theorem 5: no symmetric deadlock-free mutual exclusion algorithm exists
// for n processes over m anonymous RMW registers when m ∉ M(n). The proof
// arranges the m registers on a ring, picks ℓ | m processes (1 < ℓ ≤ n),
// gives process i the rotation-by-i·(m/ℓ) permutation, and runs the
// processes in lock steps. Symmetry (equality-only identities, common
// initial value ⊥) then forces the ℓ processes through isomorphic states
// forever, so either all enter the critical section together (violating
// mutual exclusion) or none ever does (violating deadlock-freedom).
//
// This package runs exactly that construction against real protocol
// machines and reports which horn of the dichotomy occurred:
//
//   - the paper's Algorithms 1 and 2 are safe, so on ℓ | m they take the
//     livelock horn, detected as a repeated global state;
//   - the deliberately broken strawman protocol takes the
//     simultaneous-entry horn: all ℓ processes enter in the same round.
//
// Alongside the verdict, the driver verifies the proof's key invariant at
// every round boundary: the memory contents are invariant under rotation
// by m/ℓ composed with the identity relabeling pᵢ ↦ pᵢ₊₁ — an executable
// check of the "processes at the same state" argument.
package lowerbound

import (
	"fmt"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/mset"
	"anonmutex/internal/perm"
	"anonmutex/internal/strawman"
	"anonmutex/internal/vmem"
)

// Algorithm selects the protocol to subject to the construction.
type Algorithm uint8

// Protocols runnable under the construction.
const (
	AlgRW     Algorithm = iota + 1 // Algorithm 1 (anonymous RW registers)
	AlgRMW                         // Algorithm 2 (anonymous RMW registers)
	AlgGreedy                      // broken strawman (ties admit entry)
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgRW:
		return "alg1-rw"
	case AlgRMW:
		return "alg2-rmw"
	case AlgGreedy:
		return "greedy-strawman"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Outcome is the observed horn of the Theorem 5 dichotomy.
type Outcome uint8

// Possible outcomes.
const (
	// OutcomeLivelock: the global state repeated with no entries — no
	// invocation will ever complete (deadlock-freedom horn).
	OutcomeLivelock Outcome = iota + 1
	// OutcomeSimultaneousEntry: all ℓ processes entered the critical
	// section in the same round (mutual-exclusion horn).
	OutcomeSimultaneousEntry
	// OutcomeEntry: some, but not all, processes entered — symmetry was
	// broken. Expected exactly when the construction does not apply
	// (ℓ ∤ m).
	OutcomeEntry
	// OutcomeUndecided: the round bound was reached first.
	OutcomeUndecided
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeLivelock:
		return "livelock"
	case OutcomeSimultaneousEntry:
		return "simultaneous-entry"
	case OutcomeEntry:
		return "entry"
	case OutcomeUndecided:
		return "undecided"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Verdict reports one run of the construction.
type Verdict struct {
	Alg  Algorithm
	L, M int
	// Step is the ring distance between consecutive processes' initial
	// registers: m/ℓ when ℓ | m (the theorem's placement), 1 otherwise.
	Step int
	// Applicable reports whether ℓ | m, i.e. whether the theorem's
	// construction applies and symmetry is provably unbreakable.
	Applicable bool
	Outcome    Outcome
	Rounds     int
	// Entrants is how many processes were inside the CS when the run
	// stopped.
	Entrants int
	// SymmetryHeld reports that the rotational-symmetry invariant held at
	// every checked round boundary (only checked when Applicable).
	SymmetryHeld bool
}

// Run executes the construction for the given protocol with ℓ processes on
// m registers, bounded by maxRounds lock-step rounds.
func Run(alg Algorithm, l, m, maxRounds int) (Verdict, error) {
	if l < 2 {
		return Verdict{}, fmt.Errorf("lowerbound: need at least 2 processes, got %d", l)
	}
	if m < 1 {
		return Verdict{}, fmt.Errorf("lowerbound: need at least 1 register, got %d", m)
	}
	if maxRounds <= 0 {
		maxRounds = 50_000
	}
	v := Verdict{Alg: alg, L: l, M: m, Applicable: m%l == 0, SymmetryHeld: true}
	if v.Applicable {
		v.Step = m / l
	} else {
		v.Step = 1
	}

	mem := vmem.New(m, false)
	gen := id.NewGenerator()
	ids := make([]id.ID, l)
	machines := make([]core.Machine, l)
	views := make([]*vmem.View, l)
	snapBufs := make([][]id.ID, l)
	for i := 0; i < l; i++ {
		ids[i] = gen.MustNew()
		var err error
		switch alg {
		case AlgRW:
			machines[i], err = core.NewAlg1Unchecked(ids[i], m, core.Alg1Config{})
		case AlgRMW:
			machines[i], err = core.NewAlg2Unchecked(ids[i], m, core.Alg2Config{})
		case AlgGreedy:
			machines[i] = strawman.New(ids[i], m)
		default:
			return Verdict{}, fmt.Errorf("lowerbound: unknown algorithm %v", alg)
		}
		if err != nil {
			return Verdict{}, fmt.Errorf("lowerbound: building machine %d: %w", i, err)
		}
		views[i], err = mem.NewView(ids[i], perm.Rotation(m, i*v.Step))
		if err != nil {
			return Verdict{}, fmt.Errorf("lowerbound: view %d: %w", i, err)
		}
		snapBufs[i] = make([]id.ID, m)
		if err := machines[i].StartLock(); err != nil {
			return Verdict{}, fmt.Errorf("lowerbound: starting lock %d: %w", i, err)
		}
	}

	seen := make(map[string]int, 1024)
	for round := 0; round < maxRounds; round++ {
		v.Rounds = round + 1
		inCS := 0
		for i := 0; i < l; i++ {
			mch := machines[i]
			if mch.Status() == core.StatusInCS {
				inCS++
				continue // an entered process stops taking steps
			}
			op := mch.PendingOp()
			var res core.OpResult
			switch op.Kind {
			case core.OpRead:
				res.Val = views[i].Read(op.X)
			case core.OpWrite:
				views[i].Write(op.X, op.Val)
			case core.OpCAS:
				res.Swapped = views[i].CompareAndSwap(op.X, op.Old, op.New)
			case core.OpSnapshot:
				snapBufs[i] = views[i].SnapshotAtomic(snapBufs[i])
				res.Snap = snapBufs[i]
			default:
				return Verdict{}, fmt.Errorf("lowerbound: unknown op %v", op.Kind)
			}
			if mch.Advance(res) == core.StatusInCS {
				inCS++
			}
		}

		if v.Applicable && inCS == 0 {
			if !symmetric(mem.Values(), ids, v.Step) {
				v.SymmetryHeld = false
			}
		}
		if inCS > 0 {
			v.Entrants = inCS
			if inCS == l {
				v.Outcome = OutcomeSimultaneousEntry
			} else {
				v.Outcome = OutcomeEntry
			}
			return v, nil
		}

		key := string(fingerprint(mem, machines))
		if _, dup := seen[key]; dup {
			v.Outcome = OutcomeLivelock
			return v, nil
		}
		seen[key] = round
	}
	v.Outcome = OutcomeUndecided
	return v, nil
}

// symmetric checks the proof's invariant: rotating the memory by step maps
// it onto itself with every identity advanced to the next process on the
// ring (pᵢ ↦ pᵢ₊₁, ⊥ ↦ ⊥).
func symmetric(values []id.ID, ids []id.ID, step int) bool {
	m := len(values)
	sigma := func(v id.ID) id.ID {
		if v.IsNone() {
			return v
		}
		for i := range ids {
			if v.Equal(ids[i]) {
				return ids[(i+1)%len(ids)]
			}
		}
		return v
	}
	for x := 0; x < m; x++ {
		if !values[(x+step)%m].Equal(sigma(values[x])) {
			return false
		}
	}
	return true
}

// fingerprint canonically encodes the global state at a round boundary.
func fingerprint(mem *vmem.Memory, machines []core.Machine) []byte {
	dst := mem.AppendState(nil)
	for _, m := range machines {
		dst = m.AppendState(dst)
	}
	return dst
}

// GridEntry pairs a memory size with the verdict of the construction most
// relevant for it: when m ∉ M(n) the ℓ is the smallest prime witness
// (which divides m); when m ∈ M(n) the construction cannot apply, so the
// run uses ℓ = n with step 1 and is expected to break symmetry and make
// progress.
type GridEntry struct {
	M       int
	InM     bool
	Witness int // the ℓ used
	Verdict Verdict
}

// Grid runs the construction for every m in [mLo, mHi] against a system of
// up to n processes, choosing ℓ as described on GridEntry. It reproduces
// the paper's boundary: livelock (or simultaneous entry for broken
// protocols) exactly when m ∉ M(n).
func Grid(alg Algorithm, n, mLo, mHi, maxRounds int) ([]GridEntry, error) {
	if n < 2 {
		return nil, fmt.Errorf("lowerbound: need n >= 2, got %d", n)
	}
	var out []GridEntry
	for m := mLo; m <= mHi; m++ {
		if m < 1 {
			continue
		}
		e := GridEntry{M: m, InM: mset.InM(n, m)}
		l := n
		if w, bad := mset.Witness(n, m); bad {
			l = w // smallest prime with gcd(l, m) > 1; it divides m
		}
		e.Witness = l
		v, err := Run(alg, l, m, maxRounds)
		if err != nil {
			return nil, err
		}
		e.Verdict = v
		out = append(out, e)
	}
	return out, nil
}
