package lowerbound

import (
	"testing"

	"anonmutex/internal/mset"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(AlgRW, 1, 4, 100); err == nil {
		t.Error("l=1 accepted")
	}
	if _, err := Run(AlgRW, 2, 0, 100); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Run(Algorithm(99), 2, 4, 100); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestAlg1RingLivelock: Algorithm 1 under the exact Theorem 5 construction
// takes the livelock horn, with the rotational symmetry invariant holding
// at every round.
func TestAlg1RingLivelock(t *testing.T) {
	cases := []struct{ l, m int }{
		{2, 4}, {2, 6}, {2, 8}, {3, 6}, {3, 9}, {4, 8}, {2, 2}, {5, 10},
	}
	for _, tc := range cases {
		v, err := Run(AlgRW, tc.l, tc.m, 0)
		if err != nil {
			t.Fatalf("l=%d m=%d: %v", tc.l, tc.m, err)
		}
		if !v.Applicable {
			t.Fatalf("l=%d m=%d should be applicable", tc.l, tc.m)
		}
		if v.Outcome != OutcomeLivelock {
			t.Errorf("l=%d m=%d: outcome %v, want livelock (rounds %d, entrants %d)",
				tc.l, tc.m, v.Outcome, v.Rounds, v.Entrants)
		}
		if !v.SymmetryHeld {
			t.Errorf("l=%d m=%d: rotational symmetry was broken — the construction is wrong", tc.l, tc.m)
		}
		if v.Step != tc.m/tc.l {
			t.Errorf("l=%d m=%d: step %d, want %d", tc.l, tc.m, v.Step, tc.m/tc.l)
		}
	}
}

// TestAlg2RingLivelock: same for Algorithm 2.
func TestAlg2RingLivelock(t *testing.T) {
	cases := []struct{ l, m int }{
		{2, 2}, {2, 4}, {2, 6}, {3, 3}, {3, 6}, {3, 9}, {4, 8}, {6, 12},
	}
	for _, tc := range cases {
		v, err := Run(AlgRMW, tc.l, tc.m, 0)
		if err != nil {
			t.Fatalf("l=%d m=%d: %v", tc.l, tc.m, err)
		}
		if v.Outcome != OutcomeLivelock {
			t.Errorf("l=%d m=%d: outcome %v, want livelock", tc.l, tc.m, v.Outcome)
		}
		if !v.SymmetryHeld {
			t.Errorf("l=%d m=%d: symmetry broken", tc.l, tc.m)
		}
	}
}

// TestGreedyRingSimultaneousEntry: the strawman takes the other horn — all
// ℓ processes enter the critical section in the same round, and symmetry
// still holds (which is exactly why they all enter together).
func TestGreedyRingSimultaneousEntry(t *testing.T) {
	cases := []struct{ l, m int }{
		{2, 2}, {2, 4}, {3, 6}, {4, 8}, {5, 10},
	}
	for _, tc := range cases {
		v, err := Run(AlgGreedy, tc.l, tc.m, 0)
		if err != nil {
			t.Fatalf("l=%d m=%d: %v", tc.l, tc.m, err)
		}
		if v.Outcome != OutcomeSimultaneousEntry {
			t.Errorf("l=%d m=%d: outcome %v, want simultaneous entry (entrants %d)",
				tc.l, tc.m, v.Outcome, v.Entrants)
		}
		if v.Entrants != tc.l {
			t.Errorf("l=%d m=%d: %d entrants, want all %d", tc.l, tc.m, v.Entrants, tc.l)
		}
		if !v.SymmetryHeld {
			t.Errorf("l=%d m=%d: symmetry broken before entry", tc.l, tc.m)
		}
	}
}

// TestLegalSizesProgress: when ℓ ∤ m the construction does not apply;
// symmetry breaks and somebody enters.
func TestLegalSizesProgress(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		l, m int
	}{
		{AlgRW, 2, 3}, {AlgRW, 2, 5}, {AlgRW, 3, 5}, {AlgRW, 4, 7},
		{AlgRMW, 2, 3}, {AlgRMW, 3, 5}, {AlgRMW, 2, 1}, {AlgRMW, 4, 7},
	}
	for _, tc := range cases {
		v, err := Run(tc.alg, tc.l, tc.m, 200_000)
		if err != nil {
			t.Fatalf("%v l=%d m=%d: %v", tc.alg, tc.l, tc.m, err)
		}
		if tc.m%tc.l == 0 {
			t.Fatalf("bad test case: %d divides %d", tc.l, tc.m)
		}
		if v.Applicable {
			t.Fatalf("%v l=%d m=%d claimed applicable", tc.alg, tc.l, tc.m)
		}
		if v.Outcome != OutcomeEntry {
			t.Errorf("%v l=%d m=%d: outcome %v, want entry (rounds %d)",
				tc.alg, tc.l, tc.m, v.Outcome, v.Rounds)
		}
		if v.Entrants >= tc.l {
			t.Errorf("%v l=%d m=%d: %d simultaneous entrants on a legal configuration",
				tc.alg, tc.l, tc.m, v.Entrants)
		}
	}
}

// TestGridBoundary reproduces the paper's characterization over a grid:
// for every m in range, the construction livelocks exactly when m ∉ M(n).
func TestGridBoundary(t *testing.T) {
	const n = 4
	entries, err := Grid(AlgRMW, n, 1, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 30 {
		t.Fatalf("grid has %d entries, want 30", len(entries))
	}
	for _, e := range entries {
		if e.InM != mset.InM(n, e.M) {
			t.Errorf("m=%d: grid InM=%v disagrees with mset", e.M, e.InM)
		}
		if e.InM {
			if e.Verdict.Outcome != OutcomeEntry {
				t.Errorf("m=%d ∈ M(%d): outcome %v, want entry", e.M, n, e.Verdict.Outcome)
			}
		} else {
			if e.Verdict.Outcome != OutcomeLivelock {
				t.Errorf("m=%d ∉ M(%d) (witness %d): outcome %v, want livelock",
					e.M, n, e.Witness, e.Verdict.Outcome)
			}
			if e.M%e.Witness != 0 {
				t.Errorf("m=%d: witness %d does not divide m", e.M, e.Witness)
			}
			if !e.Verdict.SymmetryHeld {
				t.Errorf("m=%d: symmetry broken in an applicable construction", e.M)
			}
		}
	}
}

func TestGridAlg1Boundary(t *testing.T) {
	const n = 3
	entries, err := Grid(AlgRW, n, 4, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		want := OutcomeLivelock
		if e.InM {
			want = OutcomeEntry
		}
		if e.Verdict.Outcome != want {
			t.Errorf("alg1 m=%d (InM=%v): outcome %v, want %v", e.M, e.InM, e.Verdict.Outcome, want)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Grid(AlgRW, 1, 1, 5, 0); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestStringers(t *testing.T) {
	for _, a := range []Algorithm{AlgRW, AlgRMW, AlgGreedy, Algorithm(99)} {
		if a.String() == "" {
			t.Errorf("empty algorithm name for %d", a)
		}
	}
	for _, o := range []Outcome{OutcomeLivelock, OutcomeSimultaneousEntry, OutcomeEntry, OutcomeUndecided, Outcome(99)} {
		if o.String() == "" {
			t.Errorf("empty outcome name for %d", o)
		}
	}
}
