package lockmgr

import (
	"context"
	"fmt"
	"sync/atomic"
)

// procHandle is the root-package process-handle surface the manager
// needs: both *anonmutex.RWProcess and *anonmutex.RMWProcess satisfy it.
type procHandle interface {
	Lock() error
	LockCtx(ctx context.Context) error
	TryLock() (bool, error)
	Unlock() error
	Close() error
}

// leasePool multiplexes an unbounded client population onto one lock's
// fixed n process handles. Handles are created lazily (a lock that only
// ever sees one client materializes one handle) and parked in a lock-free
// free list between leases, so the uncontended lease/release cycle is a
// few atomic operations with no mutex handoff and no allocation. Only
// when all n handles are leased out do blocking callers touch a channel:
// they register as waiters and park on a signal that every release posts
// after returning its handle to the free list — a timed-out waiter simply
// stops receiving, so it leaves the queue without holding, leaking, or
// reordering any handle. The pool never discards a handle while the
// entry lives — the root package's Close/re-lease cycle is exercised at
// eviction time, when closeIdle returns every slot to the lock.
type leasePool struct {
	newHandle func() (procHandle, error)

	idle     freeList     // parked idle handles (lock-free MPMC ring)
	created  atomic.Int64 // materialized handles; creation slots claimed by CAS
	capacity int64

	// waiters counts callers blocked for a handle; wake carries one
	// signal per release that observed a waiter. A waiter that consumes a
	// signal re-polls the free list, so a stolen handle only costs a
	// spurious wakeup, never a lost one.
	waiters atomic.Int64
	wake    chan struct{}
}

func newLeasePool(capacity int, newHandle func() (procHandle, error)) *leasePool {
	p := &leasePool{
		newHandle: newHandle,
		capacity:  int64(capacity),
		wake:      make(chan struct{}, capacity),
	}
	p.idle.init(capacity)
	return p
}

// lease checks out a handle: a parked one if available, a freshly
// materialized one while slots remain, and otherwise — if block is set —
// the next handle released by another client. waited reports whether the
// caller had to queue. With block unset, exhaustion returns ok=false.
// A queued caller whose ctx ends gives up with ctx's error.
func (p *leasePool) lease(ctx context.Context, block bool) (h procHandle, ok, waited bool, err error) {
	if h, ok := p.idle.pop(); ok {
		return h, true, false, nil
	}
	for {
		c := p.created.Load()
		if c >= p.capacity {
			break
		}
		if p.created.CompareAndSwap(c, c+1) {
			h, err := p.newHandle()
			if err != nil {
				p.created.Add(-1)
				return nil, false, false, err
			}
			return h, true, false, nil
		}
	}
	if !block {
		return nil, false, false, nil
	}
	// All n handles exist and are leased out: queue. The re-poll after
	// registering closes the race with a release that loaded the waiter
	// count just before we registered.
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	for {
		if h, ok := p.idle.pop(); ok {
			return h, true, true, nil
		}
		select {
		case <-p.wake:
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
}

// release parks a handle for the next lease and wakes a queued waiter if
// any is registered. The signal is posted after the handle is visible on
// the free list, so the woken waiter's re-poll finds it (or finds it
// already taken by a fast-path lease, which is just as good: the handle
// is in use, and its own release will signal again).
func (p *leasePool) release(h procHandle) {
	p.idle.push(h)
	if p.waiters.Load() > 0 {
		select {
		case p.wake <- struct{}{}:
		default:
			// The buffer already carries one pending signal per possible
			// handle; further signals are redundant — every pending one
			// forces a free-list re-poll that happens after this push.
		}
	}
}

// closeIdle closes every materialized handle. Callable only when no
// handle is leased out (the manager guarantees this via entry refcounts);
// a missing handle means a caller violated that contract.
func (p *leasePool) closeIdle() error {
	created := int(p.created.Load())
	for i := 0; i < created; i++ {
		h, ok := p.idle.pop()
		if !ok {
			return fmt.Errorf("lockmgr: pool torn down with %d of %d handles still leased",
				created-i, created)
		}
		if err := h.Close(); err != nil {
			return fmt.Errorf("lockmgr: closing pooled handle: %w", err)
		}
	}
	p.created.Store(0)
	return nil
}

// freeList is a bounded lock-free MPMC ring (Vyukov's array queue) of
// parked handles. Capacity is fixed at init; the pool never holds more
// than its n handles, so push cannot overflow.
type freeList struct {
	slots []freeSlot
	mask  uint64
	enq   atomic.Uint64
	deq   atomic.Uint64
}

// freeSlot pads each cell to its own cache line: neighboring slots are
// hammered by different cores on the lease/release fast path.
type freeSlot struct {
	seq atomic.Uint64
	h   procHandle
	_   [64 - 8 - 16]byte
}

func (q *freeList) init(capacity int) {
	size := 1
	for size < capacity {
		size <<= 1
	}
	q.slots = make([]freeSlot, size)
	q.mask = uint64(size - 1)
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
}

// push parks a handle. It never blocks and never fails: the ring is as
// large as the number of handles that exist.
func (q *freeList) push(h procHandle) {
	pos := q.enq.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				s.h = h
				s.seq.Store(pos + 1)
				return
			}
			pos = q.enq.Load()
		case d < 0:
			panic("lockmgr: free list overflow (more releases than handles)")
		default:
			pos = q.enq.Load()
		}
	}
}

// pop takes the oldest parked handle, reporting ok=false when the list is
// empty (a push mid-publication counts as empty; the pool's wake-signal
// protocol covers that window).
func (q *freeList) pop() (procHandle, bool) {
	pos := q.deq.Load()
	for {
		s := &q.slots[pos&q.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				h := s.h
				s.h = nil
				s.seq.Store(pos + q.mask + 1)
				return h, true
			}
			pos = q.deq.Load()
		case d < 0:
			return nil, false
		default:
			pos = q.deq.Load()
		}
	}
}
