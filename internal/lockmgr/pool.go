package lockmgr

import (
	"context"
	"fmt"
	"sync"
)

// procHandle is the root-package process-handle surface the manager
// needs: both *anonmutex.RWProcess and *anonmutex.RMWProcess satisfy it.
type procHandle interface {
	Lock() error
	LockCtx(ctx context.Context) error
	Unlock() error
	Close() error
}

// leasePool multiplexes an unbounded client population onto one lock's
// fixed n process handles. Handles are created lazily (a lock that only
// ever sees one client materializes one handle) and parked in a channel
// between leases; when all n are leased out, blocking callers queue on
// the channel until a release or until their context is done — a
// timed-out waiter simply stops receiving, so it leaves the queue without
// holding, leaking, or reordering any handle. The pool never discards a
// handle while the entry lives — the root package's Close/re-lease cycle
// is exercised at eviction time, when closeIdle returns every slot to the
// lock.
type leasePool struct {
	newHandle func() (procHandle, error)
	handles   chan procHandle // parked idle handles

	mu      sync.Mutex
	created int
}

func newLeasePool(capacity int, newHandle func() (procHandle, error)) *leasePool {
	return &leasePool{
		newHandle: newHandle,
		handles:   make(chan procHandle, capacity),
	}
}

// lease checks out a handle: a parked one if available, a freshly
// materialized one while slots remain, and otherwise — if block is set —
// the next handle released by another client. waited reports whether the
// caller had to queue. With block unset, exhaustion returns ok=false.
// A queued caller whose ctx ends gives up with ctx's error.
func (p *leasePool) lease(ctx context.Context, block bool) (h procHandle, ok, waited bool, err error) {
	select {
	case h := <-p.handles:
		return h, true, false, nil
	default:
	}
	p.mu.Lock()
	if p.created < cap(p.handles) {
		p.created++
		p.mu.Unlock()
		h, err := p.newHandle()
		if err != nil {
			p.mu.Lock()
			p.created--
			p.mu.Unlock()
			return nil, false, false, err
		}
		return h, true, false, nil
	}
	p.mu.Unlock()
	if !block {
		return nil, false, false, nil
	}
	select {
	case h := <-p.handles:
		return h, true, true, nil
	case <-ctx.Done():
		return nil, false, true, ctx.Err()
	}
}

// release parks a handle for the next lease.
func (p *leasePool) release(h procHandle) { p.handles <- h }

// closeIdle closes every materialized handle. Callable only when no
// handle is leased out (the manager guarantees this via entry refcounts);
// a missing handle means a caller violated that contract.
func (p *leasePool) closeIdle() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < p.created; i++ {
		select {
		case h := <-p.handles:
			if err := h.Close(); err != nil {
				return fmt.Errorf("lockmgr: closing pooled handle: %w", err)
			}
		default:
			return fmt.Errorf("lockmgr: pool torn down with %d of %d handles still leased",
				p.created-i, p.created)
		}
	}
	p.created = 0
	return nil
}
