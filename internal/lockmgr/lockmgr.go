// Package lockmgr implements a sharded named-lock manager over the root
// package's anonymous-register mutexes: the bridge between the paper's
// primitive — one deadlock-free mutex over m anonymous registers for a
// fixed set of n processes — and a service that hands out locks by name
// to an unbounded client population.
//
// Three mechanisms make the bridge:
//
//   - Sharding. Lock names hash (FNV-1a) to one of K independent shards,
//     so unrelated names never contend on manager bookkeeping.
//   - Lazy, bounded materialization. Each shard keeps an LRU-bounded
//     table of named locks; a lock's anonymous-register arena exists only
//     while the name is hot, and cold arenas are evicted (their handles
//     closed) once the table fills.
//   - Lease pooling. Every named lock is a fixed-n anonmutex lock; a
//     lease pool multiplexes arbitrarily many clients onto those n
//     process handles, built on the root package's Close/re-lease
//     lifecycle. Clients that find all n handles leased queue for the
//     next release.
//
// Acquire/AcquireCtx/TryAcquire return a Grant whose Release returns
// both the critical section and the leased handle. AcquireCtx is the
// deadline-bounded path: a waiter whose context ends leaves the lease
// queue without leaking a handle, and a leased competitor withdraws from
// the register competition through the root package's abortable back-out
// — both outcomes are counted per shard (LeaseTimeouts, Aborts). The
// manager cross-checks mutual exclusion on every grant (a per-lock
// holder counter that must step 0→1→0) and feeds per-shard contention
// and throughput counters into a stats.Table for the experiment harness
// and the lockd service.
package lockmgr

import (
	"container/list"
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex"
	"anonmutex/internal/scenario"
	"anonmutex/internal/stats"
)

// Config parameterizes a Manager. The zero value of every field means
// "default".
type Config struct {
	// Shards is the number of independent shards K (default 16).
	Shards int
	// Algorithm selects the per-name lock: scenario.AlgRW or
	// scenario.AlgRMW (default rmw — the cheaper majority entry cost).
	Algorithm string
	// HandlesPerLock is each named lock's fixed process count n ≥ 2
	// (default 8): the maximum number of clients simultaneously competing
	// for one name; further clients queue in the lease pool.
	HandlesPerLock int
	// Registers is the per-lock anonymous memory size m (default 0: the
	// smallest legal size for the algorithm and n).
	Registers int
	// MaxLocksPerShard bounds each shard's resident lock table (default
	// 1024). Beyond it, the least-recently-used idle lock is evicted.
	MaxLocksPerShard int
	// Seed drives each lock's anonymity adversary; per-name seeds are
	// derived from it so distinct names get distinct permutations.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("lockmgr: need Shards >= 1, got %d", c.Shards)
	}
	if c.Algorithm == "" {
		c.Algorithm = scenario.AlgRMW
	}
	if c.Algorithm != scenario.AlgRW && c.Algorithm != scenario.AlgRMW {
		return c, fmt.Errorf("lockmgr: unknown algorithm %q (want %s or %s)",
			c.Algorithm, scenario.AlgRW, scenario.AlgRMW)
	}
	if c.HandlesPerLock == 0 {
		c.HandlesPerLock = 8
	}
	if c.HandlesPerLock < 2 {
		return c, fmt.Errorf("lockmgr: need HandlesPerLock >= 2, got %d", c.HandlesPerLock)
	}
	if c.Registers < 0 {
		return c, fmt.Errorf("lockmgr: need Registers >= 0, got %d", c.Registers)
	}
	if c.MaxLocksPerShard == 0 {
		c.MaxLocksPerShard = 1024
	}
	if c.MaxLocksPerShard < 1 {
		return c, fmt.Errorf("lockmgr: need MaxLocksPerShard >= 1, got %d", c.MaxLocksPerShard)
	}
	return c, nil
}

// Manager is the sharded named-lock manager. Safe for concurrent use.
type Manager struct {
	cfg        Config
	shards     []*shard
	violations atomic.Uint64
}

// shard owns one partition of the name space.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	c       Counters
	latency stats.Summary // acquire latency, microseconds
}

// entry is one resident named lock.
type entry struct {
	name string
	pool *leasePool
	elem *list.Element
	refs int          // checked-out grants + queued acquirers; evictable only at 0
	held atomic.Int32 // grants inside the critical section: must step 0→1→0
}

// Counters aggregates a shard's (or with Manager.Counters, the whole
// manager's) bookkeeping.
type Counters struct {
	// Acquires and Releases count completed blocking operations;
	// TryAcquires counts attempts, TryFailures the unavailable ones.
	Acquires, Releases, TryAcquires, TryFailures uint64
	// Waits counts acquirers that queued for a handle (all n leased).
	Waits uint64
	// LeaseTimeouts counts acquirers whose context ended while queued for
	// a handle; Aborts counts acquirers that leased a handle but withdrew
	// from the register competition when their context ended. Both leave
	// the manager clean: no handle is leaked and no register keeps the
	// withdrawn process's identity.
	LeaseTimeouts, Aborts uint64
	// LockCreates and Hits split name lookups into cold and warm;
	// Evictions counts LRU teardowns.
	LockCreates, Hits, Evictions uint64
	// ResidentLocks is the current table population.
	ResidentLocks int
}

func (a Counters) add(b Counters) Counters {
	a.Acquires += b.Acquires
	a.Releases += b.Releases
	a.TryAcquires += b.TryAcquires
	a.TryFailures += b.TryFailures
	a.Waits += b.Waits
	a.LeaseTimeouts += b.LeaseTimeouts
	a.Aborts += b.Aborts
	a.LockCreates += b.LockCreates
	a.Hits += b.Hits
	a.Evictions += b.Evictions
	a.ResidentLocks += b.ResidentLocks
	return a
}

// New creates a manager.
func New(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range m.shards {
		m.shards[i] = &shard{entries: make(map[string]*entry), lru: list.New()}
	}
	return m, nil
}

// hash is FNV-1a over the name.
func hash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

func (m *Manager) shard(name string) *shard {
	return m.shards[hash(name)%uint64(len(m.shards))]
}

// newLock materializes the anonmutex lock behind one name.
func (m *Manager) newLock(name string) (func() (procHandle, error), error) {
	opts := []anonmutex.Option{anonmutex.WithSeed(m.cfg.Seed ^ hash(name))}
	if m.cfg.Registers > 0 {
		opts = append(opts, anonmutex.WithRegisters(m.cfg.Registers))
	}
	switch m.cfg.Algorithm {
	case scenario.AlgRW:
		l, err := anonmutex.NewRWLock(m.cfg.HandlesPerLock, opts...)
		if err != nil {
			return nil, err
		}
		return func() (procHandle, error) { return l.NewProcess() }, nil
	default:
		l, err := anonmutex.NewRMWLock(m.cfg.HandlesPerLock, opts...)
		if err != nil {
			return nil, err
		}
		return func() (procHandle, error) { return l.NewProcess() }, nil
	}
}

// checkout pins the entry for name (creating it, and evicting a cold one,
// as needed) and leases a handle from its pool. A caller whose ctx ends
// while queued unpins and leaves empty-handed with ctx's error, counted
// as a lease timeout.
func (m *Manager) checkout(ctx context.Context, name string, block bool) (*entry, procHandle, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	e, ok := sh.entries[name]
	if ok {
		sh.c.Hits++
		sh.lru.MoveToFront(e.elem)
	} else {
		if len(sh.entries) >= m.cfg.MaxLocksPerShard {
			sh.evictColdest()
		}
		newHandle, err := m.newLock(name)
		if err != nil {
			sh.mu.Unlock()
			return nil, nil, err
		}
		e = &entry{name: name, pool: newLeasePool(m.cfg.HandlesPerLock, newHandle)}
		e.elem = sh.lru.PushFront(e)
		sh.entries[name] = e
		sh.c.LockCreates++
	}
	e.refs++
	sh.mu.Unlock()

	h, ok, waited, err := e.pool.lease(ctx, block)
	if !ok || err != nil {
		sh.mu.Lock()
		e.refs--
		if waited {
			sh.c.Waits++
			if err != nil {
				sh.c.LeaseTimeouts++
			}
		}
		sh.mu.Unlock()
		if err != nil {
			return nil, nil, fmt.Errorf("lockmgr: acquiring %q: queued for a handle: %w", name, err)
		}
		return nil, nil, nil
	}
	if waited {
		sh.mu.Lock()
		sh.c.Waits++
		sh.mu.Unlock()
	}
	return e, h, nil
}

// evictColdest removes the least-recently-used idle entry, closing its
// pooled handles. Called with the shard lock held; a shard whose every
// entry is pinned simply overflows its bound until one goes idle.
func (sh *shard) evictColdest() {
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.refs > 0 {
			continue
		}
		// refs == 0 means every materialized handle is parked, so
		// closeIdle cannot fail; a failure would be a manager bug and the
		// entry is dropped either way (its arena is unreachable).
		_ = e.pool.closeIdle()
		sh.lru.Remove(el)
		delete(sh.entries, e.name)
		sh.c.Evictions++
		return
	}
}

// Acquire blocks until the caller holds the named lock, queueing for a
// process handle when all n are leased and then competing through the
// anonymous-register algorithm. The returned Grant's Release gives the
// lock back.
func (m *Manager) Acquire(name string) (*Grant, error) {
	return m.AcquireCtx(context.Background(), name)
}

// AcquireCtx is Acquire bounded by a context: a caller whose ctx is
// cancelled or deadlined gives up cleanly at whichever stage it has
// reached — a queued waiter leaves the lease queue (no handle leaked, no
// successor reordered), and a leased competitor withdraws from the
// anonymous-register competition via the abortable-mutex back-out before
// its handle returns to the pool. Either way AcquireCtx returns ctx's
// error (test with errors.Is) and the per-shard LeaseTimeouts or Aborts
// counter steps.
func (m *Manager) AcquireCtx(ctx context.Context, name string) (*Grant, error) {
	start := time.Now()
	e, h, err := m.checkout(ctx, name, true)
	if err != nil {
		return nil, err
	}
	if err := h.LockCtx(ctx); err != nil {
		m.checkin(e, h, false)
		sh := m.shard(name)
		sh.mu.Lock()
		sh.c.Aborts++
		sh.mu.Unlock()
		return nil, fmt.Errorf("lockmgr: acquiring %q: %w", name, err)
	}
	if e.held.Add(1) != 1 {
		m.violations.Add(1)
	}
	sh := m.shard(name)
	sh.mu.Lock()
	sh.c.Acquires++
	sh.latency.Add(float64(time.Since(start).Microseconds()))
	sh.mu.Unlock()
	return &Grant{m: m, e: e, h: h}, nil
}

// TryAcquire acquires the named lock only if it looks immediately
// available: it fails fast when another grant observably holds the lock
// or all n handles are leased out. The check is best-effort — the
// anonymous mutex has no native trylock, so a concurrent acquirer that
// wins the race after the final holder check can make TryAcquire wait
// out that acquirer's critical section. Callers that need a hard
// non-blocking bound must keep their critical sections short.
func (m *Manager) TryAcquire(name string) (*Grant, bool, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	sh.c.TryAcquires++
	if e, ok := sh.entries[name]; ok && e.held.Load() > 0 {
		sh.c.TryFailures++
		sh.mu.Unlock()
		return nil, false, nil
	}
	sh.mu.Unlock()
	e, h, err := m.checkout(context.Background(), name, false)
	if err != nil {
		return nil, false, err
	}
	if h == nil { // pool exhausted
		sh.mu.Lock()
		sh.c.TryFailures++
		sh.mu.Unlock()
		return nil, false, nil
	}
	// Re-check now that the lease is in hand: a holder that appeared
	// while we leased would otherwise make Lock below wait out its whole
	// critical section.
	if e.held.Load() > 0 {
		m.checkin(e, h, false)
		sh.mu.Lock()
		sh.c.TryFailures++
		sh.mu.Unlock()
		return nil, false, nil
	}
	if err := h.Lock(); err != nil {
		m.checkin(e, h, false)
		return nil, false, err
	}
	if e.held.Add(1) != 1 {
		m.violations.Add(1)
	}
	sh.mu.Lock()
	sh.c.Acquires++
	sh.mu.Unlock()
	return &Grant{m: m, e: e, h: h}, true, nil
}

// checkin parks the handle and unpins the entry. countRelease marks a
// completed client release (vs. an internal unwind).
func (m *Manager) checkin(e *entry, h procHandle, countRelease bool) {
	e.pool.release(h)
	sh := m.shard(e.name)
	sh.mu.Lock()
	e.refs--
	if countRelease {
		sh.c.Releases++
	}
	sh.mu.Unlock()
}

// Grant is one client's hold on a named lock.
type Grant struct {
	m        *Manager
	e        *entry
	h        procHandle
	released bool
}

// Name returns the held lock's name.
func (g *Grant) Name() string { return g.e.name }

// Release leaves the critical section and returns the leased handle to
// the lock's pool. A Grant can be released once.
func (g *Grant) Release() error {
	if g.released {
		return fmt.Errorf("lockmgr: Release of a released grant on %q", g.e.name)
	}
	g.released = true
	// Step the holder counter down while still inside the critical
	// section, so a successor's 0→1 check cannot race our decrement.
	g.e.held.Add(-1)
	if err := g.h.Unlock(); err != nil {
		return err
	}
	g.m.checkin(g.e, g.h, true)
	return nil
}

// Violations reports mutual-exclusion violations observed by the per-lock
// holder cross-check — 0 unless the underlying algorithms are broken.
func (m *Manager) Violations() uint64 { return m.violations.Load() }

// Counters returns the manager-wide aggregate.
func (m *Manager) Counters() Counters {
	var total Counters
	for _, sh := range m.shards {
		sh.mu.Lock()
		c := sh.c
		c.ResidentLocks = len(sh.entries)
		sh.mu.Unlock()
		total = total.add(c)
	}
	return total
}

// StatsTable renders per-shard contention and throughput counters in the
// experiment harness's table format (one row per shard plus a total row).
func (m *Manager) StatsTable() *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("lockmgr — %d shards, alg=%s, n=%d/lock, LRU=%d/shard",
			len(m.shards), m.cfg.Algorithm, m.cfg.HandlesPerLock, m.cfg.MaxLocksPerShard),
		Header: []string{"shard", "locks", "acquires", "releases", "waits",
			"aborts", "lease-timeouts", "try-fail", "creates", "hits", "evictions", "mean acq µs"},
	}
	var total Counters
	var latN int64
	var latSum float64
	for i, sh := range m.shards {
		sh.mu.Lock()
		c := sh.c
		c.ResidentLocks = len(sh.entries)
		n, mean := sh.latency.N(), sh.latency.Mean()
		sh.mu.Unlock()
		total = total.add(c)
		latN += n
		latSum += float64(n) * mean
		if c.Acquires == 0 && c.TryAcquires == 0 && c.ResidentLocks == 0 {
			continue // keep quiet shards out of the table
		}
		t.AddRow(i, c.ResidentLocks, c.Acquires, c.Releases, c.Waits,
			c.Aborts, c.LeaseTimeouts, c.TryFailures, c.LockCreates, c.Hits, c.Evictions, mean)
	}
	meanAll := 0.0
	if latN > 0 {
		meanAll = latSum / float64(latN)
	}
	t.AddRow("total", total.ResidentLocks, total.Acquires, total.Releases, total.Waits,
		total.Aborts, total.LeaseTimeouts, total.TryFailures, total.LockCreates,
		total.Hits, total.Evictions, meanAll)
	t.Notes = append(t.Notes,
		fmt.Sprintf("mutual-exclusion violations observed by the holder cross-check: %d", m.Violations()))
	return t
}

// Close tears the manager down, closing every pooled handle. It fails if
// any grant is still outstanding.
func (m *Manager) Close() error {
	for _, sh := range m.shards {
		sh.mu.Lock()
		for name, e := range sh.entries {
			if e.refs > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("lockmgr: Close with %d outstanding leases on %q", e.refs, name)
			}
			if err := e.pool.closeIdle(); err != nil {
				sh.mu.Unlock()
				return err
			}
			sh.lru.Remove(e.elem)
			delete(sh.entries, name)
		}
		sh.mu.Unlock()
	}
	return nil
}
