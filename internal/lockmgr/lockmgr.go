// Package lockmgr implements a sharded named-lock manager over the root
// package's anonymous-register mutexes: the bridge between the paper's
// primitive — one deadlock-free mutex over m anonymous registers for a
// fixed set of n processes — and a service that hands out locks by name
// to an unbounded client population.
//
// Three mechanisms make the bridge:
//
//   - Sharding. Lock names hash (FNV-1a) to one of K independent shards,
//     so unrelated names never contend on manager bookkeeping.
//   - Lazy, bounded materialization. Each shard keeps an LRU-bounded
//     table of named locks; a lock's anonymous-register arena exists only
//     while the name is hot, and cold arenas are evicted (their handles
//     closed) once the table fills. Recency is tracked CLOCK-style: a hit
//     only sets a touch bit, and promotion happens in batches at eviction
//     time, so the hit path's critical section is a map lookup and two
//     stores.
//   - Lease pooling. Every named lock is a fixed-n anonmutex lock; a
//     lease pool multiplexes arbitrarily many clients onto those n
//     process handles through a lock-free free list, built on the root
//     package's Close/re-lease lifecycle. Clients that find all n handles
//     leased queue for the next release.
//
// The hot path is built to stay off mutexes and off the heap: per-shard
// counters are atomics (reading Counters/StatsTable never blocks an
// acquire), entry pin counts are atomics, and the Lease-returning calls
// (AcquireLeaseCtx, AcquireFast) complete a steady-state acquire/release
// cycle with zero allocations. Acquire/AcquireCtx/TryAcquire wrap the
// same paths in a heap-allocated Grant for callers that prefer a
// self-contained handle.
//
// AcquireCtx is the deadline-bounded path: a waiter whose context ends
// leaves the lease queue without leaking a handle, and a leased
// competitor withdraws from the register competition through the root
// package's abortable back-out — both outcomes are counted per shard
// (LeaseTimeouts, Aborts). The manager cross-checks mutual exclusion on
// every grant (a per-lock holder counter that must step 0→1→0) and feeds
// per-shard contention and throughput counters into a stats.Table for
// the experiment harness and the lockd service.
package lockmgr

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex"
	"anonmutex/internal/scenario"
	"anonmutex/internal/stats"
)

// Config parameterizes a Manager. The zero value of every field means
// "default".
type Config struct {
	// Shards is the number of independent shards K (default 16).
	Shards int
	// Algorithm selects the per-name lock: scenario.AlgRW or
	// scenario.AlgRMW (default rmw — the cheaper majority entry cost).
	Algorithm string
	// HandlesPerLock is each named lock's fixed process count n ≥ 2
	// (default 8): the maximum number of clients simultaneously competing
	// for one name; further clients queue in the lease pool.
	HandlesPerLock int
	// Registers is the per-lock anonymous memory size m (default 0: the
	// smallest legal size for the algorithm and n).
	Registers int
	// MaxLocksPerShard bounds each shard's resident lock table (default
	// 1024). Beyond it, the least-recently-used idle lock is evicted.
	MaxLocksPerShard int
	// Seed drives each lock's anonymity adversary; per-name seeds are
	// derived from it so distinct names get distinct permutations.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 16
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("lockmgr: need Shards >= 1, got %d", c.Shards)
	}
	if c.Algorithm == "" {
		c.Algorithm = scenario.AlgRMW
	}
	if c.Algorithm != scenario.AlgRW && c.Algorithm != scenario.AlgRMW {
		return c, fmt.Errorf("lockmgr: unknown algorithm %q (want %s or %s)",
			c.Algorithm, scenario.AlgRW, scenario.AlgRMW)
	}
	if c.HandlesPerLock == 0 {
		c.HandlesPerLock = 8
	}
	if c.HandlesPerLock < 2 {
		return c, fmt.Errorf("lockmgr: need HandlesPerLock >= 2, got %d", c.HandlesPerLock)
	}
	if c.Registers < 0 {
		return c, fmt.Errorf("lockmgr: need Registers >= 0, got %d", c.Registers)
	}
	if c.MaxLocksPerShard == 0 {
		c.MaxLocksPerShard = 1024
	}
	if c.MaxLocksPerShard < 1 {
		return c, fmt.Errorf("lockmgr: need MaxLocksPerShard >= 1, got %d", c.MaxLocksPerShard)
	}
	return c, nil
}

// Manager is the sharded named-lock manager. Safe for concurrent use.
type Manager struct {
	cfg        Config
	shards     []*shard
	violations atomic.Uint64
}

// shardCounters is a shard's bookkeeping, updated with atomics so the
// hot path never takes the shard mutex just to count, and Counters/
// StatsTable never block an acquire to read.
type shardCounters struct {
	acquires, releases   atomic.Uint64
	revokes              atomic.Uint64
	tryAcquires          atomic.Uint64
	tryFailures          atomic.Uint64
	waits                atomic.Uint64
	leaseTimeouts        atomic.Uint64
	aborts               atomic.Uint64
	lockCreates, hits    atomic.Uint64
	evictions            atomic.Uint64
	resident             atomic.Int64
	latCount, latSumNano atomic.Uint64 // acquire latency observations
}

func (c *shardCounters) snapshot() Counters {
	return Counters{
		Acquires:      c.acquires.Load(),
		Releases:      c.releases.Load(),
		Revokes:       c.revokes.Load(),
		TryAcquires:   c.tryAcquires.Load(),
		TryFailures:   c.tryFailures.Load(),
		Waits:         c.waits.Load(),
		LeaseTimeouts: c.leaseTimeouts.Load(),
		Aborts:        c.aborts.Load(),
		LockCreates:   c.lockCreates.Load(),
		Hits:          c.hits.Load(),
		Evictions:     c.evictions.Load(),
		ResidentLocks: int(c.resident.Load()),
	}
}

// shard owns one partition of the name space. The mutex guards only the
// name table and recency list; counters are atomic, and lease traffic
// runs through each entry's lock-free pool.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry

	c shardCounters
}

// entry is one resident named lock.
type entry struct {
	name string
	sh   *shard
	pool *leasePool
	elem *list.Element
	// refs counts checked-out grants + queued acquirers; evictable only
	// at 0. Pins (0→up) happen under the shard mutex; unpins are a plain
	// atomic decrement on the release path.
	refs atomic.Int64
	// touched is the CLOCK recency bit: set on every hit (under the shard
	// mutex the hit already holds for the map lookup), consumed by
	// evictColdest, which batch-promotes touched entries instead of
	// reordering the list on every hit.
	touched bool
	held    atomic.Int32 // grants inside the critical section: must step 0→1→0
}

// Counters aggregates a shard's (or with Manager.Counters, the whole
// manager's) bookkeeping.
type Counters struct {
	// Acquires and Releases count completed blocking operations;
	// TryAcquires counts attempts, TryFailures the unavailable ones.
	Acquires, Releases, TryAcquires, TryFailures uint64
	// Revokes counts forcible releases through Revoke — a lease
	// subsystem reclaiming an orphaned holder's grant on its behalf.
	Revokes uint64
	// Waits counts acquirers that queued for a handle (all n leased).
	Waits uint64
	// LeaseTimeouts counts acquirers whose context ended while queued for
	// a handle; Aborts counts acquirers that leased a handle but withdrew
	// from the register competition when their context ended. Both leave
	// the manager clean: no handle is leaked and no register keeps the
	// withdrawn process's identity.
	LeaseTimeouts, Aborts uint64
	// LockCreates and Hits split name lookups into cold and warm;
	// Evictions counts LRU teardowns.
	LockCreates, Hits, Evictions uint64
	// ResidentLocks is the current table population.
	ResidentLocks int
}

func (a Counters) add(b Counters) Counters {
	a.Acquires += b.Acquires
	a.Releases += b.Releases
	a.Revokes += b.Revokes
	a.TryAcquires += b.TryAcquires
	a.TryFailures += b.TryFailures
	a.Waits += b.Waits
	a.LeaseTimeouts += b.LeaseTimeouts
	a.Aborts += b.Aborts
	a.LockCreates += b.LockCreates
	a.Hits += b.Hits
	a.Evictions += b.Evictions
	a.ResidentLocks += b.ResidentLocks
	return a
}

// New creates a manager.
func New(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range m.shards {
		m.shards[i] = &shard{entries: make(map[string]*entry), lru: list.New()}
	}
	return m, nil
}

// hash is FNV-1a over the name, inlined so the hot path neither
// constructs a hasher nor copies the name to a byte slice.
func hash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

func (m *Manager) shard(name string) *shard {
	return m.shards[hash(name)%uint64(len(m.shards))]
}

// newLock materializes the anonmutex lock behind one name.
func (m *Manager) newLock(name string) (func() (procHandle, error), error) {
	opts := []anonmutex.Option{anonmutex.WithSeed(m.cfg.Seed ^ hash(name))}
	if m.cfg.Registers > 0 {
		opts = append(opts, anonmutex.WithRegisters(m.cfg.Registers))
	}
	switch m.cfg.Algorithm {
	case scenario.AlgRW:
		l, err := anonmutex.NewRWLock(m.cfg.HandlesPerLock, opts...)
		if err != nil {
			return nil, err
		}
		return func() (procHandle, error) { return l.NewProcess() }, nil
	default:
		l, err := anonmutex.NewRMWLock(m.cfg.HandlesPerLock, opts...)
		if err != nil {
			return nil, err
		}
		return func() (procHandle, error) { return l.NewProcess() }, nil
	}
}

// checkout pins the entry for name (creating it, and evicting a cold one,
// as needed) and leases a handle from its pool. A caller whose ctx ends
// while queued unpins and leaves empty-handed with ctx's error, counted
// as a lease timeout.
func (m *Manager) checkout(ctx context.Context, name string, block bool) (*entry, procHandle, error) {
	sh := m.shard(name)
	sh.mu.Lock()
	e, ok := sh.entries[name]
	if ok {
		e.touched = true
		e.refs.Add(1)
		sh.mu.Unlock()
		sh.c.hits.Add(1)
	} else {
		if len(sh.entries) >= m.cfg.MaxLocksPerShard {
			sh.evictColdest()
		}
		newHandle, err := m.newLock(name)
		if err != nil {
			sh.mu.Unlock()
			return nil, nil, err
		}
		e = &entry{name: name, sh: sh, pool: newLeasePool(m.cfg.HandlesPerLock, newHandle)}
		e.refs.Store(1)
		e.elem = sh.lru.PushFront(e)
		sh.entries[name] = e
		sh.mu.Unlock()
		sh.c.lockCreates.Add(1)
		sh.c.resident.Add(1)
	}

	h, ok, waited, err := e.pool.lease(ctx, block)
	if waited {
		sh.c.waits.Add(1)
	}
	if !ok || err != nil {
		e.refs.Add(-1)
		if err != nil {
			sh.c.leaseTimeouts.Add(1)
			return nil, nil, fmt.Errorf("lockmgr: acquiring %q: queued for a handle: %w", name, err)
		}
		return nil, nil, nil
	}
	return e, h, nil
}

// evictColdest removes the least-recently-used idle entry, closing its
// pooled handles. Called with the shard lock held. The scan is the CLOCK
// second-chance pass: walking from the cold end, every pinned or touched
// entry is promoted to the front (its touch bit cleared — this is where
// the hit path's deferred MoveToFront work happens, in one batch), and
// the first cold unpinned entry is evicted. A shard whose every entry is
// pinned or perpetually touched simply overflows its bound until one
// goes idle.
func (sh *shard) evictColdest() {
	// Two passes over the list suffice: the first pass clears every touch
	// bit it meets, so the second finds a victim unless everything is
	// pinned.
	for i, el := 0, sh.lru.Back(); el != nil && i < 2*sh.lru.Len()+1; i++ {
		e := el.Value.(*entry)
		prev := el.Prev()
		if e.refs.Load() > 0 || e.touched {
			e.touched = false
			sh.lru.MoveToFront(el)
			el = prev
			continue
		}
		// refs == 0 under the shard mutex means every materialized handle
		// is parked (pins only rise under this mutex), so closeIdle cannot
		// fail; a failure would be a manager bug and the entry is dropped
		// either way (its arena is unreachable).
		_ = e.pool.closeIdle()
		sh.lru.Remove(el)
		delete(sh.entries, e.name)
		sh.c.evictions.Add(1)
		sh.c.resident.Add(-1)
		return
	}
}

// Lease is a held named lock, as returned by the allocation-free acquire
// paths (AcquireLeaseCtx, AcquireFast). A Lease is a value — nothing is
// heap-allocated per acquire — and must be given back through
// Manager.Release exactly once; the zero Lease is invalid. Callers that
// want a self-contained, misuse-checking handle use Acquire/AcquireCtx,
// which wrap the Lease in a Grant.
type Lease struct {
	e *entry
	h procHandle
}

// Valid reports whether the lease holds a lock.
func (l Lease) Valid() bool { return l.e != nil }

// Name returns the held lock's name.
func (l Lease) Name() string { return l.e.name }

// Acquire blocks until the caller holds the named lock, queueing for a
// process handle when all n are leased and then competing through the
// anonymous-register algorithm. The returned Grant's Release gives the
// lock back.
func (m *Manager) Acquire(name string) (*Grant, error) {
	return m.AcquireCtx(context.Background(), name)
}

// AcquireCtx is Acquire bounded by a context: a caller whose ctx is
// cancelled or deadlined gives up cleanly at whichever stage it has
// reached — a queued waiter leaves the lease queue (no handle leaked, no
// successor reordered), and a leased competitor withdraws from the
// anonymous-register competition via the abortable-mutex back-out before
// its handle returns to the pool. Either way AcquireCtx returns ctx's
// error (test with errors.Is) and the per-shard LeaseTimeouts or Aborts
// counter steps.
func (m *Manager) AcquireCtx(ctx context.Context, name string) (*Grant, error) {
	l, err := m.AcquireLeaseCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	return &Grant{m: m, l: l}, nil
}

// AcquireLeaseCtx is AcquireCtx without the Grant allocation: the
// steady-state acquire/release cycle through it performs zero heap
// allocations. The returned Lease must be given back through Release.
func (m *Manager) AcquireLeaseCtx(ctx context.Context, name string) (Lease, error) {
	start := time.Now()
	e, h, err := m.checkout(ctx, name, true)
	if err != nil {
		return Lease{}, err
	}
	if err := h.LockCtx(ctx); err != nil {
		m.checkin(e, h, false)
		e.sh.c.aborts.Add(1)
		return Lease{}, fmt.Errorf("lockmgr: acquiring %q: %w", name, err)
	}
	if e.held.Add(1) != 1 {
		m.violations.Add(1)
	}
	e.sh.c.acquires.Add(1)
	e.sh.c.latCount.Add(1)
	e.sh.c.latSumNano.Add(uint64(time.Since(start).Nanoseconds()))
	return Lease{e: e, h: h}, nil
}

// AcquireFast is the uncontended fast path: it acquires the named lock
// only if that succeeds without waiting — no queueing for a handle, no
// holder to wait out — and reports ok=false otherwise, leaving the
// caller to fall back to AcquireLeaseCtx with its contexts and
// cancellation machinery. The register-level attempt is the process
// handle's hard-bounded TryLock, so even a competitor that wins the
// race after the holder check costs a bounded handful of shared-memory
// operations, never a critical-section wait. It performs no heap
// allocation once the name is resident.
func (m *Manager) AcquireFast(name string) (Lease, bool, error) {
	return m.tryAcquire(name, false)
}

// TryAcquire acquires the named lock only if it is immediately
// available: it fails fast when another grant holds the lock, all n
// handles are leased out, or the bounded register-level attempt
// (TryLock: at most ~4m shared-memory operations, never a sleep) does
// not enter. It never waits out another acquirer's critical section.
func (m *Manager) TryAcquire(name string) (*Grant, bool, error) {
	l, ok, err := m.tryAcquire(name, true)
	if !ok || err != nil {
		return nil, false, err
	}
	return &Grant{m: m, l: l}, true, nil
}

// TryAcquireLease is TryAcquire without the Grant allocation: the same
// fail-fast semantics and try-op bookkeeping, returning a value Lease.
func (m *Manager) TryAcquireLease(name string) (Lease, bool, error) {
	return m.tryAcquire(name, true)
}

// tryAcquire is the shared non-blocking path. countTry selects the
// TryAcquires/TryFailures bookkeeping (client-visible try ops) — the
// AcquireFast probe stays out of those counters so stats keep meaning
// "explicit try requests".
func (m *Manager) tryAcquire(name string, countTry bool) (Lease, bool, error) {
	sh := m.shard(name)
	fail := func() (Lease, bool, error) {
		if countTry {
			sh.c.tryFailures.Add(1)
		}
		return Lease{}, false, nil
	}
	if countTry {
		sh.c.tryAcquires.Add(1)
	}
	sh.mu.Lock()
	e, ok := sh.entries[name]
	held := ok && e.held.Load() > 0
	sh.mu.Unlock()
	if held {
		return fail()
	}
	e, h, err := m.checkout(context.Background(), name, false)
	if err != nil {
		return Lease{}, false, err
	}
	if h == nil { // pool exhausted
		return fail()
	}
	// Re-check now that the lease is in hand — cheaper than burning the
	// bounded attempt below on a visibly held lock.
	if e.held.Load() > 0 {
		m.checkin(e, h, false)
		return fail()
	}
	won, err := h.TryLock()
	if err != nil {
		m.checkin(e, h, false)
		return Lease{}, false, err
	}
	if !won {
		// A competitor won the register race: the bounded attempt
		// withdrew cleanly instead of waiting out their critical section.
		m.checkin(e, h, false)
		return fail()
	}
	if e.held.Add(1) != 1 {
		m.violations.Add(1)
	}
	sh.c.acquires.Add(1)
	return Lease{e: e, h: h}, true, nil
}

// Release leaves the lease's critical section and returns the leased
// handle to the lock's pool. A Lease may be released exactly once;
// releasing a copy twice corrupts the holder cross-check (use Grant for
// a misuse-checking handle).
func (m *Manager) Release(l Lease) error {
	// Step the holder counter down while still inside the critical
	// section, so a successor's 0→1 check cannot race our decrement.
	l.e.held.Add(-1)
	if err := l.h.Unlock(); err != nil {
		return err
	}
	m.checkin(l.e, l.h, true)
	return nil
}

// Revoke forcibly releases a lease on behalf of a holder that will
// never release it itself — the lease subsystem's reclamation of an
// expired grant. The revoking goroutine executes the holder's
// register-safe critical-section exit on the orphan's own process
// handle (identity and permutation attach to the handle, not the
// goroutine — the same property the abortable withdraw relies on), so
// the anonymous-register slot is left clean and the handle returns to
// the lease pool for reuse. It is Release with its own counter: stats
// keep "the holder gave it back" and "the manager took it back"
// distinguishable.
func (m *Manager) Revoke(l Lease) error {
	l.e.held.Add(-1)
	if err := l.h.Unlock(); err != nil {
		return err
	}
	l.e.pool.release(l.h)
	l.e.refs.Add(-1)
	l.e.sh.c.revokes.Add(1)
	return nil
}

// checkin parks the handle and unpins the entry. countRelease marks a
// completed client release (vs. an internal unwind).
func (m *Manager) checkin(e *entry, h procHandle, countRelease bool) {
	e.pool.release(h)
	e.refs.Add(-1)
	if countRelease {
		e.sh.c.releases.Add(1)
	}
}

// Grant is one client's hold on a named lock: a Lease plus
// double-release protection.
type Grant struct {
	m        *Manager
	l        Lease
	released bool
}

// Name returns the held lock's name.
func (g *Grant) Name() string { return g.l.Name() }

// Release leaves the critical section and returns the leased handle to
// the lock's pool. A Grant can be released once.
func (g *Grant) Release() error {
	if g.released {
		return fmt.Errorf("lockmgr: Release of a released grant on %q", g.l.Name())
	}
	g.released = true
	return g.m.Release(g.l)
}

// Violations reports mutual-exclusion violations observed by the per-lock
// holder cross-check — 0 unless the underlying algorithms are broken.
func (m *Manager) Violations() uint64 { return m.violations.Load() }

// Counters returns the manager-wide aggregate. It reads only atomics:
// stats never serialize against acquire traffic.
func (m *Manager) Counters() Counters {
	var total Counters
	for _, sh := range m.shards {
		total = total.add(sh.c.snapshot())
	}
	return total
}

// StatsTable renders per-shard contention and throughput counters in the
// experiment harness's table format (one row per shard plus a total row).
func (m *Manager) StatsTable() *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("lockmgr — %d shards, alg=%s, n=%d/lock, LRU=%d/shard",
			len(m.shards), m.cfg.Algorithm, m.cfg.HandlesPerLock, m.cfg.MaxLocksPerShard),
		Header: []string{"shard", "locks", "acquires", "releases", "waits",
			"aborts", "lease-timeouts", "try-fail", "creates", "hits", "evictions", "mean acq µs"},
	}
	var total Counters
	var latN, latSum uint64
	for i, sh := range m.shards {
		c := sh.c.snapshot()
		n, sum := sh.c.latCount.Load(), sh.c.latSumNano.Load()
		total = total.add(c)
		latN += n
		latSum += sum
		if c.Acquires == 0 && c.TryAcquires == 0 && c.ResidentLocks == 0 {
			continue // keep quiet shards out of the table
		}
		mean := 0.0
		if n > 0 {
			mean = float64(sum) / float64(n) / 1e3
		}
		t.AddRow(i, c.ResidentLocks, c.Acquires, c.Releases, c.Waits,
			c.Aborts, c.LeaseTimeouts, c.TryFailures, c.LockCreates, c.Hits, c.Evictions, mean)
	}
	meanAll := 0.0
	if latN > 0 {
		meanAll = float64(latSum) / float64(latN) / 1e3
	}
	t.AddRow("total", total.ResidentLocks, total.Acquires, total.Releases, total.Waits,
		total.Aborts, total.LeaseTimeouts, total.TryFailures, total.LockCreates,
		total.Hits, total.Evictions, meanAll)
	t.Notes = append(t.Notes,
		fmt.Sprintf("mutual-exclusion violations observed by the holder cross-check: %d", m.Violations()))
	return t
}

// Close tears the manager down, closing every pooled handle. It fails if
// any grant is still outstanding.
func (m *Manager) Close() error {
	for _, sh := range m.shards {
		sh.mu.Lock()
		for name, e := range sh.entries {
			if refs := e.refs.Load(); refs > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("lockmgr: Close with %d outstanding leases on %q", refs, name)
			}
			if err := e.pool.closeIdle(); err != nil {
				sh.mu.Unlock()
				return err
			}
			sh.lru.Remove(e.elem)
			delete(sh.entries, name)
			sh.c.resident.Add(-1)
		}
		sh.mu.Unlock()
	}
	return nil
}
