package lockmgr

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anonmutex/internal/scenario"
)

func TestAcquireRelease(t *testing.T) {
	for _, alg := range []string{scenario.AlgRW, scenario.AlgRMW} {
		t.Run(alg, func(t *testing.T) {
			m, err := New(Config{Algorithm: alg, HandlesPerLock: 2})
			if err != nil {
				t.Fatal(err)
			}
			g, err := m.Acquire("orders/42")
			if err != nil {
				t.Fatal(err)
			}
			if g.Name() != "orders/42" {
				t.Errorf("Name() = %q", g.Name())
			}
			if err := g.Release(); err != nil {
				t.Fatal(err)
			}
			if err := g.Release(); err == nil {
				t.Error("double Release succeeded")
			}
			c := m.Counters()
			if c.Acquires != 1 || c.Releases != 1 || c.LockCreates != 1 {
				t.Errorf("counters = %+v", c)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConfigErrors(t *testing.T) {
	cases := []Config{
		{Shards: -1},
		{Algorithm: "greedy"},
		{Algorithm: "spin"},
		{HandlesPerLock: 1},
		{Registers: -3},
		{MaxLocksPerShard: -1},
		{Algorithm: scenario.AlgRW, Registers: 4, HandlesPerLock: 2}, // 4 ∉ M(2): surfaces on first acquire
	}
	for i, cfg := range cases[:len(cases)-1] {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) [case %d] succeeded", cfg, i)
		}
	}
	m, err := New(cases[len(cases)-1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("k"); err == nil {
		t.Error("Acquire with illegal register count succeeded")
	}
}

// TestMutualExclusionAcrossClients hammers a few names from many more
// clients than any lock has handles, checking exclusion two ways: a
// per-name owner token on the client side and the manager's own holder
// cross-check.
func TestMutualExclusionAcrossClients(t *testing.T) {
	m, err := New(Config{Shards: 4, HandlesPerLock: 3})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c"}
	owners := make([]atomic.Int64, len(names))
	const clients = 12
	const cycles = 40
	var violations atomic.Int64
	var wg sync.WaitGroup
	for c := 1; c <= clients; c++ {
		wg.Add(1)
		go func(me int64) {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				k := (int(me) + i) % len(names)
				g, err := m.Acquire(names[k])
				if err != nil {
					t.Error(err)
					return
				}
				if !owners[k].CompareAndSwap(0, me) {
					violations.Add(1)
				}
				if !owners[k].CompareAndSwap(me, 0) {
					violations.Add(1)
				}
				if err := g.Release(); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d client-observed mutual-exclusion violations", v)
	}
	if v := m.Violations(); v != 0 {
		t.Fatalf("%d manager-observed mutual-exclusion violations", v)
	}
	c := m.Counters()
	if want := uint64(clients * cycles); c.Acquires != want || c.Releases != want {
		t.Errorf("acquires/releases = %d/%d, want %d", c.Acquires, c.Releases, want)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseWaited pins the pool's queueing path deterministically: with
// every slot leased out, a blocking lease waits for a release.
func TestLeaseWaited(t *testing.T) {
	created := 0
	p := newLeasePool(1, func() (procHandle, error) {
		created++
		return stubHandle{}, nil
	})
	h, ok, waited, err := p.lease(context.Background(), true)
	if err != nil || !ok || waited {
		t.Fatalf("first lease: ok=%v waited=%v err=%v", ok, waited, err)
	}
	if _, ok, _, err := p.lease(context.Background(), false); ok || err != nil {
		t.Fatalf("non-blocking lease of exhausted pool: ok=%v err=%v", ok, err)
	}
	done := make(chan struct{})
	ready := make(chan struct{})
	go func() {
		defer close(done)
		close(ready) // about to queue on the exhausted pool
		h2, ok, waited, err := p.lease(context.Background(), true)
		if err != nil || !ok || !waited {
			t.Errorf("queued lease: ok=%v waited=%v err=%v", ok, waited, err)
			return
		}
		p.release(h2)
	}()
	<-ready
	time.Sleep(20 * time.Millisecond) // let the goroutine park on the pool
	p.release(h)
	<-done
	if created != 1 {
		t.Errorf("created %d handles, want 1 (the pool must recycle)", created)
	}
	if err := p.closeIdle(); err != nil {
		t.Fatal(err)
	}
}

type stubHandle struct{}

func (stubHandle) Lock() error                       { return nil }
func (stubHandle) LockCtx(ctx context.Context) error { return ctx.Err() }
func (stubHandle) TryLock() (bool, error)            { return true, nil }
func (stubHandle) Unlock() error                     { return nil }
func (stubHandle) Close() error                      { return nil }

// TestHandleMultiplexing pins the lease-pool overflow path at the
// manager level: with one client holding a 2-handle lock and two more
// acquiring, the third acquirer must queue for a handle (Waits ≥ 1), and
// all three must complete once the holder releases.
func TestHandleMultiplexing(t *testing.T) {
	m, err := New(Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Acquire("hot")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := m.Acquire("hot")
			if err != nil {
				t.Error(err)
				return
			}
			if err := g.Release(); err != nil {
				t.Error(err)
			}
		}()
	}
	// Let both acquirers reach the pool: one leases the second handle and
	// spins in the algorithm, the other queues for a lease.
	time.Sleep(100 * time.Millisecond)
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	c := m.Counters()
	if c.Waits == 0 {
		t.Error("third acquirer on a 2-handle lock never queued for a lease")
	}
	if c.Acquires != 3 || c.Releases != 3 {
		t.Errorf("acquires/releases = %d/%d, want 3/3", c.Acquires, c.Releases)
	}
	if v := m.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTryAcquire(t *testing.T) {
	m, err := New(Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, ok, err := m.TryAcquire("k")
	if err != nil || !ok {
		t.Fatalf("first TryAcquire: ok=%v err=%v", ok, err)
	}
	if _, ok, err := m.TryAcquire("k"); err != nil || ok {
		t.Fatalf("TryAcquire of a held lock: ok=%v err=%v", ok, err)
	}
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	g2, ok, err := m.TryAcquire("k")
	if err != nil || !ok {
		t.Fatalf("TryAcquire after release: ok=%v err=%v", ok, err)
	}
	if err := g2.Release(); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.TryAcquires != 3 || c.TryFailures != 1 {
		t.Errorf("try counters = %+v", c)
	}
}

func TestLRUEviction(t *testing.T) {
	m, err := New(Config{Shards: 1, MaxLocksPerShard: 2, HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		g, err := m.Acquire(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Release(); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Counters()
	if c.ResidentLocks > 2 {
		t.Errorf("resident locks = %d, want <= 2", c.ResidentLocks)
	}
	if c.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", c.Evictions)
	}
	// An evicted name is simply cold: re-acquiring materializes it again.
	g, err := m.Acquire("key-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	if got := m.Counters().LockCreates; got != 6 {
		t.Errorf("lock creates = %d, want 6 (5 cold names + 1 re-materialization)", got)
	}
}

// TestEvictionSkipsPinnedEntries fills a 1-entry shard while the resident
// lock is held: the held entry must survive and the table overflow.
func TestEvictionSkipsPinnedEntries(t *testing.T) {
	m, err := New(Config{Shards: 1, MaxLocksPerShard: 1, HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Acquire("pinned")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.Acquire("other")
	if err != nil {
		t.Fatal(err)
	}
	// Both grants must still be valid: release in either order.
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	if err := g2.Release(); err != nil {
		t.Fatal(err)
	}
	if v := m.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
}

func TestCloseRejectsOutstandingGrants(t *testing.T) {
	m, err := New(Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Acquire("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Error("Close with an outstanding grant succeeded")
	}
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsTable(t *testing.T) {
	m, err := New(Config{Shards: 2, HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x", "y", "z"} {
		g, err := m.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Release(); err != nil {
			t.Fatal(err)
		}
	}
	tbl := m.StatsTable()
	out := tbl.String()
	if !strings.Contains(out, "total") {
		t.Errorf("stats table missing total row:\n%s", out)
	}
	if !strings.Contains(out, "violations observed by the holder cross-check: 0") {
		t.Errorf("stats table missing violation note:\n%s", out)
	}
	if len(tbl.Rows) < 2 {
		t.Errorf("expected at least one shard row plus total, got %d rows", len(tbl.Rows))
	}
}
