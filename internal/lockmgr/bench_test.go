package lockmgr_test

// Manager hot-path benchmarks: uncontended acquire/release on one name,
// try-acquire, and a contended parallel mix. Tracked in
// BENCH_baseline.json; run with
//
//	go test -bench . -benchmem ./internal/lockmgr
import (
	"context"
	"fmt"
	"testing"

	"anonmutex/internal/lockmgr"
)

func benchManager(b *testing.B) *lockmgr.Manager {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := mgr.Close(); err != nil {
			b.Fatal(err)
		}
	})
	return mgr
}

// BenchmarkAcquireRelease_Solo is the uncontended steady-state cycle on a
// single hot name: the path every lockd request takes when the lock is
// free.
func BenchmarkAcquireRelease_Solo(b *testing.B) {
	mgr := benchManager(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := mgr.Acquire("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Release(); err != nil {
			b.Fatal(err)
		}
	}
	if v := mgr.Violations(); v != 0 {
		b.Fatalf("violations = %d", v)
	}
}

// BenchmarkAcquireRelease_SoloLease is the allocation-free variant of the
// solo cycle: the Lease API the lockd server drives.
func BenchmarkAcquireRelease_SoloLease(b *testing.B) {
	mgr := benchManager(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := mgr.AcquireLeaseCtx(ctx, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := mgr.Release(l); err != nil {
			b.Fatal(err)
		}
	}
	if v := mgr.Violations(); v != 0 {
		b.Fatalf("violations = %d", v)
	}
}

// BenchmarkAcquireFast_Solo is the uncontended fast-path probe the lockd
// acquire op takes before falling back to the context machinery.
func BenchmarkAcquireFast_Solo(b *testing.B) {
	mgr := benchManager(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, ok, err := mgr.AcquireFast("bench")
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("uncontended AcquireFast failed")
		}
		if err := mgr.Release(l); err != nil {
			b.Fatal(err)
		}
	}
	if v := mgr.Violations(); v != 0 {
		b.Fatalf("violations = %d", v)
	}
}

// BenchmarkTryAcquire_Solo is the non-blocking probe on a free name.
func BenchmarkTryAcquire_Solo(b *testing.B) {
	mgr := benchManager(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, ok, err := mgr.TryAcquire("bench")
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("uncontended TryAcquire failed")
		}
		if err := g.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAcquireRelease_Contended runs P goroutines over a small hot key
// space, exercising shard bookkeeping, lease pooling, and the anonymous
// protocols under real contention.
func BenchmarkAcquireRelease_Contended(b *testing.B) {
	for _, keys := range []int{1, 16} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			mgr := benchManager(b)
			names := make([]string, keys)
			for i := range names {
				names[i] = fmt.Sprintf("key-%04d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					name := names[i%keys]
					i++
					g, err := mgr.Acquire(name)
					if err != nil {
						b.Error(err)
						return
					}
					if err := g.Release(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if v := mgr.Violations(); v != 0 {
				b.Fatalf("violations = %d", v)
			}
		})
	}
}

// BenchmarkStats measures the counter snapshot path (satellite: it must
// not serialize against the shards' acquire traffic).
func BenchmarkStats(b *testing.B) {
	mgr := benchManager(b)
	g, err := mgr.Acquire("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer g.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mgr.Counters()
		if c.Acquires == 0 {
			b.Fatal("no acquires counted")
		}
	}
}
