package lockmgr

// AcquireCtx tests: deadline-bounded acquisition must give up cleanly at
// both stages — queued for a handle, and competing for the registers —
// without leaking handles or corrupting the manager.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAcquireCtxAbortsCompetition pins the withdraw stage: with the lock
// held, a second handle's bounded acquire must time out, step the Aborts
// counter, and leave the lock perfectly reusable.
func TestAcquireCtxAbortsCompetition(t *testing.T) {
	m, err := New(Config{HandlesPerLock: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Acquire("hot")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	if _, err := m.AcquireCtx(ctx, "hot"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AcquireCtx on a held lock = %v, want DeadlineExceeded", err)
	}
	c := m.Counters()
	if c.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", c.Aborts)
	}
	if c.LeaseTimeouts != 0 {
		t.Fatalf("LeaseTimeouts = %d, want 0 (a handle was free)", c.LeaseTimeouts)
	}
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	// The withdrawn competitor left no residue: an unbounded acquire must
	// complete immediately-ish.
	g2, err := m.AcquireCtx(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Release(); err != nil {
		t.Fatal(err)
	}
	if v := m.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close after aborts: %v (leaked handle?)", err)
	}
}

// TestAcquireCtxLeaseTimeout pins the queue stage: with every handle
// leased out, a bounded acquire must leave the queue with
// DeadlineExceeded, step LeaseTimeouts, and leak nothing.
func TestAcquireCtxLeaseTimeout(t *testing.T) {
	m, err := New(Config{HandlesPerLock: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := m.Acquire("hot")
	if err != nil {
		t.Fatal(err)
	}
	// Lease the second handle and keep it out of the pool by letting it
	// compete (and time out) slowly in the background... simpler: occupy
	// it with another bounded competitor that is still running when the
	// queued caller times out.
	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		m.AcquireCtx(ctx, "hot") // holds the second handle for ~100ms
	}()
	time.Sleep(10 * time.Millisecond) // let it lease the second handle
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := m.AcquireCtx(ctx, "hot"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued AcquireCtx = %v, want DeadlineExceeded", err)
	}
	c := m.Counters()
	if c.LeaseTimeouts != 1 {
		t.Fatalf("LeaseTimeouts = %d, want 1 (counters: %+v)", c.LeaseTimeouts, c)
	}
	<-occupied
	if err := g1.Release(); err != nil {
		t.Fatal(err)
	}
	g, err := m.Acquire("hot")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close after lease timeout: %v (leaked handle or pinned entry?)", err)
	}
}

// TestAcquireCtxUnboundedEquivalence: AcquireCtx(Background) is exactly
// Acquire.
func TestAcquireCtxUnboundedEquivalence(t *testing.T) {
	m, err := New(Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.AcquireCtx(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.Acquires != 1 || c.Aborts != 0 || c.LeaseTimeouts != 0 {
		t.Fatalf("counters after unbounded acquire: %+v", c)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
