package experiments

import (
	"strconv"
	"testing"
)

// TestLeaseSweepStructure checks S5's grid: the full TTL × heartbeat ×
// rate cross appears, every cell reads 0 violations, every cell's
// crash fraction actually fired and was recovered by lease expiry, and
// the worst post-run recovery stays within 2×TTL plus the sweep's
// scheduling slack.
func TestLeaseSweepStructure(t *testing.T) {
	tbl, err := LeaseSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 TTLs × 2 heartbeats × 2 rates)", len(tbl.Rows))
	}
	ttls := map[string]int{}
	for _, row := range tbl.Rows {
		ttls[row[0]]++
		if violations := row[8]; violations != "0" {
			t.Errorf("cell ttl=%s hb=%s rate=%s observed %s violations", row[0], row[1], row[2], violations)
		}
		crashes, err1 := strconv.Atoi(row[5])
		expired, err2 := strconv.Atoi(row[6])
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable counters in row %v", row)
		}
		if crashes == 0 {
			t.Errorf("cell ttl=%s hb=%s rate=%s: crash fraction never fired", row[0], row[1], row[2])
		}
		if expired == 0 {
			t.Errorf("cell ttl=%s hb=%s rate=%s: crashes were never recovered by expiry", row[0], row[1], row[2])
		}
		recoveryMS, err := strconv.ParseFloat(row[9], 64)
		if err != nil {
			t.Fatalf("unparseable recovery in row %v", row)
		}
		ttl, err := strconv.ParseFloat(row[0][:len(row[0])-2], 64) // "25ms" → 25
		if err != nil {
			t.Fatalf("unparseable ttl in row %v", row)
		}
		if bound := 2*ttl + 250; recoveryMS > bound {
			t.Errorf("cell ttl=%s hb=%s rate=%s: recovery %.1fms past bound %.0fms", row[0], row[1], row[2], recoveryMS, bound)
		}
	}
	if len(ttls) != 2 {
		t.Errorf("TTL coverage = %v, want 2 distinct TTLs", ttls)
	}
}
