package experiments

import (
	"strconv"
	"testing"
)

// TestDeadlineSweepStructure checks S3's exact columns: attempts must
// balance (cycles + aborts), violations must be 0 everywhere, and both
// backends must appear.
func TestDeadlineSweepStructure(t *testing.T) {
	tbl, err := DeadlineSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (5 inproc + 1 lockd)", len(tbl.Rows))
	}
	backends := map[string]int{}
	for _, row := range tbl.Rows {
		backends[row[0]]++
		attempts, err1 := strconv.Atoi(row[5])
		cycles, err2 := strconv.Atoi(row[6])
		aborts, err3 := strconv.Atoi(row[7])
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable counts in row %v", row)
		}
		if attempts != 360 {
			t.Errorf("%s/%s/%s ran %d attempts, want 360", row[0], row[1], row[2], attempts)
		}
		if cycles+aborts != attempts {
			t.Errorf("%s/%s/%s: cycles %d + aborts %d != attempts %d", row[0], row[1], row[2], cycles, aborts, attempts)
		}
		if violations := row[9]; violations != "0" {
			t.Errorf("%s/%s/%s observed %s violations", row[0], row[1], row[2], violations)
		}
	}
	if backends["inproc"] != 5 || backends["lockd"] != 1 {
		t.Errorf("backend coverage = %v", backends)
	}
}
