package experiments

import (
	"fmt"
	"time"

	"anonmutex/internal/chaos"
	"anonmutex/internal/stats"
)

// ClusterSweep (experiment S6) is the failover grid: cluster size ×
// keyspace width × offered rate over the full clustered lockd path —
// gossip membership, rendezvous ownership, redirect-routed clients —
// with the owner of a probed key killed outright at half duration.
// Each cell runs the kill-a-node chaos scenario body, which enforces
// the cluster spec's invariants before returning: zero mutual-exclusion
// violations through the handoff, every key (the moved ones included)
// re-acquirable within the failure detector's budget (DeadAfter = 2×TTL
// plus scheduling slack), and every post-failover fencing token
// strictly above its pre-kill grant. The single-node rows are the
// baseline — nothing to kill, no handoff — so the grid separates the
// cost of surviving a crash from the cost of merely being clustered.
func ClusterSweep() (*stats.Table, error) {
	t := &stats.Table{
		Title: "S6 — cluster failover sweep: nodes × keys × offered rate, one owner killed mid-run",
		Header: []string{"nodes", "keys", "offered/s", "kill", "cycles",
			"expired", "revoked", "fenced", "violations", "max recovery ms"},
	}
	const ttl = 50 * time.Millisecond
	const cellTime = 250 * time.Millisecond
	cell := 0
	for _, nodes := range []int{1, 3} {
		for _, keys := range []int{4, 16} {
			for _, rate := range []float64{400, 4_000} {
				cell++
				r, err := chaos.RunClusterFailover(chaos.ClusterConfig{
					Config:     chaos.Config{TTL: ttl, Duration: cellTime, Seed: uint64(1200 + cell)},
					Nodes:      nodes,
					Keys:       keys,
					RatePerSec: rate,
				})
				if err != nil {
					return nil, fmt.Errorf("S6 nodes=%d keys=%d rate=%g: %w", nodes, keys, rate, err)
				}
				kill := "owner@t/2"
				if nodes == 1 {
					kill = "-"
				}
				t.AddRow(nodes, keys, rate, kill, r.Cycles,
					r.Expired, r.Revoked, r.FencedRejects, r.Violations,
					float64(r.MaxRecovery.Microseconds())/1000)
			}
		}
	}
	t.Notes = append(t.Notes,
		"each multi-node cell kills the owner of a probed key at half duration; the load keeps arriving open-loop while ownership moves",
		"max recovery is the worst post-kill blocking acquire over every key — the scenario body fails the cell past 2×TTL plus scheduling slack",
		"per-key fencing tokens are checked strictly increasing across the handoff (new owners grant from the advanced epoch's floor); the violations column is exact and must be 0",
		"single-node rows are the no-failover baseline: same clustered code path, nothing killed")
	return t, nil
}
