package experiments

import (
	"fmt"
	"time"

	"anonmutex/internal/chaos"
	"anonmutex/internal/stats"
)

// ClusterSweep (experiment S6) is the failover grid: cluster size ×
// keyspace width × offered rate × routing mode over the full clustered
// lockd path — gossip membership, rendezvous ownership, and either
// redirect-routed clients or server-side proxy forwarding — with the
// owner of a probed key killed outright at half duration.
// Each cell runs the kill-a-node chaos scenario body, which enforces
// the cluster spec's invariants before returning: zero mutual-exclusion
// violations through the handoff, every key (the moved ones included)
// re-acquirable within the failure detector's budget (DeadAfter = 2×TTL
// plus scheduling slack), and every post-failover fencing token
// strictly above its pre-kill grant. The single-node rows are the
// baseline — nothing to kill, no handoff — so the grid separates the
// cost of surviving a crash from the cost of merely being clustered.
func ClusterSweep() (*stats.Table, error) {
	t := &stats.Table{
		Title: "S6 — cluster failover sweep: nodes × keys × offered rate × routing mode, one owner killed mid-run",
		Header: []string{"nodes", "keys", "offered/s", "mode", "kill", "cycles",
			"expired", "revoked", "fenced", "violations", "max recovery ms"},
	}
	const ttl = 50 * time.Millisecond
	const cellTime = 250 * time.Millisecond
	cell := 0
	for _, nodes := range []int{1, 3} {
		for _, keys := range []int{4, 16} {
			for _, rate := range []float64{400, 4_000} {
				for _, proxy := range []bool{false, true} {
					if proxy && nodes == 1 {
						// Single-node: every key is local, the forwarding
						// pool would never carry an op. Skip the duplicate.
						continue
					}
					cell++
					r, err := chaos.RunClusterFailover(chaos.ClusterConfig{
						Config:     chaos.Config{TTL: ttl, Duration: cellTime, Seed: uint64(1200 + cell)},
						Nodes:      nodes,
						Keys:       keys,
						RatePerSec: rate,
						Proxy:      proxy,
					})
					if err != nil {
						return nil, fmt.Errorf("S6 nodes=%d keys=%d rate=%g proxy=%v: %w", nodes, keys, rate, proxy, err)
					}
					mode := "redirect"
					if proxy {
						mode = "proxy"
					}
					kill := "owner@t/2"
					if nodes == 1 {
						kill = "-"
					}
					t.AddRow(nodes, keys, rate, mode, kill, r.Cycles,
						r.Expired, r.Revoked, r.FencedRejects, r.Violations,
						float64(r.MaxRecovery.Microseconds())/1000)
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"each multi-node cell kills the owner of a probed key at half duration; the load keeps arriving open-loop while ownership moves",
		"max recovery is the worst post-kill blocking acquire over every key — the scenario body fails the cell past 2×TTL plus scheduling slack",
		"per-key fencing tokens are checked strictly increasing across the handoff (new owners grant from the advanced epoch's floor); the violations column is exact and must be 0",
		"single-node rows are the no-failover baseline: same clustered code path, nothing killed",
		"proxy rows route cross-node ops through the inter-node forwarding pool instead of client redirects; post-failover the survivors re-route forwards server-side the moment their view advances, so the recovery ramp does not wait on every client's cache invalidation")
	return t, nil
}
