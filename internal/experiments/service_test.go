package experiments

import (
	"testing"
)

// TestServiceSweepStructure checks S2's exact columns: every row must
// complete all cycles with zero violations, and the sweep must cover
// both backends.
func TestServiceSweepStructure(t *testing.T) {
	tbl, err := ServiceSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (5 inproc + 1 lockd)", len(tbl.Rows))
	}
	backends := map[string]int{}
	for _, row := range tbl.Rows {
		backends[row[0]]++
		if cycles := row[5]; cycles != "240" {
			t.Errorf("%s/%s/%s completed %s cycles, want 240", row[0], row[1], row[2], cycles)
		}
		if violations := row[6]; violations != "0" {
			t.Errorf("%s/%s/%s observed %s violations", row[0], row[1], row[2], violations)
		}
	}
	if backends["inproc"] != 5 || backends["lockd"] != 1 {
		t.Errorf("backend coverage = %v", backends)
	}
}
