package experiments

import (
	"strings"
	"testing"

	"anonmutex/internal/scenario"
)

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 16 {
		t.Fatalf("expected 16 experiments, have %d", len(seen))
	}
}

func TestScenarioSuite(t *testing.T) {
	tbl, err := ScenarioSuite()
	if err != nil {
		t.Fatal(err)
	}
	simRows, realRows := 0, 0
	for _, row := range tbl.Rows {
		switch row[1] {
		case "sim":
			simRows++
		case "real":
			realRows++
		default:
			t.Errorf("unknown substrate in row %v", row)
		}
		if row[7] != "0" {
			t.Errorf("ME violations in row %v", row)
		}
		if row[5] == "step bound" {
			t.Errorf("scenario hit the step bound: %v", row)
		}
	}
	if simRows == 0 || realRows == 0 {
		t.Fatalf("expected rows on both substrates, got sim=%d real=%d", simRows, realRows)
	}
	// Every registered scenario contributes a sim row.
	if simRows != len(scenario.Names()) {
		t.Errorf("%d sim rows for %d scenarios", simRows, len(scenario.Names()))
	}
}

func TestRunConcurrentMatchesSerial(t *testing.T) {
	// The three cheapest deterministic experiments, twice: once serially,
	// once on a pool. Tables must match cell for cell, in presentation
	// order.
	var list []Experiment
	for _, idStr := range []string{"T1", "E7", "E10"} {
		e, err := ByID(idStr)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, e)
	}
	serial := RunConcurrent(list, 1)
	pooled := RunConcurrent(list, 3)
	if len(serial) != len(list) || len(pooled) != len(list) {
		t.Fatalf("outcome counts: serial %d, pooled %d", len(serial), len(pooled))
	}
	for i := range list {
		if serial[i].Err != nil || pooled[i].Err != nil {
			t.Fatalf("errors: serial %v, pooled %v", serial[i].Err, pooled[i].Err)
		}
		if serial[i].ID != list[i].ID || pooled[i].ID != list[i].ID {
			t.Fatalf("presentation order broken: %s/%s at slot %s", serial[i].ID, pooled[i].ID, list[i].ID)
		}
		if serial[i].Table.String() != pooled[i].Table.String() {
			t.Errorf("%s: concurrent run changed the table", list[i].ID)
		}
	}
	// parallel <= 0 means GOMAXPROCS; must still work.
	for _, o := range RunConcurrent(list[:1], 0) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("T1")
	if err != nil || e.ID != "T1" {
		t.Fatalf("ByID(T1) = %+v, %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	tbl, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// The three correspondence rows of the paper's Table I (whitespace
	// normalized: column padding is presentation detail).
	norm := strings.Join(strings.Fields(out), " ")
	for _, want := range []string{"R[1] R[2] R[3]", "R[2] R[3] R[1]", "R[3] R[1] R[2]"} {
		if !strings.Contains(norm, want) {
			t.Errorf("Table I output missing row %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "2, 3, 1") || !strings.Contains(out, "3, 1, 2") {
		t.Errorf("Table I missing permutation row:\n%s", out)
	}
}

func TestFigure1Properties(t *testing.T) {
	tbl, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if strings.Contains(out, "false") {
		t.Errorf("a Figure 1 run did not complete:\n%s", out)
	}
	// Every row's ME-violations column must be 0 and the exhaustive note
	// must confirm 0/0.
	if !strings.Contains(out, "ME violations 0, progress traps 0") {
		t.Errorf("model-check note missing or failing:\n%s", out)
	}
	for _, row := range tbl.Rows {
		if row[4] != "0" {
			t.Errorf("ME violations in row %v", row)
		}
	}
}

func TestFigure2Properties(t *testing.T) {
	tbl, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[4] != "0" {
			t.Errorf("ME violations in row %v", row)
		}
		if row[8] != "true" {
			t.Errorf("incomplete run in row %v", row)
		}
	}
}

func TestTableIIAllHold(t *testing.T) {
	tbl, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] != "HOLDS" {
			t.Errorf("condition not verified: %v", row)
		}
	}
}

func TestTheorem5Boundary(t *testing.T) {
	tbl, err := Theorem5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		inM := row[1] == "true"
		outcome := row[4]
		if inM && outcome != "entry" {
			t.Errorf("m=%s ∈ M(n) but outcome %s", row[0], outcome)
		}
		if !inM && outcome != "livelock" {
			t.Errorf("m=%s ∉ M(n) but outcome %s", row[0], outcome)
		}
		if row[6] != "true" {
			t.Errorf("symmetry violated in row %v", row)
		}
		if !inM && !strings.Contains(row[7], "simultaneous-entry") {
			t.Errorf("strawman did not enter simultaneously on m=%s: %v", row[0], row)
		}
	}
}

func TestEntryCostShape(t *testing.T) {
	tbl, err := EntryCost()
	if err != nil {
		t.Fatal(err)
	}
	// RW rows must own all m; RMW rows a strict majority below m (for the
	// sizes used, majority < m).
	for _, row := range tbl.Rows {
		if row[2] == "RW" && row[3] != row[1] {
			t.Errorf("RW entry owned %s of m=%s", row[3], row[1])
		}
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	for _, idStr := range []string{"E7", "E8", "E9", "E10"} {
		e, err := ByID(idStr)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", idStr, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", idStr)
		}
	}
}

func TestAblationsFindTheWedge(t *testing.T) {
	tbl, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "tie-break=never") {
			found = true
			if !strings.Contains(row[2], "LIVELOCK") {
				t.Errorf("tie-break ablation outcome %q, want livelock", row[2])
			}
		}
	}
	if !found {
		t.Fatal("tie-break ablation row missing")
	}
}

func TestPermInvarianceAllComplete(t *testing.T) {
	tbl, err := PermInvariance()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] != "true" || row[2] != "0" {
			t.Errorf("adversary broke the run: %v", row)
		}
	}
}
