package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"anonmutex/internal/loadgen"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// OpenLoadSweep (experiment S4) is the backend × key-distribution ×
// offered-load grid over the unified traffic model's open-loop mode:
// Poisson arrivals at a fixed offered rate — first comfortably below
// service capacity, then far above it — against the in-process manager
// and the full lockd network path, with every acquire deadline-bounded.
// Below capacity, achieved throughput tracks offered load and aborts
// stay rare; above it, the generator reports the gap (offered versus
// achieved), the SLA aborts, and the shed arrivals while the
// mutual-exclusion cross-checks must still read 0 — overload degrades
// into withdrawn waiters, never into corrupted critical sections.
// Offered/achieved rates are wall-clock measurements; the violations
// column is exact.
func OpenLoadSweep() (*stats.Table, error) {
	uniform := workload.KeySpec{}
	zipf := workload.KeySpec{Dist: workload.KeyZipf, ZipfS: 1.1}
	hotset := workload.KeySpec{Dist: workload.KeyHotset, HotKeys: 2, HotFrac: 0.9}

	cells := []openLoadCell{
		{"inproc", "uniform", openLoadSpec(uniform, 4_000)},
		{"inproc", "uniform", openLoadSpec(uniform, 400_000)},
		{"inproc", "zipf", openLoadSpec(zipf, 4_000)},
		{"inproc", "zipf", openLoadSpec(zipf, 400_000)},
		{"inproc", "hotset", openLoadSpec(hotset, 4_000)},
		{"inproc", "hotset", openLoadSpec(hotset, 400_000)},
		{"lockd", "zipf", openLoadSpec(zipf, 2_000)},
		{"lockd", "zipf", openLoadSpec(zipf, 200_000)},
	}
	return openLoadTable(cells)
}

// OpenLoadSweepWith runs the S4 grid for one caller-supplied traffic
// model (anonbench's -workload-file) against both backends.
func OpenLoadSweepWith(spec workload.Spec) (*stats.Table, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if !spec.Open() {
		return nil, fmt.Errorf("experiments: S4 needs an open-loop spec (arrival.process poisson or bursty), got %q", spec.Arrival.Process)
	}
	label := spec.Keys.Dist
	if label == "" {
		label = "custom"
	}
	return openLoadTable([]openLoadCell{
		{"inproc", label, spec},
		{"lockd", label, spec},
	})
}

// openLoadCell is one grid cell: a backend and a fully specified
// open-loop traffic model.
type openLoadCell struct {
	backend, label string
	spec           workload.Spec
}

// openLoadSpec builds the sweep's canonical open-loop spec: Poisson
// arrivals at the offered rate, every acquire bounded by a 4ms SLA.
func openLoadSpec(keys workload.KeySpec, rate float64) workload.Spec {
	return workload.Spec{
		BaseCS: 200,
		Keys:   keys,
		Arrival: workload.ArrivalSpec{
			Process: workload.ArrivalPoisson, RatePerSec: rate, MaxBacklog: 64,
		},
		Ops: workload.OpMix{Timed: 1, TimeoutMS: 4},
	}
}

func openLoadTable(cells []openLoadCell) (*stats.Table, error) {
	t := &stats.Table{
		Title: "S4 — open-loop offered load: backend × key distribution × rate",
		Header: []string{"backend", "keys", "arrival", "offered/s", "achieved/s",
			"cycles", "aborts", "abort rate", "shed", "violations", "acq p99 µs"},
	}
	const clients, keys = 12, 8
	const cellTime = 200 * time.Millisecond
	for i, cell := range cells {
		res, extraViolations, err := runOpenLoadCell(cell, i, clients, keys, cellTime)
		if err != nil {
			return nil, fmt.Errorf("S4 %s/%s@%g: %w", cell.backend, cell.label, cell.spec.Arrival.RatePerSec, err)
		}
		arrival := fmt.Sprintf("%s@%g/s", res.Arrival, cell.spec.Arrival.RatePerSec)
		t.AddRow(cell.backend, cell.label, arrival, res.OfferedPerSec, res.Throughput,
			res.Cycles, res.Aborts, res.AbortRate, res.Shed,
			uint64(res.Violations)+extraViolations, res.LatencyP99)
	}
	t.Notes = append(t.Notes,
		"open loop: a pacer offers arrivals at the configured rate regardless of service capacity; in-flight work is bounded by the fleet and the backlog",
		"above capacity the offered/achieved gap, SLA aborts, and shed arrivals absorb the overload; the mutual-exclusion cross-checks must stay 0",
		"rates are wall-clock and machine-dependent; the violations column is exact")
	return t, nil
}

// runOpenLoadCell executes one cell and folds in the backend's own
// violation counter.
func runOpenLoadCell(cell openLoadCell, seed, clients, keys int, d time.Duration) (*loadgen.Result, uint64, error) {
	spec := cell.spec
	cfg := loadgen.Config{
		Clients: clients, Keys: keys, Duration: d,
		Workload: &spec, Seed: uint64(700 + seed),
	}
	switch cell.backend {
	case "inproc":
		mgr, err := lockmgr.New(lockmgr.Config{Shards: 4, HandlesPerLock: 3, Seed: uint64(800 + seed)})
		if err != nil {
			return nil, 0, err
		}
		cfg.NewLocker = func(int) (loadgen.Locker, error) {
			return loadgen.NewManagerLocker(mgr), nil
		}
		res, err := loadgen.Run(cfg)
		if err != nil {
			mgr.Close()
			return nil, 0, err
		}
		violations := mgr.Violations()
		if err := mgr.Close(); err != nil {
			return nil, 0, err
		}
		return res, violations, nil
	case "lockd":
		mgr, err := lockmgr.New(lockmgr.Config{Shards: 4, HandlesPerLock: 3, Seed: uint64(900 + seed)})
		if err != nil {
			return nil, 0, err
		}
		srv := lockd.NewServer(mgr)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			mgr.Close()
			return nil, 0, err
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		cfg.NewLocker = func(int) (loadgen.Locker, error) {
			return client.DialConn(ln.Addr().String())
		}
		res, runErr := loadgen.Run(cfg)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return nil, 0, err
		}
		if err := <-serveErr; err != nil {
			return nil, 0, err
		}
		if runErr != nil {
			mgr.Close()
			return nil, 0, runErr
		}
		violations := mgr.Violations()
		if err := mgr.Close(); err != nil {
			return nil, 0, err
		}
		return res, violations, nil
	default:
		return nil, 0, fmt.Errorf("unknown backend %q", cell.backend)
	}
}
