// Package experiments implements the reproduction harness: one function
// per paper artifact (table, figure, theorem) plus the added quantitative
// experiments, each returning a printable table.
//
// The experiment identifiers are documented in DESIGN.md at the
// repository root:
//
//	T1  Table I    — the anonymous-addressing example
//	F1  Figure 1   — Algorithm 1 behavior (RW model) + Theorems 1–2
//	F2  Figure 2   — Algorithm 2 behavior (RMW model) + Theorems 3–4
//	T2  Table II   — the sufficient/necessary global picture
//	L1  Theorem 5  — the lock-step ring construction grid
//	C1  §I-C       — entry-cost comparison (all m vs. majority)
//	E7             — memory-size sensitivity sweep
//	E8             — design-choice ablations
//	E9             — fairness (deadlock-freedom is not starvation-freedom)
//	E10            — anonymity invariance
//	S1             — the scenario-registry sweep, on both substrates
//	S2             — the named-lock service sweep (lockmgr + lockd)
//	S3             — deadline-bounded acquisition (abort rate, tail latency)
//	S4             — open-loop offered load (backend × distribution × rate)
//	S5             — lease sweep (TTL × heartbeat × rate, crash fraction)
//	S6             — cluster failover sweep (nodes × keys × rate, owner killed)
//
// Everything except S1's real-substrate timings and the S2–S6 service
// measurements is deterministic: fixed seeds, simulated schedules.
// Experiments are independent — RunConcurrent executes them on a worker
// pool and reports results in presentation order.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"anonmutex/internal/core"
	"anonmutex/internal/explore"
	"anonmutex/internal/id"
	"anonmutex/internal/lowerbound"
	"anonmutex/internal/mset"
	"anonmutex/internal/perm"
	"anonmutex/internal/scenario"
	"anonmutex/internal/sched"
	"anonmutex/internal/stats"
	"anonmutex/internal/strawman"
	"anonmutex/sim"
)

// runScenarioSim bridges to the public sim API, which owns the
// spec→Config translation for the simulated substrate.
func runScenarioSim(spec scenario.Spec) (*sim.Result, error) { return sim.RunSpec(spec) }

// Experiment is a runnable reproduction artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*stats.Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Table I: anonymous memory addressing example", TableI},
		{"F1", "Figure 1 / Algorithm 1: RW-model behavior (Theorems 1-2)", Figure1},
		{"F2", "Figure 2 / Algorithm 2: RMW-model behavior (Theorems 3-4)", Figure2},
		{"T2", "Table II: sufficient and necessary conditions", TableII},
		{"L1", "Theorem 5: lock-step ring construction grid", Theorem5},
		{"C1", "Entry cost: all-m (RW) vs majority (RMW)", EntryCost},
		{"E7", "Memory-size sensitivity sweep", SizeSweep},
		{"E8", "Ablations: claim policy, tie-break rule, wait-for-empty", Ablations},
		{"E9", "Fairness: bypasses and waiting spread", Fairness},
		{"E10", "Anonymity invariance: permutation adversaries", PermInvariance},
		{"S1", "Scenario registry: every named scenario, both substrates", ScenarioSuite},
		{"S2", "Service sweep: sharded named-lock manager and lockd under load", ServiceSweep},
		{"S3", "Deadline sweep: abortable acquisition, abort rate and tail latency", DeadlineSweep},
		{"S4", "Open-loop load: backend × key distribution × offered rate", OpenLoadSweep},
		{"S5", "Lease sweep: TTL × heartbeat × offered rate under a crash fraction", LeaseSweep},
		{"S6", "Cluster failover sweep: nodes × keys × offered rate × routing mode (redirect/proxy), one owner killed mid-run", ClusterSweep},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(idStr string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == idStr {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", idStr)
}

// TableI reconstructs the paper's Table I: a 3-register memory, processes
// p and q with the printed permutations (2,3,1) and (3,1,2). The table is
// rebuilt from live perm.Perm objects, and the text's claim — p's R[2] and
// q's R[3] are the same physical register, R[1] — is verified.
func TableI() (*stats.Table, error) {
	pPrinted, err := perm.FromOneBased([]int{2, 3, 1})
	if err != nil {
		return nil, err
	}
	qPrinted, err := perm.FromOneBased([]int{3, 1, 2})
	if err != nil {
		return nil, err
	}
	// The printed rows give, for each external register, the local name
	// each process uses (physical→local). The model's fᵢ is the inverse.
	fp, fq := pPrinted.Inverse(), qPrinted.Inverse()
	t := &stats.Table{
		Title:  "Table I — example of an anonymous memory model (m=3)",
		Header: []string{"external observer", "process p", "process q"},
	}
	for phys := 0; phys < 3; phys++ {
		t.AddRow(
			fmt.Sprintf("R[%d]", phys+1),
			fmt.Sprintf("R[%d]", fp.Inverse().Apply(phys)+1),
			fmt.Sprintf("R[%d]", fq.Inverse().Apply(phys)+1),
		)
	}
	t.AddRow("permutation", "2, 3, 1", "3, 1, 2")
	if fp.Apply(2-1) != 0 || fq.Apply(3-1) != 0 {
		return nil, fmt.Errorf("experiments: Table I verification failed: p's R[2]→R[%d], q's R[3]→R[%d]",
			fp.Apply(1)+1, fq.Apply(2)+1)
	}
	t.Notes = append(t.Notes,
		"verified: p's R[2] and q's R[3] denote the same physical register R[1] (§I-A)")
	return t, nil
}

// figureRun is a shared behavioral battery for F1/F2.
func figureRun(title string, alg func(n, m int) sched.MachineFactory, sizes []struct{ n, m int }, wantOwned func(n, m int) string) (*stats.Table, error) {
	t := &stats.Table{
		Title:  title,
		Header: []string{"n", "m", "sessions", "entries", "ME-violations", "owned@entry", "expected", "mean lock steps", "completed"},
	}
	const sessions = 3
	for _, sz := range sizes {
		res, err := sched.Run(sched.Config{
			N: sz.n, M: sz.m,
			NewMachine: alg(sz.n, sz.m),
			Policy:     sched.NewRandom(uint64(97 + sz.n*10 + sz.m)),
			Sessions:   sessions,
			Adversary:  perm.RandomAdversary{Seed: 11},
			MaxSteps:   20_000_000,
		})
		if err != nil {
			return nil, err
		}
		var steps stats.Summary
		owned := map[int]bool{}
		for _, ps := range res.PerProc {
			steps.Add(float64(ps.LockSteps))
			owned[ps.OwnedAtEntry] = true
		}
		ownedStr := intSetString(owned)
		t.AddRow(sz.n, sz.m, sessions, res.Entries, len(res.Violations), ownedStr,
			wantOwned(sz.n, sz.m), steps.Mean(), res.Completed)
	}
	return t, nil
}

func intSetString(set map[int]bool) string {
	var vals []int
	for v := range set {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	s := ""
	for i, v := range vals {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(v)
	}
	return s
}

// Figure1 reproduces Algorithm 1's behavior: deadlock-free completion, no
// ME violations on random schedules, and the RW entry cost (a process
// enters only when it owns all m registers).
func Figure1() (*stats.Table, error) {
	sizes := []struct{ n, m int }{{2, 3}, {3, 5}, {4, 5}, {6, 7}, {4, 25}}
	t, err := figureRun(
		"Figure 1 — Algorithm 1 (anonymous RW, m ∈ M(n), m ≥ n)",
		func(n, m int) sched.MachineFactory { return sched.Alg1Factory(n, m, core.Alg1Config{}) },
		sizes,
		func(_, m int) string { return fmt.Sprintf("=%d (all m)", m) },
	)
	if err != nil {
		return nil, err
	}
	// Exhaustive verification of the smallest instance.
	res, err := explore.Explore(explore.Config{
		N: 2, M: 3,
		Factory: func(_ int, me id.ID) (core.Machine, error) {
			return core.NewAlg1(me, 2, 3, core.Alg1Config{})
		},
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"exhaustive model check n=2 m=3: %d states, %d transitions, ME violations %d, progress traps %d",
		res.States, res.Transitions, res.MEViolations, res.Traps))
	return t, nil
}

// Figure2 reproduces Algorithm 2's behavior, including the degenerate
// m = 1 case and the majority entry cost.
func Figure2() (*stats.Table, error) {
	sizes := []struct{ n, m int }{{2, 1}, {2, 3}, {3, 5}, {6, 7}, {4, 25}}
	t, err := figureRun(
		"Figure 2 — Algorithm 2 (anonymous RMW, m ∈ M(n))",
		func(n, m int) sched.MachineFactory { return sched.Alg2Factory(n, m, core.Alg2Config{}) },
		sizes,
		func(_, m int) string { return fmt.Sprintf(">%d (majority)", m/2) },
	)
	if err != nil {
		return nil, err
	}
	res, err := explore.Explore(explore.Config{
		N: 2, M: 3,
		Factory: func(_ int, me id.ID) (core.Machine, error) {
			return core.NewAlg2(me, 2, 3, core.Alg2Config{})
		},
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"exhaustive model check n=2 m=3: %d states, %d transitions, ME violations %d, progress traps %d",
		res.States, res.Transitions, res.MEViolations, res.Traps))
	return t, nil
}

// TableII reproduces the paper's Table II — the global picture — as
// machine-checked verdicts: sufficiency via exhaustive exploration of a
// legal size, necessity via the trap/wedge found on an illegal size.
func TableII() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Table II — n-process anonymous mutex: conditions verified mechanically (n=2)",
		Header: []string{"registers", "condition", "instance", "verdict", "evidence"},
	}
	type cell struct {
		label   string
		factory func(m int) func(int, id.ID) (core.Machine, error)
		legal   int
		illegal int
	}
	cells := []cell{
		{"RW anonymous", func(m int) func(int, id.ID) (core.Machine, error) {
			return func(_ int, me id.ID) (core.Machine, error) { return core.NewAlg1Unchecked(me, m, core.Alg1Config{}) }
		}, 3, 4},
		{"RMW anonymous", func(m int) func(int, id.ID) (core.Machine, error) {
			return func(_ int, me id.ID) (core.Machine, error) { return core.NewAlg2Unchecked(me, m, core.Alg2Config{}) }
		}, 3, 2},
	}
	for _, c := range cells {
		legal, err := explore.Explore(explore.Config{N: 2, M: c.legal, Factory: c.factory(c.legal)})
		if err != nil {
			return nil, err
		}
		verdict := "HOLDS"
		if !legal.OK() {
			verdict = "FAILED"
		}
		t.AddRow(c.label, "sufficient (this paper)", fmt.Sprintf("m=%d ∈ M(2)", c.legal), verdict,
			fmt.Sprintf("exhaustive: %d states, 0 ME, 0 traps", legal.States))

		illegal, err := explore.Explore(explore.Config{N: 2, M: c.illegal, Factory: c.factory(c.illegal)})
		if err != nil {
			return nil, err
		}
		verdict = "HOLDS"
		if illegal.Traps == 0 && illegal.MEViolations == 0 {
			verdict = "FAILED"
		}
		src := "this paper (Thm 5)"
		if c.label == "RW anonymous" {
			src = "[21] (via Thm 5)"
		}
		t.AddRow(c.label, "necessary "+src, fmt.Sprintf("m=%d ∉ M(2)", c.illegal), verdict,
			fmt.Sprintf("trap region: %d states with no completing continuation", illegal.Traps))
	}
	t.Notes = append(t.Notes,
		"sufficiency: every reachable state satisfies ME and can reach a lock/unlock completion",
		"necessity: on m ∉ M(n) the checker finds the wedge Theorem 5 predicts")
	return t, nil
}

// Theorem5 runs the ring construction grid for Algorithm 2 (the RMW lower
// bound is the paper's new result) and the greedy strawman, showing both
// horns of the dichotomy.
func Theorem5() (*stats.Table, error) {
	const n = 4
	t := &stats.Table{
		Title:  fmt.Sprintf("Theorem 5 — lock-step ring executions (n=%d, Algorithm 2 and strawman)", n),
		Header: []string{"m", "m∈M(n)", "ℓ", "step", "alg2 outcome", "rounds", "symmetry", "strawman outcome"},
	}
	grid, err := lowerbound.Grid(lowerbound.AlgRMW, n, 1, 24, 0)
	if err != nil {
		return nil, err
	}
	for _, e := range grid {
		straw := "-"
		if !e.InM {
			sv, err := lowerbound.Run(lowerbound.AlgGreedy, e.Witness, e.M, 0)
			if err != nil {
				return nil, err
			}
			straw = fmt.Sprintf("%v (%d/%d in CS)", sv.Outcome, sv.Entrants, sv.L)
		}
		t.AddRow(e.M, e.InM, e.Witness, e.Verdict.Step, e.Verdict.Outcome.String(),
			e.Verdict.Rounds, e.Verdict.SymmetryHeld, straw)
	}
	t.Notes = append(t.Notes,
		"m ∉ M(n): Algorithm 2 livelocks (deadlock-freedom horn); the broken strawman has all ℓ processes enter together (ME horn)",
		"m ∈ M(n): symmetry cannot be maintained and some process enters — matching the tight characterization")
	return t, nil
}

// EntryCost reproduces the paper's §I-C complexity comparison: to enter,
// Algorithm 1 must read its identity from ALL m registers while
// Algorithm 2 needs only a majority. Solo and contended runs.
func EntryCost() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Entry cost — RW (all m) vs RMW (majority), solo and under contention",
		Header: []string{"n", "m", "model", "owned@entry", "need", "solo lock steps", "contended mean steps"},
	}
	for _, n := range []int{2, 3, 4, 6} {
		m := mset.MinRW(n)
		for _, model := range []string{"RW", "RMW"} {
			var factory sched.MachineFactory
			var need string
			if model == "RW" {
				factory = sched.Alg1Factory(n, m, core.Alg1Config{})
				need = fmt.Sprintf("=%d", m)
			} else {
				factory = sched.Alg2Factory(n, m, core.Alg2Config{})
				need = fmt.Sprintf(">%d", m/2)
			}
			solo, err := sched.Run(sched.Config{
				N: 1, M: m, NewMachine: factory, Sessions: 1, MaxSteps: 1_000_000,
			})
			if err != nil {
				return nil, err
			}
			cont, err := sched.Run(sched.Config{
				N: n, M: m, NewMachine: factory, Sessions: 3,
				Policy: sched.NewRandom(uint64(31 * n)), MaxSteps: 20_000_000,
			})
			if err != nil {
				return nil, err
			}
			var steps stats.Summary
			owned := map[int]bool{}
			for _, ps := range cont.PerProc {
				steps.Add(float64(ps.LockSteps))
				owned[ps.OwnedAtEntry] = true
			}
			t.AddRow(n, m, model, intSetString(owned), need,
				solo.PerProc[0].LockSteps, steps.Mean())
		}
	}
	t.Notes = append(t.Notes,
		"solo RW = 2m+1 ops (m claims + m+1 snapshots); solo RMW = 2m ops (m CAS + m reads)",
		"the RW algorithm must saturate the memory; the RMW algorithm stops at a strict majority")
	return t, nil
}

// SizeSweep measures how the legal memory size m affects work per session
// for fixed n (experiment E7).
func SizeSweep() (*stats.Table, error) {
	const n = 3
	t := &stats.Table{
		Title:  fmt.Sprintf("E7 — memory-size sensitivity (n=%d, random schedule)", n),
		Header: []string{"m", "steps/run", "entries", "mean lock steps", "writes"},
	}
	for _, m := range mset.Members(n, n+1, 40) {
		res, err := sched.Run(sched.Config{
			N: n, M: m,
			NewMachine: sched.Alg1Factory(n, m, core.Alg1Config{}),
			Policy:     sched.NewRandom(uint64(7 * m)),
			Sessions:   3,
			MaxSteps:   20_000_000,
		})
		if err != nil {
			return nil, err
		}
		var steps stats.Summary
		for _, ps := range res.PerProc {
			steps.Add(float64(ps.LockSteps))
		}
		t.AddRow(m, res.Steps, res.Entries, steps.Mean(), res.MemWrites)
	}
	t.Notes = append(t.Notes, "larger legal m costs more per entry (the RW algorithm must own all m registers)")
	return t, nil
}

// Ablations quantifies the design choices (experiment E8): the ⊥-claim
// policy, the average tie-break rule, and Algorithm 2's wait-for-empty.
func Ablations() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "E8 — ablations",
		Header: []string{"variant", "configuration", "outcome", "steps", "entries"},
	}
	// Claim policies under a random schedule.
	for _, tc := range []struct {
		name string
		cfg  core.Alg1Config
	}{
		{"alg1 claim=first-bottom", core.Alg1Config{Choice: core.ChooseFirstBottom}},
		{"alg1 claim=last-bottom", core.Alg1Config{Choice: core.ChooseLastBottom}},
	} {
		res, err := sched.Run(sched.Config{
			N: 3, M: 5,
			NewMachine: sched.Alg1Factory(3, 5, tc.cfg),
			Policy:     sched.NewRandom(404),
			Sessions:   3,
			MaxSteps:   20_000_000,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, "n=3 m=5 random sched", okOrViolation(res), res.Steps, res.Entries)
	}
	// The tie-break rule is load-bearing: without it, a legal size wedges.
	wedge, err := sched.Run(sched.Config{
		N: 2, M: 3,
		NewMachine:   sched.Alg1UncheckedFactory(3, core.Alg1Config{Tie: core.TieBreakNever}),
		Adversary:    perm.RotationAdversary{Step: 1},
		Policy:       sched.NewLockStep(2),
		DetectCycles: true,
		MaxSteps:     1_000_000,
	})
	if err != nil {
		return nil, err
	}
	outcome := "completed"
	if wedge.CycleDetected {
		outcome = "LIVELOCK (cycle)"
	}
	t.AddRow("alg1 tie-break=never", "n=2 m=3 lock-step rotation", outcome, wedge.Steps, wedge.Entries)
	// Algorithm 2 without the wait-for-empty loop still completes on fair
	// random schedules (the wait matters for adversarial ones).
	skip, err := sched.Run(sched.Config{
		N: 3, M: 5,
		NewMachine: sched.Alg2Factory(3, 5, core.Alg2Config{SkipWaitForEmpty: true}),
		Policy:     sched.NewRandom(505),
		Sessions:   3,
		MaxSteps:   20_000_000,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("alg2 skip-wait-for-empty", "n=3 m=5 random sched", okOrViolation(skip), skip.Steps, skip.Entries)
	base, err := sched.Run(sched.Config{
		N: 3, M: 5,
		NewMachine: sched.Alg2Factory(3, 5, core.Alg2Config{}),
		Policy:     sched.NewRandom(505),
		Sessions:   3,
		MaxSteps:   20_000_000,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("alg2 paper", "n=3 m=5 random sched", okOrViolation(base), base.Steps, base.Entries)
	t.Notes = append(t.Notes,
		"removing the average rule livelocks even on legal sizes: the rule, not just m ∈ M(n), carries deadlock-freedom",
		"claim policy affects constants only; correctness is unaffected (the paper allows any ⊥ register)")
	return t, nil
}

func okOrViolation(res *sched.Result) string {
	switch {
	case len(res.Violations) > 0:
		return "ME VIOLATION"
	case res.Completed:
		return "completed"
	case res.CycleDetected:
		return "LIVELOCK (cycle)"
	default:
		return "step bound"
	}
}

// Fairness measures lockouts (experiment E9): deadlock-freedom permits
// unbounded bypassing, and the algorithms do exhibit it.
func Fairness() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "E9 — fairness under contention (n=4, 10 sessions each)",
		Header: []string{"model", "m", "proc", "entries", "bypasses", "max wait", "mean wait"},
	}
	for _, model := range []string{"RW", "RMW"} {
		n, m := 4, 5
		var factory sched.MachineFactory
		if model == "RW" {
			factory = sched.Alg1Factory(n, m, core.Alg1Config{})
		} else {
			factory = sched.Alg2Factory(n, m, core.Alg2Config{})
		}
		res, err := sched.Run(sched.Config{
			N: n, M: m, NewMachine: factory,
			Policy:   sched.NewRandom(606),
			Sessions: 10,
			MaxSteps: 50_000_000,
		})
		if err != nil {
			return nil, err
		}
		for i, ps := range res.PerProc {
			t.AddRow(model, m, i, ps.Entries, ps.Bypasses, ps.MaxWaitSteps, ps.MeanWait)
		}
	}
	t.Notes = append(t.Notes, "bypasses > 0 demonstrate the deadlock-free ≠ starvation-free gap (§II-E)")
	return t, nil
}

// PermInvariance verifies that the anonymity adversary cannot affect
// correctness (experiment E10): identical workloads under identity,
// random, and rotation permutations.
func PermInvariance() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "E10 — anonymity invariance (alg1, n=3, m=5, same schedule seed)",
		Header: []string{"permutations", "completed", "ME-violations", "entries", "steps"},
	}
	advs := []struct {
		name string
		adv  perm.Adversary
	}{
		{"identity (non-anonymous)", perm.IdentityAdversary{}},
		{"random seed=1", perm.RandomAdversary{Seed: 1}},
		{"random seed=2", perm.RandomAdversary{Seed: 2}},
		{"rotation step=1", perm.RotationAdversary{Step: 1}},
		{"rotation step=2", perm.RotationAdversary{Step: 2}},
	}
	for _, a := range advs {
		res, err := sched.Run(sched.Config{
			N: 3, M: 5,
			NewMachine: sched.Alg1Factory(3, 5, core.Alg1Config{}),
			Adversary:  a.adv,
			Policy:     sched.NewRandom(808),
			Sessions:   3,
			MaxSteps:   20_000_000,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(a.name, res.Completed, len(res.Violations), res.Entries, res.Steps)
	}
	t.Notes = append(t.Notes, "safety and progress hold under every permutation assignment; only step counts vary")
	return t, nil
}

// ScenarioSuite (experiment S1) sweeps the scenario registry: every named
// scenario runs on the simulated substrate, and every scenario the real
// locks can express (legal size, paper algorithms, no cycle detection)
// additionally runs on the hardware-atomic substrate. One row per
// scenario/substrate pair demonstrates that a single declarative
// description drives both execution engines.
func ScenarioSuite() (*stats.Table, error) {
	t := &stats.Table{
		Title:  "S1 — scenario registry on both substrates",
		Header: []string{"scenario", "substrate", "alg", "n", "m", "outcome", "entries", "ME-violations", "steps"},
	}
	for _, name := range scenario.Names() {
		spec, err := scenario.Lookup(name)
		if err != nil {
			return nil, err
		}
		simRes, err := runScenarioSim(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %s (sim): %w", name, err)
		}
		outcome := "completed"
		switch {
		case simRes.MEViolations > 0:
			outcome = "ME VIOLATION"
		case simRes.CycleDetected:
			outcome = "LIVELOCK (cycle)"
		case !simRes.Completed:
			outcome = "step bound"
		}
		t.AddRow(name, "sim", spec.Algorithm, spec.N, spec.M, outcome,
			simRes.Entries, simRes.MEViolations, simRes.Steps)

		if !realRunnable(spec) {
			continue
		}
		realRes, err := scenario.RunReal(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %s (real): %w", name, err)
		}
		outcome = "completed"
		if realRes.MEViolations > 0 {
			outcome = "ME VIOLATION"
		}
		t.AddRow(name, "real", spec.Algorithm, spec.N, spec.M, outcome,
			realRes.Entries, realRes.MEViolations, "-")
	}
	t.Notes = append(t.Notes,
		"sim rows are fully deterministic; real rows are checked on aggregate guarantees (entries, mutual exclusion)",
		"scenarios that need the simulated substrate (illegal sizes, cycle detection, the strawman) run there only")
	return t, nil
}

// realRunnable reports whether the real substrate can express the spec
// (mirrors scenario.RunReal's preconditions).
func realRunnable(s scenario.Spec) bool {
	return s.Algorithm != scenario.AlgGreedy && !s.Unchecked && !s.DetectCycles && s.N >= 2
}

// Outcome is one experiment's result from a RunConcurrent sweep.
type Outcome struct {
	Experiment
	Table   *stats.Table
	Err     error
	Elapsed time.Duration
}

// RunConcurrent executes the experiments on a worker pool of up to
// `parallel` goroutines (0 or negative: GOMAXPROCS) and returns their
// outcomes in presentation order — the output is deterministic regardless
// of completion order. Every experiment is self-contained (own memories,
// machines, PRNGs), so concurrent execution cannot change any result.
func RunConcurrent(list []Experiment, parallel int) []Outcome {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(list) {
		parallel = len(list)
	}
	if parallel < 1 {
		parallel = 1
	}
	out := make([]Outcome, len(list))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, e := range list {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			tbl, err := e.Run()
			out[i] = Outcome{Experiment: e, Table: tbl, Err: err, Elapsed: time.Since(start)}
		}(i, e)
	}
	wg.Wait()
	return out
}

// Strawman contrast used by documentation examples: the greedy protocol
// fails exactly where the paper's algorithms hold.
func strawmanFactory(m int) sched.MachineFactory {
	return func(_ int, me id.ID) (core.Machine, error) {
		return strawman.New(me, m), nil
	}
}

var _ = strawmanFactory // referenced by tests
