package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"anonmutex/internal/loadgen"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// LeaseSweep (experiment S5) is the crash-recovery grid: lease TTL ×
// heartbeat interval × offered rate over the full lockd network path,
// with a fraction of the open-loop zipf traffic crashing — acquiring a
// key on a session of its own and going silent holding it, socket
// still open, so only TTL expiry can recover the key. The sweep
// reports the lease lifecycle counters (expiries, fenced rejections)
// alongside throughput, plus the worst post-run orphan-recovery time a
// fresh contender observed; unavailability must stay bounded by the
// TTL plus the revocation cost, and the mutual-exclusion cross-checks
// must read 0 throughout — a crashed holder degrades into one TTL of
// unavailability, never into a corrupted critical section. A tight
// heartbeat (TTL/8) keeps live holders safely renewed; TTL/2 shows the
// margin shrinking while still correct.
func LeaseSweep() (*stats.Table, error) {
	t := &stats.Table{
		Title: "S5 — lease sweep: TTL × heartbeat × offered rate under a crash fraction",
		Header: []string{"ttl", "heartbeat", "offered/s", "achieved/s", "cycles",
			"crashes", "expired", "fenced", "violations", "max recovery ms"},
	}
	const clients, keys = 12, 8
	const cellTime = 200 * time.Millisecond
	ttls := []time.Duration{25 * time.Millisecond, 100 * time.Millisecond}
	hbFracs := []int{8, 2} // heartbeat = TTL/8 (comfortable), TTL/2 (tight)
	rates := []float64{1_000, 20_000}
	cell := 0
	for _, ttl := range ttls {
		for _, frac := range hbFracs {
			for _, rate := range rates {
				cell++
				row, err := runLeaseCell(ttl, ttl/time.Duration(frac), rate, cell, clients, keys, cellTime)
				if err != nil {
					return nil, fmt.Errorf("S5 ttl=%v hb=1/%d rate=%g: %w", ttl, frac, rate, err)
				}
				t.AddRow(row...)
			}
		}
	}
	t.Notes = append(t.Notes,
		"5% of arrivals crash: a throwaway session acquires the key and goes silent holding it with its socket open, so only lease TTL expiry can recover it",
		"max recovery is the worst post-run blocking acquire over every key, measured while the corpses' sockets are still open — it must stay within 2×TTL",
		"fenced counts stale-token ops the server rejected; the violations column (client cross-checks plus the server's own) is exact and must be 0")
	return t, nil
}

// runLeaseCell runs one S5 cell and returns its table row.
func runLeaseCell(ttl, heartbeat time.Duration, rate float64, seed, clients, keys int, d time.Duration) ([]any, error) {
	mgr, err := lockmgr.New(lockmgr.Config{Shards: 4, HandlesPerLock: 3, Seed: uint64(1000 + seed)})
	if err != nil {
		return nil, err
	}
	srv := lockd.NewServer(mgr)
	srv.LeaseTTL = ttl
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	recoveryBound := 2*ttl + 250*time.Millisecond
	pool := client.NewCrashPool(addr)
	pool.Timeout = recoveryBound
	spec := workload.Spec{
		Keys: workload.KeySpec{Dist: workload.KeyZipf, ZipfS: 1.1},
		Arrival: workload.ArrivalSpec{
			Process: workload.ArrivalPoisson, RatePerSec: rate, MaxBacklog: 64,
		},
		Ops: workload.OpMix{Lock: 0.95, Crash: 0.05},
	}
	cfg := loadgen.Config{
		Clients: clients, Keys: keys, Duration: d,
		Workload: &spec, Seed: uint64(1100 + seed),
		NewLocker: func(int) (loadgen.Locker, error) {
			s, err := pool.Session()
			if err != nil {
				return nil, err
			}
			s.AutoHeartbeat(heartbeat)
			return s, nil
		},
	}
	res, runErr := loadgen.Run(cfg)

	// Recovery sweep before the corpses' sockets close: the worst
	// blocking acquire over every key bounds the unavailability a
	// crashed holder caused.
	var maxRecovery time.Duration
	var sweepErr error
	if runErr == nil {
		for i := 0; i < keys; i++ {
			took, err := leaseRecoveryProbe(addr, fmt.Sprintf("key-%04d", i), recoveryBound)
			if err != nil {
				sweepErr = err
				break
			}
			if took > maxRecovery {
				maxRecovery = took
			}
		}
	}
	var st lockd.Stats
	if runErr == nil && sweepErr == nil {
		c, err := client.DialConn(addr)
		if err == nil {
			st, err = c.Stats()
			c.Close()
		}
		if err != nil {
			sweepErr = err
		}
	}
	pool.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	if runErr != nil {
		mgr.Close()
		return nil, runErr
	}
	if sweepErr != nil {
		mgr.Close()
		return nil, sweepErr
	}
	violations := uint64(res.Violations) + st.Violations + mgr.Violations()
	if err := mgr.Close(); err != nil {
		return nil, err
	}
	return []any{
		ttl.String(), heartbeat.String(), res.OfferedPerSec, res.Throughput, res.Cycles,
		res.Crashes, st.Expired, st.FencedRejects, violations,
		float64(maxRecovery.Microseconds()) / 1000,
	}, nil
}

// leaseRecoveryProbe measures one orphan recovery: a blocking acquire
// of name bounded by the scenario's recovery budget.
func leaseRecoveryProbe(addr, name string, bound time.Duration) (time.Duration, error) {
	c, err := client.DialConn(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	start := time.Now()
	ok, err := c.AcquireFor(name, bound)
	took := time.Since(start)
	if err != nil {
		return took, err
	}
	if !ok {
		return took, fmt.Errorf("experiments: %s not recovered within %v", name, bound)
	}
	return took, c.Release(name)
}
