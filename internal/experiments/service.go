package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"anonmutex/internal/loadgen"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/scenario"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// ServiceSweep (experiment S2) exercises the service stack built over the
// paper's locks: the sharded named-lock manager under both algorithms and
// a spread of unified-traffic-model patterns (uniform, a one-key hotset,
// zipf-popular keys against the manager's CLOCK eviction, and the bursty
// session profile), plus one row through the full network path
// (loadgen → lockd client → TCP → lockd server → manager). Each run
// carries the in-critical-section owner check; the violations column must
// read 0 everywhere. Throughput and latency are wall-clock measurements
// and vary run to run; the structural columns (cycles, violations, lock
// creates) are exact.
func ServiceSweep() (*stats.Table, error) {
	t := &stats.Table{
		Title: "S2 — named-lock service sweep (lockmgr in-process + lockd over loopback)",
		Header: []string{"backend", "alg", "traffic", "clients", "keys", "cycles",
			"violations", "cycles/s", "acq p99 µs", "waits", "lock creates"},
	}
	const clients, keys, cycles = 8, 6, 240
	load := func(spec workload.Spec, seed uint64, newLocker func(int) (loadgen.Locker, error)) (*loadgen.Result, error) {
		spec.BaseCS, spec.BaseRemainder = 1, 1
		return loadgen.Run(loadgen.Config{
			Clients: clients, Keys: keys, Cycles: cycles,
			Workload: &spec, Seed: seed,
			NewLocker: newLocker,
		})
	}

	sweep := []struct {
		alg, label string
		spec       workload.Spec
	}{
		{scenario.AlgRW, "uniform", workload.Spec{}},
		{scenario.AlgRW, "hotset", workload.Spec{Keys: workload.KeySpec{Dist: workload.KeyHotset, HotKeys: 1, HotFrac: 0.8}}},
		{scenario.AlgRMW, "uniform", workload.Spec{}},
		{scenario.AlgRMW, "zipf", workload.Spec{Keys: workload.KeySpec{Dist: workload.KeyZipf, ZipfS: 1.1}}},
		{scenario.AlgRMW, "bursty", workload.Spec{Profile: "bursty"}},
	}
	for i, sw := range sweep {
		mgr, err := lockmgr.New(lockmgr.Config{
			Shards: 4, Algorithm: sw.alg, HandlesPerLock: 3, Seed: uint64(100 + i),
		})
		if err != nil {
			return nil, err
		}
		res, err := load(sw.spec, uint64(i+1), func(int) (loadgen.Locker, error) {
			return loadgen.NewManagerLocker(mgr), nil
		})
		if err != nil {
			return nil, fmt.Errorf("S2 %s/%s: %w", sw.alg, sw.label, err)
		}
		c := mgr.Counters()
		violations := uint64(res.Violations) + mgr.Violations()
		t.AddRow("inproc", sw.alg, sw.label, clients, keys, res.Cycles,
			violations, res.Throughput, res.LatencyP99, c.Waits, c.LockCreates)
		if err := mgr.Close(); err != nil {
			return nil, err
		}
	}

	// The network row: the same load through a real lockd session per
	// client, over a loopback TCP listener.
	mgr, err := lockmgr.New(lockmgr.Config{Shards: 4, HandlesPerLock: 3, Seed: 999})
	if err != nil {
		return nil, err
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("S2 net row: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	res, err := load(workload.Spec{}, 42, func(int) (loadgen.Locker, error) {
		return client.DialConn(ln.Addr().String())
	})
	if err != nil {
		return nil, fmt.Errorf("S2 net row: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	c := mgr.Counters()
	violations := uint64(res.Violations) + mgr.Violations()
	t.AddRow("lockd", scenario.AlgRMW, "uniform", clients, keys, res.Cycles,
		violations, res.Throughput, res.LatencyP99, c.Waits, c.LockCreates)
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"every critical section runs the double owner check (per-key token + backend holds); violations must be 0",
		"clients (8) exceed each lock's handles (3): the lease pool multiplexes the overflow",
		"throughput/latency columns are wall-clock and machine-dependent; cycles, violations, and creates are exact")
	return t, nil
}
