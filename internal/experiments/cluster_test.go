package experiments

import (
	"strconv"
	"testing"
)

// TestClusterSweepStructure checks S6's grid: the full nodes × keys ×
// rate × mode cross appears (proxy rows only where there is a second
// node to forward to), the kill column marks exactly the multi-node
// cells, every cell reads 0 violations, and every killed cell's
// recovery stays within the failure detector's budget. The scenario
// body additionally enforces per-key token monotonicity across the
// handoff and errors the whole sweep if any cell breaks it.
func TestClusterSweepStructure(t *testing.T) {
	tbl, err := ClusterSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 keyspaces × 2 rates × (1 single-node + 2 three-node modes))", len(tbl.Rows))
	}
	sizes := map[string]int{}
	modes := map[string]int{}
	for _, row := range tbl.Rows {
		sizes[row[0]]++
		modes[row[3]]++
		baseline := row[0] == "1"
		if baseline && row[3] != "redirect" {
			t.Errorf("single-node cell ran in %s mode: %v", row[3], row)
		}
		if baseline != (row[4] == "-") {
			t.Errorf("kill column inconsistent with cluster size: %v", row)
		}
		if row[9] != "0" {
			t.Errorf("cell nodes=%s keys=%s rate=%s mode=%s observed %s violations", row[0], row[1], row[2], row[3], row[9])
		}
		recoveryMS, err := strconv.ParseFloat(row[10], 64)
		if err != nil {
			t.Fatalf("unparseable recovery in row %v", row)
		}
		if recoveryMS <= 0 {
			t.Errorf("cell nodes=%s keys=%s rate=%s mode=%s measured no recovery", row[0], row[1], row[2], row[3])
		}
		// TTL is 50ms; the scenario's bound is 2×TTL + 250ms slack.
		if !baseline && recoveryMS > 350 {
			t.Errorf("cell nodes=%s keys=%s rate=%s mode=%s: recovery %.1fms past the 350ms bound", row[0], row[1], row[2], row[3], recoveryMS)
		}
	}
	if len(sizes) != 2 {
		t.Errorf("cluster-size coverage = %v, want 2 distinct sizes", sizes)
	}
	if modes["proxy"] != 4 || modes["redirect"] != 8 {
		t.Errorf("mode coverage = %v, want 4 proxy + 8 redirect rows", modes)
	}
}
