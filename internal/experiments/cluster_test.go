package experiments

import (
	"strconv"
	"testing"
)

// TestClusterSweepStructure checks S6's grid: the full nodes × keys ×
// rate cross appears, the kill column marks exactly the multi-node
// cells, every cell reads 0 violations, and every killed cell's
// recovery stays within the failure detector's budget. The scenario
// body additionally enforces per-key token monotonicity across the
// handoff and errors the whole sweep if any cell breaks it.
func TestClusterSweepStructure(t *testing.T) {
	tbl, err := ClusterSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 sizes × 2 keyspaces × 2 rates)", len(tbl.Rows))
	}
	sizes := map[string]int{}
	for _, row := range tbl.Rows {
		sizes[row[0]]++
		baseline := row[0] == "1"
		if baseline != (row[3] == "-") {
			t.Errorf("kill column inconsistent with cluster size: %v", row)
		}
		if row[8] != "0" {
			t.Errorf("cell nodes=%s keys=%s rate=%s observed %s violations", row[0], row[1], row[2], row[8])
		}
		recoveryMS, err := strconv.ParseFloat(row[9], 64)
		if err != nil {
			t.Fatalf("unparseable recovery in row %v", row)
		}
		if recoveryMS <= 0 {
			t.Errorf("cell nodes=%s keys=%s rate=%s measured no recovery", row[0], row[1], row[2])
		}
		// TTL is 50ms; the scenario's bound is 2×TTL + 250ms slack.
		if !baseline && recoveryMS > 350 {
			t.Errorf("cell nodes=%s keys=%s rate=%s: recovery %.1fms past the 350ms bound", row[0], row[1], row[2], recoveryMS)
		}
	}
	if len(sizes) != 2 {
		t.Errorf("cluster-size coverage = %v, want 2 distinct sizes", sizes)
	}
}
