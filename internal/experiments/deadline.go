package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"anonmutex/internal/loadgen"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// DeadlineSweep (experiment S3) measures the abortable lock stack under
// per-op deadlines: key distributions and session profiles from the
// unified traffic model crossed with a tight and a loose acquire budget
// on the in-process manager, plus one row through the full network
// path. More clients than handles keep every named lock saturated, so
// the tight budget produces real aborts — each one a waiter withdrawing
// from the anonymous-register competition and erasing its residue —
// while the violations column must still read 0 everywhere: giving up
// never corrupts the survivors. Abort rates and latency are wall-clock
// measurements and vary run to run; violations and attempt accounting
// (cycles + aborts = attempts) are exact.
func DeadlineSweep() (*stats.Table, error) {
	t := &stats.Table{
		Title: "S3 — deadline-bounded acquisition sweep (abort rate and tail latency)",
		Header: []string{"backend", "traffic", "deadline", "clients", "keys", "attempts",
			"cycles", "aborts", "abort rate", "violations", "acq p99 µs", "acq max µs"},
	}
	const clients, keys, attempts = 12, 3, 360
	const tightMS, looseMS = 0.05, 250.0
	addRow := func(backend, traffic string, res *loadgen.Result, extraViolations uint64, deadline time.Duration) {
		t.AddRow(backend, traffic, deadline, clients, keys, res.Cycles+res.Aborts,
			res.Cycles, res.Aborts, res.AbortRate,
			uint64(res.Violations)+extraViolations, res.LatencyP99, res.LatencyMax)
	}

	// Every acquire is deadline-bounded: a pure timed op mix with the
	// per-op budget in the spec itself.
	deadlineSpec := func(timeoutMS float64, mutate func(*workload.Spec)) workload.Spec {
		spec := workload.Spec{BaseCS: 20_000, BaseRemainder: 1, Ops: workload.OpMix{Timed: 1, TimeoutMS: timeoutMS}}
		if mutate != nil {
			mutate(&spec)
		}
		return spec
	}
	hotset := func(s *workload.Spec) {
		s.Keys = workload.KeySpec{Dist: workload.KeyHotset, HotKeys: 1, HotFrac: 0.8}
	}
	bursty := func(s *workload.Spec) { s.Profile = "bursty" }

	sweep := []struct {
		label     string
		timeoutMS float64
		mutate    func(*workload.Spec)
	}{
		{"uniform", tightMS, nil},
		{"uniform", looseMS, nil},
		{"hotset", tightMS, hotset},
		{"hotset", looseMS, hotset},
		{"bursty", tightMS, bursty},
	}
	for i, sw := range sweep {
		mgr, err := lockmgr.New(lockmgr.Config{
			Shards: 4, HandlesPerLock: 3, Seed: uint64(300 + i),
		})
		if err != nil {
			return nil, err
		}
		spec := deadlineSpec(sw.timeoutMS, sw.mutate)
		res, err := loadgen.Run(loadgen.Config{
			Clients: clients, Keys: keys, Cycles: attempts,
			Workload: &spec, Seed: uint64(i + 1),
			NewLocker: func(int) (loadgen.Locker, error) {
				return loadgen.NewManagerLocker(mgr), nil
			},
		})
		if err != nil {
			return nil, fmt.Errorf("S3 %s/%vms: %w", sw.label, sw.timeoutMS, err)
		}
		addRow("inproc", sw.label, res, mgr.Violations(), spec.Ops.Timeout())
		if err := mgr.Close(); err != nil {
			return nil, err
		}
	}

	// The network row: tight per-op deadlines through a real lockd
	// session per client over loopback TCP — timeout_ms on the wire,
	// server-side context cancellation, register withdraw at the bottom.
	mgr, err := lockmgr.New(lockmgr.Config{Shards: 4, HandlesPerLock: 3, Seed: 999})
	if err != nil {
		return nil, err
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("S3 net row: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	netSpec := workload.Spec{BaseCS: 40, BaseRemainder: 1, Ops: workload.OpMix{Timed: 1, TimeoutMS: 2}}
	res, err := loadgen.Run(loadgen.Config{
		Clients: clients, Keys: keys, Cycles: attempts,
		Workload: &netSpec, Seed: 42,
		NewLocker: func(int) (loadgen.Locker, error) {
			return client.DialConn(ln.Addr().String())
		},
	})
	if err != nil {
		return nil, fmt.Errorf("S3 net row: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := <-serveErr; err != nil {
		return nil, err
	}
	addRow("lockd", "uniform", res, mgr.Violations(), 2*time.Millisecond)
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"attempts = completed cycles + aborted acquires; the per-op deadline bounds each acquire",
		"aborted acquires withdraw from the register competition (abortable-mutex back-out); violations must be 0 regardless",
		"abort rate and latency are wall-clock and machine-dependent; attempt accounting and violations are exact")
	return t, nil
}
