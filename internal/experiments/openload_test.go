package experiments

import (
	"strconv"
	"testing"

	"anonmutex/internal/workload"
)

// TestOpenLoadSweepStructure checks S4's grid: both backends appear,
// every cell reads 0 violations, and the overloaded cells actually shed
// load (aborts or shed arrivals) instead of keeping up.
func TestOpenLoadSweepStructure(t *testing.T) {
	tbl, err := OpenLoadSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (6 inproc + 2 lockd)", len(tbl.Rows))
	}
	backends := map[string]int{}
	for _, row := range tbl.Rows {
		backends[row[0]]++
		if violations := row[9]; violations != "0" {
			t.Errorf("%s/%s/%s observed %s violations", row[0], row[1], row[2], violations)
		}
	}
	if backends["inproc"] != 6 || backends["lockd"] != 2 {
		t.Errorf("backend coverage = %v", backends)
	}
	// The overloaded cells (every second row) must show a safety valve:
	// aborts or shed arrivals, with offered above achieved.
	for i := 1; i < len(tbl.Rows); i += 2 {
		row := tbl.Rows[i]
		aborts, _ := strconv.Atoi(row[6])
		shed, _ := strconv.Atoi(row[8])
		if aborts+shed == 0 {
			t.Errorf("overloaded cell %s/%s/%s shows no aborts or shed arrivals", row[0], row[1], row[2])
		}
		offered, err1 := strconv.ParseFloat(row[3], 64)
		achieved, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable rates in row %v", row)
		}
		if offered <= achieved {
			t.Errorf("overloaded cell %s/%s/%s: offered %.0f/s <= achieved %.0f/s", row[0], row[1], row[2], offered, achieved)
		}
	}
}

// TestOpenLoadSweepWith runs the one-spec form anonbench's
// -workload-file uses: the caller's spec against both backends.
func TestOpenLoadSweepWith(t *testing.T) {
	spec, err := workload.Spec{
		Keys:    workload.KeySpec{Dist: workload.KeyZipf, ZipfS: 1.2},
		Arrival: workload.ArrivalSpec{Process: workload.ArrivalPoisson, RatePerSec: 5_000},
		Ops:     workload.OpMix{Timed: 1, TimeoutMS: 10},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenLoadSweepWith(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (inproc + lockd)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if violations := row[9]; violations != "0" {
			t.Errorf("%s: %s violations", row[0], violations)
		}
	}
	// A closed-loop spec is not an open-load experiment.
	if _, err := OpenLoadSweepWith(workload.Spec{}); err == nil {
		t.Error("closed-loop spec accepted by the open-load sweep")
	}
}
