// Package workload is the repository's single traffic model: one
// seed-deterministic, JSON-describable Spec (see spec.go) composes a
// key-popularity distribution, an arrival process, an op mix, and
// session-length generators, and every load-producing layer — the
// loadgen client fleets, the scenario runners on both substrates, the
// experiment catalog, and the CLIs — draws from it through per-stream
// Sources.
//
// Everything derives from a seed so that harness runs replay exactly.
// Durations are expressed in abstract "work units": the real-concurrency
// harnesses spin for that many units (Spin), the simulated benches
// convert them to scheduler ticks.
package workload

import (
	"fmt"
)

// Profile names a session-length contention pattern.
type Profile uint8

// Built-in profiles.
const (
	// Uniform: every session has the same CS and remainder lengths —
	// maximum steady contention.
	Uniform Profile = iota + 1
	// Bursty: long idle periods punctuated by clusters of short sessions.
	Bursty
	// Skewed: one stream (index 0) hammers the lock while others touch
	// it occasionally.
	Skewed
)

// String returns the profile's canonical token. Every value — including
// unknown ones — renders to a token ParseProfile accepts, so the
// String/Parse round trip never loses information.
func (p Profile) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	case Skewed:
		return "skewed"
	default:
		return fmt.Sprintf("profile(%d)", uint8(p))
	}
}

// ParseProfile inverts Profile.String: it accepts the built-in names and
// the "profile(N)" token String renders for unknown values. Anything
// else is an error — callers that need a *usable* profile (Spec
// normalization) additionally reject parseable-but-unknown values, so a
// typo in a JSON spec fails loudly instead of defaulting to uniform.
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "bursty":
		return Bursty, nil
	case "skewed":
		return Skewed, nil
	}
	var v uint8
	if n, err := fmt.Sscanf(s, "profile(%d)", &v); err == nil && n == 1 {
		return Profile(v), nil
	}
	return 0, fmt.Errorf("workload: unknown profile %q (want uniform, bursty, or skewed)", s)
}

// Session is one lock acquisition's workload.
type Session struct {
	// CSWork is the critical-section length in work units.
	CSWork int
	// RemainderWork is the post-unlock think time in work units.
	RemainderWork int
}

// Plan is a fully materialized workload: Plan[i] lists stream i's
// sessions in order.
type Plan [][]Session

// Config is the legacy generation surface, kept as a thin alias over
// Spec: it names a profile by enum value and applies the historical
// defaults (BaseCS 5, BaseRemainder 10). New code should build a Spec
// and use SpecPlan or NewSource directly.
type Config struct {
	// N is the number of processes; Sessions the sessions per process.
	N, Sessions int
	// Profile selects the contention pattern (default Uniform).
	Profile Profile
	// BaseCS and BaseRemainder set the scale (defaults 5 and 10).
	BaseCS, BaseRemainder int
	// Seed drives all randomness.
	Seed uint64
}

func (c *Config) normalize() error {
	if c.N < 1 {
		return fmt.Errorf("workload: need N >= 1, got %d", c.N)
	}
	if c.Sessions < 1 {
		return fmt.Errorf("workload: need Sessions >= 1, got %d", c.Sessions)
	}
	if c.Profile == 0 {
		c.Profile = Uniform
	}
	if c.BaseCS == 0 {
		c.BaseCS = 5
	}
	if c.BaseRemainder == 0 {
		c.BaseRemainder = 10
	}
	if c.BaseCS < 0 || c.BaseRemainder < 0 {
		return fmt.Errorf("workload: negative base durations")
	}
	return nil
}

// Generate materializes a plan from the legacy Config alias. Unknown
// profile values are rejected (they used to fall back to uniform
// silently).
func Generate(cfg Config) (Plan, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return SpecPlan(Spec{
		Profile:       cfg.Profile.String(),
		BaseCS:        cfg.BaseCS,
		BaseRemainder: cfg.BaseRemainder,
		Seed:          cfg.Seed,
	}, cfg.N, cfg.Sessions)
}

// TotalSessions returns the number of sessions across all processes.
func (p Plan) TotalSessions() int {
	total := 0
	for _, ps := range p {
		total += len(ps)
	}
	return total
}

// Spin burns roughly units of CPU work; the benchmark harness uses it for
// critical-section and remainder work in real-concurrency runs. It returns
// a value to keep the loop from being optimized away.
func Spin(units int) uint64 {
	acc := uint64(1469598103934665603)
	for i := 0; i < units*16; i++ {
		acc ^= uint64(i)
		acc *= 1099511628211
	}
	return acc
}
