// Package workload generates deterministic lock-usage patterns for the
// benchmark harness: how long each critical section runs, how long a
// process stays in the remainder section, and how many sessions it
// performs.
//
// Everything derives from a seed so that harness runs replay exactly. The
// durations are expressed in abstract "work units"; the real-concurrency
// benches spin for that many units, the simulated benches convert them to
// scheduler ticks.
package workload

import (
	"fmt"

	"anonmutex/internal/xrand"
)

// Profile names a contention pattern.
type Profile uint8

// Built-in profiles.
const (
	// Uniform: every session has the same CS and remainder lengths —
	// maximum steady contention.
	Uniform Profile = iota + 1
	// Bursty: long idle periods punctuated by clusters of short sessions.
	Bursty
	// Skewed: one process (index 0) hammers the lock while others touch
	// it occasionally.
	Skewed
)

// String returns the profile name.
func (p Profile) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	case Skewed:
		return "skewed"
	default:
		return fmt.Sprintf("Profile(%d)", uint8(p))
	}
}

// Session is one lock acquisition's workload.
type Session struct {
	// CSWork is the critical-section length in work units.
	CSWork int
	// RemainderWork is the post-unlock think time in work units.
	RemainderWork int
}

// Plan is a fully materialized workload: Plan[i] lists process i's
// sessions in order.
type Plan [][]Session

// Config parameterizes generation.
type Config struct {
	// N is the number of processes; Sessions the sessions per process.
	N, Sessions int
	// Profile selects the contention pattern (default Uniform).
	Profile Profile
	// BaseCS and BaseRemainder set the scale (defaults 5 and 10).
	BaseCS, BaseRemainder int
	// Seed drives all randomness.
	Seed uint64
}

func (c *Config) normalize() error {
	if c.N < 1 {
		return fmt.Errorf("workload: need N >= 1, got %d", c.N)
	}
	if c.Sessions < 1 {
		return fmt.Errorf("workload: need Sessions >= 1, got %d", c.Sessions)
	}
	if c.Profile == 0 {
		c.Profile = Uniform
	}
	if c.BaseCS == 0 {
		c.BaseCS = 5
	}
	if c.BaseRemainder == 0 {
		c.BaseRemainder = 10
	}
	if c.BaseCS < 0 || c.BaseRemainder < 0 {
		return fmt.Errorf("workload: negative base durations")
	}
	return nil
}

// Generate materializes a plan.
func Generate(cfg Config) (Plan, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := xrand.New(cfg.Seed)
	plan := make(Plan, cfg.N)
	for i := range plan {
		pr := r.Fork()
		plan[i] = make([]Session, cfg.Sessions)
		for s := range plan[i] {
			plan[i][s] = genSession(cfg, pr, i, s)
		}
	}
	return plan, nil
}

func genSession(cfg Config, r *xrand.Rand, proc, _ int) Session {
	jitter := func(base int) int {
		if base == 0 {
			return 0
		}
		// ±50% uniform jitter, at least 1.
		lo := base/2 + 1
		return lo + r.Intn(base)
	}
	switch cfg.Profile {
	case Uniform:
		return Session{CSWork: cfg.BaseCS, RemainderWork: cfg.BaseRemainder}
	case Bursty:
		if r.Intn(4) == 0 { // a burst: negligible think time
			return Session{CSWork: jitter(cfg.BaseCS), RemainderWork: 1}
		}
		return Session{CSWork: jitter(cfg.BaseCS), RemainderWork: 10 * cfg.BaseRemainder}
	case Skewed:
		if proc == 0 {
			return Session{CSWork: jitter(cfg.BaseCS), RemainderWork: 1}
		}
		return Session{CSWork: jitter(cfg.BaseCS), RemainderWork: 5 * cfg.BaseRemainder}
	default:
		return Session{CSWork: cfg.BaseCS, RemainderWork: cfg.BaseRemainder}
	}
}

// TotalSessions returns the number of sessions across all processes.
func (p Plan) TotalSessions() int {
	total := 0
	for _, ps := range p {
		total += len(ps)
	}
	return total
}

// Spin burns roughly units of CPU work; the benchmark harness uses it for
// critical-section and remainder work in real-concurrency runs. It returns
// a value to keep the loop from being optimized away.
func Spin(units int) uint64 {
	acc := uint64(1469598103934665603)
	for i := 0; i < units*16; i++ {
		acc ^= uint64(i)
		acc *= 1099511628211
	}
	return acc
}
