package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustNormalize(t *testing.T, s Spec) Spec {
	t.Helper()
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s := mustNormalize(t, Spec{})
	if s.Profile != "uniform" || s.Keys.Dist != KeyUniform || s.Arrival.Process != ArrivalClosed {
		t.Errorf("defaults not filled: %+v", s)
	}
	if s.Ops.Lock != 1 || s.Ops.Try != 0 || s.Ops.Timed != 0 {
		t.Errorf("empty op mix should default to pure locks: %+v", s.Ops)
	}
	// A bare timeout means every acquire is deadline-bounded.
	s = mustNormalize(t, Spec{Ops: OpMix{TimeoutMS: 5}})
	if s.Ops.Timed != 1 || s.Ops.Lock != 0 {
		t.Errorf("bare timeout_ms should imply timed=1: %+v", s.Ops)
	}
	if s.Ops.Timeout() != 5*time.Millisecond {
		t.Errorf("Timeout() = %v", s.Ops.Timeout())
	}
	// Normalize is idempotent (the registry stores normalized specs).
	again := mustNormalize(t, s)
	if again != s {
		t.Errorf("Normalize not idempotent:\n  once:  %+v\n  twice: %+v", s, again)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown profile", Spec{Profile: "pareto"}, "unknown profile"},
		{"parseable unknown profile", Spec{Profile: "profile(9)"}, "no built-in profile"},
		{"unknown key dist", Spec{Keys: KeySpec{Dist: "pareto"}}, "unknown key distribution"},
		{"unknown arrival", Spec{Arrival: ArrivalSpec{Process: "fifo"}}, "unknown arrival process"},
		{"open without rate", Spec{Arrival: ArrivalSpec{Process: ArrivalPoisson}}, "rate_per_sec"},
		{"timed without timeout", Spec{Ops: OpMix{Timed: 1}}, "timeout_ms"},
		{"negative base", Spec{BaseCS: -1}, "negative base"},
		{"negative weight", Spec{Ops: OpMix{Lock: -1}}, "negative op-mix"},
		{"bad hot frac", Spec{Keys: KeySpec{Dist: KeyHotset, HotFrac: 1.5}}, "hot_frac"},
		{"bad zipf s", Spec{Keys: KeySpec{Dist: KeyZipf, ZipfS: -2}}, "zipf_s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Normalize()
			if err == nil {
				t.Fatalf("Normalize(%+v) accepted an invalid spec", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSpecParseJSON(t *testing.T) {
	spec, err := ParseJSON([]byte(`{
		"profile": "bursty", "base_cs": 3, "seed": 7,
		"keys": {"dist": "zipf", "zipf_s": 1.2},
		"arrival": {"process": "poisson", "rate_per_sec": 1000},
		"ops": {"lock": 0.5, "timed": 0.5, "timeout_ms": 2.5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Keys.Dist != KeyZipf || !spec.Open() || spec.Ops.Timed != 0.5 {
		t.Errorf("parsed spec: %+v", spec)
	}
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Errorf("round trip changed the spec:\n  orig: %+v\n  back: %+v", spec, back)
	}

	// Unknown fields and unknown names fail loudly, never default.
	if _, err := ParseJSON([]byte(`{"profle": "uniform"}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseJSON([]byte(`{"profile": "spiky"}`)); err == nil {
		t.Error("unknown profile name accepted")
	}
	if _, err := ParseJSON([]byte(`{"keys": {"dist": "pareto"}}`)); err == nil {
		t.Error("unknown key distribution accepted")
	}
}

func TestProfileStringParseRoundTrip(t *testing.T) {
	// Every value — known or not — must render to a token ParseProfile
	// inverts exactly.
	for _, p := range []Profile{Uniform, Bursty, Skewed, Profile(0), Profile(9), Profile(255)} {
		tok := p.String()
		back, err := ParseProfile(tok)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", tok, err)
		}
		if back != p {
			t.Errorf("round trip %v → %q → %v", p, tok, back)
		}
	}
	if _, err := ParseProfile("pareto"); err == nil {
		t.Error("ParseProfile accepted an unknown name")
	}
	if _, err := ParseProfile("profile(x)"); err == nil {
		t.Error("ParseProfile accepted a malformed token")
	}
}

func TestGenerateRejectsUnknownProfileValue(t *testing.T) {
	// The legacy path used to fall back to uniform silently; now it must
	// fail loudly.
	if _, err := Generate(Config{N: 2, Sessions: 2, Profile: Profile(9)}); err == nil {
		t.Error("Generate accepted an unknown profile value")
	}
}

func TestSourceDeterminism(t *testing.T) {
	spec := mustNormalize(t, Spec{
		Profile: "bursty", BaseCS: 4, BaseRemainder: 6, Seed: 42,
		Keys: KeySpec{Dist: KeyZipf, ZipfS: 1.1},
		Ops:  OpMix{Lock: 0.6, Try: 0.2, Timed: 0.2, TimeoutMS: 1},
	})
	a, err := TraceOps(spec, 3, 16, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceOps(spec, 3, 16, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical spec+stream produced different traces")
	}
	c, _ := TraceOps(spec, 4, 16, 500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct streams produced identical traces")
	}
}

// TestSourceStreamIndependence pins the property the cross-consumer
// replay tests build on: the session subsequence does not depend on
// whether keys and ops are drawn in between (each generator has its own
// stream).
func TestSourceStreamIndependence(t *testing.T) {
	spec := mustNormalize(t, Spec{Profile: "bursty", BaseCS: 4, BaseRemainder: 6, Seed: 11})
	interleaved := NewSource(spec, 2)
	pure := NewSource(spec, 2)
	for i := 0; i < 200; i++ {
		interleaved.PickKey(8)
		interleaved.NextOp()
		got := interleaved.NextSession()
		want := pure.NextSession()
		if got != want {
			t.Fatalf("session %d diverged: interleaved %+v, pure %+v", i, got, want)
		}
	}
}

func TestSpecPlanMatchesSessionStream(t *testing.T) {
	spec := mustNormalize(t, Spec{Profile: "skewed", BaseCS: 5, BaseRemainder: 10, Seed: 3})
	plan, err := SpecPlan(spec, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan {
		src := NewSource(spec, uint64(i))
		for s, sess := range plan[i] {
			if want := src.NextSession(); sess != want {
				t.Fatalf("plan[%d][%d] = %+v, want %+v", i, s, sess, want)
			}
		}
	}
}

// keyFreqs draws n picks and returns the per-key counts.
func keyFreqs(t *testing.T, spec Spec, nkeys, n int) []int {
	t.Helper()
	src := NewSource(mustNormalize(t, spec), 0)
	freq := make([]int, nkeys)
	for i := 0; i < n; i++ {
		freq[src.PickKey(nkeys)]++
	}
	return freq
}

// chiSquare computes Σ (observed-expected)²/expected against the given
// probability vector.
func chiSquare(freq []int, prob []float64, n int) float64 {
	x := 0.0
	for i, f := range freq {
		e := prob[i] * float64(n)
		d := float64(f) - e
		x += d * d / e
	}
	return x
}

// TestZipfFrequencies is the statistical sanity check for the zipf
// distribution at a fixed seed: the empirical frequencies must track the
// theoretical 1/(k+1)^s weights within a generous chi-square bound, and
// must be head-heavy.
func TestZipfFrequencies(t *testing.T) {
	const nkeys, n = 32, 200_000
	const s = 1.1
	freq := keyFreqs(t, Spec{Seed: 101, Keys: KeySpec{Dist: KeyZipf, ZipfS: s}}, nkeys, n)
	prob := make([]float64, nkeys)
	sum := 0.0
	for i := range prob {
		prob[i] = 1 / math.Pow(float64(i+1), s)
		sum += prob[i]
	}
	for i := range prob {
		prob[i] /= sum
	}
	// 31 degrees of freedom: the 99.9th percentile is ~61; anything near
	// that at this sample size means the sampler is broken, not unlucky
	// (the seed is fixed, so this is fully deterministic anyway).
	if x := chiSquare(freq, prob, n); x > 61 {
		t.Errorf("zipf chi-square = %.1f (df=31), frequencies off: %v", x, freq)
	}
	if freq[0] <= freq[nkeys/2] || freq[0] <= freq[nkeys-1] {
		t.Errorf("zipf head not heavy: freq[0]=%d freq[mid]=%d freq[last]=%d",
			freq[0], freq[nkeys/2], freq[nkeys-1])
	}
}

// TestHotsetFrequencies: the hot keys must absorb HotFrac of the traffic
// (within sampling tolerance at the fixed seed) and split it evenly.
func TestHotsetFrequencies(t *testing.T) {
	const nkeys, n = 16, 200_000
	freq := keyFreqs(t, Spec{Seed: 7, Keys: KeySpec{Dist: KeyHotset, HotKeys: 2, HotFrac: 0.8}}, nkeys, n)
	hot := freq[0] + freq[1]
	got := float64(hot) / float64(n)
	if got < 0.78 || got > 0.82 {
		t.Errorf("hot fraction = %.3f, want ≈0.8", got)
	}
	// Within each tier the split is uniform: build the tiered probability
	// vector and chi-square it.
	prob := make([]float64, nkeys)
	for i := range prob {
		if i < 2 {
			prob[i] = 0.8 / 2
		} else {
			prob[i] = 0.2 / float64(nkeys-2)
		}
	}
	if x := chiSquare(freq, prob, n); x > 40 { // df=15, 99.9th pct ≈ 37.7
		t.Errorf("hotset chi-square = %.1f (df=15): %v", x, freq)
	}
}

// TestUniformFrequencies: the uniform distribution stays flat.
func TestUniformFrequencies(t *testing.T) {
	const nkeys, n = 16, 160_000
	freq := keyFreqs(t, Spec{Seed: 13}, nkeys, n)
	prob := make([]float64, nkeys)
	for i := range prob {
		prob[i] = 1 / float64(nkeys)
	}
	if x := chiSquare(freq, prob, n); x > 40 {
		t.Errorf("uniform chi-square = %.1f (df=15): %v", x, freq)
	}
}

// TestShiftingHotsetMoves: the hot window must actually move across the
// key space as picks accumulate.
func TestShiftingHotsetMoves(t *testing.T) {
	spec := mustNormalize(t, Spec{Seed: 5, Keys: KeySpec{
		Dist: KeyShiftingHotset, HotKeys: 1, HotFrac: 0.9, ShiftEvery: 1000,
	}})
	src := NewSource(spec, 0)
	const nkeys = 8
	hotOf := func() int { // dominant key over one window
		freq := make([]int, nkeys)
		for i := 0; i < 1000; i++ {
			freq[src.PickKey(nkeys)]++
		}
		best := 0
		for i, f := range freq {
			if f > freq[best] {
				best = i
			}
		}
		if freq[best] < 800 {
			t.Fatalf("no dominant hot key in window: %v", freq)
		}
		return best
	}
	first, second := hotOf(), hotOf()
	if first == second {
		t.Errorf("hot key did not shift: stayed at %d", first)
	}
	if second != (first+1)%nkeys {
		t.Errorf("hot key moved %d → %d, want the adjacent window", first, second)
	}
}

func TestOpMixProportions(t *testing.T) {
	spec := mustNormalize(t, Spec{Seed: 17, Ops: OpMix{Lock: 0.5, Try: 0.3, Timed: 0.2, TimeoutMS: 1}})
	src := NewSource(spec, 0)
	const n = 100_000
	counts := map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[src.NextOp()]++
	}
	check := func(k OpKind, want float64) {
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v fraction = %.3f, want ≈%.1f", k, got, want)
		}
	}
	check(OpLock, 0.5)
	check(OpTry, 0.3)
	check(OpTimed, 0.2)
}

func TestArrivalDelays(t *testing.T) {
	// Poisson: the mean inter-arrival gap must approximate 1/rate.
	poisson := mustNormalize(t, Spec{Seed: 23, Arrival: ArrivalSpec{Process: ArrivalPoisson, RatePerSec: 1000}})
	src := NewSource(poisson, 0)
	var total time.Duration
	const n = 50_000
	for i := 0; i < n; i++ {
		total += src.NextArrivalDelay()
	}
	mean := float64(total) / n / float64(time.Millisecond)
	if mean < 0.95 || mean > 1.05 {
		t.Errorf("poisson mean gap = %.3fms, want ≈1ms", mean)
	}

	// Bursty: BurstSize arrivals share an instant, then one gap restores
	// the long-run rate.
	bursty := mustNormalize(t, Spec{Seed: 23, Arrival: ArrivalSpec{
		Process: ArrivalBursty, RatePerSec: 1000, BurstSize: 4,
	}})
	src = NewSource(bursty, 0)
	for round := 0; round < 5; round++ {
		if gap := src.NextArrivalDelay(); gap != 4*time.Millisecond {
			t.Fatalf("round %d: burst gap = %v, want 4ms", round, gap)
		}
		for i := 0; i < 3; i++ {
			if gap := src.NextArrivalDelay(); gap != 0 {
				t.Fatalf("round %d: intra-burst gap = %v, want 0", round, gap)
			}
		}
	}

	// Closed loop has no arrival schedule.
	closed := mustNormalize(t, Spec{})
	if d := NewSource(closed, 0).NextArrivalDelay(); d != 0 {
		t.Errorf("closed-loop delay = %v", d)
	}
}
