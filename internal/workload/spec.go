package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"anonmutex/internal/xrand"
)

// Spec is the unified, JSON-describable traffic model shared by every
// load-producing layer in the repository: the loadgen client fleets, the
// scenario runner on both substrates, the experiment catalog, and the
// CLIs (`-workload` / `-workload-file`). One Spec composes four
// orthogonal generators, all derived deterministically from Seed:
//
//   - a session profile (Profile/BaseCS/BaseRemainder): per-session
//     critical-section and remainder lengths, in abstract work units
//     (spin units on the real substrate, scheduler ticks when the
//     simulator scales them by a scenario's cs_ticks);
//   - a key-popularity distribution (Keys): which lock name each
//     acquire targets — uniform, zipf(s), a fixed hotset, or a hotset
//     that shifts across the key space over time;
//   - an arrival process (Arrival): closed-loop (each client thinks
//     between its own cycles) or open-loop (Poisson or bursty arrivals
//     at an offered rate, decoupled from service capacity, with a
//     bounded backlog — the load model abortable-mutex evaluations
//     measure);
//   - an op mix (Ops): blocking lock, bounded trylock, deadline-bounded
//     acquire with a per-op timeout, and crash (acquire, then die
//     holding the lock), drawn by weight.
//
// The zero value of every field means "default"; Normalize fills
// defaults and validates, failing loudly on unknown names. Spec contains
// only scalars, so it is comparable and replays bit-identically: two
// consumers that build Sources from the same normalized Spec and stream
// id observe identical draw sequences (see NewSource).
type Spec struct {
	// Profile selects the session-length generator: uniform, bursty, or
	// skewed (see Profile). BaseCS and BaseRemainder set its scale in
	// work units; zero means no work of that kind.
	Profile       string `json:"profile,omitempty"`
	BaseCS        int    `json:"base_cs,omitempty"`
	BaseRemainder int    `json:"base_remainder,omitempty"`
	// Seed drives every stream derived from this spec.
	Seed uint64 `json:"seed,omitempty"`
	// ConnsPerSocket is how many logical sessions a network backend
	// multiplexes onto each physical socket (the binary transport's
	// stream fan-in). 0 means the transport default: one dedicated
	// socket per session. Backends without a network substrate ignore
	// it.
	ConnsPerSocket int `json:"conns_per_socket,omitempty"`
	// Keys is the key-popularity distribution.
	Keys KeySpec `json:"keys"`
	// Arrival is the arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Ops is the op mix.
	Ops OpMix `json:"ops"`
}

// Key-distribution names used in KeySpec.Dist.
const (
	// KeyUniform spreads acquires evenly over the key space.
	KeyUniform = "uniform"
	// KeyZipf draws key k with probability ∝ 1/(k+1)^s.
	KeyZipf = "zipf"
	// KeyHotset sends HotFrac of the traffic to HotKeys hot keys and
	// spreads the rest uniformly over the cold keys.
	KeyHotset = "hotset"
	// KeyShiftingHotset is KeyHotset with the hot window advancing by
	// HotKeys positions every ShiftEvery picks — a moving hotspot.
	KeyShiftingHotset = "shifting-hotset"
)

// KeySpec is the key-popularity distribution of a Spec.
type KeySpec struct {
	// Dist is uniform, zipf, hotset, or shifting-hotset (default
	// uniform).
	Dist string `json:"dist,omitempty"`
	// ZipfS is the zipf exponent (default 1.1; zipf only).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// HotKeys is the hot-set size (default 1) and HotFrac the fraction
	// of traffic it receives (default 0.8); hotset variants only.
	HotKeys int     `json:"hot_keys,omitempty"`
	HotFrac float64 `json:"hot_frac,omitempty"`
	// ShiftEvery is how many picks the hot window stays in place
	// (default 1000; shifting-hotset only).
	ShiftEvery int `json:"shift_every,omitempty"`
}

// Arrival-process names used in ArrivalSpec.Process.
const (
	// ArrivalClosed is the closed loop: each client completes a cycle,
	// thinks for the session's remainder length, then starts the next.
	ArrivalClosed = "closed"
	// ArrivalPoisson is open-loop Poisson: arrivals at exponentially
	// distributed intervals with mean 1/RatePerSec, independent of how
	// fast the backend serves them.
	ArrivalPoisson = "poisson"
	// ArrivalBursty is open-loop bursts: BurstSize simultaneous
	// arrivals, then a gap sized so the long-run rate is RatePerSec.
	ArrivalBursty = "bursty"
)

// ArrivalSpec is the arrival process of a Spec.
type ArrivalSpec struct {
	// Process is closed (default), poisson, or bursty.
	Process string `json:"process,omitempty"`
	// RatePerSec is the offered arrival rate across the whole client
	// fleet (open-loop modes; required there).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// BurstSize is the arrivals per burst (default 8; bursty only).
	BurstSize int `json:"burst_size,omitempty"`
	// MaxBacklog bounds the pending-arrival queue; arrivals beyond it
	// are shed and reported, keeping in-flight work bounded (0: the
	// harness picks 4× the client count).
	MaxBacklog int `json:"max_backlog,omitempty"`
}

// OpKind is one acquire's flavor, drawn from a Spec's op mix.
type OpKind uint8

// Op kinds.
const (
	// OpLock is a blocking acquire.
	OpLock OpKind = iota + 1
	// OpTry is a bounded trylock: it never waits out a holder's
	// critical section; a miss is counted, not retried.
	OpTry
	// OpTimed is a deadline-bounded acquire with the mix's per-op
	// timeout; expiry withdraws cleanly and counts as an abort.
	OpTimed
	// OpCrash acquires the key and then dies holding it: no release, no
	// heartbeat, the session simply goes dark. It models a holder
	// crashing inside its critical section — the failure the lease
	// subsystem's TTL expiry exists to recover from. Backends without a
	// crash facility reject specs that weight it.
	OpCrash
)

// String returns the op-kind name.
func (k OpKind) String() string {
	switch k {
	case OpLock:
		return "lock"
	case OpTry:
		return "try"
	case OpTimed:
		return "timed"
	case OpCrash:
		return "crash"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// OpMix is the op mix of a Spec: relative weights for each kind. All
// zero means pure blocking locks; TimeoutMS set with all weights zero
// means pure deadline-bounded acquires.
type OpMix struct {
	Lock  float64 `json:"lock,omitempty"`
	Try   float64 `json:"try,omitempty"`
	Timed float64 `json:"timed,omitempty"`
	// Crash weights holders that die inside the critical section (see
	// OpCrash). Leaving it 0 keeps every existing spec's draw sequence
	// bit-identical.
	Crash float64 `json:"crash,omitempty"`
	// TimeoutMS is the per-op deadline for timed acquires, in
	// milliseconds (fractions allowed; required when Timed > 0).
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
}

// Timeout returns the timed-op deadline as a duration.
func (m OpMix) Timeout() time.Duration {
	return time.Duration(m.TimeoutMS * float64(time.Millisecond))
}

// Open reports whether the spec's arrival process is open-loop.
func (s Spec) Open() bool {
	return s.Arrival.Process == ArrivalPoisson || s.Arrival.Process == ArrivalBursty
}

// Normalize fills defaults and validates the spec, returning the
// completed copy. Unknown profile, distribution, arrival, or op names
// fail loudly — they never fall back to uniform.
func (s Spec) Normalize() (Spec, error) {
	if s.Profile == "" {
		s.Profile = Uniform.String()
	}
	p, err := ParseProfile(s.Profile)
	if err != nil {
		return s, err
	}
	switch p {
	case Uniform, Bursty, Skewed:
		s.Profile = p.String()
	default:
		return s, fmt.Errorf("workload: profile %q names no built-in profile", s.Profile)
	}
	if s.BaseCS < 0 || s.BaseRemainder < 0 {
		return s, fmt.Errorf("workload: negative base durations")
	}
	if s.ConnsPerSocket < 0 {
		return s, fmt.Errorf("workload: negative conns_per_socket")
	}

	switch s.Keys.Dist {
	case "":
		s.Keys.Dist = KeyUniform
	case KeyUniform, KeyZipf, KeyHotset, KeyShiftingHotset:
	default:
		return s, fmt.Errorf("workload: unknown key distribution %q (want %s, %s, %s, or %s)",
			s.Keys.Dist, KeyUniform, KeyZipf, KeyHotset, KeyShiftingHotset)
	}
	if s.Keys.ZipfS == 0 {
		s.Keys.ZipfS = 1.1
	}
	if s.Keys.ZipfS <= 0 {
		return s, fmt.Errorf("workload: zipf_s must be positive, got %v", s.Keys.ZipfS)
	}
	if s.Keys.HotKeys == 0 {
		s.Keys.HotKeys = 1
	}
	if s.Keys.HotKeys < 0 {
		return s, fmt.Errorf("workload: hot_keys must be positive, got %d", s.Keys.HotKeys)
	}
	if s.Keys.HotFrac == 0 {
		s.Keys.HotFrac = 0.8
	}
	if s.Keys.HotFrac < 0 || s.Keys.HotFrac > 1 {
		return s, fmt.Errorf("workload: hot_frac must be in (0, 1], got %v", s.Keys.HotFrac)
	}
	if s.Keys.ShiftEvery == 0 {
		s.Keys.ShiftEvery = 1000
	}
	if s.Keys.ShiftEvery < 0 {
		return s, fmt.Errorf("workload: shift_every must be positive, got %d", s.Keys.ShiftEvery)
	}

	switch s.Arrival.Process {
	case "":
		s.Arrival.Process = ArrivalClosed
	case ArrivalClosed, ArrivalPoisson, ArrivalBursty:
	default:
		return s, fmt.Errorf("workload: unknown arrival process %q (want %s, %s, or %s)",
			s.Arrival.Process, ArrivalClosed, ArrivalPoisson, ArrivalBursty)
	}
	if s.Open() && s.Arrival.RatePerSec <= 0 {
		return s, fmt.Errorf("workload: open-loop arrivals (%s) need rate_per_sec > 0", s.Arrival.Process)
	}
	if s.Arrival.RatePerSec < 0 {
		return s, fmt.Errorf("workload: negative rate_per_sec")
	}
	if s.Arrival.BurstSize == 0 {
		s.Arrival.BurstSize = 8
	}
	if s.Arrival.BurstSize < 0 {
		return s, fmt.Errorf("workload: burst_size must be positive, got %d", s.Arrival.BurstSize)
	}
	if s.Arrival.MaxBacklog < 0 {
		return s, fmt.Errorf("workload: negative max_backlog")
	}

	if s.Ops.Lock < 0 || s.Ops.Try < 0 || s.Ops.Timed < 0 || s.Ops.Crash < 0 || s.Ops.TimeoutMS < 0 {
		return s, fmt.Errorf("workload: negative op-mix values")
	}
	if s.Ops.Lock+s.Ops.Try+s.Ops.Timed+s.Ops.Crash == 0 {
		if s.Ops.TimeoutMS > 0 {
			s.Ops.Timed = 1 // a bare timeout means "every acquire is bounded"
		} else {
			s.Ops.Lock = 1
		}
	}
	if s.Ops.Timed > 0 && s.Ops.TimeoutMS <= 0 {
		return s, fmt.Errorf("workload: timed ops need timeout_ms > 0")
	}
	return s, nil
}

// JSON returns the spec's canonical (indented) JSON encoding.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseJSON decodes and normalizes a spec from JSON. Unknown fields are
// rejected, so typos in workload files fail loudly.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: parsing spec: %w", err)
	}
	return s.Normalize()
}

// Source draws one stream of traffic from a normalized Spec. Each
// generator (keys, ops, sessions, arrivals) has its own SplitMix64
// stream derived from (Seed, stream id), so the subsequences are
// independent: a consumer that draws only sessions observes exactly the
// session sequence a consumer interleaving key and op draws does — the
// property the cross-consumer replay tests pin.
//
// Stream ids identify the traffic source: loadgen uses the client index,
// the scenario runners use the process index. The skewed profile treats
// stream 0 as the hammering process. A Source is not safe for concurrent
// use; give each goroutine its own.
type Source struct {
	spec    Spec
	stream  uint64
	profile Profile

	keysR, opsR, sessR, arrR *xrand.Rand

	picks     int // key picks so far (drives the shifting hotset)
	burstLeft int // arrivals remaining in the current burst

	cdf     []float64 // zipf CDF, cached per key-space size
	cdfKeys int
}

// NewSource builds the generator for one stream of spec, which must be
// normalized (NewSource does not validate).
func NewSource(spec Spec, stream uint64) *Source {
	p, _ := ParseProfile(spec.Profile)
	return &Source{
		spec:    spec,
		stream:  stream,
		profile: p,
		keysR:   streamRand(spec.Seed, stream, 1),
		opsR:    streamRand(spec.Seed, stream, 2),
		sessR:   streamRand(spec.Seed, stream, 3),
		arrR:    streamRand(spec.Seed, stream, 4),
	}
}

// streamRand derives the generator for one (seed, stream, purpose)
// triple; full mixing keeps the streams independent in practice.
func streamRand(seed, stream, purpose uint64) *xrand.Rand {
	return xrand.New(xrand.Mix64(seed ^ xrand.Mix64(stream*0x9e3779b97f4a7c15+purpose)))
}

// PickKey draws the next acquire's key index in [0, nkeys).
func (s *Source) PickKey(nkeys int) int {
	if nkeys <= 1 {
		s.picks++
		return 0
	}
	k := s.spec.Keys
	var pick int
	switch k.Dist {
	case KeyZipf:
		pick = s.zipfPick(nkeys)
	case KeyHotset:
		pick = s.hotPick(nkeys, 0)
	case KeyShiftingHotset:
		hot := k.HotKeys
		if hot > nkeys {
			hot = nkeys
		}
		start := (s.picks / k.ShiftEvery * hot) % nkeys
		pick = s.hotPick(nkeys, start)
	default:
		pick = s.keysR.Intn(nkeys)
	}
	s.picks++
	return pick
}

// zipfPick samples from zipf(s) over nkeys keys via the cached CDF.
func (s *Source) zipfPick(nkeys int) int {
	if s.cdf == nil || s.cdfKeys != nkeys {
		cdf := make([]float64, nkeys)
		sum := 0.0
		for i := range cdf {
			sum += 1 / math.Pow(float64(i+1), s.spec.Keys.ZipfS)
			cdf[i] = sum
		}
		for i := range cdf {
			cdf[i] /= sum
		}
		s.cdf, s.cdfKeys = cdf, nkeys
	}
	i := sort.SearchFloat64s(s.cdf, s.keysR.Float64())
	if i >= nkeys {
		i = nkeys - 1
	}
	return i
}

// hotPick samples the hotset distribution with the hot window starting
// at start (wrapping around the key space).
func (s *Source) hotPick(nkeys, start int) int {
	hot := s.spec.Keys.HotKeys
	if hot >= nkeys {
		return s.keysR.Intn(nkeys)
	}
	if s.keysR.Float64() < s.spec.Keys.HotFrac {
		return (start + s.keysR.Intn(hot)) % nkeys
	}
	return (start + hot + s.keysR.Intn(nkeys-hot)) % nkeys
}

// NextOp draws the next acquire's kind from the op mix.
func (s *Source) NextOp() OpKind {
	m := s.spec.Ops
	total := m.Lock + m.Try + m.Timed + m.Crash
	if total <= 0 {
		return OpLock
	}
	u := s.opsR.Float64() * total
	switch {
	case u < m.Lock:
		return OpLock
	case u < m.Lock+m.Try:
		return OpTry
	case u < m.Lock+m.Try+m.Timed:
		return OpTimed
	default:
		return OpCrash
	}
}

// NextSession draws the next session's critical-section and remainder
// lengths from the profile.
func (s *Source) NextSession() Session {
	r := s.sessR
	jitter := func(base int) int {
		if base == 0 {
			return 0
		}
		// ±50% uniform jitter, at least 1.
		return base/2 + 1 + r.Intn(base)
	}
	switch s.profile {
	case Bursty:
		if r.Intn(4) == 0 { // a burst: negligible think time
			return Session{CSWork: jitter(s.spec.BaseCS), RemainderWork: 1}
		}
		return Session{CSWork: jitter(s.spec.BaseCS), RemainderWork: 10 * s.spec.BaseRemainder}
	case Skewed:
		if s.stream == 0 {
			return Session{CSWork: jitter(s.spec.BaseCS), RemainderWork: 1}
		}
		return Session{CSWork: jitter(s.spec.BaseCS), RemainderWork: 5 * s.spec.BaseRemainder}
	default:
		return Session{CSWork: s.spec.BaseCS, RemainderWork: s.spec.BaseRemainder}
	}
}

// NextArrivalDelay draws the gap to the next open-loop arrival (zero
// for closed-loop specs, and zero inside a burst).
func (s *Source) NextArrivalDelay() time.Duration {
	a := s.spec.Arrival
	switch a.Process {
	case ArrivalPoisson:
		// Inverse-CDF exponential with mean 1/rate.
		d := -math.Log1p(-s.arrR.Float64()) / a.RatePerSec
		return time.Duration(d * float64(time.Second))
	case ArrivalBursty:
		if s.burstLeft > 0 {
			s.burstLeft--
			return 0
		}
		s.burstLeft = a.BurstSize - 1
		return time.Duration(float64(a.BurstSize) / a.RatePerSec * float64(time.Second))
	default:
		return 0
	}
}

// OpEvent is one fully drawn acquire: the canonical consumption order
// every harness follows is key, then op kind, then session.
type OpEvent struct {
	Key     int
	Kind    OpKind
	Session Session
}

// TraceOps materializes one stream's first count op events over a
// key space of nkeys — the reference trace the replay-determinism tests
// compare live consumers against.
func TraceOps(spec Spec, stream uint64, nkeys, count int) ([]OpEvent, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if nkeys < 1 || count < 0 {
		return nil, fmt.Errorf("workload: TraceOps needs nkeys >= 1 and count >= 0")
	}
	src := NewSource(spec, stream)
	out := make([]OpEvent, count)
	for i := range out {
		out[i] = OpEvent{Key: src.PickKey(nkeys), Kind: src.NextOp(), Session: src.NextSession()}
	}
	return out, nil
}

// SpecPlan materializes a session plan for n processes from the unified
// model: plan[i] is stream i's first `sessions` sessions. The scenario
// runners (real and simulated substrates) draw their per-session work
// from it, so a loadgen client and a scenario process with the same
// stream id replay identical session sequences.
func SpecPlan(spec Spec, n, sessions int) (Plan, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: need n >= 1, got %d", n)
	}
	if sessions < 1 {
		return nil, fmt.Errorf("workload: need sessions >= 1, got %d", sessions)
	}
	plan := make(Plan, n)
	for i := range plan {
		src := NewSource(spec, uint64(i))
		plan[i] = make([]Session, sessions)
		for s := range plan[i] {
			plan[i][s] = src.NextSession()
		}
	}
	return plan, nil
}
