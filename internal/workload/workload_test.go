package workload

import (
	"reflect"
	"testing"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{N: 0, Sessions: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Generate(Config{N: 1, Sessions: 0}); err == nil {
		t.Error("Sessions=0 accepted")
	}
	if _, err := Generate(Config{N: 1, Sessions: 1, BaseCS: -1}); err == nil {
		t.Error("negative BaseCS accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	plan, err := Generate(Config{N: 3, Sessions: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("plan for %d processes", len(plan))
	}
	for i, ps := range plan {
		if len(ps) != 4 {
			t.Fatalf("process %d has %d sessions", i, len(ps))
		}
		for _, s := range ps {
			if s.CSWork <= 0 || s.RemainderWork <= 0 {
				t.Fatalf("non-positive workload %+v", s)
			}
		}
	}
	if plan.TotalSessions() != 12 {
		t.Fatalf("TotalSessions = %d", plan.TotalSessions())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, profile := range []Profile{Uniform, Bursty, Skewed} {
		cfg := Config{N: 4, Sessions: 6, Profile: profile, Seed: 42}
		a, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("profile %v not deterministic", profile)
		}
	}
}

func TestUniformIsConstant(t *testing.T) {
	plan, _ := Generate(Config{N: 2, Sessions: 5, Profile: Uniform, BaseCS: 7, BaseRemainder: 9, Seed: 3})
	for _, ps := range plan {
		for _, s := range ps {
			if s.CSWork != 7 || s.RemainderWork != 9 {
				t.Fatalf("uniform session %+v", s)
			}
		}
	}
}

func TestSkewedFavorsProcessZero(t *testing.T) {
	plan, _ := Generate(Config{N: 3, Sessions: 20, Profile: Skewed, Seed: 5})
	think0, think1 := 0, 0
	for _, s := range plan[0] {
		think0 += s.RemainderWork
	}
	for _, s := range plan[1] {
		think1 += s.RemainderWork
	}
	if think0 >= think1 {
		t.Fatalf("skewed profile: process 0 thinks %d, process 1 thinks %d", think0, think1)
	}
}

func TestBurstyVariance(t *testing.T) {
	plan, _ := Generate(Config{N: 1, Sessions: 60, Profile: Bursty, Seed: 9})
	short, long := 0, 0
	for _, s := range plan[0] {
		if s.RemainderWork <= 1 {
			short++
		} else {
			long++
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("bursty profile produced no mix (short=%d long=%d)", short, long)
	}
}

func TestSpinReturnsAndScales(t *testing.T) {
	if Spin(10) == 0 {
		t.Error("Spin returned 0")
	}
	if Spin(0) == 0 {
		t.Error("Spin(0) returned 0 (accumulator must be nonzero)")
	}
}

func TestProfileStrings(t *testing.T) {
	for _, p := range []Profile{Uniform, Bursty, Skewed, Profile(9)} {
		if p.String() == "" {
			t.Errorf("empty name for %d", p)
		}
	}
}
