package chaos

// The scenario implementations. Each stands up its own harness,
// injects exactly one failure, measures recovery, and lets
// finishReport enforce the shared invariants (zero violations,
// recovery within 2×TTL plus slack).

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"anonmutex/internal/loadgen"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// runKillHolder: the holder's process dies inside its critical section
// — socket torn down by the kernel, no release op ever sent. The
// server's session teardown (not TTL expiry) must free the grants, so
// recovery is bounded by teardown latency, far under the TTL bound.
// A contender is already blocked on the key when the holder dies,
// which is the worst case: it observes the whole unavailability
// window.
func runKillHolder(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h, err := startHarness(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	holder, err := client.DialConn(h.addr)
	if err != nil {
		h.stop()
		return nil, err
	}
	holder.AutoHeartbeat(cfg.Heartbeat)
	if err := holder.Acquire("cs"); err != nil {
		h.stop()
		return nil, err
	}
	// Park a contender on the key, then kill the holder mid-CS.
	bound := 2*cfg.TTL + recoverySlack
	got := make(chan error, 1)
	waiting := make(chan struct{})
	go func() {
		close(waiting)
		took, err := acquireWithin(h.addr, "cs", bound)
		if took > r.MaxRecovery {
			r.MaxRecovery = took
		}
		got <- err
	}()
	<-waiting
	time.Sleep(cfg.Heartbeat) // let the contender reach the wait queue
	holder.Close()            // the kill: socket gone, no release sent
	if err := <-got; err != nil {
		h.stop()
		return r, err
	}
	if err := h.finishReport(cfg, r); err != nil {
		h.stop()
		return r, err
	}
	return r, h.stop()
}

// runStopHeartbeat: the holder stalls inside its critical section with
// its socket perfectly healthy — only the heartbeats stop. Teardown
// never fires; TTL expiry is the only recovery path, and the stalled
// holder's later release must be fenced, not honored.
func runStopHeartbeat(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h, err := startHarness(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	holder, err := client.DialConn(h.addr)
	if err != nil {
		h.stop()
		return nil, err
	}
	defer holder.Close()
	holder.AutoHeartbeat(cfg.Heartbeat)
	if err := holder.Acquire("cs"); err != nil {
		h.stop()
		return nil, err
	}
	// Prove the lease renews while healthy, then stall.
	time.Sleep(2 * cfg.Heartbeat)
	holder.PauseHeartbeat()
	stall := time.Now()
	bound := 2*cfg.TTL + recoverySlack
	if _, err := acquireWithin(h.addr, "cs", bound); err != nil {
		h.stop()
		return r, err
	}
	// Unavailability is measured from the stall, not from the
	// contender's arrival: the stall is when the holder stopped making
	// progress.
	r.MaxRecovery = time.Since(stall)
	// The stalled holder wakes up and tries to finish its critical
	// section: the release must be rejected through its stale token.
	holder.ResumeHeartbeat()
	if err := holder.Release("cs"); !errors.Is(err, client.ErrFenced) {
		h.stop()
		return r, fmt.Errorf("chaos: stalled holder's release returned %v, want ErrFenced", err)
	}
	if err := h.finishReport(cfg, r); err != nil {
		h.stop()
		return r, err
	}
	if r.Expired == 0 {
		h.stop()
		return r, fmt.Errorf("chaos: no lease expiry recorded; recovery came from the wrong path")
	}
	if r.FencedRejects == 0 {
		h.stop()
		return r, fmt.Errorf("chaos: no fenced rejection recorded for the stale release")
	}
	return r, h.stop()
}

// runDropMidPipeline: a multiplexed binary connection holding grants
// on several streams is dropped while batched requests are still in
// flight. Connection teardown must reap every stream's grants exactly
// once — the token arbitration makes a teardown racing a concurrent
// TTL expiry resolve to one release — and every key must come back.
func runDropMidPipeline(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h, err := startHarness(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	m, err := client.DialMux(h.addr)
	if err != nil {
		h.stop()
		return nil, err
	}
	const streams = 4
	keys := make([]string, streams)
	conns := make([]*client.Conn, streams)
	for i := range conns {
		keys[i] = fmt.Sprintf("pipe-%d", i)
		c, err := m.Open()
		if err != nil {
			h.stop()
			return nil, err
		}
		conns[i] = c
		if err := c.Acquire(keys[i]); err != nil {
			h.stop()
			return nil, err
		}
	}
	// Keep a pipeline of batched holds/pings in flight on every stream
	// while the socket is yanked out from under them.
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *client.Conn) {
			defer wg.Done()
			reqs := []lockd.Request{{Op: lockd.OpPing}, {Op: lockd.OpPing}, {Op: lockd.OpPing}}
			resps := make([]lockd.Response, len(reqs))
			for {
				if err := c.Batch(reqs, resps); err != nil {
					return // the drop: every in-flight batch fails
				}
			}
		}(c)
	}
	time.Sleep(cfg.Heartbeat) // let the pipelines fill
	drop := time.Now()
	m.Close()
	wg.Wait()
	bound := 2*cfg.TTL + recoverySlack
	for _, k := range keys {
		if _, err := acquireWithin(h.addr, k, bound); err != nil {
			h.stop()
			return r, err
		}
	}
	r.MaxRecovery = time.Since(drop)
	if err := h.finishReport(cfg, r); err != nil {
		h.stop()
		return r, err
	}
	return r, h.stop()
}

// runCrashUnderLoad: open-loop zipf traffic where a fraction of the
// ops crash — acquire a key on a session of their own and go silent
// holding it, socket open. The run must stay violation-free while TTL
// expiry continuously recycles the corpses, and after the load stops
// every key must be acquirable within the recovery bound.
func runCrashUnderLoad(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h, err := startHarness(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	pool := client.NewCrashPool(h.addr)
	pool.Timeout = 2*cfg.TTL + recoverySlack
	defer pool.Close()
	const keys = 8
	spec := workload.Spec{
		Seed:    cfg.Seed,
		Keys:    workload.KeySpec{Dist: workload.KeyZipf},
		Arrival: workload.ArrivalSpec{Process: workload.ArrivalPoisson, RatePerSec: 500},
		Ops:     workload.OpMix{Lock: 0.9, Crash: 0.1},
	}
	res, err := loadgen.Run(loadgen.Config{
		Clients:  8,
		Keys:     keys,
		Duration: cfg.Duration,
		Workload: &spec,
		NewLocker: func(int) (loadgen.Locker, error) {
			s, err := pool.Session()
			if err != nil {
				return nil, err
			}
			s.AutoHeartbeat(cfg.Heartbeat)
			return s, nil
		},
	})
	if err != nil {
		h.stop()
		return nil, err
	}
	r.Cycles = res.Cycles
	r.Crashes = res.Crashes
	r.Violations = uint64(res.Violations)
	if r.Crashes == 0 {
		h.stop()
		return r, fmt.Errorf("chaos: the crash fraction never fired (cycles=%d)", r.Cycles)
	}
	// The corpses' sockets are still open (the pool holds them), so
	// only TTL expiry can free whatever they hold: sweep every key and
	// record the worst recovery.
	bound := 2*cfg.TTL + recoverySlack
	for i := 0; i < keys; i++ {
		took, err := acquireWithin(h.addr, fmt.Sprintf("key-%04d", i), bound)
		if err != nil {
			h.stop()
			return r, err
		}
		if took > r.MaxRecovery {
			r.MaxRecovery = took
		}
	}
	if err := h.finishReport(cfg, r); err != nil {
		h.stop()
		return r, err
	}
	if r.Expired == 0 {
		h.stop()
		return r, fmt.Errorf("chaos: %d crashes but no lease expiries recorded", r.Crashes)
	}
	// Release the corpses' sockets only after the sweep proved expiry
	// did the recovery.
	pool.Close()
	return r, h.stop()
}
