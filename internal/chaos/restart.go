package chaos

// The restart scenario: the only failure the in-memory scenarios
// cannot model — the whole server process dying and coming back. A
// durable server journals its grants; killing it outright (Kill is
// the in-process kill -9: sessions suppressed, lease manager halted
// without revoking, journal buffer dropped on the floor) and
// restarting on the same data directory must hand the new process the
// old one's obligations: every held key still held, still excluding
// contenders until its original deadline, and the fencing counter
// restored past every token the dead process ever issued.

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// startDurableHarness is startHarness with a journal under dir. Every
// restart run uses fsync "always": the scenario's whole point is that
// what was acknowledged survives the crash.
func startDurableHarness(cfg Config, dir string) (*harness, error) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 8})
	if err != nil {
		return nil, err
	}
	srv := lockd.NewServer(mgr)
	srv.LeaseTTL = cfg.TTL
	srv.Durability = lockd.Durability{Dir: dir, Fsync: "always"}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return nil, err
	}
	h := &harness{mgr: mgr, srv: srv, addr: ln.Addr().String(), serveErr: make(chan error, 1)}
	go func() { h.serveErr <- srv.Serve(ln) }()
	return h, nil
}

// waitDialable blocks until addr answers a ping — the restarted server
// recovers its journal before accepting, so this also bounds recovery
// time.
func waitDialable(addr string) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := client.DialConn(addr)
		if err == nil {
			err = c.Ping()
			c.Close()
			if err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s never became dialable: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runRestartUnderLoad: holders sit on keys and churn traffic runs when
// the server process "dies" mid-load; a second process on the same
// data directory must recover every held lease — excluding contenders
// on the dead holders' keys until their original TTLs lapse — and
// issue only strictly larger tokens afterwards.
func runRestartUnderLoad(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Recovery after a restart is bounded by the original lease TTL, so
	// the exclusion window must be wide enough to observe across a
	// process handover; floor the effective TTL (the recovery bound
	// scales with it through finishReport).
	if cfg.TTL < 250*time.Millisecond {
		cfg.TTL = 250 * time.Millisecond
		cfg.Heartbeat = cfg.TTL / 4
	}
	dir, err := os.MkdirTemp("", "chaos-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	r := &Report{}
	hA, err := startDurableHarness(cfg, dir)
	if err != nil {
		return nil, err
	}

	// Holders take a key each and keep heartbeating until the kill, so
	// their leases are live — not expiring — when the process dies.
	const holders = 4
	preTokens := make(map[string]uint64, holders)
	holderConns := make([]*client.Conn, 0, holders)
	closeHolders := func() {
		for _, c := range holderConns {
			c.Close()
		}
	}
	for i := 0; i < holders; i++ {
		c, err := client.DialConn(hA.addr)
		if err != nil {
			closeHolders()
			return nil, err
		}
		holderConns = append(holderConns, c)
		c.AutoHeartbeat(cfg.Heartbeat)
		k := fmt.Sprintf("restart-hold-%d", i)
		if err := c.Acquire(k); err != nil {
			closeHolders()
			return nil, err
		}
		preTokens[k] = c.Token(k)
		if preTokens[k] == 0 {
			closeHolders()
			return nil, fmt.Errorf("chaos: no fencing token on %s", k)
		}
	}

	// Churn load on separate keys so the kill lands mid-traffic, with
	// acquires, releases, and journal commits genuinely in flight.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.DialConn(hA.addr)
			if err != nil {
				return
			}
			defer c.Close()
			k := fmt.Sprintf("restart-churn-%d", i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are the point: the server dies under this loop.
				if ok, err := c.TryAcquire(k); err != nil {
					return
				} else if ok {
					if err := c.Release(k); err != nil {
						return
					}
				}
			}
		}(i)
	}
	time.Sleep(cfg.Duration / 4)

	killAt := time.Now()
	hA.srv.Kill()
	close(stop)
	wg.Wait()
	closeHolders()
	// Reap the Serve goroutine; the server is already dead. The lock
	// manager is deliberately NOT closed: the killed process still
	// "holds" its grants in memory, exactly like a real corpse.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	err = hA.srv.Shutdown(ctx)
	cancel()
	if err != nil {
		return r, fmt.Errorf("chaos: reaping killed server: %w", err)
	}
	if err := <-hA.serveErr; err != nil {
		return r, fmt.Errorf("chaos: killed server's Serve: %w", err)
	}
	r.Violations += hA.mgr.Violations()

	hB, err := startDurableHarness(cfg, dir)
	if err != nil {
		return r, err
	}
	if err := waitDialable(hB.addr); err != nil {
		hB.stop()
		return r, err
	}
	r.Recovered = hB.srv.Recovered()
	if r.Recovered < holders {
		hB.stop()
		return r, fmt.Errorf("chaos: restarted server recovered %d leases, want at least the %d held keys", r.Recovered, holders)
	}

	contender, err := client.DialConn(hB.addr)
	if err != nil {
		hB.stop()
		return r, err
	}
	defer contender.Close()

	// While the dead holders' TTL budget is clearly unspent, their
	// recovered keys must still be exclusive — recovery that freed them
	// early would be a silent safety hole, not a liveness win.
	if time.Since(killAt) < cfg.TTL/2 {
		for k := range preTokens {
			ok, err := contender.TryAcquire(k)
			if err != nil {
				hB.stop()
				return r, err
			}
			if ok {
				hB.stop()
				return r, fmt.Errorf("chaos: contender took %s while its recovered lease was live", k)
			}
		}
	}

	// The dead holders never heartbeat again, so each key frees on its
	// original schedule; once taken, the new token must sit strictly
	// above the pre-crash grant.
	bound := 2*cfg.TTL + recoverySlack
	for k, pre := range preTokens {
		start := time.Now()
		for {
			ok, err := contender.TryAcquire(k)
			if err != nil {
				hB.stop()
				return r, err
			}
			if ok {
				break
			}
			if took := time.Since(start); took > bound {
				hB.stop()
				return r, fmt.Errorf("chaos: %s not recovered within %v", k, bound)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if took := time.Since(killAt); took > r.MaxRecovery {
			r.MaxRecovery = took
		}
		if tok := contender.Token(k); tok <= pre {
			hB.stop()
			return r, fmt.Errorf("chaos: post-restart token %d for %s not above pre-crash %d", tok, k, pre)
		}
		if err := contender.Release(k); err != nil {
			hB.stop()
			return r, err
		}
	}

	if err := hB.finishReport(cfg, r); err != nil {
		hB.stop()
		return r, err
	}
	return r, hB.stop()
}
