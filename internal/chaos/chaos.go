// Package chaos is the crash-fault scenario registry for the lease
// subsystem: each scenario stands up a real lockd server over loopback
// with leases on, injects one specific failure — a SIGKILLed holder, a
// holder whose heartbeats stop while its socket stays healthy, a
// connection dropped mid-pipeline, a crash fraction folded into
// open-loop zipf load — and measures what the lease machinery promises
// to bound: zero mutual-exclusion violations, orphaned keys recovered
// within the TTL plus the revocation cost, and every post-expiry op by
// the dead holder rejected through its fencing token.
//
// Scenarios are pure in-process harnesses (no exec, no external
// daemons), so they run as ordinary tests and under -race; the CI
// chaos smoke additionally exercises the same failures against the
// real anonlockd binary with kill -9.
package chaos

import (
	"context"
	"fmt"
	"net"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// Config parameterizes one scenario run. The zero value is usable:
// every field has a scenario-appropriate default.
type Config struct {
	// TTL is the server's lease TTL (default 50ms — short enough that a
	// scenario's recovery bound is observable in test time).
	TTL time.Duration
	// Heartbeat is the well-behaved clients' renewal interval (default
	// TTL/4). It must stay under TTL or the scenario would fence its
	// own survivors.
	Heartbeat time.Duration
	// Duration bounds the load phase of workload-driven scenarios
	// (default 400ms).
	Duration time.Duration
	// Seed drives the workload model (default 1).
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.TTL == 0 {
		c.TTL = 50 * time.Millisecond
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = c.TTL / 4
	}
	if c.Duration == 0 {
		c.Duration = 400 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TTL < 0 || c.Heartbeat < 0 || c.Duration < 0 {
		return c, fmt.Errorf("chaos: negative config")
	}
	if c.Heartbeat >= c.TTL {
		return c, fmt.Errorf("chaos: heartbeat %v must stay under TTL %v", c.Heartbeat, c.TTL)
	}
	return c, nil
}

// Report is what a scenario measured. Scenarios return an error for
// harness failures and broken invariants (a violation, an unfenced
// stale op, a recovery past its bound); the report carries the numbers
// so callers can print or assert on them.
type Report struct {
	// Violations is the sum of client-observed owner-check failures and
	// the server's own cross-check counter. Always 0 on success.
	Violations uint64 `json:"violations"`
	// Expired and Revoked are the server's lease-lifecycle counters:
	// TTL expiries of silent holders and explicit/teardown revocations.
	Expired uint64 `json:"expired"`
	Revoked uint64 `json:"revoked"`
	// FencedRejects counts stale-token ops the server rejected.
	FencedRejects uint64 `json:"fenced_rejects"`
	// Cycles and Crashes summarize workload-driven scenarios.
	Cycles  int64 `json:"cycles,omitempty"`
	Crashes int64 `json:"crashes,omitempty"`
	// Recovered counts the leases a restarted server rebuilt from its
	// journal (restart scenarios only).
	Recovered uint64 `json:"recovered,omitempty"`
	// MaxRecovery is the worst observed orphan-recovery time: how long
	// a contender waited for a key a dead holder had. The scenarios
	// assert it against their unavailability bound (2×TTL plus
	// scheduling slack) before returning.
	MaxRecovery time.Duration `json:"max_recovery"`
}

// Scenario is one registered failure injection.
type Scenario struct {
	Name string
	Doc  string
	Run  func(Config) (*Report, error)
}

// Scenarios lists the registry in a stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "kill-9-holder-mid-cs",
			Doc:  "a holder's process dies abruptly inside its critical section (socket torn down, no release op); the server-side session teardown must free its grants for a blocked contender",
			Run:  runKillHolder,
		},
		{
			Name: "stop-heartbeat-mid-cs",
			Doc:  "a holder stalls inside its critical section with its socket healthy — heartbeats stop, nothing else changes; TTL expiry must recover the key and fence the holder's later ops",
			Run:  runStopHeartbeat,
		},
		{
			Name: "drop-connection-mid-pipeline",
			Doc:  "a multiplexed binary connection with grants across several streams is dropped with requests still in flight; every stream's grants must be reaped exactly once",
			Run:  runDropMidPipeline,
		},
		{
			Name: "stop-heartbeat-under-open-loop-zipf",
			Doc:  "open-loop zipf load with a crash fraction: some holders die silently under contention; the run must stay violation-free and every key must be acquirable within the recovery bound afterwards",
			Run:  runCrashUnderLoad,
		},
		{
			Name: "restart-under-load",
			Doc:  "a durable server is killed outright (kill -9 semantics: no teardown, journal buffer dropped) with holders mid-lease and churn in flight, then restarted on the same data directory; every held key must come back recovered, still excluding contenders until its original TTL runs out, with post-restart fencing tokens strictly above their pre-crash grants and zero violations",
			Run:  runRestartUnderLoad,
		},
		{
			Name: "kill-node-mid-failover",
			Doc:  "a three-node cluster under open-loop zipf load has one member — an owner of live keys — killed outright; the handoff must stay violation-free, every moved key re-acquirable within the failure detector's budget, and every post-failover token strictly above its pre-kill grant",
			Run:  runKillNodeFailover,
		},
		{
			Name: "kill-node-mid-failover-proxy",
			Doc:  "the kill-a-node failover with every node in proxy mode: cross-node ops ride the inter-node forwarding pool, so the kill also severs live forwarded streams; the same invariants must hold — zero violations, recovery within the detector's budget, tokens strictly increasing",
			Run:  runKillNodeFailoverProxy,
		},
	}
}

// Find looks a scenario up by name.
func Find(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// recoverySlack pads the 2×TTL recovery bound for scheduler and
// network jitter: scenarios run with millisecond TTLs where a single
// descheduling is a visible fraction of the bound.
const recoverySlack = 250 * time.Millisecond

// harness is one scenario's server: a lease-running lockd over
// loopback.
type harness struct {
	mgr  *lockmgr.Manager
	srv  *lockd.Server
	addr string

	serveErr chan error
}

func startHarness(cfg Config) (*harness, error) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 8})
	if err != nil {
		return nil, err
	}
	srv := lockd.NewServer(mgr)
	srv.LeaseTTL = cfg.TTL
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return nil, err
	}
	h := &harness{mgr: mgr, srv: srv, addr: ln.Addr().String(), serveErr: make(chan error, 1)}
	go func() { h.serveErr <- srv.Serve(ln) }()
	return h, nil
}

// stop shuts the server down and closes the lock manager; a close
// error means grants leaked, which is itself a scenario failure. The
// short shutdown budget is deliberate: scenarios leave corpses'
// sockets open on purpose, and Shutdown force-closes whatever has not
// drained by the deadline (releasing its grants either way).
func (h *harness) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("chaos: shutdown: %w", err)
	}
	if err := <-h.serveErr; err != nil {
		return fmt.Errorf("chaos: serve: %w", err)
	}
	if err := h.mgr.Close(); err != nil {
		return fmt.Errorf("chaos: grants leaked: %w", err)
	}
	return nil
}

// finishReport folds the server's post-run counters into the report
// and enforces the invariants every scenario shares: no violations
// anywhere, and recovery within the bound.
func (h *harness) finishReport(cfg Config, r *Report) error {
	c, err := client.DialConn(h.addr)
	if err != nil {
		return err
	}
	st, err := c.Stats()
	c.Close()
	if err != nil {
		return err
	}
	r.Violations += st.Violations + h.mgr.Violations()
	r.Expired = st.Expired
	r.Revoked = st.Revoked
	r.FencedRejects = st.FencedRejects
	if r.Violations != 0 {
		return fmt.Errorf("chaos: %d mutual-exclusion violations", r.Violations)
	}
	if bound := 2*cfg.TTL + recoverySlack; r.MaxRecovery > bound {
		return fmt.Errorf("chaos: orphan recovery took %v, bound %v", r.MaxRecovery, bound)
	}
	return nil
}

// acquireWithin measures one orphan recovery: a blocking acquire of
// name that must complete within the scenario bound. It returns the
// observed wait and leaves the key released.
func acquireWithin(addr, name string, bound time.Duration) (time.Duration, error) {
	c, err := client.DialConn(addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	start := time.Now()
	ok, err := c.AcquireFor(name, bound)
	took := time.Since(start)
	if err != nil {
		return took, fmt.Errorf("chaos: recovery acquire of %s: %w", name, err)
	}
	if !ok {
		return took, fmt.Errorf("chaos: %s not recovered within %v", name, bound)
	}
	if err := c.Release(name); err != nil {
		return took, fmt.Errorf("chaos: recovery release of %s: %w", name, err)
	}
	return took, nil
}
