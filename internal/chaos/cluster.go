package chaos

// The multi-node harness and the kill-a-node failover scenario: a real
// lockd cluster over loopback — per node a lock manager, a lease-running
// server, and a gossip membership participant — with one member killed
// mid-load. The invariants under test are the cluster spec's: zero
// mutual-exclusion violations through the handoff, every key owned by
// the dead node re-acquirable within the failure detector's budget, and
// per-key fencing tokens strictly increasing across the ownership
// change.

import (
	"context"
	"fmt"
	"net"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/loadgen"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// ClusterConfig parameterizes a clustered scenario run.
type ClusterConfig struct {
	Config
	// Nodes is the cluster size (default 3). A single-node run is the
	// sweep's baseline: there is no survivor to hand off to, so nothing
	// is killed and the probes measure the clustered path's cost alone.
	Nodes int
	// Keys is the keyspace width (default 8).
	Keys int
	// Clients is the open-loop client count (default 8).
	Clients int
	// RatePerSec is the offered arrival rate (default 500).
	RatePerSec float64
	// Proxy turns on server-side forwarding: a node that receives an op
	// for a foreign key relays it to the owner over the inter-node pool
	// instead of redirecting the client. The failover invariants are
	// identical — the mode changes who chases the new owner, not what
	// the cluster promises.
	Proxy bool
}

func (c ClusterConfig) withDefaults() (ClusterConfig, error) {
	var err error
	if c.Config, err = c.Config.withDefaults(); err != nil {
		return c, err
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Nodes < 1 {
		return c, fmt.Errorf("chaos: need Nodes >= 1, got %d", c.Nodes)
	}
	if c.Keys == 0 {
		c.Keys = 8
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 500
	}
	return c, nil
}

// clusterMember is one node of the harness cluster.
type clusterMember struct {
	mgr      *lockmgr.Manager
	srv      *lockd.Server
	node     *cluster.Node
	addr     string
	serveErr chan error
	killed   bool
}

// kill takes the member down the crash way: the gossip socket closes
// silently (peers find out via the failure detector, exactly as for a
// real crash) and the server is shut down with an already-expired
// context, so no drain happens and held grants die with the node. The
// manager's violation counter is captured before teardown.
func (m *clusterMember) kill() uint64 {
	m.killed = true
	violations := m.mgr.Violations()
	m.node.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.srv.Shutdown(ctx)
	<-m.serveErr
	m.mgr.Close() // corpse grants leak by design; the error is the point
	return violations
}

// clusterHarness is the running cluster.
type clusterHarness struct {
	members []*clusterMember
	// violations accumulates counters captured from killed members.
	violations uint64
}

// startClusterHarness brings up n clustered lockd servers with gossip
// timings derived from the lease TTL — Interval = TTL/4 (min 10ms),
// SuspectAfter = TTL, DeadAfter = 2×TTL — and waits for every member to
// see the full cluster alive.
func startClusterHarness(cfg ClusterConfig) (*clusterHarness, error) {
	h := &clusterHarness{}
	interval := cfg.TTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	var seeds []string
	for i := 0; i < cfg.Nodes; i++ {
		mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 8})
		if err != nil {
			h.stop()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			mgr.Close()
			h.stop()
			return nil, err
		}
		node, err := cluster.Start(cluster.Config{
			ID:           fmt.Sprintf("chaos-%d", i),
			Addr:         ln.Addr().String(),
			GossipAddr:   "127.0.0.1:0",
			Seeds:        seeds,
			Interval:     interval,
			SuspectAfter: cfg.TTL,
			DeadAfter:    2 * cfg.TTL,
		})
		if err != nil {
			ln.Close()
			mgr.Close()
			h.stop()
			return nil, err
		}
		seeds = append(seeds, node.GossipAddr())
		srv := lockd.NewServer(mgr)
		srv.LeaseTTL = cfg.TTL
		srv.Cluster = node
		srv.Proxy = cfg.Proxy
		m := &clusterMember{mgr: mgr, srv: srv, node: node, addr: ln.Addr().String(), serveErr: make(chan error, 1)}
		go func() { m.serveErr <- srv.Serve(ln) }()
		h.members = append(h.members, m)
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, m := range h.members {
		for {
			alive := 0
			for _, mem := range m.node.View().Members {
				if mem.State == cluster.StateAlive {
					alive++
				}
			}
			if alive == cfg.Nodes {
				break
			}
			if time.Now().After(deadline) {
				h.stop()
				return nil, fmt.Errorf("chaos: cluster never converged (%s sees %d/%d alive)", m.node.Self().ID, alive, cfg.Nodes)
			}
			time.Sleep(interval / 2)
		}
	}
	return h, nil
}

// addrs lists the members' lock-service addresses, dead ones included —
// that is what a real client's config looks like after a node dies.
func (h *clusterHarness) addrs() []string {
	addrs := make([]string, len(h.members))
	for i, m := range h.members {
		addrs[i] = m.addr
	}
	return addrs
}

// owner resolves name's owning member index from the first surviving
// node's view.
func (h *clusterHarness) owner(name string) (int, error) {
	for _, m := range h.members {
		if m.killed {
			continue
		}
		own, ok := m.node.Owner(name)
		if !ok {
			return 0, fmt.Errorf("chaos: no live owner for %s", name)
		}
		for i, cand := range h.members {
			if cand.node != nil && !cand.killed && cand.node.Self().ID == own.ID {
				return i, nil
			}
			if cand.killed && cand.addr == own.Addr {
				return i, nil
			}
		}
		return 0, fmt.Errorf("chaos: owner %s of %s is not a harness member", own.ID, name)
	}
	return 0, fmt.Errorf("chaos: every member is dead")
}

// stop tears down the surviving members. Survivors must close clean —
// a leaked grant on a survivor is a scenario failure.
func (h *clusterHarness) stop() error {
	var first error
	for _, m := range h.members {
		if m == nil || m.killed {
			continue
		}
		m.node.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := m.srv.Shutdown(ctx); err != nil && first == nil {
			first = fmt.Errorf("chaos: shutdown: %w", err)
		}
		cancel()
		if err := <-m.serveErr; err != nil && first == nil {
			first = fmt.Errorf("chaos: serve: %w", err)
		}
		h.violations += m.mgr.Violations()
		if err := m.mgr.Close(); err != nil && first == nil {
			first = fmt.Errorf("chaos: grants leaked on a survivor: %w", err)
		}
	}
	return first
}

// RunClusterFailover is the kill-a-node scenario body, shared with the
// experiments sweep: open-loop zipf load through the cluster-routed
// client, one member (an owner of probed keys) killed at half duration,
// and after the load drains a full-keyspace probe that measures recovery
// and checks per-key token monotonicity across the handoff.
func RunClusterFailover(ccfg ClusterConfig) (*Report, error) {
	ccfg, err := ccfg.withDefaults()
	if err != nil {
		return nil, err
	}
	h, err := startClusterHarness(ccfg)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	cl, err := client.Dial(client.Options{Addrs: h.addrs(), Heartbeat: ccfg.Heartbeat})
	if err != nil {
		h.stop()
		return nil, err
	}
	defer cl.Close()

	// Pre-kill probe: acquire every key once and remember its fencing
	// token — the floor the post-failover grants must clear.
	probe, err := cl.Open()
	if err != nil {
		h.stop()
		return nil, err
	}
	defer probe.Close()
	keys := make([]string, ccfg.Keys)
	preTokens := make([]uint64, ccfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
		if err := probe.Acquire(keys[i]); err != nil {
			h.stop()
			return nil, fmt.Errorf("chaos: pre-kill probe of %s: %w", keys[i], err)
		}
		preTokens[i] = probe.Token(keys[i])
		if preTokens[i] == 0 {
			h.stop()
			return nil, fmt.Errorf("chaos: pre-kill grant of %s carried no token", keys[i])
		}
		if err := probe.Release(keys[i]); err != nil {
			h.stop()
			return nil, fmt.Errorf("chaos: pre-kill release of %s: %w", keys[i], err)
		}
	}

	// The victim is the owner of the first key, so at least one probed
	// key is guaranteed to change hands. A single-node cluster runs the
	// same load and probe phases with nothing killed.
	victim := -1
	if ccfg.Nodes > 1 {
		if victim, err = h.owner(keys[0]); err != nil {
			h.stop()
			return nil, err
		}
	}

	spec := workload.Spec{
		Seed:    ccfg.Seed,
		Keys:    workload.KeySpec{Dist: workload.KeyZipf},
		Arrival: workload.ArrivalSpec{Process: workload.ArrivalPoisson, RatePerSec: ccfg.RatePerSec},
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		if victim < 0 {
			return
		}
		time.Sleep(ccfg.Duration / 2)
		h.violations += h.members[victim].kill()
	}()
	res, err := loadgen.Run(loadgen.Config{
		Clients:           ccfg.Clients,
		Keys:              ccfg.Keys,
		Duration:          ccfg.Duration,
		Workload:          &spec,
		TolerateGrantLoss: true,
		NewLocker: func(int) (loadgen.Locker, error) {
			return cl.Open()
		},
	})
	<-killed
	if err != nil {
		h.stop()
		return nil, err
	}
	r.Cycles = res.Cycles
	r.Violations = uint64(res.Violations)

	// Recovery probe: every key — the moved ones included — must be
	// acquirable within the failure detector's budget (DeadAfter = 2×TTL)
	// plus slack, under a token strictly above its pre-kill grant.
	bound := 2*ccfg.TTL + recoverySlack
	for i, key := range keys {
		start := time.Now()
		ok, err := probe.AcquireFor(key, bound)
		took := time.Since(start)
		if err != nil || !ok {
			h.stop()
			return r, fmt.Errorf("chaos: %s not recovered within %v (ok=%v err=%v)", key, bound, ok, err)
		}
		if took > r.MaxRecovery {
			r.MaxRecovery = took
		}
		post := probe.Token(key)
		if post <= preTokens[i] {
			h.stop()
			return r, fmt.Errorf("chaos: %s token did not advance across failover: %d -> %d", key, preTokens[i], post)
		}
		if err := probe.Release(key); err != nil {
			h.stop()
			return r, fmt.Errorf("chaos: recovery release of %s: %w", key, err)
		}
	}

	// Fold in the survivors' counters (the routed Stats sums every
	// reachable member), stop the cluster, and enforce the shared
	// invariants over everything: client-observed failures, the
	// survivors' cross-check counters, and the victim's counter captured
	// at kill time.
	st, err := cl.Stats()
	if err != nil {
		h.stop()
		return r, err
	}
	r.Expired = st.Expired
	r.Revoked = st.Revoked
	r.FencedRejects = st.FencedRejects
	stopErr := h.stop()
	r.Violations += st.Violations + h.violations
	if r.Violations != 0 {
		return r, fmt.Errorf("chaos: %d mutual-exclusion violations across the failover", r.Violations)
	}
	if r.MaxRecovery > bound {
		return r, fmt.Errorf("chaos: failover recovery took %v, bound %v", r.MaxRecovery, bound)
	}
	return r, stopErr
}

// runKillNodeFailover adapts RunClusterFailover to the registry's
// single-config shape.
func runKillNodeFailover(cfg Config) (*Report, error) {
	return RunClusterFailover(ClusterConfig{Config: cfg})
}

// runKillNodeFailoverProxy is the same kill-a-node scenario with every
// node in proxy mode, so mid-failover traffic crosses the inter-node
// forwarding pool — including forwards addressed to the corpse — and
// the grants the proxies hold on remote owners must be reaped when the
// forwarding node's client sessions end.
func runKillNodeFailoverProxy(cfg Config) (*Report, error) {
	return RunClusterFailover(ClusterConfig{Config: cfg, Proxy: true})
}
