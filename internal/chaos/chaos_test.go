package chaos

import (
	"testing"
	"time"
)

// TestRegistry: every scenario is findable and documented.
func TestRegistry(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) != 7 {
		t.Fatalf("registry has %d scenarios, want 7", len(scenarios))
	}
	for _, s := range scenarios {
		if s.Name == "" || s.Doc == "" || s.Run == nil {
			t.Errorf("scenario %+v incomplete", s.Name)
		}
		got, ok := Find(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("Find(%q) = %v, %v", s.Name, got.Name, ok)
		}
	}
	if _, ok := Find("no-such-scenario"); ok {
		t.Error("Find invented a scenario")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{TTL: 10 * time.Millisecond, Heartbeat: 10 * time.Millisecond}).withDefaults(); err == nil {
		t.Error("heartbeat == TTL accepted")
	}
	if _, err := (Config{Duration: -1}).withDefaults(); err == nil {
		t.Error("negative duration accepted")
	}
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TTL == 0 || cfg.Heartbeat == 0 || cfg.Duration == 0 || cfg.Seed == 0 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}

// TestScenarios runs every registered scenario with a short TTL. Each
// scenario enforces its own invariants (zero violations, recovery
// within 2×TTL plus slack, stale ops fenced) and returns an error when
// any is broken, so the assertion here is simply err == nil plus the
// report's basic shape.
func TestScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			r, err := s.Run(Config{TTL: 50 * time.Millisecond})
			if err != nil {
				t.Fatalf("%s: %v (report %+v)", s.Name, err, r)
			}
			if r.Violations != 0 {
				t.Errorf("%s: %d violations", s.Name, r.Violations)
			}
			if r.MaxRecovery <= 0 {
				t.Errorf("%s: no recovery measured", s.Name)
			}
			t.Logf("%s: %+v", s.Name, r)
		})
	}
}
