// Package engine is the unified op-execution layer: one substrate-
// independent Executor interface plus one machine-driving loop, shared by
// every way the repository runs the paper's algorithms.
//
// The algorithms (internal/core) are pure state machines: they request
// shared-memory operations (core.Op) and consume results (core.OpResult)
// without knowing what memory they run against. This package closes the
// loop. An Executor is one process's anonymous window onto a memory
// substrate; two substrates are provided:
//
//   - Hardware wraps an amem.View — real hardware-atomic registers, for
//     the production locks at the repository root;
//   - Simulated wraps a vmem.View — the deterministic simulated memory,
//     for the scheduler (internal/sched), scenarios, and tests.
//
// Exec dispatches a single pending op against either substrate; Driver
// runs a machine's whole invocation to completion with an adaptive
// spin/backoff policy tuned for the real locks' wait loops (pure spin,
// then runtime.Gosched, then exponentially escalating sleeps). Both paths
// are allocation-free per operation: snapshot buffers are owned by the
// Driver (or caller) and reused, and Exec returns results by value.
// DriveContext adds deadline-bounded, abortable acquisition: a context
// cancelled mid-lock() triggers the machine's StartAbort withdraw — a
// bounded erase sweep that leaves the anonymous registers exactly as if
// the process had never competed.
//
// Recorder wraps any Executor and logs the full operation/result stream,
// enabling cross-substrate equivalence checks: under a deterministic
// configuration the same machine must produce identical op traces on
// hardware and simulated memory.
package engine

import (
	"fmt"

	"anonmutex/internal/amem"
	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/vmem"
)

// Executor is one process's substrate-independent handle on an anonymous
// shared memory: the four operations of the paper's two models, addressed
// by local (permuted) register names. Implementations are single-process
// objects — an Executor belongs to one machine at a time.
type Executor interface {
	// Size returns m, the number of anonymous registers.
	Size() int
	// Read returns the algorithmic value of local register x.
	Read(x int) id.ID
	// Write stores val into local register x.
	Write(x int, val id.ID)
	// CompareAndSwap replaces local register x's value with newVal iff it
	// currently equals old, reporting whether the swap took effect (RMW
	// model only).
	CompareAndSwap(x int, old, newVal id.ID) bool
	// Snapshot returns a consistent snapshot of all m registers in local
	// order, reusing dst when its capacity allows (RW model only).
	Snapshot(dst []id.ID) []id.ID
}

// Hardware returns the Executor backed by a real hardware-atomic view.
// amem.View already implements every operation (its Snapshot is the
// linearizable double scan), so this is a zero-cost adaptation.
func Hardware(v *amem.View) Executor { return v }

// simulated adapts a vmem.View: the simulated substrate names its
// one-step snapshot SnapshotAtomic, which is the treatment the paper's
// proofs use (a linearizable snapshot may be placed at its linearization
// point).
type simulated struct{ *vmem.View }

func (s simulated) Snapshot(dst []id.ID) []id.ID { return s.View.SnapshotAtomic(dst) }

// Simulated returns the Executor backed by a simulated view. Snapshots
// execute atomically; schedulers that want honest double-scan snapshots
// keep using vmem.SnapshotStepper directly.
func Simulated(v *vmem.View) Executor { return simulated{v} }

// Exec executes one pending op against x, reusing snapBuf for snapshot
// results. It returns the op's result and the (possibly grown) snapshot
// buffer; res.Snap aliases the returned buffer, which the machine copies
// during Advance. Exec allocates only if the snapshot buffer must grow.
func Exec(x Executor, op core.Op, snapBuf []id.ID) (res core.OpResult, buf []id.ID, err error) {
	switch op.Kind {
	case core.OpRead:
		res.Val = x.Read(op.X)
	case core.OpWrite:
		x.Write(op.X, op.Val)
	case core.OpCAS:
		res.Swapped = x.CompareAndSwap(op.X, op.Old, op.New)
	case core.OpSnapshot:
		snapBuf = x.Snapshot(snapBuf)
		res.Snap = snapBuf
	default:
		return res, snapBuf, fmt.Errorf("engine: unknown op kind %v", op.Kind)
	}
	return res, snapBuf, nil
}

// OpRecord is one executed operation with its inputs and outcome, as seen
// at the Executor boundary.
type OpRecord struct {
	Kind     core.OpKind
	X        int
	Val      id.ID   // Write: value written
	Old, New id.ID   // CAS: comparand and replacement
	Out      id.ID   // Read: value read
	Swapped  bool    // CAS: outcome
	Snap     []id.ID // Snapshot: result (copied)
}

// String renders the record compactly for test failure messages.
func (r OpRecord) String() string {
	switch r.Kind {
	case core.OpRead:
		return fmt.Sprintf("read(%d)=%v", r.X, r.Out)
	case core.OpWrite:
		return fmt.Sprintf("write(%d,%v)", r.X, r.Val)
	case core.OpCAS:
		return fmt.Sprintf("cas(%d,%v,%v)=%v", r.X, r.Old, r.New, r.Swapped)
	case core.OpSnapshot:
		return fmt.Sprintf("snapshot()=%v", r.Snap)
	default:
		return fmt.Sprintf("op(%d)", r.Kind)
	}
}

// Recorder wraps an Executor and records every operation and its result,
// for debugging and for the cross-substrate equivalence tests. Recording
// allocates; use it for analysis, not hot paths.
type Recorder struct {
	Inner Executor
	Log   []OpRecord
}

// NewRecorder wraps inner.
func NewRecorder(inner Executor) *Recorder { return &Recorder{Inner: inner} }

// Size implements Executor.
func (r *Recorder) Size() int { return r.Inner.Size() }

// Read implements Executor.
func (r *Recorder) Read(x int) id.ID {
	v := r.Inner.Read(x)
	r.Log = append(r.Log, OpRecord{Kind: core.OpRead, X: x, Out: v})
	return v
}

// Write implements Executor.
func (r *Recorder) Write(x int, val id.ID) {
	r.Inner.Write(x, val)
	r.Log = append(r.Log, OpRecord{Kind: core.OpWrite, X: x, Val: val})
}

// CompareAndSwap implements Executor.
func (r *Recorder) CompareAndSwap(x int, old, newVal id.ID) bool {
	ok := r.Inner.CompareAndSwap(x, old, newVal)
	r.Log = append(r.Log, OpRecord{Kind: core.OpCAS, X: x, Old: old, New: newVal, Swapped: ok})
	return ok
}

// Snapshot implements Executor.
func (r *Recorder) Snapshot(dst []id.ID) []id.ID {
	out := r.Inner.Snapshot(dst)
	cp := make([]id.ID, len(out))
	copy(cp, out)
	r.Log = append(r.Log, OpRecord{Kind: core.OpSnapshot, Snap: cp})
	return out
}
