package engine

// Cancellation-race tests over the simulated substrate: a lock() attempt
// withdrawn at every op boundary, while other processes are mid-entry,
// must never corrupt mutual exclusion for the remaining processes. The
// simulated memory makes the interleaving deterministic and exhaustive
// over boundaries; the root package repeats the check with real
// concurrency under -race.

import (
	"context"
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
)

// cancelProc is one process in the deterministic round-robin scheduler.
type cancelProc struct {
	d       *Driver
	exec    Executor
	buf     []id.ID
	done    int  // completed lock/unlock sessions
	retired bool // no further steps
}

// step advances the process by one scheduler turn: start the next
// invocation when between invocations, otherwise execute one op.
func (p *cancelProc) step(t *testing.T, sessions int) {
	t.Helper()
	mach := p.d.Machine()
	switch mach.Status() {
	case core.StatusIdle:
		if p.done >= sessions {
			p.retired = true
			return
		}
		if err := mach.StartLock(); err != nil {
			t.Fatal(err)
		}
	case core.StatusInCS:
		if err := mach.StartUnlock(); err != nil {
			t.Fatal(err)
		}
	}
	res, buf, err := Exec(p.exec, mach.PendingOp(), p.buf)
	if err != nil {
		t.Fatal(err)
	}
	p.buf = buf
	was := mach.Status()
	if mach.Advance(res) == core.StatusIdle && was == core.StatusRunning {
		// An invocation just completed; unlock completions close a session.
		p.done++
	}
}

// assertExclusion fails if more than one process is in the critical
// section.
func assertExclusion(t *testing.T, procs []*cancelProc, when string) {
	t.Helper()
	in := 0
	for _, p := range procs {
		if p.d.Machine().Status() == core.StatusInCS {
			in++
		}
	}
	if in > 1 {
		t.Fatalf("%s: %d processes in the critical section", when, in)
	}
}

// TestCancelAtEveryBoundaryPreservesExclusion interleaves n processes
// round-robin over vmem, one shared-memory op per turn. After k global
// steps process 0 is cancelled: if mid-lock() its withdraw runs through
// DriveContext, if in the CS it unlocks, and it retires either way. The
// survivors then keep stepping until each completes its sessions. Mutual
// exclusion is asserted after every single op.
func TestCancelAtEveryBoundaryPreservesExclusion(t *testing.T) {
	const (
		n        = 3
		m        = 5
		sessions = 2
		maxSteps = 500_000
	)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []string{"alg1", "alg2"} {
		t.Run(alg, func(t *testing.T) {
			for k := 0; k <= 8*m; k++ {
				drivers, recorders := substrate(t, "simulated", n, m, func(me id.ID) core.Machine {
					return machineMaker(t, alg, me, m)
				})
				procs := make([]*cancelProc, n)
				for i := range procs {
					procs[i] = &cancelProc{d: drivers[i], exec: recorders[i].Inner, buf: make([]id.ID, m)}
				}

				// Phase 1: k interleaved steps with everyone competing. The
				// victim never closes a session before its cancellation, so
				// give it an unreachable session target for now.
				for s := 0; s < k; s++ {
					procs[s%n].step(t, sessions+k+1)
					assertExclusion(t, procs, "pre-cancel")
				}

				// Phase 2: cancel process 0. A Running lock() withdraws; a
				// Running unlock() or held CS completes; idle retires as-is.
				victim := procs[0]
				switch victim.d.Machine().Status() {
				case core.StatusRunning:
					if err := victim.d.DriveContext(cancelled); err != nil &&
						victim.d.Machine().Status() != core.StatusIdle {
						t.Fatalf("k=%d: cancel: %v (status %v)", k, err, victim.d.Machine().Status())
					}
				case core.StatusInCS:
					if _, err := victim.d.DriveAll(); err != nil {
						t.Fatalf("k=%d: cancel-time unlock: %v", k, err)
					}
				}
				if got := victim.d.Machine().Status(); got != core.StatusIdle {
					t.Fatalf("k=%d: victim status %v after cancellation, want idle", k, got)
				}
				victim.retired = true
				assertExclusion(t, procs, "post-cancel")

				// Phase 3: the survivors must all finish their sessions.
				steps := 0
				for {
					live := false
					for _, p := range procs[1:] {
						if p.retired {
							continue
						}
						live = true
						p.step(t, sessions)
						assertExclusion(t, procs, "post-cancel")
						steps++
						if steps > maxSteps {
							t.Fatalf("k=%d: survivors not done after %d steps (deadlock after withdraw?)", k, maxSteps)
						}
					}
					if !live {
						break
					}
				}
				for i, p := range procs[1:] {
					if p.done < sessions {
						t.Fatalf("k=%d: survivor %d completed %d/%d sessions", k, i+1, p.done, sessions)
					}
				}
			}
		})
	}
}
