package engine

import (
	"reflect"
	"testing"

	"anonmutex/internal/amem"
	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/vmem"
	"anonmutex/internal/xrand"
)

// substrate builds n recorder-wrapped drivers over a fresh memory of the
// named kind, with identity permutations (the PermIdentity adversary) and
// generator-order identities, so both substrates see identical inputs.
func substrate(t *testing.T, kind string, n, m int, mk func(me id.ID) core.Machine) ([]*Driver, []*Recorder) {
	t.Helper()
	gen := id.NewGenerator()
	drivers := make([]*Driver, n)
	recorders := make([]*Recorder, n)
	var newExec func(me id.ID) Executor
	switch kind {
	case "hardware":
		mem := amem.New(m)
		newExec = func(me id.ID) Executor {
			v, err := mem.NewView(me, perm.Identity(m))
			if err != nil {
				t.Fatal(err)
			}
			return Hardware(v)
		}
	case "simulated":
		mem := vmem.New(m, true)
		newExec = func(me id.ID) Executor {
			v, err := mem.NewView(me, perm.Identity(m))
			if err != nil {
				t.Fatal(err)
			}
			return Simulated(v)
		}
	default:
		t.Fatalf("unknown substrate %q", kind)
	}
	for i := range drivers {
		me, err := gen.New()
		if err != nil {
			t.Fatal(err)
		}
		recorders[i] = NewRecorder(newExec(me))
		drivers[i] = NewDriver(mk(me), recorders[i])
	}
	return drivers, recorders
}

// runSequential interleaves whole invocations deterministically: in each
// of `rounds` rounds, every process in index order locks and then unlocks.
// Whole-invocation granularity keeps the real substrate deterministic (no
// goroutines, no races) while still exercising claims, snapshots or CAS
// sweeps, and unlock shrinks against memory touched by every process.
func runSequential(t *testing.T, drivers []*Driver, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for i, d := range drivers {
			if st, err := d.DriveAll(); err != nil || st != core.StatusInCS {
				t.Fatalf("round %d proc %d lock: status %v, err %v", r, i, st, err)
			}
			if st, err := d.DriveAll(); err != nil || st != core.StatusIdle {
				t.Fatalf("round %d proc %d unlock: status %v, err %v", r, i, st, err)
			}
		}
	}
}

// TestCrossSubstrateEquivalence is the engine's core contract: under a
// fully deterministic configuration — the PermIdentity adversary plus
// deterministic claim choice (WithDeterministicClaims at the public API) —
// the same machines produce identical operation traces, op for op and
// result for result, whether they execute on hardware-atomic memory or on
// the simulated memory. The two substrates are therefore interchangeable
// evidence about the algorithms.
func TestCrossSubstrateEquivalence(t *testing.T) {
	const (
		n      = 3
		rounds = 3
	)
	algs := []struct {
		name string
		m    int
		mk   func(me id.ID) core.Machine
	}{
		{"alg1-rw", 5, func(me id.ID) core.Machine {
			a, err := core.NewAlg1(me, n, 5, core.Alg1Config{Choice: core.ChooseFirstBottom})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
		{"alg2-rmw", 5, func(me id.ID) core.Machine {
			a, err := core.NewAlg2(me, n, 5, core.Alg2Config{})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
	}
	for _, alg := range algs {
		t.Run(alg.name, func(t *testing.T) {
			hd, hr := substrate(t, "hardware", n, alg.m, alg.mk)
			sd, sr := substrate(t, "simulated", n, alg.m, alg.mk)
			runSequential(t, hd, rounds)
			runSequential(t, sd, rounds)
			for i := range hr {
				hw, sim := hr[i].Log, sr[i].Log
				if len(hw) == 0 {
					t.Fatalf("proc %d recorded no ops", i)
				}
				if len(hw) != len(sim) {
					t.Fatalf("proc %d: %d ops on hardware vs %d simulated", i, len(hw), len(sim))
				}
				for k := range hw {
					if !reflect.DeepEqual(hw[k], sim[k]) {
						t.Fatalf("proc %d op %d diverges:\n  hardware:  %v\n  simulated: %v",
							i, k, hw[k], sim[k])
					}
				}
			}
		})
	}
}

// TestCrossSubstrateEquivalenceRandomSeeded repeats the check with the
// seeded random-claim policy: determinism only requires that both
// substrates consume the same random stream, not a deterministic policy.
func TestCrossSubstrateEquivalenceRandomSeeded(t *testing.T) {
	const (
		n, m   = 2, 3
		rounds = 4
	)
	mk := func(seed uint64) func(me id.ID) core.Machine {
		return func(me id.ID) core.Machine {
			a, err := core.NewAlg1(me, n, m, core.Alg1Config{
				Choice: core.ChooseRandomBottom,
				Rand:   xrand.New(seed),
			})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
	}
	hd, hr := substrate(t, "hardware", n, m, mk(42))
	sd, sr := substrate(t, "simulated", n, m, mk(42))
	runSequential(t, hd, rounds)
	runSequential(t, sd, rounds)
	for i := range hr {
		if !reflect.DeepEqual(hr[i].Log, sr[i].Log) {
			t.Fatalf("proc %d traces diverge under identical seeds", i)
		}
	}
}
