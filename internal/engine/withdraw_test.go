package engine

// Withdraw tests: DriveContext cancelled mid-lock() must back the machine
// out so that a later acquirer, on either substrate, never observes the
// withdrawn process — pinned at the op-trace level with a Recorder.

import (
	"context"
	"errors"
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
)

// machineMaker builds a fresh protocol machine of each algorithm kind.
func machineMaker(t *testing.T, kind string, me id.ID, m int) core.Machine {
	t.Helper()
	switch kind {
	case "alg1":
		a, err := core.NewAlg1Unchecked(me, m, core.Alg1Config{Choice: core.ChooseFirstBottom})
		if err != nil {
			t.Fatal(err)
		}
		return a
	case "alg2":
		a, err := core.NewAlg2Unchecked(me, m, core.Alg2Config{})
		if err != nil {
			t.Fatal(err)
		}
		return a
	default:
		t.Fatalf("unknown algorithm kind %q", kind)
		return nil
	}
}

// traceMentions reports whether any observed value in the log — a read
// result or a snapshot entry — equals who. Writes and CAS arguments are
// the observer's own values and are excluded: invisibility means the
// withdrawn identity is never *seen*.
func traceMentions(log []OpRecord, who id.ID) bool {
	for _, r := range log {
		if r.Out.Equal(who) {
			return true
		}
		for _, v := range r.Snap {
			if v.Equal(who) {
				return true
			}
		}
	}
	return false
}

// TestWithdrawInvisibleOnBothSubstrates cancels a lock() after every op
// boundary k, on both substrates and both algorithms, and asserts the
// withdrawn process never appears in the op trace of a subsequent
// lock/unlock cycle by another process.
func TestWithdrawInvisibleOnBothSubstrates(t *testing.T) {
	const m = 5
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []string{"hardware", "simulated"} {
		for _, alg := range []string{"alg1", "alg2"} {
			t.Run(kind+"/"+alg, func(t *testing.T) {
				for k := 0; k <= 4*m; k++ {
					drivers, recorders := substrate(t, kind, 2, m, func(me id.ID) core.Machine {
						return machineMaker(t, alg, me, m)
					})
					aborter, later := drivers[0], drivers[1]
					who := aborter.Machine().Me()

					// Run the aborter k ops into lock(), then cancel.
					if err := aborter.Machine().StartLock(); err != nil {
						t.Fatal(err)
					}
					buf := make([]id.ID, m)
					for i := 0; i < k && aborter.Machine().Status() == core.StatusRunning; i++ {
						res, b, err := Exec(recorders[0], aborter.Machine().PendingOp(), buf)
						if err != nil {
							t.Fatal(err)
						}
						buf = b
						aborter.Machine().Advance(res)
					}
					if aborter.Machine().Status() != core.StatusRunning {
						continue // solo lock() completed before k ops
					}
					err := aborter.DriveContext(cancelled)
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("k=%d: DriveContext = %v, want context.Canceled", k, err)
					}
					if got := aborter.Machine().Status(); got != core.StatusIdle {
						t.Fatalf("k=%d: withdrawn machine status %v, want idle", k, got)
					}
					if aborter.Aborts() != 1 {
						t.Fatalf("k=%d: aborts counter %d, want 1", k, aborter.Aborts())
					}

					// The later acquirer must complete a full cycle without
					// ever observing the withdrawn identity.
					if _, err := later.DriveAll(); err != nil {
						t.Fatalf("k=%d: later lock(): %v", k, err)
					}
					if _, err := later.DriveAll(); err != nil {
						t.Fatalf("k=%d: later unlock(): %v", k, err)
					}
					if traceMentions(recorders[1].Log, who) {
						t.Fatalf("k=%d: withdrawn process %v visible in the later acquirer's trace:\n%v",
							k, who, recorders[1].Log)
					}
				}
			})
		}
	}
}

// TestDriveContextBackground takes the uncancellable fast path and must
// behave exactly like Drive.
func TestDriveContextBackground(t *testing.T) {
	const m = 5
	drivers, _ := substrate(t, "simulated", 1, m, func(me id.ID) core.Machine {
		return machineMaker(t, "alg2", me, m)
	})
	d := drivers[0]
	if err := d.Machine().StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := d.DriveContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Machine().Status() != core.StatusInCS {
		t.Fatalf("status %v, want in-cs", d.Machine().Status())
	}
	if d.Aborts() != 0 {
		t.Fatalf("aborts %d, want 0", d.Aborts())
	}
}

// TestDriveContextCancelledUnlockCompletes pins the unlock discipline: a
// cancelled context must not tear an unlock() apart — the erase sweep is
// already bounded, so it runs to completion and returns nil.
func TestDriveContextCancelledUnlockCompletes(t *testing.T) {
	const m = 5
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []string{"alg1", "alg2"} {
		t.Run(alg, func(t *testing.T) {
			drivers, _ := substrate(t, "hardware", 1, m, func(me id.ID) core.Machine {
				return machineMaker(t, alg, me, m)
			})
			d := drivers[0]
			if _, err := d.DriveAll(); err != nil { // lock
				t.Fatal(err)
			}
			if err := d.Machine().StartUnlock(); err != nil {
				t.Fatal(err)
			}
			if err := d.DriveContext(cancelled); err != nil {
				t.Fatalf("cancelled unlock = %v, want nil", err)
			}
			if d.Machine().Status() != core.StatusIdle {
				t.Fatalf("status %v, want idle", d.Machine().Status())
			}
			if d.Aborts() != 0 {
				t.Fatalf("aborts %d, want 0 (unlock cannot be withdrawn)", d.Aborts())
			}
		})
	}
}
