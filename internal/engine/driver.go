package engine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
)

// Backoff tunes the Driver's adaptive wait strategy. The zero value means
// DefaultBackoff. The policy has three phases, escalating while the
// machine burns operations without making progress (progress = a write,
// or a successful CAS — the moves that change the shared memory):
//
//  1. pure spin for the first SpinOps ops — the common uncontended case
//     completes here without ever entering the scheduler;
//  2. runtime.Gosched after each op for the next YieldOps ops — polite to
//     sibling goroutines while the lock is briefly contended;
//  3. sleeping, starting at SleepMin and doubling per op up to SleepMax —
//     a long wait (another process holds the lock, or many competitors)
//     should not burn a core.
//
// Any progress resets the policy to phase 1.
type Backoff struct {
	// SpinOps is the number of non-progressing ops executed back-to-back
	// before the driver starts yielding (default 64).
	SpinOps int
	// YieldOps is the number of non-progressing ops accompanied by a
	// Gosched before the driver starts sleeping (default 64).
	YieldOps int
	// SleepMin and SleepMax bound the exponential sleep phase (defaults
	// 1µs and 256µs).
	SleepMin, SleepMax time.Duration

	// yield and sleep are test seams; nil means runtime.Gosched and
	// time.Sleep.
	yield func()
	sleep func(time.Duration)
}

// DefaultBackoff returns the production backoff policy.
func DefaultBackoff() Backoff {
	return Backoff{
		SpinOps:  64,
		YieldOps: 64,
		SleepMin: time.Microsecond,
		SleepMax: 256 * time.Microsecond,
	}
}

func (b *Backoff) normalize() {
	d := DefaultBackoff()
	if b.SpinOps <= 0 {
		b.SpinOps = d.SpinOps
	}
	if b.YieldOps <= 0 {
		b.YieldOps = d.YieldOps
	}
	if b.SleepMin <= 0 {
		b.SleepMin = d.SleepMin
	}
	if b.SleepMax < b.SleepMin {
		b.SleepMax = b.SleepMin
	}
	if b.yield == nil {
		b.yield = runtime.Gosched
	}
	if b.sleep == nil {
		b.sleep = time.Sleep
	}
}

// Driver runs one machine's invocations against one Executor: the single
// shared drive loop behind both real locks (and any other blocking use of
// the machines). A Driver belongs to one process; it is not safe for
// concurrent use.
type Driver struct {
	machine core.Machine
	exec    Executor
	backoff Backoff
	snapBuf []id.ID

	// streak counts consecutive ops without progress within the current
	// invocation. It resets on every progress op and at the start of each
	// Drive call: a contended Lock must not leave the driver in the sleep
	// phase, or the following Unlock would sleep while holding the
	// critical section.
	streak int

	// Statistics.
	ops    uint64 // total ops executed
	yields uint64 // Gosched calls
	sleeps uint64 // sleep calls
	aborts uint64 // invocations withdrawn by DriveContext
}

// NewDriver builds a driver for machine over exec with the default
// backoff. The snapshot buffer is preallocated so steady-state driving
// performs zero allocations per operation.
func NewDriver(machine core.Machine, exec Executor) *Driver {
	return NewDriverBackoff(machine, exec, DefaultBackoff())
}

// NewDriverBackoff builds a driver with an explicit backoff policy.
func NewDriverBackoff(machine core.Machine, exec Executor, b Backoff) *Driver {
	b.normalize()
	return &Driver{
		machine: machine,
		exec:    exec,
		backoff: b,
		snapBuf: make([]id.ID, exec.Size()),
	}
}

// Machine returns the driven machine.
func (d *Driver) Machine() core.Machine { return d.machine }

// Drive executes the machine's pending shared-memory operations until the
// current invocation completes (Status leaves Running). It returns an
// error only if the machine requests an operation the substrate does not
// know — impossible for the repository's machines.
func (d *Driver) Drive() error {
	_, err := d.drive(nil)
	return err
}

// drive is the loop shared by Drive and DriveContext: execute ops with
// the adaptive backoff until the invocation completes or done (when
// non-nil) fires at an op boundary, reported as cancelled=true with the
// machine still Running. The nil-done case — every plain Lock/Unlock,
// including the whole uncontended fast path — runs a dedicated tight
// loop with no cancellation poll on the op boundary.
func (d *Driver) drive(done <-chan struct{}) (cancelled bool, err error) {
	d.streak = 0
	if done == nil {
		for d.machine.Status() == core.StatusRunning {
			if err := d.execOne(); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	for d.machine.Status() == core.StatusRunning {
		select {
		case <-done:
			return true, nil
		default:
		}
		if err := d.execOne(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// execOne executes the machine's pending op, feeds the result back, and
// applies the adaptive backoff when the op made no progress.
func (d *Driver) execOne() error {
	op := d.machine.PendingOp()
	res, buf, err := Exec(d.exec, op, d.snapBuf)
	if err != nil {
		return err
	}
	d.snapBuf = buf
	d.machine.Advance(res)
	d.ops++

	if op.Kind == core.OpWrite || (op.Kind == core.OpCAS && res.Swapped) {
		// The shared memory changed: the protocol is moving. Restart
		// the escalation from the spin phase.
		d.streak = 0
		return nil
	}
	d.streak++
	if d.machine.Status() != core.StatusRunning {
		// The invocation just completed; don't wait on its last op.
		return nil
	}
	switch {
	case d.streak <= d.backoff.SpinOps:
		// Phase 1: spin.
	case d.streak <= d.backoff.SpinOps+d.backoff.YieldOps:
		d.yields++
		d.backoff.yield()
	default:
		over := d.streak - d.backoff.SpinOps - d.backoff.YieldOps - 1
		dur := d.backoff.SleepMin << min(over, 62)
		if dur > d.backoff.SleepMax || dur <= 0 {
			dur = d.backoff.SleepMax
		}
		d.sleeps++
		d.backoff.sleep(dur)
	}
	return nil
}

// DriveContext is Drive with cancellation: it executes the machine's
// pending operations until the current invocation completes or ctx is
// done. On cancellation mid-lock() it does not simply stop — an entry-
// section process may own anonymous registers, and abandoning them would
// wedge every other competitor — instead it withdraws: the machine's
// StartAbort back-out runs to completion (a bounded erase sweep, at most
// 2m operations, never blocking on other processes), leaving the shared
// registers exactly as if this process had never competed, and ctx's
// error is returned. A machine that completes its invocation (reaches
// the critical section, or finishes unlock) before the cancellation is
// observed completes normally and returns nil — the caller holds the
// lock even if ctx expired in the same instant.
//
// The waiting policy matches Drive: spin, then yield, then escalating
// sleeps, with the cancellation checked at every op boundary (sleeps are
// bounded by SleepMax, so cancellation latency is at most one sleep).
func (d *Driver) DriveContext(ctx context.Context) error {
	done := ctx.Done()
	if done == nil {
		return d.Drive()
	}
	cancelled, err := d.drive(done)
	if err != nil {
		return err
	}
	if cancelled {
		return d.withdraw(ctx.Err())
	}
	return nil
}

// TryDriveBounded is the engine's non-blocking acquisition attempt: it
// executes at most maxOps operations of the machine's in-progress lock()
// and reports whether the invocation completed. If the budget runs out
// first, the attempt is withdrawn (the machine's StartAbort back-out
// runs to completion, leaving the registers as if the process had never
// competed) and acquired=false is returned. Unlike Drive, the whole call
// is bounded — at most maxOps + the withdraw sweep's operations — and
// never backs off or sleeps, which makes it the primitive behind
// hard-bounded trylocks: pick maxOps large enough for an uncontended
// acquisition (2m+1 covers both algorithms; m suffices for Algorithm 2's
// solo fast path) and any contended attempt fails fast instead of
// waiting out a competitor's critical section.
func (d *Driver) TryDriveBounded(maxOps int) (acquired bool, err error) {
	d.streak = 0
	for i := 0; i < maxOps && d.machine.Status() == core.StatusRunning; i++ {
		op := d.machine.PendingOp()
		res, buf, err := Exec(d.exec, op, d.snapBuf)
		if err != nil {
			return false, err
		}
		d.snapBuf = buf
		d.machine.Advance(res)
		d.ops++
	}
	if d.machine.Status() != core.StatusRunning {
		return true, nil
	}
	if err := d.machine.StartAbort(); err != nil {
		return false, err
	}
	for d.machine.Status() == core.StatusRunning {
		res, buf, err := Exec(d.exec, d.machine.PendingOp(), d.snapBuf)
		if err != nil {
			return false, err
		}
		d.snapBuf = buf
		d.machine.Advance(res)
		d.ops++
	}
	d.aborts++
	return false, nil
}

// withdraw handles a cancellation observed mid-invocation. For a lock()
// it backs the machine out via StartAbort and returns cause; a machine
// that cannot be withdrawn (an unlock(), whose erase sweep is already
// bounded) is driven to normal completion and nil is returned. Either
// way the remaining ops run without backoff or further cancellation
// checks: every one advances the machine (both sweeps are wait-free), and
// stopping halfway could leave the process's identity in a register
// nobody will ever erase.
func (d *Driver) withdraw(cause error) error {
	aborting := d.machine.StartAbort() == nil
	for d.machine.Status() == core.StatusRunning {
		res, buf, err := Exec(d.exec, d.machine.PendingOp(), d.snapBuf)
		if err != nil {
			return err
		}
		d.snapBuf = buf
		d.machine.Advance(res)
		d.ops++
	}
	if !aborting {
		return nil
	}
	d.aborts++
	return cause
}

// Stats reports the driver's lifetime counters: shared-memory ops
// executed, scheduler yields, and sleeps taken while waiting.
func (d *Driver) Stats() (ops, yields, sleeps uint64) {
	return d.ops, d.yields, d.sleeps
}

// Aborts reports how many invocations DriveContext has withdrawn.
func (d *Driver) Aborts() uint64 { return d.aborts }

// DriveAll is a convenience for sequential (single-goroutine) execution:
// it starts and completes one full invocation — lock when the machine is
// idle, unlock when it is in the critical section — and reports the
// resulting status. Scenario replays and equivalence tests use it to
// interleave whole invocations deterministically.
func (d *Driver) DriveAll() (core.Status, error) {
	switch d.machine.Status() {
	case core.StatusIdle:
		if err := d.machine.StartLock(); err != nil {
			return 0, err
		}
	case core.StatusInCS:
		if err := d.machine.StartUnlock(); err != nil {
			return 0, err
		}
	case core.StatusRunning:
		return 0, fmt.Errorf("engine: DriveAll on a machine mid-invocation")
	}
	if err := d.Drive(); err != nil {
		return 0, err
	}
	return d.machine.Status(), nil
}
