package engine

import (
	"fmt"
	"testing"
	"time"

	"anonmutex/internal/amem"
	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/vmem"
	"anonmutex/internal/xrand"
)

func newHardware(t *testing.T, m int) (*amem.Memory, func() Executor) {
	t.Helper()
	mem := amem.New(m)
	gen := id.NewGenerator()
	return mem, func() Executor {
		me, err := gen.New()
		if err != nil {
			t.Fatal(err)
		}
		v, err := mem.NewView(me, perm.Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		return Hardware(v)
	}
}

func TestExecDispatch(t *testing.T) {
	const m = 3
	_, next := newHardware(t, m)
	x := next()
	me := x.(*amem.View).Me()

	res, _, err := Exec(x, core.Op{Kind: core.OpWrite, X: 1, Val: me}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = Exec(x, core.Op{Kind: core.OpRead, X: 1}, nil)
	if err != nil || !res.Val.Equal(me) {
		t.Fatalf("read back %v (err %v), want %v", res.Val, err, me)
	}
	res, _, err = Exec(x, core.Op{Kind: core.OpCAS, X: 1, Old: me, New: id.None}, nil)
	if err != nil || !res.Swapped {
		t.Fatalf("cas: swapped=%v err=%v, want true", res.Swapped, err)
	}
	buf := make([]id.ID, 0, m)
	res, buf, err = Exec(x, core.Op{Kind: core.OpSnapshot}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snap) != m || !res.Snap[1].IsNone() {
		t.Fatalf("snapshot %v, want all ⊥", res.Snap)
	}
	if _, _, err := Exec(x, core.Op{Kind: core.OpKind(99)}, nil); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}

func TestSimulatedExecutorMatchesView(t *testing.T) {
	const m = 5
	mem := vmem.New(m, true)
	gen := id.NewGenerator()
	me, _ := gen.New()
	v, err := mem.NewView(me, perm.Rotation(m, 2))
	if err != nil {
		t.Fatal(err)
	}
	x := Simulated(v)
	if x.Size() != m {
		t.Fatalf("Size() = %d, want %d", x.Size(), m)
	}
	x.Write(0, me)
	if got := x.Read(0); !got.Equal(me) {
		t.Fatalf("read back %v, want %v", got, me)
	}
	// Rotation by 2: local 0 is physical 2.
	if got := mem.Observe(2).Val; !got.Equal(me) {
		t.Fatalf("physical 2 holds %v, want %v", got, me)
	}
	snap := x.Snapshot(nil)
	if len(snap) != m || !snap[0].Equal(me) {
		t.Fatalf("snapshot %v, want %v at local 0", snap, me)
	}
	if !x.CompareAndSwap(0, me, id.None) {
		t.Fatal("CAS with correct comparand failed")
	}
	if x.CompareAndSwap(0, me, id.None) {
		t.Fatal("CAS with stale comparand succeeded")
	}
}

// driveSolo runs `sessions` full lock/unlock cycles on a fresh driver.
func driveSolo(t *testing.T, d *Driver, sessions int) {
	t.Helper()
	for s := 0; s < sessions; s++ {
		if st, err := d.DriveAll(); err != nil || st != core.StatusInCS {
			t.Fatalf("lock: status %v, err %v", st, err)
		}
		if st, err := d.DriveAll(); err != nil || st != core.StatusIdle {
			t.Fatalf("unlock: status %v, err %v", st, err)
		}
	}
}

func TestDriverSoloBothAlgorithmsBothSubstrates(t *testing.T) {
	const n, m = 2, 3
	gen := id.NewGenerator()
	me, _ := gen.New()

	build := func(alg string) []core.Machine {
		a1, err := core.NewAlg1(me, n, m, core.Alg1Config{Choice: core.ChooseFirstBottom})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := core.NewAlg2(me, n, m, core.Alg2Config{})
		if err != nil {
			t.Fatal(err)
		}
		if alg == "rw" {
			return []core.Machine{a1}
		}
		return []core.Machine{a2}
	}
	for _, alg := range []string{"rw", "rmw"} {
		hw := amem.New(m)
		hv, err := hw.NewView(me, perm.Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		sm := vmem.New(m, true)
		sv, err := sm.NewView(me, perm.Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		driveSolo(t, NewDriver(build(alg)[0], Hardware(hv)), 3)
		driveSolo(t, NewDriver(build(alg)[0], Simulated(sv)), 3)
	}
}

// TestDriverZeroAllocs verifies the engine's hot-path guarantee: once the
// driver exists, a full lock/unlock session performs zero allocations per
// operation — for both algorithms, including Algorithm 1's default
// random-claim policy.
func TestDriverZeroAllocs(t *testing.T) {
	const n, m = 2, 3
	gen := id.NewGenerator()
	me, _ := gen.New()

	cases := []struct {
		name string
		mk   func() core.Machine
	}{
		{"alg1-first-bottom", func() core.Machine {
			a, err := core.NewAlg1(me, n, m, core.Alg1Config{Choice: core.ChooseFirstBottom})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
		{"alg1-random-claims", func() core.Machine {
			a, err := core.NewAlg1(me, n, m, core.Alg1Config{Choice: core.ChooseRandomBottom, Rand: xrand.New(7)})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
		{"alg2", func() core.Machine {
			a, err := core.NewAlg2(me, n, m, core.Alg2Config{})
			if err != nil {
				t.Fatal(err)
			}
			return a
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := amem.New(m)
			v, err := mem.NewView(me, perm.Identity(m))
			if err != nil {
				t.Fatal(err)
			}
			d := NewDriver(tc.mk(), Hardware(v))
			driveSolo(t, d, 1) // warm up: lazily sized buffers settle
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := d.DriveAll(); err != nil {
					t.Fatal(err)
				}
				if _, err := d.DriveAll(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%.1f allocs per lock/unlock session, want 0", allocs)
			}
		})
	}
}

// spinMachine is a fake machine that requests `total` reads of register 0
// before completing its lock invocation — a pure wait loop, for exercising
// the backoff escalation deterministically.
type spinMachine struct {
	me     id.ID
	status core.Status
	left   int
	total  int
	abort  bool
}

func (s *spinMachine) Me() id.ID           { return s.me }
func (s *spinMachine) Status() core.Status { return s.status }
func (s *spinMachine) StartLock() error {
	s.status = core.StatusRunning
	s.left = s.total
	return nil
}
func (s *spinMachine) StartUnlock() error { s.status = core.StatusIdle; return nil }
func (s *spinMachine) StartAbort() error {
	if s.status != core.StatusRunning {
		return fmt.Errorf("spinMachine: StartAbort in status %v", s.status)
	}
	s.left = 1 // one final op completes the back-out
	s.abort = true
	return nil
}
func (s *spinMachine) PendingOp() core.Op { return core.Op{Kind: core.OpRead, X: 0} }
func (s *spinMachine) Advance(core.OpResult) core.Status {
	s.left--
	if s.left <= 0 {
		if s.abort {
			s.abort = false
			s.status = core.StatusIdle
		} else {
			s.status = core.StatusInCS
		}
	}
	return s.status
}
func (s *spinMachine) Line() int                     { return 0 }
func (s *spinMachine) LockSteps() int                { return s.total - s.left }
func (s *spinMachine) OwnedAtEntry() int             { return 0 }
func (s *spinMachine) AppendState(dst []byte) []byte { return dst }
func (s *spinMachine) Clone() core.Machine           { c := *s; return &c }

func TestDriverBackoffEscalation(t *testing.T) {
	const m = 1
	mem := vmem.New(m, false)
	gen := id.NewGenerator()
	me, _ := gen.New()
	v, err := mem.NewView(me, perm.Identity(m))
	if err != nil {
		t.Fatal(err)
	}

	var yields int
	var sleeps []time.Duration
	b := Backoff{
		SpinOps:  4,
		YieldOps: 3,
		SleepMin: time.Microsecond,
		SleepMax: 8 * time.Microsecond,
		yield:    func() { yields++ },
		sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
	}

	// 4 spin + 3 yield + 5 sleeping ops; the 13th op completes the
	// invocation and is not followed by a wait.
	sm := &spinMachine{me: me, total: 13}
	d := NewDriverBackoff(sm, Simulated(v), b)
	if err := sm.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := d.Drive(); err != nil {
		t.Fatal(err)
	}
	if yields != 3 {
		t.Errorf("yields = %d, want 3", yields)
	}
	want := []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 4 * time.Microsecond,
		8 * time.Microsecond, 8 * time.Microsecond,
	}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, sleeps[i], want[i], sleeps)
		}
	}
	ops, y, s := d.Stats()
	if ops != 13 || y != 3 || s != 5 {
		t.Errorf("Stats() = (%d, %d, %d), want (13, 3, 5)", ops, y, s)
	}
}

func TestDriverBackoffResetsOnProgress(t *testing.T) {
	const n, m = 2, 3
	gen := id.NewGenerator()
	me, _ := gen.New()
	a, err := core.NewAlg1(me, n, m, core.Alg1Config{Choice: core.ChooseFirstBottom})
	if err != nil {
		t.Fatal(err)
	}
	mem := vmem.New(m, true)
	v, err := mem.NewView(me, perm.Identity(m))
	if err != nil {
		t.Fatal(err)
	}
	var yields, sleeps int
	b := Backoff{
		SpinOps: 1, YieldOps: 1,
		SleepMin: time.Microsecond, SleepMax: time.Microsecond,
		yield: func() { yields++ },
		sleep: func(time.Duration) { sleeps++ },
	}
	d := NewDriverBackoff(a, Simulated(v), b)
	// Solo Algorithm 1: snapshot, then (claim, snapshot) × m, final check.
	// Every write resets the streak, so even with SpinOps=1 the solo run
	// never escalates past at most a yield between claims.
	if st, err := d.DriveAll(); err != nil || st != core.StatusInCS {
		t.Fatalf("lock: %v %v", st, err)
	}
	if sleeps != 0 {
		t.Errorf("solo lock slept %d times; progress should keep resetting the backoff", sleeps)
	}
}

func TestRecorder(t *testing.T) {
	const m = 3
	_, next := newHardware(t, m)
	rec := NewRecorder(next())
	me := rec.Inner.(*amem.View).Me()

	rec.Write(0, me)
	_ = rec.Read(0)
	_ = rec.CompareAndSwap(0, me, id.None)
	_ = rec.Snapshot(nil)

	kinds := []core.OpKind{core.OpWrite, core.OpRead, core.OpCAS, core.OpSnapshot}
	if len(rec.Log) != len(kinds) {
		t.Fatalf("recorded %d ops, want %d", len(rec.Log), len(kinds))
	}
	for i, k := range kinds {
		if rec.Log[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, rec.Log[i].Kind, k)
		}
		if rec.Log[i].String() == "" {
			t.Errorf("op %d renders empty", i)
		}
	}
	if !rec.Log[1].Out.Equal(me) {
		t.Errorf("read result %v, want %v", rec.Log[1].Out, me)
	}
	if !rec.Log[2].Swapped {
		t.Error("CAS outcome not recorded")
	}
	if len(rec.Log[3].Snap) != m {
		t.Errorf("snapshot record has %d values, want %d", len(rec.Log[3].Snap), m)
	}
}

func TestDriveAllRejectsMidInvocation(t *testing.T) {
	const m = 1
	mem := vmem.New(m, false)
	gen := id.NewGenerator()
	me, _ := gen.New()
	v, _ := mem.NewView(me, perm.Identity(m))
	sm := &spinMachine{me: me, total: 5}
	d := NewDriver(sm, Simulated(v))
	sm.status = core.StatusRunning
	sm.left = 5
	if _, err := d.DriveAll(); err == nil {
		t.Fatal("DriveAll accepted a machine mid-invocation")
	}
}
