// Package check implements a linearizability checker for concurrent
// histories over the anonymous-memory object (m registers supporting
// read, write, compare&swap, and snapshot).
//
// The paper's model requires all register operations to be atomic
// (linearizable) and assumes a linearizable snapshot (§II-B). The
// substrate packages implement these with hardware atomics and the
// double-scan construction; this checker provides the direct verification:
// record a timestamped concurrent history from a real run and search for a
// legal sequential witness.
//
// The search is Wing & Gong's algorithm: repeatedly choose a "minimal"
// pending operation (one that is not strictly preceded in real time by
// another pending operation), check that applying it to the current
// sequential state reproduces its recorded response, and recurse, with
// memoization on (pending set, state). Histories up to a few dozen
// operations check in microseconds; the tests keep them small.
package check

import (
	"fmt"
	"sync/atomic"

	"anonmutex/internal/id"
)

// Kind classifies history operations.
type Kind uint8

// Operation kinds.
const (
	KRead Kind = iota + 1
	KWrite
	KCAS
	KSnapshot
)

// Op is one completed operation in a concurrent history. Inv and Res are
// logical timestamps (from a shared counter): Inv strictly before the
// operation's first memory access, Res strictly after its last.
type Op struct {
	Proc int
	Kind Kind
	X    int     // register index (KRead, KWrite, KCAS)
	Arg  id.ID   // value written (KWrite) or CAS replacement (KCAS)
	Old  id.ID   // CAS comparand
	Ret  id.ID   // KRead result
	OK   bool    // KCAS result
	Snap []id.ID // KSnapshot result

	Inv, Res int64
}

// Linearizable reports whether the history over an m-register memory
// (initially all ⊥) has a legal linearization. Histories longer than 63
// operations are rejected with an error (the pending-set bitmask is 64
// bits; the intended use is small recorded fragments).
func Linearizable(m int, history []Op) (bool, error) {
	if len(history) > 63 {
		return false, fmt.Errorf("check: history of %d ops exceeds the 63-op limit", len(history))
	}
	for i, op := range history {
		if op.Inv >= op.Res {
			return false, fmt.Errorf("check: op %d has Inv %d >= Res %d", i, op.Inv, op.Res)
		}
		if op.Kind == KSnapshot && len(op.Snap) != m {
			return false, fmt.Errorf("check: op %d snapshot has %d entries, want %d", i, len(op.Snap), m)
		}
		if (op.Kind == KRead || op.Kind == KWrite || op.Kind == KCAS) && (op.X < 0 || op.X >= m) {
			return false, fmt.Errorf("check: op %d register index %d out of range", i, op.X)
		}
	}
	c := &checker{m: m, h: history, visited: make(map[string]bool)}
	state := make([]id.ID, m)
	full := uint64(1)<<len(history) - 1
	return c.search(full, state), nil
}

type checker struct {
	m       int
	h       []Op
	visited map[string]bool
}

// search tries to linearize the pending ops (bitmask) from state.
func (c *checker) search(pending uint64, state []id.ID) bool {
	if pending == 0 {
		return true
	}
	key := c.key(pending, state)
	if c.visited[key] {
		return false // already proven fruitless
	}

	// Minimal response time among pending ops: any op invoked after some
	// pending op's response cannot be linearized next.
	minRes := int64(1<<62 - 1)
	for i := 0; i < len(c.h); i++ {
		if pending&(1<<i) != 0 && c.h[i].Res < minRes {
			minRes = c.h[i].Res
		}
	}
	for i := 0; i < len(c.h); i++ {
		if pending&(1<<i) == 0 {
			continue
		}
		op := &c.h[i]
		if op.Inv > minRes {
			continue // strictly preceded by a pending op
		}
		undo, ok := c.apply(op, state)
		if !ok {
			continue
		}
		if c.search(pending&^(1<<i), state) {
			return true
		}
		undo(state)
	}
	c.visited[key] = true
	return false
}

// apply checks op against state; on success it mutates state and returns
// an undo function.
func (c *checker) apply(op *Op, state []id.ID) (func([]id.ID), bool) {
	switch op.Kind {
	case KRead:
		if !state[op.X].Equal(op.Ret) {
			return nil, false
		}
		return func([]id.ID) {}, true
	case KWrite:
		prev := state[op.X]
		x := op.X
		state[x] = op.Arg
		return func(s []id.ID) { s[x] = prev }, true
	case KCAS:
		matches := state[op.X].Equal(op.Old)
		if matches != op.OK {
			return nil, false
		}
		if !matches {
			return func([]id.ID) {}, true
		}
		prev := state[op.X]
		x := op.X
		state[x] = op.Arg
		return func(s []id.ID) { s[x] = prev }, true
	case KSnapshot:
		for x := range state {
			if !state[x].Equal(op.Snap[x]) {
				return nil, false
			}
		}
		return func([]id.ID) {}, true
	default:
		return nil, false
	}
}

func (c *checker) key(pending uint64, state []id.ID) string {
	buf := make([]byte, 0, 8+2*len(state))
	for s := 0; s < 64; s += 8 {
		buf = append(buf, byte(pending>>s))
	}
	for _, v := range state {
		h := id.Handle(v)
		buf = append(buf, byte(h>>8), byte(h))
	}
	return string(buf)
}

// Recorder builds timestamped histories from real concurrent runs. The
// logical clock is a shared atomic counter; callers bracket each operation
// with Start/End. Recorder is safe for concurrent use; each process must
// append its ops through its own Session.
type Recorder struct {
	clock atomic.Int64
	ops   []chan Op // one buffered channel per session keeps appends race-free
}

// NewRecorder creates a recorder for n sessions with capacity ops each.
func NewRecorder(n, capacity int) *Recorder {
	r := &Recorder{ops: make([]chan Op, n)}
	for i := range r.ops {
		r.ops[i] = make(chan Op, capacity)
	}
	return r
}

// Session returns the recording session for process i.
func (r *Recorder) Session(i int) *Session {
	return &Session{rec: r, proc: i}
}

// History drains and merges all sessions' operations. Call only after all
// recording goroutines have finished.
func (r *Recorder) History() []Op {
	var out []Op
	for _, ch := range r.ops {
		for {
			select {
			case op := <-ch:
				out = append(out, op)
			default:
				goto next
			}
		}
	next:
	}
	return out
}

// Session records one process's operations.
type Session struct {
	rec  *Recorder
	proc int
}

// Start returns an invocation timestamp.
func (s *Session) Start() int64 { return s.rec.clock.Add(1) }

// End completes op with a response timestamp and records it.
func (s *Session) End(op Op, inv int64) {
	op.Proc = s.proc
	op.Inv = inv
	op.Res = s.rec.clock.Add(1)
	s.rec.ops[s.proc] <- op
}
