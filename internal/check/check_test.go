package check

import (
	"sync"
	"testing"

	"anonmutex/internal/amem"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
)

func ids(t *testing.T, n int) []id.ID {
	t.Helper()
	g := id.NewGenerator()
	out, err := g.NewN(n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustCheck(t *testing.T, m int, h []Op) bool {
	t.Helper()
	ok, err := Linearizable(m, h)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestEmptyHistory(t *testing.T) {
	if !mustCheck(t, 3, nil) {
		t.Fatal("empty history not linearizable")
	}
}

func TestSequentialHistory(t *testing.T) {
	v := ids(t, 1)[0]
	h := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 2},
		{Kind: KRead, X: 0, Ret: v, Inv: 3, Res: 4},
		{Kind: KRead, X: 1, Ret: id.None, Inv: 5, Res: 6},
	}
	if !mustCheck(t, 2, h) {
		t.Fatal("legal sequential history rejected")
	}
}

func TestSequentialViolation(t *testing.T) {
	v := ids(t, 1)[0]
	h := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 2},
		{Kind: KRead, X: 0, Ret: id.None, Inv: 3, Res: 4}, // stale read after write
	}
	if mustCheck(t, 1, h) {
		t.Fatal("stale sequential read accepted")
	}
}

func TestConcurrentReadMaySeeEither(t *testing.T) {
	v := ids(t, 1)[0]
	// Read overlaps the write: both old and new values are legal.
	for _, ret := range []id.ID{id.None, v} {
		h := []Op{
			{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 4},
			{Kind: KRead, X: 0, Ret: ret, Inv: 2, Res: 3},
		}
		if !mustCheck(t, 1, h) {
			t.Fatalf("overlapping read returning %v rejected", ret)
		}
	}
}

func TestReadsMustAgreeOnOrder(t *testing.T) {
	v := ids(t, 1)[0]
	// Two sequential reads around a concurrent write: new-then-old is not
	// linearizable (values cannot flow backwards).
	h := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 8},
		{Kind: KRead, X: 0, Ret: v, Inv: 2, Res: 3},
		{Kind: KRead, X: 0, Ret: id.None, Inv: 4, Res: 5},
	}
	if mustCheck(t, 1, h) {
		t.Fatal("backwards value flow accepted")
	}
}

func TestCASSemantics(t *testing.T) {
	vs := ids(t, 2)
	p, q := vs[0], vs[1]
	// Two concurrent CAS(⊥→·): exactly one may succeed.
	ok := []Op{
		{Kind: KCAS, X: 0, Old: id.None, Arg: p, OK: true, Inv: 1, Res: 4},
		{Kind: KCAS, X: 0, Old: id.None, Arg: q, OK: false, Inv: 2, Res: 3},
	}
	if !mustCheck(t, 1, ok) {
		t.Fatal("legal CAS pair rejected")
	}
	both := []Op{
		{Kind: KCAS, X: 0, Old: id.None, Arg: p, OK: true, Inv: 1, Res: 4},
		{Kind: KCAS, X: 0, Old: id.None, Arg: q, OK: true, Inv: 2, Res: 3},
	}
	if mustCheck(t, 1, both) {
		t.Fatal("two successful CAS(⊥→·) accepted")
	}
	neither := []Op{
		{Kind: KCAS, X: 0, Old: id.None, Arg: p, OK: false, Inv: 1, Res: 4},
		{Kind: KCAS, X: 0, Old: id.None, Arg: q, OK: false, Inv: 2, Res: 3},
	}
	if mustCheck(t, 1, neither) {
		t.Fatal("two failed CAS(⊥→·) on a fresh register accepted")
	}
}

func TestSnapshotMustBeConsistentCut(t *testing.T) {
	v := ids(t, 1)[0]
	// Writer sets register 0 then register 1 sequentially. A snapshot
	// strictly after both must see both; seeing (⊥, v) is the torn read
	// the double scan exists to prevent.
	legal := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 2},
		{Kind: KWrite, X: 1, Arg: v, Inv: 3, Res: 4},
		{Kind: KSnapshot, Snap: []id.ID{v, v}, Inv: 5, Res: 6},
	}
	if !mustCheck(t, 2, legal) {
		t.Fatal("legal snapshot rejected")
	}
	torn := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 2},
		{Kind: KWrite, X: 1, Arg: v, Inv: 3, Res: 4},
		{Kind: KSnapshot, Snap: []id.ID{id.None, v}, Inv: 5, Res: 6},
	}
	if mustCheck(t, 2, torn) {
		t.Fatal("torn snapshot accepted")
	}
	// Overlapping the second write, (v, ⊥) is legal (cut between writes)
	// but (⊥, v) is not (no instant has it).
	overlap := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 2},
		{Kind: KWrite, X: 1, Arg: v, Inv: 3, Res: 6},
		{Kind: KSnapshot, Snap: []id.ID{v, id.None}, Inv: 4, Res: 5},
	}
	if !mustCheck(t, 2, overlap) {
		t.Fatal("mid-cut snapshot rejected")
	}
	impossible := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 2},
		{Kind: KWrite, X: 1, Arg: v, Inv: 3, Res: 6},
		{Kind: KSnapshot, Snap: []id.ID{id.None, v}, Inv: 4, Res: 5},
	}
	if mustCheck(t, 2, impossible) {
		t.Fatal("causally impossible snapshot accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Linearizable(1, []Op{{Kind: KRead, X: 0, Inv: 2, Res: 1}}); err == nil {
		t.Error("Inv >= Res accepted")
	}
	if _, err := Linearizable(1, []Op{{Kind: KRead, X: 5, Inv: 1, Res: 2}}); err == nil {
		t.Error("out-of-range register accepted")
	}
	if _, err := Linearizable(2, []Op{{Kind: KSnapshot, Snap: []id.ID{}, Inv: 1, Res: 2}}); err == nil {
		t.Error("short snapshot accepted")
	}
	long := make([]Op, 64)
	for i := range long {
		long[i] = Op{Kind: KRead, X: 0, Inv: int64(2 * i), Res: int64(2*i + 1)}
	}
	if _, err := Linearizable(1, long); err == nil {
		t.Error("64-op history accepted")
	}
}

// TestRealHistoryRegisters records a genuine concurrent history against
// the real atomic memory and verifies it linearizes.
func TestRealHistoryRegisters(t *testing.T) {
	const m, workers, opsEach = 2, 3, 5
	for trial := 0; trial < 30; trial++ {
		mem := amem.New(m)
		rec := NewRecorder(workers, opsEach)
		g := id.NewGenerator()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			me := g.MustNew()
			view, err := mem.NewView(me, perm.Identity(m))
			if err != nil {
				t.Fatal(err)
			}
			s := rec.Session(w)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsEach; i++ {
					x := (w + i) % m
					switch i % 3 {
					case 0:
						inv := s.Start()
						view.Write(x, view.Me())
						s.End(Op{Kind: KWrite, X: x, Arg: view.Me()}, inv)
					case 1:
						inv := s.Start()
						v := view.Read(x)
						s.End(Op{Kind: KRead, X: x, Ret: v}, inv)
					case 2:
						inv := s.Start()
						ok := view.CompareAndSwap(x, view.Me(), id.None)
						s.End(Op{Kind: KCAS, X: x, Old: view.Me(), Arg: id.None, OK: ok}, inv)
					}
				}
			}(w)
		}
		wg.Wait()
		h := rec.History()
		ok, err := Linearizable(m, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: real history not linearizable: %+v", trial, h)
		}
	}
}

// TestRealHistorySnapshots records concurrent double-scan snapshots
// against writers and verifies linearizability — the direct validation of
// the paper's snapshot assumption.
func TestRealHistorySnapshots(t *testing.T) {
	const m = 2
	for trial := 0; trial < 30; trial++ {
		mem := amem.New(m)
		rec := NewRecorder(2, 8)
		g := id.NewGenerator()

		writer, err := mem.NewView(g.MustNew(), perm.Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		reader, err := mem.NewView(g.MustNew(), perm.Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s := rec.Session(0)
			for i := 0; i < 6; i++ {
				x := i % m
				val := writer.Me()
				if i%2 == 1 {
					val = id.None
				}
				inv := s.Start()
				writer.Write(x, val)
				s.End(Op{Kind: KWrite, X: x, Arg: val}, inv)
			}
		}()
		go func() {
			defer wg.Done()
			s := rec.Session(1)
			for i := 0; i < 4; i++ {
				inv := s.Start()
				snap := reader.Snapshot(nil)
				cp := make([]id.ID, m)
				copy(cp, snap)
				s.End(Op{Kind: KSnapshot, Snap: cp}, inv)
			}
		}()
		wg.Wait()
		ok, err := Linearizable(m, rec.History())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: snapshot history not linearizable", trial)
		}
	}
}

func BenchmarkChecker(b *testing.B) {
	g := id.NewGenerator()
	v := g.MustNew()
	h := []Op{
		{Kind: KWrite, X: 0, Arg: v, Inv: 1, Res: 10},
		{Kind: KRead, X: 0, Ret: v, Inv: 2, Res: 9},
		{Kind: KRead, X: 1, Ret: id.None, Inv: 3, Res: 8},
		{Kind: KSnapshot, Snap: []id.ID{v, id.None}, Inv: 4, Res: 7},
		{Kind: KCAS, X: 1, Old: id.None, Arg: v, OK: true, Inv: 5, Res: 6},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := Linearizable(2, h); err != nil || !ok {
			b.Fatal("history rejected")
		}
	}
}
