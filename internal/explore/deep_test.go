package explore

// Deeper exhaustive explorations, gated by -short: larger memories and
// more processes. These pin down exact reachable-state counts, which act
// as regression anchors — an unintended protocol change almost certainly
// shifts them.

import (
	"testing"

	"anonmutex/internal/perm"
)

func TestAlg1DeepLegalM5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	res, err := Explore(Config{N: 2, M: 5, Factory: alg1Factory(5)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("alg1 n=2 m=5: me=%d traps=%d complete=%v", res.MEViolations, res.Traps, res.Complete)
	}
	t.Logf("alg1 n=2 m=5: %d states, %d transitions", res.States, res.Transitions)
}

func TestAlg2DeepLegalM5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	res, err := Explore(Config{N: 2, M: 5, Factory: alg2Factory(5)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("alg2 n=2 m=5: me=%d traps=%d complete=%v", res.MEViolations, res.Traps, res.Complete)
	}
	t.Logf("alg2 n=2 m=5: %d states, %d transitions", res.States, res.Transitions)
}

func TestAlg2DeepIllegalM4(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	// m=4, n=2: gcd(2,4)=2, illegal. The trap must exist and safety must
	// still hold.
	res, err := Explore(Config{N: 2, M: 4, Factory: alg2Factory(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.MEViolations != 0 {
		t.Fatalf("n=2 m=4: complete=%v me=%d", res.Complete, res.MEViolations)
	}
	if res.Traps == 0 {
		t.Fatal("no trap on m=4 ∉ M(2)")
	}
	t.Logf("alg2 n=2 m=4: %d states, %d traps", res.States, res.Traps)
}

func TestAlg2DeepThreeProcessesM5(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	res, err := Explore(Config{N: 3, M: 5, Factory: alg2Factory(5), MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Whether or not the bound is hit, no explored state may violate ME,
	// and if complete, there must be no traps.
	if res.MEViolations != 0 {
		t.Fatalf("ME violated: %s", res.MEWitness)
	}
	if res.Complete && res.Traps != 0 {
		t.Fatalf("traps on a legal configuration: %s", res.TrapWitness)
	}
	t.Logf("alg2 n=3 m=5: %d states (complete=%v)", res.States, res.Complete)
}

func TestStateCountsStable(t *testing.T) {
	// Regression anchors: exact reachable-state counts for the canonical
	// instances. If an intentional protocol change shifts these, update
	// the constants alongside a careful review.
	res1, err := Explore(Config{N: 2, M: 3, Factory: alg1Factory(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res1.States != 1055 || res1.Transitions != 1950 {
		t.Errorf("alg1 n=2 m=3: %d states / %d transitions, expected 1055 / 1950", res1.States, res1.Transitions)
	}
	res2, err := Explore(Config{N: 2, M: 3, Factory: alg2Factory(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.States != 2086 || res2.Transitions != 3254 {
		t.Errorf("alg2 n=2 m=3: %d states / %d transitions, expected 2086 / 3254", res2.States, res2.Transitions)
	}
}

func TestVerdictsIndependentOfAdversaryDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep exploration")
	}
	// The trap verdict on illegal sizes must also be adversary-independent.
	for _, adv := range []perm.Adversary{
		perm.IdentityAdversary{},
		perm.RotationAdversary{Step: 2},
		perm.RandomAdversary{Seed: 9},
	} {
		res, err := Explore(Config{N: 2, M: 4, Factory: alg1Factory(4), Adversary: adv})
		if err != nil {
			t.Fatal(err)
		}
		if res.Traps == 0 {
			t.Errorf("adversary %T hid the trap on m=4", adv)
		}
		if res.MEViolations != 0 {
			t.Errorf("adversary %T broke safety", adv)
		}
	}
}
