package explore

import (
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/strawman"
)

func alg1Factory(m int) func(int, id.ID) (core.Machine, error) {
	return func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg1Unchecked(me, m, core.Alg1Config{})
	}
}

func alg2Factory(m int) func(int, id.ID) (core.Machine, error) {
	return func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg2Unchecked(me, m, core.Alg2Config{})
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Explore(Config{N: 0, M: 3, Factory: alg1Factory(3)}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Explore(Config{N: 2, M: 3}); err == nil {
		t.Error("missing factory accepted")
	}
	if _, err := Explore(Config{N: 2, M: 3, Factory: alg1Factory(3), Sessions: -1}); err == nil {
		t.Error("negative sessions accepted")
	}
}

// TestAlg1ExhaustiveLegal is the Table II "sufficient" cell for the RW
// model, verified exhaustively: n=2 processes, m=3 ∈ M(2) registers, every
// interleaving. No reachable ME violation, no reachable trap.
func TestAlg1ExhaustiveLegal(t *testing.T) {
	res, err := Explore(Config{N: 2, M: 3, Factory: alg1Factory(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("exploration incomplete at %d states", res.States)
	}
	if res.MEViolations != 0 {
		t.Fatalf("mutual exclusion violated: %s", res.MEWitness)
	}
	if res.Traps != 0 {
		t.Fatalf("progress trap found on a legal size: %s", res.TrapWitness)
	}
	if res.Entries == 0 || res.Terminals == 0 {
		t.Fatalf("degenerate exploration: entries=%d terminals=%d", res.Entries, res.Terminals)
	}
	t.Logf("alg1 n=2 m=3: %d states, %d transitions, %d entry edges", res.States, res.Transitions, res.Entries)
}

// TestAlg1ExhaustiveIllegal is the matching "necessary" cell: m=4 ∉ M(2).
// The checker must find the trap region (the 2-2 split from which nobody
// withdraws) — an exhaustive confirmation of the Theorem 5 wedge.
func TestAlg1ExhaustiveIllegal(t *testing.T) {
	res, err := Explore(Config{N: 2, M: 4, Factory: alg1Factory(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("exploration incomplete at %d states", res.States)
	}
	if res.MEViolations != 0 {
		// Algorithm 1 remains safe even on illegal sizes (safety never
		// depended on m ∈ M(n) for m > n).
		t.Fatalf("unexpected ME violation: %s", res.MEWitness)
	}
	if res.Traps == 0 {
		t.Fatal("no trap found although m=4 ∉ M(2) — Theorem 5 says one must exist")
	}
	t.Logf("alg1 n=2 m=4: %d states, %d traps; witness: %s", res.States, res.Traps, res.TrapWitness)
}

func TestAlg2ExhaustiveLegal(t *testing.T) {
	for _, m := range []int{1, 3} {
		res, err := Explore(Config{N: 2, M: m, Factory: alg2Factory(m)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete || !res.OK() {
			t.Fatalf("m=%d: complete=%v me=%d traps=%d (%s%s)", m, res.Complete,
				res.MEViolations, res.Traps, res.MEWitness, res.TrapWitness)
		}
		t.Logf("alg2 n=2 m=%d: %d states, %d transitions", m, res.States, res.Transitions)
	}
}

func TestAlg2ExhaustiveIllegal(t *testing.T) {
	res, err := Explore(Config{N: 2, M: 2, Factory: alg2Factory(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("exploration incomplete at %d states", res.States)
	}
	if res.MEViolations != 0 {
		t.Fatalf("unexpected ME violation: %s", res.MEWitness)
	}
	if res.Traps == 0 {
		t.Fatal("no trap found although m=2 ∉ M(2)")
	}
	t.Logf("alg2 n=2 m=2: %d states, %d traps; witness: %s", res.States, res.Traps, res.TrapWitness)
}

func TestAlg2ThreeProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := Explore(Config{N: 3, M: 1, Factory: alg2Factory(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("n=3 m=1: me=%d traps=%d complete=%v", res.MEViolations, res.Traps, res.Complete)
	}
	t.Logf("alg2 n=3 m=1: %d states", res.States)
}

func TestExploreUnderAdversary(t *testing.T) {
	// The permutation assignment must not affect the verdicts (anonymity
	// invariance, experiment E10) — check a rotation and a random one.
	for _, adv := range []perm.Adversary{
		perm.RotationAdversary{Step: 1},
		perm.RandomAdversary{Seed: 42},
	} {
		res, err := Explore(Config{N: 2, M: 3, Factory: alg1Factory(3), Adversary: adv})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("adversary %T broke the verdict: me=%d traps=%d", adv, res.MEViolations, res.Traps)
		}
	}
}

func TestExploreMultiSession(t *testing.T) {
	res, err := Explore(Config{N: 2, M: 3, Factory: alg2Factory(3), Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("multi-session exploration failed: me=%d traps=%d complete=%v",
			res.MEViolations, res.Traps, res.Complete)
	}
}

func TestMaxStatesBound(t *testing.T) {
	res, err := Explore(Config{N: 2, M: 3, Factory: alg1Factory(3), MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("exploration claimed completeness under a 10-state bound")
	}
	if res.States > 10 {
		t.Fatalf("explored %d states beyond the bound", res.States)
	}
}

// TestGreedyStrawmanViolatesME uses a deliberately broken machine to prove
// the checker can actually detect ME violations (the checker's own test
// teeth). The strawman enters as soon as it ties for the most-present
// value.
func TestGreedyStrawmanViolatesME(t *testing.T) {
	res, err := Explore(Config{
		N: 2, M: 2,
		Factory: func(_ int, me id.ID) (core.Machine, error) {
			return strawman.New(me, 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MEViolations == 0 {
		t.Fatal("checker failed to find the strawman's ME violation")
	}
	t.Logf("strawman witness: %s", res.MEWitness)
}
