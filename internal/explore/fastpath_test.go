package explore

// Exhaustive verification of the uncontended fast path the production
// RMW lock enables (core.Alg2Config.SoloFastPath) — every reachable
// state of small legal configurations, under every interleaving, must
// still satisfy mutual exclusion and progress — plus the negative result
// that shapes the design: the RW-model analog (claim every register of an
// all-⊥ snapshot in one write sweep) is NOT safe, and the checker
// exhibits the two-in-CS witness. That is why only Algorithm 2 has a
// machine-level fast path: CAS detects a lost race at claim time, while
// Algorithm 1's plain writes, issued from a stale snapshot, can silently
// overwrite a process that already entered.

import (
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
)

func checkOK(t *testing.T, name string, cfg Config) {
	t.Helper()
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.Complete {
		t.Fatalf("%s: exploration incomplete at %d states", name, res.States)
	}
	if res.MEViolations != 0 {
		t.Fatalf("%s: mutual exclusion violated: %s", name, res.MEWitness)
	}
	if res.Traps != 0 {
		t.Fatalf("%s: progress trap: %s", name, res.TrapWitness)
	}
	if res.Entries == 0 || res.Terminals == 0 {
		t.Fatalf("%s: degenerate exploration: entries=%d terminals=%d", name, res.Entries, res.Terminals)
	}
	t.Logf("%s: %d states, %d transitions, %d entry edges", name, res.States, res.Transitions, res.Entries)
}

func TestAlg2SoloFastPathExhaustive(t *testing.T) {
	factory3 := func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg2(me, 2, 3, core.Alg2Config{SoloFastPath: true})
	}
	checkOK(t, "alg2 solo-fast-path n=2 m=3 identity",
		Config{N: 2, M: 3, Factory: factory3, Sessions: 2})
	checkOK(t, "alg2 solo-fast-path n=2 m=3 rotation",
		Config{N: 2, M: 3, Factory: factory3, Sessions: 2, Adversary: perm.RotationAdversary{Step: 1}})

	factory1 := func(_ int, me id.ID) (core.Machine, error) {
		return core.NewAlg2(me, 2, 1, core.Alg2Config{SoloFastPath: true})
	}
	checkOK(t, "alg2 solo-fast-path n=2 m=1 (degenerate single register)",
		Config{N: 2, M: 1, Factory: factory1, Sessions: 2})
}

// TestAlg2SoloFastPathMixedFleet explores a fleet where only one process
// uses the fast path — the situation during a rolling upgrade, and a
// stronger adversary than a homogeneous fleet.
func TestAlg2SoloFastPathMixedFleet(t *testing.T) {
	checkOK(t, "alg2 mixed solo-fast-path n=2 m=3", Config{
		N: 2, M: 3, Sessions: 2,
		Factory: func(i int, me id.ID) (core.Machine, error) {
			return core.NewAlg2(me, 2, 3, core.Alg2Config{SoloFastPath: i == 0})
		},
	})
}

// TestAlg1SoloClaimUnsafe pins the negative result: batch-claiming an
// all-⊥ view in the RW model breaks mutual exclusion, and the checker
// finds the witness (one process enters on a legitimate all-mine
// snapshot, the other's stale write sweep overwrites all of it and then
// snapshots all-mine too). If this test ever stops finding the violation,
// either the checker or the ablation changed meaning.
func TestAlg1SoloClaimUnsafe(t *testing.T) {
	for name, factory := range map[string]func(int, id.ID) (core.Machine, error){
		"homogeneous": func(_ int, me id.ID) (core.Machine, error) {
			return core.NewAlg1(me, 2, 3, core.Alg1Config{SoloClaimUnsafe: true})
		},
		"mixed": func(i int, me id.ID) (core.Machine, error) {
			return core.NewAlg1(me, 2, 3, core.Alg1Config{SoloClaimUnsafe: i == 0})
		},
	} {
		res, err := Explore(Config{N: 2, M: 3, Factory: factory, Sessions: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Complete {
			t.Fatalf("%s: exploration incomplete at %d states", name, res.States)
		}
		if res.MEViolations == 0 {
			t.Errorf("%s: expected the checker to exhibit the batch-claim mutual-exclusion violation, found none", name)
		} else {
			t.Logf("%s: violation witness (as expected): %s", name, res.MEWitness)
		}
	}
}
