// Package explore is an explicit-state model checker for the mutual
// exclusion protocols: it enumerates every reachable global state of a
// small configuration under every possible interleaving, then checks the
// paper's two properties exhaustively.
//
//   - Mutual exclusion (Theorems 1 and 3): no reachable state has two
//     processes in the critical section.
//   - Progress (the model-checkable core of deadlock-freedom, Theorems 2
//     and 4): from every reachable state in which some process still wants
//     the lock, *some* schedule leads to a critical-section entry. A
//     reachable "trap" region with pending work but no reachable entry is
//     exactly the wedge Theorem 5 proves must exist when m ∉ M(n) — and
//     the checker finds it.
//
// States are canonical byte encodings of (memory values, every machine's
// local state, remaining sessions). Snapshots are atomic steps, which the
// paper's linearizability assumption justifies; machines must be
// deterministic (no randomized policies). One shared-memory operation is
// one transition; scheduling is the only nondeterminism, so the successor
// fan-out of a state is at most n.
package explore

import (
	"fmt"
	"strings"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
	"anonmutex/internal/perm"
)

// Config describes the configuration to explore.
type Config struct {
	// N is the number of processes; M the number of anonymous registers.
	N, M int
	// Factory builds each process's machine. Machines must behave
	// deterministically (pure functions of observed values).
	Factory func(i int, me id.ID) (core.Machine, error)
	// Adversary assigns permutations (nil: identity). The adversary is
	// static, so one exploration covers one permutation assignment;
	// exploring several adversaries means several Explore calls.
	Adversary perm.Adversary
	// Sessions is how many lock/unlock cycles each process performs
	// (default 1). Keep small: the state space grows quickly.
	Sessions int
	// MaxStates bounds the exploration (default 1_000_000). If the bound
	// is hit, Result.Complete is false and property verdicts are only
	// valid for the explored region.
	MaxStates int
}

// Result reports an exploration.
type Result struct {
	// States is the number of distinct reachable states; Transitions the
	// number of explored edges.
	States      int
	Transitions int
	// Complete reports that the full reachable space was enumerated.
	Complete bool
	// MEViolations counts states with ≥ 2 processes in the CS.
	// MEWitness describes one such state.
	MEViolations int
	MEWitness    string
	// Traps counts reachable states with pending work from which no
	// lock() or unlock() completion is reachable; TrapWitness describes
	// one. This is exactly the negation of the paper's deadlock-freedom
	// (§II-E): a nonzero count means an adversarial scheduler can steer
	// the system into a region where, although processes keep taking
	// steps, no invocation ever finishes.
	Traps       int
	TrapWitness string
	// Entries counts transitions that enter the critical section.
	Entries int
	// Terminals counts states where all sessions are finished.
	Terminals int
}

// OK reports whether both properties hold on the explored (complete)
// space.
func (r *Result) OK() bool {
	return r.Complete && r.MEViolations == 0 && r.Traps == 0
}

// state is one reachable global state. Machines are immutable once stored
// (we clone before stepping), so successor states share the machines they
// did not step.
type state struct {
	mem      []id.ID
	machines []core.Machine
	sessions []int
}

func (s *state) encode(dst []byte) []byte {
	for _, v := range s.mem {
		h := id.Handle(v)
		dst = append(dst, byte(h>>8), byte(h))
	}
	for i, m := range s.machines {
		dst = m.AppendState(dst)
		dst = append(dst, byte(s.sessions[i]))
	}
	return dst
}

// enabled reports whether process i can take a step.
func (s *state) enabled(i int) bool {
	return s.machines[i].Status() != core.StatusIdle || s.sessions[i] > 0
}

func (s *state) anyEnabled() bool {
	for i := range s.machines {
		if s.enabled(i) {
			return true
		}
	}
	return false
}

// inCSCount counts processes inside the critical section.
func (s *state) inCSCount() int {
	c := 0
	for _, m := range s.machines {
		if m.Status() == core.StatusInCS {
			c++
		}
	}
	return c
}

// describe renders a state for witnesses.
func (s *state) describe() string {
	var b strings.Builder
	b.WriteString("memory=[")
	for x, v := range s.mem {
		if x > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	b.WriteString("]")
	for i, m := range s.machines {
		fmt.Fprintf(&b, " p%d{%v line %d owned %d sessions %d}",
			i, m.Status(), m.Line(), countOwned(s.mem, m), s.sessions[i])
	}
	return b.String()
}

func countOwned(mem []id.ID, m core.Machine) int {
	c := 0
	for _, v := range mem {
		if v.Equal(m.Me()) {
			c++
		}
	}
	return c
}

// Explore enumerates the reachable state space of cfg with BFS and checks
// the properties.
func Explore(cfg Config) (*Result, error) {
	if cfg.N < 1 || cfg.M < 1 {
		return nil, fmt.Errorf("explore: need N >= 1 and M >= 1, got N=%d M=%d", cfg.N, cfg.M)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("explore: Factory is required")
	}
	if cfg.Adversary == nil {
		cfg.Adversary = perm.IdentityAdversary{}
	}
	if cfg.Sessions == 0 {
		cfg.Sessions = 1
	}
	if cfg.Sessions < 0 {
		return nil, fmt.Errorf("explore: Sessions must be positive")
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 1_000_000
	}

	gen := id.NewGenerator()
	perms := make([]perm.Perm, cfg.N)
	root := &state{
		mem:      make([]id.ID, cfg.M),
		machines: make([]core.Machine, cfg.N),
		sessions: make([]int, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		me, err := gen.New()
		if err != nil {
			return nil, fmt.Errorf("explore: issuing identity: %w", err)
		}
		m, err := cfg.Factory(i, me)
		if err != nil {
			return nil, fmt.Errorf("explore: building machine %d: %w", i, err)
		}
		root.machines[i] = m
		root.sessions[i] = cfg.Sessions
		perms[i] = cfg.Adversary.Assign(i, cfg.M)
		if !perms[i].Valid() || len(perms[i]) != cfg.M {
			return nil, fmt.Errorf("explore: adversary assigned an invalid permutation to process %d", i)
		}
	}

	res := &Result{}
	states := []*state{root}
	index := map[string]int32{string(root.encode(nil)): 0}
	// succs[s] lists (successor index, completes) pairs, where completes
	// marks a transition that finishes a lock() (CS entry) or an unlock()
	// (return to the remainder section).
	type edge struct {
		to        int32
		completes bool
	}
	var succs [][]edge

	for head := 0; head < len(states); head++ {
		cur := states[head]
		if !cur.anyEnabled() {
			res.Terminals++
			succs = append(succs, nil)
			continue
		}
		var edges []edge
		for i := 0; i < cfg.N; i++ {
			if !cur.enabled(i) {
				continue
			}
			next, entered, unlocked, err := stepState(cur, i, perms[i])
			if err != nil {
				return nil, err
			}
			key := string(next.encode(nil))
			idx, seen := index[key]
			if !seen {
				if len(states) >= cfg.MaxStates {
					res.States = len(states)
					res.Transitions += len(edges)
					res.Complete = false
					return res, nil
				}
				idx = int32(len(states))
				states = append(states, next)
				index[key] = idx
				if next.inCSCount() > 1 {
					res.MEViolations++
					if res.MEWitness == "" {
						res.MEWitness = next.describe()
					}
				}
			}
			if entered {
				res.Entries++
			}
			edges = append(edges, edge{to: idx, completes: entered || unlocked})
			res.Transitions++
		}
		succs = append(succs, edges)
	}
	res.States = len(states)
	res.Complete = true

	// Progress analysis: which states can still reach the completion of
	// some lock() or unlock() invocation?
	canReach := make([]bool, len(states))
	// Reverse adjacency.
	radj := make([][]int32, len(states))
	var queue []int32
	for from, edges := range succs {
		for _, e := range edges {
			radj[e.to] = append(radj[e.to], int32(from))
			if e.completes && !canReach[from] {
				canReach[from] = true
				queue = append(queue, int32(from))
			}
		}
	}
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range radj[s] {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i, s := range states {
		if !s.anyEnabled() {
			continue // all work done: no progress obligation
		}
		if !canReach[i] {
			res.Traps++
			if res.TrapWitness == "" {
				res.TrapWitness = s.describe()
			}
		}
	}
	return res, nil
}

// stepState produces the successor of cur when process i takes one step,
// reporting whether the step completed a lock() (entered) or an unlock()
// (unlocked).
func stepState(cur *state, i int, p perm.Perm) (next *state, entered, unlocked bool, err error) {
	next = &state{
		mem:      append([]id.ID(nil), cur.mem...),
		machines: append([]core.Machine(nil), cur.machines...),
		sessions: append([]int(nil), cur.sessions...),
	}
	m := next.machines[i].Clone()
	next.machines[i] = m

	switch m.Status() {
	case core.StatusIdle:
		if err := m.StartLock(); err != nil {
			return nil, false, false, fmt.Errorf("explore: process %d: %w", i, err)
		}
	case core.StatusInCS:
		// CSTicks is 0 in exploration: the next scheduled step unlocks.
		if err := m.StartUnlock(); err != nil {
			return nil, false, false, fmt.Errorf("explore: process %d: %w", i, err)
		}
	}

	op := m.PendingOp()
	var res core.OpResult
	switch op.Kind {
	case core.OpRead:
		res.Val = next.mem[p[op.X]]
	case core.OpWrite:
		next.mem[p[op.X]] = op.Val
	case core.OpCAS:
		phys := p[op.X]
		if next.mem[phys].Equal(op.Old) {
			next.mem[phys] = op.New
			res.Swapped = true
		}
	case core.OpSnapshot:
		snap := make([]id.ID, len(next.mem))
		for x := range snap {
			snap[x] = next.mem[p[x]]
		}
		res.Snap = snap
	default:
		return nil, false, false, fmt.Errorf("explore: unknown op kind %v", op.Kind)
	}
	st := m.Advance(res)
	entered = st == core.StatusInCS
	if st == core.StatusIdle {
		next.sessions[i]--
		unlocked = true
	}
	return next, entered, unlocked, nil
}
