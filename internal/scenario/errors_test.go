package scenario

import (
	"strings"
	"testing"

	"anonmutex/internal/workload"
)

// TestNormalizeErrorsAreDescriptive pins the contract the harnesses rely
// on: a bad spec fails with an error that names the offending value and
// never panics. Each case lists fragments the message must contain.
func TestNormalizeErrorsAreDescriptive(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want []string
	}{
		{"unknown algorithm", Spec{Algorithm: "quantum", N: 2},
			[]string{"unknown algorithm", "quantum"}},
		{"missing algorithm", Spec{N: 2},
			[]string{"algorithm is required", "rw", "rmw", "greedy"}},
		{"unknown schedule", Spec{Algorithm: AlgRW, N: 2, M: 3, Schedule: "fifo"},
			[]string{"unknown schedule", "fifo"}},
		{"unknown perms", Spec{Algorithm: AlgRW, N: 2, M: 3, Perms: "transposition"},
			[]string{"unknown perms", "transposition"}},
		{"unknown workload", Spec{Algorithm: AlgRW, N: 2, M: 3, Workload: "spiky"},
			[]string{"unknown workload", "spiky"}},
		{"unknown traffic profile", Spec{Algorithm: AlgRW, N: 2, M: 3,
			Traffic: workload.Spec{Profile: "spiky"}},
			[]string{"traffic model", "spiky"}},
		{"unknown traffic key dist", Spec{Algorithm: AlgRW, N: 2, M: 3,
			Traffic: workload.Spec{Keys: workload.KeySpec{Dist: "pareto"}}},
			[]string{"traffic model", "pareto"}},
		{"workload vs traffic conflict", Spec{Algorithm: AlgRW, N: 2, M: 3,
			Workload: "uniform", Traffic: workload.Spec{Profile: "bursty"}},
			[]string{"conflicts", "bursty"}},
		{"seed conflict", Spec{Algorithm: AlgRW, N: 2, M: 3,
			WorkloadSeed: 3, Traffic: workload.Spec{Seed: 4}},
			[]string{"workload_seed", "conflicts"}},
		{"illegal rw size", Spec{Algorithm: AlgRW, N: 2, M: 4},
			[]string{"unchecked"}}, // must point at the escape hatch
		{"rw size below n", Spec{Algorithm: AlgRW, N: 4, M: 3},
			[]string{"unchecked"}},
		{"illegal rmw size", Spec{Algorithm: AlgRMW, N: 2, M: 4},
			[]string{"unchecked"}},
		{"no processes", Spec{Algorithm: AlgRW, N: 0},
			[]string{"n >= 1", "0"}},
		{"negative m", Spec{Algorithm: AlgRW, N: 2, M: -5},
			[]string{"m >= 1", "-5"}},
		{"greedy without m", Spec{Algorithm: AlgGreedy, N: 2},
			[]string{"greedy", "explicit m"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Normalize panicked: %v", r)
					}
				}()
				_, err = tc.spec.Normalize()
			}()
			if err == nil {
				t.Fatalf("Normalize(%+v) accepted an invalid spec", tc.spec)
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q does not mention %q", err, frag)
				}
			}
		})
	}
}

// TestIllegalSizesNeedUnchecked sweeps every illegal (n, m) pair in a
// small grid: with Unchecked unset, Normalize must reject each one
// descriptively, and with Unchecked set it must accept the same pair.
func TestIllegalSizesNeedUnchecked(t *testing.T) {
	for _, alg := range []string{AlgRW, AlgRMW} {
		for n := 2; n <= 4; n++ {
			for m := 1; m <= 8; m++ {
				spec := Spec{Algorithm: alg, N: n, M: m}
				_, err := spec.Normalize()
				legal := err == nil
				spec.Unchecked = true
				if _, uerr := spec.Normalize(); uerr != nil {
					t.Errorf("%s n=%d m=%d: unchecked spec rejected: %v", alg, n, m, uerr)
				}
				if legal {
					continue
				}
				if !strings.Contains(err.Error(), "scenario:") {
					t.Errorf("%s n=%d m=%d: error %q lacks the package prefix", alg, n, m, err)
				}
			}
		}
	}
}

// TestParseJSONErrors covers the decode-side error paths: syntax errors,
// unknown fields, and specs that parse but fail validation. Unknown
// workload names in JSON specs must fail loudly, never default to
// uniform.
func TestParseJSONErrors(t *testing.T) {
	cases := []struct {
		name, in string
		want     string
	}{
		{"syntax", `{"algorithm":`, "parsing spec"},
		{"unknown field", `{"algorithm":"rw","n":2,"registers":5}`, "registers"},
		{"invalid spec", `{"algorithm":"warp","n":2}`, "unknown algorithm"},
		{"wrong type", `{"algorithm":"rw","n":"two"}`, "parsing spec"},
		{"unknown workload name", `{"algorithm":"rw","n":2,"m":3,"workload":"pareto"}`, "unknown workload"},
		{"unknown traffic profile", `{"algorithm":"rw","n":2,"m":3,"traffic":{"profile":"pareto"}}`, "pareto"},
		{"unknown traffic field", `{"algorithm":"rw","n":2,"m":3,"traffic":{"dist":"zipf"}}`, "dist"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJSON([]byte(tc.in))
			if err == nil {
				t.Fatalf("ParseJSON(%q) succeeded", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
