package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"

	"anonmutex"
	"anonmutex/internal/workload"
)

// RealProcStats is one process's outcome on the real substrate.
type RealProcStats struct {
	Sessions     int
	OwnedAtEntry int
	LockSteps    int // shared-memory ops in the last completed lock()
}

// RealResult reports a scenario executed on the hardware-atomic substrate
// (goroutines over the root package's locks, driven by internal/engine).
type RealResult struct {
	// Entries is the total number of critical-section entries (always
	// N·Sessions on success: the real run blocks until every session
	// completes).
	Entries int
	// MEViolations counts observed mutual-exclusion violations — 0 for the
	// paper's algorithms.
	MEViolations int
	// PerProc are per-process statistics in issue order.
	PerProc []RealProcStats
}

// lockHandle abstracts the two root lock types for the real runner.
type lockHandle interface {
	Lock() error
	Unlock() error
	LockSteps() int
	OwnedAtEntry() int
}

// RunReal executes the scenario on the real substrate: one goroutine per
// process over an RWLock or RMWLock, with critical-section and remainder
// work drawn from the scenario's workload profile. The schedule is
// whatever the Go runtime does — only aggregate guarantees (mutual
// exclusion, completion) are deterministic.
//
// Scenarios that only make sense on the simulated substrate are rejected:
// the greedy strawman and unchecked sizes (the real locks validate
// m ∈ M(n), and an illegal size would livelock forever), and cycle
// detection. HonestSnapshots is accepted and trivially satisfied — the
// hardware substrate's double-scan snapshot is always honest. Schedule,
// Seed, CSTicks, MaxSteps, and TraceCap describe the simulated scheduler
// and are ignored here.
func RunReal(s Spec) (*RealResult, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	if s.Algorithm == AlgGreedy {
		return nil, fmt.Errorf("scenario: the greedy strawman has no real-substrate lock")
	}
	if s.Unchecked {
		return nil, fmt.Errorf("scenario: unchecked sizes cannot run on the real substrate (they may livelock)")
	}
	if s.DetectCycles {
		return nil, fmt.Errorf("scenario: cycle detection requires the simulated substrate")
	}
	if s.N < 2 {
		return nil, fmt.Errorf("scenario: the real locks need n >= 2, got %d", s.N)
	}

	opts := []anonmutex.Option{anonmutex.WithRegisters(s.M), anonmutex.WithSeed(s.PermSeed + 1)}
	switch s.Perms {
	case PermsIdentity:
		opts = append(opts, anonmutex.WithPermutations(anonmutex.PermIdentity, 0))
	case PermsRotation:
		opts = append(opts, anonmutex.WithPermutations(anonmutex.PermRotation, s.RotationStep))
	case PermsRandom:
		opts = append(opts, anonmutex.WithPermutations(anonmutex.PermRandom, 0))
	}
	if s.DeterministicClaims {
		opts = append(opts, anonmutex.WithDeterministicClaims())
	}

	handles := make([]lockHandle, s.N)
	switch s.Algorithm {
	case AlgRW:
		lock, err := anonmutex.NewRWLock(s.N, opts...)
		if err != nil {
			return nil, err
		}
		for i := range handles {
			if handles[i], err = lock.NewProcess(); err != nil {
				return nil, err
			}
		}
	case AlgRMW:
		lock, err := anonmutex.NewRMWLock(s.N, opts...)
		if err != nil {
			return nil, err
		}
		for i := range handles {
			if handles[i], err = lock.NewProcess(); err != nil {
				return nil, err
			}
		}
	}

	// Per-session CS and remainder work comes from the scenario's unified
	// traffic model: process i replays workload stream i, the same stream
	// a loadgen client or the simulated scheduler would consume.
	plan, err := workload.SpecPlan(s.Traffic, s.N, s.Sessions)
	if err != nil {
		return nil, err
	}

	res := &RealResult{PerProc: make([]RealProcStats, s.N)}
	var inCS, violations, entries atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, s.N)
	for i := 0; i < s.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := handles[i]
			for _, sess := range plan[i] {
				if err := h.Lock(); err != nil {
					errs[i] = err
					return
				}
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				entries.Add(1)
				workload.Spin(sess.CSWork)
				inCS.Add(-1)
				if err := h.Unlock(); err != nil {
					errs[i] = err
					return
				}
				res.PerProc[i].Sessions++
				workload.Spin(sess.RemainderWork)
			}
			res.PerProc[i].OwnedAtEntry = h.OwnedAtEntry()
			res.PerProc[i].LockSteps = h.LockSteps()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Entries = int(entries.Load())
	res.MEViolations = int(violations.Load())
	return res, nil
}
