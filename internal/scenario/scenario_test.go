package scenario

import (
	"strings"
	"testing"

	"anonmutex/internal/workload"
)

func TestNormalizeDefaults(t *testing.T) {
	s, err := Spec{Algorithm: AlgRW, N: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.M != 5 {
		t.Errorf("derived m = %d, want 5 (smallest legal RW size for n=3)", s.M)
	}
	if s.Sessions != 1 || s.Schedule != SchedRoundRobin || s.Perms != PermsIdentity ||
		s.Workload != WorkloadUniform || s.MaxSteps != 1_000_000 {
		t.Errorf("defaults not filled: %+v", s)
	}

	s2, err := Spec{Algorithm: AlgRMW, N: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s2.M != 5 {
		t.Errorf("derived RMW m = %d, want 5", s2.M)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{},                             // no algorithm
		{Algorithm: "quantum", N: 2},   // unknown algorithm
		{Algorithm: AlgRW, N: 0},       // no processes
		{Algorithm: AlgRW, N: 2, M: 4}, // illegal size (4 ∉ M(2))
		{Algorithm: AlgGreedy, N: 2},   // greedy needs explicit m
		{Algorithm: AlgRW, N: 2, M: 3, Schedule: "fifo"},
		{Algorithm: AlgRW, N: 2, M: 3, Perms: "transposition"},
		{Algorithm: AlgRW, N: 2, M: 3, Workload: "spiky"},
		{Algorithm: AlgRW, N: 2, M: 3, Sessions: -1},
		{Algorithm: AlgRW, N: 2, M: 3, CSTicks: -1},
		{Algorithm: AlgRW, N: 2, M: 3, MaxSteps: -1},
	}
	for i, c := range cases {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("case %d (%+v): invalid spec accepted", i, c)
		}
	}
	// The same illegal size passes with Unchecked.
	if _, err := (Spec{Algorithm: AlgRW, N: 2, M: 4, Unchecked: true}).Normalize(); err != nil {
		t.Errorf("unchecked illegal size rejected: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig, err := Lookup("lockstep-livelock")
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Errorf("round trip changed the spec:\n  orig: %+v\n  back: %+v", orig, back)
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	_, err := ParseJSON([]byte(`{"algorithm":"rw","n":2,"m":3,"scheduler":"rr"}`))
	if err == nil || !strings.Contains(err.Error(), "scheduler") {
		t.Fatalf("unknown field accepted (err %v)", err)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d built-in scenarios: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Errorf("scenario %q carries name %q", name, s.Name)
		}
		if s.Doc == "" {
			t.Errorf("scenario %q has no doc line", name)
		}
		norm, err := s.Normalize()
		if err != nil {
			t.Errorf("registered scenario %q does not normalize: %v", name, err)
		}
		if norm != s {
			t.Errorf("registered scenario %q is not stored normalized", name)
		}
	}

	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("unknown name looked up successfully")
	}
	if err := Register(Spec{Algorithm: AlgRW, N: 2, M: 3}); err == nil {
		t.Error("nameless registration accepted")
	}
	if err := Register(Spec{Name: "smoke-rw", Algorithm: AlgRW, N: 2, M: 3}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(Spec{Name: "broken", Algorithm: "nope", N: 2}); err == nil {
		t.Error("invalid registration accepted")
	}
}

func TestRunRealSmoke(t *testing.T) {
	for _, name := range []string{"smoke-rw", "smoke-rmw"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunReal(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := spec.N * spec.Sessions
		if res.Entries != want {
			t.Errorf("%s: %d entries, want %d", name, res.Entries, want)
		}
		if res.MEViolations != 0 {
			t.Errorf("%s: %d ME violations", name, res.MEViolations)
		}
		for i, ps := range res.PerProc {
			if ps.Sessions != spec.Sessions {
				t.Errorf("%s proc %d: %d sessions, want %d", name, i, ps.Sessions, spec.Sessions)
			}
		}
	}
}

func TestRunRealRejectsSimOnly(t *testing.T) {
	cases := []Spec{
		{Algorithm: AlgGreedy, N: 2, M: 3},
		{Algorithm: AlgRMW, N: 2, M: 2, Unchecked: true},
		{Algorithm: AlgRW, N: 2, M: 3, DetectCycles: true},
	}
	for i, c := range cases {
		if _, err := RunReal(c); err == nil {
			t.Errorf("case %d: sim-only spec accepted on the real substrate", i)
		}
	}
}

func TestRunRealWorkloadProfiles(t *testing.T) {
	for _, w := range []string{WorkloadUniform, WorkloadBursty, WorkloadSkewed} {
		spec := Spec{
			Algorithm: AlgRMW, N: 3, Sessions: 2,
			Workload: w, WorkloadSeed: 7,
		}
		res, err := RunReal(spec)
		if err != nil {
			t.Fatalf("workload %s: %v", w, err)
		}
		if res.Entries != 6 || res.MEViolations != 0 {
			t.Errorf("workload %s: entries=%d violations=%d", w, res.Entries, res.MEViolations)
		}
	}
}

// TestNormalizeMaterializesTraffic: the Workload/WorkloadSeed shorthands
// and the embedded traffic model must end up in sync, with the
// historical real-substrate scales as defaults.
func TestNormalizeMaterializesTraffic(t *testing.T) {
	s, err := Spec{Algorithm: AlgRMW, N: 3, Workload: WorkloadBursty, WorkloadSeed: 9}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Traffic.Profile != WorkloadBursty || s.Traffic.Seed != 9 {
		t.Errorf("traffic not materialized from shorthands: %+v", s.Traffic)
	}
	if s.Traffic.BaseCS != 5 || s.Traffic.BaseRemainder != 10 {
		t.Errorf("historical base scales not applied: %+v", s.Traffic)
	}
	// And the reverse direction: an explicit traffic spec fills the
	// shorthand fields.
	s, err = Spec{Algorithm: AlgRMW, N: 3, Traffic: workload.Spec{Profile: WorkloadSkewed, Seed: 4}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload != WorkloadSkewed || s.WorkloadSeed != 4 {
		t.Errorf("shorthands not synced from traffic: workload=%q seed=%d", s.Workload, s.WorkloadSeed)
	}
}

// TestRunRealUsesUnifiedPlan: the real runner's per-process sessions
// must come from workload.SpecPlan on the scenario's traffic model —
// process i replays workload stream i.
func TestRunRealUsesUnifiedPlan(t *testing.T) {
	spec, err := (Spec{
		Algorithm: AlgRMW, N: 2, M: 3, Sessions: 3,
		Traffic: workload.Spec{Profile: WorkloadBursty, Seed: 21},
	}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := workload.SpecPlan(spec.Traffic, spec.N, spec.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || len(plan[0]) != 3 {
		t.Fatalf("unexpected plan shape %dx%d", len(plan), len(plan[0]))
	}
	res, err := RunReal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 6 || res.MEViolations != 0 {
		t.Errorf("entries=%d violations=%d", res.Entries, res.MEViolations)
	}
}
