// Package scenario defines the declarative experiment description shared
// by every harness in the repository: one Spec names an algorithm, a
// system size, an anonymity adversary, a scheduling policy, a workload
// profile, sessions, and seeds — everything needed to run the execution
// on either substrate (the simulated scheduler or the real hardware-atomic
// locks) from a single description.
//
// Specs are plain data with a canonical JSON encoding, so scenarios can be
// stored in files, passed between tools, and diffed across runs. A named
// registry ships the built-in scenarios; cmd/anonsim runs any spec from a
// name or a JSON file, the sim package exposes RunScenario for the public
// API, and the experiment suite (internal/experiments, via cmd/anonbench)
// sweeps the whole registry.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"anonmutex/internal/mset"
	"anonmutex/internal/workload"
)

// Algorithm, schedule, permutation, and workload names used in specs. The
// string forms are the canonical JSON vocabulary.
const (
	AlgRW     = "rw"     // the paper's Algorithm 1 (read/write registers)
	AlgRMW    = "rmw"    // the paper's Algorithm 2 (read/modify/write)
	AlgGreedy = "greedy" // the deliberately broken strawman

	SchedRoundRobin = "rr"       // fair cyclic schedule
	SchedRandom     = "random"   // seeded uniform schedule
	SchedLockStep   = "lockstep" // the Theorem 5 adversary

	PermsIdentity = "identity" // non-anonymous memory
	PermsRandom   = "random"   // seeded uniform permutations
	PermsRotation = "rotation" // the Theorem 5 ring adversary
)

// Workload profile names, re-exported from the unified traffic model
// (internal/workload) for spec files and older call sites.
const (
	WorkloadUniform = "uniform"
	WorkloadBursty  = "bursty"
	WorkloadSkewed  = "skewed"
)

// Spec is one declarative scenario. The zero value of every optional
// field means "default"; Normalize fills defaults and validates. Field
// names form the JSON schema used by scenario files.
type Spec struct {
	// Name identifies the scenario in the registry and in reports.
	Name string `json:"name,omitempty"`
	// Doc is a one-line description for listings.
	Doc string `json:"doc,omitempty"`

	// Algorithm is rw, rmw, or greedy.
	Algorithm string `json:"algorithm"`
	// N is the number of processes; M the number of anonymous registers
	// (0: the smallest legal size for the algorithm).
	N int `json:"n"`
	M int `json:"m,omitempty"`
	// Unchecked skips the m ∈ M(n) validation — required for the
	// lower-bound scenarios that deliberately use illegal sizes.
	Unchecked bool `json:"unchecked,omitempty"`

	// Sessions is the lock/unlock cycles per process (default 1); CSTicks
	// the scheduler ticks spent inside the critical section (simulated
	// substrate only).
	Sessions int `json:"sessions,omitempty"`
	CSTicks  int `json:"cs_ticks,omitempty"`

	// Schedule is rr, random, or lockstep (simulated substrate only; the
	// real substrate's schedule is the Go runtime's). Seed drives the
	// random schedule.
	Schedule string `json:"schedule,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`

	// Perms is identity, random, or rotation; PermSeed and RotationStep
	// parameterize the latter two.
	Perms        string `json:"perms,omitempty"`
	PermSeed     uint64 `json:"perm_seed,omitempty"`
	RotationStep int    `json:"rotation_step,omitempty"`

	// Workload names the session profile (uniform, bursty, skewed) of
	// the scenario's traffic model and WorkloadSeed its jitter seed —
	// shorthands that Normalize folds into Traffic. Both substrates
	// consume the result: the real runner draws per-session
	// critical-section and remainder spin work from it, and the
	// simulated scheduler scales its per-session CS ticks by it when
	// CSTicks > 0.
	Workload     string `json:"workload,omitempty"`
	WorkloadSeed uint64 `json:"workload_seed,omitempty"`
	// Traffic is the scenario's full traffic model (the unified
	// internal/workload spec). Normalize materializes it from the
	// shorthands above when unset; a spec may also state it directly
	// for profiles and bases the shorthands cannot express. Workload
	// and Traffic.Profile must agree when both are given.
	Traffic workload.Spec `json:"traffic"`

	// DeterministicClaims resolves Algorithm 1's "any ⊥ register" choice
	// to the first hole instead of a seeded random one, making runs fully
	// deterministic (the cross-substrate equivalence configuration).
	DeterministicClaims bool `json:"deterministic_claims,omitempty"`

	// HonestSnapshots schedules each double-scan read separately;
	// DetectCycles stops with a livelock verdict on a repeated global
	// state (both simulated substrate only).
	HonestSnapshots bool `json:"honest_snapshots,omitempty"`
	DetectCycles    bool `json:"detect_cycles,omitempty"`

	// MaxSteps bounds simulated runs (default 1_000_000); TraceCap
	// retains that many trace events (0: none).
	MaxSteps int `json:"max_steps,omitempty"`
	TraceCap int `json:"trace_cap,omitempty"`
}

// Normalize fills defaults and validates the spec, returning the
// completed copy. The receiver is not modified.
func (s Spec) Normalize() (Spec, error) {
	switch s.Algorithm {
	case AlgRW, AlgRMW, AlgGreedy:
	case "":
		return s, fmt.Errorf("scenario: algorithm is required (rw, rmw, or greedy)")
	default:
		return s, fmt.Errorf("scenario: unknown algorithm %q", s.Algorithm)
	}
	if s.N < 1 {
		return s, fmt.Errorf("scenario: need n >= 1, got %d", s.N)
	}
	if s.M == 0 {
		switch s.Algorithm {
		case AlgRW:
			s.M = mset.MinRW(s.N)
		case AlgRMW:
			s.M = mset.MinRMWAbove(s.N)
		default:
			return s, fmt.Errorf("scenario: %s needs an explicit m", s.Algorithm)
		}
	}
	if s.M < 1 {
		return s, fmt.Errorf("scenario: need m >= 1, got %d", s.M)
	}
	if !s.Unchecked && s.Algorithm != AlgGreedy {
		var err error
		if s.Algorithm == AlgRW {
			err = mset.ValidateRW(s.N, s.M)
		} else {
			err = mset.ValidateRMW(s.N, s.M)
		}
		if err != nil {
			return s, fmt.Errorf("scenario: %w (set unchecked to run anyway)", err)
		}
	}
	if s.Sessions == 0 {
		s.Sessions = 1
	}
	if s.Sessions < 0 {
		return s, fmt.Errorf("scenario: need sessions >= 1, got %d", s.Sessions)
	}
	if s.CSTicks < 0 {
		return s, fmt.Errorf("scenario: need cs_ticks >= 0, got %d", s.CSTicks)
	}
	if s.Schedule == "" {
		s.Schedule = SchedRoundRobin
	}
	switch s.Schedule {
	case SchedRoundRobin, SchedRandom, SchedLockStep:
	default:
		return s, fmt.Errorf("scenario: unknown schedule %q", s.Schedule)
	}
	if s.Perms == "" {
		s.Perms = PermsIdentity
	}
	switch s.Perms {
	case PermsIdentity, PermsRandom, PermsRotation:
	default:
		return s, fmt.Errorf("scenario: unknown perms %q", s.Perms)
	}
	// Fold the Workload/WorkloadSeed shorthands into the unified traffic
	// model, then let it validate itself (unknown profile names fail
	// loudly there instead of defaulting to uniform).
	if s.Workload != "" {
		if _, err := workload.ParseProfile(s.Workload); err != nil {
			return s, fmt.Errorf("scenario: unknown workload %q (want %s, %s, or %s)",
				s.Workload, WorkloadUniform, WorkloadBursty, WorkloadSkewed)
		}
	}
	if s.Workload != "" && s.Traffic.Profile != "" && s.Workload != s.Traffic.Profile {
		return s, fmt.Errorf("scenario: workload %q conflicts with traffic.profile %q",
			s.Workload, s.Traffic.Profile)
	}
	if s.Traffic.Profile == "" {
		s.Traffic.Profile = s.Workload // "" defaults to uniform below
	}
	if s.WorkloadSeed != 0 && s.Traffic.Seed != 0 && s.WorkloadSeed != s.Traffic.Seed {
		return s, fmt.Errorf("scenario: workload_seed %d conflicts with traffic.seed %d",
			s.WorkloadSeed, s.Traffic.Seed)
	}
	if s.Traffic.Seed == 0 {
		s.Traffic.Seed = s.WorkloadSeed
	}
	// The historical real-substrate scales.
	if s.Traffic.BaseCS == 0 {
		s.Traffic.BaseCS = 5
	}
	if s.Traffic.BaseRemainder == 0 {
		s.Traffic.BaseRemainder = 10
	}
	traffic, err := s.Traffic.Normalize()
	if err != nil {
		return s, fmt.Errorf("scenario: traffic model: %w", err)
	}
	s.Traffic = traffic
	s.Workload = traffic.Profile
	s.WorkloadSeed = traffic.Seed
	if s.MaxSteps == 0 {
		s.MaxSteps = 1_000_000
	}
	if s.MaxSteps < 0 || s.TraceCap < 0 {
		return s, fmt.Errorf("scenario: negative bounds")
	}
	return s, nil
}

// JSON returns the spec's canonical (indented) JSON encoding.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseJSON decodes and normalizes a spec from JSON. Unknown fields are
// rejected, so typos in scenario files fail loudly.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s.Normalize()
}

// registry is the process-wide named-scenario table.
var registry = struct {
	sync.RWMutex
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// Register validates s and adds it to the registry under its Name. It
// rejects anonymous and duplicate registrations.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("scenario: cannot register a nameless spec")
	}
	norm, err := s.Normalize()
	if err != nil {
		return fmt.Errorf("scenario: registering %q: %w", s.Name, err)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[s.Name]; dup {
		return fmt.Errorf("scenario: %q is already registered", s.Name)
	}
	registry.specs[s.Name] = norm
	return nil
}

// Lookup returns the registered scenario with the given name.
func Lookup(name string) (Spec, error) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q", name)
	}
	return s, nil
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.specs))
	for name := range registry.specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// mustRegister is the init-time registration helper for built-ins.
func mustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// The built-in scenario library: the configurations the repository's
// documentation and experiments refer to by name.
func init() {
	mustRegister(Spec{
		Name: "smoke-rw", Doc: "smallest legal Algorithm 1 instance, fair schedule",
		Algorithm: AlgRW, N: 2, M: 3, Sessions: 2,
	})
	mustRegister(Spec{
		Name: "smoke-rmw", Doc: "degenerate single-register Algorithm 2 instance",
		Algorithm: AlgRMW, N: 2, M: 1, Sessions: 2,
	})
	mustRegister(Spec{
		Name: "contended-rw", Doc: "4 processes hammering Algorithm 1 under a random schedule and random anonymity",
		Algorithm: AlgRW, N: 4, Sessions: 3,
		Schedule: SchedRandom, Seed: 97,
		Perms: PermsRandom, PermSeed: 11,
		MaxSteps: 20_000_000,
	})
	mustRegister(Spec{
		Name: "contended-rmw", Doc: "4 processes hammering Algorithm 2 under a random schedule and random anonymity",
		Algorithm: AlgRMW, N: 4, Sessions: 3,
		Schedule: SchedRandom, Seed: 97,
		Perms: PermsRandom, PermSeed: 11,
		MaxSteps: 20_000_000,
	})
	mustRegister(Spec{
		Name: "rotation-adversary", Doc: "Algorithm 1 against the Theorem 5 ring adversary on a legal size",
		Algorithm: AlgRW, N: 3, M: 5, Sessions: 3,
		Perms: PermsRotation, RotationStep: 1,
	})
	mustRegister(Spec{
		Name: "lockstep-livelock", Doc: "the Theorem 5 wedge: illegal size, lock-step schedule, rotation anonymity",
		Algorithm: AlgRMW, N: 2, M: 2, Unchecked: true,
		Schedule: SchedLockStep,
		Perms:    PermsRotation, RotationStep: 1,
		DetectCycles: true,
	})
	mustRegister(Spec{
		Name: "honest-snapshots", Doc: "Algorithm 1 with every double-scan read scheduled separately",
		Algorithm: AlgRW, N: 3, M: 5, Sessions: 2,
		Schedule: SchedRandom, Seed: 5,
		HonestSnapshots: true,
		MaxSteps:        20_000_000,
	})
	mustRegister(Spec{
		Name: "bursty-rmw", Doc: "Algorithm 2 under a bursty traffic model (jittered per-session CS ticks on both substrates)",
		Algorithm: AlgRMW, N: 4, Sessions: 4,
		Schedule: SchedRandom, Seed: 19,
		Traffic:  workload.Spec{Profile: WorkloadBursty, Seed: 3},
		CSTicks:  2,
		MaxSteps: 20_000_000,
	})
	mustRegister(Spec{
		Name: "heavy-hitter-rw", Doc: "Algorithm 1 with one hammering process (skewed traffic model, shorthand form)",
		Algorithm: AlgRW, N: 3, M: 5, Sessions: 3,
		Schedule: SchedRandom, Seed: 29,
		Workload: WorkloadSkewed, WorkloadSeed: 7,
		CSTicks:  1,
		MaxSteps: 20_000_000,
	})
	mustRegister(Spec{
		Name: "equivalence", Doc: "the cross-substrate determinism configuration: identity perms, deterministic claims",
		Algorithm: AlgRW, N: 3, M: 5, Sessions: 2,
		Perms:               PermsIdentity,
		DeterministicClaims: true,
	})
}
