package amem

import (
	"sync"
	"testing"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/xrand"
)

func newTestView(t *testing.T, mem *Memory, me id.ID, p perm.Perm) *View {
	t.Helper()
	v, err := mem.NewView(me, p)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, m := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", m)
				}
			}()
			New(m)
		}()
	}
}

func TestInitialMemoryAllBottom(t *testing.T) {
	mem := New(7)
	if mem.Size() != 7 {
		t.Fatalf("Size = %d", mem.Size())
	}
	for x, val := range mem.ObserveValues() {
		if !val.IsNone() {
			t.Errorf("register %d initially %v, want ⊥", x, val)
		}
	}
}

func TestViewValidation(t *testing.T) {
	mem := New(3)
	g := id.NewGenerator()
	me := g.MustNew()
	if _, err := mem.NewView(id.None, perm.Identity(3)); err == nil {
		t.Error("view with ⊥ identity accepted")
	}
	if _, err := mem.NewView(me, perm.Identity(4)); err == nil {
		t.Error("view with wrong-size permutation accepted")
	}
	if _, err := mem.NewView(me, perm.Perm{0, 0, 1}); err == nil {
		t.Error("view with invalid permutation accepted")
	}
	if _, err := mem.NewView(me, perm.Identity(3)); err != nil {
		t.Errorf("valid view rejected: %v", err)
	}
}

func TestReadWriteThroughPermutation(t *testing.T) {
	// Two processes with the paper's Table I permutations (local→physical
	// direction, i.e. the inverses of the printed rows).
	mem := New(3)
	g := id.NewGenerator()
	p, q := g.MustNew(), g.MustNew()
	fpPrinted, _ := perm.FromOneBased([]int{2, 3, 1})
	fqPrinted, _ := perm.FromOneBased([]int{3, 1, 2})
	vp := newTestView(t, mem, p, fpPrinted.Inverse())
	vq := newTestView(t, mem, q, fqPrinted.Inverse())

	// p writes its id into its local R[2] (0-based x=1): physical R[1].
	vp.Write(1, p)
	if got := mem.Observe(0).Val; !got.Equal(p) {
		t.Fatalf("physical R[1] = %v, want %v", got, p)
	}
	// q reads the same cell under its local name R[3] (0-based x=2).
	if got := vq.Read(2); !got.Equal(p) {
		t.Fatalf("q's R[3] = %v, want %v", got, p)
	}
	// q's other local names see ⊥.
	if !vq.Read(0).IsNone() || !vq.Read(1).IsNone() {
		t.Error("q observes writes in wrong cells")
	}
}

func TestWriteStamps(t *testing.T) {
	mem := New(2)
	g := id.NewGenerator()
	me := g.MustNew()
	v := newTestView(t, mem, me, perm.Identity(2))
	v.Write(0, me)
	s := mem.Observe(0)
	if !s.Writer.Equal(me) || s.Seq != 1 {
		t.Fatalf("first write stamp = (%v, %d), want (%v, 1)", s.Writer, s.Seq, me)
	}
	v.Write(0, id.None) // shrink-style ⊥ write is stamped too
	s = mem.Observe(0)
	if !s.Val.IsNone() || !s.Writer.Equal(me) || s.Seq != 2 {
		t.Fatalf("⊥ write stamp = %+v, want (⊥, %v, 2)", s, me)
	}
}

func TestCASThroughPermutation(t *testing.T) {
	mem := New(5)
	g := id.NewGenerator()
	p, q := g.MustNew(), g.MustNew()
	rot := perm.Rotation(5, 2)
	vp := newTestView(t, mem, p, rot)
	vq := newTestView(t, mem, q, perm.Identity(5))

	if !vp.CompareAndSwap(0, id.None, p) {
		t.Fatal("CAS on fresh register failed")
	}
	// p's local 0 is physical 2.
	if got := mem.Observe(2).Val; !got.Equal(p) {
		t.Fatalf("physical R[3] = %v, want %v", got, p)
	}
	// q sees it at its local 2 and cannot claim it.
	if vq.CompareAndSwap(2, id.None, q) {
		t.Fatal("q's CAS succeeded on p's register")
	}
	if !vq.CompareAndSwap(2, p, id.None) {
		t.Fatal("q's CAS p→⊥ failed")
	}
}

func TestSnapshotQuiescent(t *testing.T) {
	mem := New(5)
	g := id.NewGenerator()
	me := g.MustNew()
	v := newTestView(t, mem, me, perm.Rotation(5, 3))
	v.Write(0, me)
	v.Write(3, me)
	snap := v.Snapshot(nil)
	if len(snap) != 5 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for x, val := range snap {
		wantMine := x == 0 || x == 3
		if wantMine != val.Equal(me) {
			t.Errorf("snap[%d] = %v, wantMine=%v", x, val, wantMine)
		}
	}
	calls, collects := v.SnapshotStats()
	if calls != 1 || collects < 2 {
		t.Errorf("stats calls=%d collects=%d, want 1 and >=2", calls, collects)
	}
}

func TestSnapshotReusesBuffer(t *testing.T) {
	mem := New(4)
	g := id.NewGenerator()
	v := newTestView(t, mem, g.MustNew(), perm.Identity(4))
	buf := make([]id.ID, 4)
	out := v.Snapshot(buf)
	if &out[0] != &buf[0] {
		t.Error("snapshot did not reuse provided buffer")
	}
	out2 := v.Snapshot(nil)
	if len(out2) != 4 {
		t.Errorf("snapshot with nil dst returned length %d", len(out2))
	}
}

func TestSnapshotSeesOwnPriorWrites(t *testing.T) {
	// A process's snapshot must reflect all its own earlier writes
	// regardless of its permutation.
	r := xrand.New(31)
	for trial := 0; trial < 50; trial++ {
		mem := New(7)
		g := id.NewGenerator()
		me := g.MustNew()
		v := newTestView(t, mem, me, perm.Random(7, r))
		wrote := map[int]bool{}
		for i := 0; i < 4; i++ {
			x := r.Intn(7)
			v.Write(x, me)
			wrote[x] = true
		}
		snap := v.Snapshot(nil)
		for x := range wrote {
			if !snap[x].Equal(me) {
				t.Fatalf("trial %d: snap[%d] = %v, want own id", trial, x, snap[x])
			}
		}
	}
}

// TestSnapshotAtomicity is the key concurrent test. Each writer w owns the
// register pair (A, B) = (2w, 2w+1) and maintains the invariant
// "B = me ⟹ A = me" at every real-time instant by setting A before B and
// clearing B before A. A linearizable snapshot corresponds to some instant,
// so it must satisfy the invariant for every pair. A naive one-pass collect
// that reads A before B can observe the stale A=⊥ together with the fresh
// B=me; the double scan cannot.
func TestSnapshotAtomicity(t *testing.T) {
	const m = 6 // 3 pairs
	mem := New(m)
	g := id.NewGenerator()

	const writers = m / 2
	writerIDs := make([]id.ID, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		me := g.MustNew()
		writerIDs[w] = me
		v, err := mem.NewView(me, perm.Identity(m))
		if err != nil {
			t.Fatal(err)
		}
		pair := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v.Write(2*pair, v.Me())    // set A first…
				v.Write(2*pair+1, v.Me())  // …then B
				v.Write(2*pair+1, id.None) // clear B first…
				v.Write(2*pair, id.None)   // …then A
			}
		}()
	}

	// Reader scans in identity order, i.e. A before B — the tearing-prone
	// direction for a naive collect.
	reader := newTestView(t, mem, g.MustNew(), perm.Identity(m))
	violations := 0
	for i := 0; i < 2_000; i++ {
		snap := reader.Snapshot(nil)
		for w := 0; w < writers; w++ {
			if snap[2*w+1].Equal(writerIDs[w]) && !snap[2*w].Equal(writerIDs[w]) {
				violations++
			}
		}
	}
	close(stop)
	wg.Wait()
	if violations > 0 {
		t.Fatalf("%d snapshots violated the writer invariant B=me ⟹ A=me — double scan is not linearizable", violations)
	}
	calls, collects := reader.SnapshotStats()
	t.Logf("snapshot calls=%d collects=%d (%.2f collects/call)", calls, collects, float64(collects)/float64(calls))
}

func TestSnapshotProgressGuarantee(t *testing.T) {
	// Progress condition (1): with no writers, a snapshot terminates after
	// exactly two collects.
	mem := New(9)
	g := id.NewGenerator()
	v := newTestView(t, mem, g.MustNew(), perm.Identity(9))
	for i := 0; i < 10; i++ {
		v.Snapshot(nil)
	}
	calls, collects := v.SnapshotStats()
	if collects != 2*calls {
		t.Fatalf("quiescent snapshots used %d collects for %d calls, want exactly 2 per call", collects, calls)
	}
}

func TestConcurrentViewsDistinctStamps(t *testing.T) {
	// Writes by different processes must carry their own stamps even under
	// interleaving (each view's sequence is private).
	mem := New(1)
	g := id.NewGenerator()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		me := g.MustNew()
		v, err := mem.NewView(me, perm.Identity(1))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.Write(0, v.Me())
			}
		}()
	}
	wg.Wait()
	s := mem.Observe(0)
	if s.Seq != 1000 {
		t.Fatalf("final seq = %d, want 1000 (each writer stamps privately)", s.Seq)
	}
	if !s.Val.Equal(s.Writer) {
		t.Fatalf("final cell inconsistent: %+v", s)
	}
}

func BenchmarkRead(b *testing.B) {
	mem := New(11)
	g := id.NewGenerator()
	v, _ := mem.NewView(g.MustNew(), perm.Identity(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Read(i % 11)
	}
}

func BenchmarkWrite(b *testing.B) {
	mem := New(11)
	g := id.NewGenerator()
	v, _ := mem.NewView(g.MustNew(), perm.Identity(11))
	me := v.Me()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Write(i%11, me)
	}
}

func BenchmarkSnapshotQuiescent(b *testing.B) {
	for _, m := range []int{3, 7, 11, 31} {
		b.Run(sizeName(m), func(b *testing.B) {
			mem := New(m)
			g := id.NewGenerator()
			v, _ := mem.NewView(g.MustNew(), perm.Identity(m))
			buf := make([]id.ID, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Snapshot(buf)
			}
		})
	}
}

func BenchmarkSnapshotContended(b *testing.B) {
	for _, writers := range []int{1, 2, 4} {
		b.Run("writers="+sizeName(writers), func(b *testing.B) {
			const m = 11
			mem := New(m)
			g := id.NewGenerator()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				v, _ := mem.NewView(g.MustNew(), perm.Identity(m))
				wg.Add(1)
				go func() {
					defer wg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
							v.Write(i%m, v.Me())
							i++
						}
					}
				}()
			}
			reader, _ := mem.NewView(g.MustNew(), perm.Identity(m))
			buf := make([]id.ID, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reader.Snapshot(buf)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			calls, collects := reader.SnapshotStats()
			b.ReportMetric(float64(collects)/float64(calls), "collects/snapshot")
		})
	}
}

func sizeName(m int) string {
	const digits = "0123456789"
	if m == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for m > 0 {
		i--
		buf[i] = digits[m%10]
		m /= 10
	}
	return string(buf[i:])
}
