// Package amem implements the real (hardware-atomic) anonymous shared
// memory of the paper's model (§II-A, §II-B).
//
// A Memory is the external observer's array R[1..m] of atomic registers.
// Processes never touch a Memory directly: each process holds a View,
// which routes every access through the permutation the anonymity
// adversary assigned to that process. A View also owns the process's write
// stamping state (the per-process sequence number sni of §II-B) and
// implements the linearizable snapshot() operation with the double-scan
// construction of Afek et al., satisfying the paper's progress guarantee
// (1): a snapshot terminates in a finite number of the caller's steps
// provided no process writes during its execution.
//
// Views are single-process objects: each View may be used by only one
// goroutine at a time (matching the model, where fi and sni belong to
// process pi). The Memory itself is safe for any number of concurrent
// Views.
package amem

import (
	"fmt"

	"anonmutex/internal/id"
	"anonmutex/internal/perm"
	"anonmutex/internal/register"
)

// paddedRegister is one atomic register alone on its cache line. The
// protocols hammer neighboring registers from different cores (the line 2
// CAS sweep, the double-scan collects), and an unpadded []register.Atomic
// packs 8 registers per 64-byte line — every CAS would invalidate its
// neighbors' lines in every other core. m is tiny (the paper's optimal
// sizes), so the 8x memory cost is a handful of cache lines per lock.
type paddedRegister struct {
	register.Atomic
	_ [64 - 8]byte
}

// Memory is an anonymous shared memory of m atomic registers, all
// initialized to ⊥ (the zero value of a register). It is the "external
// omniscient observer" array; tests and monitors may inspect it with
// Observe*, but protocol code must go through a View.
type Memory struct {
	regs []paddedRegister
}

// New creates a memory of m registers, every one holding ⊥. It panics if
// m < 1 (a memory must exist to communicate through; the paper's model has
// m ≥ 1).
func New(m int) *Memory {
	if m < 1 {
		panic(fmt.Sprintf("amem: memory size must be >= 1, got %d", m))
	}
	return &Memory{regs: make([]paddedRegister, m)}
}

// Size returns m.
func (mem *Memory) Size() int { return len(mem.regs) }

// Observe reads physical register x (0-based) from the external observer's
// viewpoint. For monitors and tests only.
func (mem *Memory) Observe(x int) register.Stamped {
	return mem.regs[x].Load()
}

// ObserveValues reads the algorithmic value of every physical register.
// The reads are individually atomic but not a snapshot. For monitors and
// tests only.
func (mem *Memory) ObserveValues() []id.ID {
	out := make([]id.ID, len(mem.regs))
	for x := range mem.regs {
		out[x] = mem.regs[x].Load().Val
	}
	return out
}

// NewView creates the anonymous view of this memory for process me, using
// the permutation p assigned by the adversary. The permutation maps local
// register names (0-based) to physical indices.
func (mem *Memory) NewView(me id.ID, p perm.Perm) (*View, error) {
	if me.IsNone() {
		return nil, fmt.Errorf("amem: a view requires a process identity, got ⊥")
	}
	if len(p) != len(mem.regs) {
		return nil, fmt.Errorf("amem: permutation size %d does not match memory size %d", len(p), len(mem.regs))
	}
	if !p.Valid() {
		return nil, fmt.Errorf("amem: invalid permutation %v", p)
	}
	return &View{
		mem:   mem,
		perm:  p.Clone(),
		me:    me,
		scanA: make([]register.Packed, len(mem.regs)),
		scanB: make([]register.Packed, len(mem.regs)),
	}, nil
}

// View is process pi's anonymous handle on the shared memory: every access
// through local index x reaches physical register perm[x]. Not safe for
// concurrent use — one View belongs to one process.
type View struct {
	mem  *Memory
	perm perm.Perm
	me   id.ID
	seq  uint32 // sni: per-process write sequence number

	// Reusable double-scan buffers (allocation-free snapshots).
	scanA, scanB []register.Packed

	// Statistics for the snapshot-cost experiments.
	snapshotCalls    uint64
	snapshotCollects uint64
}

// Size returns m.
func (v *View) Size() int { return len(v.perm) }

// Me returns the identity this view belongs to.
func (v *View) Me() id.ID { return v.me }

// Read returns the algorithmic value of local register x: the identity of
// its last writer-recorded value, or ⊥.
func (v *View) Read(x int) id.ID {
	return id.FromHandle(v.mem.regs[v.perm[x]].LoadPacked().ValueHandle())
}

// Write stores val into local register x, stamped with this process's
// identity and next sequence number ("sni ← sni+1; R[x] ← (v, idi, sni)" of
// §II-B). Both identity writes and ⊥ writes (shrink) are stamped.
func (v *View) Write(x int, val id.ID) {
	v.seq++
	v.mem.regs[v.perm[x]].Store(register.Stamped{Val: val, Writer: v.me, Seq: v.seq})
}

// CompareAndSwap atomically replaces the value of local register x with
// newVal if its current value is old (§I-C). The RMW model's extra
// operation; never used by Algorithm 1.
func (v *View) CompareAndSwap(x int, old, newVal id.ID) bool {
	v.seq++
	return v.mem.regs[v.perm[x]].CompareAndSwapValue(old, newVal, v.me, v.seq)
}

// Snapshot returns a linearizable snapshot of the algorithmic values of
// all m registers, in local index order, using the double-scan technique:
// repeatedly collect all m cells until two consecutive collects are
// identical (including stamps). Because every write changes its register's
// stamp, two identical consecutive collects prove the memory did not
// change between them, so the snapshot linearizes between the two scans.
//
// If dst has capacity m it is reused; otherwise a new slice is allocated.
//
// Termination: guaranteed when writers are quiescent (the paper's progress
// condition (1)); under active writing the operation retries, which is
// exactly the model's behavior.
func (v *View) Snapshot(dst []id.ID) []id.ID {
	v.snapshotCalls++
	prev, cur := v.scanA, v.scanB
	v.collect(prev)
	for {
		v.collect(cur)
		if packedEqual(prev, cur) {
			break
		}
		prev, cur = cur, prev
	}
	if cap(dst) < len(cur) {
		dst = make([]id.ID, len(cur))
	}
	dst = dst[:len(cur)]
	for x, p := range cur {
		dst[x] = id.FromHandle(p.ValueHandle())
	}
	return dst
}

// collect reads all m registers once, in local order, into buf. The read
// order is irrelevant for correctness (paper footnote 2): what matters is
// that the k-th entries of two collects came from the same physical
// register, which the fixed permutation guarantees.
func (v *View) collect(buf []register.Packed) {
	v.snapshotCollects++
	for x := range v.perm {
		buf[x] = v.mem.regs[v.perm[x]].LoadPacked()
	}
}

func packedEqual(a, b []register.Packed) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SnapshotStats reports how many Snapshot calls this view has made and how
// many collect passes they needed in total. attempts/calls - 1 is the mean
// number of retries caused by concurrent writers (experiment E6).
func (v *View) SnapshotStats() (calls, collects uint64) {
	return v.snapshotCalls, v.snapshotCollects
}

// Perm returns a copy of this view's permutation. For diagnostics and
// experiment reporting only: a real process never knows its permutation.
func (v *View) Perm() perm.Perm { return v.perm.Clone() }
