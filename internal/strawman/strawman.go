// Package strawman implements a deliberately incorrect symmetric mutual
// exclusion protocol, used to give the verification tooling negative
// teeth.
//
// The Greedy protocol looks plausible: sweep compare&swap over the memory
// claiming every ⊥ register, read everything, and enter the critical
// section as soon as you are tied for the most-present identity. Its flaw
// is exactly the tie the paper's m ∈ M(n) condition and majority rule
// exist to prevent: two processes can each own half the memory, both tie
// for most-present, and both enter together.
//
// Under the Theorem 5 ring construction (ℓ | m, rotations, lock step) the
// Greedy protocol exhibits the lower bound's first horn — *all ℓ processes
// enter the critical section in the same round* — while the paper's
// algorithms exhibit the second horn (livelock). Together they make the
// theorem's "either/or" executable.
package strawman

import (
	"fmt"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
)

type phase uint8

const (
	phIdle phase = iota + 1
	phCAS
	phCollect
	phInCS
	phUnlock
	phAbort
)

// Greedy is the broken protocol machine. It implements core.Machine.
type Greedy struct {
	me     id.ID
	m      int
	status core.Status
	phase  phase
	view   []id.ID
	cursor int

	lockSteps    int
	ownedAtEntry int
}

var _ core.Machine = (*Greedy)(nil)

// New creates a Greedy machine for process me over m registers.
func New(me id.ID, m int) *Greedy {
	if me.IsNone() || m < 1 {
		panic(fmt.Sprintf("strawman: invalid arguments (me=%v, m=%d)", me, m))
	}
	return &Greedy{me: me, m: m, status: core.StatusIdle, phase: phIdle, view: make([]id.ID, m)}
}

// Me implements core.Machine.
func (g *Greedy) Me() id.ID { return g.me }

// Status implements core.Machine.
func (g *Greedy) Status() core.Status { return g.status }

// StartLock implements core.Machine.
func (g *Greedy) StartLock() error {
	if g.status != core.StatusIdle {
		return fmt.Errorf("strawman: StartLock in status %v", g.status)
	}
	g.status = core.StatusRunning
	g.phase = phCAS
	g.cursor = 0
	g.lockSteps = 0
	return nil
}

// StartUnlock implements core.Machine.
func (g *Greedy) StartUnlock() error {
	if g.status != core.StatusInCS {
		return fmt.Errorf("strawman: StartUnlock in status %v", g.status)
	}
	g.status = core.StatusRunning
	g.phase = phUnlock
	g.cursor = 0
	return nil
}

// StartAbort implements core.Machine: withdraw from an in-progress
// lock() by running the unlock erase sweep early — even the broken
// protocol backs out cleanly, so abort tooling can run against it.
func (g *Greedy) StartAbort() error {
	if g.status != core.StatusRunning || g.phase == phUnlock {
		return fmt.Errorf("strawman: StartAbort in status %v (withdraw applies only inside lock())", g.status)
	}
	g.cursor = 0
	g.phase = phAbort
	return nil
}

// PendingOp implements core.Machine.
func (g *Greedy) PendingOp() core.Op {
	switch g.phase {
	case phCAS:
		return core.Op{Kind: core.OpCAS, X: g.cursor, Old: id.None, New: g.me}
	case phCollect:
		return core.Op{Kind: core.OpRead, X: g.cursor}
	case phUnlock, phAbort:
		return core.Op{Kind: core.OpCAS, X: g.cursor, Old: g.me, New: id.None}
	default:
		panic(fmt.Sprintf("strawman: PendingOp in phase %d", g.phase))
	}
}

// Advance implements core.Machine.
func (g *Greedy) Advance(res core.OpResult) core.Status {
	if g.status != core.StatusRunning {
		panic(fmt.Sprintf("strawman: Advance in status %v", g.status))
	}
	if g.phase != phUnlock {
		g.lockSteps++
	}
	switch g.phase {
	case phCAS:
		g.cursor++
		if g.cursor == g.m {
			g.cursor = 0
			g.phase = phCollect
		}
	case phCollect:
		g.view[g.cursor] = res.Val
		g.cursor++
		if g.cursor == g.m {
			g.afterCollect()
		}
	case phUnlock, phAbort:
		g.cursor++
		if g.cursor == g.m {
			g.status = core.StatusIdle
			g.phase = phIdle
		}
	default:
		panic(fmt.Sprintf("strawman: Advance in phase %d", g.phase))
	}
	return g.status
}

// afterCollect applies the broken entry rule: enter when tied for the
// most-present identity (instead of requiring a strict majority).
func (g *Greedy) afterCollect() {
	owned, most := 0, 0
	for i, v := range g.view {
		if v.Equal(g.me) {
			owned++
		}
		if v.IsNone() {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if g.view[j].Equal(v) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c := 0
		for j := i; j < len(g.view); j++ {
			if g.view[j].Equal(v) {
				c++
			}
		}
		if c > most {
			most = c
		}
	}
	if owned > 0 && owned >= most {
		g.ownedAtEntry = owned
		g.status = core.StatusInCS
		g.phase = phInCS
		return
	}
	g.cursor = 0
	g.phase = phCAS
}

// Line implements core.Machine (no paper correspondence; phases are
// numbered 1-4 for traces).
func (g *Greedy) Line() int { return int(g.phase) }

// LockSteps implements core.Machine.
func (g *Greedy) LockSteps() int { return g.lockSteps }

// OwnedAtEntry implements core.Machine.
func (g *Greedy) OwnedAtEntry() int { return g.ownedAtEntry }

// Clone implements core.Machine.
func (g *Greedy) Clone() core.Machine {
	c := *g
	c.view = make([]id.ID, len(g.view))
	copy(c.view, g.view)
	return &c
}

// AppendState implements core.Machine.
func (g *Greedy) AppendState(dst []byte) []byte {
	dst = append(dst, byte(g.status), byte(g.phase))
	h := id.Handle(g.me)
	dst = append(dst, byte(h>>8), byte(h), byte(g.cursor>>8), byte(g.cursor))
	for _, v := range g.view {
		hv := id.Handle(v)
		dst = append(dst, byte(hv>>8), byte(hv))
	}
	return dst
}
