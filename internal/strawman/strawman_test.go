package strawman

import (
	"testing"

	"anonmutex/internal/core"
	"anonmutex/internal/id"
)

// exec is a minimal sequential executor over a plain value array.
type exec struct {
	mem []id.ID
}

func (e *exec) step(m core.Machine) core.Status {
	op := m.PendingOp()
	var res core.OpResult
	switch op.Kind {
	case core.OpRead:
		res.Val = e.mem[op.X]
	case core.OpWrite:
		e.mem[op.X] = op.Val
	case core.OpCAS:
		if e.mem[op.X].Equal(op.Old) {
			e.mem[op.X] = op.New
			res.Swapped = true
		}
	}
	return m.Advance(res)
}

func TestGreedySoloWorks(t *testing.T) {
	g := id.NewGenerator()
	m := New(g.MustNew(), 3)
	e := &exec{mem: make([]id.ID, 3)}
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && m.Status() != core.StatusInCS; i++ {
		e.step(m)
	}
	if m.Status() != core.StatusInCS {
		t.Fatal("solo greedy did not enter")
	}
	if m.OwnedAtEntry() != 3 {
		t.Errorf("solo OwnedAtEntry = %d", m.OwnedAtEntry())
	}
	if m.LockSteps() != 6 {
		t.Errorf("solo LockSteps = %d, want 6", m.LockSteps())
	}
	if err := m.StartUnlock(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && m.Status() != core.StatusIdle; i++ {
		e.step(m)
	}
	for x, v := range e.mem {
		if !v.IsNone() {
			t.Errorf("register %d not released: %v", x, v)
		}
	}
}

func TestGreedyEntersOnTie(t *testing.T) {
	// The defining flaw: a 1-1 split on m=2 lets BOTH processes enter.
	g := id.NewGenerator()
	p, q := g.MustNew(), g.MustNew()
	pm, qm := New(p, 2), New(q, 2)
	e := &exec{mem: []id.ID{p, q}}
	for _, m := range []*Greedy{pm, qm} {
		if err := m.StartLock(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20 && m.Status() != core.StatusInCS; i++ {
			e.step(m)
		}
		if m.Status() != core.StatusInCS {
			t.Fatalf("greedy machine did not enter from the tie")
		}
	}
	// Both are now in the CS: mutual exclusion violated by construction.
}

func TestGreedyResignsWhenBehind(t *testing.T) {
	g := id.NewGenerator()
	p, q := g.MustNew(), g.MustNew()
	qm := New(q, 3)
	e := &exec{mem: []id.ID{p, p, q}}
	if err := qm.StartLock(); err != nil {
		t.Fatal(err)
	}
	// CAS sweep (all fail) + collect: owned=1 < most=2 → back to CAS
	// sweep (greedy has no erase/wait; it just retries).
	for i := 0; i < 6; i++ {
		e.step(qm)
	}
	if qm.Status() == core.StatusInCS {
		t.Fatal("greedy entered while strictly behind")
	}
}

func TestGreedyLifecycleErrors(t *testing.T) {
	g := id.NewGenerator()
	m := New(g.MustNew(), 2)
	if err := m.StartUnlock(); err == nil {
		t.Error("StartUnlock from idle accepted")
	}
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	if err := m.StartLock(); err == nil {
		t.Error("double StartLock accepted")
	}
}

func TestGreedyCloneIndependent(t *testing.T) {
	g := id.NewGenerator()
	m := New(g.MustNew(), 2)
	if err := m.StartLock(); err != nil {
		t.Fatal(err)
	}
	e := &exec{mem: make([]id.ID, 2)}
	e.step(m)
	c := m.Clone()
	s0 := string(m.AppendState(nil))
	if string(c.AppendState(nil)) != s0 {
		t.Fatal("clone state differs")
	}
	e.step(m)
	if string(m.AppendState(nil)) == string(c.AppendState(nil)) {
		t.Fatal("clone shares state with original")
	}
}

func TestGreedyNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with None identity did not panic")
		}
	}()
	New(id.None, 2)
}
