package trace

import (
	"strings"
	"testing"

	"anonmutex/internal/core"
)

func TestTraceCap(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Add(Event{Step: i})
	}
	if tr.Len() != 3 || tr.Dropped != 2 {
		t.Fatalf("len=%d dropped=%d, want 3 and 2", tr.Len(), tr.Dropped)
	}
}

func TestTraceDisabled(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(Event{})
	if tr.Len() != 0 || tr.Dropped != 1 {
		t.Fatalf("disabled trace retained events")
	}
	var nilTrace *Trace
	nilTrace.Add(Event{}) // must not panic
	if nilTrace.Len() != 0 {
		t.Fatal("nil trace has nonzero length")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Step: 17, Proc: 2, Kind: EvOp, Op: core.Op{Kind: core.OpRead, X: 3}, Line: 9}
	s := e.String()
	for _, want := range []string{"17", "p2", "read", "[3]", "@9"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	if !strings.Contains(Event{Kind: EvEnterCS}.String(), "enter-cs") {
		t.Error("enter event string wrong")
	}
}

func TestMonitorNoViolationSequential(t *testing.T) {
	m := NewMonitor(3)
	for round := 0; round < 3; round++ {
		for p := 0; p < 3; p++ {
			m.OnLockStart(p, round*10+p)
			m.OnEnter(p, round*10+p+1)
			m.OnExit(p, round*10+p+2)
		}
	}
	if len(m.Violations()) != 0 {
		t.Fatalf("sequential run reported violations: %v", m.Violations())
	}
	if m.TotalEntries() != 9 {
		t.Fatalf("total entries = %d, want 9", m.TotalEntries())
	}
	for p, e := range m.Entries() {
		if e != 3 {
			t.Errorf("process %d entries = %d, want 3", p, e)
		}
	}
}

func TestMonitorDetectsOverlap(t *testing.T) {
	m := NewMonitor(2)
	m.OnLockStart(0, 0)
	m.OnEnter(0, 1)
	m.OnLockStart(1, 2)
	m.OnEnter(1, 3) // violation: 0 still inside
	vs := m.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.Step != 3 || v.Entered != 1 || len(v.Inside) != 1 || v.Inside[0] != 0 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "p1") {
		t.Errorf("violation string %q", v.String())
	}
	if !m.AnyInside() {
		t.Error("AnyInside false while two inside")
	}
}

func TestMonitorExitWithoutEntryPanics(t *testing.T) {
	m := NewMonitor(1)
	defer func() {
		if recover() == nil {
			t.Error("exit without entry did not panic")
		}
	}()
	m.OnExit(0, 0)
}

func TestMonitorWaitAccounting(t *testing.T) {
	m := NewMonitor(2)
	m.OnLockStart(0, 10)
	m.OnEnter(0, 25) // wait 15
	m.OnExit(0, 30)
	m.OnLockStart(0, 40)
	m.OnEnter(0, 45) // wait 5
	m.OnExit(0, 50)
	mw := m.MaxWait()
	if mw[0] != 15 {
		t.Errorf("max wait = %d, want 15", mw[0])
	}
	mean := m.MeanWait()
	if mean[0] != 10 {
		t.Errorf("mean wait = %v, want 10", mean[0])
	}
	if mean[1] != 0 {
		t.Errorf("idle process mean wait = %v, want 0", mean[1])
	}
}

func TestMonitorBypasses(t *testing.T) {
	m := NewMonitor(3)
	// p2 waits from step 0; p0 and p1 enter twice each before p2 gets in.
	m.OnLockStart(2, 0)
	for i := 0; i < 2; i++ {
		m.OnLockStart(0, 1)
		m.OnEnter(0, 2)
		m.OnExit(0, 3)
		m.OnLockStart(1, 4)
		m.OnEnter(1, 5)
		m.OnExit(1, 6)
	}
	m.OnEnter(2, 7)
	m.OnExit(2, 8)
	if got := m.Bypasses()[2]; got != 4 {
		t.Errorf("bypasses for p2 = %d, want 4", got)
	}
	// p0's waits never overlap another process's entry: no bypasses.
	if got := m.Bypasses()[0]; got != 0 {
		t.Errorf("bypasses for p0 = %d, want 0 (full: %v)", got, m.Bypasses())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvLockStart, EvOp, EvEnterCS, EvUnlockStart, EvUnlockDone, EventKind(77)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}
