// Package trace records simulated executions and checks their safety and
// progress properties online.
//
// Events are emitted by the scheduler (internal/sched) at every
// shared-memory step and at every lock/unlock life-cycle transition. The
// monitors implement the paper's two correctness properties (§II-E):
//
//   - Monitor (mutual exclusion): "no two processes are simultaneously in
//     their critical section" — checked at every entry against the set of
//     processes currently inside.
//   - Progress accounting: deadlock-freedom is a liveness property; for
//     bounded runs we record entries, per-process lockouts, and waiting
//     spans, letting experiments distinguish "completed", "still
//     progressing", and "wedged" outcomes. Definitive livelock verdicts
//     come from state-cycle detection in the scheduler and from the
//     exhaustive model checker.
package trace

import (
	"fmt"
	"strings"

	"anonmutex/internal/core"
)

// EventKind classifies trace events.
type EventKind uint8

// Event kinds.
const (
	EvLockStart   EventKind = iota + 1 // process began lock()
	EvOp                               // process executed one shared-memory op
	EvEnterCS                          // lock() completed
	EvUnlockStart                      // process began unlock()
	EvUnlockDone                       // unlock() completed; back to remainder
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvLockStart:
		return "lock-start"
	case EvOp:
		return "op"
	case EvEnterCS:
		return "enter-cs"
	case EvUnlockStart:
		return "unlock-start"
	case EvUnlockDone:
		return "unlock-done"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one step of a simulated execution. Proc is the scheduler's
// process index (external observer numbering; the processes themselves
// remain symmetric).
type Event struct {
	Step int
	Proc int
	Kind EventKind
	Op   core.Op // valid when Kind == EvOp
	Line int     // paper line the process was at
}

// String renders the event compactly, e.g. "17 p2 op read[3]@9".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d p%d %v", e.Step, e.Proc, e.Kind)
	if e.Kind == EvOp {
		fmt.Fprintf(&b, " %v[%d]@%d", e.Op.Kind, e.Op.X, e.Line)
	}
	return b.String()
}

// Trace accumulates events up to a cap; past the cap it counts drops
// instead of growing without bound.
type Trace struct {
	Events  []Event
	Dropped int
	cap     int
}

// NewTrace creates a trace retaining at most capEvents events
// (capEvents <= 0 disables retention entirely).
func NewTrace(capEvents int) *Trace {
	return &Trace{cap: capEvents}
}

// Add appends an event, or counts it as dropped when the cap is reached.
func (tr *Trace) Add(e Event) {
	if tr == nil {
		return
	}
	if tr.cap <= 0 || len(tr.Events) >= tr.cap {
		tr.Dropped++
		return
	}
	tr.Events = append(tr.Events, e)
}

// Len returns the number of retained events.
func (tr *Trace) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.Events)
}

// Violation records a mutual-exclusion violation: the step at which a
// process entered the critical section while others were inside.
type Violation struct {
	Step    int
	Entered int   // the process that just entered
	Inside  []int // processes already inside
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("step %d: p%d entered the CS while %v inside", v.Step, v.Entered, v.Inside)
}

// Monitor checks mutual exclusion online and accumulates progress
// statistics. The zero value is unusable; create with NewMonitor.
type Monitor struct {
	n          int
	inCS       []bool
	insideCnt  int
	violations []Violation

	entries     []int // CS entries per process
	lockStarts  []int // lock() invocations per process
	waitingFrom []int // step of the pending lock() start, -1 if none
	maxWait     []int // longest lock() duration in steps, per process
	totalWait   []int64
	bypasses    []int // entries by others while this process was waiting
}

// NewMonitor creates a monitor for n processes.
func NewMonitor(n int) *Monitor {
	m := &Monitor{
		n:           n,
		inCS:        make([]bool, n),
		violations:  nil,
		entries:     make([]int, n),
		lockStarts:  make([]int, n),
		waitingFrom: make([]int, n),
		maxWait:     make([]int, n),
		totalWait:   make([]int64, n),
		bypasses:    make([]int, n),
	}
	for i := range m.waitingFrom {
		m.waitingFrom[i] = -1
	}
	return m
}

// OnLockStart records that proc began lock() at step.
func (m *Monitor) OnLockStart(proc, step int) {
	m.lockStarts[proc]++
	m.waitingFrom[proc] = step
}

// OnEnter records that proc entered the critical section at step,
// detecting mutual-exclusion violations.
func (m *Monitor) OnEnter(proc, step int) {
	if m.insideCnt > 0 {
		inside := make([]int, 0, m.insideCnt)
		for p, in := range m.inCS {
			if in {
				inside = append(inside, p)
			}
		}
		m.violations = append(m.violations, Violation{Step: step, Entered: proc, Inside: inside})
	}
	m.inCS[proc] = true
	m.insideCnt++
	m.entries[proc]++
	if from := m.waitingFrom[proc]; from >= 0 {
		wait := step - from
		m.totalWait[proc] += int64(wait)
		if wait > m.maxWait[proc] {
			m.maxWait[proc] = wait
		}
		m.waitingFrom[proc] = -1
	}
	// Everyone still waiting was bypassed by this entry.
	for p, from := range m.waitingFrom {
		if p != proc && from >= 0 {
			m.bypasses[p]++
		}
	}
}

// OnExit records that proc left the critical section (began unlock()).
func (m *Monitor) OnExit(proc, step int) {
	_ = step
	if !m.inCS[proc] {
		// An exit without an entry is a harness bug, not a protocol bug.
		panic(fmt.Sprintf("trace: process %d exited the CS without being inside", proc))
	}
	m.inCS[proc] = false
	m.insideCnt--
}

// Violations returns all recorded mutual-exclusion violations.
func (m *Monitor) Violations() []Violation { return m.violations }

// Entries returns per-process critical-section entry counts.
func (m *Monitor) Entries() []int {
	out := make([]int, m.n)
	copy(out, m.entries)
	return out
}

// TotalEntries returns the total number of CS entries.
func (m *Monitor) TotalEntries() int {
	total := 0
	for _, e := range m.entries {
		total += e
	}
	return total
}

// MaxWait returns, for each process, the longest lock() it completed (in
// scheduler steps).
func (m *Monitor) MaxWait() []int {
	out := make([]int, m.n)
	copy(out, m.maxWait)
	return out
}

// MeanWait returns, for each process, the mean completed-lock() duration
// in steps (0 when the process never entered).
func (m *Monitor) MeanWait() []float64 {
	out := make([]float64, m.n)
	for p := range out {
		if m.entries[p] > 0 {
			out[p] = float64(m.totalWait[p]) / float64(m.entries[p])
		}
	}
	return out
}

// Bypasses returns, for each process, how many times some other process
// entered the CS while this process had a pending lock(). Deadlock-freedom
// permits unbounded bypassing (no starvation guarantee) — experiment E9
// measures how unfair the algorithms actually are.
func (m *Monitor) Bypasses() []int {
	out := make([]int, m.n)
	copy(out, m.bypasses)
	return out
}

// AnyInside reports whether some process is currently in the CS.
func (m *Monitor) AnyInside() bool { return m.insideCnt > 0 }
