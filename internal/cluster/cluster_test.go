package cluster

import (
	"fmt"
	"testing"
	"time"
)

// testConfig returns fast-converging gossip timings for loopback tests.
func testConfig(id string) Config {
	return Config{
		ID:           id,
		Addr:         "127.0.0.1:7" + id, // placeholder lock-service addr
		GossipAddr:   "127.0.0.1:0",
		Interval:     10 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    80 * time.Millisecond,
	}
}

// startCluster boots n nodes seeded through the first node's resolved
// gossip address, the way a static seed list is used in production.
func startCluster(t *testing.T, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, n)
	var seeds []string
	for i := 0; i < n; i++ {
		cfg := testConfig(fmt.Sprintf("n%d", i))
		cfg.Seeds = append([]string(nil), seeds...)
		node, err := Start(cfg)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		t.Cleanup(func() { node.Close() })
		nodes = append(nodes, node)
		seeds = append(seeds, node.GossipAddr())
	}
	return nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// countAlive reports how many members of n's view are not dead.
func countAlive(n *Node) int {
	return len(n.View().Owning())
}

func TestClusterConverges(t *testing.T) {
	nodes := startCluster(t, 3)
	for i, n := range nodes {
		i, n := i, n
		waitFor(t, 3*time.Second, fmt.Sprintf("node %d to see 3 members", i), func() bool {
			return countAlive(n) == 3
		})
	}
	// Every node resolves every key to the same owner.
	for _, key := range []string{"a", "b", "k-17", "user/42"} {
		owner0, ok := nodes[0].Owner(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		for i, n := range nodes[1:] {
			owner, _ := n.Owner(key)
			if owner.ID != owner0.ID {
				t.Fatalf("node %d owner for %q = %s, node 0 says %s", i+1, key, owner.ID, owner0.ID)
			}
		}
	}
}

func TestClusterDeathMovesKeysAndBumpsEpoch(t *testing.T) {
	nodes := startCluster(t, 3)
	for _, n := range nodes {
		n := n
		waitFor(t, 3*time.Second, "convergence", func() bool { return countAlive(n) == 3 })
	}
	epochBefore := nodes[0].Epoch()

	// Find keys owned by the victim so we can watch them move.
	victim := nodes[2]
	victimID := victim.Self().ID
	var victimKeys []string
	for i := 0; len(victimKeys) < 3 && i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if owner, _ := nodes[0].Owner(key); owner.ID == victimID {
			victimKeys = append(victimKeys, key)
		}
	}
	if len(victimKeys) < 3 {
		t.Fatalf("rendezvous hashing gave %s fewer than 3 of 1000 keys", victimID)
	}

	victim.Close() // silent crash: no goodbye message
	for _, n := range nodes[:2] {
		n := n
		waitFor(t, 3*time.Second, "death detection", func() bool { return countAlive(n) == 2 })
	}
	if e := nodes[0].Epoch(); e <= epochBefore {
		t.Fatalf("epoch did not advance across a death: %d -> %d", epochBefore, e)
	}
	// The dead node's keys moved to survivors — and to the same
	// survivor everywhere; keys the survivors already owned stayed put.
	for _, key := range victimKeys {
		o0, _ := nodes[0].Owner(key)
		o1, _ := nodes[1].Owner(key)
		if o0.ID == victimID {
			t.Fatalf("key %q still owned by dead %s", key, victimID)
		}
		if o0.ID != o1.ID {
			t.Fatalf("survivors disagree on %q: %s vs %s", key, o0.ID, o1.ID)
		}
	}
}

func TestClusterOnChangeFiresOnDeath(t *testing.T) {
	nodes := startCluster(t, 2)
	for _, n := range nodes {
		n := n
		waitFor(t, 3*time.Second, "convergence", func() bool { return countAlive(n) == 2 })
	}
	changes := make(chan View, 16)
	nodes[0].OnChange(func(v View) {
		select {
		case changes <- v:
		default:
		}
	})
	nodes[1].Close()
	select {
	case v := <-changes:
		if len(v.Owning()) != 1 {
			t.Fatalf("change view has %d owning members, want 1", len(v.Owning()))
		}
	case <-time.After(3 * time.Second):
		t.Fatal("OnChange never fired after a member died")
	}
}

func TestRendezvousDeterministicAndBalanced(t *testing.T) {
	v := View{Members: []Member{
		{ID: "a", State: StateAlive},
		{ID: "b", State: StateAlive},
		{ID: "c", State: StateSuspect}, // suspects keep their keys
		{ID: "d", State: StateDead},    // the dead do not
	}}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, ok := v.Owner(key)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		o2, _ := v.Owner(key)
		if o1.ID != o2.ID {
			t.Fatalf("owner of %q not deterministic: %s vs %s", key, o1.ID, o2.ID)
		}
		if o1.ID == "d" {
			t.Fatalf("dead member owns %q", key)
		}
		counts[o1.ID]++
	}
	// HRW should spread keys roughly evenly over the three eligible
	// members; a worst member below half its fair share would mean the
	// hash is broken, not merely unlucky.
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] < 500 {
			t.Fatalf("member %s owns only %d of 3000 keys: %v", id, counts[id], counts)
		}
	}
}

func TestTokenFloorOrdersEpochs(t *testing.T) {
	if TokenFloor(1) <= TokenFloor(0) || TokenFloor(7) <= TokenFloor(6) {
		t.Fatal("token floors not strictly increasing in epoch")
	}
	// A grant counter seeded at floor E and bumped per grant stays
	// below floor E+1 for 2^32 grants.
	if TokenFloor(3)+1<<31 >= TokenFloor(4) {
		t.Fatal("epoch stride too small")
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Addr: "x", GossipAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Start accepted an empty ID")
	}
	if _, err := Start(Config{ID: "a", GossipAddr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Start accepted an empty Addr")
	}
	cfg := testConfig("a")
	cfg.SuspectAfter = 100 * time.Millisecond
	cfg.DeadAfter = 50 * time.Millisecond
	if _, err := Start(cfg); err == nil {
		t.Fatal("Start accepted DeadAfter <= SuspectAfter")
	}
}
