// Package cluster is lockd's membership and key-ownership layer: a
// lightweight UDP heartbeat gossip over a static seed list, and
// rendezvous (highest-random-weight) hashing of the live membership
// view to decide which node owns each lock name.
//
// Every node keeps a full membership table — lock clusters are small
// (single digits of nodes serving millions of clients), so gossiping
// the whole table every interval is cheap and makes convergence easy
// to reason about. Each entry carries an (incarnation, beat) pair:
// beat is the member's heartbeat counter, bumped every interval it is
// alive; incarnation orders restarts of the same node id (a restarted
// node starts with a fresh, larger incarnation, so its counter never
// has to race its past self). A member whose pair stops advancing is
// marked suspect after SuspectAfter and dead after DeadAfter; a newer
// pair revives it.
//
// Ownership is computed over the members not known dead — a suspect
// node keeps its keys, so a gossip hiccup does not stampede ownership
// back and forth; only a death (or a join) moves keys. Each change to
// that owning set bumps the view's epoch, a Lamport-style counter
// (merged by max, bumped on local change) that totally orders
// ownership regimes cluster-wide. The epoch is what makes lease
// handoff safe: a node seeds its fencing-token counter to
// TokenFloor(epoch), so grants issued by a key's new owner carry
// strictly larger tokens than anything its previous owner issued under
// an earlier epoch — a fenced holder can never be resurrected by
// failover. (See lockd's DESIGN.md, section "Cluster".)
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// State is one member's liveness as seen by this node.
type State uint8

const (
	// StateAlive: the member's heartbeat is advancing.
	StateAlive State = iota
	// StateSuspect: no advance for SuspectAfter; the member keeps its
	// keys (ownership does not flap on a gossip hiccup) but is on the
	// clock toward dead.
	StateSuspect
	// StateDead: no advance for DeadAfter; the member is removed from
	// the owning set and its keys move, bumping the epoch.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Member is one node of the cluster.
type Member struct {
	// ID is the node's stable identity (unique per cluster).
	ID string
	// Addr is the node's lock-service address — what redirects carry
	// and clients dial.
	Addr string
	// GossipAddr is the node's membership UDP address.
	GossipAddr string

	State       State
	Incarnation uint64
	Beat        uint64
	// Epoch is the highest membership epoch this member is known to
	// have reached — its own claim, relayed by gossip. Local epoch
	// bumps jump past the highest claim in the table, so a new owner's
	// token floor clears every band a dead member could have granted
	// under, even when epoch counters had diverged at the time of
	// death.
	Epoch uint64
}

// Config configures one node's membership layer.
type Config struct {
	// ID is this node's identity; required, unique per cluster.
	ID string
	// Addr is this node's advertised lock-service address; required.
	Addr string
	// GossipAddr is the UDP address to listen on for gossip
	// ("127.0.0.1:0" picks a free port; see Node.GossipAddr for the
	// resolved one). Required.
	GossipAddr string
	// Seeds are peer gossip addresses to introduce ourselves to. A
	// seed need not be alive at start; it is retried every interval
	// until gossip absorbs it into the member table.
	Seeds []string

	// Interval is the heartbeat/gossip period (default 100ms).
	Interval time.Duration
	// SuspectAfter marks a member suspect after this long without
	// heartbeat progress (default 4×Interval).
	SuspectAfter time.Duration
	// DeadAfter marks a member dead — moving its keys — after this
	// long without progress (default 8×Interval; must exceed
	// SuspectAfter).
	DeadAfter time.Duration
	// Fanout is how many peers each gossip round targets (default 3).
	Fanout int

	// Logf, when non-nil, receives membership transitions (joins,
	// suspicions, deaths, epoch bumps).
	Logf func(format string, args ...any)
}

// View is an immutable snapshot of the membership: the epoch, this
// node, and every known member (sorted by ID, dead ones included).
type View struct {
	Epoch   uint64
	Self    Member
	Members []Member
}

// Owning reports the members eligible to own keys under this view:
// everyone not known dead (suspects keep their keys).
func (v View) Owning() []Member {
	owning := make([]Member, 0, len(v.Members))
	for _, m := range v.Members {
		if m.State != StateDead {
			owning = append(owning, m)
		}
	}
	return owning
}

// Owner resolves the key's owning member under this view by rendezvous
// hashing: the highest hash of (member id, key) among non-dead members
// wins, ties broken by id. ok is false only if every member is dead —
// impossible in practice, since the local node is always in the view.
func (v View) Owner(key string) (Member, bool) {
	var best Member
	var bestHash uint64
	found := false
	for _, m := range v.Members {
		if m.State == StateDead {
			continue
		}
		h := rendezvousHash(m.ID, key)
		if !found || h > bestHash || (h == bestHash && m.ID < best.ID) {
			best, bestHash, found = m, h, true
		}
	}
	return best, found
}

// rendezvousHash scores one (member, key) pair: FNV-1a over the member
// id, a separator that cannot appear inside it, then the key.
func rendezvousHash(id, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// TokenFloor is the fencing-token floor a node seeds its lease counter
// to under a membership epoch: tokens granted under epoch E live in
// [E<<32, (E+1)<<32), so any grant issued under a later epoch compares
// strictly greater than every grant of an earlier one. 2^32 grants per
// key per epoch is the stride; a node approaching it would have served
// billions of acquires between membership changes.
func TokenFloor(epoch uint64) uint64 { return epoch << 32 }

// Node is one running membership participant. Create with Start; stop
// with Close.
type Node struct {
	cfg  Config
	conn *net.UDPConn

	mu      sync.Mutex
	self    Member
	epoch   uint64
	members map[string]*memberState
	watch   []func(View)
	rng     *rand.Rand
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// memberState is a remote member plus the local failure-detector clock.
type memberState struct {
	Member
	lastAdvance time.Time
}

// Start validates cfg, binds the gossip socket, and begins
// heartbeating. The node is immediately a one-member cluster of
// itself; seeds are courted every interval until gossip merges them
// in.
func Start(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: Config.ID is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("cluster: Config.Addr is required")
	}
	if cfg.GossipAddr == "" {
		return nil, errors.New("cluster: Config.GossipAddr is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.Interval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 8 * cfg.Interval
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		return nil, fmt.Errorf("cluster: DeadAfter %v must exceed SuspectAfter %v", cfg.DeadAfter, cfg.SuspectAfter)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.GossipAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: gossip address %s: %w", cfg.GossipAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listening on %s: %w", cfg.GossipAddr, err)
	}
	n := &Node{
		cfg:  cfg,
		conn: conn,
		self: Member{
			ID:         cfg.ID,
			Addr:       cfg.Addr,
			GossipAddr: conn.LocalAddr().String(),
			State:      StateAlive,
			// Wall-clock incarnation: a restarted node resumes with a
			// strictly larger incarnation than any heartbeat its past
			// self gossiped, so peers adopt the new identity at once.
			Incarnation: uint64(time.Now().UnixNano()),
			Epoch:       1,
		},
		epoch:   1,
		members: make(map[string]*memberState),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		done:    make(chan struct{}),
	}
	n.wg.Add(2)
	go n.recvLoop()
	go n.gossipLoop()
	return n, nil
}

// Self is this node's own member entry.
func (n *Node) Self() Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.self
}

// GossipAddr is the resolved UDP address the node listens on.
func (n *Node) GossipAddr() string {
	return n.conn.LocalAddr().String()
}

// Epoch is the current membership epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// View snapshots the membership.
func (n *Node) View() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.viewLocked()
}

func (n *Node) viewLocked() View {
	members := make([]Member, 0, len(n.members)+1)
	members = append(members, n.self)
	for _, m := range n.members {
		members = append(members, m.Member)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	return View{Epoch: n.epoch, Self: n.self, Members: members}
}

// Owner resolves key's owner under the current view.
func (n *Node) Owner(key string) (Member, bool) {
	return n.View().Owner(key)
}

// OnChange registers fn to be called — serially, from the node's
// gossip goroutines — with the new view after every epoch bump (that
// is, after every change to the owning set). Callbacks must not block
// for long and must not call Close.
func (n *Node) OnChange(fn func(View)) {
	n.mu.Lock()
	n.watch = append(n.watch, fn)
	n.mu.Unlock()
}

// Close stops gossiping and releases the socket. Peers will see this
// node go silent and, after DeadAfter, dead — Close is deliberately a
// crash from the cluster's point of view; there is no goodbye message,
// so the planned and unplanned leave paths are the same tested path.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	err := n.conn.Close()
	n.wg.Wait()
	return err
}

// gossipLoop drives the periodic work: bump our heartbeat, run the
// failure detector, and push our view at Fanout random peers plus any
// seed we have not absorbed yet.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case now := <-t.C:
			n.tick(now)
		}
	}
}

func (n *Node) tick(now time.Time) {
	n.mu.Lock()
	n.self.Beat++
	changed := n.detectLocked(now)
	if changed {
		n.setEpochLocked(n.maxKnownEpochLocked() + 1)
	}
	packet := n.encodeViewLocked()
	targets := n.targetsLocked()
	watchers, view := n.watchersLocked(changed)
	n.mu.Unlock()

	for _, w := range watchers {
		w(view)
	}
	for _, addr := range targets {
		n.send(addr, packet)
	}
}

// setEpochLocked moves the epoch, keeping our own gossip claim in step.
func (n *Node) setEpochLocked(e uint64) {
	n.epoch = e
	n.self.Epoch = e
}

// maxKnownEpochLocked is the highest epoch any member is known to have
// reached — dead members included, which is the point: a bump past it
// puts the new epoch's token band above anything the dead member could
// have granted under.
func (n *Node) maxKnownEpochLocked() uint64 {
	e := n.epoch
	for _, m := range n.members {
		if m.Epoch > e {
			e = m.Epoch
		}
	}
	return e
}

// detectLocked advances the failure detector, reporting whether the
// owning set changed (some member crossed into or out of dead).
func (n *Node) detectLocked(now time.Time) (changed bool) {
	for _, m := range n.members {
		if m.lastAdvance.IsZero() {
			m.lastAdvance = now
			continue
		}
		idle := now.Sub(m.lastAdvance)
		switch {
		case m.State != StateDead && idle >= n.cfg.DeadAfter:
			m.State = StateDead
			changed = true
			n.logf("cluster %s: member %s (%s) dead after %v silent", n.cfg.ID, m.ID, m.Addr, idle)
		case m.State == StateAlive && idle >= n.cfg.SuspectAfter:
			m.State = StateSuspect
			n.logf("cluster %s: member %s (%s) suspect after %v silent", n.cfg.ID, m.ID, m.Addr, idle)
		}
	}
	return changed
}

// targetsLocked picks this round's gossip targets: every seed not yet
// in the member table (so a cluster can bootstrap through one
// address), then up to Fanout random known peers, dead ones excluded.
func (n *Node) targetsLocked() []string {
	known := make(map[string]bool, len(n.members)+1)
	known[n.self.GossipAddr] = true
	peers := make([]string, 0, len(n.members))
	for _, m := range n.members {
		known[m.GossipAddr] = true
		if m.State != StateDead {
			peers = append(peers, m.GossipAddr)
		}
	}
	var targets []string
	for _, s := range n.cfg.Seeds {
		if !known[s] {
			targets = append(targets, s)
		}
	}
	n.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > n.cfg.Fanout {
		peers = peers[:n.cfg.Fanout]
	}
	return append(targets, peers...)
}

// watchersLocked snapshots the callback list and view when the owning
// set changed this tick (nil otherwise); callbacks run outside the
// lock.
func (n *Node) watchersLocked(changed bool) ([]func(View), View) {
	if !changed || len(n.watch) == 0 {
		return nil, View{}
	}
	watchers := make([]func(View), len(n.watch))
	copy(watchers, n.watch)
	return watchers, n.viewLocked()
}

func (n *Node) send(addr string, packet []byte) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	n.conn.WriteToUDP(packet, raddr)
}

// recvLoop merges incoming views until the socket closes.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		k, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // Close tore the socket down (or it is unusable)
		}
		remoteEpoch, remote, err := decodeView(buf[:k])
		if err != nil {
			continue // not ours; gossip is tolerant of garbage
		}
		n.merge(remoteEpoch, remote)
	}
}

// merge folds one received view into the local table: per member, the
// larger (incarnation, beat) pair wins and counts as heartbeat
// progress; at an equal pair, the worse state sticks (dead > suspect >
// alive), so a death observed anywhere propagates. Epochs merge by
// max; any change to the owning set bumps the result once more and
// notifies watchers.
func (n *Node) merge(remoteEpoch uint64, remote []Member) {
	now := time.Now()
	n.mu.Lock()
	changed := false
	prevEpoch := n.epoch
	epoch := max(n.epoch, remoteEpoch)
	for _, r := range remote {
		if r.ID == n.self.ID {
			// Gossip about ourselves: refute anything but alive by
			// bumping our incarnation past the rumor's — peers adopt
			// the larger pair and we stay in the owning set.
			if r.State != StateAlive && r.Incarnation >= n.self.Incarnation {
				n.self.Incarnation = r.Incarnation + 1
				n.logf("cluster %s: refuting %s rumor (incarnation %d)", n.cfg.ID, r.State, n.self.Incarnation)
			}
			continue
		}
		m, ok := n.members[r.ID]
		if ok && r.Epoch > m.Epoch {
			// Epoch claims are monotone, so the max is safe to adopt
			// whatever the rest of the entry's ordering says.
			m.Epoch = r.Epoch
		}
		if !ok {
			n.members[r.ID] = &memberState{Member: r, lastAdvance: now}
			if r.State != StateDead {
				changed = true
			}
			n.logf("cluster %s: member %s (%s) joined as %s", n.cfg.ID, r.ID, r.Addr, r.State)
			continue
		}
		switch {
		case r.Incarnation > m.Incarnation || (r.Incarnation == m.Incarnation && r.Beat > m.Beat):
			// Progress: adopt the newer pair; a member heard from again
			// is alive, whatever we or the rumor thought.
			wasDead := m.State == StateDead
			m.Incarnation, m.Beat = r.Incarnation, r.Beat
			m.Addr, m.GossipAddr = r.Addr, r.GossipAddr
			m.lastAdvance = now
			if r.State == StateDead {
				// A death rumor with a newer pair than ours: believe it
				// until the member itself refutes.
				m.State = StateDead
				if !wasDead {
					changed = true
				}
			} else if m.State != StateAlive {
				m.State = StateAlive
				if wasDead {
					changed = true
					n.logf("cluster %s: member %s (%s) revived", n.cfg.ID, m.ID, m.Addr)
				}
			}
		case r.Incarnation == m.Incarnation && r.Beat == m.Beat && r.State > m.State:
			// Same knowledge, worse verdict: adopt it (dead > suspect >
			// alive), so deaths converge without waiting out our own
			// timer.
			if r.State == StateDead && m.State != StateDead {
				changed = true
				n.logf("cluster %s: member %s (%s) dead (gossiped)", n.cfg.ID, m.ID, m.Addr)
			}
			m.State = r.State
		}
	}
	if changed {
		if mk := n.maxKnownEpochLocked(); mk > epoch {
			epoch = mk
		}
		epoch++
	}
	if epoch != n.epoch {
		n.setEpochLocked(epoch)
	}
	// An epoch advance is pushed out immediately rather than waiting for
	// the next tick: grants issued under the new epoch's token band are
	// only safe across our own death once peers have heard the claim, so
	// the window between bumping and gossiping must be as short as the
	// network allows, not a full heartbeat interval. Each node advances
	// to a given epoch at most once, so the eager pushes terminate.
	var packet []byte
	var targets []string
	if n.epoch > prevEpoch {
		packet = n.encodeViewLocked()
		targets = n.targetsLocked()
	}
	watchers, view := n.watchersLocked(changed)
	n.mu.Unlock()
	for _, w := range watchers {
		w(view)
	}
	for _, addr := range targets {
		n.send(addr, packet)
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Gossip packet format: magic "ag1", epoch uvarint, member count
// uvarint, then per member: id, addr, gossip addr (uvarint-length
// strings), incarnation uvarint, beat uvarint, claimed epoch uvarint,
// state byte. The sender always lists itself first; the whole table of
// a small cluster fits one datagram with room to spare.
var gossipMagic = [3]byte{'a', 'g', '1'}

func (n *Node) encodeViewLocked() []byte {
	buf := append(make([]byte, 0, 512), gossipMagic[:]...)
	buf = binary.AppendUvarint(buf, n.epoch)
	buf = binary.AppendUvarint(buf, uint64(1+len(n.members)))
	buf = appendMember(buf, n.self)
	for _, m := range n.members {
		buf = appendMember(buf, m.Member)
	}
	return buf
}

func appendMember(buf []byte, m Member) []byte {
	for _, s := range []string{m.ID, m.Addr, m.GossipAddr} {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, m.Incarnation)
	buf = binary.AppendUvarint(buf, m.Beat)
	buf = binary.AppendUvarint(buf, m.Epoch)
	return append(buf, byte(m.State))
}

func decodeView(data []byte) (epoch uint64, members []Member, err error) {
	if len(data) < len(gossipMagic) || [3]byte(data[:3]) != gossipMagic {
		return 0, nil, errors.New("cluster: not a gossip packet")
	}
	data = data[3:]
	epoch, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, nil, errors.New("cluster: bad epoch")
	}
	data = data[k:]
	count, k := binary.Uvarint(data)
	if k <= 0 || count > 1<<16 {
		return 0, nil, errors.New("cluster: bad member count")
	}
	data = data[k:]
	members = make([]Member, 0, count)
	for i := uint64(0); i < count; i++ {
		var m Member
		if m, data, err = decodeMember(data); err != nil {
			return 0, nil, err
		}
		members = append(members, m)
	}
	return epoch, members, nil
}

func decodeMember(data []byte) (m Member, rest []byte, err error) {
	for _, dst := range []*string{&m.ID, &m.Addr, &m.GossipAddr} {
		l, k := binary.Uvarint(data)
		if k <= 0 || l > uint64(len(data)-k) {
			return m, nil, errors.New("cluster: bad member string")
		}
		*dst = string(data[k : k+int(l)])
		data = data[k+int(l):]
	}
	var k int
	if m.Incarnation, k = binary.Uvarint(data); k <= 0 {
		return m, nil, errors.New("cluster: bad incarnation")
	}
	data = data[k:]
	if m.Beat, k = binary.Uvarint(data); k <= 0 {
		return m, nil, errors.New("cluster: bad beat")
	}
	data = data[k:]
	if m.Epoch, k = binary.Uvarint(data); k <= 0 {
		return m, nil, errors.New("cluster: bad epoch claim")
	}
	data = data[k:]
	if len(data) < 1 {
		return m, nil, errors.New("cluster: missing state")
	}
	if s := State(data[0]); s > StateDead {
		return m, nil, fmt.Errorf("cluster: unknown state %d", data[0])
	}
	m.State = State(data[0])
	if m.ID == "" {
		return m, nil, errors.New("cluster: member without id")
	}
	return m, data[1:], nil
}
