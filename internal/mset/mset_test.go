package mset

import (
	"testing"
	"testing/quick"
)

func TestGCDTable(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 5, 5},
		{5, 0, 5},
		{1, 1, 1},
		{2, 4, 2},
		{4, 2, 2},
		{3, 7, 1},
		{12, 18, 6},
		{18, 12, 6},
		{17, 17, 17},
		{-12, 18, 6},
		{12, -18, 6},
		{-12, -18, 6},
		{270, 192, 6},
		{1 << 20, 1 << 10, 1 << 10},
	}
	for _, tc := range cases {
		if got := GCD(tc.a, tc.b); got != tc.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int(a), int(b)
		g := GCD(x, y)
		if g != GCD(y, x) {
			return false // commutative
		}
		if g < 0 {
			return false // non-negative
		}
		if x == 0 && y == 0 {
			return g == 0
		}
		if g == 0 {
			return false
		}
		ax, ay := x, y
		if ax < 0 {
			ax = -ax
		}
		if ay < 0 {
			ay = -ay
		}
		return ax%g == 0 && ay%g == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGCDDivisorIsGreatest(t *testing.T) {
	// Every common divisor of a and b divides gcd(a,b).
	for a := 1; a <= 60; a++ {
		for b := 1; b <= 60; b++ {
			g := GCD(a, b)
			for d := 1; d <= a && d <= b; d++ {
				if a%d == 0 && b%d == 0 && g%d != 0 {
					t.Fatalf("common divisor %d of (%d,%d) does not divide gcd %d", d, a, b, g)
				}
			}
		}
	}
}

func TestInMPaperValues(t *testing.T) {
	// M(2) = odd numbers. M(3) = numbers coprime to 2 and 3.
	cases := []struct {
		n, m int
		want bool
	}{
		{2, 1, true}, {2, 2, false}, {2, 3, true}, {2, 4, false}, {2, 5, true},
		{2, 9, true}, {2, 15, true}, {2, 16, false},
		{3, 1, true}, {3, 5, true}, {3, 6, false}, {3, 7, true}, {3, 9, false},
		{3, 25, true}, {3, 35, true},
		{4, 5, true}, {4, 6, false}, {4, 7, true}, {4, 25, true}, {4, 15, false},
		{6, 7, true}, {6, 35, false}, {6, 49, true}, {6, 11, true},
		{1, 1, true}, {1, 2, true}, {1, 100, true}, // vacuous condition
		{5, 0, false}, {5, -3, false}, // invalid m
	}
	for _, tc := range cases {
		if got := InM(tc.n, tc.m); got != tc.want {
			t.Errorf("InM(%d, %d) = %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestInMPrimeFactorCharacterization(t *testing.T) {
	// For m > 1: m ∈ M(n) iff smallest prime factor of m exceeds n.
	for n := 2; n <= 12; n++ {
		for m := 2; m <= 300; m++ {
			want := SmallestPrimeFactor(m) > n
			if got := InM(n, m); got != want {
				t.Errorf("InM(%d, %d) = %v, but smallest prime factor is %d", n, m, got, SmallestPrimeFactor(m))
			}
		}
	}
}

func TestOneAlwaysInM(t *testing.T) {
	for n := 1; n <= 100; n++ {
		if !InM(n, 1) {
			t.Errorf("1 not in M(%d)", n)
		}
	}
}

func TestPrimesAboveNInM(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%20 + 2
		m := int(mRaw) + n + 1
		if !IsPrime(m) {
			return true // only testing primes > n
		}
		return InM(n, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMIsInfiniteSample(t *testing.T) {
	// M(n) contains all primes > n, so Members over a long range is nonempty.
	for n := 2; n <= 10; n++ {
		if len(Members(n, n+1, n*n+100)) == 0 {
			t.Errorf("no members of M(%d) found in a long range", n)
		}
	}
}

func TestWitness(t *testing.T) {
	cases := []struct {
		n, m     int
		wantL    int
		wantBool bool
	}{
		{2, 4, 2, true},
		{3, 9, 3, true},
		{4, 15, 3, true},
		{6, 35, 5, true},
		{6, 49, 7, false}, // 7 > 6 so no witness
		{2, 3, 0, false},
		{5, 1, 0, false},
		{10, 121, 11, false}, // 11 > 10
	}
	for _, tc := range cases {
		l, ok := Witness(tc.n, tc.m)
		if ok != tc.wantBool || (ok && l != tc.wantL) {
			t.Errorf("Witness(%d, %d) = (%d, %v), want (%d, %v)", tc.n, tc.m, l, ok, tc.wantL, tc.wantBool)
		}
	}
}

func TestWitnessIsPrimeAndDividesGCD(t *testing.T) {
	for n := 2; n <= 12; n++ {
		for m := 1; m <= 200; m++ {
			l, ok := Witness(n, m)
			if !ok {
				continue
			}
			if !IsPrime(l) {
				t.Errorf("Witness(%d, %d) = %d is not prime", n, m, l)
			}
			if GCD(l, m) == 1 {
				t.Errorf("Witness(%d, %d) = %d is coprime to m", n, m, l)
			}
		}
	}
}

func TestSmallestPrimeFactor(t *testing.T) {
	cases := []struct{ m, want int }{
		{2, 2}, {3, 3}, {4, 2}, {9, 3}, {15, 3}, {35, 5}, {49, 7},
		{97, 97}, {121, 11}, {143, 11}, {2 * 3 * 5 * 7, 2},
	}
	for _, tc := range cases {
		if got := SmallestPrimeFactor(tc.m); got != tc.want {
			t.Errorf("SmallestPrimeFactor(%d) = %d, want %d", tc.m, got, tc.want)
		}
	}
}

func TestSmallestPrimeFactorPanics(t *testing.T) {
	for _, m := range []int{1, 0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SmallestPrimeFactor(%d) did not panic", m)
				}
			}()
			SmallestPrimeFactor(m)
		}()
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 97: true, 101: true}
	for m := -3; m <= 101; m++ {
		want := primes[m]
		if m > 1 && !want {
			// verify by trial division
			want = true
			for d := 2; d*d <= m; d++ {
				if m%d == 0 {
					want = false
					break
				}
			}
		}
		if got := IsPrime(m); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", m, got, want)
		}
	}
}

func TestNextPrimeAfter(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 2}, {1, 2}, {2, 3}, {3, 5}, {4, 5}, {5, 7}, {6, 7},
		{7, 11}, {10, 11}, {13, 17}, {100, 101},
	}
	for _, tc := range cases {
		if got := NextPrimeAfter(tc.n); got != tc.want {
			t.Errorf("NextPrimeAfter(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestMinRW(t *testing.T) {
	cases := []struct{ n, want int }{
		{2, 3}, {3, 5}, {4, 5}, {5, 7}, {6, 7}, {7, 11}, {8, 11}, {10, 11}, {12, 13},
	}
	for _, tc := range cases {
		got := MinRW(tc.n)
		if got != tc.want {
			t.Errorf("MinRW(%d) = %d, want %d", tc.n, got, tc.want)
		}
		if err := ValidateRW(tc.n, got); err != nil {
			t.Errorf("ValidateRW(%d, MinRW) failed: %v", tc.n, err)
		}
		// Minimality: nothing smaller (and >= n) validates.
		for m := tc.n; m < got; m++ {
			if ValidateRW(tc.n, m) == nil {
				t.Errorf("m=%d < MinRW(%d) unexpectedly validates", m, tc.n)
			}
		}
	}
}

func TestMinRWPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinRW(1) did not panic")
		}
	}()
	MinRW(1)
}

func TestMinRMW(t *testing.T) {
	for n := 2; n <= 20; n++ {
		if got := MinRMW(n); got != 1 {
			t.Errorf("MinRMW(%d) = %d, want 1", n, got)
		}
		if got := MinRMWAbove(n); got != MinRW(n) {
			t.Errorf("MinRMWAbove(%d) = %d, want %d", n, got, MinRW(n))
		}
	}
}

func TestMembersNonMembersPartition(t *testing.T) {
	for n := 2; n <= 8; n++ {
		lo, hi := 1, 120
		mem := Members(n, lo, hi)
		non := NonMembers(n, lo, hi)
		if len(mem)+len(non) != hi-lo+1 {
			t.Fatalf("n=%d: partition sizes %d + %d != %d", n, len(mem), len(non), hi-lo+1)
		}
		seen := make(map[int]bool)
		for _, m := range mem {
			if !InM(n, m) {
				t.Errorf("Members(%d) contains non-member %d", n, m)
			}
			seen[m] = true
		}
		for _, m := range non {
			if InM(n, m) {
				t.Errorf("NonMembers(%d) contains member %d", n, m)
			}
			if seen[m] {
				t.Errorf("%d in both Members and NonMembers for n=%d", m, n)
			}
		}
	}
}

func TestMembersM2AreOdd(t *testing.T) {
	for _, m := range Members(2, 1, 101) {
		if m%2 == 0 {
			t.Errorf("M(2) member %d is even", m)
		}
	}
	if got, want := len(Members(2, 1, 101)), 51; got != want {
		t.Errorf("|M(2) ∩ [1,101]| = %d, want %d", got, want)
	}
}

func TestValidateRW(t *testing.T) {
	cases := []struct {
		n, m   int
		wantOK bool
	}{
		{2, 3, true},
		{2, 5, true},
		{2, 2, false}, // m not coprime with 2, also m==n
		{2, 1, false}, // m < n
		{3, 5, true},
		{3, 4, false},  // gcd(2,4)
		{3, 3, false},  // gcd(3,3)
		{4, 25, true},  // composite member: 25 = 5*5, 5 > 4
		{4, 35, true},  // 5*7 both > 4
		{6, 35, false}, // 5 <= 6 divides 35
		{1, 3, false},  // n too small
		{4, 0, false},
	}
	for _, tc := range cases {
		err := ValidateRW(tc.n, tc.m)
		if (err == nil) != tc.wantOK {
			t.Errorf("ValidateRW(%d, %d) error = %v, want ok=%v", tc.n, tc.m, err, tc.wantOK)
		}
	}
}

func TestValidateRMW(t *testing.T) {
	cases := []struct {
		n, m   int
		wantOK bool
	}{
		{2, 1, true}, // the degenerate single-register case is legal for RMW
		{2, 3, true},
		{2, 2, false},
		{3, 1, true},
		{3, 7, true},
		{3, 6, false},
		{5, 49, true},
		{7, 49, false},
		{1, 1, false}, // n too small
		{3, 0, false},
	}
	for _, tc := range cases {
		err := ValidateRMW(tc.n, tc.m)
		if (err == nil) != tc.wantOK {
			t.Errorf("ValidateRMW(%d, %d) error = %v, want ok=%v", tc.n, tc.m, err, tc.wantOK)
		}
	}
}

func TestValidateRWImpliesGreaterThanN(t *testing.T) {
	// The paper notes m ∈ M(n), m ≥ n, n ≥ 2 forces m > n.
	for n := 2; n <= 10; n++ {
		for m := 1; m <= 200; m++ {
			if ValidateRW(n, m) == nil && m <= n {
				t.Errorf("ValidateRW(%d, %d) passed with m <= n", n, m)
			}
		}
	}
}

func TestEqualSplitPossible(t *testing.T) {
	cases := []struct {
		cnt, m int
		want   bool
	}{
		{2, 4, true}, {2, 3, false}, {3, 9, true}, {3, 5, false},
		{1, 7, true}, {4, 8, true}, {5, 7, false}, {0, 5, false}, {2, 0, false},
	}
	for _, tc := range cases {
		if got := EqualSplitPossible(tc.cnt, tc.m); got != tc.want {
			t.Errorf("EqualSplitPossible(%d, %d) = %v, want %v", tc.cnt, tc.m, got, tc.want)
		}
	}
}

func TestTieBreakGuarantee(t *testing.T) {
	// The algorithmic heart of the paper: if m ∈ M(n), then for every
	// number of competitors cnt with 1 < cnt <= n, an equal split of the m
	// registers is impossible, so somebody is below average and must back
	// off.
	for n := 2; n <= 10; n++ {
		for _, m := range Members(n, 2, 250) {
			for cnt := 2; cnt <= n; cnt++ {
				if !BelowAverageExists(cnt, m) {
					t.Errorf("m=%d ∈ M(%d) but cnt=%d can split evenly", m, n, cnt)
				}
			}
		}
	}
}

func TestNonMemberHasEqualSplit(t *testing.T) {
	// Conversely, m ∉ M(n) (m ≥ 1) admits some cnt ≤ n dividing m: the
	// Theorem 5 adversary uses exactly that ℓ.
	for n := 2; n <= 10; n++ {
		for _, m := range NonMembers(n, 1, 250) {
			l, ok := Witness(n, m)
			if !ok {
				t.Fatalf("NonMembers returned m=%d with no witness for n=%d", m, n)
			}
			if m%l != 0 {
				// Witness guarantees gcd > 1; for the ring construction we
				// need a divisor. The smallest prime witness always divides m.
				t.Errorf("witness %d does not divide m=%d (n=%d)", l, m, n)
			}
		}
	}
}

func TestQuickValidateConsistency(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%10 + 2
		m := int(mRaw)%150 + 1
		rw := ValidateRW(n, m) == nil
		rmw := ValidateRMW(n, m) == nil
		// RW-legal implies RMW-legal (RW has the extra m >= n clause).
		if rw && !rmw {
			return false
		}
		// RMW-legal and m >= n implies RW-legal.
		if rmw && m >= n && !rw {
			return false
		}
		// Both agree with InM up to their extra clauses.
		return rmw == InM(n, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
