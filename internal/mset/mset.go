// Package mset implements the number theory behind the paper's space
// characterization.
//
// The central object is the set
//
//	M(n) = { m : ∀ ℓ, 1 < ℓ ≤ n : gcd(ℓ, m) = 1 }
//
// introduced by Taubenfeld (PODC 2017) and shown by the paper to be a tight
// characterization of the anonymous-memory sizes m for which symmetric
// deadlock-free mutual exclusion is solvable:
//
//   - RW registers:  solvable ⟺ m ∈ M(n) \ {1}  (equivalently m ∈ M(n), m ≥ n)
//   - RMW registers: solvable ⟺ m ∈ M(n)
//
// A useful equivalent form used throughout this package: for m > 1,
// m ∈ M(n) exactly when the smallest prime factor of m is greater than n.
// In particular every member of M(n) other than 1 is strictly greater than
// n, and the smallest such member is the smallest prime above n.
package mset

import "fmt"

// GCD returns the greatest common divisor of a and b by the Euclidean
// algorithm. GCD(0, 0) = 0; otherwise the result is positive. Negative
// inputs are treated by absolute value.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// InM reports whether m ∈ M(n), i.e. gcd(ℓ, m) = 1 for every ℓ with
// 1 < ℓ ≤ n. It returns false for m < 1. For n < 2 the condition is vacuous
// and every m ≥ 1 is a member.
func InM(n, m int) bool {
	if m < 1 {
		return false
	}
	_, ok := Witness(n, m)
	return !ok
}

// Witness returns the smallest ℓ with 1 < ℓ ≤ n and gcd(ℓ, m) > 1, i.e. a
// witness that m ∉ M(n), together with ok = true. If m ∈ M(n) (no witness
// exists), it returns ok = false.
//
// When a witness exists, the smallest one is always prime: if gcd(ℓ, m) > 1
// then some prime factor p of ℓ also divides m and p ≤ ℓ.
func Witness(n, m int) (l int, ok bool) {
	if m < 1 {
		return 0, false
	}
	for l = 2; l <= n; l++ {
		if GCD(l, m) != 1 {
			return l, true
		}
	}
	return 0, false
}

// SmallestPrimeFactor returns the smallest prime factor of m ≥ 2. It panics
// if m < 2.
func SmallestPrimeFactor(m int) int {
	if m < 2 {
		panic(fmt.Sprintf("mset: SmallestPrimeFactor(%d): argument must be >= 2", m))
	}
	if m%2 == 0 {
		return 2
	}
	for p := 3; p*p <= m; p += 2 {
		if m%p == 0 {
			return p
		}
	}
	return m
}

// IsPrime reports whether m is prime (trial division; intended for the
// small m used by experiments and tests).
func IsPrime(m int) bool {
	return m >= 2 && SmallestPrimeFactor(m) == m
}

// NextPrimeAfter returns the smallest prime strictly greater than n.
func NextPrimeAfter(n int) int {
	if n < 1 {
		return 2
	}
	for m := n + 1; ; m++ {
		if IsPrime(m) {
			return m
		}
	}
}

// MinRW returns the smallest legal anonymous memory size for the RW-model
// algorithm (Algorithm 1) with n ≥ 2 processes: the smallest m with
// m ∈ M(n) and m ≥ n. By the prime-factor characterization this is the
// smallest prime greater than n. It panics if n < 2.
func MinRW(n int) int {
	if n < 2 {
		panic(fmt.Sprintf("mset: MinRW(%d): n must be >= 2", n))
	}
	return NextPrimeAfter(n)
}

// MinRMW returns the smallest legal anonymous memory size for the RMW-model
// algorithm (Algorithm 2) with n ≥ 2 processes. M(n) always contains 1 (the
// degenerate single-register case the paper discusses), so this is 1.
func MinRMW(n int) int {
	if n < 2 {
		panic(fmt.Sprintf("mset: MinRMW(%d): n must be >= 2", n))
	}
	return 1
}

// MinRMWAbove returns the smallest m ∈ M(n) with m > 1 — the smallest
// non-degenerate RMW memory size, equal to MinRW(n).
func MinRMWAbove(n int) int { return MinRW(n) }

// Members returns every m in [lo, hi] with m ∈ M(n), in increasing order.
func Members(n, lo, hi int) []int {
	if lo < 1 {
		lo = 1
	}
	var out []int
	for m := lo; m <= hi; m++ {
		if InM(n, m) {
			out = append(out, m)
		}
	}
	return out
}

// NonMembers returns every m in [lo, hi] with m ∉ M(n), in increasing
// order. These are the sizes for which Theorem 5 applies: each has a
// divisor ℓ with 1 < ℓ ≤ n.
func NonMembers(n, lo, hi int) []int {
	if lo < 1 {
		lo = 1
	}
	var out []int
	for m := lo; m <= hi; m++ {
		if !InM(n, m) {
			out = append(out, m)
		}
	}
	return out
}

// ValidateRW checks the precondition of Algorithm 1: n ≥ 2 processes and
// m ∈ M(n) with m ≥ n (equivalently m ∈ M(n), m ≠ 1). The returned error
// explains which clause fails and, when applicable, names the witness ℓ.
func ValidateRW(n, m int) error {
	if n < 2 {
		return fmt.Errorf("mset: need n >= 2 processes, got n=%d", n)
	}
	if m < n {
		return fmt.Errorf("mset: RW model needs m >= n registers (Burns-Lynch), got m=%d < n=%d", m, n)
	}
	if l, bad := Witness(n, m); bad {
		return fmt.Errorf("mset: m=%d not in M(%d): gcd(%d, %d) = %d > 1 (Theorem 5 applies)", m, n, l, m, GCD(l, m))
	}
	return nil
}

// ValidateRMW checks the precondition of Algorithm 2: n ≥ 2 and m ∈ M(n)
// (m = 1 is allowed; the single register is then effectively
// non-anonymous).
func ValidateRMW(n, m int) error {
	if n < 2 {
		return fmt.Errorf("mset: need n >= 2 processes, got n=%d", n)
	}
	if m < 1 {
		return fmt.Errorf("mset: need m >= 1 registers, got m=%d", m)
	}
	if l, bad := Witness(n, m); bad {
		return fmt.Errorf("mset: m=%d not in M(%d): gcd(%d, %d) = %d > 1 (Theorem 5 applies)", m, n, l, m, GCD(l, m))
	}
	return nil
}

// EqualSplitPossible reports whether cnt ≥ 1 processes can own exactly the
// same number of registers with all m registers owned — i.e. whether
// cnt divides m. The impossibility of an equal split for every
// 1 < cnt ≤ n is precisely why m ∈ M(n) lets Algorithms 1 and 2 break ties:
// when the memory is full, some competitor must be strictly below average.
func EqualSplitPossible(cnt, m int) bool {
	return cnt >= 1 && m >= 1 && m%cnt == 0
}

// BelowAverageExists reports whether, for any way cnt processes can own all
// m registers (each owning ≥ 1), at least one process must own strictly
// fewer than m/cnt. This is equivalent to cnt not dividing m.
func BelowAverageExists(cnt, m int) bool {
	return cnt >= 1 && m >= 1 && !EqualSplitPossible(cnt, m)
}
