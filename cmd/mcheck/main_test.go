package main

import "testing"

func TestRunLegal(t *testing.T) {
	cases := [][]string{
		{"-alg", "rw", "-n", "2", "-m", "3"},
		{"-alg", "rmw", "-n", "2", "-m", "3"},
		{"-alg", "rmw", "-n", "2", "-m", "1"},
		{"-alg", "rmw", "-n", "2", "-m", "3", "-sessions", "2"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "bogus"},
		{"-alg", "rw", "-n", "2", "-m", "4"}, // illegal without -force
		{"-zzz"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseAlg(t *testing.T) {
	for _, s := range []string{"rw", "rmw", "greedy"} {
		if _, err := parseAlg(s); err != nil {
			t.Errorf("parseAlg(%q): %v", s, err)
		}
	}
	if _, err := parseAlg("x"); err == nil {
		t.Error("parseAlg accepted garbage")
	}
}
