// Command mcheck exhaustively model-checks a mutual exclusion
// configuration: it enumerates every reachable state under every
// interleaving and verifies mutual exclusion and deadlock-freedom.
//
// Usage:
//
//	mcheck -alg rw  -n 2 -m 3          # verify Algorithm 1 on a legal size
//	mcheck -alg rmw -n 2 -m 2 -force   # find the Theorem 5 trap
//	mcheck -alg greedy -n 2 -m 2       # watch a broken protocol fail
package main

import (
	"flag"
	"fmt"
	"os"

	"anonmutex/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mcheck", flag.ContinueOnError)
	algName := fs.String("alg", "rw", "algorithm: rw, rmw, or greedy")
	n := fs.Int("n", 2, "number of processes")
	m := fs.Int("m", 3, "number of anonymous registers")
	sessions := fs.Int("sessions", 1, "lock/unlock cycles per process")
	maxStates := fs.Int("max-states", 1_000_000, "state bound")
	force := fs.Bool("force", false, "allow m outside M(n) (lower-bound experiments)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, err := parseAlg(*algName)
	if err != nil {
		return err
	}

	res, err := sim.Check(sim.Config{
		Algorithm: alg,
		N:         *n, M: *m,
		Sessions:  *sessions,
		Unchecked: *force || alg == sim.Greedy,
		MaxSteps:  *maxStates,
	})
	if err != nil {
		return err
	}

	fmt.Printf("configuration: %v, n=%d, m=%d, sessions=%d\n", alg, *n, *m, *sessions)
	fmt.Printf("states: %d   transitions: %d   complete: %v\n", res.States, res.Transitions, res.Complete)
	fmt.Printf("critical-section entry edges: %d\n", res.Entries)
	fmt.Println()
	if res.MEViolations > 0 {
		fmt.Printf("MUTUAL EXCLUSION VIOLATED in %d states\n  witness: %s\n", res.MEViolations, res.MEWitness)
	} else {
		fmt.Println("mutual exclusion: holds in every reachable state")
	}
	if res.Traps > 0 {
		fmt.Printf("DEADLOCK-FREEDOM VIOLATED: %d trap states (pending work, no completion reachable)\n  witness: %s\n", res.Traps, res.TrapWitness)
	} else {
		fmt.Println("deadlock-freedom: every reachable state can still complete a lock/unlock")
	}
	if !res.OK() {
		os.Exit(2)
	}
	return nil
}

func parseAlg(s string) (sim.Algorithm, error) {
	switch s {
	case "rw":
		return sim.RW, nil
	case "rmw":
		return sim.RMW, nil
	case "greedy":
		return sim.Greedy, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want rw, rmw, or greedy)", s)
	}
}
