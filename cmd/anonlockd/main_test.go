package main

import (
	"net"
	"testing"
	"time"

	"anonmutex/lockd/client"
)

// TestServeAndShutdown boots the daemon on an ephemeral loopback port
// and stops it immediately through the test hook.
func TestServeAndShutdown(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-handles", "2"}, stop)
	}()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSessionAgainstDaemon runs a session against the daemon on a
// pre-reserved loopback port.
func TestSessionAgainstDaemon(t *testing.T) {
	addr := pickAddr(t)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", addr, "-handles", "2"}, stop) }()
	c := dialRetry(t, addr)
	defer c.Close()
	if err := c.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("k"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acquires != 1 || st.Violations != 0 {
		t.Errorf("stats = %+v", st)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-alg", "greedy"}, nil); err == nil {
		t.Error("run with unknown algorithm succeeded")
	}
	if err := run([]string{"-addr", "256.256.256.256:1"}, nil); err == nil {
		t.Error("run with unusable address succeeded")
	}
}

// pickAddr finds a free loopback port by binding and releasing it.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func dialRetry(t *testing.T, addr string) *client.Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := client.DialConn(addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("dialing %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
