package main

import (
	"net"
	"testing"
	"time"

	"anonmutex/lockd/client"
)

// TestServeAndShutdown boots the daemon on an ephemeral loopback port
// and stops it immediately through the test hook.
func TestServeAndShutdown(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-handles", "2"}, stop)
	}()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestSessionAgainstDaemon runs a session against the daemon on a
// pre-reserved loopback port.
func TestSessionAgainstDaemon(t *testing.T) {
	addr := pickAddr(t)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", addr, "-handles", "2"}, stop) }()
	c := dialRetry(t, addr)
	defer c.Close()
	if err := c.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("k"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acquires != 1 || st.Violations != 0 {
		t.Errorf("stats = %+v", st)
	}
	c.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-alg", "greedy"}, nil); err == nil {
		t.Error("run with unknown algorithm succeeded")
	}
	if err := run([]string{"-addr", "256.256.256.256:1"}, nil); err == nil {
		t.Error("run with unusable address succeeded")
	}
	if err := run([]string{"-data-dir", t.TempDir()}, nil); err == nil {
		t.Error("run with -data-dir but no -lease-ttl succeeded")
	}
	if err := run([]string{"-data-dir", t.TempDir(), "-lease-ttl", "1s", "-fsync", "sometimes"}, nil); err == nil {
		t.Error("run with an unknown -fsync policy succeeded")
	}
}

// TestDurableDaemonCycle boots the daemon journaling into a directory,
// holds and releases a key, drains it, and boots it again on the same
// directory: the graceful cycle must come up clean (the release was
// journaled, so there is nothing to recover).
func TestDurableDaemonCycle(t *testing.T) {
	dir := t.TempDir()
	for cycle := 0; cycle < 2; cycle++ {
		addr := pickAddr(t)
		stop := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", addr, "-handles", "2", "-lease-ttl", "2s", "-data-dir", dir}, stop)
		}()
		c := dialRetry(t, addr)
		if err := c.Acquire("dk"); err != nil {
			t.Fatal(err)
		}
		if tok := c.Token("dk"); tok == 0 {
			t.Fatal("no fencing token from the durable daemon")
		}
		if err := c.Release("dk"); err != nil {
			t.Fatal(err)
		}
		c.Close()
		close(stop)
		if err := <-done; err != nil {
			t.Fatalf("cycle %d: run: %v", cycle, err)
		}
	}
}

// pickAddr finds a free loopback port by binding and releasing it.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func dialRetry(t *testing.T, addr string) *client.Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := client.DialConn(addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("dialing %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
