// Command anonlockd serves the lockd network lock service: named locks
// backed by anonymous-register mutexes, sharded and lease-pooled by
// internal/lockmgr, over the TCP protocol in package lockd. Both wire
// formats are served on the one port: clients leading with the binary
// magic get the multiplexed framed protocol, everything else is
// newline-JSON — no configuration needed on either side.
//
// Usage:
//
//	anonlockd                               # serve on :7117
//	anonlockd -addr 127.0.0.1:9000          # explicit bind address
//	anonlockd -alg rw -handles 4 -shards 8  # lock-manager tuning
//	anonlockd -max-wait 50ms                # abort any acquire past 50ms
//	anonlockd -max-frame 262144             # cap binary frames at 256 KiB
//	anonlockd -lease-ttl 2s                 # crash safety: fencing tokens +
//	                                        # TTL expiry of silent holders
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// sessions get a drain window, and every session grant is released.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "anonlockd:", err)
		os.Exit(1)
	}
}

// run serves until stop fires (tests) or a termination signal arrives
// (stop == nil).
func run(args []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("anonlockd", flag.ContinueOnError)
	addr := fs.String("addr", ":7117", "listen address")
	alg := fs.String("alg", "rmw", "per-name lock algorithm: rw or rmw")
	handles := fs.Int("handles", 8, "process handles per named lock (max concurrent competitors)")
	registers := fs.Int("registers", 0, "anonymous registers per lock (0: smallest legal size)")
	shards := fs.Int("shards", 16, "lock-manager shards")
	maxLocks := fs.Int("max-locks", 1024, "resident locks per shard before LRU eviction")
	seed := fs.Uint64("seed", 1, "anonymity-adversary seed")
	maxWait := fs.Duration("max-wait", 0, "server-side cap on any acquire wait; longer waits abort cleanly (0: unlimited)")
	maxFrame := fs.Int("max-frame", 0, "byte cap on one binary frame; an oversized frame is a protocol error (0: the built-in default)")
	leaseTTL := fs.Duration("lease-ttl", 0, "run grants under leases: acquires carry fencing tokens and holders that stop heartbeating for this long are forcibly revoked (0: leases off)")
	leaseGrace := fs.Duration("lease-grace", 0, "post-expiry quarantine during which a revoked grant's stale token still answers with a fenced rejection (0: the lease TTL)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mgr, err := lockmgr.New(lockmgr.Config{
		Shards:           *shards,
		Algorithm:        *alg,
		HandlesPerLock:   *handles,
		Registers:        *registers,
		MaxLocksPerShard: *maxLocks,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("anonlockd: serving on %s (alg=%s handles=%d shards=%d)\n",
		ln.Addr(), *alg, *handles, *shards)

	srv := lockd.NewServer(mgr)
	srv.MaxWait = *maxWait
	srv.MaxFrameBytes = *maxFrame
	srv.LeaseTTL = *leaseTTL
	srv.LeaseGrace = *leaseGrace
	if *leaseTTL > 0 {
		fmt.Printf("anonlockd: leases on (ttl=%v)\n", *leaseTTL)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case err := <-serveErr:
			return err
		case s := <-sig:
			fmt.Printf("anonlockd: %v, draining\n", s)
		}
	} else {
		select {
		case err := <-serveErr:
			return err
		case <-stop:
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Print(mgr.StatsTable().String())
	return mgr.Close()
}
