// Command anonlockd serves the lockd network lock service: named locks
// backed by anonymous-register mutexes, sharded and lease-pooled by
// internal/lockmgr, over the TCP protocol in package lockd. Both wire
// formats are served on the one port: clients leading with the binary
// magic get the multiplexed framed protocol, everything else is
// newline-JSON — no configuration needed on either side.
//
// Usage:
//
//	anonlockd                               # serve on :7117
//	anonlockd -addr 127.0.0.1:9000          # explicit bind address
//	anonlockd -alg rw -handles 4 -shards 8  # lock-manager tuning
//	anonlockd -max-wait 50ms                # abort any acquire past 50ms
//	anonlockd -max-frame 262144             # cap binary frames at 256 KiB
//	anonlockd -lease-ttl 2s                 # crash safety: fencing tokens +
//	                                        # TTL expiry of silent holders
//	anonlockd -lease-ttl 2s -data-dir /var/lib/anonlockd \
//	          -fsync always                 # durable: grants survive kill -9
//	                                        # and recover on the next start
//	anonlockd -node-id a -gossip-addr :7118 \
//	          -join host-b:7118,host-c:7118 \
//	          -lease-ttl 2s                 # clustered: gossip membership,
//	                                        # per-key ownership, redirects
//	anonlockd -node-id a -gossip-addr :7118 \
//	          -join host-b:7118 -lease-ttl 2s \
//	          -proxy                        # proxy mode: forward foreign-key
//	                                        # ops to their owner instead of
//	                                        # redirecting the client
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// sessions get a drain window, every session grant is released, and the
// lease journal (when -data-dir is set) is synced and closed — a clean
// restart recovers nothing, while a killed process's next start
// recovers every grant that was live.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "anonlockd:", err)
		os.Exit(1)
	}
}

// run serves until stop fires (tests) or a termination signal arrives
// (stop == nil).
func run(args []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("anonlockd", flag.ContinueOnError)
	addr := fs.String("addr", ":7117", "listen address")
	alg := fs.String("alg", "rmw", "per-name lock algorithm: rw or rmw")
	handles := fs.Int("handles", 8, "process handles per named lock (max concurrent competitors)")
	registers := fs.Int("registers", 0, "anonymous registers per lock (0: smallest legal size)")
	shards := fs.Int("shards", 16, "lock-manager shards")
	maxLocks := fs.Int("max-locks", 1024, "resident locks per shard before LRU eviction")
	seed := fs.Uint64("seed", 1, "anonymity-adversary seed")
	maxWait := fs.Duration("max-wait", 0, "server-side cap on any acquire wait; longer waits abort cleanly (0: unlimited)")
	maxFrame := fs.Int("max-frame", 0, "byte cap on one binary frame; an oversized frame is a protocol error (0: the built-in default)")
	leaseTTL := fs.Duration("lease-ttl", 0, "run grants under leases: acquires carry fencing tokens and holders that stop heartbeating for this long are forcibly revoked (0: leases off)")
	leaseGrace := fs.Duration("lease-grace", 0, "post-expiry quarantine during which a revoked grant's stale token still answers with a fenced rejection (0: the lease TTL)")
	dataDir := fs.String("data-dir", "", "directory for the durable lease journal: grants survive kill -9 and the next start on the same directory recovers them (needs -lease-ttl)")
	fsyncPolicy := fs.String("fsync", "always", "journal fsync policy: always (commit before every ack), interval (background fsync every -fsync-interval), off (OS page cache only)")
	fsyncEvery := fs.Duration("fsync-interval", 0, "background fsync period under -fsync interval (0: the journal default)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
	nodeID := fs.String("node-id", "", "this node's cluster identity; setting it (or any cluster flag) turns clustering on")
	gossipAddr := fs.String("gossip-addr", "", "UDP address for membership gossip (clustered mode)")
	join := fs.String("join", "", "comma-separated peer gossip addresses to join through; peers need not be up yet")
	gossipEvery := fs.Duration("gossip-interval", 0, "membership heartbeat period (0: the cluster default)")
	advertise := fs.String("advertise", "", "lock-service address redirects send clients to (default: the listen address)")
	proxy := fs.Bool("proxy", false, "clustered mode: forward ops for keys this node does not own to their owner over pooled inter-node connections, answering the client in one round trip instead of redirecting it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clustered := *nodeID != "" || *gossipAddr != "" || *join != "" || *advertise != ""
	if clustered {
		if *nodeID == "" || *gossipAddr == "" {
			return fmt.Errorf("clustered serving needs both -node-id and -gossip-addr")
		}
		if *leaseTTL <= 0 {
			return fmt.Errorf("clustered serving needs -lease-ttl: lease handoff is what makes ownership moves safe")
		}
	}
	if *proxy && !clustered {
		return fmt.Errorf("-proxy needs clustered serving: it forwards between cluster members")
	}
	if *dataDir != "" && *leaseTTL <= 0 {
		return fmt.Errorf("-data-dir needs -lease-ttl: the journal records lease transitions")
	}

	mgr, err := lockmgr.New(lockmgr.Config{
		Shards:           *shards,
		Algorithm:        *alg,
		HandlesPerLock:   *handles,
		Registers:        *registers,
		MaxLocksPerShard: *maxLocks,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("anonlockd: serving on %s (alg=%s handles=%d shards=%d)\n",
		ln.Addr(), *alg, *handles, *shards)

	srv := lockd.NewServer(mgr)
	srv.MaxWait = *maxWait
	srv.MaxFrameBytes = *maxFrame
	srv.LeaseTTL = *leaseTTL
	srv.LeaseGrace = *leaseGrace
	if *leaseTTL > 0 {
		fmt.Printf("anonlockd: leases on (ttl=%v)\n", *leaseTTL)
	}
	if *dataDir != "" {
		srv.Durability = lockd.Durability{Dir: *dataDir, Fsync: *fsyncPolicy, FsyncInterval: *fsyncEvery}
		fmt.Printf("anonlockd: durability on (dir=%s fsync=%s)\n", *dataDir, *fsyncPolicy)
	}
	if clustered {
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		var seeds []string
		for _, s := range strings.Split(*join, ",") {
			if s = strings.TrimSpace(s); s != "" {
				seeds = append(seeds, s)
			}
		}
		node, err := cluster.Start(cluster.Config{
			ID:         *nodeID,
			Addr:       adv,
			GossipAddr: *gossipAddr,
			Seeds:      seeds,
			Interval:   *gossipEvery,
			Logf: func(format string, args ...any) {
				fmt.Printf("anonlockd: "+format+"\n", args...)
			},
		})
		if err != nil {
			ln.Close()
			return err
		}
		defer node.Close()
		srv.Cluster = node
		srv.Proxy = *proxy
		fmt.Printf("anonlockd: cluster node %s gossiping on %s (seeds: %s)\n",
			*nodeID, node.GossipAddr(), *join)
		if *proxy {
			fmt.Println("anonlockd: proxy mode on (foreign-key ops forwarded to their owners)")
		}
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if *dataDir != "" {
		// Journal recovery runs inside Serve before the accept loop, so
		// the first successful ping means the recovered count is final.
		// The probe is a real protocol ping: the kernel accepts TCP into
		// the listen backlog long before Serve finishes recovering.
		go func() {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				c, err := client.DialConn(ln.Addr().String())
				if err == nil {
					err = c.Ping()
					c.Close()
					if err == nil {
						fmt.Printf("anonlockd: recovered %d leases from %s\n", srv.Recovered(), *dataDir)
						return
					}
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case err := <-serveErr:
			return err
		case s := <-sig:
			fmt.Printf("anonlockd: %v, draining\n", s)
		}
	} else {
		select {
		case err := <-serveErr:
			return err
		case <-stop:
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Print(mgr.StatsTable().String())
	return mgr.Close()
}
