package main

import "testing"

func TestRunVariants(t *testing.T) {
	cases := [][]string{
		{"-alg", "rw", "-n", "2", "-m", "3"},
		{"-alg", "rmw", "-n", "2", "-m", "3", "-sched", "random", "-seed", "9", "-sessions", "2"},
		{"-alg", "rmw", "-n", "3", "-m", "1", "-cs-ticks", "2"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-trace", "50"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-honest-snapshots"},
		{"-alg", "rw", "-n", "2", "-m", "4", "-force", "-sched", "lockstep",
			"-perms", "rotation", "-rotation-step", "2", "-detect-cycles"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-perms", "random", "-perm-seed", "3"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "bogus"},
		{"-sched", "bogus"},
		{"-perms", "bogus"},
		{"-alg", "rw", "-n", "2", "-m", "4"}, // illegal size without -force
		{"-nosuchflag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
