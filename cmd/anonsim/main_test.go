package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunVariants(t *testing.T) {
	cases := [][]string{
		{"-alg", "rw", "-n", "2", "-m", "3"},
		{"-alg", "rmw", "-n", "2", "-m", "3", "-sched", "random", "-seed", "9", "-sessions", "2"},
		{"-alg", "rmw", "-n", "3", "-m", "1", "-cs-ticks", "2"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-trace", "50"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-honest-snapshots"},
		{"-alg", "rw", "-n", "2", "-m", "4", "-force", "-sched", "lockstep",
			"-perms", "rotation", "-rotation-step", "2", "-detect-cycles"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-perms", "random", "-perm-seed", "3"},
		{"-alg", "rw", "-n", "3", "-m", "0"}, // m derived from n
		{"-alg", "rmw", "-n", "3", "-m", "1", "-sessions", "2", "-cs-ticks", "2",
			"-workload", "bursty", "-workload-seed", "5"},
		{"-alg", "rmw", "-n", "3", "-m", "1", "-workload", "skewed", "-substrate", "real"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunScenarios(t *testing.T) {
	cases := [][]string{
		{"-list-scenarios"},
		{"-scenario", "smoke-rw"},
		{"-scenario", "lockstep-livelock"},
		{"-scenario", "smoke-rmw", "-substrate", "real"},
		{"-scenario", "contended-rw", "-dump-scenario"},
		{"-alg", "rmw", "-n", "2", "-m", "3", "-substrate", "real"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-dump-scenario"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunScenarioFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{"algorithm": "rmw", "n": 2, "m": 3, "sessions": 2}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario-file", path}); err != nil {
		t.Errorf("run(-scenario-file): %v", err)
	}
	if err := run([]string{"-scenario-file", path, "-substrate", "real"}); err != nil {
		t.Errorf("run(-scenario-file -substrate real): %v", err)
	}
}

func TestRunWorkloadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traffic.json")
	traffic := `{"profile": "bursty", "base_cs": 3, "base_remainder": 4, "seed": 11}`
	if err := os.WriteFile(path, []byte(traffic), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-scenario", "smoke-rmw", "-workload-file", path, "-substrate", "real"},
		{"-alg", "rmw", "-n", "2", "-m", "3", "-cs-ticks", "2", "-workload-file", path},
		{"-scenario", "smoke-rw", "-workload-file", path, "-dump-scenario"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "bogus"},
		{"-sched", "bogus"},
		{"-perms", "bogus"},
		{"-alg", "rw", "-n", "2", "-m", "4"}, // illegal size without -force
		{"-nosuchflag"},
		{"-scenario", "no-such-scenario"},
		{"-scenario-file", "/no/such/file.json"},
		{"-scenario", "smoke-rw", "-scenario-file", "x.json"}, // mutually exclusive
		{"-scenario", "smoke-rw", "-substrate", "bogus"},
		{"-scenario", "lockstep-livelock", "-substrate", "real"}, // unchecked size
		{"-alg", "greedy", "-n", "2", "-m", "3", "-substrate", "real"},
		{"-alg", "rw", "-n", "2", "-m", "3", "-workload", "pareto"}, // unknown profile fails loudly
		{"-workload-file", "/no/such/traffic.json"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
