// Command anonsim runs one deterministic simulated execution of an
// anonymous-memory mutual exclusion algorithm and reports its outcome,
// optionally dumping the event trace.
//
// Usage:
//
//	anonsim -alg rw -n 3 -m 5 -sched random -seed 7 -sessions 2
//	anonsim -alg rmw -n 2 -m 4 -force -sched lockstep -perms rotation -rotation-step 2 -detect-cycles
//	anonsim -alg rw -n 2 -m 3 -trace 200
package main

import (
	"flag"
	"fmt"
	"os"

	"anonmutex/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anonsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("anonsim", flag.ContinueOnError)
	algName := fs.String("alg", "rw", "algorithm: rw, rmw, or greedy")
	n := fs.Int("n", 2, "number of processes")
	m := fs.Int("m", 3, "number of anonymous registers")
	force := fs.Bool("force", false, "allow m outside M(n)")
	sessions := fs.Int("sessions", 1, "lock/unlock cycles per process")
	csTicks := fs.Int("cs-ticks", 0, "scheduler ticks spent inside the CS")
	schedName := fs.String("sched", "rr", "schedule: rr, random, or lockstep")
	seed := fs.Uint64("seed", 1, "schedule seed (random schedule)")
	permsName := fs.String("perms", "identity", "permutations: identity, random, or rotation")
	permSeed := fs.Uint64("perm-seed", 1, "permutation seed (random permutations)")
	rotationStep := fs.Int("rotation-step", 1, "rotation step (rotation permutations)")
	honest := fs.Bool("honest-snapshots", false, "schedule each double-scan read separately")
	detect := fs.Bool("detect-cycles", false, "stop with a livelock verdict on a repeated state")
	maxSteps := fs.Int("max-steps", 1_000_000, "step bound")
	traceCap := fs.Int("trace", 0, "print up to this many trace events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var alg sim.Algorithm
	switch *algName {
	case "rw":
		alg = sim.RW
	case "rmw":
		alg = sim.RMW
	case "greedy":
		alg = sim.Greedy
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	var schedule sim.Schedule
	switch *schedName {
	case "rr":
		schedule = sim.RoundRobin
	case "random":
		schedule = sim.RandomSchedule
	case "lockstep":
		schedule = sim.LockStepSchedule
	default:
		return fmt.Errorf("unknown schedule %q", *schedName)
	}
	var perms sim.Permutations
	switch *permsName {
	case "identity":
		perms = sim.IdentityPerms
	case "random":
		perms = sim.RandomPerms
	case "rotation":
		perms = sim.RotationPerms
	default:
		return fmt.Errorf("unknown permutations %q", *permsName)
	}

	res, err := sim.Run(sim.Config{
		Algorithm: alg,
		N:         *n, M: *m,
		Unchecked:       *force || alg == sim.Greedy,
		Sessions:        *sessions,
		CSTicks:         *csTicks,
		Schedule:        schedule,
		Seed:            *seed,
		Perms:           perms,
		PermSeed:        *permSeed,
		RotationStep:    *rotationStep,
		HonestSnapshots: *honest,
		DetectCycles:    *detect,
		MaxSteps:        *maxSteps,
		TraceCap:        *traceCap,
	})
	if err != nil {
		return err
	}

	fmt.Printf("algorithm %v, n=%d, m=%d, schedule %s, permutations %s\n", alg, *n, *m, *schedName, *permsName)
	fmt.Printf("steps: %d   entries: %d   completed: %v\n", res.Steps, res.Entries, res.Completed)
	if res.CycleDetected {
		fmt.Printf("LIVELOCK: global state repeated (cycle entered at step %d) — no invocation will ever complete\n", res.CycleStart)
	}
	if res.MEViolations > 0 {
		fmt.Printf("MUTUAL EXCLUSION VIOLATED %d time(s)\n", res.MEViolations)
	}
	fmt.Println()
	fmt.Printf("%-5s %-9s %-8s %-9s %-9s %-10s %-10s\n", "proc", "sessions", "entries", "bypasses", "max-wait", "mean-wait", "owned@entry")
	for i, ps := range res.PerProc {
		fmt.Printf("p%-4d %-9d %-8d %-9d %-9d %-10.1f %-10d\n",
			i, ps.Sessions, ps.Entries, ps.Bypasses, ps.MaxWaitSteps, ps.MeanWait, ps.OwnedAtEntry)
	}
	if len(res.TraceLines) > 0 {
		fmt.Println("\ntrace:")
		for _, line := range res.TraceLines {
			fmt.Println(" ", line)
		}
	}
	if res.MEViolations > 0 {
		os.Exit(2)
	}
	return nil
}
