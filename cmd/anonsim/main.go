// Command anonsim runs one execution of an anonymous-memory mutual
// exclusion algorithm — described by flags, a named scenario, or a
// scenario JSON file — on either substrate, and reports its outcome.
//
// Usage:
//
//	anonsim -alg rw -n 3 -m 5 -sched random -seed 7 -sessions 2
//	anonsim -alg rmw -n 2 -m 4 -force -sched lockstep -perms rotation -rotation-step 2 -detect-cycles
//	anonsim -alg rw -n 2 -m 3 -trace 200
//	anonsim -alg rmw -n 4 -m 5 -sessions 3 -cs-ticks 2 -workload bursty
//	anonsim -scenario contended-rw -workload-file traffic.json -substrate real
//	anonsim -list-scenarios
//	anonsim -scenario contended-rw
//	anonsim -scenario contended-rw -substrate real
//	anonsim -scenario lockstep-livelock -dump-scenario > wedge.json
//	anonsim -scenario-file wedge.json
//
// The scenario's traffic comes from the unified workload model:
// -workload names a session profile (uniform, bursty, skewed) and
// -workload-file attaches a full traffic spec (internal/workload.Spec
// JSON) to whatever scenario is being run — both substrates consume it
// (per-session spin work on the real locks, per-session CS ticks on the
// simulated scheduler when -cs-ticks is set).
package main

import (
	"flag"
	"fmt"
	"os"

	"anonmutex/internal/scenario"
	"anonmutex/internal/workload"
	"anonmutex/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anonsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("anonsim", flag.ContinueOnError)
	algName := fs.String("alg", "rw", "algorithm: rw, rmw, or greedy")
	n := fs.Int("n", 2, "number of processes")
	m := fs.Int("m", 3, "number of anonymous registers (0: smallest legal size)")
	force := fs.Bool("force", false, "allow m outside M(n)")
	sessions := fs.Int("sessions", 1, "lock/unlock cycles per process")
	csTicks := fs.Int("cs-ticks", 0, "scheduler ticks spent inside the CS")
	schedName := fs.String("sched", "rr", "schedule: rr, random, or lockstep")
	seed := fs.Uint64("seed", 1, "schedule seed (random schedule)")
	permsName := fs.String("perms", "identity", "permutations: identity, random, or rotation")
	permSeed := fs.Uint64("perm-seed", 1, "permutation seed (random permutations)")
	rotationStep := fs.Int("rotation-step", 1, "rotation step (rotation permutations)")
	honest := fs.Bool("honest-snapshots", false, "schedule each double-scan read separately")
	workloadName := fs.String("workload", "", "session profile for the scenario's traffic model: uniform, bursty, or skewed")
	workloadSeed := fs.Uint64("workload-seed", 0, "traffic-model seed")
	workloadFile := fs.String("workload-file", "", "full traffic-model JSON file (internal/workload.Spec schema) attached to the scenario")
	detect := fs.Bool("detect-cycles", false, "stop with a livelock verdict on a repeated state")
	maxSteps := fs.Int("max-steps", 1_000_000, "step bound")
	traceCap := fs.Int("trace", 0, "print up to this many trace events")
	scenarioName := fs.String("scenario", "", "run a registered scenario instead of building one from flags")
	scenarioFile := fs.String("scenario-file", "", "run a scenario spec from a JSON file")
	substrate := fs.String("substrate", "sim", "execution substrate: sim (deterministic scheduler) or real (goroutines over hardware-atomic memory)")
	listScenarios := fs.Bool("list-scenarios", false, "list registered scenarios and exit")
	dump := fs.Bool("dump-scenario", false, "print the scenario's JSON spec instead of running it")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listScenarios {
		for _, name := range sim.Scenarios() {
			spec, err := scenario.Lookup(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %s\n", name, spec.Doc)
		}
		return nil
	}

	var spec scenario.Spec
	switch {
	case *scenarioName != "" && *scenarioFile != "":
		return fmt.Errorf("-scenario and -scenario-file are mutually exclusive")
	case *scenarioName != "":
		s, err := scenario.Lookup(*scenarioName)
		if err != nil {
			return err
		}
		spec = s
	case *scenarioFile != "":
		data, err := os.ReadFile(*scenarioFile)
		if err != nil {
			return err
		}
		s, err := scenario.ParseJSON(data)
		if err != nil {
			return err
		}
		spec = s
	default:
		spec = scenario.Spec{
			Algorithm:       *algName,
			N:               *n,
			M:               *m,
			Unchecked:       *force || *algName == scenario.AlgGreedy,
			Sessions:        *sessions,
			CSTicks:         *csTicks,
			Schedule:        *schedName,
			Seed:            *seed,
			Perms:           *permsName,
			PermSeed:        *permSeed,
			RotationStep:    *rotationStep,
			HonestSnapshots: *honest,
			DetectCycles:    *detect,
			MaxSteps:        *maxSteps,
			TraceCap:        *traceCap,
		}
		s, err := spec.Normalize()
		if err != nil {
			return err
		}
		spec = s
	}

	// Attach the traffic-model overrides to whatever scenario was
	// selected, then re-normalize (idempotent for untouched specs).
	if *workloadFile != "" {
		data, err := os.ReadFile(*workloadFile)
		if err != nil {
			return err
		}
		tspec, err := workload.ParseJSON(data)
		if err != nil {
			return err
		}
		spec.Traffic = tspec
		spec.Workload = "" // the file owns the profile now
		spec.WorkloadSeed = 0
	}
	if *workloadName != "" {
		spec.Workload = *workloadName
		spec.Traffic.Profile = "" // the shorthand wins the profile
	}
	if *workloadSeed != 0 {
		spec.WorkloadSeed = *workloadSeed
		spec.Traffic.Seed = 0
	}
	{
		s, err := spec.Normalize()
		if err != nil {
			return err
		}
		spec = s
	}

	if *dump {
		data, err := spec.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	switch *substrate {
	case "sim":
		return runSim(spec)
	case "real":
		return runReal(spec)
	default:
		return fmt.Errorf("unknown substrate %q (want sim or real)", *substrate)
	}
}

func runSim(spec scenario.Spec) error {
	res, err := sim.RunSpec(spec)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm %s, n=%d, m=%d, schedule %s, permutations %s, substrate sim\n",
		spec.Algorithm, spec.N, spec.M, spec.Schedule, spec.Perms)
	fmt.Printf("steps: %d   entries: %d   completed: %v\n", res.Steps, res.Entries, res.Completed)
	if res.CycleDetected {
		fmt.Printf("LIVELOCK: global state repeated (cycle entered at step %d) — no invocation will ever complete\n", res.CycleStart)
	}
	if res.MEViolations > 0 {
		fmt.Printf("MUTUAL EXCLUSION VIOLATED %d time(s)\n", res.MEViolations)
	}
	fmt.Println()
	fmt.Printf("%-5s %-9s %-8s %-9s %-9s %-10s %-10s\n", "proc", "sessions", "entries", "bypasses", "max-wait", "mean-wait", "owned@entry")
	for i, ps := range res.PerProc {
		fmt.Printf("p%-4d %-9d %-8d %-9d %-9d %-10.1f %-10d\n",
			i, ps.Sessions, ps.Entries, ps.Bypasses, ps.MaxWaitSteps, ps.MeanWait, ps.OwnedAtEntry)
	}
	if len(res.TraceLines) > 0 {
		fmt.Println("\ntrace:")
		for _, line := range res.TraceLines {
			fmt.Println(" ", line)
		}
	}
	if res.MEViolations > 0 {
		os.Exit(2)
	}
	return nil
}

func runReal(spec scenario.Spec) error {
	res, err := scenario.RunReal(spec)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm %s, n=%d, m=%d, workload %s, substrate real\n",
		spec.Algorithm, spec.N, spec.M, spec.Workload)
	fmt.Printf("entries: %d   ME violations: %d\n", res.Entries, res.MEViolations)
	fmt.Println()
	fmt.Printf("%-5s %-9s %-12s %-10s\n", "proc", "sessions", "owned@entry", "lock-steps")
	for i, ps := range res.PerProc {
		fmt.Printf("p%-4d %-9d %-12d %-10d\n", i, ps.Sessions, ps.OwnedAtEntry, ps.LockSteps)
	}
	if res.MEViolations > 0 {
		os.Exit(2)
	}
	return nil
}
