package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// T1 is instantaneous; the full suite is exercised by the
	// internal/experiments tests.
	if err := run([]string{"-experiment", "T1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallel(t *testing.T) {
	if err := run([]string{"-experiment", "T1", "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// wrote.
func captureStdout(t *testing.T, f func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- buf
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

func TestRunJSONOutput(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-experiment", "T1", "-json"})
	})
	var results []struct {
		ID      string  `json:"id"`
		Title   string  `json:"title"`
		Seconds float64 `json:"seconds"`
		Table   struct {
			Title  string     `json:"title"`
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
			Notes  []string   `json:"notes"`
		} `json:"table"`
	}
	if err := json.Unmarshal(out, &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "T1" {
		t.Fatalf("unexpected results: %+v", results)
	}
	if len(results[0].Table.Rows) == 0 || len(results[0].Table.Header) == 0 {
		t.Fatalf("empty table in JSON output: %+v", results[0].Table)
	}
}

func TestRunWorkloadFileParameterizesS4(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traffic.json")
	spec := `{
		"keys": {"dist": "zipf", "zipf_s": 1.2},
		"arrival": {"process": "poisson", "rate_per_sec": 5000},
		"ops": {"timed": 1, "timeout_ms": 10}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run([]string{"-experiment", "S4", "-workload-file", path, "-json"})
	})
	var results []struct {
		ID    string `json:"id"`
		Table struct {
			Rows [][]string `json:"rows"`
		} `json:"table"`
	}
	if err := json.Unmarshal(out, &results); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "S4" {
		t.Fatalf("unexpected results: %+v", results)
	}
	if len(results[0].Table.Rows) != 2 {
		t.Fatalf("S4 with -workload-file should run the spec on both backends, got %d rows", len(results[0].Table.Rows))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-qqq"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-experiment", "T1", "-workload-file", "nope.json"}); err == nil {
		t.Error("-workload-file without S4 accepted")
	}
	if err := run([]string{"-experiment", "S4", "-workload-file", "/no/such.json"}); err == nil {
		t.Error("missing workload file accepted")
	}
}
