package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// T1 is instantaneous; the full suite is exercised by the
	// internal/experiments tests.
	if err := run([]string{"-experiment", "T1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-qqq"}); err == nil {
		t.Error("bad flag accepted")
	}
}
