// Command anonbench runs the reproduction experiment suite: one
// experiment per paper artifact (Table I, Figures 1-2, Table II,
// Theorem 5) plus the quantitative additions, printing paper-style
// tables.
//
// Usage:
//
//	anonbench                    # run everything
//	anonbench -experiment T2     # one experiment
//	anonbench -list              # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"anonmutex/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("anonbench", flag.ContinueOnError)
	expID := fs.String("experiment", "", "run a single experiment by id (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var toRun []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		toRun = append(toRun, e)
	} else {
		toRun = experiments.All()
	}

	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Printf("[%s] %s  (%.2fs)\n", e.ID, e.Title, time.Since(start).Seconds())
		fmt.Print(tbl.String())
	}
	return nil
}
