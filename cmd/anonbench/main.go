// Command anonbench runs the reproduction experiment suite: one
// experiment per paper artifact (Table I, Figures 1-2, Table II,
// Theorem 5) plus the quantitative additions and the scenario-registry
// sweep, printing paper-style tables or machine-readable JSON.
//
// Usage:
//
//	anonbench                    # run everything, serially
//	anonbench -parallel 0        # run everything on GOMAXPROCS workers
//	anonbench -experiment T2     # one experiment
//	anonbench -list              # list experiment ids
//	anonbench -json              # JSON results (presentation order)
//	anonbench -parallel 4 -json > BENCH_results.json
//	anonbench -experiment S4 -workload-file zipf-openloop.json
//
// -workload-file parameterizes the S4 open-load experiment with a
// caller-supplied traffic model (internal/workload.Spec JSON, open-loop
// arrivals required): the spec runs against both service backends
// instead of the default backend × distribution × rate grid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"anonmutex/internal/experiments"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(1)
	}
}

// resultJSON is one experiment's machine-readable record.
type resultJSON struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Seconds float64      `json:"seconds"`
	Table   *stats.Table `json:"table"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("anonbench", flag.ContinueOnError)
	expID := fs.String("experiment", "", "run a single experiment by id (default: all)")
	list := fs.Bool("list", false, "list experiments and exit")
	parallel := fs.Int("parallel", 1, "worker-pool size for running experiments concurrently (0: GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit results as JSON instead of text tables")
	workloadFile := fs.String("workload-file", "", "traffic-model JSON file (internal/workload.Spec, open-loop) that parameterizes the S4 experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var toRun []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		toRun = append(toRun, e)
	} else {
		toRun = experiments.All()
	}

	if *workloadFile != "" {
		data, err := os.ReadFile(*workloadFile)
		if err != nil {
			return err
		}
		spec, err := workload.ParseJSON(data)
		if err != nil {
			return err
		}
		replaced := false
		for i, e := range toRun {
			if e.ID == "S4" {
				toRun[i].Title = fmt.Sprintf("Open-loop load: %s (both backends)", *workloadFile)
				toRun[i].Run = func() (*stats.Table, error) {
					return experiments.OpenLoadSweepWith(spec)
				}
				replaced = true
			}
		}
		if !replaced {
			return fmt.Errorf("-workload-file parameterizes S4, but S4 is not selected (use -experiment S4 or run the full suite)")
		}
	}

	// Serial text mode streams each table as its experiment finishes (the
	// historical behavior). Pooled and JSON runs collect first: JSON must
	// be one valid document, and pooled completion order is not
	// presentation order.
	if !*jsonOut && *parallel == 1 {
		for i, e := range toRun {
			if i > 0 {
				fmt.Println()
			}
			start := time.Now()
			tbl, err := e.Run()
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			fmt.Printf("[%s] %s  (%.2fs)\n", e.ID, e.Title, time.Since(start).Seconds())
			fmt.Print(tbl.String())
		}
		return nil
	}

	outcomes := experiments.RunConcurrent(toRun, *parallel)

	if *jsonOut {
		for _, o := range outcomes {
			if o.Err != nil {
				return fmt.Errorf("experiment %s: %w", o.ID, o.Err)
			}
		}
		results := make([]resultJSON, len(outcomes))
		for i, o := range outcomes {
			results[i] = resultJSON{
				ID:      o.ID,
				Title:   o.Title,
				Seconds: o.Elapsed.Seconds(),
				Table:   o.Table,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}

	// Pooled text mode: print every completed table in presentation order
	// before reporting the first failure, so one broken experiment does
	// not discard the rest of the run.
	var firstErr error
	for i, o := range outcomes {
		if i > 0 {
			fmt.Println()
		}
		if o.Err != nil {
			fmt.Printf("[%s] %s  FAILED: %v\n", o.ID, o.Title, o.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment %s: %w", o.ID, o.Err)
			}
			continue
		}
		fmt.Printf("[%s] %s  (%.2fs)\n", o.ID, o.Title, o.Elapsed.Seconds())
		fmt.Print(o.Table.String())
	}
	return firstErr
}
