package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunInproc(t *testing.T) {
	cases := [][]string{
		{"-clients", "4", "-keys", "4", "-cycles", "80"},
		{"-clients", "4", "-keys", "4", "-cycles", "80", "-dist", "skewed", "-alg", "rw", "-handles", "2"},
		{"-clients", "2", "-keys", "2", "-cycles", "40", "-dist", "bursty", "-json"},
		{"-clients", "2", "-keys", "2", "-duration", "50ms"},
		{"-clients", "2", "-keys", "4", "-cycles", "40",
			"-workload", `{"keys":{"dist":"zipf","zipf_s":1.2}}`},
		{"-clients", "2", "-keys", "4", "-cycles", "60", "-json",
			"-workload", `{"keys":{"dist":"hotset"},"arrival":{"process":"poisson","rate_per_sec":20000},"ops":{"timed":1,"timeout_ms":50}}`},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunWorkloadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{
		"seed": 9,
		"keys": {"dist": "zipf", "zipf_s": 1.1},
		"arrival": {"process": "bursty", "rate_per_sec": 30000, "burst_size": 4},
		"ops": {"timed": 1, "timeout_ms": 20}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-clients", "2", "-keys", "4", "-cycles", "60", "-workload-file", path}); err != nil {
		t.Errorf("run(-workload-file): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "quantum"},
		{"-dist", "pareto", "-cycles", "10"},
		{"-alg", "greedy", "-cycles", "10"},
		{"-clients", "-1", "-cycles", "10"},
		{"-mode", "net", "-addr", "127.0.0.1:1", "-clients", "1", "-cycles", "1"}, // nothing listening
		{"-workload", `{"profile":"pareto"}`, "-cycles", "10"},                    // unknown profile fails loudly
		{"-workload", `{"keyz":{}}`, "-cycles", "10"},                             // unknown field fails loudly
		{"-workload", `{}`, "-workload-file", "x.json"},                           // mutually exclusive
		{"-workload", `{}`, "-dist", "skewed", "-cycles", "10"},                   // alias vs spec conflict
		{"-workload", `{}`, "-op-timeout", "5ms", "-cycles", "10"},                // alias vs spec conflict
		{"-workload-file", "/no/such/spec.json", "-cycles", "10"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
