package main

import (
	"testing"
)

func TestRunInproc(t *testing.T) {
	cases := [][]string{
		{"-clients", "4", "-keys", "4", "-cycles", "80"},
		{"-clients", "4", "-keys", "4", "-cycles", "80", "-dist", "skewed", "-alg", "rw", "-handles", "2"},
		{"-clients", "2", "-keys", "2", "-cycles", "40", "-dist", "bursty", "-json"},
		{"-clients", "2", "-keys", "2", "-duration", "50ms"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "quantum"},
		{"-dist", "pareto", "-cycles", "10"},
		{"-alg", "greedy", "-cycles", "10"},
		{"-clients", "-1", "-cycles", "10"},
		{"-mode", "net", "-addr", "127.0.0.1:1", "-clients", "1", "-cycles", "1"}, // nothing listening
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
