// Command anonload drives a named-lock backend under load and reports
// latency and throughput, with a mutual-exclusion owner check inside
// every critical section. It can hammer an in-process lock manager
// (-mode inproc, the default) or a running anonlockd service over TCP
// (-mode net -addr host:port).
//
// The traffic comes from the repository's unified workload model: pass
// a full spec with -workload (inline JSON) or -workload-file (a JSON
// file; see internal/workload.Spec for the schema) to choose the key
// distribution (uniform, zipf, hotset, shifting-hotset), the arrival
// process (closed loop, or open-loop poisson/bursty at an offered
// rate), the op mix (blocking / try / deadline-bounded), and the
// session profile. The older -dist/-cs/-think/-op-timeout flags remain
// as deprecated aliases for the common cases.
//
// Usage:
//
//	anonload -clients 64 -keys 32 -cycles 2000
//	anonload -mode net -addr 127.0.0.1:7117 -dist skewed -duration 10s
//	anonload -mode net -proto binary -mux 16 -clients 64 -cycles 20000
//	anonload -op-timeout 5ms -clients 64 -keys 4       # per-acquire SLA
//	anonload -workload-file zipf-openloop.json -duration 5s
//	anonload -mode net -heartbeat 500ms -workload '{"ops":{"lock":0.95,"crash":0.05}}' -duration 5s
//	anonload -workload '{"keys":{"dist":"zipf"},"arrival":{"process":"poisson","rate_per_sec":50000},"ops":{"timed":1,"timeout_ms":5}}' -duration 2s
//	anonload -json > BENCH_load.json
//
// With deadline-bounded ops every acquire carries a deadline: attempts
// that cannot complete in time withdraw cleanly (the abortable-mutex
// back-out) and are reported as an abort count and rate rather than an
// error. Open-loop runs additionally report offered versus achieved
// throughput and shed arrivals.
//
// The JSON output is an array of {id, title, seconds, table} records —
// the same shape anonbench emits — so runs slot into BENCH_*.json
// trajectories. The command exits nonzero if any mutual-exclusion
// violation is observed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"anonmutex/internal/lease"
	"anonmutex/internal/loadgen"
	"anonmutex/internal/lockmgr"
	"anonmutex/internal/stats"
	"anonmutex/internal/workload"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "anonload:", err)
		os.Exit(1)
	}
}

// record matches anonbench's machine-readable result element.
type record struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Seconds float64      `json:"seconds"`
	Table   *stats.Table `json:"table"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("anonload", flag.ContinueOnError)
	mode := fs.String("mode", "inproc", "backend: inproc (own lock manager) or net (a lockd service)")
	addr := fs.String("addr", "127.0.0.1:7117", "lockd address, or a comma-separated cluster address list (net mode)")
	proto := fs.String("proto", "json", "net-mode wire protocol: json (newline-delimited, one session per socket) or binary (multiplexed frames)")
	mux := fs.Int("mux", 0, "net mode: logical sessions per socket, implies -proto binary (0: the spec's conns_per_socket, else one socket per client)")
	clients := fs.Int("clients", 64, "concurrent clients")
	keys := fs.Int("keys", 32, "distinct lock names")
	cycles := fs.Int("cycles", 2000, "total acquire/release cycles (0: run for -duration)")
	duration := fs.Duration("duration", 0, "wall-clock bound (0: run until -cycles)")
	workloadJSON := fs.String("workload", "", "inline workload-spec JSON (the unified traffic model; see internal/workload.Spec)")
	workloadFile := fs.String("workload-file", "", "workload-spec JSON file (same schema as -workload)")
	dist := fs.String("dist", "uniform", "deprecated alias: key/profile shorthand (uniform, bursty, or skewed); use -workload instead")
	seed := fs.Uint64("seed", 1, "workload seed (overrides the spec's seed when set explicitly)")
	cs := fs.Int("cs", 1, "deprecated alias: critical-section spin units (the spec's base_cs)")
	think := fs.Int("think", 1, "deprecated alias: between-cycle spin units (the spec's base_remainder)")
	opTimeout := fs.Duration("op-timeout", 0, "deprecated alias: per-acquire deadline; expired attempts abort cleanly and are counted (0: unbounded)")
	heartbeat := fs.Duration("heartbeat", 0, "background heartbeat interval per client session — keep under the backend's lease TTL (0: no heartbeats)")
	tolerateLoss := fs.Bool("tolerate-grant-loss", false, "net mode: count grants lost to fencing or node failure instead of failing the run (cluster failover workloads; exclusion is judged by the servers' counters)")
	leaseTTL := fs.Duration("lease-ttl", 0, "inproc mode: run grants under a lease manager with this TTL, enabling crash ops and fencing (0: leases off; net mode takes the TTL from the server)")
	alg := fs.String("alg", "rmw", "per-name lock algorithm (inproc mode): rw or rmw")
	handles := fs.Int("handles", 8, "process handles per named lock (inproc mode)")
	shards := fs.Int("shards", 16, "lock-manager shards (inproc mode)")
	maxLocks := fs.Int("max-locks", 1024, "resident locks per shard (inproc mode)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *duration > 0 && !flagSet(fs, "cycles") {
		*cycles = 0 // -duration alone means "run for that long"
	}

	cfg := loadgen.Config{
		Clients:  *clients,
		Keys:     *keys,
		Cycles:   *cycles,
		Duration: *duration,
		Seed:     *seed,
	}
	switch {
	case *workloadJSON != "" && *workloadFile != "":
		return fmt.Errorf("-workload and -workload-file are mutually exclusive")
	case *workloadJSON != "" || *workloadFile != "":
		// The unified spec owns the traffic; the deprecated aliases
		// cannot silently fight it.
		for _, name := range []string{"dist", "cs", "think", "op-timeout"} {
			if flagSet(fs, name) {
				return fmt.Errorf("-%s cannot be combined with -workload/-workload-file (put it in the spec)", name)
			}
		}
		data := []byte(*workloadJSON)
		if *workloadFile != "" {
			var err error
			if data, err = os.ReadFile(*workloadFile); err != nil {
				return err
			}
		}
		spec, err := workload.ParseJSON(data)
		if err != nil {
			return err
		}
		if flagSet(fs, "seed") {
			spec.Seed = *seed
		}
		cfg.Workload = &spec
	default:
		// The deprecated alias fields are populated only when their flags
		// were explicitly given (loadgen warns once about them); a plain
		// run takes the unified model's path with the same defaults.
		if flagSet(fs, "dist") || flagSet(fs, "cs") || flagSet(fs, "think") || flagSet(fs, "op-timeout") {
			cfg.Dist = *dist
			cfg.CSWork = *cs
			cfg.ThinkWork = *think
			cfg.OpTimeout = *opTimeout
		} else {
			cfg.Workload = &workload.Spec{BaseCS: *cs, BaseRemainder: *think}
		}
	}

	var (
		backendTable *stats.Table
		violations   uint64
	)
	switch *mode {
	case "inproc":
		mgr, err := lockmgr.New(lockmgr.Config{
			Shards:           *shards,
			Algorithm:        *alg,
			HandlesPerLock:   *handles,
			MaxLocksPerShard: *maxLocks,
			Seed:             *seed,
		})
		if err != nil {
			return err
		}
		if *leaseTTL > 0 {
			// Lease-backed sessions: grants carry fencing tokens, crash
			// ops orphan keys that TTL expiry recovers, and each client
			// session heartbeats on its own ticker.
			hb := *heartbeat
			if hb == 0 {
				hb = *leaseTTL / 4
			}
			lm, err := lease.New(mgr, lease.Config{TTL: *leaseTTL})
			if err != nil {
				mgr.Close()
				return err
			}
			cfg.NewLocker = func(int) (loadgen.Locker, error) {
				return loadgen.NewLeaseLocker(lm, hb), nil
			}
			res, err := loadgen.Run(cfg)
			if err != nil {
				return err
			}
			lm.Close() // revokes crash orphans so the manager closes clean
			violations = uint64(res.Violations) + mgr.Violations()
			res.Backend = fmt.Sprintf("inproc lease-ttl=%v", *leaseTTL)
			backendTable = mgr.StatsTable()
			if err := mgr.Close(); err != nil {
				return err
			}
			return report(*jsonOut, res, backendTable, violations)
		}
		cfg.NewLocker = func(int) (loadgen.Locker, error) {
			return loadgen.NewManagerLocker(mgr), nil
		}
		res, err := loadgen.Run(cfg)
		if err != nil {
			return err
		}
		violations = uint64(res.Violations) + mgr.Violations()
		res.Backend = "inproc"
		backendTable = mgr.StatsTable()
		if err := mgr.Close(); err != nil {
			return err
		}
		return report(*jsonOut, res, backendTable, violations)
	case "net":
		var addrs []string
		for _, a := range strings.Split(*addr, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		perSocket := *mux
		if perSocket == 0 && cfg.Workload != nil {
			perSocket = cfg.Workload.ConnsPerSocket
		}
		if perSocket < 0 {
			return fmt.Errorf("-mux must be positive, got %d", perSocket)
		}
		useBinary := *proto == "binary" || perSocket > 0
		switch *proto {
		case "binary":
		case "json":
			if flagSet(fs, "proto") && perSocket > 0 {
				return fmt.Errorf("-mux multiplexes the binary transport; it cannot be combined with -proto json")
			}
		default:
			return fmt.Errorf("unknown -proto %q (want json or binary)", *proto)
		}
		// One unified client serves every transport shape: sessions carry
		// crash ops and heartbeats themselves, and a multi-address list
		// makes them cluster-routed (redirects followed, ownership
		// cached, grants pinned to the node that issued them).
		opts := client.Options{
			Addrs:     addrs,
			Proto:     client.ProtoJSON,
			Heartbeat: *heartbeat,
		}
		label := fmt.Sprintf("net %s proto=json", strings.Join(addrs, ","))
		if useBinary {
			if perSocket < 1 {
				perSocket = 1
			}
			cfg.ConnsPerSocket = perSocket
			opts.Proto = client.ProtoBinary
			opts.ConnsPerSocket = perSocket
			label = fmt.Sprintf("net %s proto=binary mux=%d", strings.Join(addrs, ","), perSocket)
		}
		cl, err := client.Dial(opts)
		if err != nil {
			return err
		}
		defer cl.Close()
		cfg.TolerateGrantLoss = *tolerateLoss
		cfg.NewLocker = func(int) (loadgen.Locker, error) {
			s, err := cl.Open()
			if err != nil {
				return nil, err
			}
			return s, nil
		}
		res, err := loadgen.Run(cfg)
		if err != nil {
			return err
		}
		res.Backend = label
		// The servers' own cross-check is the authoritative violation
		// count; fold it in via a final stats sweep (summed across every
		// reachable address — a failover run's dead node stays out).
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		violations = uint64(res.Violations) + st.Violations
		return report(*jsonOut, res, serverTable(st), violations)
	default:
		return fmt.Errorf("unknown mode %q (want inproc or net)", *mode)
	}
}

func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// serverTable renders a lockd stats snapshot as a table.
func serverTable(st lockd.Stats) *stats.Table {
	t := &stats.Table{
		Title: "lockd server counters",
		Header: []string{"acquires", "releases", "waits", "aborts", "lease-timeouts",
			"try-fail", "creates", "evictions", "resident", "expired", "revoked",
			"fenced", "sessions", "streams", "violations"},
	}
	t.AddRow(st.Acquires, st.Releases, st.Waits, st.Aborts, st.LeaseTimeouts,
		st.TryFailures, st.LockCreates, st.Evictions, st.ResidentLocks, st.Expired,
		st.Revoked, st.FencedRejects, st.Sessions, st.Streams, st.Violations)
	return t
}

// report prints the run (and backend counters) and fails on violations.
func report(jsonOut bool, res *loadgen.Result, backend *stats.Table, violations uint64) error {
	if jsonOut {
		records := []record{{ID: "LOAD", Title: "anonload run", Seconds: res.Seconds, Table: res.Table()}}
		if backend != nil {
			records = append(records, record{ID: "LOAD-BACKEND", Title: backend.Title, Table: backend})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			return err
		}
	} else {
		fmt.Print(res.Table().String())
		if backend != nil {
			fmt.Println()
			fmt.Print(backend.String())
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d mutual-exclusion violations observed", violations)
	}
	return nil
}
