package main

import "testing"

func TestRunVariants(t *testing.T) {
	cases := [][]string{
		{"-n", "6"},
		{"-n", "6", "-m", "35"},
		{"-n", "6", "-m", "7"},
		{"-n", "4", "-lo", "1", "-hi", "20"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},           // missing -n
		{"-n", "1"},  // n too small
		{"-badflag"}, // flag parse error
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
