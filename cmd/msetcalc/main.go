// Command msetcalc computes the paper's M(n) characterization: membership
// of a given memory size, minimum legal sizes, and membership tables.
//
// Usage:
//
//	msetcalc -n 6                 # summary for n processes
//	msetcalc -n 6 -m 35           # is m legal? which witness if not?
//	msetcalc -n 6 -lo 1 -hi 50    # membership table over a range
package main

import (
	"flag"
	"fmt"
	"os"

	"anonmutex/mnum"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "msetcalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("msetcalc", flag.ContinueOnError)
	n := fs.Int("n", 0, "number of processes (required, >= 2)")
	m := fs.Int("m", 0, "memory size to test (optional)")
	lo := fs.Int("lo", 0, "range start for a membership table (optional)")
	hi := fs.Int("hi", 0, "range end for a membership table (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("need -n >= 2")
	}

	fmt.Printf("M(%d) = { m : gcd(l, m) = 1 for every 1 < l <= %d }\n", *n, *n)
	fmt.Printf("smallest legal RW size (m >= n):  %d\n", mnum.MinRW(*n))
	fmt.Printf("smallest legal RMW size:          %d (degenerate); %d above 1\n",
		mnum.MinRMW(*n), mnum.MinRMWAbove(*n))

	if *m > 0 {
		fmt.Println()
		if mnum.InM(*n, *m) {
			fmt.Printf("m=%d ∈ M(%d): legal for RMW", *m, *n)
			if err := mnum.ValidateRW(*n, *m); err == nil {
				fmt.Printf(" and RW")
			} else {
				fmt.Printf("; RW additionally needs m >= n")
			}
			fmt.Println()
		} else {
			l, _ := mnum.Witness(*n, *m)
			fmt.Printf("m=%d ∉ M(%d): witness ℓ=%d divides m — Theorem 5 rules out any algorithm\n", *m, *n, l)
		}
	}

	if *hi >= *lo && *hi > 0 {
		fmt.Println()
		fmt.Printf("%-6s %-8s %s\n", "m", "member", "witness")
		for v := max(1, *lo); v <= *hi; v++ {
			if mnum.InM(*n, v) {
				fmt.Printf("%-6d %-8v %s\n", v, true, "-")
			} else {
				l, _ := mnum.Witness(*n, v)
				fmt.Printf("%-6d %-8v ℓ=%d\n", v, false, l)
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
