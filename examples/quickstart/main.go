// Quickstart: guard a shared counter with an anonymous read/write-register
// lock (the paper's Algorithm 1).
//
// Four goroutines share a memory of five anonymous registers — the optimal
// size for n=4, since 5 is the smallest member of M(4) that is ≥ 4. Every
// goroutine gets a process handle; the anonymity adversary (seeded random
// permutations) ensures no two of them agree on register names, and the
// lock works anyway.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync"

	"anonmutex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, itersPerProc = 4, 250

	lock, err := anonmutex.NewRWLock(n) // m = 5 registers, chosen automatically
	if err != nil {
		return err
	}
	fmt.Printf("anonymous RW lock: n=%d processes, m=%d registers (M(n)-optimal)\n", lock.N(), lock.M())

	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p, err := lock.NewProcess()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < itersPerProc; k++ {
				if err := p.Lock(); err != nil {
					panic(err) // unreachable with correct usage
				}
				counter++ // the critical section
				if err := p.Unlock(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("counter = %d (want %d)\n", counter, n*itersPerProc)
	if counter != n*itersPerProc {
		return fmt.Errorf("mutual exclusion violated")
	}
	fmt.Println("mutual exclusion held: every increment was applied")
	return nil
}
