// Baselines: what does anonymity cost?
//
// The same workload — n goroutines, each performing a fixed number of
// lock-protected counter increments — runs over:
//
//   - the anonymous RW lock (Algorithm 1, random permutations),
//   - the anonymous RMW lock (Algorithm 2, random permutations),
//   - the same two locks "de-anonymized" (identity permutations), to
//     isolate algorithm cost from anonymity cost,
//   - the single-register RMW lock (m=1 ∈ M(n): effectively a CAS lock),
//   - sync.Mutex as the runtime floor.
//
// Expect the anonymous RW lock to be by far the slowest — its entry
// requires snapshotting until one process owns all m registers — the RMW
// lock to be much cheaper (majority entry), and both to be slower than
// the non-anonymous floor. The paper's claim is computability ("it is
// possible at all, and with optimally few registers"), not speed; this
// example shows the price of the weaker model.
//
// Run with: go run ./examples/baselines
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"anonmutex"
)

// locker is one goroutine's handle on some lock.
type locker interface {
	Lock() error
	Unlock() error
}

// errless adapts error-free locks (sync.Mutex) to the handle interface.
type errless struct{ mu *sync.Mutex }

func (e errless) Lock() error   { e.mu.Lock(); return nil }
func (e errless) Unlock() error { e.mu.Unlock(); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "baselines:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, iters = 3, 120

	type contender struct {
		name  string
		procs []locker
	}
	var cs []contender

	add := func(name string, mk func() ([]locker, error)) error {
		procs, err := mk()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		cs = append(cs, contender{name: name, procs: procs})
		return nil
	}

	mkAnon := func(opts ...anonmutex.Option) func() ([]locker, error) {
		return func() ([]locker, error) {
			l, err := anonmutex.NewRWLock(n, opts...)
			if err != nil {
				return nil, err
			}
			return handles(n, func() (locker, error) { return l.NewProcess() })
		}
	}
	mkRMW := func(opts ...anonmutex.Option) func() ([]locker, error) {
		return func() ([]locker, error) {
			l, err := anonmutex.NewRMWLock(n, opts...)
			if err != nil {
				return nil, err
			}
			return handles(n, func() (locker, error) { return l.NewProcess() })
		}
	}

	if err := add("alg1 RW anonymous (m=5)", mkAnon()); err != nil {
		return err
	}
	if err := add("alg1 RW identity perms", mkAnon(anonmutex.WithPermutations(anonmutex.PermIdentity, 0))); err != nil {
		return err
	}
	if err := add("alg2 RMW anonymous (m=5)", mkRMW()); err != nil {
		return err
	}
	if err := add("alg2 RMW m=1 (CAS lock)", mkRMW(anonmutex.WithRegisters(1))); err != nil {
		return err
	}
	if err := add("sync.Mutex", func() ([]locker, error) {
		var mu sync.Mutex
		return handles(n, func() (locker, error) { return errless{&mu}, nil })
	}); err != nil {
		return err
	}

	fmt.Printf("%-28s %-12s %-14s %s\n", "lock", "total time", "per session", "counter")
	for _, c := range cs {
		counter := 0
		start := time.Now()
		var wg sync.WaitGroup
		for _, p := range c.procs {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if err := p.Lock(); err != nil {
						panic(err)
					}
					counter++
					if err := p.Unlock(); err != nil {
						panic(err)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		status := "OK"
		if counter != n*iters {
			status = fmt.Sprintf("VIOLATION (%d)", counter)
		}
		fmt.Printf("%-28s %-12s %-14s %s\n",
			c.name, elapsed.Round(time.Microsecond),
			(elapsed / time.Duration(n*iters)).Round(time.Nanosecond), status)
	}
	fmt.Println("\nshape to expect: RW-anonymous ≫ RMW-anonymous > CAS/sync.Mutex; identity permutations ≈ anonymous")
	return nil
}

func handles(n int, mk func() (locker, error)) ([]locker, error) {
	out := make([]locker, 0, n)
	for i := 0; i < n; i++ {
		h, err := mk()
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}
