// Lockstep: watch the Theorem 5 lower bound happen.
//
// The paper proves no symmetric deadlock-free mutual exclusion algorithm
// can exist on m anonymous RMW registers when some ℓ ≤ n divides m: place
// the registers on a ring, give ℓ processes rotated views m/ℓ apart, and
// run them in lock step — symmetry can never break, so either everyone
// enters the critical section together or nobody ever does.
//
// This example runs the construction three ways:
//
//  1. Algorithm 2 on ℓ=3, m=6 — a safe algorithm takes the livelock horn;
//  2. a deliberately broken "greedy" protocol on the same ring — it takes
//     the simultaneous-entry horn, violating mutual exclusion;
//  3. Algorithm 2 on ℓ=3, m=7 ∈ M(3) — the construction cannot apply, the
//     2-2-3 ownership imbalance breaks the tie, somebody wins.
//
// Then it sweeps m = 1..20 and prints the livelock/progress boundary,
// which lands exactly on membership in M(n).
//
// Run with: go run ./examples/lockstep
package main

import (
	"fmt"
	"os"

	"anonmutex/mnum"
	"anonmutex/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lockstep:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("--- Theorem 5: the two horns of the dichotomy ---")

	v, err := sim.LowerBound(sim.RMW, 3, 6, 0)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2, ℓ=3 m=6 (3 | 6, step %d): %v after %d rounds; ring symmetry held: %v\n",
		v.Step, v.Outcome, v.Rounds, v.SymmetryHeld)

	g, err := sim.LowerBound(sim.Greedy, 3, 6, 0)
	if err != nil {
		return err
	}
	fmt.Printf("greedy strawman, ℓ=3 m=6:            %v — %d of %d processes in the CS at once\n",
		g.Outcome, g.Entrants, g.L)

	ok, err := sim.LowerBound(sim.RMW, 3, 7, 0)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2, ℓ=3 m=7 ∈ M(3):         %v after %d rounds (7 has no divisor ≤ 3, symmetry must break)\n",
		ok.Outcome, ok.Rounds)

	fmt.Println()
	fmt.Println("--- the boundary: lock-step verdict vs membership in M(n), n=3 ---")
	fmt.Printf("%-4s %-8s %-9s %-20s %s\n", "m", "m∈M(3)", "ℓ used", "outcome", "rounds")
	entries, err := sim.LowerBoundGrid(sim.RMW, 3, 1, 20, 0)
	if err != nil {
		return err
	}
	mismatches := 0
	for _, e := range entries {
		fmt.Printf("%-4d %-8v %-9d %-20v %d\n", e.M, e.InM, e.Witness, e.Verdict.Outcome, e.Verdict.Rounds)
		livelocked := e.Verdict.Outcome == sim.Livelock
		if livelocked == e.InM {
			mismatches++
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d grid rows disagree with M(n) — reproduction failed", mismatches)
	}
	fmt.Println()
	fmt.Printf("boundary matches the paper exactly: livelock ⟺ m ∉ M(3) = %v ∪ {1}\n",
		mnum.Members(3, 5, 20))
	return nil
}
