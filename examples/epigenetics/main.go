// Epigenetics: the paper's motivating application (§I-B).
//
// Taubenfeld's line of work observes that anonymous shared memory models
// epigenetic modification: multiple enzymes ("processes") read and write
// chemical marks on shared chromatin sites ("registers") without any
// agreed-upon addressing of those sites — each enzyme binds the genome in
// its own frame of reference. Serializing conflicting modifications in
// such a system is exactly anonymous mutual exclusion.
//
// This example models a toy genome of methylation sites shared by
// competing writer enzymes. Each enzyme applies a batch of modifications
// that must be atomic (a half-applied batch is a corrupted epigenetic
// state). The enzymes coordinate only through an anonymous RMW lock —
// no names, no ordered identities — and the example verifies that every
// observed genome state is a consistent batch boundary.
//
// Run with: go run ./examples/epigenetics
package main

import (
	"fmt"
	"os"
	"sync"

	"anonmutex"
)

// genome is the shared epigenetic state: methylation levels per site.
// It is NOT thread-safe; the anonymous lock provides the exclusion.
type genome struct {
	sites []int
}

// applyBatch applies one enzyme's modification batch: +1 on every site
// (a batch is consistent iff all sites move together).
func (g *genome) applyBatch() {
	for i := range g.sites {
		g.sites[i]++
	}
}

// consistent reports whether all sites carry the same level — true
// exactly at batch boundaries.
func (g *genome) consistent() bool {
	for _, s := range g.sites {
		if s != g.sites[0] {
			return false
		}
	}
	return true
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "epigenetics:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		enzymes = 3  // concurrent writer processes
		sites   = 8  // chromatin sites in the toy genome
		batches = 80 // modification batches per enzyme
	)

	// m = 1 register would also be legal for the RMW model; we use the
	// optimal non-degenerate size to keep the memory genuinely anonymous.
	lock, err := anonmutex.NewRMWLock(enzymes, anonmutex.WithSeed(2019))
	if err != nil {
		return err
	}
	fmt.Printf("anonymous RMW lock: n=%d enzymes, m=%d registers\n", enzymes, lock.M())

	g := &genome{sites: make([]int, sites)}
	inconsistencies := 0
	var wg sync.WaitGroup
	for e := 0; e < enzymes; e++ {
		p, err := lock.NewProcess()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if err := p.Lock(); err != nil {
					panic(err)
				}
				// Critical section: the batch plus a consistency probe.
				if !g.consistent() {
					inconsistencies++
				}
				g.applyBatch()
				if !g.consistent() {
					inconsistencies++
				}
				if err := p.Unlock(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()

	want := enzymes * batches
	fmt.Printf("applied %d modification batches across %d sites\n", want, sites)
	fmt.Printf("final methylation level: %d on every site (want %d)\n", g.sites[0], want)
	fmt.Printf("mid-batch states observed: %d (want 0)\n", inconsistencies)
	if g.sites[0] != want || !g.consistent() || inconsistencies > 0 {
		return fmt.Errorf("epigenetic state corrupted — exclusion failed")
	}
	fmt.Println("every modification batch was atomic: anonymous coordination succeeded")
	return nil
}
