package lockd_test

// End-to-end durability: a killed server restarted on the same data
// directory recovers its grants (mutual exclusion holds across the
// restart, tokens keep increasing), a graceful shutdown recovers
// nothing but keeps the token band, and the Durability/LeaseTTL
// configuration contract is enforced.

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// startDurableServer starts a leased server journaling into dir. The
// returned stop function gracefully shuts it down (safe to call once;
// tests that Kill the server instead must still call stop to reap the
// Serve goroutine — Shutdown after Kill only re-drains).
func startDurableServer(t *testing.T, dir string, ttl time.Duration) (*lockd.Server, *lockmgr.Manager, string, func()) {
	t.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.LeaseTTL = ttl
	srv.Durability = lockd.Durability{Dir: dir, Fsync: "always"}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
	return srv, mgr, ln.Addr().String(), stop
}

// waitDialable blocks until the address accepts protocol traffic.
func waitDialable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := client.DialConn(addr)
		if err == nil {
			if err := c.Ping(); err == nil {
				c.Close()
				return
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never became dialable: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartRecoversGrants is the restart contract end to end: kill
// -9 a server whose clients hold keys, restart it on the same data
// dir, and the keys are still held — a contender cannot take them
// until the original leases expire on their own schedule, and when it
// does take them its fencing tokens are strictly larger.
func TestRestartRecoversGrants(t *testing.T) {
	const ttl = 400 * time.Millisecond
	dir := t.TempDir()
	srvA, mgrA, addrA, stopA := startDurableServer(t, dir, ttl)
	defer stopA()

	keys := []string{"rk-0", "rk-1", "rk-2"}
	holder, err := client.DialConn(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	preTokens := map[string]uint64{}
	for _, k := range keys {
		if err := holder.Acquire(k); err != nil {
			t.Fatal(err)
		}
		preTokens[k] = holder.Token(k)
		if preTokens[k] == 0 {
			t.Fatalf("no token on %s", k)
		}
	}

	killAt := time.Now()
	srvA.Kill()
	stopA() // reap the Serve goroutine; the server is already dead

	srvB, mgrB, addrB, stopB := startDurableServer(t, dir, ttl)
	defer stopB()
	waitDialable(t, addrB)
	if got := srvB.Recovered(); got != uint64(len(keys)) {
		t.Fatalf("Recovered() = %d, want %d", got, len(keys))
	}

	contender, err := client.DialConn(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer contender.Close()

	// While the original TTL budget is clearly unspent, the recovered
	// holds must still exclude contenders — the heart of the contract.
	if time.Since(killAt) < ttl/2 {
		for _, k := range keys {
			ok, err := contender.TryAcquire(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("contender took %s while the recovered lease was live", k)
			}
		}
	}

	// The dead holder never heartbeats again, so each key frees by TTL
	// (absolute deadline: ~ttl after acquire, not after restart).
	for _, k := range keys {
		deadline := time.Now().Add(2*ttl + time.Second)
		for {
			ok, err := contender.TryAcquire(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never freed after restart", k)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if tok := contender.Token(k); tok <= preTokens[k] {
			t.Fatalf("post-restart token %d for %s not above pre-crash %d", tok, k, preTokens[k])
		}
	}

	if v := mgrA.Violations(); v != 0 {
		t.Fatalf("pre-crash manager saw %d violations", v)
	}
	if v := mgrB.Violations(); v != 0 {
		t.Fatalf("post-restart manager saw %d violations", v)
	}
}

// TestGracefulRestartRecoversNothing: an orderly drain releases every
// session grant through the journal, so the next start recovers zero
// leases — but the token band still carries over: tokens keep
// increasing across even a clean restart.
func TestGracefulRestartRecoversNothing(t *testing.T) {
	dir := t.TempDir()
	_, _, addrA, stopA := startDurableServer(t, dir, time.Minute)
	c, err := client.DialConn(addrA)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Acquire("gk"); err != nil {
		t.Fatal(err)
	}
	pre := c.Token("gk")
	c.Close() // session teardown releases the grant (journaled)
	stopA()

	srvB, _, addrB, stopB := startDurableServer(t, dir, time.Minute)
	defer stopB()
	waitDialable(t, addrB)
	if got := srvB.Recovered(); got != 0 {
		t.Fatalf("Recovered() = %d after graceful cycle, want 0", got)
	}
	c2, err := client.DialConn(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Acquire("gk"); err != nil {
		t.Fatal(err)
	}
	if tok := c2.Token("gk"); tok <= pre {
		t.Fatalf("token %d after clean restart not above %d", tok, pre)
	}
}

// TestRecoveredHoldExcludesContender pins the exclusion half of
// recovery with no TTL-timing slack: under a TTL far longer than the
// test, a key held across a kill/restart must still be unacquirable
// after the restart — the recovered lease holds the actual lock, not
// just bookkeeping.
func TestRecoveredHoldExcludesContender(t *testing.T) {
	const ttl = 60 * time.Second // far longer than the test: nothing expires
	dir := t.TempDir()
	srvA, _, addrA, stopA := startDurableServer(t, dir, ttl)

	holder, err := client.DialConn(addrA)
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire("orphan"); err != nil {
		t.Fatal(err)
	}
	pre := holder.Token("orphan")

	// Kill the server (not the client): the session teardown is
	// suppressed, so from the journal's view the grant stays active.
	srvA.Kill()
	stopA()
	holder.Close()

	srvB, _, addrB, stopB := startDurableServer(t, dir, ttl)
	defer stopB()
	waitDialable(t, addrB)
	if got := srvB.Recovered(); got != 1 {
		t.Fatalf("Recovered() = %d, want 1", got)
	}
	c, err := client.DialConn(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok, err := c.TryAcquire("orphan")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("orphan (token %d, ttl %v) was acquirable right after restart", pre, ttl)
	}
}

// TestDurabilityRequiresLeases: Durability.Dir without LeaseTTL is a
// configuration error, mirroring the cluster/leases contract.
func TestDurabilityRequiresLeases(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.Durability = lockd.Durability{Dir: t.TempDir()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	err = srv.Serve(ln)
	if err == nil || !strings.Contains(err.Error(), "requires LeaseTTL") {
		t.Fatalf("Serve = %v, want durability-needs-leases error", err)
	}
}

// TestBadFsyncPolicy: an unknown fsync spelling is rejected at Serve.
func TestBadFsyncPolicy(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.LeaseTTL = time.Second
	srv.Durability = lockd.Durability{Dir: t.TempDir(), Fsync: "sometimes"}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	err = srv.Serve(ln)
	if err == nil || !strings.Contains(err.Error(), "unknown fsync policy") {
		t.Fatalf("Serve = %v, want unknown-fsync-policy error", err)
	}
}
