package lockd

// Server side of the binary framed protocol: one reader goroutine per
// connection demultiplexes frames onto per-stream processing goroutines,
// each of which is a full logical session (own grants, own reaper
// semantics) running the same handle() the JSON path uses. Responses are
// batched per stream into frames and pushed through a shared writer
// whose flush coalesces across streams — the last writer in a convoy
// pays the syscall for everyone, the multi-stream analogue of the JSON
// path's flush-when-idle batching.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"anonmutex/lockd/wire"
)

// binResponseFlushBytes caps how much encoded response a stream batches
// into one frame before pushing it to the shared writer mid-burst.
const binResponseFlushBytes = 16 << 10

// muxWriter serializes frames from many stream goroutines onto one
// connection and coalesces flushes: a writer flushes only when no other
// writer is already waiting for the lock, so a convoy of frames costs
// one syscall — the last writer out pays it. The error is sticky; once a
// write fails every subsequent writeFrame reports it.
type muxWriter struct {
	waiters atomic.Int32
	mu      sync.Mutex
	bw      *bufio.Writer
	err     error
}

func (w *muxWriter) writeFrame(frame []byte) error {
	w.waiters.Add(1)
	w.mu.Lock()
	w.waiters.Add(-1)
	if w.err == nil {
		_, w.err = w.bw.Write(frame)
	}
	if w.err == nil && w.waiters.Load() == 0 {
		w.err = w.bw.Flush()
	}
	err := w.err
	w.mu.Unlock()
	return err
}

// binConn is one binary connection: the demultiplexer state shared by
// its reader and its stream goroutines.
type binConn struct {
	srv    *Server
	conn   net.Conn
	ctx    context.Context
	cancel context.CancelFunc
	// dialect pins the response encoding negotiated by the connection's
	// magic preamble: v1 (no lease/fenced flags, 13-field stats), v2
	// (lease fields, byte flags), v3 (uvarint flags, redirects), or v4
	// (owner hints).
	dialect wire.Dialect
	// fromProxy marks an inter-node connection (BinaryMagicProxy): its
	// ops were already forwarded once, so its sessions never forward
	// again — the proxy hop cap.
	fromProxy bool
	w         muxWriter
	// rframe is the reader's scratch response frame for the inline fast
	// path on inter-node connections; only the reader touches it.
	rframe []byte

	mu      sync.Mutex
	streams map[uint32]*binStream

	wg sync.WaitGroup
}

// binStream is one logical session multiplexed on a binary connection.
type binStream struct {
	id   uint32
	sess *session
	q    *opQueue[Request]
	// inflight counts ops handed to the stream goroutine whose responses
	// have not yet reached the shared writer (queued, mid-handle, or
	// batched unflushed). The reader increments before each push; the
	// stream goroutine decrements as responses are flushed. Zero is the
	// inline fast path's license: no ordering hazard exists between a
	// response written by the reader and anything the stream goroutine
	// still owes.
	inflight atomic.Int32
}

// serveBinary runs one binary framed connection. The reader goroutine is
// the caller: it validates the magic, then demultiplexes frames, routing
// each op to its stream's queue (spawning the stream's processing
// goroutine on first use) and applying cancels out of band exactly as
// the JSON reader does — so a cancel aborts its stream's blocked acquire
// without waiting behind it. Any protocol error — bad magic, oversized
// or malformed frame, unknown opcode, the reserved stream 0 — is
// answered once with an error response on stream 0 and ends the
// connection, mirroring the JSON path's oversized-line contract. When
// the connection ends, every stream's queue is closed and every stream's
// grants are released before the socket is torn down.
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader) {
	var magic [len(BinaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	bc := &binConn{
		srv:     s,
		conn:    conn,
		ctx:     ctx,
		cancel:  cancel,
		streams: make(map[uint32]*binStream),
	}
	bc.w.bw = bufio.NewWriter(conn)
	switch magic {
	case BinaryMagic:
		bc.dialect = wire.DialectV1
	case BinaryMagicV2:
		bc.dialect = wire.DialectV2
	case BinaryMagicV3:
		bc.dialect = wire.DialectV3
	case BinaryMagicV4:
		bc.dialect = wire.DialectV4
	case BinaryMagicProxy:
		bc.dialect = wire.DialectV4
		bc.fromProxy = true
	default:
		bc.connError(fmt.Sprintf("lockd: bad protocol magic %x", magic[:]))
		return
	}
	defer func() {
		// Cancel first so any stream blocked in a slow-path acquire
		// withdraws instead of competing on behalf of a dead connection,
		// then let every stream drain and release its grants. Streams
		// blocked in a forwarded acquire are aborted at the owner
		// (outside bc.mu: the abort is an inter-node write).
		bc.cancel()
		bc.mu.Lock()
		streams := make([]*binStream, 0, len(bc.streams))
		for _, st := range bc.streams {
			streams = append(streams, st)
		}
		bc.mu.Unlock()
		for _, st := range streams {
			st.q.close()
			st.sess.abortRemote()
		}
		bc.wg.Wait()
	}()

	maxFrame := s.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	names := newNameTable() // per-connection lock-name interning (byte-bounded)
	var buf []byte
	var req Request
	for {
		var stream uint32
		var ops []byte
		var err error
		stream, ops, buf, err = ReadFrame(br, buf, maxFrame)
		if err != nil {
			if errors.Is(err, errFrameTooBig) || errors.Is(err, errShortFrame) {
				bc.connError(err.Error())
			}
			return // disconnect (or the protocol error answered above)
		}
		if stream == 0 {
			bc.connError("lockd: stream 0 is reserved")
			return
		}
		st := bc.stream(stream)
		// Inline fast path, inter-node connections only: when the stream
		// is idle (nothing queued, nothing mid-handle, nothing batched
		// unflushed), the reader executes the frame's non-blocking ops
		// itself and answers in one frame, sparing the handoff to the
		// stream goroutine — this read is on the critical path of some
		// client's proxied acquire at another node. The moment an op
		// would block (a contended acquire), or on end_stream, the rest
		// of the frame falls back to the queue and ordering is preserved:
		// the reader's partial frame goes to the shared writer before
		// anything is pushed.
		inline := bc.fromProxy && st.inflight.Load() == 0
		if inline {
			bc.rframe = BeginFrame(bc.rframe[:0], stream)
		}
		for len(ops) > 0 {
			if ops, err = decodeRequestBin(ops, &req, names); err != nil {
				bc.connError(fmt.Sprintf("lockd: bad request: %v", err))
				return
			}
			if req.Op == OpCancel {
				st.sess.cancelAcquire(req.Name)
			}
			if inline {
				if handled := bc.handleInline(st, &req); handled {
					continue
				}
				inline = false
				if len(bc.rframe) > frameHeaderLen {
					if bc.w.writeFrame(EndFrame(bc.rframe, 0)) != nil {
						bc.conn.Close()
						return
					}
				}
			}
			st.inflight.Add(1)
			st.q.push(req)
		}
		if inline && len(bc.rframe) > frameHeaderLen {
			if bc.w.writeFrame(EndFrame(bc.rframe, 0)) != nil {
				bc.conn.Close()
				return
			}
		}
	}
}

// handleInline executes one op from the reader when the stream is
// idle, appending any response to the reader's frame. It reports false
// — leaving all state untouched beyond one uncontended probe — when
// the op must go to the stream goroutine instead: a contended acquire
// (whose blocking wait the reader must never perform, or cancels and
// every other stream on the connection would stall behind it) or an
// end_stream (whose retirement dance belongs to the goroutine being
// retired).
func (bc *binConn) handleInline(st *binStream, req *Request) bool {
	switch req.Op {
	case OpEndStream:
		return false
	case OpAcquire:
		resp, done := bc.srv.handleAcquire(bc.ctx, st.sess, *req, nil, false)
		if !done {
			return false
		}
		bc.rframe = appendResponseBin(bc.rframe, &resp, bc.dialect)
		return true
	case OpReleaseNoAck:
		nreq := *req
		nreq.Op = OpRelease
		bc.srv.handle(bc.ctx, st.sess, nreq, nil)
		return true
	default:
		resp := bc.srv.handle(bc.ctx, st.sess, *req, nil)
		bc.rframe = appendResponseBin(bc.rframe, &resp, bc.dialect)
		return true
	}
}

// connError answers a connection-fatal protocol error once, on the
// reserved stream 0, before the connection closes.
func (bc *binConn) connError(msg string) {
	frame := BeginFrame(make([]byte, 0, 64+len(msg)), 0)
	frame = appendResponseBin(frame, &Response{Err: msg}, bc.dialect)
	bc.w.writeFrame(EndFrame(frame, 0))
}

// stream returns the processing stream for id, spawning it on first use.
func (bc *binConn) stream(id uint32) *binStream {
	bc.mu.Lock()
	st := bc.streams[id]
	if st == nil {
		st = &binStream{
			id:   id,
			sess: newSession(),
			q:    newOpQueue[Request](),
		}
		st.sess.noForward = bc.fromProxy
		bc.streams[id] = st
		bc.srv.liveStreams.Add(1)
		bc.wg.Add(1)
		go bc.streamLoop(st)
	}
	bc.mu.Unlock()
	return st
}

// streamLoop is one stream's processing goroutine: the binary
// counterpart of the JSON processing loop, with the same batching shape
// — responses accumulate into a frame that is pushed when the stream's
// queue runs dry, when it grows past binResponseFlushBytes, or right
// before an acquire commits to blocking (the preBlock hook), so a
// blocked stream never holds hostage responses it already owes. Each
// stream blocks independently: a contended acquire on one stream never
// delays its siblings on the same connection.
func (bc *binConn) streamLoop(st *binStream) {
	defer func() {
		// Teardown routes through the same releaseGrant the end_stream ack
		// and the release op use: with leases on, exactly one of teardown
		// and TTL expiry wins each grant's token arbitration, so a stream
		// dying mid-expiry can never double-release. Proxied grants are
		// retired at their owners the same way, by ending the forwarded
		// streams.
		bc.srv.closeRemotes(st.sess)
		for _, g := range st.sess.grants {
			bc.srv.releaseGrant(g)
		}
		bc.srv.liveStreams.Add(-1)
		bc.wg.Done()
	}()
	frame := BeginFrame(make([]byte, 0, 512), st.id)
	// batched counts the ops whose responses sit in frame; their
	// inflight debt is settled only once the responses reach the shared
	// writer, keeping the reader's inline fast path (which keys on
	// inflight reaching zero) ordered behind everything this goroutine
	// still owes.
	batched := 0
	// flush pushes the batched responses, reporting false — after closing
	// the connection so every stream unwinds — when the write failed.
	flush := func() bool {
		if len(frame) == frameHeaderLen {
			return true
		}
		err := bc.w.writeFrame(EndFrame(frame, 0))
		frame = BeginFrame(frame[:0], st.id)
		if err != nil {
			bc.conn.Close()
			return false
		}
		st.inflight.Add(int32(-batched))
		batched = 0
		return true
	}
	preBlock := func() { flush() }
	for {
		req, ok := st.q.tryPop()
		if !ok {
			// No pipelined op is waiting: push the batched responses out
			// before parking on the queue.
			if !flush() {
				return
			}
			if req, ok = st.q.pop(); !ok {
				return
			}
		}
		if req.Op == OpEndStream {
			// Retire the stream: ack, then forget it so the id can be
			// reused; the deferred cleanup releases its grants.
			frame = appendResponseBin(frame, &Response{OK: true}, bc.dialect)
			batched++
			flush()
			bc.mu.Lock()
			if bc.streams[st.id] == st {
				delete(bc.streams, st.id)
			}
			bc.mu.Unlock()
			return
		}
		if req.Op == OpReleaseNoAck {
			// Fire-and-forget: the sender registered no response slot, so
			// answering would desync its FIFO. Perform the release and
			// move on without touching the response frame.
			req.Op = OpRelease
			bc.srv.handle(bc.ctx, st.sess, req, preBlock)
			st.inflight.Add(-1)
			continue
		}
		resp := bc.srv.handle(bc.ctx, st.sess, req, preBlock)
		frame = appendResponseBin(frame, &resp, bc.dialect)
		batched++
		if len(frame) >= binResponseFlushBytes {
			if !flush() {
				return
			}
		}
	}
}
