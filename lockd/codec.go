package lockd

// The wire codec: a hand-rolled, allocation-free encoder and decoder for
// the protocol's small fixed shapes. The wire format is exactly the JSON
// that encoding/json produces for Request/Response (same field order,
// same omitempty behavior, same escaping), so old clients and servers
// interoperate unchanged — the codec only removes the reflection, the
// intermediate buffers, and the per-call allocations from the hot path.
// TestCodecAgreesWithEncodingJSON pins the equivalence property-style.
//
// The decoder is a tolerant field scanner: fields may arrive in any
// order, unknown fields are skipped, and interstitial whitespace is
// accepted, matching encoding/json's behavior for foreign clients.

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// AppendRequest appends req's wire encoding — one JSON object, no
// trailing newline — to dst and returns the extended slice. It allocates
// only if dst needs to grow.
func AppendRequest(dst []byte, req *Request) []byte {
	dst = append(dst, `{"op":`...)
	dst = appendString(dst, req.Op)
	if req.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = appendString(dst, req.Name)
	}
	if req.TimeoutMS != 0 {
		dst = append(dst, `,"timeout_ms":`...)
		dst = strconv.AppendInt(dst, req.TimeoutMS, 10)
	}
	return append(dst, '}')
}

// AppendResponse appends resp's wire encoding — one JSON object, no
// trailing newline — to dst and returns the extended slice. It allocates
// only if dst needs to grow.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = append(dst, `{"ok":`...)
	dst = appendBool(dst, resp.OK)
	if resp.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = appendString(dst, resp.Err)
	}
	if resp.Acquired {
		dst = append(dst, `,"acquired":true`...)
	}
	if resp.Aborted {
		dst = append(dst, `,"aborted":true`...)
	}
	if resp.Holds {
		dst = append(dst, `,"holds":true`...)
	}
	if resp.Token != 0 {
		dst = append(dst, `,"token":`...)
		dst = strconv.AppendUint(dst, resp.Token, 10)
	}
	if resp.TTLMS != 0 {
		dst = append(dst, `,"ttl_ms":`...)
		dst = strconv.AppendInt(dst, resp.TTLMS, 10)
	}
	if resp.Fenced {
		dst = append(dst, `,"fenced":true`...)
	}
	if resp.WrongOwner {
		dst = append(dst, `,"wrong_owner":true`...)
	}
	if resp.OwnerHint {
		dst = append(dst, `,"owner_hint":true`...)
	}
	if resp.Owner != "" {
		dst = append(dst, `,"owner":`...)
		dst = appendString(dst, resp.Owner)
	}
	if resp.Epoch != 0 {
		dst = append(dst, `,"epoch":`...)
		dst = strconv.AppendUint(dst, resp.Epoch, 10)
	}
	if resp.Stats != nil {
		s := resp.Stats
		dst = append(dst, `,"stats":{"acquires":`...)
		dst = strconv.AppendUint(dst, s.Acquires, 10)
		dst = append(dst, `,"releases":`...)
		dst = strconv.AppendUint(dst, s.Releases, 10)
		dst = append(dst, `,"waits":`...)
		dst = strconv.AppendUint(dst, s.Waits, 10)
		dst = append(dst, `,"try_acquires":`...)
		dst = strconv.AppendUint(dst, s.TryAcquires, 10)
		dst = append(dst, `,"try_failures":`...)
		dst = strconv.AppendUint(dst, s.TryFailures, 10)
		dst = append(dst, `,"lock_creates":`...)
		dst = strconv.AppendUint(dst, s.LockCreates, 10)
		dst = append(dst, `,"evictions":`...)
		dst = strconv.AppendUint(dst, s.Evictions, 10)
		dst = append(dst, `,"resident_locks":`...)
		dst = strconv.AppendInt(dst, int64(s.ResidentLocks), 10)
		dst = append(dst, `,"aborts":`...)
		dst = strconv.AppendUint(dst, s.Aborts, 10)
		dst = append(dst, `,"lease_timeouts":`...)
		dst = strconv.AppendUint(dst, s.LeaseTimeouts, 10)
		dst = append(dst, `,"expired":`...)
		dst = strconv.AppendUint(dst, s.Expired, 10)
		dst = append(dst, `,"revoked":`...)
		dst = strconv.AppendUint(dst, s.Revoked, 10)
		dst = append(dst, `,"fenced_rejects":`...)
		dst = strconv.AppendUint(dst, s.FencedRejects, 10)
		dst = append(dst, `,"violations":`...)
		dst = strconv.AppendUint(dst, s.Violations, 10)
		dst = append(dst, `,"sessions":`...)
		dst = strconv.AppendInt(dst, int64(s.Sessions), 10)
		if s.Streams != 0 {
			dst = append(dst, `,"streams":`...)
			dst = strconv.AppendInt(dst, int64(s.Streams), 10)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendString appends s as a JSON string. Plain printable ASCII — every
// lock name and op in practice — takes the copy-only fast path; anything
// needing escapes defers to encoding/json so the bytes stay identical to
// what a reflection-based peer would produce (including HTML-escaping
// and invalid-UTF-8 replacement).
func appendString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			buf, err := json.Marshal(s)
			if err != nil {
				// Marshal of a string cannot fail; keep the encoder total.
				panic(err)
			}
			return append(dst, buf...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// DecodeRequest parses one request line (without the newline) into req,
// overwriting every field. Unknown fields are skipped, field order is
// free, and the op string is matched against the protocol's constants so
// known ops cost no allocation.
func DecodeRequest(data []byte, req *Request) error {
	return decodeRequest(data, req, nil)
}

// maxInternedNameBytes bounds a session's interning table: when the
// interned names' total length would pass it, the table is reset and
// re-learns the connection's current working set. Hot names stay free;
// a pathological stream of unique names costs one allocation per
// request (exactly the pre-interning behavior) instead of unbounded
// server memory.
const maxInternedNameBytes = 1 << 20

// nameTable interns lock names per session with a byte-bounded budget.
type nameTable struct {
	m     map[string]string
	bytes int
}

func newNameTable() *nameTable {
	return &nameTable{m: make(map[string]string)}
}

// intern returns the canonical string for raw, allocating only the
// first time a name (since the last reset) is seen.
func (t *nameTable) intern(raw []byte) string {
	if s, ok := t.m[string(raw)]; ok { // compiler avoids the []byte→string alloc
		return s
	}
	s := string(raw)
	if t.bytes+len(s) > maxInternedNameBytes {
		clear(t.m)
		t.bytes = 0
	}
	t.m[s] = s
	t.bytes += len(s)
	return s
}

// decodeRequest is DecodeRequest with an optional interning table for
// the name field: the server passes its per-session table so a
// steady-state request loop on recurring names never allocates the name
// string again.
func decodeRequest(data []byte, req *Request, names *nameTable) error {
	*req = Request{}
	d := scanner{data: data}
	err := d.object(func(key []byte) error {
		switch string(key) { // compiler-optimized, no alloc
		case "op":
			raw, esc, err := d.stringValue()
			if err != nil {
				return err
			}
			req.Op = internOp(raw, esc)
			return nil
		case "name":
			raw, esc, err := d.stringValue()
			if err != nil {
				return err
			}
			if esc {
				unescaped, err := unescape(raw)
				if err != nil {
					return err
				}
				req.Name = string(unescaped)
				return nil
			}
			if names != nil {
				req.Name = names.intern(raw)
				return nil
			}
			req.Name = string(raw)
			return nil
		case "timeout_ms":
			v, err := d.intValue()
			if err != nil {
				return err
			}
			req.TimeoutMS = v
			return nil
		default:
			return d.skipValue()
		}
	})
	if err != nil {
		return fmt.Errorf("lockd: decoding request: %w", err)
	}
	if err := d.trailing(); err != nil {
		return fmt.Errorf("lockd: decoding request: %w", err)
	}
	return nil
}

// internOp maps a raw op byte string to the matching Op* constant, so
// decoding a known op allocates nothing.
func internOp(raw []byte, escaped bool) string {
	if escaped {
		if un, err := unescape(raw); err == nil {
			return string(un)
		}
		return string(raw)
	}
	switch string(raw) {
	case OpAcquire:
		return OpAcquire
	case OpTryAcquire:
		return OpTryAcquire
	case OpRelease:
		return OpRelease
	case OpCancel:
		return OpCancel
	case OpHolds:
		return OpHolds
	case OpHeartbeat:
		return OpHeartbeat
	case OpStats:
		return OpStats
	case OpPing:
		return OpPing
	default:
		return string(raw)
	}
}

// DecodeResponse parses one response line (without the newline) into
// resp, overwriting every field. A stats payload allocates the Stats
// struct; everything else is allocation-free for well-formed input.
func DecodeResponse(data []byte, resp *Response) error {
	*resp = Response{}
	d := scanner{data: data}
	err := d.object(func(key []byte) error {
		switch string(key) {
		case "ok":
			v, err := d.boolValue()
			resp.OK = v
			return err
		case "err":
			raw, esc, err := d.stringValue()
			if err != nil {
				return err
			}
			if esc {
				un, err := unescape(raw)
				if err != nil {
					return err
				}
				resp.Err = string(un)
				return nil
			}
			resp.Err = string(raw)
			return nil
		case "acquired":
			v, err := d.boolValue()
			resp.Acquired = v
			return err
		case "aborted":
			v, err := d.boolValue()
			resp.Aborted = v
			return err
		case "holds":
			v, err := d.boolValue()
			resp.Holds = v
			return err
		case "token":
			return d.uintInto(&resp.Token)
		case "ttl_ms":
			v, err := d.intValue()
			resp.TTLMS = v
			return err
		case "fenced":
			v, err := d.boolValue()
			resp.Fenced = v
			return err
		case "wrong_owner":
			v, err := d.boolValue()
			resp.WrongOwner = v
			return err
		case "owner_hint":
			v, err := d.boolValue()
			resp.OwnerHint = v
			return err
		case "owner":
			raw, esc, err := d.stringValue()
			if err != nil {
				return err
			}
			if esc {
				un, err := unescape(raw)
				if err != nil {
					return err
				}
				resp.Owner = string(un)
				return nil
			}
			resp.Owner = string(raw)
			return nil
		case "epoch":
			return d.uintInto(&resp.Epoch)
		case "stats":
			d.ws()
			if d.peek() == 'n' { // null: Stats stays nil, as encoding/json leaves it
				return d.skipValue()
			}
			s := &Stats{}
			if err := d.statsObject(s); err != nil {
				return err
			}
			resp.Stats = s
			return nil
		default:
			return d.skipValue()
		}
	})
	if err != nil {
		return fmt.Errorf("lockd: decoding response: %w", err)
	}
	if err := d.trailing(); err != nil {
		return fmt.Errorf("lockd: decoding response: %w", err)
	}
	return nil
}

func (d *scanner) statsObject(s *Stats) error {
	return d.object(func(key []byte) error {
		switch string(key) {
		case "acquires":
			return d.uintInto(&s.Acquires)
		case "releases":
			return d.uintInto(&s.Releases)
		case "waits":
			return d.uintInto(&s.Waits)
		case "try_acquires":
			return d.uintInto(&s.TryAcquires)
		case "try_failures":
			return d.uintInto(&s.TryFailures)
		case "lock_creates":
			return d.uintInto(&s.LockCreates)
		case "evictions":
			return d.uintInto(&s.Evictions)
		case "resident_locks":
			v, err := d.intValue()
			s.ResidentLocks = int(v)
			return err
		case "aborts":
			return d.uintInto(&s.Aborts)
		case "lease_timeouts":
			return d.uintInto(&s.LeaseTimeouts)
		case "expired":
			return d.uintInto(&s.Expired)
		case "revoked":
			return d.uintInto(&s.Revoked)
		case "fenced_rejects":
			return d.uintInto(&s.FencedRejects)
		case "violations":
			return d.uintInto(&s.Violations)
		case "sessions":
			v, err := d.intValue()
			s.Sessions = int(v)
			return err
		case "streams":
			v, err := d.intValue()
			s.Streams = int(v)
			return err
		default:
			return d.skipValue()
		}
	})
}

// scanner is a minimal JSON field scanner over one line.
type scanner struct {
	data []byte
	pos  int
}

func (d *scanner) ws() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

// trailing rejects anything but whitespace after the top-level value,
// matching encoding/json ("invalid character after top-level value").
func (d *scanner) trailing() error {
	d.ws()
	if d.pos != len(d.data) {
		return fmt.Errorf("trailing data after the object at offset %d", d.pos)
	}
	return nil
}

func (d *scanner) peek() byte {
	if d.pos < len(d.data) {
		return d.data[d.pos]
	}
	return 0
}

func (d *scanner) expect(c byte) error {
	d.ws()
	if d.pos >= len(d.data) || d.data[d.pos] != c {
		return fmt.Errorf("want %q at offset %d", c, d.pos)
	}
	d.pos++
	return nil
}

// object parses {"key":value,...}, calling field for each key with the
// scanner positioned at the value. field must consume the value. The
// top-level callers reject trailing data after the closing brace via
// trailing().
func (d *scanner) object(field func(key []byte) error) error {
	if err := d.expect('{'); err != nil {
		return err
	}
	d.ws()
	if d.peek() == '}' {
		d.pos++
		return nil
	}
	for {
		d.ws()
		key, escaped, err := d.stringValue()
		if err != nil {
			return fmt.Errorf("object key: %w", err)
		}
		if escaped {
			if key, err = unescape(key); err != nil {
				return err
			}
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		d.ws()
		if err := field(key); err != nil {
			return err
		}
		d.ws()
		switch d.peek() {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return fmt.Errorf("want ',' or '}' at offset %d", d.pos)
		}
	}
}

// stringValue parses a JSON string, returning the raw bytes between the
// quotes and whether they contain escapes (the caller unescapes only
// when needed, keeping the common case allocation-free).
func (d *scanner) stringValue() ([]byte, bool, error) {
	d.ws()
	if err := d.expect('"'); err != nil {
		return nil, false, err
	}
	start := d.pos
	escaped := false
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; c {
		case '"':
			raw := d.data[start:d.pos]
			d.pos++
			return raw, escaped, nil
		case '\\':
			escaped = true
			d.pos += 2
		default:
			d.pos++
		}
	}
	return nil, false, fmt.Errorf("unterminated string")
}

func (d *scanner) intValue() (int64, error) {
	d.ws()
	start := d.pos
	if d.peek() == '-' {
		d.pos++
	}
	for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
		d.pos++
	}
	if d.pos == start || (d.pos == start+1 && d.data[start] == '-') {
		return 0, fmt.Errorf("want an integer at offset %d", start)
	}
	return parseInt(d.data[start:d.pos])
}

func (d *scanner) uintInto(out *uint64) error {
	d.ws()
	start := d.pos
	for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
		d.pos++
	}
	if d.pos == start {
		return fmt.Errorf("want an unsigned integer at offset %d", start)
	}
	var v uint64
	for _, c := range d.data[start:d.pos] {
		digit := uint64(c - '0')
		if v > (math.MaxUint64-digit)/10 {
			return fmt.Errorf("integer overflow")
		}
		v = v*10 + digit
	}
	*out = v
	return nil
}

// parseInt avoids strconv.ParseInt's string conversion (and its
// allocation) on the hot path.
func parseInt(b []byte) (int64, error) {
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
	}
	var v uint64
	for ; i < len(b); i++ {
		d := uint64(b[i] - '0')
		if v > (1<<63-1)/10 {
			return 0, fmt.Errorf("integer overflow")
		}
		v = v*10 + d
	}
	if neg {
		if v > 1<<63 {
			return 0, fmt.Errorf("integer overflow")
		}
		return -int64(v), nil
	}
	if v > 1<<63-1 {
		return 0, fmt.Errorf("integer overflow")
	}
	return int64(v), nil
}

func (d *scanner) boolValue() (bool, error) {
	d.ws()
	switch {
	case len(d.data)-d.pos >= 4 && string(d.data[d.pos:d.pos+4]) == "true":
		d.pos += 4
		return true, nil
	case len(d.data)-d.pos >= 5 && string(d.data[d.pos:d.pos+5]) == "false":
		d.pos += 5
		return false, nil
	default:
		return false, fmt.Errorf("want a boolean at offset %d", d.pos)
	}
}

// skipValue consumes any JSON value: string, number, boolean, null,
// object, or array.
func (d *scanner) skipValue() error {
	d.ws()
	switch c := d.peek(); {
	case c == '"':
		_, _, err := d.stringValue()
		return err
	case c == '{':
		return d.object(func([]byte) error { return d.skipValue() })
	case c == '[':
		d.pos++
		d.ws()
		if d.peek() == ']' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			d.ws()
			switch d.peek() {
			case ',':
				d.pos++
			case ']':
				d.pos++
				return nil
			default:
				return fmt.Errorf("want ',' or ']' at offset %d", d.pos)
			}
		}
	case c == 't' || c == 'f':
		_, err := d.boolValue()
		return err
	case c == 'n':
		if len(d.data)-d.pos >= 4 && string(d.data[d.pos:d.pos+4]) == "null" {
			d.pos += 4
			return nil
		}
		return fmt.Errorf("bad literal at offset %d", d.pos)
	case c == '-' || (c >= '0' && c <= '9'):
		// Numbers may be floats in foreign payloads we skip.
		d.pos++
		for d.pos < len(d.data) {
			switch b := d.data[d.pos]; {
			case b >= '0' && b <= '9', b == '.', b == 'e', b == 'E', b == '+', b == '-':
				d.pos++
			default:
				return nil
			}
		}
		return nil
	default:
		return fmt.Errorf("bad value at offset %d", d.pos)
	}
}

// unescape resolves JSON string escapes (allocating; only taken when the
// raw bytes contain a backslash).
func unescape(raw []byte) ([]byte, error) {
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); {
		c := raw[i]
		if c != '\\' {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(raw) {
			return nil, fmt.Errorf("dangling escape")
		}
		switch e := raw[i+1]; e {
		case '"', '\\', '/':
			out = append(out, e)
			i += 2
		case 'b':
			out = append(out, '\b')
			i += 2
		case 'f':
			out = append(out, '\f')
			i += 2
		case 'n':
			out = append(out, '\n')
			i += 2
		case 'r':
			out = append(out, '\r')
			i += 2
		case 't':
			out = append(out, '\t')
			i += 2
		case 'u':
			r, n, err := decodeUnicodeEscape(raw[i:])
			if err != nil {
				return nil, err
			}
			out = utf8.AppendRune(out, r)
			i += n
		default:
			return nil, fmt.Errorf("unknown escape \\%c", e)
		}
	}
	return out, nil
}

// decodeUnicodeEscape decodes \uXXXX (and a following low surrogate when
// the first unit is a high surrogate), returning the rune and the bytes
// consumed.
func decodeUnicodeEscape(b []byte) (rune, int, error) {
	if len(b) < 6 {
		return 0, 0, fmt.Errorf("truncated \\u escape")
	}
	u1, err := hex4(b[2:6])
	if err != nil {
		return 0, 0, err
	}
	r := rune(u1)
	if utf16.IsSurrogate(r) {
		if len(b) >= 12 && b[6] == '\\' && b[7] == 'u' {
			u2, err := hex4(b[8:12])
			if err != nil {
				return 0, 0, err
			}
			if dec := utf16.DecodeRune(r, rune(u2)); dec != utf8.RuneError {
				return dec, 12, nil
			}
		}
		return utf8.RuneError, 6, nil
	}
	return r, 6, nil
}

func hex4(b []byte) (uint16, error) {
	var v uint16
	for _, c := range b[:4] {
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= uint16(c - '0')
		case c >= 'a' && c <= 'f':
			v |= uint16(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v |= uint16(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad hex digit %q in \\u escape", c)
		}
	}
	return v, nil
}
