package lockd

// Inbound transport plumbing shared by both wire formats: connection
// dispatch on the first byte, the newline-JSON session loop, and the
// bounded line reader. The binary framed transport lives in binproto.go;
// both feed the same handle() in ownership.go.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
)

// inbound is one parsed request line, or the error that ended the
// stream.
type inbound struct {
	req      Request
	parseErr error
}

// errLineTooLong ends a session whose client sent an oversized request
// line; unlike a scanner's silent stop, the client hears why.
var errLineTooLong = errors.New("request line exceeds the server's line limit")

// readLine reads one newline-terminated line using the reader's own
// buffer when the line fits (the common case: no copy, no allocation)
// and accumulating into scratch otherwise, up to max bytes.
func readLine(br *bufio.Reader, scratch []byte, max int) (line, newScratch []byte, err error) {
	line, err = br.ReadSlice('\n')
	if err == nil {
		if len(line)-1 > max {
			// The limit binds even below bufio's own buffer size.
			return nil, scratch, errLineTooLong
		}
		return line[:len(line)-1], scratch, nil
	}
	if err != bufio.ErrBufferFull {
		return nil, scratch, err
	}
	scratch = append(scratch[:0], line...)
	for {
		if len(scratch) > max {
			return nil, scratch, errLineTooLong
		}
		line, err = br.ReadSlice('\n')
		scratch = append(scratch, line...)
		switch err {
		case nil:
			if len(scratch)-1 > max {
				return nil, scratch, errLineTooLong
			}
			return scratch[:len(scratch)-1], scratch, nil
		case bufio.ErrBufferFull:
			// keep accumulating
		default:
			return nil, scratch, err
		}
	}
}

// serveConn dispatches one connection to its wire format. The first
// byte decides: BinaryMagic[0] selects the length-prefixed multiplexed
// framing, anything else — in particular the '{' every JSON request
// line starts with — selects newline-JSON, so old clients keep working
// with zero configuration. Whatever ends the connection, the deferred
// cleanup here unregisters it; each protocol handler releases its own
// sessions' grants before returning.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before the first byte; nothing was promised
	}
	if first[0] == BinaryMagic[0] {
		s.serveBinary(conn, br)
		return
	}
	s.serveJSON(conn, br)
}

// serveJSON runs one newline-JSON session: one logical session for the
// whole connection. A dedicated reader goroutine decodes request lines
// and feeds them to the processing loop, so the connection stays
// responsive while an acquire blocks: a cancel line aborts the
// in-flight acquire out of band (and still gets its response in order),
// and a connection drop cancels the whole session context, reaping any
// waiter the client abandoned. The processing loop batches responses:
// it flushes the write buffer only when the line queue is empty, so a
// pipelined burst costs one syscall, not one per response. Whatever ends
// the connection — client close, protocol error, cancel-by-Shutdown —
// the deferred cleanup releases every grant the session still holds.
func (s *Server) serveJSON(conn net.Conn, br *bufio.Reader) {
	sess := newSession()
	connCtx, connCancel := context.WithCancel(context.Background())
	s.liveStreams.Add(1)
	defer func() {
		connCancel()
		// Same single release codepath as the release op: with leases on,
		// a teardown that lost its grant's token arbitration to a TTL
		// expiry is a no-op, never a double release. Proxied grants are
		// retired at their owners the same way, by ending the forwarded
		// streams.
		s.closeRemotes(sess)
		for _, g := range sess.grants {
			s.releaseGrant(g)
		}
		s.liveStreams.Add(-1)
	}()

	maxLine := s.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}

	lines := newOpQueue[inbound]()
	go func() {
		defer lines.close()
		// The reader owns the inbound half: when a read fails — client
		// disconnect, or conn.Close from Shutdown or a protocol error —
		// the session context is cancelled so a blocked acquire withdraws
		// instead of competing on behalf of a ghost. The queue's pushes
		// never block, so the reader is always back in Read and observes
		// the disconnect promptly no matter how many lines are pipelined
		// behind a blocked acquire. An acquire forwarded to another node
		// is out of the session context's reach, so it is aborted at the
		// owner explicitly.
		defer sess.abortRemote()
		defer connCancel()
		names := newNameTable() // per-session lock-name interning (byte-bounded)
		var scratch []byte
		for {
			var line []byte
			var err error
			line, scratch, err = readLine(br, scratch, maxLine)
			if err != nil {
				if err == errLineTooLong {
					lines.push(inbound{parseErr: err})
				}
				return // disconnect (or the too-long protocol error above)
			}
			var in inbound
			if err := decodeRequest(line, &in.req, names); err != nil {
				lines.push(inbound{parseErr: err})
				return
			}
			if in.req.Op == OpCancel {
				sess.cancelAcquire(in.req.Name)
			}
			lines.push(in)
		}
	}()

	bw := bufio.NewWriter(conn)
	// flushPending pushes batched responses out just before an acquire
	// commits to blocking, so earlier responses in the same burst are not
	// held hostage by a contended lock.
	flushPending := func() { bw.Flush() }
	var respBuf []byte
	for {
		in, ok := lines.tryPop()
		if !ok {
			// No pipelined request is waiting: push the batched responses
			// out before parking on the queue.
			if bw.Flush() != nil {
				return
			}
			if in, ok = lines.pop(); !ok {
				return
			}
		}
		var resp Response
		if in.parseErr != nil {
			// The stream is unusable; answer once and hang up.
			resp = Response{Err: fmt.Sprintf("lockd: bad request: %v", in.parseErr)}
		} else if in.req.Op == OpReleaseNoAck {
			// Fire-and-forget: perform the release, answer nothing.
			in.req.Op = OpRelease
			s.handle(connCtx, sess, in.req, flushPending)
			continue
		} else {
			resp = s.handle(connCtx, sess, in.req, flushPending)
		}
		respBuf = AppendResponse(respBuf[:0], &resp)
		bw.Write(respBuf)
		if err := bw.WriteByte('\n'); err != nil {
			return
		}
		if in.parseErr != nil {
			bw.Flush()
			return
		}
	}
}
