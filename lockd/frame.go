package lockd

// The binary wire format: length-prefixed frames carrying a stream id
// and a batch of compactly encoded ops, so many logical client sessions
// share one TCP connection and pipelined ops coalesce into single
// writes. The newline-JSON protocol stays the zero-config fallback — a
// connection whose first byte is the binary magic speaks frames, any
// other first byte (in practice `{`) is served by the JSON path
// unchanged — so every pre-binary client keeps working.
//
// Frame layout (all integers little-endian or unsigned/zigzag varints):
//
//	+----------------+----------------+------------------------------+
//	| length uint32  | stream uint32  | ops ... (until length spent) |
//	+----------------+----------------+------------------------------+
//
// length counts the payload after the length field itself (stream id
// plus ops) and is bounded by MaxFrameBytes; a longer frame is a
// protocol error answered once on stream 0 before the connection
// closes, mirroring the JSON path's MaxLineBytes contract. Stream 0 is
// reserved for connection-level errors; clients allocate ids from 1.
//
// Request op encoding (uniform for every op):
//
//	opcode byte | name len uvarint | name bytes | timeout_ms varint
//
// Response encoding:
//
//	flags | [err len uvarint | err bytes] | [token uvarint | ttl varint]
//	      | [owner len uvarint | owner bytes | epoch uvarint]
//	      | [stats fields]
//
// where flags is one byte in the v1/v2 dialects and a uvarint from v3
// on (values under 128 still cost one byte), with the bit and opcode
// tables defined once in lockd/wire. Unknown opcodes and unknown flag
// bits are protocol errors: the magic preamble is the version gate, not
// per-op tolerance — foreign or future peers negotiate by magic,
// exactly one version per connection. That gate is how each dialect
// arrived compatibly: a v1 client's magic pins the pre-lease response
// dialect (no lease flags, the 13-field stats sequence), v2 added the
// lease token/TTL, fenced bit, and extended stats, v3 widened the
// flag field and added the wrong_owner redirect (owner address plus
// membership epoch) for clustered servers, and v4 added the proxy-mode
// owner hint (same owner/epoch shape, riding a success). The proxy
// magic is v4 plus a connection-scoped mark: ops arriving over it were
// already forwarded once, so the server answers foreign keys with a
// redirect instead of forwarding again — the structural hop cap that
// makes forwarding loops impossible under divergent membership views.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"anonmutex/lockd/wire"
)

// BinaryMagic is the 4-byte preamble a client writes immediately after
// connecting to negotiate the binary framed protocol. Its first byte
// can never begin a JSON request line, which is what makes the
// negotiation unambiguous. This is the v1 magic: a server answers such
// a connection in the pre-lease response dialect, so old binary
// clients keep working against lease-running servers.
var BinaryMagic = [4]byte{0xA9, 'L', 'K', '1'}

// BinaryMagicV2 negotiates the v2 binary dialect: responses may carry
// a fencing token and TTL (wire.FlagLease) and the fenced bit, and
// stats payloads include the lease counters. The server accepts every
// magic and pins the dialect per connection.
var BinaryMagicV2 = [4]byte{0xA9, 'L', 'K', '2'}

// BinaryMagicV3 negotiates the v3 binary dialect: the response flag
// field is a uvarint (one byte for every pre-existing response) and
// responses may carry a wrong_owner redirect — the owning node's
// address and the membership epoch — which is how a clustered server
// bounces a key op to the right node.
var BinaryMagicV3 = [4]byte{0xA9, 'L', 'K', '3'}

// BinaryMagicV4 negotiates the current binary dialect: v3 plus the
// owner hint a proxy-mode server stamps on ops it forwarded to the
// key's owner, so routing clients converge to direct routing. New
// clients lead with it.
var BinaryMagicV4 = [4]byte{0xA9, 'L', 'K', '4'}

// BinaryMagicProxy negotiates the v4 dialect and marks the connection
// as inter-node: every op arriving over it was already forwarded once
// by a proxy-mode peer, so the server never forwards it again — a key
// it does not own is answered wrong_owner, which the first proxy
// relays to the client as a plain redirect. Forwarding is therefore
// structurally capped at one hop, whatever the nodes' membership views
// disagree about.
var BinaryMagicProxy = [4]byte{0xA9, 'L', 'K', 'P'}

// DefaultMaxFrameBytes bounds one binary frame's payload when
// Server.MaxFrameBytes is zero (and is the client-side bound too).
const DefaultMaxFrameBytes = 1 << 20

// frameHeaderLen is the bytes before a frame's ops: the length prefix
// plus the stream id.
const frameHeaderLen = 8

// errFrameTooBig ends a session whose peer sent an oversized frame; like
// the JSON path's line limit, the peer hears why before the hangup.
var errFrameTooBig = errors.New("frame exceeds the connection's frame limit")

// errShortFrame is the other malformed length: a frame too short to even
// hold its own stream id.
var errShortFrame = errors.New("frame length shorter than its stream id")

// OpEndStream retires one logical stream of a multiplexed binary
// connection (defined in lockd/wire; see there).
const OpEndStream = wire.OpEndStream

// BeginFrame appends a frame header (length placeholder plus stream id)
// for stream to dst and returns the extended slice. The caller appends
// encoded ops, then patches the length with EndFrame, passing the
// offset that was len(dst) before this call.
func BeginFrame(dst []byte, stream uint32) []byte {
	dst = append(dst, 0, 0, 0, 0)
	return binary.LittleEndian.AppendUint32(dst, stream)
}

// EndFrame patches the length prefix of the frame begun at offset start
// and returns dst. The frame must fit the wire format's uint32 length.
func EndFrame(dst []byte, start int) []byte {
	n := len(dst) - start - 4 // payload: stream id + ops
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	return dst
}

// AppendRequestBin appends req's binary op encoding to dst. It fails on
// an op the binary protocol has no opcode for; encoding a known op
// allocates only if dst must grow.
func AppendRequestBin(dst []byte, req *Request) ([]byte, error) {
	opc := wire.Opcode(req.Op)
	if opc == 0 {
		return dst, fmt.Errorf("lockd: op %q has no binary opcode", req.Op)
	}
	dst = append(dst, opc)
	dst = binary.AppendUvarint(dst, uint64(len(req.Name)))
	dst = append(dst, req.Name...)
	dst = binary.AppendVarint(dst, req.TimeoutMS)
	return dst, nil
}

// DecodeRequestBin decodes one binary op from the front of data into
// req, overwriting every field, and returns the remainder of data (the
// next op of the frame). Arbitrary input never panics and never
// allocates beyond the name string: lengths are validated against the
// bytes actually present before any slice is taken.
func DecodeRequestBin(data []byte, req *Request) (rest []byte, err error) {
	return decodeRequestBin(data, req, nil)
}

// decodeRequestBin is DecodeRequestBin with the server's optional
// per-connection name-interning table.
func decodeRequestBin(data []byte, req *Request, names *nameTable) (rest []byte, err error) {
	*req = Request{}
	if len(data) == 0 {
		return nil, errors.New("lockd: empty binary op")
	}
	op := wire.OpOfCode(data[0])
	if op == "" {
		return nil, fmt.Errorf("lockd: unknown binary opcode 0x%02x", data[0])
	}
	name, data, err := binBytes(data[1:])
	if err != nil {
		return nil, fmt.Errorf("lockd: binary op %s name: %w", op, err)
	}
	timeout, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("lockd: binary op %s: bad timeout varint", op)
	}
	req.Op = op
	switch {
	case len(name) == 0:
		// Leave the zero value: "" round-trips without an allocation.
	case names != nil:
		req.Name = names.intern(name)
	default:
		req.Name = string(name)
	}
	req.TimeoutMS = timeout
	return data[n:], nil
}

// AppendResponseBin appends resp's binary encoding (the current, v4
// dialect: uvarint flags, redirects, owner hints, lease fields,
// extended stats) to dst and returns the extended slice. It allocates
// only if dst must grow.
func AppendResponseBin(dst []byte, resp *Response) []byte {
	return appendResponseBin(dst, resp, wire.DialectV4)
}

// AppendResponseBinV3 appends resp's encoding in the v3 dialect served
// to clients that negotiated with BinaryMagicV3: identical to v4 except
// the owner-hint fields are silently dropped — the peer still sees the
// grant, it just re-learns the owner by redirect next time.
func AppendResponseBinV3(dst []byte, resp *Response) []byte {
	return appendResponseBin(dst, resp, wire.DialectV3)
}

// AppendResponseBinV2 appends resp's encoding in the v2 dialect served
// to clients that negotiated with BinaryMagicV2: single-byte flags and
// no redirect fields (those are silently dropped — the peer still sees
// the refusal's error string), lease fields and extended stats intact.
func AppendResponseBinV2(dst []byte, resp *Response) []byte {
	return appendResponseBin(dst, resp, wire.DialectV2)
}

// AppendResponseBinV1 appends resp's encoding in the v1 dialect served
// to clients that negotiated with BinaryMagic: no lease, fenced, or
// redirect fields (silently dropped, exactly what a pre-lease server
// would have sent) and the original 13-field stats sequence.
func AppendResponseBinV1(dst []byte, resp *Response) []byte {
	return appendResponseBin(dst, resp, wire.DialectV1)
}

func appendResponseBin(dst []byte, resp *Response, d wire.Dialect) []byte {
	var flags uint64
	if resp.OK {
		flags |= wire.FlagOK
	}
	if resp.Acquired {
		flags |= wire.FlagAcquired
	}
	if resp.Aborted {
		flags |= wire.FlagAborted
	}
	if resp.Holds {
		flags |= wire.FlagHolds
	}
	if resp.Err != "" {
		flags |= wire.FlagErr
	}
	if resp.Stats != nil {
		flags |= wire.FlagStats
	}
	hasLease := d >= wire.DialectV2 && (resp.Token != 0 || resp.TTLMS != 0)
	if hasLease {
		flags |= wire.FlagLease
	}
	if d >= wire.DialectV2 && resp.Fenced {
		flags |= wire.FlagFenced
	}
	redirect := d >= wire.DialectV3 && resp.WrongOwner
	if redirect {
		flags |= wire.FlagRedirect
	}
	hint := d >= wire.DialectV4 && resp.OwnerHint
	if hint {
		flags |= wire.FlagOwnerHint
	}
	if d >= wire.DialectV3 {
		dst = binary.AppendUvarint(dst, flags)
	} else {
		dst = append(dst, byte(flags))
	}
	if resp.Err != "" {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Err)))
		dst = append(dst, resp.Err...)
	}
	if hasLease {
		dst = binary.AppendUvarint(dst, resp.Token)
		dst = binary.AppendVarint(dst, resp.TTLMS)
	}
	if redirect {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Owner)))
		dst = append(dst, resp.Owner...)
		dst = binary.AppendUvarint(dst, resp.Epoch)
	}
	if hint {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Owner)))
		dst = append(dst, resp.Owner...)
		dst = binary.AppendUvarint(dst, resp.Epoch)
	}
	if s := resp.Stats; s != nil {
		dst = binary.AppendUvarint(dst, s.Acquires)
		dst = binary.AppendUvarint(dst, s.Releases)
		dst = binary.AppendUvarint(dst, s.Waits)
		dst = binary.AppendUvarint(dst, s.TryAcquires)
		dst = binary.AppendUvarint(dst, s.TryFailures)
		dst = binary.AppendUvarint(dst, s.LockCreates)
		dst = binary.AppendUvarint(dst, s.Evictions)
		dst = binary.AppendVarint(dst, int64(s.ResidentLocks))
		dst = binary.AppendUvarint(dst, s.Aborts)
		dst = binary.AppendUvarint(dst, s.LeaseTimeouts)
		if d >= wire.DialectV2 {
			dst = binary.AppendUvarint(dst, s.Expired)
			dst = binary.AppendUvarint(dst, s.Revoked)
			dst = binary.AppendUvarint(dst, s.FencedRejects)
		}
		dst = binary.AppendUvarint(dst, s.Violations)
		dst = binary.AppendVarint(dst, int64(s.Sessions))
		dst = binary.AppendVarint(dst, int64(s.Streams))
	}
	return dst
}

// DecodeResponseBin decodes one binary response (the current, v4
// dialect) from the front of data into resp, overwriting every field,
// and returns the remainder (the next response of the frame). Arbitrary
// input never panics; only a stats payload, an owner address, or an
// error string allocates.
func DecodeResponseBin(data []byte, resp *Response) (rest []byte, err error) {
	return decodeResponseBin(data, resp, wire.DialectV4)
}

// DecodeResponseBinV3 decodes a v3-dialect response: the owner-hint bit
// is unknown (a protocol error, as it was before it existed). It is
// what a v3 client's decoder does, kept exported so the compat tests
// can pin the dialect byte-for-byte.
func DecodeResponseBinV3(data []byte, resp *Response) (rest []byte, err error) {
	return decodeResponseBin(data, resp, wire.DialectV3)
}

// DecodeResponseBinV2 decodes a v2-dialect response: single-byte
// flags, the redirect bit unknown (a protocol error, as it was before
// it existed). It is what a v2 client's decoder does, kept exported so
// the compat tests can pin the dialect byte-for-byte.
func DecodeResponseBinV2(data []byte, resp *Response) (rest []byte, err error) {
	return decodeResponseBin(data, resp, wire.DialectV2)
}

// DecodeResponseBinV1 decodes a v1-dialect response: lease/fenced flag
// bits are unknown and the stats payload is the original 13-field
// sequence. It is what a pre-lease client's decoder does, kept exported
// so the compat tests can pin the dialect byte-for-byte.
func DecodeResponseBinV1(data []byte, resp *Response) (rest []byte, err error) {
	return decodeResponseBin(data, resp, wire.DialectV1)
}

func decodeResponseBin(data []byte, resp *Response, d wire.Dialect) (rest []byte, err error) {
	*resp = Response{}
	if len(data) == 0 {
		return nil, errors.New("lockd: empty binary response")
	}
	var flags uint64
	if d >= wire.DialectV3 {
		var n int
		flags, n = binary.Uvarint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad flags varint")
		}
		data = data[n:]
	} else {
		flags = uint64(data[0])
		data = data[1:]
	}
	if flags&^wire.KnownFlags(d) != 0 {
		return nil, fmt.Errorf("lockd: unknown response flags 0x%02x", flags)
	}
	resp.OK = flags&wire.FlagOK != 0
	resp.Acquired = flags&wire.FlagAcquired != 0
	resp.Aborted = flags&wire.FlagAborted != 0
	resp.Holds = flags&wire.FlagHolds != 0
	resp.Fenced = flags&wire.FlagFenced != 0
	if flags&wire.FlagErr != 0 {
		var msg []byte
		if msg, data, err = binBytes(data); err != nil {
			return nil, fmt.Errorf("lockd: binary response error string: %w", err)
		}
		if len(msg) == 0 {
			return nil, errors.New("lockd: binary response flags an empty error")
		}
		resp.Err = string(msg)
	}
	if flags&wire.FlagLease != 0 {
		tok, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad token varint")
		}
		data = data[n:]
		ttl, n := binary.Varint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad ttl varint")
		}
		data = data[n:]
		resp.Token = tok
		resp.TTLMS = ttl
	}
	if flags&wire.FlagRedirect != 0 {
		var owner []byte
		if owner, data, err = binBytes(data); err != nil {
			return nil, fmt.Errorf("lockd: binary response owner address: %w", err)
		}
		epoch, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad epoch varint")
		}
		data = data[n:]
		resp.WrongOwner = true
		resp.Owner = string(owner)
		resp.Epoch = epoch
	}
	if flags&wire.FlagOwnerHint != 0 {
		var owner []byte
		if owner, data, err = binBytes(data); err != nil {
			return nil, fmt.Errorf("lockd: binary response hint owner address: %w", err)
		}
		epoch, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad hint epoch varint")
		}
		data = data[n:]
		resp.OwnerHint = true
		resp.Owner = string(owner)
		resp.Epoch = epoch
	}
	if flags&wire.FlagStats != 0 {
		s := &Stats{}
		fields := []struct {
			u *uint64
			i *int
		}{
			{u: &s.Acquires}, {u: &s.Releases}, {u: &s.Waits},
			{u: &s.TryAcquires}, {u: &s.TryFailures}, {u: &s.LockCreates},
			{u: &s.Evictions}, {i: &s.ResidentLocks}, {u: &s.Aborts},
			{u: &s.LeaseTimeouts}, {u: &s.Expired}, {u: &s.Revoked},
			{u: &s.FencedRejects}, {u: &s.Violations}, {i: &s.Sessions},
			{i: &s.Streams},
		}
		for i, f := range fields {
			// Fields 10-12 (expired, revoked, fenced_rejects) joined the
			// sequence in v2; the v1 dialect never carried them.
			if d == wire.DialectV1 && i >= 10 && i <= 12 {
				continue
			}
			if f.u != nil {
				v, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, errors.New("lockd: binary stats: bad varint")
				}
				*f.u = v
				data = data[n:]
			} else {
				v, n := binary.Varint(data)
				if n <= 0 {
					return nil, errors.New("lockd: binary stats: bad varint")
				}
				*f.i = int(v)
				data = data[n:]
			}
		}
		resp.Stats = s
	}
	return data, nil
}

// binBytes decodes a uvarint-length-prefixed byte string from the front
// of data, validating the length against the bytes actually present so
// a hostile length can neither panic nor force an allocation.
func binBytes(data []byte) (b, rest []byte, err error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, errors.New("bad length varint")
	}
	if n > uint64(len(data)-k) {
		return nil, nil, fmt.Errorf("length %d exceeds the %d bytes present", n, len(data)-k)
	}
	end := k + int(n)
	return data[k:end], data[end:], nil
}

// DecodeFrame parses one whole frame from the front of data: the length
// prefix (validated against max before anything is sliced), the stream
// id, and the ops payload. rest is the byte stream after the frame. It
// is the in-memory mirror of ReadFrame, and the surface the fuzz
// harness drives: arbitrary bytes must error cleanly, never panic, and
// never claim more bytes than are present.
func DecodeFrame(data []byte, max int) (stream uint32, ops, rest []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if len(data) < frameHeaderLen {
		return 0, nil, nil, fmt.Errorf("lockd: truncated frame header: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n < 4 {
		return 0, nil, nil, fmt.Errorf("lockd: %w: %d", errShortFrame, n)
	}
	if n > uint32(max) {
		return 0, nil, nil, fmt.Errorf("lockd: %w: %d > %d bytes", errFrameTooBig, n, max)
	}
	if uint32(len(data)-4) < n {
		return 0, nil, nil, fmt.Errorf("lockd: truncated frame: length %d, %d bytes present", n, len(data)-4)
	}
	stream = binary.LittleEndian.Uint32(data[4:])
	return stream, data[frameHeaderLen : 4+n], data[4+n:], nil
}

// ReadFrame reads one frame from br into buf (reused and grown as
// needed; pass the returned newBuf back in), returning the stream id
// and the ops payload, which aliases newBuf and is valid until the next
// call. A frame whose length prefix exceeds max fails with the
// frame-limit error before any payload is read, so a hostile length
// cannot balloon memory.
func ReadFrame(br *bufio.Reader, buf []byte, max int) (stream uint32, ops, newBuf []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	// Peek instead of ReadFull: the header is parsed in place from the
	// bufio buffer, so the steady-state read path performs zero heap
	// allocations (a local header array would escape through the
	// io.Reader interface).
	hdr, err := br.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < 4 {
		return 0, nil, buf, fmt.Errorf("lockd: %w: %d", errShortFrame, n)
	}
	if n > uint32(max) {
		return 0, nil, buf, fmt.Errorf("lockd: %w: %d > %d bytes", errFrameTooBig, n, max)
	}
	stream = binary.LittleEndian.Uint32(hdr[4:])
	br.Discard(frameHeaderLen)
	body := int(n) - 4
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	buf = buf[:body]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return stream, buf, buf, nil
}
