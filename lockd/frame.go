package lockd

// The binary wire format: length-prefixed frames carrying a stream id
// and a batch of compactly encoded ops, so many logical client sessions
// share one TCP connection and pipelined ops coalesce into single
// writes. The newline-JSON protocol stays the zero-config fallback — a
// connection whose first byte is the binary magic speaks frames, any
// other first byte (in practice `{`) is served by the JSON path
// unchanged — so every pre-binary client keeps working.
//
// Frame layout (all integers little-endian or unsigned/zigzag varints):
//
//	+----------------+----------------+------------------------------+
//	| length uint32  | stream uint32  | ops ... (until length spent) |
//	+----------------+----------------+------------------------------+
//
// length counts the payload after the length field itself (stream id
// plus ops) and is bounded by MaxFrameBytes; a longer frame is a
// protocol error answered once on stream 0 before the connection
// closes, mirroring the JSON path's MaxLineBytes contract. Stream 0 is
// reserved for connection-level errors; clients allocate ids from 1.
//
// Request op encoding (uniform for every op):
//
//	opcode byte | name len uvarint | name bytes | timeout_ms varint
//
// Response encoding:
//
//	flags byte | [err len uvarint | err bytes] | [stats fields]
//
// with flag bits OK, Acquired, Aborted, Holds, has-err, has-stats —
// plus, in the v2 dialect, has-lease (a fencing token and TTL follow)
// and fenced — and the stats fields a fixed sequence of varints (see
// appendResponseBin). Unknown opcodes and unknown flag bits are
// protocol errors: the magic preamble is the version gate, not per-op
// tolerance — foreign or future peers negotiate by magic, exactly one
// version per connection. That gate is how the lease fields arrived
// compatibly: a v1 client's magic pins the v1 response dialect (no
// lease flags, the 13-field stats sequence) for its whole connection,
// while v2 connections carry tokens, TTLs, fenced rejections, and the
// extended stats.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// BinaryMagic is the 4-byte preamble a client writes immediately after
// connecting to negotiate the binary framed protocol. Its first byte
// can never begin a JSON request line, which is what makes the
// negotiation unambiguous. This is the v1 magic: a server answers such
// a connection in the pre-lease response dialect, so old binary
// clients keep working against lease-running servers.
var BinaryMagic = [4]byte{0xA9, 'L', 'K', '1'}

// BinaryMagicV2 negotiates the current binary dialect: responses may
// carry a fencing token and TTL (binFlagLease) and the fenced bit, and
// stats payloads include the lease counters. New clients lead with it;
// the server accepts both magics and pins the dialect per connection.
var BinaryMagicV2 = [4]byte{0xA9, 'L', 'K', '2'}

// DefaultMaxFrameBytes bounds one binary frame's payload when
// Server.MaxFrameBytes is zero (and is the client-side bound too).
const DefaultMaxFrameBytes = 1 << 20

// frameHeaderLen is the bytes before a frame's ops: the length prefix
// plus the stream id.
const frameHeaderLen = 8

// errFrameTooBig ends a session whose peer sent an oversized frame; like
// the JSON path's line limit, the peer hears why before the hangup.
var errFrameTooBig = errors.New("frame exceeds the connection's frame limit")

// errShortFrame is the other malformed length: a frame too short to even
// hold its own stream id.
var errShortFrame = errors.New("frame length shorter than its stream id")

// Binary opcodes, one per wire op (opEndStream is transport-level and
// has no JSON counterpart: it retires one logical stream of a
// multiplexed connection, releasing that stream's grants).
const (
	binOpAcquire = 1 + iota
	binOpTry
	binOpRelease
	binOpCancel
	binOpHolds
	binOpStats
	binOpPing
	binOpEndStream
	binOpHeartbeat
)

// OpEndStream retires one logical stream of a multiplexed binary
// connection: the server releases every grant the stream holds, acks,
// and forgets the stream. It exists only on the binary transport; the
// JSON protocol's equivalent is closing the connection.
const OpEndStream = "end_stream"

// opcodeOf maps a protocol op string to its binary opcode (0 = unknown).
func opcodeOf(op string) byte {
	switch op {
	case OpAcquire:
		return binOpAcquire
	case OpTryAcquire:
		return binOpTry
	case OpRelease:
		return binOpRelease
	case OpCancel:
		return binOpCancel
	case OpHolds:
		return binOpHolds
	case OpStats:
		return binOpStats
	case OpPing:
		return binOpPing
	case OpEndStream:
		return binOpEndStream
	case OpHeartbeat:
		return binOpHeartbeat
	}
	return 0
}

// opOfCode is the inverse of opcodeOf ("" = unknown).
func opOfCode(c byte) string {
	switch c {
	case binOpAcquire:
		return OpAcquire
	case binOpTry:
		return OpTryAcquire
	case binOpRelease:
		return OpRelease
	case binOpCancel:
		return OpCancel
	case binOpHolds:
		return OpHolds
	case binOpStats:
		return OpStats
	case binOpPing:
		return OpPing
	case binOpEndStream:
		return OpEndStream
	case binOpHeartbeat:
		return OpHeartbeat
	}
	return ""
}

// Response flag bits. The lease and fenced bits exist only in the v2
// dialect; a v1 connection never sees them (and a v1 decoder rejects
// them as unknown, which is exactly why the dialect is pinned by
// magic).
const (
	binFlagOK       = 1 << iota // Response.OK
	binFlagAcquired             // Response.Acquired
	binFlagAborted              // Response.Aborted
	binFlagHolds                // Response.Holds
	binFlagErr                  // an error string follows
	binFlagStats                // a stats payload follows
	binFlagLease                // v2: a fencing token uvarint + ttl_ms varint follow
	binFlagFenced               // v2: Response.Fenced
)

// BeginFrame appends a frame header (length placeholder plus stream id)
// for stream to dst and returns the extended slice. The caller appends
// encoded ops, then patches the length with EndFrame, passing the
// offset that was len(dst) before this call.
func BeginFrame(dst []byte, stream uint32) []byte {
	dst = append(dst, 0, 0, 0, 0)
	return binary.LittleEndian.AppendUint32(dst, stream)
}

// EndFrame patches the length prefix of the frame begun at offset start
// and returns dst. The frame must fit the wire format's uint32 length.
func EndFrame(dst []byte, start int) []byte {
	n := len(dst) - start - 4 // payload: stream id + ops
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	return dst
}

// AppendRequestBin appends req's binary op encoding to dst. It fails on
// an op the binary protocol has no opcode for; encoding a known op
// allocates only if dst must grow.
func AppendRequestBin(dst []byte, req *Request) ([]byte, error) {
	opc := opcodeOf(req.Op)
	if opc == 0 {
		return dst, fmt.Errorf("lockd: op %q has no binary opcode", req.Op)
	}
	dst = append(dst, opc)
	dst = binary.AppendUvarint(dst, uint64(len(req.Name)))
	dst = append(dst, req.Name...)
	dst = binary.AppendVarint(dst, req.TimeoutMS)
	return dst, nil
}

// DecodeRequestBin decodes one binary op from the front of data into
// req, overwriting every field, and returns the remainder of data (the
// next op of the frame). Arbitrary input never panics and never
// allocates beyond the name string: lengths are validated against the
// bytes actually present before any slice is taken.
func DecodeRequestBin(data []byte, req *Request) (rest []byte, err error) {
	return decodeRequestBin(data, req, nil)
}

// decodeRequestBin is DecodeRequestBin with the server's optional
// per-connection name-interning table.
func decodeRequestBin(data []byte, req *Request, names *nameTable) (rest []byte, err error) {
	*req = Request{}
	if len(data) == 0 {
		return nil, errors.New("lockd: empty binary op")
	}
	op := opOfCode(data[0])
	if op == "" {
		return nil, fmt.Errorf("lockd: unknown binary opcode 0x%02x", data[0])
	}
	name, data, err := binBytes(data[1:])
	if err != nil {
		return nil, fmt.Errorf("lockd: binary op %s name: %w", op, err)
	}
	timeout, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("lockd: binary op %s: bad timeout varint", op)
	}
	req.Op = op
	switch {
	case len(name) == 0:
		// Leave the zero value: "" round-trips without an allocation.
	case names != nil:
		req.Name = names.intern(name)
	default:
		req.Name = string(name)
	}
	req.TimeoutMS = timeout
	return data[n:], nil
}

// AppendResponseBin appends resp's binary encoding (the current, v2
// dialect: lease token/TTL and fenced flags, extended stats) to dst and
// returns the extended slice. It allocates only if dst must grow.
func AppendResponseBin(dst []byte, resp *Response) []byte {
	return appendResponseBin(dst, resp, false)
}

// AppendResponseBinV1 appends resp's encoding in the v1 dialect served
// to clients that negotiated with BinaryMagic: no lease or fenced
// flags (those fields are silently dropped, exactly what a pre-lease
// server would have sent) and the original 13-field stats sequence.
func AppendResponseBinV1(dst []byte, resp *Response) []byte {
	return appendResponseBin(dst, resp, true)
}

func appendResponseBin(dst []byte, resp *Response, legacy bool) []byte {
	var flags byte
	if resp.OK {
		flags |= binFlagOK
	}
	if resp.Acquired {
		flags |= binFlagAcquired
	}
	if resp.Aborted {
		flags |= binFlagAborted
	}
	if resp.Holds {
		flags |= binFlagHolds
	}
	if resp.Err != "" {
		flags |= binFlagErr
	}
	if resp.Stats != nil {
		flags |= binFlagStats
	}
	hasLease := !legacy && (resp.Token != 0 || resp.TTLMS != 0)
	if hasLease {
		flags |= binFlagLease
	}
	if !legacy && resp.Fenced {
		flags |= binFlagFenced
	}
	dst = append(dst, flags)
	if resp.Err != "" {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Err)))
		dst = append(dst, resp.Err...)
	}
	if hasLease {
		dst = binary.AppendUvarint(dst, resp.Token)
		dst = binary.AppendVarint(dst, resp.TTLMS)
	}
	if s := resp.Stats; s != nil {
		dst = binary.AppendUvarint(dst, s.Acquires)
		dst = binary.AppendUvarint(dst, s.Releases)
		dst = binary.AppendUvarint(dst, s.Waits)
		dst = binary.AppendUvarint(dst, s.TryAcquires)
		dst = binary.AppendUvarint(dst, s.TryFailures)
		dst = binary.AppendUvarint(dst, s.LockCreates)
		dst = binary.AppendUvarint(dst, s.Evictions)
		dst = binary.AppendVarint(dst, int64(s.ResidentLocks))
		dst = binary.AppendUvarint(dst, s.Aborts)
		dst = binary.AppendUvarint(dst, s.LeaseTimeouts)
		if !legacy {
			dst = binary.AppendUvarint(dst, s.Expired)
			dst = binary.AppendUvarint(dst, s.Revoked)
			dst = binary.AppendUvarint(dst, s.FencedRejects)
		}
		dst = binary.AppendUvarint(dst, s.Violations)
		dst = binary.AppendVarint(dst, int64(s.Sessions))
		dst = binary.AppendVarint(dst, int64(s.Streams))
	}
	return dst
}

// DecodeResponseBin decodes one binary response (v2 dialect) from the
// front of data into resp, overwriting every field, and returns the
// remainder (the next response of the frame). Arbitrary input never
// panics; only a stats payload or an error string allocates.
func DecodeResponseBin(data []byte, resp *Response) (rest []byte, err error) {
	return decodeResponseBin(data, resp, false)
}

// DecodeResponseBinV1 decodes a v1-dialect response: lease/fenced flag
// bits are unknown (a protocol error, as they were before they existed)
// and the stats payload is the original 13-field sequence. It is what a
// pre-lease client's decoder does, kept exported so the compat tests
// can pin the dialect byte-for-byte.
func DecodeResponseBinV1(data []byte, resp *Response) (rest []byte, err error) {
	return decodeResponseBin(data, resp, true)
}

func decodeResponseBin(data []byte, resp *Response, legacy bool) (rest []byte, err error) {
	*resp = Response{}
	if len(data) == 0 {
		return nil, errors.New("lockd: empty binary response")
	}
	flags := data[0]
	known := byte(binFlagOK | binFlagAcquired | binFlagAborted | binFlagHolds | binFlagErr | binFlagStats)
	if !legacy {
		known |= binFlagLease | binFlagFenced
	}
	if flags&^known != 0 {
		return nil, fmt.Errorf("lockd: unknown response flags 0x%02x", flags)
	}
	data = data[1:]
	resp.OK = flags&binFlagOK != 0
	resp.Acquired = flags&binFlagAcquired != 0
	resp.Aborted = flags&binFlagAborted != 0
	resp.Holds = flags&binFlagHolds != 0
	resp.Fenced = flags&binFlagFenced != 0
	if flags&binFlagErr != 0 {
		var msg []byte
		if msg, data, err = binBytes(data); err != nil {
			return nil, fmt.Errorf("lockd: binary response error string: %w", err)
		}
		if len(msg) == 0 {
			return nil, errors.New("lockd: binary response flags an empty error")
		}
		resp.Err = string(msg)
	}
	if flags&binFlagLease != 0 {
		tok, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad token varint")
		}
		data = data[n:]
		ttl, n := binary.Varint(data)
		if n <= 0 {
			return nil, errors.New("lockd: binary response: bad ttl varint")
		}
		data = data[n:]
		resp.Token = tok
		resp.TTLMS = ttl
	}
	if flags&binFlagStats != 0 {
		s := &Stats{}
		fields := []struct {
			u *uint64
			i *int
		}{
			{u: &s.Acquires}, {u: &s.Releases}, {u: &s.Waits},
			{u: &s.TryAcquires}, {u: &s.TryFailures}, {u: &s.LockCreates},
			{u: &s.Evictions}, {i: &s.ResidentLocks}, {u: &s.Aborts},
			{u: &s.LeaseTimeouts}, {u: &s.Expired}, {u: &s.Revoked},
			{u: &s.FencedRejects}, {u: &s.Violations}, {i: &s.Sessions},
			{i: &s.Streams},
		}
		for i, f := range fields {
			// Fields 10-12 (expired, revoked, fenced_rejects) joined the
			// sequence in v2; the v1 dialect never carried them.
			if legacy && i >= 10 && i <= 12 {
				continue
			}
			if f.u != nil {
				v, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, errors.New("lockd: binary stats: bad varint")
				}
				*f.u = v
				data = data[n:]
			} else {
				v, n := binary.Varint(data)
				if n <= 0 {
					return nil, errors.New("lockd: binary stats: bad varint")
				}
				*f.i = int(v)
				data = data[n:]
			}
		}
		resp.Stats = s
	}
	return data, nil
}

// binBytes decodes a uvarint-length-prefixed byte string from the front
// of data, validating the length against the bytes actually present so
// a hostile length can neither panic nor force an allocation.
func binBytes(data []byte) (b, rest []byte, err error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, errors.New("bad length varint")
	}
	if n > uint64(len(data)-k) {
		return nil, nil, fmt.Errorf("length %d exceeds the %d bytes present", n, len(data)-k)
	}
	end := k + int(n)
	return data[k:end], data[end:], nil
}

// DecodeFrame parses one whole frame from the front of data: the length
// prefix (validated against max before anything is sliced), the stream
// id, and the ops payload. rest is the byte stream after the frame. It
// is the in-memory mirror of ReadFrame, and the surface the fuzz
// harness drives: arbitrary bytes must error cleanly, never panic, and
// never claim more bytes than are present.
func DecodeFrame(data []byte, max int) (stream uint32, ops, rest []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if len(data) < frameHeaderLen {
		return 0, nil, nil, fmt.Errorf("lockd: truncated frame header: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n < 4 {
		return 0, nil, nil, fmt.Errorf("lockd: %w: %d", errShortFrame, n)
	}
	if n > uint32(max) {
		return 0, nil, nil, fmt.Errorf("lockd: %w: %d > %d bytes", errFrameTooBig, n, max)
	}
	if uint32(len(data)-4) < n {
		return 0, nil, nil, fmt.Errorf("lockd: truncated frame: length %d, %d bytes present", n, len(data)-4)
	}
	stream = binary.LittleEndian.Uint32(data[4:])
	return stream, data[frameHeaderLen : 4+n], data[4+n:], nil
}

// ReadFrame reads one frame from br into buf (reused and grown as
// needed; pass the returned newBuf back in), returning the stream id
// and the ops payload, which aliases newBuf and is valid until the next
// call. A frame whose length prefix exceeds max fails with the
// frame-limit error before any payload is read, so a hostile length
// cannot balloon memory.
func ReadFrame(br *bufio.Reader, buf []byte, max int) (stream uint32, ops, newBuf []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	// Peek instead of ReadFull: the header is parsed in place from the
	// bufio buffer, so the steady-state read path performs zero heap
	// allocations (a local header array would escape through the
	// io.Reader interface).
	hdr, err := br.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < 4 {
		return 0, nil, buf, fmt.Errorf("lockd: %w: %d", errShortFrame, n)
	}
	if n > uint32(max) {
		return 0, nil, buf, fmt.Errorf("lockd: %w: %d > %d bytes", errFrameTooBig, n, max)
	}
	stream = binary.LittleEndian.Uint32(hdr[4:])
	br.Discard(frameHeaderLen)
	body := int(n) - 4
	if cap(buf) < body {
		buf = make([]byte, body)
	}
	buf = buf[:body]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return stream, buf, buf, nil
}
